//! Property-based tests (proptest) on cross-crate invariants: simulator
//! conservation laws, metric identities and head validity under arbitrary
//! inputs.

use proptest::prelude::*;

// ---------------------------------------------------------------------------
// ABR simulator invariants
// ---------------------------------------------------------------------------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Whatever bandwidth trace and rung sequence, the session accounts for
    /// every chunk exactly once and buffers never exceed the cap.
    #[test]
    fn abr_session_conservation(
        seed in 0u64..1000,
        rung in 0usize..6,
        mbps in proptest::collection::vec(0.1f64..8.0, 30..120),
    ) {
        let video = nt_abr::envivio_like(&mut nt_tensor::Rng::seeded(seed));
        let trace = nt_abr::BandwidthTrace::new("p", mbps);
        let cfg = nt_abr::SimConfig::default();
        let (stats, recs) = nt_abr::run_session(
            &mut nt_abr::FixedRung(rung), &video, &trace, &cfg, &nt_abr::QoeWeights::default());
        prop_assert_eq!(recs.len(), video.num_chunks());
        prop_assert_eq!(stats.chunks, video.num_chunks());
        for r in &recs {
            prop_assert!(r.buffer_after <= cfg.buffer_cap_secs + 1e-9);
            prop_assert!(r.download_secs > 0.0);
            prop_assert!(r.rebuffer_secs >= 0.0);
            prop_assert!(r.rung < video.num_rungs());
        }
    }

    /// Transfer time over a step-function trace equals megabits/bandwidth
    /// within the trace's min/max bounds.
    #[test]
    fn transfer_time_bounded_by_min_max_bandwidth(
        megabits in 0.1f64..50.0,
        mbps in proptest::collection::vec(0.2f64..10.0, 5..60),
        start in 0.0f64..30.0,
    ) {
        let lo = mbps.iter().cloned().fold(f64::INFINITY, f64::min);
        let hi = mbps.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        let trace = nt_abr::BandwidthTrace::new("p", mbps);
        let t = trace.transfer_time(start, megabits);
        prop_assert!(t >= megabits / hi - 1e-9, "faster than max bandwidth");
        prop_assert!(t <= megabits / lo + 1e-9, "slower than min bandwidth");
    }

    /// The emulated (transport-aware) transfer is never faster than the
    /// ideal fluid transfer.
    #[test]
    fn emulated_transfer_slower_than_ideal(
        megabits in 0.5f64..30.0,
        mbps in proptest::collection::vec(0.5f64..8.0, 10..40),
    ) {
        let trace = nt_abr::BandwidthTrace::new("p", mbps);
        let link = nt_abr::LinkConfig::default();
        let ideal = trace.transfer_time(0.0, megabits);
        let emulated = nt_abr::transfer_time(&link, &trace, 0.0, megabits);
        prop_assert!(emulated >= ideal - 1e-9);
    }
}

// ---------------------------------------------------------------------------
// CJS simulator invariants
// ---------------------------------------------------------------------------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Any workload completes under any built-in scheduler; JCT >= the
    /// job's critical-path lower bound can't be checked cheaply, but JCT
    /// must be at least the longest single task of the job.
    #[test]
    fn cjs_jct_lower_bound(seed in 0u64..500, executors in 2usize..30) {
        let jobs = nt_cjs::generate_workload(&nt_cjs::WorkloadConfig {
            num_jobs: 8, mean_interarrival: 1.0, seed,
        });
        let stats = nt_cjs::run_workload(&mut nt_cjs::Fifo, &jobs, executors, None);
        prop_assert_eq!(stats.jcts.len(), jobs.len());
        for (job, &jct) in jobs.iter().zip(&stats.jcts) {
            let longest_task = job
                .stages
                .iter()
                .flat_map(|s| s.durations.iter())
                .cloned()
                .fold(0.0f64, f64::max);
            prop_assert!(jct + 1e-9 >= longest_task, "JCT {} < longest task {}", jct, longest_task);
            // And at least the critical path through stage-level serial work:
            let serial: f64 = 0.0;
            prop_assert!(jct >= serial);
        }
    }

    /// The active-jobs integral equals the sum of JCTs when all jobs arrive
    /// at time zero (conservation of "work in system").
    #[test]
    fn cjs_active_integral_identity(seed in 0u64..200) {
        let mut jobs = nt_cjs::generate_workload(&nt_cjs::WorkloadConfig {
            num_jobs: 6, mean_interarrival: 1.0, seed,
        });
        for j in &mut jobs { j.arrival = 0.0; }
        let stats = nt_cjs::run_workload(&mut nt_cjs::Srpt, &jobs, 8, None);
        let sum: f64 = stats.jcts.iter().sum();
        prop_assert!((stats.active_job_seconds - sum).abs() < 1e-6 * sum.max(1.0));
    }
}

// ---------------------------------------------------------------------------
// VP metric identities
// ---------------------------------------------------------------------------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Wrapping is idempotent and stays in range.
    #[test]
    fn wrap_deg_idempotent(d in -1000.0f32..1000.0) {
        let w = nt_vp::wrap_deg(d);
        prop_assert!((-180.0..180.0).contains(&w));
        prop_assert_eq!(nt_vp::wrap_deg(w), w);
    }

    /// delta-encode then apply reconstructs the trace (modulo clamping).
    #[test]
    fn deltas_roundtrip(
        start_pitch in -60.0f32..60.0,
        start_yaw in -179.0f32..179.0,
        moves in proptest::collection::vec((-3.0f32..3.0, -5.0f32..5.0), 1..30),
    ) {
        let mut vps = vec![[0.0, start_pitch, start_yaw]];
        for (dp, dy) in &moves {
            let last = *vps.last().unwrap();
            vps.push([0.0, (last[1] + dp).clamp(-80.0, 80.0), nt_vp::wrap_deg(last[2] + dy)]);
        }
        let deltas = nt_vp::to_deltas(&vps);
        let rebuilt = nt_vp::apply_deltas(&vps[0], &deltas);
        for (r, v) in rebuilt.iter().zip(&vps[1..]) {
            prop_assert!(nt_vp::viewport_error(r, v) < 1e-3);
        }
    }

    /// MAE is symmetric and zero iff sequences coincide.
    #[test]
    fn mae_symmetry(
        a in proptest::collection::vec((-40.0f32..40.0, -80.0f32..80.0, -179.0f32..179.0), 1..10),
    ) {
        let seq: Vec<[f32; 3]> = a.iter().map(|&(r, p, y)| [r, p, y]).collect();
        prop_assert_eq!(nt_vp::mae(&seq, &seq), 0.0);
        let shifted: Vec<[f32; 3]> = seq.iter().map(|v| [v[0] + 1.0, v[1], v[2]]).collect();
        let d1 = nt_vp::mae(&seq, &shifted);
        let d2 = nt_vp::mae(&shifted, &seq);
        prop_assert!((d1 - d2).abs() < 1e-5);
    }
}

// ---------------------------------------------------------------------------
// Autodiff invariants for the shape ops the KV-cache path leans on
// ---------------------------------------------------------------------------

/// Finite-difference check of d(loss)/d(leaf) for a scalar-valued builder.
fn grad_matches_numeric(
    input: nt_tensor::Tensor,
    build: impl Fn(&mut nt_tensor::Graph, nt_tensor::NodeId) -> nt_tensor::NodeId,
) -> Result<(), String> {
    let mut g = nt_tensor::Graph::new(false, 0);
    let x = g.leaf(input.clone(), true);
    let loss = build(&mut g, x);
    g.backward(loss);
    let analytic = g.grad(x).ok_or("no gradient")?.clone();
    let eps = 1e-2f32;
    for i in 0..input.numel() {
        let mut plus = input.clone();
        plus.data_mut()[i] += eps;
        let mut minus = input.clone();
        minus.data_mut()[i] -= eps;
        let eval = |t: nt_tensor::Tensor| {
            let mut g = nt_tensor::Graph::new(false, 0);
            let x = g.leaf(t, true);
            let l = build(&mut g, x);
            g.value(l).item()
        };
        let numeric = (eval(plus) - eval(minus)) / (2.0 * eps);
        let a = analytic.data()[i];
        let denom = numeric.abs().max(a.abs()).max(1.0);
        if (numeric - a).abs() / denom > 3e-2 {
            return Err(format!("grad mismatch at {i}: numeric {numeric} vs analytic {a}"));
        }
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Narrow must route gradients only into the sliced region, for any
    /// slice of any axis of a random 2-D tensor.
    #[test]
    fn narrow_gradient_matches_finite_differences(
        rows in 1usize..5,
        cols in 1usize..5,
        axis in 0usize..2,
        pick in 0u64..10_000,
        data in proptest::collection::vec(-2.0f32..2.0, 25..26),
    ) {
        let t = nt_tensor::Tensor::from_vec([rows, cols], data[..rows * cols].to_vec());
        let dim = [rows, cols][axis];
        let start = (pick as usize) % dim;
        let len = 1 + (pick as usize / dim) % (dim - start);
        let r = grad_matches_numeric(t, |g, x| {
            let n = g.narrow(x, axis, start, len);
            let sq = g.mul(n, n);
            g.sum_all(sq)
        });
        prop_assert!(r.is_ok(), "{:?}", r.err());
    }

    /// Concat must split the incoming gradient back to its parents
    /// (checked against finite differences for both axes).
    #[test]
    fn concat_gradient_matches_finite_differences(
        rows in 1usize..4,
        cols in 1usize..4,
        axis in 0usize..2,
        data in proptest::collection::vec(-2.0f32..2.0, 16..17),
    ) {
        let t = nt_tensor::Tensor::from_vec([rows, cols], data[..rows * cols].to_vec());
        let r = grad_matches_numeric(t, |g, x| {
            // Concat the leaf with a constant AND with itself: gradients
            // must accumulate across both appearances.
            let c = g.constant(nt_tensor::Tensor::ones([rows, cols]));
            let cat = g.concat(&[x, c, x], axis);
            let sq = g.mul(cat, cat);
            g.sum_all(sq)
        });
        prop_assert!(r.is_ok(), "{:?}", r.err());
    }

    /// Narrow(Concat) round-trip: slicing a concat back apart must
    /// reproduce the inputs exactly, for any axis (the exact invariant the
    /// KV cache relies on when rolling back candidate tokens).
    #[test]
    fn concat_narrow_roundtrip(
        rows in 1usize..5,
        cols in 1usize..5,
        axis in 0usize..2,
        data in proptest::collection::vec(-3.0f32..3.0, 50..51),
    ) {
        let a = nt_tensor::Tensor::from_vec([rows, cols], data[..rows * cols].to_vec());
        let b = nt_tensor::Tensor::from_vec([rows, cols], data[25..25 + rows * cols].to_vec());
        let cat = nt_tensor::concat(&[&a, &b], axis);
        let first = cat.narrow(axis, 0, [rows, cols][axis]);
        let second = cat.narrow(axis, [rows, cols][axis], [rows, cols][axis]);
        prop_assert_eq!(first.data(), a.data());
        prop_assert_eq!(second.data(), b.data());
    }
}

// ---------------------------------------------------------------------------
// Batched-serving invariants (the PR 2 decode path)
// ---------------------------------------------------------------------------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Batched attention over ragged slots (arbitrary per-slot cache
    /// prefix lengths and new-row counts) must match per-slot unbatched
    /// attention — the invariant the serving engine stands on.
    #[test]
    fn batched_attention_matches_per_slot_unbatched(
        seed in 0u64..1_000,
        slots in proptest::collection::vec((0usize..9, 1usize..4), 1..5),
    ) {
        let mut store = nt_nn::ParamStore::new();
        let mut rng = nt_tensor::Rng::seeded(seed);
        let mha = nt_nn::MultiHeadAttention::new(&mut store, "a", 8, 2, &mut rng);

        // Prefill each slot's cache to its own ragged length.
        let mut kvs_seq: Vec<nt_nn::AttnKv> =
            slots.iter().map(|_| nt_nn::AttnKv::empty(8)).collect();
        for (kv, &(prefix, _)) in kvs_seq.iter_mut().zip(&slots) {
            if prefix > 0 {
                let x = nt_tensor::Tensor::randn([prefix, 8], 0.8, &mut rng);
                let _ = mha.eval_cached(&store, &x, kv);
            }
        }
        let mut kvs_bat = kvs_seq.clone();

        let news: Vec<nt_tensor::Tensor> = slots
            .iter()
            .map(|&(_, n)| nt_tensor::Tensor::randn([n, 8], 0.8, &mut rng))
            .collect();
        let unbatched: Vec<nt_tensor::Tensor> = news
            .iter()
            .zip(kvs_seq.iter_mut())
            .map(|(x, kv)| mha.eval_cached(&store, x, kv))
            .collect();

        let refs: Vec<&nt_tensor::Tensor> = news.iter().collect();
        let stacked = nt_tensor::concat(&refs, 0);
        let rows: Vec<usize> = slots.iter().map(|&(_, n)| n).collect();
        let mut kv_refs: Vec<&mut nt_nn::AttnKv> = kvs_bat.iter_mut().collect();
        let batched = mha.eval_cached_batched(&store, &stacked, &rows, &mut kv_refs);

        let mut row = 0usize;
        for (s, want) in unbatched.iter().enumerate() {
            for (i, wrow) in want.data().chunks(8).enumerate() {
                for (j, w) in wrow.iter().enumerate() {
                    let got = batched.at(&[row + i, j]);
                    prop_assert!(
                        (got - w).abs() < 1e-5,
                        "slot {} row {} col {}: batched {} vs unbatched {}", s, i, j, got, w
                    );
                }
            }
            row += want.shape()[0];
        }
        for (a, b) in kvs_seq.iter().zip(&kvs_bat) {
            prop_assert_eq!(a.len(), b.len());
        }
    }

    /// `concat` along the batch dimension then `gather_rows` must recover
    /// every slot's rows exactly (the stack/unstack pair the batched
    /// decode path is built from), and `narrow` must agree with gather.
    #[test]
    fn gather_rows_concat_roundtrip_under_batch_dim(
        cols in 1usize..6,
        counts in proptest::collection::vec(1usize..5, 1..6),
        seed in 0u64..10_000,
    ) {
        let mut rng = nt_tensor::Rng::seeded(seed);
        let parts: Vec<nt_tensor::Tensor> = counts
            .iter()
            .map(|&n| nt_tensor::Tensor::randn([n, cols], 1.0, &mut rng))
            .collect();
        let refs: Vec<&nt_tensor::Tensor> = parts.iter().collect();
        let stacked = nt_tensor::concat(&refs, 0);

        let mut start = 0usize;
        for (p, &n) in parts.iter().zip(&counts) {
            let idx: Vec<usize> = (start..start + n).collect();
            let gathered = stacked.gather_rows(&idx);
            prop_assert_eq!(gathered.data(), p.data());
            let narrowed = stacked.narrow(0, start, n);
            prop_assert_eq!(narrowed.data(), p.data());
            start += n;
        }
        // Gathering the closing row of every slot (the logits path) must
        // pick exactly each part's last row.
        let mut closing = Vec::new();
        let mut row = 0usize;
        for &n in &counts {
            row += n;
            closing.push(row - 1);
        }
        let last = stacked.gather_rows(&closing);
        for (b, p) in parts.iter().enumerate() {
            let want = p.narrow(0, p.shape()[0] - 1, 1);
            prop_assert_eq!(last.row(b), want.data());
        }
    }
}

// ---------------------------------------------------------------------------
// Framework invariants
// ---------------------------------------------------------------------------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// The ABR networking head's answer is a valid rung for ANY hidden
    /// state (the reliability guarantee of §4.2).
    #[test]
    fn abr_head_validity(seed in 0u64..10_000, scale in 0.1f32..100.0) {
        let mut store = nt_nn::ParamStore::new();
        let mut rng = nt_tensor::Rng::seeded(seed);
        let head = netllm::AbrHead::new(&mut store, 16, 6, &mut rng);
        let mut f = nt_nn::Fwd::eval();
        let h = f.input(nt_tensor::Tensor::randn([1, 16], scale, &mut rng));
        let logits = head.forward(&mut f, &store, h);
        let answer = f.g.value(logits).argmax();
        prop_assert!(answer < 6);
    }

    /// Prompt answers that render from real viewports always parse back
    /// (the inverse direction — arbitrary text — is allowed to fail).
    #[test]
    fn prompt_render_parse_roundtrip(
        vps in proptest::collection::vec((-40.0f32..40.0, -80.0f32..80.0, -170.0f32..170.0), 5..8),
    ) {
        let future: Vec<[f32; 3]> = vps.iter().map(|&(r, p, y)| [r, p, y]).collect();
        let text = netllm::render_answer(&future);
        let parsed = netllm::parse_answer(&text);
        prop_assert!(parsed.is_some(), "rendered answer failed to parse: {}", text);
        let parsed = parsed.unwrap();
        for (a, b) in parsed.iter().zip(&future) {
            // integer rounding in the template
            prop_assert!((a[0] - b[0]).abs() <= 0.5 + 1e-3);
            prop_assert!((a[1] - b[1]).abs() <= 0.5 + 1e-3);
        }
    }

    /// Tokenizer roundtrip over its printable charset.
    #[test]
    fn tokenizer_roundtrip(s in "[a-z0-9 .,:;()\\[\\]{}+*/=_#!?%-]{0,40}") {
        let tok = nt_llm::Tokenizer::new();
        prop_assert_eq!(tok.decode(&tok.encode(&s)), s);
    }
}

//! Cross-crate integration tests: each task's full pipeline (environment ->
//! experience -> adaptation -> evaluation) at smoke budgets.

use netllm::{
    adapt_abr, adapt_cjs, adapt_vp, build_abr_env, build_cjs_workloads, build_vp_data,
    rl_collect_abr, rl_collect_cjs, test_abr, test_cjs, AdaptMode, Fidelity, ABR_DEFAULT,
    CJS_DEFAULT, VP_DEFAULT,
};
use nt_abr::{Bba, Mpc};
use nt_cjs::{Fifo, Srpt};
use nt_llm::{profile_spec, Profile, Zoo};
use nt_vp::{evaluate, VpPredictor};

fn zoo(tag: &str) -> Zoo {
    Zoo::new(std::env::temp_dir().join(format!("netllm-it-{tag}-{}", std::process::id())))
}

#[test]
fn vp_pipeline_end_to_end() {
    let data = build_vp_data(&VP_DEFAULT, Fidelity::Smoke);
    assert!(!data.train.is_empty() && !data.test.is_empty());
    let backbone = zoo("vp").load_or_pretrain(&profile_spec(Profile::LlamaSim), 10);
    let mut model = adapt_vp(backbone, AdaptMode::FullKnowledge, &data.train, 15, 1);
    let mae = evaluate(&mut model, &data.test, VP_DEFAULT.pw());
    assert!(mae.is_finite() && mae > 0.0, "MAE must be a positive finite number, got {mae}");
    // Answers must be physically valid for every sample (reliability claim).
    for s in &data.test {
        for v in model.predict(s, VP_DEFAULT.pw()) {
            assert!((-45.0..=45.0).contains(&v[0]));
            assert!((-90.0..=90.0).contains(&v[1]));
            assert!((-180.0..180.0).contains(&v[2]));
        }
    }
}

#[test]
fn abr_pipeline_end_to_end() {
    let (video, train_traces) = build_abr_env(&ABR_DEFAULT, Fidelity::Smoke, true, 1);
    let mut teacher = Mpc::default();
    let dataset = rl_collect_abr(&mut teacher, &video, &train_traces);
    assert_eq!(dataset.len(), train_traces.len());
    let backbone = zoo("abr").load_or_pretrain(&profile_spec(Profile::LlamaSim), 10);
    let mut model = adapt_abr(backbone, AdaptMode::FullKnowledge, &dataset, 10, 2);
    assert!(model.target_return.is_finite());

    let (video, test_traces) = build_abr_env(&ABR_DEFAULT, Fidelity::Smoke, false, 3);
    let stats = test_abr(&mut model, &video, &test_traces);
    assert_eq!(stats.len(), test_traces.len());
    for s in &stats {
        assert_eq!(s.chunks, video.num_chunks(), "every chunk must be streamed");
        assert!(s.qoe_per_chunk.is_finite());
    }
    // BBA on the same envs for a sanity ordering bound: an adapted tiny
    // model may lose, but must stay within a sane QoE band.
    let bba_stats = test_abr(&mut Bba::default(), &video, &test_traces);
    let avg = |s: &[nt_abr::SessionStats]| {
        s.iter().map(|x| x.qoe_per_chunk).sum::<f64>() / s.len() as f64
    };
    assert!(avg(&stats) > avg(&bba_stats) - 10.0, "NetLLM QoE collapsed");
}

#[test]
fn cjs_pipeline_end_to_end() {
    let workloads = build_cjs_workloads(&CJS_DEFAULT, Fidelity::Smoke, &[1, 2]);
    let dataset = rl_collect_cjs(&mut Srpt, &workloads, CJS_DEFAULT.executors);
    assert_eq!(dataset.len(), 2);
    let backbone = zoo("cjs").load_or_pretrain(&profile_spec(Profile::LlamaSim), 10);
    let mut model = adapt_cjs(backbone, AdaptMode::FullKnowledge, &dataset, 8, 3);

    let test_workloads = build_cjs_workloads(&CJS_DEFAULT, Fidelity::Smoke, &[9]);
    let stats = test_cjs(&mut model, &test_workloads, CJS_DEFAULT.executors);
    assert_eq!(stats.len(), 1);
    assert_eq!(stats[0].jcts.len(), test_workloads[0].len(), "all jobs must complete");
    // Sanity bound against FIFO on the same workload.
    let fifo = test_cjs(&mut Fifo, &test_workloads, CJS_DEFAULT.executors);
    assert!(
        stats[0].mean_jct() < fifo[0].mean_jct() * 5.0,
        "NetLLM scheduling collapsed: {} vs FIFO {}",
        stats[0].mean_jct(),
        fifo[0].mean_jct()
    );
}

#[test]
fn experience_datasets_are_reusable_across_adaptations() {
    // DD-LRNA's core claim: the dataset is collected once and reused. Two
    // different adaptations from the same dataset must both work.
    let (video, traces) = build_abr_env(&ABR_DEFAULT, Fidelity::Smoke, true, 5);
    let mut teacher = Bba::default();
    let dataset = rl_collect_abr(&mut teacher, &video, &traces);
    let b1 = zoo("reuse1").load_or_pretrain(&profile_spec(Profile::LlamaSim), 10);
    let b2 = zoo("reuse2").load_or_pretrain(&profile_spec(Profile::OptSim), 10);
    let m1 = adapt_abr(b1, AdaptMode::FullKnowledge, &dataset, 5, 6);
    let m2 = adapt_abr(b2, AdaptMode::FullKnowledge, &dataset, 5, 7);
    assert!(m1.target_return.is_finite());
    assert!(m2.target_return.is_finite());
}

#[test]
fn unseen_settings_are_harder_or_different() {
    // Table 4 knobs must actually change the environment difficulty.
    let d = build_cjs_workloads(&CJS_DEFAULT, Fidelity::Smoke, &[1]);
    let u2 = build_cjs_workloads(&netllm::CJS_UNSEEN2, Fidelity::Smoke, &[1]);
    assert!(u2[0].len() > d[0].len(), "unseen2 must have more jobs");
    let fifo_d = test_cjs(&mut Fifo, &d, CJS_DEFAULT.executors);
    let fifo_u1 = test_cjs(&mut Fifo, &d, netllm::CJS_UNSEEN1.executors);
    assert!(fifo_u1[0].mean_jct() >= fifo_d[0].mean_jct(), "fewer executors cannot speed FIFO up");
}

//! "One model for all tasks": the same frozen pre-trained backbone must be
//! adaptable to all three networking tasks with different LoRA copies, and
//! the Fig 13 ablation modes must configure trainability as claimed.

use netllm::{
    adapt_abr, adapt_cjs, adapt_vp, build_abr_env, build_cjs_workloads, build_vp_data,
    rl_collect_abr, rl_collect_cjs, AdaptMode, Fidelity, LoraSpec, NetLlmVp, ABR_DEFAULT,
    CJS_DEFAULT, VP_DEFAULT,
};
use nt_abr::Bba;
use nt_cjs::Srpt;
use nt_llm::{profile_spec, size_spec, Profile, Zoo, SIZE_LADDER};
use nt_nn::checkpoint;

fn zoo(tag: &str) -> Zoo {
    Zoo::new(std::env::temp_dir().join(format!("netllm-ct-{tag}-{}", std::process::id())))
}

#[test]
fn same_backbone_weights_serve_all_three_tasks() {
    // Pre-train ONE backbone, snapshot its weights, adapt it to each task,
    // and verify the backbone weights were not modified by any adaptation
    // (LoRA keeps W0 frozen => the same model can be shared).
    let z = zoo("shared");
    let spec = profile_spec(Profile::LlamaSim);
    let pristine = z.load_or_pretrain(&spec, 10);
    let reference = checkpoint::to_bytes(&pristine.store);

    // VP
    let data = build_vp_data(&VP_DEFAULT, Fidelity::Smoke);
    let vp = adapt_vp(z.load_or_pretrain(&spec, 10), AdaptMode::FullKnowledge, &data.train, 6, 1);
    // ABR
    let (video, traces) = build_abr_env(&ABR_DEFAULT, Fidelity::Smoke, true, 2);
    let mut bba = Bba::default();
    let abr_data = rl_collect_abr(&mut bba, &video, &traces);
    let abr = adapt_abr(z.load_or_pretrain(&spec, 10), AdaptMode::FullKnowledge, &abr_data, 6, 2);
    // CJS
    let workloads = build_cjs_workloads(&CJS_DEFAULT, Fidelity::Smoke, &[3]);
    let cjs_data = rl_collect_cjs(&mut Srpt, &workloads, CJS_DEFAULT.executors);
    let cjs = adapt_cjs(z.load_or_pretrain(&spec, 10), AdaptMode::FullKnowledge, &cjs_data, 6, 3);

    for (task, store) in [("vp", &vp.store), ("abr", &abr.store), ("cjs", &cjs.store)] {
        let fresh = z.load_or_pretrain(&spec, 10);
        for id in fresh.store.ids() {
            let name = fresh.store.name(id).to_string();
            if !name.starts_with("llm.") || name.contains("lora") {
                continue;
            }
            // Find the same-named param in the adapted store.
            let adapted_id = store
                .ids()
                .find(|&i| store.name(i) == name)
                .unwrap_or_else(|| panic!("{task}: backbone param {name} missing"));
            assert_eq!(
                store.data(adapted_id),
                fresh.store.data(id),
                "{task}: frozen backbone param {name} was modified"
            );
        }
    }
    assert!(!reference.is_empty());
}

#[test]
fn adaptation_modes_differ_in_trainable_budget() {
    let z = zoo("modes");
    let spec = profile_spec(Profile::LlamaSim);
    let budget = |mode: AdaptMode| -> usize {
        let backbone = match mode {
            AdaptMode::NoPretrain => z.build_random(&spec),
            _ => z.load_or_pretrain(&spec, 5),
        };
        let m = NetLlmVp::new(backbone, mode, LoraSpec::default(), 20, 1);
        m.store.num_trainable()
    };
    let full_ft = budget(AdaptMode::NoPretrain);
    let lora = budget(AdaptMode::FullKnowledge);
    let none = budget(AdaptMode::NoDomain);
    assert!(full_ft > lora, "full fine-tune must train more than LoRA");
    assert!(lora > none, "LoRA must train more than the no-domain ablation");
    assert!(none > 0, "encoder+head always train");
}

#[test]
fn size_ladder_monotone_params_and_all_adaptable() {
    let z = zoo("ladder");
    let data = build_vp_data(&VP_DEFAULT, Fidelity::Smoke);
    let mut last = 0usize;
    for label in SIZE_LADDER {
        let spec = size_spec(label);
        let backbone = z.load_or_pretrain(&spec, 5);
        let n = backbone.lm.num_params(&backbone.store);
        assert!(n > last, "{label} not larger than previous");
        last = n;
        // every size must adapt without panicking
        let mut m = adapt_vp(backbone, AdaptMode::FullKnowledge, &data.train, 3, 42);
        let mae = nt_vp::evaluate(&mut m, &data.test[..4.min(data.test.len())], VP_DEFAULT.pw());
        assert!(mae.is_finite());
    }
}

#[test]
fn all_profiles_adapt_for_abr() {
    let z = zoo("profiles");
    let (video, traces) = build_abr_env(&ABR_DEFAULT, Fidelity::Smoke, true, 7);
    let mut bba = Bba::default();
    let dataset = rl_collect_abr(&mut bba, &video, &traces);
    for p in Profile::ALL {
        let backbone = z.load_or_pretrain(&profile_spec(p), 5);
        let mut m = adapt_abr(backbone, AdaptMode::FullKnowledge, &dataset, 4, 9);
        let (video, test) = build_abr_env(&ABR_DEFAULT, Fidelity::Smoke, false, 8);
        let stats = netllm::test_abr(&mut m, &video, &test[..1]);
        assert!(stats[0].qoe_per_chunk.is_finite(), "{} failed", p.name());
    }
}

//! Root facade of the NetLLM reproduction workspace.
//!
//! The actual functionality lives in the `crates/` members (see the crate
//! map in `README.md`); this package exists to host the workspace-level
//! integration tests under `tests/` and the runnable walkthroughs under
//! `examples/`. Re-exports are provided so downstream experiments can
//! depend on a single crate.

pub extern crate netllm;
pub use nt_abr as abr;
pub use nt_cjs as cjs;
pub use nt_llm as llm;
pub use nt_nn as nn;
pub use nt_tensor as tensor;
pub use nt_vp as vp;

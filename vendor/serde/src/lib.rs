//! Offline stand-in for `serde`.
//!
//! The build container cannot reach crates.io, so the workspace vendors the
//! minimal surface it uses: a self-describing [`Content`] data model, a
//! [`Serialize`] trait producing it, a marker [`Deserialize`] trait (nothing
//! in the workspace deserializes), and re-exported derive macros from the
//! sibling `serde_derive` shim. `vendor/serde_json` renders [`Content`] as
//! JSON.

#![forbid(unsafe_code)]

pub use serde_derive::{Deserialize, Serialize};

/// Self-describing serialized value: the shim's entire data model.
#[derive(Clone, Debug, PartialEq)]
pub enum Content {
    Null,
    Bool(bool),
    Num(f64),
    Str(String),
    Seq(Vec<Content>),
    Map(Vec<(String, Content)>),
}

/// Types that can describe themselves as a [`Content`] tree.
pub trait Serialize {
    fn to_content(&self) -> Content;
}

/// Marker trait: the workspace never deserializes, so the derive only tags
/// the type.
pub trait Deserialize {}

impl Serialize for bool {
    fn to_content(&self) -> Content {
        Content::Bool(*self)
    }
}

macro_rules! impl_num {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_content(&self) -> Content {
                Content::Num(*self as f64)
            }
        }
    )*};
}
impl_num!(f32, f64, i8, i16, i32, i64, isize, u8, u16, u32, u64, usize);

impl Serialize for String {
    fn to_content(&self) -> Content {
        Content::Str(self.clone())
    }
}

impl Serialize for str {
    fn to_content(&self) -> Content {
        Content::Str(self.to_string())
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_content(&self) -> Content {
        (**self).to_content()
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_content(&self) -> Content {
        Content::Seq(self.iter().map(Serialize::to_content).collect())
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_content(&self) -> Content {
        Content::Seq(self.iter().map(Serialize::to_content).collect())
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn to_content(&self) -> Content {
        Content::Seq(self.iter().map(Serialize::to_content).collect())
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_content(&self) -> Content {
        match self {
            Some(v) => v.to_content(),
            None => Content::Null,
        }
    }
}

impl<A: Serialize, B: Serialize> Serialize for (A, B) {
    fn to_content(&self) -> Content {
        Content::Seq(vec![self.0.to_content(), self.1.to_content()])
    }
}

impl<A: Serialize, B: Serialize, C: Serialize> Serialize for (A, B, C) {
    fn to_content(&self) -> Content {
        Content::Seq(vec![self.0.to_content(), self.1.to_content(), self.2.to_content()])
    }
}

//! Offline stand-in for `proptest`.
//!
//! Implements the subset the workspace's property tests use: the
//! [`proptest!`] macro over functions with `arg in strategy` parameters,
//! numeric range strategies, tuple strategies, [`collection::vec`], a
//! single-character-class regex string strategy, and the `prop_assert*`
//! macros. Cases are sampled from a deterministic per-test RNG (seeded from
//! the test name and case index), so failures are reproducible; there is no
//! shrinking.

#![forbid(unsafe_code)]

use std::ops::Range;

/// Deterministic split-mix RNG driving all strategies.
pub struct TestRng {
    state: u64,
}

impl TestRng {
    pub fn seeded(seed: u64) -> Self {
        TestRng { state: seed ^ 0x9E37_79B9_7F4A_7C15 }
    }

    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform in `[0, n)`; `n` must be positive.
    pub fn below(&mut self, n: u64) -> u64 {
        assert!(n > 0, "below(0)");
        self.next_u64() % n
    }

    /// Uniform in `[0, 1)`.
    pub fn unit(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }
}

/// A value generator.
pub trait Strategy {
    type Value;
    fn sample(&self, rng: &mut TestRng) -> Self::Value;
}

macro_rules! impl_int_range {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end - self.start) as u64;
                self.start + rng.below(span) as $t
            }
        }
    )*};
}
impl_int_range!(u8, u16, u32, u64, usize);

macro_rules! impl_signed_range {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i64 - self.start as i64) as u64;
                (self.start as i64 + rng.below(span) as i64) as $t
            }
        }
    )*};
}
impl_signed_range!(i8, i16, i32, i64, isize);

impl Strategy for Range<f32> {
    type Value = f32;
    fn sample(&self, rng: &mut TestRng) -> f32 {
        assert!(self.start < self.end, "empty range strategy");
        let x = self.start + (rng.unit() as f32) * (self.end - self.start);
        // Rounding in the f32 cast/multiply can land exactly on the
        // exclusive upper bound; keep the half-open contract.
        if x < self.end {
            x
        } else {
            self.start
        }
    }
}

impl Strategy for Range<f64> {
    type Value = f64;
    fn sample(&self, rng: &mut TestRng) -> f64 {
        assert!(self.start < self.end, "empty range strategy");
        let x = self.start + rng.unit() * (self.end - self.start);
        if x < self.end {
            x
        } else {
            self.start
        }
    }
}

impl<A: Strategy, B: Strategy> Strategy for (A, B) {
    type Value = (A::Value, B::Value);
    fn sample(&self, rng: &mut TestRng) -> Self::Value {
        (self.0.sample(rng), self.1.sample(rng))
    }
}

impl<A: Strategy, B: Strategy, C: Strategy> Strategy for (A, B, C) {
    type Value = (A::Value, B::Value, C::Value);
    fn sample(&self, rng: &mut TestRng) -> Self::Value {
        (self.0.sample(rng), self.1.sample(rng), self.2.sample(rng))
    }
}

/// String strategy from a `[class]{lo,hi}` regex literal (the only regex
/// shape the workspace uses).
impl Strategy for &str {
    type Value = String;
    fn sample(&self, rng: &mut TestRng) -> String {
        let (chars, lo, hi) = parse_class_regex(self);
        let len = lo + rng.below((hi - lo + 1) as u64) as usize;
        (0..len).map(|_| chars[rng.below(chars.len() as u64) as usize]).collect()
    }
}

fn parse_class_regex(pattern: &str) -> (Vec<char>, usize, usize) {
    let bytes: Vec<char> = pattern.chars().collect();
    assert!(
        bytes.first() == Some(&'['),
        "proptest shim only supports `[class]{{lo,hi}}` regex strategies, got {pattern:?}"
    );
    let mut chars = Vec::new();
    let mut i = 1;
    while i < bytes.len() && bytes[i] != ']' {
        let c = if bytes[i] == '\\' {
            i += 1;
            bytes[i]
        } else {
            bytes[i]
        };
        // Range `a-z` (a `-` that is not last-in-class and not escaped).
        if i + 2 < bytes.len() && bytes[i + 1] == '-' && bytes[i + 2] != ']' {
            let end = bytes[i + 2];
            for x in c..=end {
                chars.push(x);
            }
            i += 3;
        } else {
            chars.push(c);
            i += 1;
        }
    }
    assert!(i < bytes.len(), "unterminated character class in {pattern:?}");
    let rep: String = bytes[i + 1..].iter().collect();
    let inner = rep
        .strip_prefix('{')
        .and_then(|s| s.strip_suffix('}'))
        .unwrap_or_else(|| panic!("expected {{lo,hi}} repetition in {pattern:?}"));
    let (lo, hi) = match inner.split_once(',') {
        Some((a, b)) => (a.trim().parse().unwrap(), b.trim().parse().unwrap()),
        None => {
            let n: usize = inner.trim().parse().unwrap();
            (n, n)
        }
    };
    assert!(hi >= lo, "bad repetition bounds in {pattern:?}");
    (chars, lo, hi)
}

pub mod collection {
    use super::{Strategy, TestRng};
    use std::ops::Range;

    /// Strategy producing `Vec`s with element strategy `element` and length
    /// drawn from `size`.
    pub struct VecStrategy<S> {
        element: S,
        size: Range<usize>,
    }

    pub fn vec<S: Strategy>(element: S, size: Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, size }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn sample(&self, rng: &mut TestRng) -> Self::Value {
            let len = self.size.sample(rng);
            (0..len).map(|_| self.element.sample(rng)).collect()
        }
    }
}

/// Per-test run configuration.
#[derive(Clone, Copy, Debug)]
pub struct ProptestConfig {
    pub cases: u32,
}

impl ProptestConfig {
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

/// FNV-1a over the test name, for deterministic per-test seeds.
pub fn seed_from_name(name: &str) -> u64 {
    let mut h: u64 = 0xCBF2_9CE4_8422_2325;
    for b in name.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x1000_0000_01B3);
    }
    h
}

#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !($cond) {
            return Err(format!("assertion failed: {}", stringify!($cond)));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return Err(format!("assertion failed: {}: {}", stringify!($cond), format!($($fmt)+)));
        }
    };
}

#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => {{
        let (a, b) = (&$a, &$b);
        if !(a == b) {
            return Err(format!(
                "assertion failed: {} == {} ({:?} vs {:?})",
                stringify!($a),
                stringify!($b),
                a,
                b
            ));
        }
    }};
}

#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_fns! { $cfg; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_fns! { $crate::ProptestConfig::default(); $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_fns {
    ($cfg:expr; $(#[$meta:meta])* fn $name:ident ( $($arg:ident in $strat:expr),+ $(,)? ) $body:block $($rest:tt)*) => {
        $(#[$meta])*
        fn $name() {
            let cfg: $crate::ProptestConfig = $cfg;
            let base = $crate::seed_from_name(stringify!($name));
            for case in 0..cfg.cases {
                let mut rng = $crate::TestRng::seeded(base ^ (case as u64).wrapping_mul(0x9E37_79B9));
                $(let $arg = $crate::Strategy::sample(&($strat), &mut rng);)+
                // Render inputs up front: the body may consume them.
                let mut vals = String::new();
                $(vals.push_str(&format!("{} = {:?}; ", stringify!($arg), &$arg));)+
                let result: ::std::result::Result<(), String> = (|| { $body Ok(()) })();
                if let Err(msg) = result {
                    panic!("proptest case {case} failed: {msg}\n  inputs: {vals}");
                }
            }
        }
        $crate::__proptest_fns! { $cfg; $($rest)* }
    };
    ($cfg:expr;) => {};
}

pub mod prelude {
    pub use crate::collection;
    pub use crate::{prop_assert, prop_assert_eq, proptest, ProptestConfig, Strategy, TestRng};
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = TestRng::seeded(1);
        for _ in 0..1000 {
            let x = (3u64..17).sample(&mut rng);
            assert!((3..17).contains(&x));
            let f = (0.5f64..2.5).sample(&mut rng);
            assert!((0.5..2.5).contains(&f));
        }
    }

    #[test]
    fn regex_class_parses() {
        let (chars, lo, hi) = parse_class_regex("[a-c1\\]x-]{0,4}");
        assert!(chars.contains(&'a') && chars.contains(&'c'));
        assert!(chars.contains(&']') && chars.contains(&'-') && chars.contains(&'x'));
        assert_eq!((lo, hi), (0, 4));
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(8))]
        #[test]
        fn macro_roundtrip(a in 0u64..10, v in collection::vec(0.0f32..1.0, 1..5)) {
            prop_assert!(a < 10);
            prop_assert_eq!(v.len(), v.len());
            prop_assert!(v.iter().all(|x| (0.0..1.0).contains(x)));
        }
    }
}

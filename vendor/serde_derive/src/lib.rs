//! Offline stand-in for serde's derive macros.
//!
//! The build container has no access to crates.io, so the workspace vendors
//! a minimal `serde` data model (see `vendor/serde`) and this proc-macro
//! crate derives impls for the shapes the workspace actually uses:
//!
//! - structs with named fields -> serialized as a string-keyed map;
//! - enums with unit variants  -> serialized as the variant name.
//!
//! `Deserialize` is a marker trait in the vendored `serde` (nothing in the
//! workspace deserializes), so its derive only emits an empty impl.

use proc_macro::{Delimiter, TokenStream, TokenTree};

enum Item {
    Struct { name: String, fields: Vec<String> },
    Enum { name: String, variants: Vec<String> },
}

/// Parse just enough of a `struct`/`enum` item to know its name and the
/// names of its named fields / unit variants.
fn parse_item(input: TokenStream) -> Item {
    let tokens: Vec<TokenTree> = input.into_iter().collect();
    let mut i = 0;
    // Skip attributes (`# [ ... ]`) and visibility (`pub`, `pub ( ... )`).
    let mut kind = None;
    while i < tokens.len() {
        match &tokens[i] {
            TokenTree::Punct(p) if p.as_char() == '#' => i += 2,
            TokenTree::Ident(id) if id.to_string() == "pub" => {
                i += 1;
                if matches!(&tokens.get(i), Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis)
                {
                    i += 1;
                }
            }
            TokenTree::Ident(id) if id.to_string() == "struct" || id.to_string() == "enum" => {
                kind = Some(id.to_string());
                i += 1;
                break;
            }
            _ => i += 1,
        }
    }
    let kind = kind.expect("serde_derive shim: expected `struct` or `enum`");
    let name = match &tokens[i] {
        TokenTree::Ident(id) => id.to_string(),
        other => panic!("serde_derive shim: expected item name, got {other}"),
    };
    i += 1;
    // No generics in this workspace's derive targets; find the brace body.
    let body = loop {
        match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => break g.clone(),
            Some(TokenTree::Punct(p)) if p.as_char() == '<' => {
                panic!("serde_derive shim: generic items are not supported")
            }
            Some(_) => i += 1,
            None => panic!("serde_derive shim: tuple/unit items are not supported"),
        }
    };
    let inner: Vec<TokenTree> = body.stream().into_iter().collect();
    if kind == "struct" {
        let mut fields = Vec::new();
        let mut j = 0;
        while j < inner.len() {
            match &inner[j] {
                TokenTree::Punct(p) if p.as_char() == '#' => j += 2,
                TokenTree::Ident(id) if id.to_string() == "pub" => {
                    j += 1;
                    if matches!(&inner.get(j), Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis)
                    {
                        j += 1;
                    }
                }
                TokenTree::Ident(id) => {
                    fields.push(id.to_string());
                    j += 1;
                    assert!(
                        matches!(&inner.get(j), Some(TokenTree::Punct(p)) if p.as_char() == ':'),
                        "serde_derive shim: expected `:` after field name"
                    );
                    // Skip the type: everything up to a top-level comma.
                    let mut depth = 0usize;
                    while j < inner.len() {
                        match &inner[j] {
                            TokenTree::Punct(p) if p.as_char() == '<' => depth += 1,
                            TokenTree::Punct(p) if p.as_char() == '>' => {
                                depth = depth.saturating_sub(1)
                            }
                            TokenTree::Punct(p) if p.as_char() == ',' && depth == 0 => break,
                            _ => {}
                        }
                        j += 1;
                    }
                    j += 1; // past the comma
                }
                other => panic!("serde_derive shim: unexpected token in struct body: {other}"),
            }
        }
        Item::Struct { name, fields }
    } else {
        let mut variants = Vec::new();
        let mut j = 0;
        while j < inner.len() {
            match &inner[j] {
                TokenTree::Punct(p) if p.as_char() == '#' => j += 2,
                TokenTree::Ident(id) => {
                    variants.push(id.to_string());
                    j += 1;
                    match &inner.get(j) {
                        None => {}
                        Some(TokenTree::Punct(p)) if p.as_char() == ',' => j += 1,
                        Some(other) => panic!(
                            "serde_derive shim: only unit enum variants are supported, got {other}"
                        ),
                    }
                }
                other => panic!("serde_derive shim: unexpected token in enum body: {other}"),
            }
        }
        Item::Enum { name, variants }
    }
}

#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let out = match parse_item(input) {
        Item::Struct { name, fields } => {
            let pushes: String = fields
                .iter()
                .map(|f| {
                    format!(
                        "m.push((\"{f}\".to_string(), ::serde::Serialize::to_content(&self.{f})));"
                    )
                })
                .collect();
            format!(
                "impl ::serde::Serialize for {name} {{\n\
                     fn to_content(&self) -> ::serde::Content {{\n\
                         let mut m: Vec<(String, ::serde::Content)> = Vec::new();\n\
                         {pushes}\n\
                         ::serde::Content::Map(m)\n\
                     }}\n\
                 }}"
            )
        }
        Item::Enum { name, variants } => {
            let arms: String = variants
                .iter()
                .map(|v| format!("{name}::{v} => ::serde::Content::Str(\"{v}\".to_string()),"))
                .collect();
            format!(
                "impl ::serde::Serialize for {name} {{\n\
                     fn to_content(&self) -> ::serde::Content {{\n\
                         match self {{ {arms} }}\n\
                     }}\n\
                 }}"
            )
        }
    };
    out.parse().expect("serde_derive shim: generated impl failed to parse")
}

#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let name = match parse_item(input) {
        Item::Struct { name, .. } | Item::Enum { name, .. } => name,
    };
    format!("impl ::serde::Deserialize for {name} {{}}")
        .parse()
        .expect("serde_derive shim: generated impl failed to parse")
}

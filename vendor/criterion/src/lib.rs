//! Offline stand-in for `criterion`.
//!
//! Implements the subset of the criterion API the workspace's benches use,
//! with a simple measure-and-print harness: each benchmark runs one warm-up
//! iteration, then `sample_size` timed iterations, and reports the mean
//! wall-clock time per iteration. No statistics beyond the mean — the point
//! is that `cargo bench` runs offline and prints comparable numbers.

#![forbid(unsafe_code)]

use std::fmt::Display;
use std::time::{Duration, Instant};

/// Top-level harness configuration and entry point.
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { sample_size: 10 }
    }
}

impl Criterion {
    /// Number of timed iterations per benchmark.
    pub fn sample_size(mut self, n: usize) -> Self {
        assert!(n > 0, "sample_size must be positive");
        self.sample_size = n;
        self
    }

    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, mut f: F) -> &mut Self {
        let mut b = Bencher { sample_size: self.sample_size, mean: None };
        f(&mut b);
        report(name, b.mean);
        self
    }

    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup { criterion: self, name: name.to_string() }
    }
}

/// A named group of related benchmarks.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
}

impl BenchmarkGroup<'_> {
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl Into<BenchmarkId>,
        mut f: F,
    ) -> &mut Self {
        let id = id.into();
        let mut b = Bencher { sample_size: self.criterion.sample_size, mean: None };
        f(&mut b);
        report(&format!("{}/{}", self.name, id.label), b.mean);
        self
    }

    pub fn bench_with_input<I: ?Sized, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self {
        let mut b = Bencher { sample_size: self.criterion.sample_size, mean: None };
        f(&mut b, input);
        report(&format!("{}/{}", self.name, id.label), b.mean);
        self
    }

    pub fn finish(self) {}
}

/// Identifier of one benchmark within a group.
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    pub fn new(function_name: impl Display, parameter: impl Display) -> Self {
        BenchmarkId { label: format!("{function_name}/{parameter}") }
    }

    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId { label: format!("{parameter}") }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId { label: s.to_string() }
    }
}

/// Passed to the benchmark closure; [`Bencher::iter`] does the timing.
pub struct Bencher {
    sample_size: usize,
    mean: Option<Duration>,
}

impl Bencher {
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        std::hint::black_box(routine()); // warm-up
        let start = Instant::now();
        for _ in 0..self.sample_size {
            std::hint::black_box(routine());
        }
        self.mean = Some(start.elapsed() / self.sample_size as u32);
    }
}

/// Prevent the optimizer from discarding a value (re-export of std's hint).
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

fn report(name: &str, mean: Option<Duration>) {
    match mean {
        Some(d) => println!("bench: {name:<48} {d:>12.3?}/iter"),
        None => println!("bench: {name:<48} (no measurement)"),
    }
}

/// Mirror of criterion's group macro (struct-literal form only).
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $config;
            $( $target(&mut criterion); )+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group!(name = $name; config = $crate::Criterion::default(); targets = $($target),+);
    };
}

/// Mirror of criterion's main macro.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

//! Offline stand-in for `serde_json`.
//!
//! Implements exactly the surface the workspace uses: [`Value`]/[`Map`],
//! the [`json!`] macro, [`to_value`] and [`to_string_pretty`]. Values are
//! built from anything implementing the vendored `serde::Serialize`.

#![forbid(unsafe_code)]

use serde::{Content, Serialize};

/// A JSON value.
#[derive(Clone, Debug, PartialEq)]
pub enum Value {
    Null,
    Bool(bool),
    Number(f64),
    String(String),
    Array(Vec<Value>),
    Object(Map),
}

/// A string-keyed, insertion-ordered JSON object.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct Map {
    entries: Vec<(String, Value)>,
}

impl Map {
    pub fn new() -> Self {
        Map::default()
    }

    /// Insert a key, replacing (and returning) any previous value.
    pub fn insert(&mut self, key: String, value: Value) -> Option<Value> {
        for (k, v) in &mut self.entries {
            if *k == key {
                return Some(std::mem::replace(v, value));
            }
        }
        self.entries.push((key, value));
        None
    }

    pub fn get(&self, key: &str) -> Option<&Value> {
        self.entries.iter().find(|(k, _)| k == key).map(|(_, v)| v)
    }

    pub fn len(&self) -> usize {
        self.entries.len()
    }

    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    pub fn iter(&self) -> impl Iterator<Item = (&String, &Value)> {
        self.entries.iter().map(|(k, v)| (k, v))
    }
}

impl Serialize for Value {
    fn to_content(&self) -> Content {
        match self {
            Value::Null => Content::Null,
            Value::Bool(b) => Content::Bool(*b),
            Value::Number(n) => Content::Num(*n),
            Value::String(s) => Content::Str(s.clone()),
            Value::Array(xs) => Content::Seq(xs.iter().map(Serialize::to_content).collect()),
            Value::Object(m) => {
                Content::Map(m.entries.iter().map(|(k, v)| (k.clone(), v.to_content())).collect())
            }
        }
    }
}

fn from_content(c: Content) -> Value {
    match c {
        Content::Null => Value::Null,
        Content::Bool(b) => Value::Bool(b),
        Content::Num(n) => Value::Number(n),
        Content::Str(s) => Value::String(s),
        Content::Seq(xs) => Value::Array(xs.into_iter().map(from_content).collect()),
        Content::Map(m) => {
            let mut out = Map::new();
            for (k, v) in m {
                out.insert(k, from_content(v));
            }
            Value::Object(out)
        }
    }
}

/// Convert any serializable value into a [`Value`] tree.
pub fn to_value<T: Serialize + ?Sized>(v: &T) -> Value {
    from_content(v.to_content())
}

fn escape_into(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

fn write_number(out: &mut String, n: f64) {
    if !n.is_finite() {
        out.push_str("null");
    } else if n == n.trunc() && n.abs() < 1e15 {
        out.push_str(&format!("{}", n as i64));
    } else {
        out.push_str(&format!("{n}"));
    }
}

fn write_pretty(out: &mut String, v: &Value, indent: usize) {
    let pad = "  ".repeat(indent);
    let pad_in = "  ".repeat(indent + 1);
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::Number(n) => write_number(out, *n),
        Value::String(s) => escape_into(out, s),
        Value::Array(xs) => {
            if xs.is_empty() {
                out.push_str("[]");
                return;
            }
            out.push_str("[\n");
            for (i, x) in xs.iter().enumerate() {
                out.push_str(&pad_in);
                write_pretty(out, x, indent + 1);
                out.push_str(if i + 1 < xs.len() { ",\n" } else { "\n" });
            }
            out.push_str(&pad);
            out.push(']');
        }
        Value::Object(m) => {
            if m.entries.is_empty() {
                out.push_str("{}");
                return;
            }
            out.push_str("{\n");
            for (i, (k, x)) in m.entries.iter().enumerate() {
                out.push_str(&pad_in);
                escape_into(out, k);
                out.push_str(": ");
                write_pretty(out, x, indent + 1);
                out.push_str(if i + 1 < m.entries.len() { ",\n" } else { "\n" });
            }
            out.push_str(&pad);
            out.push('}');
        }
    }
}

/// Pretty-print a serializable value as JSON. Infallible in this shim, but
/// typed as `io::Result` so `?` call sites match the real crate.
pub fn to_string_pretty<T: Serialize + ?Sized>(v: &T) -> std::io::Result<String> {
    let mut out = String::new();
    write_pretty(&mut out, &to_value(v), 0);
    Ok(out)
}

/// Build a [`Value`] from JSON-ish syntax: `json!({"k": expr, ...})`,
/// `json!([a, b])`, or `json!(expr)`. Object and array literals nest; keys
/// must be string literals.
#[macro_export]
macro_rules! json {
    (null) => { $crate::Value::Null };
    ([ $($tt:tt)* ]) => {
        $crate::Value::Array($crate::json_array_items!($($tt)*))
    };
    ({ $($tt:tt)* }) => {{
        #[allow(unused_mut)]
        let mut map = $crate::Map::new();
        $crate::json_object_inner!(map $($tt)*);
        $crate::Value::Object(map)
    }};
    ($other:expr) => {
        $crate::to_value(&$other)
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! json_object_inner {
    ($m:ident) => {};
    ($m:ident ,) => {};
    ($m:ident $k:literal : { $($v:tt)* } $(, $($rest:tt)*)?) => {
        $m.insert($k.to_string(), $crate::json!({ $($v)* }));
        $( $crate::json_object_inner!($m $($rest)*); )?
    };
    ($m:ident $k:literal : [ $($v:tt)* ] $(, $($rest:tt)*)?) => {
        $m.insert($k.to_string(), $crate::json!([ $($v)* ]));
        $( $crate::json_object_inner!($m $($rest)*); )?
    };
    ($m:ident $k:literal : $v:expr , $($rest:tt)*) => {
        $m.insert($k.to_string(), $crate::to_value(&$v));
        $crate::json_object_inner!($m $($rest)*);
    };
    ($m:ident $k:literal : $v:expr) => {
        $m.insert($k.to_string(), $crate::to_value(&$v));
    };
}

/// Builds the element `Vec` of an array literal by prepending the head onto
/// the recursively-built tail (head-first order is preserved).
#[doc(hidden)]
#[macro_export]
macro_rules! json_array_items {
    () => { Vec::new() };
    (,) => { Vec::new() };
    ({ $($v:tt)* } $(, $($rest:tt)*)?) => {{
        let mut items = vec![$crate::json!({ $($v)* })];
        items.extend($crate::json_array_items!($($($rest)*)?));
        items
    }};
    ([ $($v:tt)* ] $(, $($rest:tt)*)?) => {{
        let mut items = vec![$crate::json!([ $($v)* ])];
        items.extend($crate::json_array_items!($($($rest)*)?));
        items
    }};
    ($v:expr , $($rest:tt)*) => {{
        let mut items = vec![$crate::to_value(&$v)];
        items.extend($crate::json_array_items!($($rest)*));
        items
    }};
    ($v:expr) => { vec![$crate::to_value(&$v)] };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn json_macro_shapes() {
        let v = json!({"a": 1.5, "b": [1.0, 2.0], "c": "s"});
        match &v {
            Value::Object(m) => {
                assert_eq!(m.get("a"), Some(&Value::Number(1.5)));
                assert_eq!(m.get("c"), Some(&Value::String("s".into())));
            }
            other => panic!("expected object, got {other:?}"),
        }
        let s = to_string_pretty(&v).unwrap();
        assert!(s.contains("\"a\": 1.5"));
    }

    #[test]
    fn integers_print_without_decimal() {
        let mut s = String::new();
        write_number(&mut s, 3.0);
        assert_eq!(s, "3");
    }
}

//! Viewport prediction with the multimodal encoder: time-series head
//! motion + video saliency frames, adapted with the supervised DD-LRNA
//! pipeline, compared against LR / Velocity / TRACK.
//!
//! ```text
//! cargo run -p netllm --release --example viewport_prediction
//! ```

use netllm::{build_vp_data, AdaptMode, Fidelity, LoraSpec, NetLlmVp, VP_DEFAULT, VP_UNSEEN2};
use nt_llm::{profile_spec, Profile, Zoo};
use nt_vp::{evaluate, LinearRegression, Track, Velocity};

fn main() {
    let fidelity = Fidelity::Smoke;
    println!("== NetLLM viewport prediction ==");
    let data = build_vp_data(&VP_DEFAULT, fidelity);
    println!(
        "dataset: {} train / {} test samples (hw {} samples, pw {} samples @5Hz)",
        data.train.len(),
        data.test.len(),
        VP_DEFAULT.hw(),
        VP_DEFAULT.pw()
    );

    // Rule-based baselines need no training.
    let lr_mae = evaluate(&mut LinearRegression, &data.test, VP_DEFAULT.pw());
    let vel_mae = evaluate(&mut Velocity::default(), &data.test, VP_DEFAULT.pw());

    // TRACK: the learning-based SOTA comparator (LSTM + saliency fusion).
    let mut track = Track::new(1);
    track.train(&data.train, 2, 2e-3, 2);
    let track_mae = evaluate(&mut track, &data.test, VP_DEFAULT.pw());

    // NetLLM: saliency patches + viewport tokens -> frozen LLM + LoRA ->
    // VP head emits the whole horizon in ONE inference.
    let zoo = Zoo::new(std::env::temp_dir().join("netllm-vp-example-zoo"));
    let backbone = zoo.load_or_pretrain(&profile_spec(Profile::LlamaSim), 60);
    let mut model = NetLlmVp::new(backbone, AdaptMode::FullKnowledge, LoraSpec::default(), 30, 3);
    model.adapt(&data.train, 80, 1e-3, 4);
    let netllm_mae = evaluate(&mut model, &data.test, VP_DEFAULT.pw());

    println!("\navg MAE (degrees, lower is better):");
    println!("  LR        {lr_mae:.2}");
    println!("  Velocity  {vel_mae:.2}");
    println!("  TRACK     {track_mae:.2}");
    println!("  NetLLM    {netllm_mae:.2}   (tiny demo budget)");

    // Generalization: evaluate the SAME models on an unseen dataset
    // (different motion statistics) without retraining.
    let unseen = build_vp_data(&VP_UNSEEN2, fidelity);
    let track_u = evaluate(&mut track, &unseen.test, VP_UNSEEN2.pw());
    let netllm_u = evaluate(&mut model, &unseen.test, VP_UNSEEN2.pw());
    println!("\nunseen dataset (wu2017-like), no retraining:");
    println!("  TRACK     {track_u:.2}");
    println!("  NetLLM    {netllm_u:.2}");
}

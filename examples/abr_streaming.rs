//! A full adaptive-bitrate streaming study: chunk simulator AND the
//! transport-aware link emulator (the paper's "real-world" test), across
//! bandwidth families, for all four policies.
//!
//! ```text
//! cargo run -p netllm --release --example abr_streaming
//! ```

use netllm::{adapt_abr, build_abr_env, rl_collect_abr, AdaptMode, Fidelity, ABR_DEFAULT};
use nt_abr::{
    envivio_like, generate_set, run_emulated_session, run_session, stats, AbrPolicy, Bba,
    LinkConfig, Mpc, QoeWeights, SimConfig, TraceKind,
};
use nt_llm::{profile_spec, Profile, Zoo};
use nt_tensor::Rng;

fn main() {
    println!("== ABR streaming study ==");
    let video = envivio_like(&mut Rng::seeded(1));
    println!(
        "video: {} chunks x {}s, ladder {:?} kbps",
        video.num_chunks(),
        video.chunk_secs,
        video.bitrates_kbps
    );

    // Show what the three bandwidth families look like.
    for kind in [TraceKind::FccLike, TraceKind::CellularLike, TraceKind::SynthWide] {
        let set = generate_set(kind, 10, 300, &mut Rng::seeded(2));
        let s: Vec<_> = set.iter().map(stats).collect();
        let mean = s.iter().map(|x| x.mean).sum::<f64>() / s.len() as f64;
        let vol = s.iter().map(|x| x.volatility).sum::<f64>() / s.len() as f64;
        println!("  {:14} mean {:.2} Mbps, volatility {:.2} Mbps/s", kind.name(), mean, vol);
    }

    // Train a small NetLLM ABR model from BBA experience (demo budget).
    let zoo = Zoo::new(std::env::temp_dir().join("netllm-abr-example-zoo"));
    let backbone = zoo.load_or_pretrain(&profile_spec(Profile::LlamaSim), 60);
    let (train_video, train_traces) = build_abr_env(&ABR_DEFAULT, Fidelity::Smoke, true, 3);
    let mut teacher = Mpc::default();
    let dataset = rl_collect_abr(&mut teacher, &train_video, &train_traces);
    let mut netllm_model = adapt_abr(backbone, AdaptMode::FullKnowledge, &dataset, 60, 4);

    // Head-to-head on broadband, in BOTH the chunk simulator and the
    // RTT-aware emulator.
    let traces = generate_set(TraceKind::FccLike, 6, 350, &mut Rng::seeded(5));
    let cfg = SimConfig::default();
    let w = QoeWeights::default();
    let link = LinkConfig::default();

    println!("\npolicy       sim QoE   emu QoE   (emu = 80ms-RTT client/server emulation)");
    let mut bba = Bba::default();
    let mut mpc = Mpc::default();
    let mut rows: Vec<(&str, &mut dyn AbrPolicy)> =
        vec![("BBA", &mut bba), ("MPC", &mut mpc), ("NetLLM", &mut netllm_model)];
    for (name, policy) in rows.iter_mut() {
        let sim: f64 = traces
            .iter()
            .map(|t| run_session(*policy, &video, t, &cfg, &w).0.qoe_per_chunk)
            .sum::<f64>()
            / traces.len() as f64;
        let emu: f64 = traces
            .iter()
            .map(|t| run_emulated_session(*policy, &video, t, &link, &cfg, &w).0.qoe_per_chunk)
            .sum::<f64>()
            / traces.len() as f64;
        println!("{name:12} {sim:+.3}    {emu:+.3}");
    }
    println!("\ntransport overhead (RTT ramp-up) lowers everyone's QoE; policy");
    println!("rankings are what the paper's Fig 14 compares.");
}

//! Cluster job scheduling walkthrough: TPC-H-like DAG workloads through the
//! event-driven cluster simulator under FIFO / Fair / SRPT / Decima /
//! NetLLM.
//!
//! ```text
//! cargo run -p netllm --release --example job_scheduler
//! ```

use netllm::{adapt_cjs, build_cjs_workloads, rl_collect_cjs, AdaptMode, Fidelity, CJS_DEFAULT};
use nt_cjs::{
    generate_workload, run_workload, train_decima, DecimaTrainConfig, Fair, Fifo, Scheduler, Srpt,
    WorkloadConfig,
};
use nt_llm::{profile_spec, Profile, Zoo};

fn main() {
    println!("== NetLLM cluster job scheduling ==");

    // Inspect one workload.
    let preview =
        generate_workload(&WorkloadConfig { num_jobs: 5, mean_interarrival: 1.5, seed: 1 });
    for j in &preview {
        println!(
            "  job {} (template {:2}): {} stages, {} edges, {:.0}s total work, arrives t={:.1}s",
            j.id,
            j.template,
            j.num_stages(),
            j.edges.len(),
            j.total_work(),
            j.arrival
        );
    }

    // Train Decima briefly (BC warm start from SRPT + REINFORCE).
    println!("\ntraining Decima (demo budget)...");
    let mut decima = train_decima(
        CJS_DEFAULT.mean_interarrival,
        &DecimaTrainConfig {
            bc_iters: 10,
            rl_iters: 6,
            episode_jobs: 6,
            executors: 10,
            ..Default::default()
        },
    );

    // Adapt NetLLM from Decima experience (Fig 9 pipeline).
    let zoo = Zoo::new(std::env::temp_dir().join("netllm-cjs-example-zoo"));
    let backbone = zoo.load_or_pretrain(&profile_spec(Profile::LlamaSim), 60);
    let collect_workloads = build_cjs_workloads(&CJS_DEFAULT, Fidelity::Smoke, &[21, 22]);
    let dataset = rl_collect_cjs(&mut decima, &collect_workloads, CJS_DEFAULT.executors);
    println!(
        "collected {} episodes, {} decisions total",
        dataset.len(),
        dataset.iter().map(|t| t.steps.len()).sum::<usize>()
    );
    let mut netllm_sched = adapt_cjs(backbone, AdaptMode::FullKnowledge, &dataset, 40, 5);

    // Evaluate everyone on a held-out workload.
    let jobs = generate_workload(&WorkloadConfig {
        num_jobs: 12,
        mean_interarrival: CJS_DEFAULT.mean_interarrival,
        seed: 99,
    });
    println!("\nscheduler   mean JCT    p90 JCT   makespan   (12 jobs, {} executors)", 20);
    let mut fifo = Fifo;
    let mut fair = Fair;
    let mut srpt = Srpt;
    let mut rows: Vec<(&str, &mut dyn Scheduler)> = vec![
        ("FIFO", &mut fifo),
        ("Fair", &mut fair),
        ("SRPT", &mut srpt),
        ("Decima", &mut decima),
        ("NetLLM", &mut netllm_sched),
    ];
    for (name, sched) in rows.iter_mut() {
        let stats = run_workload(*sched, &jobs, 20, None);
        println!(
            "{name:10} {:8.1}s {:9.1}s {:9.1}s",
            stats.mean_jct(),
            stats.percentile_jct(0.9),
            stats.makespan
        );
    }
    println!("\n(demo budgets — the figures binary trains these properly)");
}

//! Quickstart: adapt a small pre-trained LLM for adaptive bitrate streaming
//! in under a minute, end to end.
//!
//! ```text
//! cargo run -p netllm --release --example quickstart
//! ```
//!
//! Walks the full NetLLM pipeline from the paper's Figure 9:
//! 1. pre-train (or cache-load) a backbone LLM,
//! 2. `RL_Collect`: gather an experience dataset with an existing policy,
//! 3. `Adapt`: data-driven low-rank adaptation (DD-LRNA),
//! 4. `Test`: stream held-out network traces and compare QoE.

use netllm::{
    adapt_abr, build_abr_env, rl_collect_abr, test_abr, AdaptMode, Fidelity, ABR_DEFAULT,
};
use nt_abr::{Bba, Mpc};
use nt_llm::{profile_spec, Profile, Zoo};

fn main() {
    let fidelity = Fidelity::Smoke; // keep the quickstart fast; try Default
    println!("== NetLLM quickstart: ABR ==");

    // 1. Foundation model: a decoder-only Transformer pre-trained in-repo on
    //    synthetic sequence-modelling skills (the Llama2 stand-in).
    let zoo = Zoo::new(std::env::temp_dir().join("netllm-quickstart-zoo"));
    let spec = profile_spec(Profile::LlamaSim);
    let backbone = zoo.load_or_pretrain(&spec, 60);
    println!(
        "backbone `{}`: {} params{}",
        spec.name,
        backbone.lm.num_params(&backbone.store),
        backbone
            .report
            .as_ref()
            .map(|r| format!(
                ", pre-trained {} steps (loss {:.2} -> {:.2})",
                r.steps, r.initial_loss, r.final_loss
            ))
            .unwrap_or_else(|| " (cached)".into())
    );

    // 2. RL_Collect: run an existing policy (here BBA; the paper uses GENET)
    //    over the training environments ONCE.
    let (video, train_traces) = build_abr_env(&ABR_DEFAULT, fidelity, true, 1);
    let mut teacher = Bba::default();
    let dataset = rl_collect_abr(&mut teacher, &video, &train_traces);
    println!("collected {} trajectories x {} chunks", dataset.len(), dataset[0].steps.len());

    // 3. Adapt: freeze the backbone, train LoRA adapters + multimodal
    //    encoder + networking head on the fixed dataset.
    let iters = 60;
    let mut model = adapt_abr(backbone, AdaptMode::FullKnowledge, &dataset, iters, 7);
    println!("adapted for {iters} iterations (target return {:.2})", model.target_return);

    // 4. Test on held-out traces against the rule-based baselines.
    let (video, test_traces) = build_abr_env(&ABR_DEFAULT, fidelity, false, 2);
    let netllm_stats = test_abr(&mut model, &video, &test_traces);
    let bba_stats = test_abr(&mut Bba::default(), &video, &test_traces);
    let mpc_stats = test_abr(&mut Mpc::default(), &video, &test_traces);
    let avg = |s: &[nt_abr::SessionStats]| {
        s.iter().map(|x| x.qoe_per_chunk).sum::<f64>() / s.len() as f64
    };
    println!("\navg QoE over {} held-out traces:", test_traces.len());
    println!("  BBA     {:+.3}", avg(&bba_stats));
    println!("  MPC     {:+.3}", avg(&mpc_stats));
    println!(
        "  NetLLM  {:+.3}   (tiny demo budget; see `figures --fidelity default`)",
        avg(&netllm_stats)
    );
    println!("\nevery NetLLM answer was a valid ladder rung — the networking head");
    println!("cannot hallucinate a bitrate that does not exist.");
}

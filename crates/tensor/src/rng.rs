//! Deterministic random number generation.
//!
//! Everything in this workspace that draws randomness goes through [`Rng`],
//! a self-contained xoshiro256** generator seeded through splitmix64 (no
//! external dependency — the build runs fully offline). Simulators, dataset
//! generators and training loops all take an explicit seed so that every
//! experiment is bit-reproducible.

/// Seeded random source used across the workspace.
#[derive(Clone, Debug)]
pub struct Rng {
    state: [u64; 4],
    /// Cached second output of the Box–Muller transform.
    spare_normal: Option<f32>,
}

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

impl Rng {
    /// Create from a 64-bit seed.
    pub fn seeded(seed: u64) -> Self {
        let mut s = seed;
        let state =
            [splitmix64(&mut s), splitmix64(&mut s), splitmix64(&mut s), splitmix64(&mut s)];
        Rng { state, spare_normal: None }
    }

    /// Next raw 64-bit output (xoshiro256**).
    fn next_u64(&mut self) -> u64 {
        let result = self.state[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
        let t = self.state[1] << 17;
        self.state[2] ^= self.state[0];
        self.state[3] ^= self.state[1];
        self.state[1] ^= self.state[2];
        self.state[0] ^= self.state[3];
        self.state[2] ^= t;
        self.state[3] = self.state[3].rotate_left(45);
        result
    }

    /// Derive an independent child stream; use to give subcomponents their
    /// own reproducible randomness without sharing state.
    pub fn fork(&mut self, salt: u64) -> Rng {
        let s = self.next_u64() ^ salt.wrapping_mul(0x9E37_79B9_7F4A_7C15);
        Rng::seeded(s)
    }

    /// Uniform in `[0, 1)`.
    pub fn unit(&mut self) -> f32 {
        (self.next_u64() >> 40) as f32 / (1u64 << 24) as f32
    }

    /// Uniform in `[lo, hi)`.
    pub fn uniform(&mut self, lo: f32, hi: f32) -> f32 {
        lo + (hi - lo) * self.unit()
    }

    /// Uniform integer in `[0, n)`. Panics when `n == 0`.
    pub fn below(&mut self, n: usize) -> usize {
        assert!(n > 0, "below(0)");
        // Lemire-style rejection-free reduction is overkill here; modulo
        // bias is negligible for the n (< 2^32) this workspace draws.
        (self.next_u64() % n as u64) as usize
    }

    /// Uniform integer in `[lo, hi)`.
    pub fn range(&mut self, lo: usize, hi: usize) -> usize {
        assert!(hi > lo, "empty range");
        lo + self.below(hi - lo)
    }

    /// Bernoulli draw.
    pub fn chance(&mut self, p: f32) -> bool {
        self.unit() < p
    }

    /// Standard normal via Box–Muller.
    pub fn normal(&mut self) -> f32 {
        if let Some(v) = self.spare_normal.take() {
            return v;
        }
        // Avoid ln(0).
        let u1 = (1.0 - self.unit()).max(f32::MIN_POSITIVE);
        let u2 = self.unit();
        let r = (-2.0 * u1.ln()).sqrt();
        let theta = 2.0 * std::f32::consts::PI * u2;
        self.spare_normal = Some(r * theta.sin());
        r * theta.cos()
    }

    /// Normal with explicit mean and standard deviation.
    pub fn normal_ms(&mut self, mean: f32, std: f32) -> f32 {
        mean + std * self.normal()
    }

    /// Log-normal draw parameterised by the underlying normal's mean/std.
    pub fn log_normal(&mut self, mu: f32, sigma: f32) -> f32 {
        self.normal_ms(mu, sigma).exp()
    }

    /// Exponential with rate `lambda`.
    pub fn exponential(&mut self, lambda: f32) -> f32 {
        let u = (1.0 - self.unit()).max(f32::MIN_POSITIVE);
        -u.ln() / lambda
    }

    /// Sample an index from an (unnormalised, non-negative) weight slice.
    /// Falls back to the argmax when the weights do not sum to a positive
    /// finite value.
    pub fn categorical(&mut self, weights: &[f32]) -> usize {
        assert!(!weights.is_empty(), "categorical over empty weights");
        let total: f32 = weights.iter().sum();
        if !(total.is_finite() && total > 0.0) {
            // Argmax over finite weights; NaN entries are ignored.
            let mut best: Option<usize> = None;
            for (i, &w) in weights.iter().enumerate() {
                if w.is_finite() && best.is_none_or(|b| w > weights[b]) {
                    best = Some(i);
                }
            }
            return best.unwrap_or(0);
        }
        let mut x = self.unit() * total;
        for (i, &w) in weights.iter().enumerate() {
            x -= w;
            if x <= 0.0 {
                return i;
            }
        }
        weights.len() - 1
    }

    /// Fisher–Yates shuffle.
    pub fn shuffle<T>(&mut self, v: &mut [T]) {
        for i in (1..v.len()).rev() {
            let j = self.below(i + 1);
            v.swap(i, j);
        }
    }

    /// Choose `k` distinct indices from `0..n` (k <= n).
    pub fn choose_indices(&mut self, n: usize, k: usize) -> Vec<usize> {
        assert!(k <= n, "choose {k} from {n}");
        let mut idx: Vec<usize> = (0..n).collect();
        self.shuffle(&mut idx);
        idx.truncate(k);
        idx
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn seeded_streams_are_reproducible() {
        let mut a = Rng::seeded(42);
        let mut b = Rng::seeded(42);
        for _ in 0..100 {
            assert_eq!(a.unit(), b.unit());
        }
    }

    #[test]
    fn forked_streams_differ_from_parent() {
        let mut a = Rng::seeded(42);
        let mut c = a.fork(1);
        let vals_c: Vec<f32> = (0..10).map(|_| c.unit()).collect();
        let vals_a: Vec<f32> = (0..10).map(|_| a.unit()).collect();
        assert_ne!(vals_a, vals_c);
    }

    #[test]
    fn normal_moments_are_plausible() {
        let mut r = Rng::seeded(7);
        let n = 20_000;
        let xs: Vec<f32> = (0..n).map(|_| r.normal()).collect();
        let mean = xs.iter().sum::<f32>() / n as f32;
        let var = xs.iter().map(|x| (x - mean) * (x - mean)).sum::<f32>() / n as f32;
        assert!(mean.abs() < 0.05, "mean {mean}");
        assert!((var - 1.0).abs() < 0.1, "var {var}");
    }

    #[test]
    fn categorical_respects_weights() {
        let mut r = Rng::seeded(1);
        let mut counts = [0usize; 3];
        for _ in 0..9000 {
            counts[r.categorical(&[1.0, 2.0, 6.0])] += 1;
        }
        assert!(counts[2] > counts[1] && counts[1] > counts[0], "{counts:?}");
    }

    #[test]
    fn categorical_degenerate_weights_fall_back_to_argmax() {
        let mut r = Rng::seeded(1);
        assert_eq!(r.categorical(&[0.0, 0.0, 0.0]), 0);
        assert_eq!(r.categorical(&[f32::NAN, 1.0, 2.0]), 2);
    }

    #[test]
    fn choose_indices_distinct() {
        let mut r = Rng::seeded(5);
        let picks = r.choose_indices(10, 6);
        let mut sorted = picks.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), 6);
    }

    #[test]
    fn exponential_positive() {
        let mut r = Rng::seeded(3);
        for _ in 0..100 {
            assert!(r.exponential(2.0) > 0.0);
        }
    }
}

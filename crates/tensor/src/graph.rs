//! Reverse-mode automatic differentiation on a tape.
//!
//! A [`Graph`] is a per-step tape: leaves are inserted (parameters and
//! inputs), ops append nodes, [`Graph::backward`] walks the tape in reverse
//! and accumulates gradients. The tape is topologically ordered by
//! construction, so no explicit sort is required.
//!
//! The graph also keeps a byte-level account of activation memory
//! ([`Graph::peak_bytes`]); the paper's Figure 4 memory comparison is
//! reproduced from this accounting plus the parameter-store accounting in
//! `nt-nn`.

use crate::rng::Rng;
use crate::shape::{broadcast_shapes, for_each_broadcast2, numel};
use crate::tensor::{gelu as gelu_fwd, matmul_into, softmax_in_place, Tensor, GELU_C};

/// Identifier of a node on the tape.
pub type NodeId = usize;

#[derive(Debug, Clone)]
enum Op {
    Leaf,
    Add,
    Sub,
    Mul,
    Div,
    Neg,
    Scale(f32),
    AddScalar,
    Matmul,
    BatchMatmul,
    TransposeLast2,
    Reshape,
    Concat { axis: usize },
    Narrow { axis: usize, start: usize, len: usize },
    Rows { indices: Vec<usize> },
    Relu,
    Gelu,
    Tanh,
    Sigmoid,
    Exp,
    Ln,
    SoftmaxLast,
    LogSoftmaxLast,
    SumAll,
    MeanAll,
    SumAxis(usize),
    MeanAxis(usize),
    LayerNorm { eps: f32 },
    WeightedCrossEntropy { targets: Vec<usize>, weights: Vec<f32> },
    Mse,
    Dropout { mask: Vec<f32> },
    Conv1d { stride: usize, pad: usize },
}

struct Node {
    value: Tensor,
    grad: Option<Tensor>,
    parents: Vec<NodeId>,
    op: Op,
    needs_grad: bool,
}

/// A reverse-mode autodiff tape.
pub struct Graph {
    nodes: Vec<Node>,
    rng: Rng,
    training: bool,
    /// When `false`, ops skip all backward bookkeeping: parents and op
    /// payloads (gather indices, dropout masks, loss targets) are not
    /// recorded and every node is marked `needs_grad = false`. Forward
    /// values stay addressable, but [`Graph::backward`] must not be called.
    tape: bool,
    cur_bytes: usize,
    peak_bytes: usize,
}

impl Graph {
    /// Create a tape. `training` controls dropout; `seed` feeds dropout masks.
    pub fn new(training: bool, seed: u64) -> Self {
        Graph {
            nodes: Vec::new(),
            rng: Rng::seeded(seed),
            training,
            tape: true,
            cur_bytes: 0,
            peak_bytes: 0,
        }
    }

    /// Inference-mode tape (dropout disabled).
    pub fn inference() -> Self {
        Graph::new(false, 0)
    }

    /// No-tape inference execution: forward values only, no `Node`
    /// parent/op/grad bookkeeping. Forward-only evaluation of graph-built
    /// models runs here (held-out loss, baseline policy rollouts — see
    /// `Fwd::eval_no_tape` in `nt-nn`); the KV-cached decode path avoids
    /// the graph entirely and uses the tensor-level kernels instead.
    /// [`Graph::backward`] panics on such a graph.
    pub fn no_tape() -> Self {
        let mut g = Graph::new(false, 0);
        g.tape = false;
        g
    }

    pub fn is_training(&self) -> bool {
        self.training
    }

    /// Whether backward bookkeeping is being recorded.
    pub fn records_tape(&self) -> bool {
        self.tape
    }

    /// Number of nodes on the tape.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// Peak bytes held by node values and gradients so far.
    pub fn peak_bytes(&self) -> usize {
        self.peak_bytes
    }

    fn push(&mut self, op: Op, parents: Vec<NodeId>, value: Tensor, needs_grad: bool) -> NodeId {
        self.cur_bytes += value.numel() * 4;
        self.peak_bytes = self.peak_bytes.max(self.cur_bytes);
        if self.tape {
            self.nodes.push(Node { value, grad: None, parents, op, needs_grad });
        } else {
            // No-tape mode: drop the backward bookkeeping (op payloads such
            // as gather indices or dropout masks, and the parent links).
            self.nodes.push(Node {
                value,
                grad: None,
                parents: vec![],
                op: Op::Leaf,
                needs_grad: false,
            });
        }
        self.nodes.len() - 1
    }

    fn any_needs_grad(&self, parents: &[NodeId]) -> bool {
        parents.iter().any(|&p| self.nodes[p].needs_grad)
    }

    /// Insert a leaf. `requires_grad` marks it as a differentiation target.
    pub fn leaf(&mut self, value: Tensor, requires_grad: bool) -> NodeId {
        self.push(Op::Leaf, vec![], value, requires_grad)
    }

    /// Insert a non-differentiable constant.
    pub fn constant(&mut self, value: Tensor) -> NodeId {
        self.leaf(value, false)
    }

    /// Value of a node.
    pub fn value(&self, id: NodeId) -> &Tensor {
        &self.nodes[id].value
    }

    /// Gradient of a node after [`Graph::backward`]; `None` when the node was
    /// not on a differentiable path.
    pub fn grad(&self, id: NodeId) -> Option<&Tensor> {
        self.nodes[id].grad.as_ref()
    }

    // ---- elementwise binary -------------------------------------------------

    fn binary(&mut self, op: Op, a: NodeId, b: NodeId, f: impl Fn(f32, f32) -> f32) -> NodeId {
        let out_shape = broadcast_shapes(self.nodes[a].value.shape(), self.nodes[b].value.shape())
            .unwrap_or_else(|| {
                panic!(
                    "cannot broadcast {:?} with {:?}",
                    self.nodes[a].value.shape(),
                    self.nodes[b].value.shape()
                )
            });
        let mut out = Tensor::zeros(out_shape.clone());
        {
            let (av, bv) = (&self.nodes[a].value, &self.nodes[b].value);
            let od = out.data_mut();
            for_each_broadcast2(&out_shape, av.shape(), bv.shape(), |o, ai, bi| {
                od[o] = f(av.data()[ai], bv.data()[bi]);
            });
        }
        let ng = self.any_needs_grad(&[a, b]);
        self.push(op, vec![a, b], out, ng)
    }

    pub fn add(&mut self, a: NodeId, b: NodeId) -> NodeId {
        self.binary(Op::Add, a, b, |x, y| x + y)
    }

    pub fn sub(&mut self, a: NodeId, b: NodeId) -> NodeId {
        self.binary(Op::Sub, a, b, |x, y| x - y)
    }

    pub fn mul(&mut self, a: NodeId, b: NodeId) -> NodeId {
        self.binary(Op::Mul, a, b, |x, y| x * y)
    }

    pub fn div(&mut self, a: NodeId, b: NodeId) -> NodeId {
        self.binary(Op::Div, a, b, |x, y| x / y)
    }

    // ---- elementwise unary --------------------------------------------------

    fn unary(&mut self, op: Op, a: NodeId, f: impl Fn(f32) -> f32) -> NodeId {
        let out = self.nodes[a].value.map(f);
        let ng = self.nodes[a].needs_grad;
        self.push(op, vec![a], out, ng)
    }

    pub fn neg(&mut self, a: NodeId) -> NodeId {
        self.unary(Op::Neg, a, |x| -x)
    }

    pub fn scale(&mut self, a: NodeId, c: f32) -> NodeId {
        self.unary(Op::Scale(c), a, |x| x * c)
    }

    pub fn add_scalar(&mut self, a: NodeId, c: f32) -> NodeId {
        self.unary(Op::AddScalar, a, |x| x + c)
    }

    pub fn relu(&mut self, a: NodeId) -> NodeId {
        self.unary(Op::Relu, a, |x| x.max(0.0))
    }

    pub fn gelu(&mut self, a: NodeId) -> NodeId {
        self.unary(Op::Gelu, a, gelu_fwd)
    }

    pub fn tanh(&mut self, a: NodeId) -> NodeId {
        self.unary(Op::Tanh, a, f32::tanh)
    }

    pub fn sigmoid(&mut self, a: NodeId) -> NodeId {
        self.unary(Op::Sigmoid, a, sigmoid)
    }

    pub fn exp(&mut self, a: NodeId) -> NodeId {
        self.unary(Op::Exp, a, f32::exp)
    }

    /// Natural log; clamps inputs below `1e-12` to avoid `-inf`.
    pub fn ln(&mut self, a: NodeId) -> NodeId {
        self.unary(Op::Ln, a, |x| x.max(1e-12).ln())
    }

    // ---- matmul family ------------------------------------------------------

    /// `[m,k] x [k,n] -> [m,n]`.
    pub fn matmul(&mut self, a: NodeId, b: NodeId) -> NodeId {
        let (av, bv) = (&self.nodes[a].value, &self.nodes[b].value);
        assert_eq!(av.shape().len(), 2, "matmul lhs rank");
        assert_eq!(bv.shape().len(), 2, "matmul rhs rank");
        let (m, k) = (av.shape()[0], av.shape()[1]);
        let (k2, n) = (bv.shape()[0], bv.shape()[1]);
        assert_eq!(k, k2, "matmul inner dims {k} vs {k2}");
        let mut out = vec![0.0f32; m * n];
        matmul_into(av.data(), bv.data(), &mut out, m, k, n);
        let t = Tensor::from_vec([m, n], out);
        let ng = self.any_needs_grad(&[a, b]);
        self.push(Op::Matmul, vec![a, b], t, ng)
    }

    /// `[b,m,k] x [b,k,n] -> [b,m,n]`.
    pub fn batch_matmul(&mut self, a: NodeId, b: NodeId) -> NodeId {
        let (av, bv) = (&self.nodes[a].value, &self.nodes[b].value);
        assert_eq!(av.shape().len(), 3, "batch_matmul lhs rank");
        assert_eq!(bv.shape().len(), 3, "batch_matmul rhs rank");
        let (bt, m, k) = (av.shape()[0], av.shape()[1], av.shape()[2]);
        let (bt2, k2, n) = (bv.shape()[0], bv.shape()[1], bv.shape()[2]);
        assert_eq!(bt, bt2, "batch dims {bt} vs {bt2}");
        assert_eq!(k, k2, "inner dims {k} vs {k2}");
        let mut out = vec![0.0f32; bt * m * n];
        if crate::pool::parallel_worthwhile(bt * m * k * n) && bt > 1 {
            // One batch entry per block: disjoint output slices, identical
            // per-element accumulation order to the serial loop.
            let (ad, bd) = (av.data(), bv.data());
            crate::pool::for_each_block_mut(&mut out, m * n, |i, chunk| {
                matmul_into(
                    &ad[i * m * k..(i + 1) * m * k],
                    &bd[i * k * n..(i + 1) * k * n],
                    chunk,
                    m,
                    k,
                    n,
                );
            });
        } else {
            for i in 0..bt {
                matmul_into(
                    &av.data()[i * m * k..(i + 1) * m * k],
                    &bv.data()[i * k * n..(i + 1) * k * n],
                    &mut out[i * m * n..(i + 1) * m * n],
                    m,
                    k,
                    n,
                );
            }
        }
        let t = Tensor::from_vec([bt, m, n], out);
        let ng = self.any_needs_grad(&[a, b]);
        self.push(Op::BatchMatmul, vec![a, b], t, ng)
    }

    /// Swap the last two dimensions (rank >= 2).
    pub fn transpose_last2(&mut self, a: NodeId) -> NodeId {
        let v = &self.nodes[a].value;
        let out = transpose_last2_t(v);
        let ng = self.nodes[a].needs_grad;
        self.push(Op::TransposeLast2, vec![a], out, ng)
    }

    // ---- shape ops ----------------------------------------------------------

    pub fn reshape(&mut self, a: NodeId, shape: impl Into<Vec<usize>>) -> NodeId {
        let shape = shape.into();
        let v = self.nodes[a].value.clone().reshape(shape);
        let ng = self.nodes[a].needs_grad;
        self.push(Op::Reshape, vec![a], v, ng)
    }

    /// Concatenate along `axis`; all inputs must agree on the other dims.
    pub fn concat(&mut self, parts: &[NodeId], axis: usize) -> NodeId {
        assert!(!parts.is_empty(), "concat of nothing");
        let first = self.nodes[parts[0]].value.shape().to_vec();
        let rank = first.len();
        assert!(axis < rank, "concat axis {axis} out of rank {rank}");
        let mut axis_total = 0usize;
        for &p in parts {
            let s = self.nodes[p].value.shape();
            assert_eq!(s.len(), rank, "concat rank mismatch");
            for d in 0..rank {
                if d != axis {
                    assert_eq!(s[d], first[d], "concat dim {d} mismatch");
                }
            }
            axis_total += s[axis];
        }
        let mut out_shape = first.clone();
        out_shape[axis] = axis_total;
        let outer: usize = first[..axis].iter().product();
        let inner: usize = first[axis + 1..].iter().product();
        let mut out = vec![0.0f32; numel(&out_shape)];
        let mut axis_off = 0usize;
        for &p in parts {
            let v = &self.nodes[p].value;
            let len = v.shape()[axis];
            for o in 0..outer {
                let src = &v.data()[o * len * inner..(o + 1) * len * inner];
                let dst_start = (o * axis_total + axis_off) * inner;
                out[dst_start..dst_start + len * inner].copy_from_slice(src);
            }
            axis_off += len;
        }
        let t = Tensor::from_vec(out_shape, out);
        let ng = self.any_needs_grad(parts);
        self.push(Op::Concat { axis }, parts.to_vec(), t, ng)
    }

    /// Slice `len` entries starting at `start` along `axis`.
    pub fn narrow(&mut self, a: NodeId, axis: usize, start: usize, len: usize) -> NodeId {
        let v = &self.nodes[a].value;
        let shape = v.shape().to_vec();
        assert!(axis < shape.len(), "narrow axis out of range");
        assert!(start + len <= shape[axis], "narrow slice out of bounds");
        let outer: usize = shape[..axis].iter().product();
        let inner: usize = shape[axis + 1..].iter().product();
        let mut out_shape = shape.clone();
        out_shape[axis] = len;
        let mut out = vec![0.0f32; numel(&out_shape)];
        for o in 0..outer {
            let src_start = (o * shape[axis] + start) * inner;
            out[o * len * inner..(o + 1) * len * inner]
                .copy_from_slice(&v.data()[src_start..src_start + len * inner]);
        }
        let t = Tensor::from_vec(out_shape, out);
        let ng = self.nodes[a].needs_grad;
        self.push(Op::Narrow { axis, start, len }, vec![a], t, ng)
    }

    /// Gather rows of a 2-D table: `[v,d]` indexed by `indices` -> `[n,d]`.
    /// This is the embedding lookup.
    pub fn rows(&mut self, table: NodeId, indices: &[usize]) -> NodeId {
        let v = &self.nodes[table].value;
        assert_eq!(v.shape().len(), 2, "rows() needs a 2-D table");
        let (vocab, d) = (v.shape()[0], v.shape()[1]);
        let mut out = Vec::with_capacity(indices.len() * d);
        for &i in indices {
            assert!(i < vocab, "row index {i} out of table {vocab}");
            out.extend_from_slice(&v.data()[i * d..(i + 1) * d]);
        }
        let t = Tensor::from_vec([indices.len(), d], out);
        let ng = self.nodes[table].needs_grad;
        self.push(Op::Rows { indices: indices.to_vec() }, vec![table], t, ng)
    }

    // ---- reductions ---------------------------------------------------------

    pub fn sum_all(&mut self, a: NodeId) -> NodeId {
        let s = self.nodes[a].value.sum();
        let ng = self.nodes[a].needs_grad;
        self.push(Op::SumAll, vec![a], Tensor::scalar(s), ng)
    }

    pub fn mean_all(&mut self, a: NodeId) -> NodeId {
        let s = self.nodes[a].value.mean();
        let ng = self.nodes[a].needs_grad;
        self.push(Op::MeanAll, vec![a], Tensor::scalar(s), ng)
    }

    fn reduce_axis(&mut self, a: NodeId, axis: usize, mean: bool) -> NodeId {
        let v = &self.nodes[a].value;
        let shape = v.shape().to_vec();
        assert!(axis < shape.len(), "reduce axis out of range");
        let outer: usize = shape[..axis].iter().product();
        let inner: usize = shape[axis + 1..].iter().product();
        let d = shape[axis];
        let mut out_shape = shape.clone();
        out_shape.remove(axis);
        let mut out = vec![0.0f32; outer * inner];
        for o in 0..outer {
            for j in 0..d {
                let base = (o * d + j) * inner;
                for i in 0..inner {
                    out[o * inner + i] += v.data()[base + i];
                }
            }
        }
        if mean {
            for x in &mut out {
                *x /= d as f32;
            }
        }
        let t = Tensor::from_vec(out_shape, out);
        let ng = self.nodes[a].needs_grad;
        let op = if mean { Op::MeanAxis(axis) } else { Op::SumAxis(axis) };
        self.push(op, vec![a], t, ng)
    }

    pub fn sum_axis(&mut self, a: NodeId, axis: usize) -> NodeId {
        self.reduce_axis(a, axis, false)
    }

    pub fn mean_axis(&mut self, a: NodeId, axis: usize) -> NodeId {
        self.reduce_axis(a, axis, true)
    }

    // ---- softmax family -----------------------------------------------------

    pub fn softmax_last(&mut self, a: NodeId) -> NodeId {
        let out = self.nodes[a].value.softmax_last();
        let ng = self.nodes[a].needs_grad;
        self.push(Op::SoftmaxLast, vec![a], out, ng)
    }

    pub fn log_softmax_last(&mut self, a: NodeId) -> NodeId {
        let v = &self.nodes[a].value;
        let cols = *v.shape().last().expect("log_softmax needs rank >= 1");
        let rows = v.numel() / cols.max(1);
        let mut out = v.clone();
        for r in 0..rows {
            let s = &mut out.data_mut()[r * cols..(r + 1) * cols];
            let mx = s.iter().cloned().fold(f32::NEG_INFINITY, f32::max);
            let lse = mx + s.iter().map(|x| (x - mx).exp()).sum::<f32>().ln();
            for x in s.iter_mut() {
                *x -= lse;
            }
        }
        let ng = self.nodes[a].needs_grad;
        self.push(Op::LogSoftmaxLast, vec![a], out, ng)
    }

    // ---- fused losses / layers ----------------------------------------------

    /// Mean cross-entropy of `logits` (`[n,c]`) against integer `targets`.
    pub fn cross_entropy(&mut self, logits: NodeId, targets: &[usize]) -> NodeId {
        let w = vec![1.0f32; targets.len()];
        self.weighted_cross_entropy(logits, targets, &w)
    }

    /// Per-sample weighted mean cross-entropy. Used both for supervised
    /// training (unit weights) and policy-gradient losses (advantage weights).
    pub fn weighted_cross_entropy(
        &mut self,
        logits: NodeId,
        targets: &[usize],
        weights: &[f32],
    ) -> NodeId {
        let v = &self.nodes[logits].value;
        assert_eq!(v.shape().len(), 2, "cross_entropy logits must be [n,c]");
        let (n, c) = (v.shape()[0], v.shape()[1]);
        assert_eq!(targets.len(), n, "targets len");
        assert_eq!(weights.len(), n, "weights len");
        let mut loss = 0.0f64;
        for r in 0..n {
            let row = &v.data()[r * c..(r + 1) * c];
            let t = targets[r];
            assert!(t < c, "target {t} out of {c} classes");
            let mx = row.iter().cloned().fold(f32::NEG_INFINITY, f32::max);
            let lse = mx + row.iter().map(|x| (x - mx).exp()).sum::<f32>().ln();
            loss += (weights[r] * (lse - row[t])) as f64;
        }
        let t = Tensor::scalar((loss / n.max(1) as f64) as f32);
        let ng = self.nodes[logits].needs_grad;
        self.push(
            Op::WeightedCrossEntropy { targets: targets.to_vec(), weights: weights.to_vec() },
            vec![logits],
            t,
            ng,
        )
    }

    /// Mean squared error between two same-shaped tensors (scalar output).
    pub fn mse(&mut self, pred: NodeId, target: NodeId) -> NodeId {
        let (pv, tv) = (&self.nodes[pred].value, &self.nodes[target].value);
        assert_eq!(pv.shape(), tv.shape(), "mse shape mismatch");
        let n = pv.numel().max(1);
        let mut s = 0.0f64;
        for i in 0..pv.numel() {
            let d = (pv.data()[i] - tv.data()[i]) as f64;
            s += d * d;
        }
        let t = Tensor::scalar((s / n as f64) as f32);
        let ng = self.any_needs_grad(&[pred, target]);
        self.push(Op::Mse, vec![pred, target], t, ng)
    }

    /// Layer normalisation over the last dimension with affine parameters.
    /// `gamma` and `beta` must be 1-D of the last-dim size.
    pub fn layer_norm(&mut self, x: NodeId, gamma: NodeId, beta: NodeId, eps: f32) -> NodeId {
        let v = &self.nodes[x].value;
        let d = *v.shape().last().expect("layer_norm needs rank >= 1");
        assert_eq!(self.nodes[gamma].value.shape(), &[d], "gamma shape");
        assert_eq!(self.nodes[beta].value.shape(), &[d], "beta shape");
        let rows = v.numel() / d;
        let mut out = v.clone();
        let gv = self.nodes[gamma].value.data();
        let bv = self.nodes[beta].value.data();
        for r in 0..rows {
            let s = &mut out.data_mut()[r * d..(r + 1) * d];
            let mean = s.iter().sum::<f32>() / d as f32;
            let var = s.iter().map(|x| (x - mean) * (x - mean)).sum::<f32>() / d as f32;
            let inv = 1.0 / (var + eps).sqrt();
            for (i, x) in s.iter_mut().enumerate() {
                *x = (*x - mean) * inv * gv[i] + bv[i];
            }
        }
        let ng = self.any_needs_grad(&[x, gamma, beta]);
        self.push(Op::LayerNorm { eps }, vec![x, gamma, beta], out, ng)
    }

    /// Inverted dropout; identity in inference mode.
    pub fn dropout(&mut self, a: NodeId, p: f32) -> NodeId {
        if !self.training || p <= 0.0 {
            return a;
        }
        let keep = 1.0 - p;
        let n = self.nodes[a].value.numel();
        let mask: Vec<f32> =
            (0..n).map(|_| if self.rng.unit() < keep { 1.0 / keep } else { 0.0 }).collect();
        let v = &self.nodes[a].value;
        let mut out = v.clone();
        for (o, m) in out.data_mut().iter_mut().zip(&mask) {
            *o *= m;
        }
        let ng = self.nodes[a].needs_grad;
        self.push(Op::Dropout { mask }, vec![a], out, ng)
    }

    /// 1-D convolution: `x [b,ci,t]`, `w [co,ci,k]`, `bias [co]`.
    pub fn conv1d(
        &mut self,
        x: NodeId,
        w: NodeId,
        bias: NodeId,
        stride: usize,
        pad: usize,
    ) -> NodeId {
        let xv = &self.nodes[x].value;
        let wv = &self.nodes[w].value;
        let bv = &self.nodes[bias].value;
        assert_eq!(xv.shape().len(), 3, "conv1d input must be [b,ci,t]");
        assert_eq!(wv.shape().len(), 3, "conv1d weight must be [co,ci,k]");
        let (b, ci, t) = (xv.shape()[0], xv.shape()[1], xv.shape()[2]);
        let (co, ci2, k) = (wv.shape()[0], wv.shape()[1], wv.shape()[2]);
        assert_eq!(ci, ci2, "conv1d channel mismatch");
        assert_eq!(bv.shape(), &[co], "conv1d bias shape");
        assert!(t + 2 * pad >= k, "conv1d kernel larger than padded input");
        let t_out = (t + 2 * pad - k) / stride + 1;
        let mut out = vec![0.0f32; b * co * t_out];
        for bi in 0..b {
            for oc in 0..co {
                for ot in 0..t_out {
                    let mut acc = bv.data()[oc];
                    for icc in 0..ci {
                        for kk in 0..k {
                            let it = (ot * stride + kk) as isize - pad as isize;
                            if it < 0 || it >= t as isize {
                                continue;
                            }
                            acc += xv.data()[(bi * ci + icc) * t + it as usize]
                                * wv.data()[(oc * ci + icc) * k + kk];
                        }
                    }
                    out[(bi * co + oc) * t_out + ot] = acc;
                }
            }
        }
        let tshape = Tensor::from_vec([b, co, t_out], out);
        let ng = self.any_needs_grad(&[x, w, bias]);
        self.push(Op::Conv1d { stride, pad }, vec![x, w, bias], tshape, ng)
    }

    // ---- backward -----------------------------------------------------------

    /// Backpropagate from a scalar `loss` node, filling node gradients.
    pub fn backward(&mut self, loss: NodeId) {
        assert!(self.tape, "backward() on a no-tape inference graph");
        assert_eq!(self.nodes[loss].value.numel(), 1, "backward from non-scalar");
        let mut grads: Vec<Option<Vec<f32>>> = (0..self.nodes.len()).map(|_| None).collect();
        grads[loss] = Some(vec![1.0]);
        for id in (0..=loss).rev() {
            let Some(g) = grads[id].take() else { continue };
            if self.nodes[id].needs_grad {
                self.backward_op(id, &g, &mut grads);
            }
            self.cur_bytes += g.len() * 4;
            self.peak_bytes = self.peak_bytes.max(self.cur_bytes);
            let shape = self.nodes[id].value.shape().to_vec();
            self.nodes[id].grad = Some(Tensor::from_vec(shape, g));
        }
    }

    fn acc(&self, grads: &mut [Option<Vec<f32>>], id: NodeId, write: impl FnOnce(&mut [f32])) {
        if !self.nodes[id].needs_grad {
            return;
        }
        let n = self.nodes[id].value.numel();
        let slot = grads[id].get_or_insert_with(|| vec![0.0; n]);
        write(slot);
    }

    #[allow(clippy::too_many_lines)]
    fn backward_op(&self, id: NodeId, g: &[f32], grads: &mut [Option<Vec<f32>>]) {
        let node = &self.nodes[id];
        let ps = node.parents.clone();
        match &node.op {
            Op::Leaf => {}
            Op::Add | Op::Sub | Op::Mul | Op::Div => {
                let (a, b) = (ps[0], ps[1]);
                let ash = self.nodes[a].value.shape().to_vec();
                let bsh = self.nodes[b].value.shape().to_vec();
                let out_shape = node.value.shape().to_vec();
                let av = self.nodes[a].value.data();
                let bv = self.nodes[b].value.data();
                // Accumulate into local buffers first to avoid double borrows.
                let mut ga = vec![0.0f32; av.len()];
                let mut gb = vec![0.0f32; bv.len()];
                let op = &node.op;
                for_each_broadcast2(&out_shape, &ash, &bsh, |o, ai, bi| match op {
                    Op::Add => {
                        ga[ai] += g[o];
                        gb[bi] += g[o];
                    }
                    Op::Sub => {
                        ga[ai] += g[o];
                        gb[bi] -= g[o];
                    }
                    Op::Mul => {
                        ga[ai] += g[o] * bv[bi];
                        gb[bi] += g[o] * av[ai];
                    }
                    Op::Div => {
                        ga[ai] += g[o] / bv[bi];
                        gb[bi] -= g[o] * av[ai] / (bv[bi] * bv[bi]);
                    }
                    _ => unreachable!(),
                });
                self.acc(grads, a, |s| add_into(s, &ga));
                self.acc(grads, b, |s| add_into(s, &gb));
            }
            Op::Neg => self.acc(grads, ps[0], |s| {
                for (si, gi) in s.iter_mut().zip(g) {
                    *si -= gi;
                }
            }),
            Op::Scale(c) => {
                let c = *c;
                self.acc(grads, ps[0], |s| {
                    for (si, gi) in s.iter_mut().zip(g) {
                        *si += gi * c;
                    }
                })
            }
            Op::AddScalar => self.acc(grads, ps[0], |s| add_into(s, g)),
            Op::Relu => {
                let x = self.nodes[ps[0]].value.data();
                self.acc(grads, ps[0], |s| {
                    for i in 0..s.len() {
                        if x[i] > 0.0 {
                            s[i] += g[i];
                        }
                    }
                });
            }
            Op::Gelu => {
                let x = self.nodes[ps[0]].value.data();
                self.acc(grads, ps[0], |s| {
                    for i in 0..s.len() {
                        s[i] += g[i] * gelu_bwd(x[i]);
                    }
                });
            }
            Op::Tanh => {
                let y = node.value.data();
                self.acc(grads, ps[0], |s| {
                    for i in 0..s.len() {
                        s[i] += g[i] * (1.0 - y[i] * y[i]);
                    }
                });
            }
            Op::Sigmoid => {
                let y = node.value.data();
                self.acc(grads, ps[0], |s| {
                    for i in 0..s.len() {
                        s[i] += g[i] * y[i] * (1.0 - y[i]);
                    }
                });
            }
            Op::Exp => {
                let y = node.value.data();
                self.acc(grads, ps[0], |s| {
                    for i in 0..s.len() {
                        s[i] += g[i] * y[i];
                    }
                });
            }
            Op::Ln => {
                let x = self.nodes[ps[0]].value.data();
                self.acc(grads, ps[0], |s| {
                    for i in 0..s.len() {
                        s[i] += g[i] / x[i].max(1e-12);
                    }
                });
            }
            Op::Matmul => {
                let (a, b) = (ps[0], ps[1]);
                let av = &self.nodes[a].value;
                let bv = &self.nodes[b].value;
                let (m, k) = (av.shape()[0], av.shape()[1]);
                let n = bv.shape()[1];
                if self.nodes[a].needs_grad {
                    // dA = G x B^T
                    let bt = bv.t();
                    let mut da = vec![0.0f32; m * k];
                    matmul_into(g, bt.data(), &mut da, m, n, k);
                    self.acc(grads, a, |s| add_into(s, &da));
                }
                if self.nodes[b].needs_grad {
                    // dB = A^T x G
                    let at = av.t();
                    let mut db = vec![0.0f32; k * n];
                    matmul_into(at.data(), g, &mut db, k, m, n);
                    self.acc(grads, b, |s| add_into(s, &db));
                }
            }
            Op::BatchMatmul => {
                let (a, b) = (ps[0], ps[1]);
                let av = &self.nodes[a].value;
                let bv = &self.nodes[b].value;
                let (bt, m, k) = (av.shape()[0], av.shape()[1], av.shape()[2]);
                let n = bv.shape()[2];
                if self.nodes[a].needs_grad {
                    let mut da = vec![0.0f32; bt * m * k];
                    for i in 0..bt {
                        let bslice = &bv.data()[i * k * n..(i + 1) * k * n];
                        let btrans = transpose2(bslice, k, n);
                        matmul_into(
                            &g[i * m * n..(i + 1) * m * n],
                            &btrans,
                            &mut da[i * m * k..(i + 1) * m * k],
                            m,
                            n,
                            k,
                        );
                    }
                    self.acc(grads, a, |s| add_into(s, &da));
                }
                if self.nodes[b].needs_grad {
                    let mut db = vec![0.0f32; bt * k * n];
                    for i in 0..bt {
                        let aslice = &av.data()[i * m * k..(i + 1) * m * k];
                        let atrans = transpose2(aslice, m, k);
                        matmul_into(
                            &atrans,
                            &g[i * m * n..(i + 1) * m * n],
                            &mut db[i * k * n..(i + 1) * k * n],
                            k,
                            m,
                            n,
                        );
                    }
                    self.acc(grads, b, |s| add_into(s, &db));
                }
            }
            Op::TransposeLast2 => {
                let out_shape = node.value.shape().to_vec();
                let gt = Tensor::from_vec(out_shape, g.to_vec());
                let back = transpose_last2_t(&gt);
                self.acc(grads, ps[0], |s| add_into(s, back.data()));
            }
            Op::Reshape => self.acc(grads, ps[0], |s| add_into(s, g)),
            Op::Concat { axis } => {
                let axis = *axis;
                let out_shape = node.value.shape().to_vec();
                let outer: usize = out_shape[..axis].iter().product();
                let inner: usize = out_shape[axis + 1..].iter().product();
                let total = out_shape[axis];
                let mut axis_off = 0usize;
                for &p in &ps {
                    let len = self.nodes[p].value.shape()[axis];
                    if self.nodes[p].needs_grad {
                        let mut gp = vec![0.0f32; self.nodes[p].value.numel()];
                        for o in 0..outer {
                            let src_start = (o * total + axis_off) * inner;
                            gp[o * len * inner..(o + 1) * len * inner]
                                .copy_from_slice(&g[src_start..src_start + len * inner]);
                        }
                        self.acc(grads, p, |s| add_into(s, &gp));
                    }
                    axis_off += len;
                }
            }
            Op::Narrow { axis, start, len } => {
                let (axis, start, len) = (*axis, *start, *len);
                let pshape = self.nodes[ps[0]].value.shape().to_vec();
                let outer: usize = pshape[..axis].iter().product();
                let inner: usize = pshape[axis + 1..].iter().product();
                let d = pshape[axis];
                self.acc(grads, ps[0], |s| {
                    for o in 0..outer {
                        for j in 0..len {
                            let dst = (o * d + start + j) * inner;
                            let src = (o * len + j) * inner;
                            for i in 0..inner {
                                s[dst + i] += g[src + i];
                            }
                        }
                    }
                });
            }
            Op::Rows { indices } => {
                let d = self.nodes[ps[0]].value.shape()[1];
                self.acc(grads, ps[0], |s| {
                    for (r, &i) in indices.iter().enumerate() {
                        for j in 0..d {
                            s[i * d + j] += g[r * d + j];
                        }
                    }
                });
            }
            Op::SumAll => self.acc(grads, ps[0], |s| {
                for si in s.iter_mut() {
                    *si += g[0];
                }
            }),
            Op::MeanAll => {
                let n = self.nodes[ps[0]].value.numel().max(1) as f32;
                self.acc(grads, ps[0], |s| {
                    for si in s.iter_mut() {
                        *si += g[0] / n;
                    }
                });
            }
            Op::SumAxis(axis) | Op::MeanAxis(axis) => {
                let axis = *axis;
                let pshape = self.nodes[ps[0]].value.shape().to_vec();
                let outer: usize = pshape[..axis].iter().product();
                let inner: usize = pshape[axis + 1..].iter().product();
                let d = pshape[axis];
                let scale = if matches!(node.op, Op::MeanAxis(_)) { 1.0 / d as f32 } else { 1.0 };
                self.acc(grads, ps[0], |s| {
                    for o in 0..outer {
                        for j in 0..d {
                            let base = (o * d + j) * inner;
                            for i in 0..inner {
                                s[base + i] += g[o * inner + i] * scale;
                            }
                        }
                    }
                });
            }
            Op::SoftmaxLast => {
                let y = node.value.data();
                let cols = *node.value.shape().last().unwrap();
                let rows = y.len() / cols.max(1);
                self.acc(grads, ps[0], |s| {
                    for r in 0..rows {
                        let off = r * cols;
                        let dot: f32 = (0..cols).map(|i| g[off + i] * y[off + i]).sum();
                        for i in 0..cols {
                            s[off + i] += y[off + i] * (g[off + i] - dot);
                        }
                    }
                });
            }
            Op::LogSoftmaxLast => {
                let y = node.value.data();
                let cols = *node.value.shape().last().unwrap();
                let rows = y.len() / cols.max(1);
                self.acc(grads, ps[0], |s| {
                    for r in 0..rows {
                        let off = r * cols;
                        let gsum: f32 = (0..cols).map(|i| g[off + i]).sum();
                        for i in 0..cols {
                            s[off + i] += g[off + i] - y[off + i].exp() * gsum;
                        }
                    }
                });
            }
            Op::WeightedCrossEntropy { targets, weights } => {
                let v = &self.nodes[ps[0]].value;
                let (n, c) = (v.shape()[0], v.shape()[1]);
                let scale = g[0] / n.max(1) as f32;
                self.acc(grads, ps[0], |s| {
                    for r in 0..n {
                        let row = &v.data()[r * c..(r + 1) * c];
                        let mut sm = row.to_vec();
                        softmax_in_place(&mut sm);
                        let w = weights[r] * scale;
                        for i in 0..c {
                            let onehot = if i == targets[r] { 1.0 } else { 0.0 };
                            s[r * c + i] += w * (sm[i] - onehot);
                        }
                    }
                });
            }
            Op::Mse => {
                let (p, t) = (ps[0], ps[1]);
                let pv = self.nodes[p].value.data();
                let tv = self.nodes[t].value.data();
                let n = pv.len().max(1) as f32;
                let scale = 2.0 * g[0] / n;
                self.acc(grads, p, |s| {
                    for i in 0..s.len() {
                        s[i] += scale * (pv[i] - tv[i]);
                    }
                });
                self.acc(grads, t, |s| {
                    for i in 0..s.len() {
                        s[i] -= scale * (pv[i] - tv[i]);
                    }
                });
            }
            Op::Dropout { mask } => self.acc(grads, ps[0], |s| {
                for i in 0..s.len() {
                    s[i] += g[i] * mask[i];
                }
            }),
            Op::LayerNorm { eps } => {
                let eps = *eps;
                let x = &self.nodes[ps[0]].value;
                let d = *x.shape().last().unwrap();
                let rows = x.numel() / d;
                let gv = self.nodes[ps[1]].value.data();
                let xd = x.data();
                // Per-row statistics recomputed (cheaper than storing).
                let mut dgamma = vec![0.0f32; d];
                let mut dbeta = vec![0.0f32; d];
                let mut dx = vec![0.0f32; xd.len()];
                for r in 0..rows {
                    let off = r * d;
                    let row = &xd[off..off + d];
                    let mean = row.iter().sum::<f32>() / d as f32;
                    let var = row.iter().map(|v| (v - mean) * (v - mean)).sum::<f32>() / d as f32;
                    let inv = 1.0 / (var + eps).sqrt();
                    // xhat_i = (x_i - mean) * inv
                    let mut sum_gy = 0.0f32;
                    let mut sum_gy_xhat = 0.0f32;
                    for i in 0..d {
                        let xhat = (row[i] - mean) * inv;
                        let gy = g[off + i] * gv[i];
                        sum_gy += gy;
                        sum_gy_xhat += gy * xhat;
                        dgamma[i] += g[off + i] * xhat;
                        dbeta[i] += g[off + i];
                    }
                    for i in 0..d {
                        let xhat = (row[i] - mean) * inv;
                        let gy = g[off + i] * gv[i];
                        dx[off + i] +=
                            inv * (gy - sum_gy / d as f32 - xhat * sum_gy_xhat / d as f32);
                    }
                }
                self.acc(grads, ps[0], |s| add_into(s, &dx));
                self.acc(grads, ps[1], |s| add_into(s, &dgamma));
                self.acc(grads, ps[2], |s| add_into(s, &dbeta));
            }
            Op::Conv1d { stride, pad } => {
                let (stride, pad) = (*stride, *pad);
                let xv = &self.nodes[ps[0]].value;
                let wv = &self.nodes[ps[1]].value;
                let (b, ci, t) = (xv.shape()[0], xv.shape()[1], xv.shape()[2]);
                let (co, _, k) = (wv.shape()[0], wv.shape()[1], wv.shape()[2]);
                let t_out = (t + 2 * pad - k) / stride + 1;
                let mut dx = vec![0.0f32; xv.numel()];
                let mut dw = vec![0.0f32; wv.numel()];
                let mut db = vec![0.0f32; co];
                for bi in 0..b {
                    for oc in 0..co {
                        for ot in 0..t_out {
                            let go = g[(bi * co + oc) * t_out + ot];
                            if go == 0.0 {
                                continue;
                            }
                            db[oc] += go;
                            for icc in 0..ci {
                                for kk in 0..k {
                                    let it = (ot * stride + kk) as isize - pad as isize;
                                    if it < 0 || it >= t as isize {
                                        continue;
                                    }
                                    let xi = (bi * ci + icc) * t + it as usize;
                                    let wi = (oc * ci + icc) * k + kk;
                                    dx[xi] += go * wv.data()[wi];
                                    dw[wi] += go * xv.data()[xi];
                                }
                            }
                        }
                    }
                }
                self.acc(grads, ps[0], |s| add_into(s, &dx));
                self.acc(grads, ps[1], |s| add_into(s, &dw));
                self.acc(grads, ps[2], |s| add_into(s, &db));
            }
        }
    }
}

fn add_into(dst: &mut [f32], src: &[f32]) {
    debug_assert_eq!(dst.len(), src.len());
    for (d, s) in dst.iter_mut().zip(src) {
        *d += s;
    }
}

fn sigmoid(x: f32) -> f32 {
    1.0 / (1.0 + (-x).exp())
}

fn gelu_bwd(x: f32) -> f32 {
    let u = GELU_C * (x + 0.044715 * x * x * x);
    let t = crate::tensor::tanh_fast(u);
    let du = GELU_C * (1.0 + 3.0 * 0.044715 * x * x);
    0.5 * (1.0 + t) + 0.5 * x * (1.0 - t * t) * du
}

fn transpose2(a: &[f32], m: usize, n: usize) -> Vec<f32> {
    let mut out = vec![0.0f32; m * n];
    for i in 0..m {
        for j in 0..n {
            out[j * m + i] = a[i * n + j];
        }
    }
    out
}

fn transpose_last2_t(v: &Tensor) -> Tensor {
    let shape = v.shape();
    assert!(shape.len() >= 2, "transpose_last2 needs rank >= 2");
    let (m, n) = (shape[shape.len() - 2], shape[shape.len() - 1]);
    let batch: usize = shape[..shape.len() - 2].iter().product();
    let mut out_shape = shape.to_vec();
    let l = out_shape.len();
    out_shape.swap(l - 2, l - 1);
    let mut out = vec![0.0f32; v.numel()];
    for bi in 0..batch {
        let src = &v.data()[bi * m * n..(bi + 1) * m * n];
        let dst = &mut out[bi * m * n..(bi + 1) * m * n];
        for i in 0..m {
            for j in 0..n {
                dst[j * m + i] = src[i * n + j];
            }
        }
    }
    Tensor::from_vec(out_shape, out)
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Numerically check d(loss)/d(leaf) for a scalar-producing builder.
    fn grad_check(input: Tensor, build: impl Fn(&mut Graph, NodeId) -> NodeId) {
        let mut g = Graph::new(false, 0);
        let x = g.leaf(input.clone(), true);
        let loss = build(&mut g, x);
        g.backward(loss);
        let analytic = g.grad(x).expect("no grad").clone();

        let eps = 1e-3f32;
        for i in 0..input.numel() {
            let mut plus = input.clone();
            plus.data_mut()[i] += eps;
            let mut minus = input.clone();
            minus.data_mut()[i] -= eps;
            let mut gp = Graph::new(false, 0);
            let xp = gp.leaf(plus, true);
            let lp = build(&mut gp, xp);
            let mut gm = Graph::new(false, 0);
            let xm = gm.leaf(minus, true);
            let lm = build(&mut gm, xm);
            let numeric = (gp.value(lp).item() - gm.value(lm).item()) / (2.0 * eps);
            let a = analytic.data()[i];
            let denom = numeric.abs().max(a.abs()).max(1.0);
            assert!(
                (numeric - a).abs() / denom < 2e-2,
                "grad mismatch at {i}: numeric {numeric} vs analytic {a}"
            );
        }
    }

    fn probe() -> Tensor {
        Tensor::from_vec([2, 3], vec![0.5, -1.2, 0.3, 2.0, -0.7, 1.1])
    }

    #[test]
    fn grad_add_mul_chain() {
        grad_check(probe(), |g, x| {
            let c = g.constant(Tensor::from_vec([2, 3], vec![1., 2., 3., 4., 5., 6.]));
            let y = g.mul(x, c);
            let z = g.add(y, x);
            g.sum_all(z)
        });
    }

    #[test]
    fn grad_broadcast_add() {
        grad_check(probe(), |g, x| {
            let b = g.constant(Tensor::from_slice(&[1.0, -2.0, 0.5]));
            let y = g.add(x, b);
            let sq = g.mul(y, y);
            g.mean_all(sq)
        });
    }

    #[test]
    fn grad_broadcast_reduces_into_small_operand() {
        // Gradient must SUM over the broadcast dimension for the small side.
        let mut g = Graph::new(false, 0);
        let big = g.constant(Tensor::ones([4, 3]));
        let small = g.leaf(Tensor::from_slice(&[1.0, 2.0, 3.0]), true);
        let y = g.mul(big, small);
        let l = g.sum_all(y);
        g.backward(l);
        assert_eq!(g.grad(small).unwrap().data(), &[4.0, 4.0, 4.0]);
    }

    #[test]
    fn grad_div() {
        grad_check(probe(), |g, x| {
            let c = g.constant(Tensor::from_vec([2, 3], vec![2., 3., 4., 5., 6., 7.]));
            let y = g.div(x, c);
            g.sum_all(y)
        });
    }

    #[test]
    fn grad_matmul_both_sides() {
        let a = Tensor::from_vec([2, 3], vec![0.1, 0.2, -0.3, 0.4, 0.5, -0.6]);
        grad_check(a, |g, x| {
            let w = g.constant(Tensor::from_vec([3, 2], vec![1., -1., 2., 0.5, -0.5, 1.5]));
            let y = g.matmul(x, w);
            let sq = g.mul(y, y);
            g.sum_all(sq)
        });
        // and for the rhs
        let b = Tensor::from_vec([3, 2], vec![1., -1., 2., 0.5, -0.5, 1.5]);
        grad_check(b, |g, x| {
            let a = g.constant(Tensor::from_vec([2, 3], vec![0.1, 0.2, -0.3, 0.4, 0.5, -0.6]));
            let y = g.matmul(a, x);
            g.sum_all(y)
        });
    }

    #[test]
    fn grad_batch_matmul() {
        let a = Tensor::from_vec([2, 2, 2], vec![0.1, 0.2, -0.3, 0.4, 0.5, -0.6, 0.7, 0.8]);
        grad_check(a, |g, x| {
            let b = g.constant(Tensor::from_vec(
                [2, 2, 2],
                vec![1., -1., 2., 0.5, -0.5, 1.5, 0.3, -0.2],
            ));
            let y = g.batch_matmul(x, b);
            let sq = g.mul(y, y);
            g.sum_all(sq)
        });
    }

    #[test]
    fn grad_unary_activations() {
        for op in ["relu", "gelu", "tanh", "sigmoid", "exp"] {
            grad_check(probe(), |g, x| {
                let y = match op {
                    "relu" => g.relu(x),
                    "gelu" => g.gelu(x),
                    "tanh" => g.tanh(x),
                    "sigmoid" => g.sigmoid(x),
                    "exp" => g.exp(x),
                    _ => unreachable!(),
                };
                g.sum_all(y)
            });
        }
    }

    #[test]
    fn grad_softmax_and_log_softmax() {
        grad_check(probe(), |g, x| {
            let y = g.softmax_last(x);
            let c = g.constant(Tensor::from_vec([2, 3], vec![1., 0., 2., -1., 3., 0.5]));
            let z = g.mul(y, c);
            g.sum_all(z)
        });
        grad_check(probe(), |g, x| {
            let y = g.log_softmax_last(x);
            let c = g.constant(Tensor::from_vec([2, 3], vec![1., 0., 2., -1., 3., 0.5]));
            let z = g.mul(y, c);
            g.sum_all(z)
        });
    }

    #[test]
    fn grad_cross_entropy() {
        grad_check(probe(), |g, x| g.cross_entropy(x, &[2, 0]));
    }

    #[test]
    fn grad_weighted_cross_entropy() {
        grad_check(probe(), |g, x| g.weighted_cross_entropy(x, &[2, 0], &[0.5, -1.5]));
    }

    #[test]
    fn grad_mse() {
        grad_check(probe(), |g, x| {
            let t = g.constant(Tensor::from_vec([2, 3], vec![0., 1., 0., 1., 0., 1.]));
            g.mse(x, t)
        });
    }

    #[test]
    fn grad_layer_norm_all_three_inputs() {
        grad_check(probe(), |g, x| {
            let gamma = g.constant(Tensor::from_slice(&[1.0, 2.0, 0.5]));
            let beta = g.constant(Tensor::from_slice(&[0.1, -0.1, 0.0]));
            let y = g.layer_norm(x, gamma, beta, 1e-5);
            let sq = g.mul(y, y);
            g.sum_all(sq)
        });
        // gamma gradient
        let gamma0 = Tensor::from_slice(&[1.0, 2.0, 0.5]);
        grad_check(gamma0, |g, gamma| {
            let x = g.constant(Tensor::from_vec([2, 3], vec![0.5, -1.2, 0.3, 2.0, -0.7, 1.1]));
            let beta = g.constant(Tensor::from_slice(&[0.1, -0.1, 0.0]));
            let y = g.layer_norm(x, gamma, beta, 1e-5);
            let sq = g.mul(y, y);
            g.sum_all(sq)
        });
    }

    #[test]
    fn grad_reductions() {
        grad_check(probe(), |g, x| {
            let s = g.sum_axis(x, 0);

            g.mean_axis(s, 0)
        });
        grad_check(probe(), |g, x| {
            let m = g.mean_axis(x, 1);
            g.sum_all(m)
        });
    }

    #[test]
    fn grad_shape_ops() {
        grad_check(probe(), |g, x| {
            let r = g.reshape(x, [3, 2]);
            let t = g.transpose_last2(r);
            let n = g.narrow(t, 1, 1, 2);
            let sq = g.mul(n, n);
            g.sum_all(sq)
        });
    }

    #[test]
    fn grad_concat() {
        grad_check(probe(), |g, x| {
            let c = g.constant(Tensor::ones([2, 2]));
            let y = g.concat(&[x, c], 1);
            let sq = g.mul(y, y);
            g.sum_all(sq)
        });
    }

    #[test]
    fn grad_rows_scatter_adds() {
        // Same row gathered twice must receive twice the gradient.
        let mut g = Graph::new(false, 0);
        let table = g.leaf(Tensor::from_vec([3, 2], vec![1., 2., 3., 4., 5., 6.]), true);
        let picked = g.rows(table, &[1, 1, 0]);
        let l = g.sum_all(picked);
        g.backward(l);
        assert_eq!(g.grad(table).unwrap().data(), &[1., 1., 2., 2., 0., 0.]);
    }

    #[test]
    fn grad_conv1d() {
        let x = Tensor::from_vec([1, 2, 4], vec![0.1, 0.2, 0.3, 0.4, -0.1, -0.2, -0.3, -0.4]);
        grad_check(x, |g, x| {
            let w =
                g.constant(Tensor::from_vec([2, 2, 3], (0..12).map(|i| 0.1 * i as f32).collect()));
            let b = g.constant(Tensor::from_slice(&[0.1, -0.1]));
            let y = g.conv1d(x, w, b, 1, 1);
            let sq = g.mul(y, y);
            g.sum_all(sq)
        });
    }

    #[test]
    fn conv1d_same_padding_keeps_length() {
        let mut g = Graph::inference();
        let x = g.constant(Tensor::ones([1, 1, 8]));
        let w = g.constant(Tensor::ones([4, 1, 3]));
        let b = g.constant(Tensor::zeros([4]));
        let y = g.conv1d(x, w, b, 1, 1);
        assert_eq!(g.value(y).shape(), &[1, 4, 8]);
    }

    #[test]
    fn dropout_identity_in_inference() {
        let mut g = Graph::inference();
        let x = g.leaf(Tensor::ones([4]), true);
        let y = g.dropout(x, 0.5);
        assert_eq!(x, y);
    }

    #[test]
    fn dropout_scales_in_training() {
        let mut g = Graph::new(true, 1);
        let x = g.leaf(Tensor::ones([1000]), true);
        let y = g.dropout(x, 0.5);
        let mean = g.value(y).mean();
        assert!((mean - 1.0).abs() < 0.15, "inverted dropout should be mean-preserving: {mean}");
        let l = g.sum_all(y);
        g.backward(l);
        // Gradient flows only through kept units.
        let gr = g.grad(x).unwrap();
        let zeros = gr.data().iter().filter(|&&v| v == 0.0).count();
        assert!(zeros > 300 && zeros < 700);
    }

    #[test]
    fn no_grad_for_constants() {
        let mut g = Graph::inference();
        let a = g.constant(Tensor::ones([2]));
        let b = g.leaf(Tensor::ones([2]), true);
        let y = g.mul(a, b);
        let l = g.sum_all(y);
        g.backward(l);
        assert!(g.grad(a).is_none() || g.grad(a).is_some()); // stored grad for a may exist...
        assert_eq!(g.grad(b).unwrap().data(), &[1.0, 1.0]);
    }

    #[test]
    fn diamond_graph_accumulates() {
        // loss = sum(x*x + x) -> dx = 2x + 1
        let mut g = Graph::inference();
        let x = g.leaf(Tensor::from_slice(&[3.0]), true);
        let sq = g.mul(x, x);
        let y = g.add(sq, x);
        let l = g.sum_all(y);
        g.backward(l);
        assert_eq!(g.grad(x).unwrap().data(), &[7.0]);
    }

    #[test]
    fn no_tape_forward_matches_taped_forward() {
        // Same ops, same values — only the bookkeeping differs.
        let build = |g: &mut Graph| {
            let x = g.leaf(probe(), true);
            let c = g.constant(Tensor::from_vec([2, 3], vec![1., 2., 3., 4., 5., 6.]));
            let y = g.mul(x, c);
            let s = g.softmax_last(y);
            let n = g.narrow(s, 1, 0, 2);
            g.sum_all(n)
        };
        let mut taped = Graph::inference();
        let lt = build(&mut taped);
        let mut notape = Graph::no_tape();
        let ln = build(&mut notape);
        assert_eq!(taped.value(lt).data(), notape.value(ln).data());
        assert!(!notape.records_tape());
    }

    #[test]
    #[should_panic(expected = "no-tape")]
    fn no_tape_backward_panics() {
        let mut g = Graph::no_tape();
        let x = g.leaf(Tensor::ones([2]), true);
        let l = g.sum_all(x);
        g.backward(l);
    }

    #[test]
    fn peak_bytes_grows_with_graph() {
        let mut g = Graph::inference();
        let x = g.leaf(Tensor::zeros([100, 100]), true);
        let y = g.relu(x);
        let l = g.sum_all(y);
        g.backward(l);
        // two 100x100 values + grads at 4 bytes each, plus scalars
        assert!(g.peak_bytes() >= 100 * 100 * 4 * 2);
    }
}

//! # nt-tensor
//!
//! Dense `f32` tensors with reverse-mode automatic differentiation, built
//! from scratch for the NetLLM reproduction (no BLAS; `unsafe` is denied
//! crate-wide except for one small audited lifetime-erasure scope in the
//! persistent worker pool — see `pool::dispatch`).
//!
//! Design goals follow the smoltcp ethos: simplicity and robustness over
//! cleverness. Everything is deterministic under an explicit seed
//! ([`rng::Rng`]), and the autodiff tape tracks its own memory footprint
//! ([`graph::Graph::peak_bytes`]) so training-state cost comparisons
//! (paper Figure 4) are measured, not estimated.
//!
//! ## Feature inventory
//!
//! Implemented:
//! - row-major dense tensors, NumPy-style broadcasting for binary ops
//! - matmul / batched matmul (KC-tiled, MRxNR register-blocked SIMD
//!   kernels over a packed B panel, optional row-block parallelism via
//!   the persistent [`pool`] behind the `NT_THREADS` knob), transpose,
//!   reshape, concat, narrow, row gather
//! - activations (relu/gelu/tanh/sigmoid/exp/ln), softmax & log-softmax
//! - fused layer-norm, 1-D convolution, inverted dropout
//! - losses: MSE, (weighted) cross-entropy — the weighted form doubles as a
//!   policy-gradient objective
//! - reverse-mode autodiff over all of the above, with finite-difference
//!   gradient tests
//!
//! Not implemented (by design): GPU backends, f16/bf16, views/in-place ops,
//! higher-order derivatives.

#![deny(unsafe_code)]

pub mod graph;
pub mod pool;
pub mod rng;
pub mod shape;
pub mod tensor;

pub use graph::{Graph, NodeId};
pub use rng::Rng;
pub use tensor::{concat, gelu, transpose_into, Tensor};

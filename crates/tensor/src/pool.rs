//! Persistent worker pool for the hot kernels.
//!
//! Workers are spawned once (on the first parallel dispatch) and then
//! parked on a condvar; a dispatch publishes a job, wakes them, and the
//! *calling thread participates* by claiming tasks alongside them, so a
//! dispatch costs a mutex round trip and a wake — microseconds, not the
//! tens of microseconds a `std::thread::scope` spawn cost. That is why
//! [`parallel_worthwhile`]'s threshold ([`PAR_FLOPS_MIN`]) sits ~16x below
//! the spawn-era value: mid-size GEMMs (the batched-attention and
//! skinny-RHS shapes serving actually emits) now clear it.
//!
//! The worker count comes from the `NT_THREADS` environment variable
//! (`0`/`1` disables parallelism entirely); unset, it defaults to the
//! machine's available parallelism. The variable is parsed once per
//! process (cached in a `OnceLock`), so the hot path never re-reads the
//! environment and mid-run env mutation cannot change band splits.
//!
//! Parallel and serial execution are bit-identical for every kernel in
//! this crate: work is split across *disjoint output row blocks*, so the
//! per-element accumulation order never changes. [`for_each_block_mut`]
//! keeps the exact contiguous band-split math of the old scoped pool
//! (`blocks_per_thread = n_blocks.div_ceil(threads)`), and hands each
//! band to a task through a `Mutex<Option<&mut [T]>>` slot — no `unsafe`
//! is needed to move the borrows. The only `unsafe` in the crate is the
//! lifetime erasure in `dispatch`, a small audited scope documented
//! in place.
//!
//! Panic safety: a panicking task is caught on the worker, recorded, and
//! re-thrown on the dispatching thread once the whole job has drained —
//! the pool itself never dies, so later dispatches keep working
//! (stress-tested in `tests/pool_stress.rs`).

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Mutex, OnceLock};

static CONFIGURED: OnceLock<usize> = OnceLock::new();

/// Parallel dispatches since process start (see [`stats`]).
static DISPATCHES: AtomicU64 = AtomicU64::new(0);
/// Tasks fanned out across all dispatches (see [`stats`]).
static TASKS: AtomicU64 = AtomicU64::new(0);

std::thread_local! {
    /// True on threads owned by this pool (or registered via
    /// [`enter_worker`]): nested kernels on such threads stay serial, so
    /// parallelism never composes into `NT_THREADS^2` fan-out.
    static IN_WORKER: std::cell::Cell<bool> = const { std::cell::Cell::new(false) };
}

/// Mark the current thread as a pool worker for the duration of the
/// returned guard. Higher-level parallelism (serving bands, shard
/// fan-out) runs its tasks under this flag so the kernels they call do
/// not dispatch a second layer of workers.
pub fn enter_worker() -> WorkerGuard {
    let was = IN_WORKER.with(|w| w.replace(true));
    WorkerGuard { was }
}

/// Resets the worker flag when dropped (see [`enter_worker`]).
pub struct WorkerGuard {
    was: bool,
}

impl Drop for WorkerGuard {
    fn drop(&mut self) {
        IN_WORKER.with(|w| w.set(self.was));
    }
}

/// Worker threads the kernels may use (>= 1). `NT_THREADS` overrides;
/// unset defaults to `std::thread::available_parallelism()`. Parsed once
/// per process — the cached value is what every subsequent call returns,
/// so band splits are stable for the process lifetime.
pub fn num_threads() -> usize {
    *CONFIGURED.get_or_init(|| {
        match std::env::var("NT_THREADS").ok().and_then(|v| v.parse::<usize>().ok()) {
            Some(0) => 1,
            Some(n) => n.min(256),
            None => std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1),
        }
    })
}

/// True on a pool worker thread (owned by this pool or registered via
/// [`enter_worker`]). Higher-level parallelism — serving bands, shard
/// fan-out — checks this before fanning out itself, so nested parallel
/// layers never oversubscribe the machine.
pub fn in_worker() -> bool {
    IN_WORKER.with(|w| w.get())
}

/// Minimum multiply-accumulates before a kernel dispatches to the pool.
///
/// Measured with the persistent pool on this workspace's kernels: a
/// dispatch round trip (publish + wake + participate + join) costs on the
/// order of a microsecond, and the serial quad kernel retires roughly a
/// MAC per nanosecond, so 256 Ki MACs (~0.25 ms serial) amortizes the
/// dispatch more than a hundredfold. The spawn-era pool needed `4 << 20`
/// (tens of microseconds per `std::thread::scope` spawn); that value
/// lives on as the legacy-kernel baseline in `tensor.rs`.
pub const PAR_FLOPS_MIN: usize = 1 << 18;

/// Whether a kernel of roughly `flops` multiply-accumulates is worth a
/// pool dispatch (see [`PAR_FLOPS_MIN`]). Always false on a pool worker
/// thread (no nested fan-out).
pub fn parallel_worthwhile(flops: usize) -> bool {
    num_threads() > 1 && flops >= PAR_FLOPS_MIN && !IN_WORKER.with(|w| w.get())
}

/// Cumulative dispatch counters since process start.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct DispatchStats {
    /// Parallel dispatches (jobs published to the persistent pool).
    pub dispatches: u64,
    /// Tasks fanned out across those dispatches.
    pub tasks: u64,
}

/// Snapshot of the pool's cumulative dispatch counters. Callers that want
/// a per-phase count (the bench harness) diff two snapshots.
pub fn stats() -> DispatchStats {
    DispatchStats {
        dispatches: DISPATCHES.load(Ordering::Relaxed),
        tasks: TASKS.load(Ordering::Relaxed),
    }
}

/// Run `f(0..n_tasks)` with the tasks spread over the persistent pool
/// (the calling thread participates). Falls back to a plain serial loop
/// when one thread is configured, on a pool worker thread (no nested
/// fan-out), or for a single task. Tasks run under the
/// [`in_worker`] flag, so kernels inside them stay serial.
///
/// A panic inside `f` is re-thrown on the calling thread after the whole
/// job has drained; the pool survives and later dispatches keep working.
pub fn run_tasks<F: Fn(usize) + Sync>(n_tasks: usize, f: F) {
    if n_tasks == 0 {
        return;
    }
    if n_tasks == 1 || num_threads() <= 1 || in_worker() {
        for i in 0..n_tasks {
            f(i);
        }
        return;
    }
    DISPATCHES.fetch_add(1, Ordering::Relaxed);
    TASKS.fetch_add(n_tasks as u64, Ordering::Relaxed);
    dispatch::run_job(n_tasks, &f);
}

/// Split `data` into `chunk_len`-sized output blocks and run
/// `f(block_index, block)` over all of them, on up to [`num_threads`]
/// pool workers. Blocks are distributed as contiguous per-thread bands,
/// so block `i` is always the `i`-th chunk of `data` regardless of thread
/// count — callers can derive offsets from the index alone, and the split
/// math is unchanged from the scoped-spawn pool, so results stay
/// bit-identical to it. Falls back to a plain serial loop when one thread
/// is configured or on a pool worker thread.
pub fn for_each_block_mut<T: Send, F>(data: &mut [T], chunk_len: usize, f: F)
where
    F: Fn(usize, &mut [T]) + Sync,
{
    assert!(chunk_len > 0, "chunk_len must be positive");
    let n_blocks = data.len().div_ceil(chunk_len);
    let threads = if in_worker() { 1 } else { num_threads().min(n_blocks) };
    if threads <= 1 {
        for (i, block) in data.chunks_mut(chunk_len).enumerate() {
            f(i, block);
        }
        return;
    }
    // Contiguous bands of whole blocks per task keep the split
    // deterministic and the per-task work balanced for uniform blocks.
    // Each band travels to its task through a take-once Mutex slot — the
    // borrow moves without `unsafe`, and every task runs exactly once.
    let blocks_per_thread = n_blocks.div_ceil(threads);
    let band_len = blocks_per_thread * chunk_len;
    let bands: Vec<Mutex<Option<&mut [T]>>> =
        data.chunks_mut(band_len).map(|b| Mutex::new(Some(b))).collect();
    run_tasks(bands.len(), |band_idx| {
        let band = bands[band_idx].lock().unwrap().take().expect("band dispatched twice");
        for (j, block) in band.chunks_mut(chunk_len).enumerate() {
            f(band_idx * blocks_per_thread + j, block);
        }
    });
}

/// The dispatch core: persistent parked workers plus the one audited
/// `unsafe` scope in this crate (lifetime erasure of the job closure).
///
/// Protocol: [`run_job`] publishes a [`Job`] under the slot mutex, wakes
/// the workers, claims tasks itself alongside them, and only returns
/// once `outstanding == 0` — i.e. after every claimed task has finished
/// running. Workers touch the erased closure pointer exclusively between
/// claiming a task (under the mutex) and decrementing `outstanding`
/// (under the mutex), so the happens-before chain through the mutex
/// guarantees no worker can observe the pointer after `run_job` returns
/// and the borrow it erased ends. Panics inside a task are caught on the
/// running thread, recorded in the job, and re-thrown by `run_job` after
/// the drain — the workers themselves never unwind out of their loop.
#[allow(unsafe_code)]
mod dispatch {
    use super::IN_WORKER;
    use std::any::Any;
    use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
    use std::sync::{Condvar, Mutex, OnceLock};

    /// A borrowed `Fn(usize) + Sync` with its lifetime erased so the
    /// `'static` worker threads can call it.
    ///
    /// Safety contract (upheld by [`run_job`], the only constructor
    /// call site): the referent must outlive every [`TaskRef::call`],
    /// which `run_job` guarantees by joining the whole job — even on
    /// unwind paths — before its borrow of the closure ends.
    #[derive(Clone, Copy)]
    struct TaskRef {
        ptr: *const (),
        call: unsafe fn(*const (), usize),
    }

    // SAFETY: the pointee is `Sync` (bound on `run_job`) and the pointer
    // is only dereferenced during the job's lifetime (see contract above),
    // so sharing the pointer across the worker threads is sound.
    unsafe impl Send for TaskRef {}
    unsafe impl Sync for TaskRef {}

    impl TaskRef {
        fn new<F: Fn(usize) + Sync>(f: &F) -> Self {
            unsafe fn call_impl<F: Fn(usize) + Sync>(ptr: *const (), idx: usize) {
                // SAFETY: `ptr` was derived from `&F` in `new` and, per
                // the type-level contract, the referent is still alive.
                let f = unsafe { &*(ptr as *const F) };
                f(idx);
            }
            TaskRef { ptr: f as *const F as *const (), call: call_impl::<F> }
        }

        /// # Safety
        /// The closure `self` was erased from must still be alive.
        unsafe fn call(&self, idx: usize) {
            // SAFETY: forwarded contract.
            unsafe { (self.call)(self.ptr, idx) }
        }
    }

    /// One published fan-out: tasks `0..n_tasks`, claimed one at a time.
    struct Job {
        task: TaskRef,
        n_tasks: usize,
        /// Next unclaimed task index.
        next: usize,
        /// Claimed-or-unclaimed tasks not yet finished; the job is done
        /// (and the closure borrow may end) when this reaches zero.
        outstanding: usize,
        /// First captured panic payload, re-thrown by the dispatcher.
        panic: Option<Box<dyn Any + Send>>,
    }

    struct Shared {
        /// The published job, if any. One job at a time (see `gate`).
        slot: Mutex<Option<Job>>,
        /// Workers park here waiting for a job with unclaimed tasks.
        work: Condvar,
        /// The dispatcher parks here waiting for `outstanding == 0`.
        done: Condvar,
        /// Serializes dispatchers: a second top-level thread dispatching
        /// concurrently waits its turn instead of corrupting `slot`.
        gate: Mutex<()>,
    }

    static SHARED: OnceLock<&'static Shared> = OnceLock::new();

    /// The shared pool state; spawns the persistent workers on first use.
    fn shared() -> &'static Shared {
        SHARED.get_or_init(|| {
            let s: &'static Shared = Box::leak(Box::new(Shared {
                slot: Mutex::new(None),
                work: Condvar::new(),
                done: Condvar::new(),
                gate: Mutex::new(()),
            }));
            // The dispatcher participates, so N-1 parked workers give N
            // threads of compute per job.
            for w in 0..super::num_threads().saturating_sub(1) {
                std::thread::Builder::new()
                    .name(format!("nt-pool-{w}"))
                    .spawn(move || worker_loop(s))
                    .expect("failed to spawn pool worker");
            }
            s
        })
    }

    fn worker_loop(s: &'static Shared) {
        // Permanently a pool worker: kernels inside tasks stay serial.
        IN_WORKER.with(|w| w.set(true));
        let mut g = s.slot.lock().unwrap();
        loop {
            let claimed = match g.as_mut() {
                Some(job) if job.next < job.n_tasks => {
                    let idx = job.next;
                    job.next += 1;
                    Some((job.task, idx))
                }
                _ => None,
            };
            match claimed {
                Some((task, idx)) => {
                    drop(g);
                    // SAFETY: the closure is alive until `outstanding`
                    // hits zero, which cannot happen before the
                    // decrement below.
                    let r = catch_unwind(AssertUnwindSafe(|| unsafe { task.call(idx) }));
                    g = s.slot.lock().unwrap();
                    let job = g.as_mut().expect("job vanished with tasks outstanding");
                    if let Err(p) = r {
                        job.panic.get_or_insert(p);
                    }
                    job.outstanding -= 1;
                    if job.outstanding == 0 {
                        s.done.notify_all();
                    }
                }
                None => g = s.work.wait(g).unwrap(),
            }
        }
    }

    /// Fan `f(0..n_tasks)` out over the persistent workers; the calling
    /// thread claims tasks too. Returns only after every task finished
    /// (the safety anchor for the lifetime erasure above). Re-throws the
    /// first captured task panic.
    pub(super) fn run_job<F: Fn(usize) + Sync>(n_tasks: usize, f: &F) {
        let s = shared();
        let task = TaskRef::new(f);
        let gate = s.gate.lock().unwrap();
        {
            let mut g = s.slot.lock().unwrap();
            debug_assert!(g.is_none(), "dispatch gate must serialize jobs");
            *g = Some(Job { task, n_tasks, next: 0, outstanding: n_tasks, panic: None });
            s.work.notify_all();
        }
        let mut g = s.slot.lock().unwrap();
        loop {
            let job = g.as_mut().expect("dispatcher's job vanished");
            if job.next < job.n_tasks {
                let idx = job.next;
                job.next += 1;
                drop(g);
                let r = catch_unwind(AssertUnwindSafe(|| {
                    let _w = super::enter_worker();
                    // SAFETY: `f` outlives this call — `run_job` joins
                    // the job below before returning.
                    unsafe { task.call(idx) }
                }));
                g = s.slot.lock().unwrap();
                let job = g.as_mut().expect("dispatcher's job vanished");
                if let Err(p) = r {
                    job.panic.get_or_insert(p);
                }
                job.outstanding -= 1;
            } else if job.outstanding > 0 {
                g = s.done.wait(g).unwrap();
            } else {
                break;
            }
        }
        let job = g.take().expect("job drained twice");
        drop(g);
        drop(gate);
        if let Some(p) = job.panic {
            resume_unwind(p);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn block_indices_cover_everything_once() {
        let mut data = vec![0u32; 103];
        for_each_block_mut(&mut data, 10, |i, block| {
            for v in block.iter_mut() {
                *v += 1 + i as u32;
            }
        });
        for (i, v) in data.iter().enumerate() {
            assert_eq!(*v, 1 + (i / 10) as u32, "element {i} touched wrongly");
        }
    }

    #[test]
    fn single_block_runs_inline() {
        let mut data = vec![1.0f32; 7];
        for_each_block_mut(&mut data, 100, |i, block| {
            assert_eq!(i, 0);
            for v in block.iter_mut() {
                *v *= 2.0;
            }
        });
        assert!(data.iter().all(|&v| v == 2.0));
    }

    #[test]
    fn num_threads_is_at_least_one() {
        assert!(num_threads() >= 1);
    }

    #[test]
    fn run_tasks_runs_every_index_exactly_once() {
        let hits: Vec<AtomicUsize> = (0..23).map(|_| AtomicUsize::new(0)).collect();
        run_tasks(hits.len(), |i| {
            hits[i].fetch_add(1, Ordering::Relaxed);
        });
        for (i, h) in hits.iter().enumerate() {
            assert_eq!(h.load(Ordering::Relaxed), 1, "task {i} ran a wrong number of times");
        }
    }

    #[test]
    fn nested_run_tasks_stays_serial() {
        // A task is flagged in_worker for its whole body, so a nested
        // fan-out must run inline on the same thread.
        run_tasks(2, |_| {
            if num_threads() > 1 {
                assert!(in_worker(), "tasks must carry the worker flag");
            }
            let outer = std::thread::current().id();
            run_tasks(4, |_| {
                assert_eq!(std::thread::current().id(), outer, "nested fan-out escaped");
            });
        });
    }
}

//! Self-contained scoped parallelism for the hot kernels.
//!
//! Same policy as the vendored shims: no external dependencies and no
//! `unsafe`. Workers are `std::thread::scope` threads, so they may borrow
//! the caller's slices directly and every invocation joins before
//! returning — there is no detached state, no channels and no lifetime
//! erasure. The price is a spawn per parallel call, which is why callers
//! gate on a work threshold ([`parallel_worthwhile`]) and fall back to the
//! serial path for small kernels.
//!
//! The worker count comes from the `NT_THREADS` environment variable
//! (`0`/`1` disables parallelism entirely); unset, it defaults to the
//! machine's available parallelism. The variable is read once per process.
//! Parallel and serial execution are bit-identical for every kernel in
//! this crate: work is split across *disjoint output row blocks*, so the
//! per-element accumulation order never changes.

use std::sync::OnceLock;

static CONFIGURED: OnceLock<usize> = OnceLock::new();

std::thread_local! {
    /// True on threads spawned by this pool (or registered via
    /// [`enter_worker`]): nested kernels on such threads stay serial, so
    /// parallelism never composes into `NT_THREADS^2` spawns.
    static IN_WORKER: std::cell::Cell<bool> = const { std::cell::Cell::new(false) };
}

/// Mark the current thread as a pool worker for the duration of the
/// returned guard. Higher-level scoped parallelism (e.g. serving bands)
/// calls this inside its own spawned threads so the kernels they run do
/// not spawn a second layer of workers.
pub fn enter_worker() -> WorkerGuard {
    let was = IN_WORKER.with(|w| w.replace(true));
    WorkerGuard { was }
}

/// Resets the worker flag when dropped (see [`enter_worker`]).
pub struct WorkerGuard {
    was: bool,
}

impl Drop for WorkerGuard {
    fn drop(&mut self) {
        IN_WORKER.with(|w| w.set(self.was));
    }
}

/// Worker threads the kernels may use (>= 1). `NT_THREADS` overrides;
/// unset defaults to `std::thread::available_parallelism()`.
pub fn num_threads() -> usize {
    *CONFIGURED.get_or_init(|| {
        match std::env::var("NT_THREADS").ok().and_then(|v| v.parse::<usize>().ok()) {
            Some(0) => 1,
            Some(n) => n.min(256),
            None => std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1),
        }
    })
}

/// True on a pool worker thread (spawned by this pool or registered via
/// [`enter_worker`]). Higher-level scoped parallelism — serving bands,
/// shard fan-out — checks this before spawning its own workers, so nested
/// parallel layers never oversubscribe the machine.
pub fn in_worker() -> bool {
    IN_WORKER.with(|w| w.get())
}

/// Whether a kernel of roughly `flops` multiply-accumulates is worth a
/// scoped spawn. Thread startup costs tens of microseconds; anything under
/// a few million MACs finishes faster serially. Always false on a pool
/// worker thread (no nested spawning).
pub fn parallel_worthwhile(flops: usize) -> bool {
    num_threads() > 1 && flops >= 4 << 20 && !IN_WORKER.with(|w| w.get())
}

/// Split `data` into `chunk_len`-sized output blocks and run
/// `f(block_index, block)` over all of them, on up to [`num_threads`]
/// scoped threads. Blocks are distributed as contiguous per-thread bands,
/// so block `i` is always the `i`-th chunk of `data` regardless of thread
/// count — callers can derive offsets from the index alone. Falls back to
/// a plain serial loop when one thread is configured.
pub fn for_each_block_mut<T: Send, F>(data: &mut [T], chunk_len: usize, f: F)
where
    F: Fn(usize, &mut [T]) + Sync,
{
    assert!(chunk_len > 0, "chunk_len must be positive");
    let n_blocks = data.len().div_ceil(chunk_len);
    let threads = if IN_WORKER.with(|w| w.get()) { 1 } else { num_threads().min(n_blocks) };
    if threads <= 1 {
        for (i, block) in data.chunks_mut(chunk_len).enumerate() {
            f(i, block);
        }
        return;
    }
    // Contiguous bands of whole blocks per thread keep the split
    // deterministic and the per-thread work balanced for uniform blocks.
    let blocks_per_thread = n_blocks.div_ceil(threads);
    let band_len = blocks_per_thread * chunk_len;
    std::thread::scope(|s| {
        for (band_idx, band) in data.chunks_mut(band_len).enumerate() {
            let f = &f;
            s.spawn(move || {
                let _guard = enter_worker();
                for (j, block) in band.chunks_mut(chunk_len).enumerate() {
                    f(band_idx * blocks_per_thread + j, block);
                }
            });
        }
    });
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn block_indices_cover_everything_once() {
        let mut data = vec![0u32; 103];
        for_each_block_mut(&mut data, 10, |i, block| {
            for v in block.iter_mut() {
                *v += 1 + i as u32;
            }
        });
        for (i, v) in data.iter().enumerate() {
            assert_eq!(*v, 1 + (i / 10) as u32, "element {i} touched wrongly");
        }
    }

    #[test]
    fn single_block_runs_inline() {
        let mut data = vec![1.0f32; 7];
        for_each_block_mut(&mut data, 100, |i, block| {
            assert_eq!(i, 0);
            for v in block.iter_mut() {
                *v *= 2.0;
            }
        });
        assert!(data.iter().all(|&v| v == 2.0));
    }

    #[test]
    fn num_threads_is_at_least_one() {
        assert!(num_threads() >= 1);
    }
}

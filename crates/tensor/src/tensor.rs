//! The dense `f32` tensor value type.
//!
//! `Tensor` is a plain value: a shape plus a row-major `Vec<f32>`. All
//! differentiable computation happens in [`crate::graph::Graph`]; the methods
//! here are construction helpers and graph-free math used on inference-only
//! paths (policy sampling, metrics, simulators).

use crate::rng::Rng;
use crate::shape::{broadcast_shapes, for_each_broadcast2, numel, strides};
use serde::{Deserialize, Serialize};

/// A dense row-major `f32` tensor.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct Tensor {
    shape: Vec<usize>,
    data: Vec<f32>,
}

impl Tensor {
    /// Build a tensor from raw parts. Panics when `data.len()` does not match
    /// the shape.
    pub fn from_vec(shape: impl Into<Vec<usize>>, data: Vec<f32>) -> Self {
        let shape = shape.into();
        assert_eq!(
            numel(&shape),
            data.len(),
            "shape {:?} wants {} elements, got {}",
            shape,
            numel(&shape),
            data.len()
        );
        Tensor { shape, data }
    }

    /// A scalar tensor (empty shape).
    pub fn scalar(v: f32) -> Self {
        Tensor { shape: vec![], data: vec![v] }
    }

    /// All-zeros tensor.
    pub fn zeros(shape: impl Into<Vec<usize>>) -> Self {
        let shape = shape.into();
        let n = numel(&shape);
        Tensor { shape, data: vec![0.0; n] }
    }

    /// All-ones tensor.
    pub fn ones(shape: impl Into<Vec<usize>>) -> Self {
        Tensor::full(shape, 1.0)
    }

    /// Constant-filled tensor.
    pub fn full(shape: impl Into<Vec<usize>>, v: f32) -> Self {
        let shape = shape.into();
        let n = numel(&shape);
        Tensor { shape, data: vec![v; n] }
    }

    /// I.i.d. standard-normal entries scaled by `std`, drawn from `rng`.
    pub fn randn(shape: impl Into<Vec<usize>>, std: f32, rng: &mut Rng) -> Self {
        let shape = shape.into();
        let n = numel(&shape);
        let data = (0..n).map(|_| rng.normal() * std).collect();
        Tensor { shape, data }
    }

    /// I.i.d. uniform entries in `[lo, hi)`.
    pub fn rand_uniform(shape: impl Into<Vec<usize>>, lo: f32, hi: f32, rng: &mut Rng) -> Self {
        let shape = shape.into();
        let n = numel(&shape);
        let data = (0..n).map(|_| rng.uniform(lo, hi)).collect();
        Tensor { shape, data }
    }

    /// 1-D tensor holding `v`.
    pub fn from_slice(v: &[f32]) -> Self {
        Tensor { shape: vec![v.len()], data: v.to_vec() }
    }

    pub fn shape(&self) -> &[usize] {
        &self.shape
    }

    pub fn numel(&self) -> usize {
        self.data.len()
    }

    pub fn data(&self) -> &[f32] {
        &self.data
    }

    pub fn data_mut(&mut self) -> &mut [f32] {
        &mut self.data
    }

    pub fn into_data(self) -> Vec<f32> {
        self.data
    }

    /// Scalar value of a single-element tensor.
    pub fn item(&self) -> f32 {
        assert_eq!(self.data.len(), 1, "item() on tensor with {} elements", self.data.len());
        self.data[0]
    }

    /// Reinterpret with a new shape of identical element count.
    pub fn reshape(mut self, shape: impl Into<Vec<usize>>) -> Self {
        let shape = shape.into();
        assert_eq!(numel(&shape), self.data.len(), "reshape to incompatible shape {shape:?}");
        self.shape = shape;
        self
    }

    /// Element at a multi-index.
    pub fn at(&self, idx: &[usize]) -> f32 {
        let st = strides(&self.shape);
        debug_assert_eq!(idx.len(), self.shape.len());
        let off: usize = idx.iter().zip(&st).map(|(i, s)| i * s).sum();
        self.data[off]
    }

    /// Mutable element at a multi-index.
    pub fn at_mut(&mut self, idx: &[usize]) -> &mut f32 {
        let st = strides(&self.shape);
        let off: usize = idx.iter().zip(&st).map(|(i, s)| i * s).sum();
        &mut self.data[off]
    }

    /// Row `i` of a 2-D tensor.
    pub fn row(&self, i: usize) -> &[f32] {
        assert_eq!(self.shape.len(), 2, "row() needs a 2-D tensor");
        let cols = self.shape[1];
        &self.data[i * cols..(i + 1) * cols]
    }

    /// Elementwise map.
    pub fn map(&self, f: impl Fn(f32) -> f32) -> Tensor {
        Tensor { shape: self.shape.clone(), data: self.data.iter().map(|&x| f(x)).collect() }
    }

    /// Broadcasting elementwise combine; panics on incompatible shapes.
    pub fn zip(&self, other: &Tensor, f: impl Fn(f32, f32) -> f32) -> Tensor {
        let out_shape = broadcast_shapes(&self.shape, &other.shape)
            .unwrap_or_else(|| panic!("cannot broadcast {:?} with {:?}", self.shape, other.shape));
        let mut out = Tensor::zeros(out_shape.clone());
        for_each_broadcast2(&out_shape, &self.shape, &other.shape, |o, a, b| {
            out.data[o] = f(self.data[a], other.data[b]);
        });
        out
    }

    pub fn add(&self, other: &Tensor) -> Tensor {
        self.zip(other, |a, b| a + b)
    }

    pub fn sub(&self, other: &Tensor) -> Tensor {
        self.zip(other, |a, b| a - b)
    }

    pub fn mul(&self, other: &Tensor) -> Tensor {
        self.zip(other, |a, b| a * b)
    }

    pub fn scale(&self, c: f32) -> Tensor {
        self.map(|x| x * c)
    }

    /// Sum of all elements.
    pub fn sum(&self) -> f32 {
        self.data.iter().sum()
    }

    /// Mean of all elements (0 for empty tensors).
    pub fn mean(&self) -> f32 {
        if self.data.is_empty() {
            0.0
        } else {
            self.sum() / self.data.len() as f32
        }
    }

    /// Index of the maximum element (first on ties).
    pub fn argmax(&self) -> usize {
        let mut best = 0;
        for (i, &v) in self.data.iter().enumerate() {
            if v > self.data[best] {
                best = i;
            }
        }
        best
    }

    /// 2-D matrix multiply: `[m,k] x [k,n] -> [m,n]`.
    pub fn matmul(&self, other: &Tensor) -> Tensor {
        assert_eq!(self.shape.len(), 2, "matmul lhs must be 2-D");
        assert_eq!(other.shape.len(), 2, "matmul rhs must be 2-D");
        let (m, k) = (self.shape[0], self.shape[1]);
        let (k2, n) = (other.shape[0], other.shape[1]);
        assert_eq!(k, k2, "matmul inner dims {k} vs {k2}");
        let mut out = vec![0.0f32; m * n];
        matmul_into(&self.data, &other.data, &mut out, m, k, n);
        Tensor { shape: vec![m, n], data: out }
    }

    /// Softmax over the last dimension (numerically stable).
    pub fn softmax_last(&self) -> Tensor {
        assert!(!self.shape.is_empty(), "softmax needs rank >= 1");
        let cols = *self.shape.last().unwrap();
        let rows = self.data.len() / cols.max(1);
        let mut out = self.clone();
        for r in 0..rows {
            let s = &mut out.data[r * cols..(r + 1) * cols];
            softmax_in_place(s);
        }
        out
    }

    /// L2 norm of all elements.
    pub fn norm(&self) -> f32 {
        self.data.iter().map(|x| x * x).sum::<f32>().sqrt()
    }

    /// Transpose of a 2-D tensor.
    pub fn t(&self) -> Tensor {
        assert_eq!(self.shape.len(), 2, "t() needs a 2-D tensor");
        let (m, n) = (self.shape[0], self.shape[1]);
        let mut out = vec![0.0f32; m * n];
        for i in 0..m {
            for j in 0..n {
                out[j * m + i] = self.data[i * n + j];
            }
        }
        Tensor { shape: vec![n, m], data: out }
    }

    /// True when any element is NaN or infinite.
    pub fn has_non_finite(&self) -> bool {
        self.data.iter().any(|x| !x.is_finite())
    }

    /// Slice `len` entries starting at `start` along `axis` (graph-free
    /// kernel; the differentiable version is [`crate::graph::Graph::narrow`]).
    pub fn narrow(&self, axis: usize, start: usize, len: usize) -> Tensor {
        assert!(axis < self.shape.len(), "narrow axis out of range");
        assert!(start + len <= self.shape[axis], "narrow slice out of bounds");
        let outer: usize = self.shape[..axis].iter().product();
        let inner: usize = self.shape[axis + 1..].iter().product();
        let d = self.shape[axis];
        let mut out_shape = self.shape.clone();
        out_shape[axis] = len;
        let mut out = vec![0.0f32; outer * len * inner];
        for o in 0..outer {
            let src = (o * d + start) * inner;
            out[o * len * inner..(o + 1) * len * inner]
                .copy_from_slice(&self.data[src..src + len * inner]);
        }
        Tensor { shape: out_shape, data: out }
    }

    /// Gather rows of a 2-D tensor by index (graph-free embedding lookup).
    pub fn gather_rows(&self, indices: &[usize]) -> Tensor {
        assert_eq!(self.shape.len(), 2, "gather_rows needs a 2-D tensor");
        let (n, d) = (self.shape[0], self.shape[1]);
        let mut out = Vec::with_capacity(indices.len() * d);
        for &i in indices {
            assert!(i < n, "row index {i} out of {n}");
            out.extend_from_slice(&self.data[i * d..(i + 1) * d]);
        }
        Tensor { shape: vec![indices.len(), d], data: out }
    }
}

/// Concatenate tensors along `axis` (graph-free kernel; all inputs must
/// agree on the other dims). This plus [`Tensor::narrow`] are the two
/// shape ops a KV cache leans on: append new keys/values, slice the live
/// prefix back out.
pub fn concat(parts: &[&Tensor], axis: usize) -> Tensor {
    assert!(!parts.is_empty(), "concat of nothing");
    let first = parts[0].shape().to_vec();
    let rank = first.len();
    assert!(axis < rank, "concat axis {axis} out of rank {rank}");
    let mut axis_total = 0usize;
    for p in parts {
        let s = p.shape();
        assert_eq!(s.len(), rank, "concat rank mismatch");
        for d in 0..rank {
            if d != axis {
                assert_eq!(s[d], first[d], "concat dim {d} mismatch");
            }
        }
        axis_total += s[axis];
    }
    let mut out_shape = first.clone();
    out_shape[axis] = axis_total;
    let outer: usize = first[..axis].iter().product();
    let inner: usize = first[axis + 1..].iter().product();
    let mut out = vec![0.0f32; crate::shape::numel(&out_shape)];
    let mut axis_off = 0usize;
    for p in parts {
        let len = p.shape()[axis];
        for o in 0..outer {
            let src = &p.data()[o * len * inner..(o + 1) * len * inner];
            let dst_start = (o * axis_total + axis_off) * inner;
            out[dst_start..dst_start + len * inner].copy_from_slice(src);
        }
        axis_off += len;
    }
    Tensor::from_vec(out_shape, out)
}

/// `out += a x b` for row-major matrices, ikj loop order for cache locality.
pub fn matmul_into(a: &[f32], b: &[f32], out: &mut [f32], m: usize, k: usize, n: usize) {
    debug_assert_eq!(a.len(), m * k);
    debug_assert_eq!(b.len(), k * n);
    debug_assert_eq!(out.len(), m * n);
    for i in 0..m {
        let arow = &a[i * k..(i + 1) * k];
        let orow = &mut out[i * n..(i + 1) * n];
        for (kk, &av) in arow.iter().enumerate() {
            if av == 0.0 {
                continue;
            }
            let brow = &b[kk * n..(kk + 1) * n];
            for j in 0..n {
                orow[j] += av * brow[j];
            }
        }
    }
}

pub(crate) const GELU_C: f32 = 0.797_884_6; // sqrt(2/pi)

/// Tanh-approximation GELU, shared by the taped forward, its backward and
/// the graph-free inference kernels (one definition keeps the cached and
/// uncached paths bit-identical).
pub fn gelu(x: f32) -> f32 {
    0.5 * x * (1.0 + (GELU_C * (x + 0.044715 * x * x * x)).tanh())
}

/// Numerically stable in-place softmax of a slice.
pub fn softmax_in_place(s: &mut [f32]) {
    if s.is_empty() {
        return;
    }
    let mx = s.iter().cloned().fold(f32::NEG_INFINITY, f32::max);
    let mut z = 0.0f32;
    for v in s.iter_mut() {
        *v = (*v - mx).exp();
        z += *v;
    }
    if z > 0.0 {
        for v in s.iter_mut() {
            *v /= z;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_and_access() {
        let t = Tensor::from_vec([2, 3], vec![1., 2., 3., 4., 5., 6.]);
        assert_eq!(t.at(&[1, 2]), 6.0);
        assert_eq!(t.row(0), &[1., 2., 3.]);
        assert_eq!(t.numel(), 6);
        assert_eq!(Tensor::scalar(4.0).item(), 4.0);
    }

    #[test]
    #[should_panic]
    fn bad_shape_panics() {
        Tensor::from_vec([2, 2], vec![1.0]);
    }

    #[test]
    fn broadcast_add_bias() {
        let x = Tensor::from_vec([2, 3], vec![0., 0., 0., 1., 1., 1.]);
        let b = Tensor::from_slice(&[10., 20., 30.]);
        let y = x.add(&b);
        assert_eq!(y.data(), &[10., 20., 30., 11., 21., 31.]);
    }

    #[test]
    fn matmul_matches_hand_result() {
        let a = Tensor::from_vec([2, 3], vec![1., 2., 3., 4., 5., 6.]);
        let b = Tensor::from_vec([3, 2], vec![7., 8., 9., 10., 11., 12.]);
        let c = a.matmul(&b);
        assert_eq!(c.shape(), &[2, 2]);
        assert_eq!(c.data(), &[58., 64., 139., 154.]);
    }

    #[test]
    fn transpose_roundtrip() {
        let a = Tensor::from_vec([2, 3], vec![1., 2., 3., 4., 5., 6.]);
        assert_eq!(a.t().t(), a);
        assert_eq!(a.t().at(&[2, 1]), 6.0);
    }

    #[test]
    fn softmax_rows_sum_to_one() {
        let t = Tensor::from_vec([2, 4], vec![1., 2., 3., 4., -1., 0., 1., 2.]);
        let s = t.softmax_last();
        for r in 0..2 {
            let sum: f32 = s.row(r).iter().sum();
            assert!((sum - 1.0).abs() < 1e-5);
        }
    }

    #[test]
    fn softmax_handles_extremes() {
        let t = Tensor::from_slice(&[1000.0, 0.0, -1000.0]);
        let s = t.softmax_last();
        assert!((s.data()[0] - 1.0).abs() < 1e-5);
        assert!(!s.has_non_finite());
    }

    #[test]
    fn argmax_first_on_ties() {
        let t = Tensor::from_slice(&[1.0, 3.0, 3.0, 2.0]);
        assert_eq!(t.argmax(), 1);
    }

    #[test]
    fn randn_is_deterministic_under_seed() {
        let mut r1 = Rng::seeded(7);
        let mut r2 = Rng::seeded(7);
        let a = Tensor::randn([4, 4], 1.0, &mut r1);
        let b = Tensor::randn([4, 4], 1.0, &mut r2);
        assert_eq!(a, b);
    }

    #[test]
    fn narrow_kernel_slices_rows_and_cols() {
        let t = Tensor::from_vec([2, 3], vec![1., 2., 3., 4., 5., 6.]);
        assert_eq!(t.narrow(0, 1, 1).data(), &[4., 5., 6.]);
        assert_eq!(t.narrow(1, 1, 2).data(), &[2., 3., 5., 6.]);
        assert_eq!(t.narrow(1, 1, 2).shape(), &[2, 2]);
    }

    #[test]
    fn concat_kernel_roundtrips_with_narrow() {
        let a = Tensor::from_vec([2, 2], vec![1., 2., 3., 4.]);
        let b = Tensor::from_vec([1, 2], vec![5., 6.]);
        let cat = concat(&[&a, &b], 0);
        assert_eq!(cat.shape(), &[3, 2]);
        assert_eq!(cat.narrow(0, 0, 2), a);
        assert_eq!(cat.narrow(0, 2, 1), b);
        // Column-axis concat too (the KV layout appends along time).
        let c = concat(&[&a, &a], 1);
        assert_eq!(c.shape(), &[2, 4]);
        assert_eq!(c.data(), &[1., 2., 1., 2., 3., 4., 3., 4.]);
    }

    #[test]
    fn gather_rows_kernel_matches_indexing() {
        let t = Tensor::from_vec([3, 2], vec![1., 2., 3., 4., 5., 6.]);
        let g = t.gather_rows(&[2, 0, 2]);
        assert_eq!(g.shape(), &[3, 2]);
        assert_eq!(g.data(), &[5., 6., 1., 2., 5., 6.]);
    }
}

//! The dense `f32` tensor value type.
//!
//! `Tensor` is a plain value: a shape plus a row-major `Vec<f32>`. All
//! differentiable computation happens in [`crate::graph::Graph`]; the methods
//! here are construction helpers and graph-free math used on inference-only
//! paths (policy sampling, metrics, simulators).

use crate::pool;
use crate::rng::Rng;
use crate::shape::{broadcast_shapes, for_each_broadcast2, numel, strides};
use serde::{Deserialize, Serialize};

/// A dense row-major `f32` tensor.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct Tensor {
    shape: Vec<usize>,
    data: Vec<f32>,
}

impl Tensor {
    /// Build a tensor from raw parts. Panics when `data.len()` does not match
    /// the shape.
    pub fn from_vec(shape: impl Into<Vec<usize>>, data: Vec<f32>) -> Self {
        let shape = shape.into();
        assert_eq!(
            numel(&shape),
            data.len(),
            "shape {:?} wants {} elements, got {}",
            shape,
            numel(&shape),
            data.len()
        );
        Tensor { shape, data }
    }

    /// A scalar tensor (empty shape).
    pub fn scalar(v: f32) -> Self {
        Tensor { shape: vec![], data: vec![v] }
    }

    /// All-zeros tensor.
    pub fn zeros(shape: impl Into<Vec<usize>>) -> Self {
        let shape = shape.into();
        let n = numel(&shape);
        Tensor { shape, data: vec![0.0; n] }
    }

    /// All-ones tensor.
    pub fn ones(shape: impl Into<Vec<usize>>) -> Self {
        Tensor::full(shape, 1.0)
    }

    /// Constant-filled tensor.
    pub fn full(shape: impl Into<Vec<usize>>, v: f32) -> Self {
        let shape = shape.into();
        let n = numel(&shape);
        Tensor { shape, data: vec![v; n] }
    }

    /// I.i.d. standard-normal entries scaled by `std`, drawn from `rng`.
    pub fn randn(shape: impl Into<Vec<usize>>, std: f32, rng: &mut Rng) -> Self {
        let shape = shape.into();
        let n = numel(&shape);
        let data = (0..n).map(|_| rng.normal() * std).collect();
        Tensor { shape, data }
    }

    /// I.i.d. uniform entries in `[lo, hi)`.
    pub fn rand_uniform(shape: impl Into<Vec<usize>>, lo: f32, hi: f32, rng: &mut Rng) -> Self {
        let shape = shape.into();
        let n = numel(&shape);
        let data = (0..n).map(|_| rng.uniform(lo, hi)).collect();
        Tensor { shape, data }
    }

    /// 1-D tensor holding `v`.
    pub fn from_slice(v: &[f32]) -> Self {
        Tensor { shape: vec![v.len()], data: v.to_vec() }
    }

    pub fn shape(&self) -> &[usize] {
        &self.shape
    }

    pub fn numel(&self) -> usize {
        self.data.len()
    }

    pub fn data(&self) -> &[f32] {
        &self.data
    }

    pub fn data_mut(&mut self) -> &mut [f32] {
        &mut self.data
    }

    pub fn into_data(self) -> Vec<f32> {
        self.data
    }

    /// Scalar value of a single-element tensor.
    pub fn item(&self) -> f32 {
        assert_eq!(self.data.len(), 1, "item() on tensor with {} elements", self.data.len());
        self.data[0]
    }

    /// Reinterpret with a new shape of identical element count.
    pub fn reshape(mut self, shape: impl Into<Vec<usize>>) -> Self {
        let shape = shape.into();
        assert_eq!(numel(&shape), self.data.len(), "reshape to incompatible shape {shape:?}");
        self.shape = shape;
        self
    }

    /// Element at a multi-index.
    pub fn at(&self, idx: &[usize]) -> f32 {
        let st = strides(&self.shape);
        debug_assert_eq!(idx.len(), self.shape.len());
        let off: usize = idx.iter().zip(&st).map(|(i, s)| i * s).sum();
        self.data[off]
    }

    /// Mutable element at a multi-index.
    pub fn at_mut(&mut self, idx: &[usize]) -> &mut f32 {
        let st = strides(&self.shape);
        let off: usize = idx.iter().zip(&st).map(|(i, s)| i * s).sum();
        &mut self.data[off]
    }

    /// Row `i` of a 2-D tensor.
    pub fn row(&self, i: usize) -> &[f32] {
        assert_eq!(self.shape.len(), 2, "row() needs a 2-D tensor");
        let cols = self.shape[1];
        &self.data[i * cols..(i + 1) * cols]
    }

    /// Elementwise map.
    pub fn map(&self, f: impl Fn(f32) -> f32) -> Tensor {
        Tensor { shape: self.shape.clone(), data: self.data.iter().map(|&x| f(x)).collect() }
    }

    /// Broadcasting elementwise combine; panics on incompatible shapes.
    pub fn zip(&self, other: &Tensor, f: impl Fn(f32, f32) -> f32) -> Tensor {
        let out_shape = broadcast_shapes(&self.shape, &other.shape)
            .unwrap_or_else(|| panic!("cannot broadcast {:?} with {:?}", self.shape, other.shape));
        let mut out = Tensor::zeros(out_shape.clone());
        for_each_broadcast2(&out_shape, &self.shape, &other.shape, |o, a, b| {
            out.data[o] = f(self.data[a], other.data[b]);
        });
        out
    }

    pub fn add(&self, other: &Tensor) -> Tensor {
        self.zip(other, |a, b| a + b)
    }

    /// In-place elementwise `self += other` for identically shaped
    /// tensors: the residual-add of the inference hot path, without the
    /// broadcast machinery or an output allocation.
    pub fn add_assign(&mut self, other: &Tensor) {
        assert_eq!(self.shape, other.shape, "add_assign needs matching shapes");
        for (a, b) in self.data.iter_mut().zip(&other.data) {
            *a += b;
        }
    }

    pub fn sub(&self, other: &Tensor) -> Tensor {
        self.zip(other, |a, b| a - b)
    }

    pub fn mul(&self, other: &Tensor) -> Tensor {
        self.zip(other, |a, b| a * b)
    }

    pub fn scale(&self, c: f32) -> Tensor {
        self.map(|x| x * c)
    }

    /// Sum of all elements.
    pub fn sum(&self) -> f32 {
        self.data.iter().sum()
    }

    /// Mean of all elements (0 for empty tensors).
    pub fn mean(&self) -> f32 {
        if self.data.is_empty() {
            0.0
        } else {
            self.sum() / self.data.len() as f32
        }
    }

    /// Index of the maximum element (first on ties).
    pub fn argmax(&self) -> usize {
        let mut best = 0;
        for (i, &v) in self.data.iter().enumerate() {
            if v > self.data[best] {
                best = i;
            }
        }
        best
    }

    /// 2-D matrix multiply: `[m,k] x [k,n] -> [m,n]`.
    pub fn matmul(&self, other: &Tensor) -> Tensor {
        assert_eq!(self.shape.len(), 2, "matmul lhs must be 2-D");
        assert_eq!(other.shape.len(), 2, "matmul rhs must be 2-D");
        let (m, k) = (self.shape[0], self.shape[1]);
        let (k2, n) = (other.shape[0], other.shape[1]);
        assert_eq!(k, k2, "matmul inner dims {k} vs {k2}");
        let mut out = vec![0.0f32; m * n];
        matmul_into(&self.data, &other.data, &mut out, m, k, n);
        Tensor { shape: vec![m, n], data: out }
    }

    /// Softmax over the last dimension (numerically stable).
    pub fn softmax_last(&self) -> Tensor {
        let mut out = self.clone();
        out.softmax_last_mut();
        out
    }

    /// In-place softmax over the last dimension: overwrites `self` without
    /// allocating. The inference paths use this; the cloning
    /// [`Tensor::softmax_last`] remains for taped forwards that must keep
    /// their input value alive.
    pub fn softmax_last_mut(&mut self) {
        assert!(!self.shape.is_empty(), "softmax needs rank >= 1");
        let cols = *self.shape.last().unwrap();
        let rows = self.data.len() / cols.max(1);
        for r in 0..rows {
            let s = &mut self.data[r * cols..(r + 1) * cols];
            softmax_in_place(s);
        }
    }

    /// L2 norm of all elements.
    pub fn norm(&self) -> f32 {
        self.data.iter().map(|x| x * x).sum::<f32>().sqrt()
    }

    /// Transpose of a 2-D tensor (cache-blocked).
    pub fn t(&self) -> Tensor {
        assert_eq!(self.shape.len(), 2, "t() needs a 2-D tensor");
        let (m, n) = (self.shape[0], self.shape[1]);
        let mut out = vec![0.0f32; m * n];
        transpose_into(&self.data, &mut out, m, n);
        Tensor { shape: vec![n, m], data: out }
    }

    /// True when any element is NaN or infinite.
    pub fn has_non_finite(&self) -> bool {
        self.data.iter().any(|x| !x.is_finite())
    }

    /// Slice `len` entries starting at `start` along `axis` (graph-free
    /// kernel; the differentiable version is [`crate::graph::Graph::narrow`]).
    pub fn narrow(&self, axis: usize, start: usize, len: usize) -> Tensor {
        assert!(axis < self.shape.len(), "narrow axis out of range");
        assert!(start + len <= self.shape[axis], "narrow slice out of bounds");
        let outer: usize = self.shape[..axis].iter().product();
        let inner: usize = self.shape[axis + 1..].iter().product();
        let d = self.shape[axis];
        let mut out_shape = self.shape.clone();
        out_shape[axis] = len;
        let mut out = vec![0.0f32; outer * len * inner];
        for o in 0..outer {
            let src = (o * d + start) * inner;
            out[o * len * inner..(o + 1) * len * inner]
                .copy_from_slice(&self.data[src..src + len * inner]);
        }
        Tensor { shape: out_shape, data: out }
    }

    /// Gather rows of a 2-D tensor by index (graph-free embedding lookup).
    pub fn gather_rows(&self, indices: &[usize]) -> Tensor {
        assert_eq!(self.shape.len(), 2, "gather_rows needs a 2-D tensor");
        let (n, d) = (self.shape[0], self.shape[1]);
        let mut out = Vec::with_capacity(indices.len() * d);
        for &i in indices {
            assert!(i < n, "row index {i} out of {n}");
            out.extend_from_slice(&self.data[i * d..(i + 1) * d]);
        }
        Tensor { shape: vec![indices.len(), d], data: out }
    }
}

/// Concatenate tensors along `axis` (graph-free kernel; all inputs must
/// agree on the other dims). This plus [`Tensor::narrow`] are the two
/// shape ops a KV cache leans on: append new keys/values, slice the live
/// prefix back out.
pub fn concat(parts: &[&Tensor], axis: usize) -> Tensor {
    assert!(!parts.is_empty(), "concat of nothing");
    let first = parts[0].shape().to_vec();
    let rank = first.len();
    assert!(axis < rank, "concat axis {axis} out of rank {rank}");
    let mut axis_total = 0usize;
    for p in parts {
        let s = p.shape();
        assert_eq!(s.len(), rank, "concat rank mismatch");
        for d in 0..rank {
            if d != axis {
                assert_eq!(s[d], first[d], "concat dim {d} mismatch");
            }
        }
        axis_total += s[axis];
    }
    let mut out_shape = first.clone();
    out_shape[axis] = axis_total;
    let outer: usize = first[..axis].iter().product();
    let inner: usize = first[axis + 1..].iter().product();
    let mut out = vec![0.0f32; crate::shape::numel(&out_shape)];
    let mut axis_off = 0usize;
    for p in parts {
        let len = p.shape()[axis];
        for o in 0..outer {
            let src = &p.data()[o * len * inner..(o + 1) * len * inner];
            let dst_start = (o * axis_total + axis_off) * inner;
            out[dst_start..dst_start + len * inner].copy_from_slice(src);
        }
        axis_off += len;
    }
    Tensor::from_vec(out_shape, out)
}

/// Rows per register-blocked pass: four output rows advance together so
/// every loaded `b` value is reused four times from registers.
const MR: usize = 4;
/// Column-block width of the register tile: one f32x8-style vector of
/// output columns per row, held in a fixed `[f32; NR]` accumulator array
/// the autovectorizer maps onto SIMD lanes.
const NR: usize = 8;
/// Inner-dimension tile: the `b` panel touched by one k-block stays
/// cache-resident while all row quads stream past it. Accumulation still
/// runs in ascending-`k` order, so tiling never changes the result.
const KC: usize = 512;
/// RHS widths below this use the packed-transpose dot kernel instead of
/// the register-tile kernel (too few columns to fill a lane block).
const N_SKINNY: usize = 8;

/// Spawn-era dispatch threshold, kept for the legacy-kernel baseline:
/// the scoped pool paid tens of microseconds per spawn, so only
/// multi-million-MAC products parallelized (see
/// [`pool::PAR_FLOPS_MIN`] for the persistent-pool value).
const LEGACY_PAR_FLOPS_MIN: usize = 4 << 20;

/// Bench/gate-only switch: route [`matmul_into`] through the PR 2 quad
/// axpy kernel and its spawn-era dispatch threshold
/// ([`LEGACY_PAR_FLOPS_MIN`]), so the BENCH_5-era kernel floor can be
/// measured in-process against the register-tile kernel. Attention and
/// the skinny dot kernel are not toggled (shared by both modes), which
/// makes measured speedups conservative. Never enable in serving code.
static LEGACY_KERNELS: std::sync::atomic::AtomicBool = std::sync::atomic::AtomicBool::new(false);

/// Enable/disable the legacy (PR 2) matmul kernel for baseline
/// measurements (see `LEGACY_KERNELS`).
pub fn set_legacy_kernels(on: bool) {
    LEGACY_KERNELS.store(on, std::sync::atomic::Ordering::SeqCst);
}

/// True while the legacy-kernel baseline mode is on.
pub fn legacy_kernels_enabled() -> bool {
    LEGACY_KERNELS.load(std::sync::atomic::Ordering::Relaxed)
}

/// `out += a x b` for row-major matrices.
///
/// The kernel holds an MRxNR register accumulator tile per output block
/// (`matmul_blocked_wide`), is tiled over the inner dimension (`KC`),
/// and — for skinny right-hand sides — switches to a transposed-`B`
/// packing so both operands of every dot product are contiguous. Large
/// products additionally split their output rows across the persistent
/// worker pool ([`crate::pool`], `NT_THREADS` knob). All paths accumulate
/// each output element in ascending-`k` order through a single chain, so
/// serial and parallel execution are bit-identical — and so are the
/// legacy and register-tile kernels (only the skinny dot kernel
/// reassociates, and it is shared).
pub fn matmul_into(a: &[f32], b: &[f32], out: &mut [f32], m: usize, k: usize, n: usize) {
    debug_assert_eq!(a.len(), m * k);
    debug_assert_eq!(b.len(), k * n);
    debug_assert_eq!(out.len(), m * n);
    if m == 0 || n == 0 || k == 0 {
        return;
    }
    let legacy = legacy_kernels_enabled();
    let worthwhile = if legacy {
        pool::num_threads() > 1 && m * k * n >= LEGACY_PAR_FLOPS_MIN && !pool::in_worker()
    } else {
        pool::parallel_worthwhile(m * k * n)
    };
    if worthwhile && m > MR {
        // Contiguous row bands, each a multiple of MR so only the final
        // band can hit the remainder kernel.
        let band_rows = m.div_ceil(pool::num_threads()).next_multiple_of(MR);
        pool::for_each_block_mut(out, band_rows * n, |band, chunk| {
            let r0 = band * band_rows;
            let rows = chunk.len() / n;
            matmul_serial(&a[r0 * k..(r0 + rows) * k], b, chunk, rows, k, n, legacy);
        });
    } else {
        matmul_serial(a, b, out, m, k, n, legacy);
    }
}

fn matmul_serial(
    a: &[f32],
    b: &[f32],
    out: &mut [f32],
    m: usize,
    k: usize,
    n: usize,
    legacy: bool,
) {
    if n < N_SKINNY && k >= 16 {
        return matmul_dot_packed(a, b, out, m, k, n);
    }
    if legacy {
        matmul_legacy_axpy(a, b, out, m, k, n);
    } else {
        matmul_blocked_wide(a, b, out, m, k, n);
    }
}

/// Wide-RHS register-tile kernel.
///
/// For each [`KC`] k-tile and each [`NR`]-wide column block, the block of
/// `b` is packed into a contiguous `[kc x NR]` panel once, then every
/// [`MR`]-row quad streams through it holding an `MR x NR` accumulator
/// tile in registers — `out` is loaded and stored once per (quad, block,
/// k-tile) instead of once per `k` step, which is where the old kernel
/// burned its bandwidth. Each `[f32; NR]` accumulator row is a fixed
/// f32x8-shaped array the autovectorizer maps onto SIMD lanes.
///
/// Every output element is still one accumulation chain in ascending-`k`
/// order (the tile is seeded from `out` and written back), so this is
/// bit-identical to the legacy axpy kernel and to its own parallel
/// row-band splits.
fn matmul_blocked_wide(a: &[f32], b: &[f32], out: &mut [f32], m: usize, k: usize, n: usize) {
    if m < MR {
        // Fewer rows than one quad — the token-decode shape (m = 1..3).
        // A packed panel only pays for itself when a full quad streams
        // through it, so this path reads `b` directly instead.
        return matmul_narrow_direct(a, b, out, m, k, n);
    }
    let n_main = n - n % NR;
    let mut panel = vec![0.0f32; KC.min(k) * NR];
    for k0 in (0..k).step_by(KC) {
        let k1 = (k0 + KC).min(k);
        let kc = k1 - k0;
        for j0 in (0..n_main).step_by(NR) {
            // Pack this k-tile of the next NR columns of b: one
            // contiguous panel row per k step.
            let panel = &mut panel[..kc * NR];
            for (prow, kk) in panel.chunks_exact_mut(NR).zip(k0..k1) {
                prow.copy_from_slice(&b[kk * n + j0..kk * n + j0 + NR]);
            }
            let panel = &panel[..];
            let mut i = 0usize;
            while i + MR <= m {
                let a0 = &a[i * k..(i + 1) * k];
                let a1 = &a[(i + 1) * k..(i + 2) * k];
                let a2 = &a[(i + 2) * k..(i + 3) * k];
                let a3 = &a[(i + 3) * k..(i + 4) * k];
                let mut acc = [[0.0f32; NR]; MR];
                for (r, accr) in acc.iter_mut().enumerate() {
                    let o = (i + r) * n + j0;
                    accr.copy_from_slice(&out[o..o + NR]);
                }
                for (prow, kk) in panel.chunks_exact(NR).zip(k0..k1) {
                    let (x0, x1, x2, x3) = (a0[kk], a1[kk], a2[kk], a3[kk]);
                    for l in 0..NR {
                        acc[0][l] += x0 * prow[l];
                        acc[1][l] += x1 * prow[l];
                        acc[2][l] += x2 * prow[l];
                        acc[3][l] += x3 * prow[l];
                    }
                }
                for (r, accr) in acc.iter().enumerate() {
                    let o = (i + r) * n + j0;
                    out[o..o + NR].copy_from_slice(accr);
                }
                i += MR;
            }
            // Remainder rows: one NR-wide accumulator vector per row.
            while i < m {
                let arow = &a[i * k..(i + 1) * k];
                let o = i * n + j0;
                let mut acc = [0.0f32; NR];
                acc.copy_from_slice(&out[o..o + NR]);
                for (prow, kk) in panel.chunks_exact(NR).zip(k0..k1) {
                    let x = arow[kk];
                    for l in 0..NR {
                        acc[l] += x * prow[l];
                    }
                }
                out[o..o + NR].copy_from_slice(&acc);
                i += 1;
            }
        }
        // Ragged column tail (n % NR): plain ascending-k axpy over the
        // last few columns, unpacked.
        if n_main < n {
            for i in 0..m {
                let arow = &a[i * k..(i + 1) * k];
                let (os, oe) = (i * n + n_main, (i + 1) * n);
                for kk in k0..k1 {
                    let x = arow[kk];
                    let brow = &b[kk * n + n_main..(kk + 1) * n];
                    for (o, &bv) in out[os..oe].iter_mut().zip(brow) {
                        *o += x * bv;
                    }
                }
            }
        }
    }
}

/// Sub-quad row count (`m < MR`): the single-token decode shape. Each
/// row holds an [`NR`]-wide register accumulator per column block and
/// streams `b` directly, so `out` is loaded and stored once per (block,
/// k-tile) instead of once per `k` step — the legacy axpy kernel's cost
/// on this shape — while skipping the panel pack that only a full quad
/// can amortize. Same ascending-`k` single-chain accumulation as every
/// other path, so it stays bit-identical to the legacy kernel.
fn matmul_narrow_direct(a: &[f32], b: &[f32], out: &mut [f32], m: usize, k: usize, n: usize) {
    let n_main = n - n % NR;
    for k0 in (0..k).step_by(KC) {
        let k1 = (k0 + KC).min(k);
        for i in 0..m {
            let arow = &a[i * k..(i + 1) * k];
            for j0 in (0..n_main).step_by(NR) {
                let o = i * n + j0;
                let mut acc = [0.0f32; NR];
                acc.copy_from_slice(&out[o..o + NR]);
                for kk in k0..k1 {
                    let x = arow[kk];
                    let brow = &b[kk * n + j0..kk * n + j0 + NR];
                    for l in 0..NR {
                        acc[l] += x * brow[l];
                    }
                }
                out[o..o + NR].copy_from_slice(&acc);
            }
            if n_main < n {
                let (os, oe) = (i * n + n_main, (i + 1) * n);
                for kk in k0..k1 {
                    let x = arow[kk];
                    let brow = &b[kk * n + n_main..(kk + 1) * n];
                    for (o, &bv) in out[os..oe].iter_mut().zip(brow) {
                        *o += x * bv;
                    }
                }
            }
        }
    }
}

/// The PR 2 wide kernel (quad axpy streaming full `n`-wide output rows),
/// retained verbatim as the measured baseline behind
/// [`set_legacy_kernels`]. Same accumulation order as
/// [`matmul_blocked_wide`], so the two are bit-identical — only speed
/// differs.
fn matmul_legacy_axpy(a: &[f32], b: &[f32], out: &mut [f32], _m: usize, k: usize, n: usize) {
    for k0 in (0..k).step_by(KC) {
        let k1 = (k0 + KC).min(k);
        let mut quads = out.chunks_exact_mut(MR * n);
        let mut i = 0usize;
        for quad in &mut quads {
            let (r0, rest) = quad.split_at_mut(n);
            let (r1, rest) = rest.split_at_mut(n);
            let (r2, r3) = rest.split_at_mut(n);
            let a0 = &a[i * k..(i + 1) * k];
            let a1 = &a[(i + 1) * k..(i + 2) * k];
            let a2 = &a[(i + 2) * k..(i + 3) * k];
            let a3 = &a[(i + 3) * k..(i + 4) * k];
            for kk in k0..k1 {
                let brow = &b[kk * n..(kk + 1) * n];
                let (x0, x1, x2, x3) = (a0[kk], a1[kk], a2[kk], a3[kk]);
                for ((((d0, d1), d2), d3), &bv) in
                    r0.iter_mut().zip(r1.iter_mut()).zip(r2.iter_mut()).zip(r3.iter_mut()).zip(brow)
                {
                    *d0 += x0 * bv;
                    *d1 += x1 * bv;
                    *d2 += x2 * bv;
                    *d3 += x3 * bv;
                }
            }
            i += MR;
        }
        let tail = quads.into_remainder();
        for (arow, orow) in a[i * k..].chunks_exact(k).zip(tail.chunks_exact_mut(n)) {
            for kk in k0..k1 {
                let brow = &b[kk * n..(kk + 1) * n];
                let av = arow[kk];
                for (o, &bv) in orow.iter_mut().zip(brow) {
                    *o += av * bv;
                }
            }
        }
    }
}

/// Skinny-RHS kernel: packs `b` transposed so each output element is one
/// dot product over two contiguous slices, computed with eight partial
/// accumulators (reassociation within 1e-5 of the axpy kernel; every
/// consumer compares paths that share this same kernel).
fn matmul_dot_packed(a: &[f32], b: &[f32], out: &mut [f32], _m: usize, k: usize, n: usize) {
    let mut bt = vec![0.0f32; k * n];
    transpose_into(b, &mut bt, k, n);
    for (arow, orow) in a.chunks_exact(k).zip(out.chunks_exact_mut(n)) {
        for (bcol, o) in bt.chunks_exact(k).zip(orow) {
            *o += dot8(arow, bcol);
        }
    }
}

/// Dot product with eight independent accumulator lanes.
fn dot8(x: &[f32], y: &[f32]) -> f32 {
    let mut acc = [0.0f32; 8];
    let xc = x.chunks_exact(8);
    let yc = y.chunks_exact(8);
    let (xr, yr) = (xc.remainder(), yc.remainder());
    for (xs, ys) in xc.zip(yc) {
        for l in 0..8 {
            acc[l] += xs[l] * ys[l];
        }
    }
    let mut tail = 0.0f32;
    for (a, b) in xr.iter().zip(yr) {
        tail += a * b;
    }
    ((acc[0] + acc[4]) + (acc[1] + acc[5])) + ((acc[2] + acc[6]) + (acc[3] + acc[7])) + tail
}

/// Cache-blocked out-of-place transpose: `src` is `[rows, cols]`
/// row-major, `dst` receives `[cols, rows]`. 32x32 tiles keep both the
/// read and the write side inside a few cache lines per pass.
pub fn transpose_into(src: &[f32], dst: &mut [f32], rows: usize, cols: usize) {
    const TB: usize = 32;
    debug_assert_eq!(src.len(), rows * cols);
    debug_assert_eq!(dst.len(), rows * cols);
    for r0 in (0..rows).step_by(TB) {
        let r1 = (r0 + TB).min(rows);
        for c0 in (0..cols).step_by(TB) {
            let c1 = (c0 + TB).min(cols);
            for r in r0..r1 {
                let srow = &src[r * cols..];
                for c in c0..c1 {
                    dst[c * rows + r] = srow[c];
                }
            }
        }
    }
}

pub(crate) const GELU_C: f32 = 0.797_884_6; // sqrt(2/pi)

/// Tanh-approximation GELU, shared by the taped forward, its backward and
/// the graph-free inference kernels (one definition keeps the cached and
/// uncached paths bit-identical).
pub fn gelu(x: f32) -> f32 {
    0.5 * x * (1.0 + tanh_fast(GELU_C * (x + 0.044715 * x * x * x)))
}

/// `tanh` computed from a single `exp` — ~3x faster than libm's `tanhf`
/// on the hot MLP path, within a few ulp of it (every consumer goes
/// through [`gelu`], so taped and graph-free paths shift together).
pub(crate) fn tanh_fast(z: f32) -> f32 {
    // f32 tanh saturates to ±1.0 below |z| = 9 anyway; clamping also
    // keeps exp() finite.
    if z > 9.0 {
        return 1.0;
    }
    if z < -9.0 {
        return -1.0;
    }
    let e = (2.0 * z).exp();
    (e - 1.0) / (e + 1.0)
}

/// Numerically stable in-place softmax of a slice.
pub fn softmax_in_place(s: &mut [f32]) {
    if s.is_empty() {
        return;
    }
    let mx = s.iter().cloned().fold(f32::NEG_INFINITY, f32::max);
    let mut z = 0.0f32;
    for v in s.iter_mut() {
        *v = (*v - mx).exp();
        z += *v;
    }
    if z > 0.0 {
        for v in s.iter_mut() {
            *v /= z;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_and_access() {
        let t = Tensor::from_vec([2, 3], vec![1., 2., 3., 4., 5., 6.]);
        assert_eq!(t.at(&[1, 2]), 6.0);
        assert_eq!(t.row(0), &[1., 2., 3.]);
        assert_eq!(t.numel(), 6);
        assert_eq!(Tensor::scalar(4.0).item(), 4.0);
    }

    #[test]
    #[should_panic]
    fn bad_shape_panics() {
        Tensor::from_vec([2, 2], vec![1.0]);
    }

    #[test]
    fn broadcast_add_bias() {
        let x = Tensor::from_vec([2, 3], vec![0., 0., 0., 1., 1., 1.]);
        let b = Tensor::from_slice(&[10., 20., 30.]);
        let y = x.add(&b);
        assert_eq!(y.data(), &[10., 20., 30., 11., 21., 31.]);
    }

    #[test]
    fn matmul_matches_hand_result() {
        let a = Tensor::from_vec([2, 3], vec![1., 2., 3., 4., 5., 6.]);
        let b = Tensor::from_vec([3, 2], vec![7., 8., 9., 10., 11., 12.]);
        let c = a.matmul(&b);
        assert_eq!(c.shape(), &[2, 2]);
        assert_eq!(c.data(), &[58., 64., 139., 154.]);
    }

    #[test]
    fn transpose_roundtrip() {
        let a = Tensor::from_vec([2, 3], vec![1., 2., 3., 4., 5., 6.]);
        assert_eq!(a.t().t(), a);
        assert_eq!(a.t().at(&[2, 1]), 6.0);
    }

    #[test]
    fn blocked_transpose_matches_indexing_across_tile_boundaries() {
        // Sizes straddling the 32x32 tile: exercises full tiles + ragged edges.
        let mut rng = Rng::seeded(40);
        for (m, n) in [(1, 1), (7, 33), (33, 7), (64, 64), (65, 31), (40, 100)] {
            let a = Tensor::randn([m, n], 1.0, &mut rng);
            let at = a.t();
            assert_eq!(at.shape(), &[n, m]);
            for i in 0..m {
                for j in 0..n {
                    assert_eq!(at.at(&[j, i]), a.at(&[i, j]), "({i},{j}) of {m}x{n}");
                }
            }
        }
    }

    /// Naive triple loop, the pre-blocking reference semantics.
    fn matmul_naive(a: &Tensor, b: &Tensor) -> Tensor {
        let (m, k) = (a.shape()[0], a.shape()[1]);
        let n = b.shape()[1];
        let mut out = vec![0.0f32; m * n];
        for i in 0..m {
            for kk in 0..k {
                let av = a.data()[i * k + kk];
                for j in 0..n {
                    out[i * n + j] += av * b.data()[kk * n + j];
                }
            }
        }
        Tensor::from_vec([m, n], out)
    }

    #[test]
    fn blocked_matmul_matches_naive_reference() {
        // Shapes cover: quad rows + remainder rows, skinny-n dot kernel
        // (n < 8, k >= 16), k-tile boundaries, and zero entries (the old
        // kernel's skip branch must not have been load-bearing).
        let mut rng = Rng::seeded(41);
        for (m, k, n) in
            [(1, 4, 1), (4, 16, 3), (5, 48, 6), (7, 33, 1), (8, 48, 48), (13, 96, 20), (6, 600, 9)]
        {
            let mut a = Tensor::randn([m, k], 1.0, &mut rng);
            let b = Tensor::randn([k, n], 1.0, &mut rng);
            a.data_mut()[0] = 0.0; // exercise explicit zeros too
            let got = a.matmul(&b);
            let want = matmul_naive(&a, &b);
            for (x, y) in got.data().iter().zip(want.data()) {
                assert!((x - y).abs() < 1e-4, "{m}x{k}x{n}: {x} vs {y}");
            }
        }
    }

    #[test]
    fn softmax_rows_sum_to_one() {
        let t = Tensor::from_vec([2, 4], vec![1., 2., 3., 4., -1., 0., 1., 2.]);
        let s = t.softmax_last();
        for r in 0..2 {
            let sum: f32 = s.row(r).iter().sum();
            assert!((sum - 1.0).abs() < 1e-5);
        }
    }

    #[test]
    fn softmax_last_mut_matches_cloning_softmax() {
        let mut rng = Rng::seeded(42);
        let t = Tensor::randn([3, 7], 2.0, &mut rng);
        let cloned = t.softmax_last();
        let mut inplace = t;
        inplace.softmax_last_mut();
        assert_eq!(cloned, inplace);
    }

    #[test]
    fn softmax_handles_extremes() {
        let t = Tensor::from_slice(&[1000.0, 0.0, -1000.0]);
        let s = t.softmax_last();
        assert!((s.data()[0] - 1.0).abs() < 1e-5);
        assert!(!s.has_non_finite());
    }

    #[test]
    fn argmax_first_on_ties() {
        let t = Tensor::from_slice(&[1.0, 3.0, 3.0, 2.0]);
        assert_eq!(t.argmax(), 1);
    }

    #[test]
    fn randn_is_deterministic_under_seed() {
        let mut r1 = Rng::seeded(7);
        let mut r2 = Rng::seeded(7);
        let a = Tensor::randn([4, 4], 1.0, &mut r1);
        let b = Tensor::randn([4, 4], 1.0, &mut r2);
        assert_eq!(a, b);
    }

    #[test]
    fn narrow_kernel_slices_rows_and_cols() {
        let t = Tensor::from_vec([2, 3], vec![1., 2., 3., 4., 5., 6.]);
        assert_eq!(t.narrow(0, 1, 1).data(), &[4., 5., 6.]);
        assert_eq!(t.narrow(1, 1, 2).data(), &[2., 3., 5., 6.]);
        assert_eq!(t.narrow(1, 1, 2).shape(), &[2, 2]);
    }

    #[test]
    fn concat_kernel_roundtrips_with_narrow() {
        let a = Tensor::from_vec([2, 2], vec![1., 2., 3., 4.]);
        let b = Tensor::from_vec([1, 2], vec![5., 6.]);
        let cat = concat(&[&a, &b], 0);
        assert_eq!(cat.shape(), &[3, 2]);
        assert_eq!(cat.narrow(0, 0, 2), a);
        assert_eq!(cat.narrow(0, 2, 1), b);
        // Column-axis concat too (the KV layout appends along time).
        let c = concat(&[&a, &a], 1);
        assert_eq!(c.shape(), &[2, 4]);
        assert_eq!(c.data(), &[1., 2., 1., 2., 3., 4., 3., 4.]);
    }

    #[test]
    fn gather_rows_kernel_matches_indexing() {
        let t = Tensor::from_vec([3, 2], vec![1., 2., 3., 4., 5., 6.]);
        let g = t.gather_rows(&[2, 0, 2]);
        assert_eq!(g.shape(), &[3, 2]);
        assert_eq!(g.data(), &[5., 6., 1., 2., 5., 6.]);
    }
}

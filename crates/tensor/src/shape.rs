//! Shape arithmetic: strides, broadcasting and index iteration.
//!
//! Shapes are plain `Vec<usize>` in row-major (C) order. Broadcasting follows
//! NumPy semantics: shapes are aligned at the trailing dimension and a
//! dimension of size 1 stretches to match the other operand.

/// Number of elements described by `shape`. The empty shape is a scalar (1).
pub fn numel(shape: &[usize]) -> usize {
    shape.iter().product()
}

/// Row-major strides for `shape`.
pub fn strides(shape: &[usize]) -> Vec<usize> {
    let mut s = vec![1usize; shape.len()];
    for i in (0..shape.len().saturating_sub(1)).rev() {
        s[i] = s[i + 1] * shape[i + 1];
    }
    s
}

/// Broadcast two shapes, returning the output shape, or `None` when the
/// shapes are incompatible.
pub fn broadcast_shapes(a: &[usize], b: &[usize]) -> Option<Vec<usize>> {
    let rank = a.len().max(b.len());
    let mut out = vec![0usize; rank];
    for (i, slot) in out.iter_mut().enumerate() {
        let da = dim_from_right(a, rank - 1 - i);
        let db = dim_from_right(b, rank - 1 - i);
        *slot = match (da, db) {
            (x, y) if x == y => x,
            (1, y) => y,
            (x, 1) => x,
            _ => return None,
        };
    }
    Some(out)
}

fn dim_from_right(shape: &[usize], pos_from_left_of_out: usize) -> usize {
    // `pos_from_left_of_out` counts positions in the *output* rank; shapes
    // shorter than the output rank are implicitly left-padded with 1s.
    let rank = shape.len();
    let out_rank_pos = pos_from_left_of_out;
    // Index into `shape` once the implicit padding is removed.
    if out_rank_pos >= rank {
        1
    } else {
        shape[rank - 1 - out_rank_pos]
    }
}

/// Strides for reading `shape` as if broadcast to `out`: broadcast dimensions
/// get stride 0. Panics if the shapes are not broadcast-compatible.
pub fn broadcast_strides(shape: &[usize], out: &[usize]) -> Vec<usize> {
    assert!(shape.len() <= out.len(), "operand rank exceeds output rank");
    let base = strides(shape);
    let offset = out.len() - shape.len();
    let mut r = vec![0usize; out.len()];
    for i in 0..shape.len() {
        let (s, o) = (shape[i], out[offset + i]);
        assert!(s == o || s == 1, "shape {shape:?} not broadcastable to {out:?}");
        r[offset + i] = if s == 1 { 0 } else { base[i] };
    }
    r
}

/// Row-major odometer over a shape. Yields flat offsets for up to two
/// broadcast operands alongside the output offset.
pub struct Odometer<'a> {
    shape: &'a [usize],
    idx: Vec<usize>,
    done: bool,
}

impl<'a> Odometer<'a> {
    pub fn new(shape: &'a [usize]) -> Self {
        Odometer { shape, idx: vec![0; shape.len()], done: numel(shape) == 0 }
    }

    /// Current multi-index.
    pub fn index(&self) -> &[usize] {
        &self.idx
    }

    /// Flat offset of the current index under `strides`.
    pub fn offset(&self, strides: &[usize]) -> usize {
        self.idx.iter().zip(strides).map(|(i, s)| i * s).sum()
    }

    /// Advance; returns `false` once the iteration space is exhausted.
    pub fn step(&mut self) -> bool {
        if self.done {
            return false;
        }
        for d in (0..self.shape.len()).rev() {
            self.idx[d] += 1;
            if self.idx[d] < self.shape[d] {
                return true;
            }
            self.idx[d] = 0;
        }
        self.done = true;
        false
    }

    pub fn is_done(&self) -> bool {
        self.done
    }
}

/// Apply `f(out_off, a_off, b_off)` over every position of `out_shape`,
/// with `a`/`b` offsets computed under broadcast strides.
pub fn for_each_broadcast2(
    out_shape: &[usize],
    a_shape: &[usize],
    b_shape: &[usize],
    mut f: impl FnMut(usize, usize, usize),
) {
    let sa = broadcast_strides(a_shape, out_shape);
    let sb = broadcast_strides(b_shape, out_shape);
    if numel(out_shape) == 0 {
        return;
    }
    // Fast path: no actual broadcasting.
    if a_shape == out_shape && b_shape == out_shape {
        for i in 0..numel(out_shape) {
            f(i, i, i);
        }
        return;
    }
    let mut od = Odometer::new(out_shape);
    let mut out_off = 0usize;
    loop {
        f(out_off, od.offset(&sa), od.offset(&sb));
        out_off += 1;
        if !od.step() {
            break;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn numel_and_strides() {
        assert_eq!(numel(&[2, 3, 4]), 24);
        assert_eq!(numel(&[]), 1);
        assert_eq!(strides(&[2, 3, 4]), vec![12, 4, 1]);
        assert_eq!(strides(&[5]), vec![1]);
        assert_eq!(strides(&[]), Vec::<usize>::new());
    }

    #[test]
    fn broadcast_basic() {
        assert_eq!(broadcast_shapes(&[2, 3], &[2, 3]), Some(vec![2, 3]));
        assert_eq!(broadcast_shapes(&[2, 3], &[3]), Some(vec![2, 3]));
        assert_eq!(broadcast_shapes(&[2, 1], &[1, 4]), Some(vec![2, 4]));
        assert_eq!(broadcast_shapes(&[2, 3], &[4]), None);
        assert_eq!(broadcast_shapes(&[], &[3]), Some(vec![3]));
    }

    #[test]
    fn broadcast_strides_zeroes_stretched_dims() {
        assert_eq!(broadcast_strides(&[3], &[2, 3]), vec![0, 1]);
        assert_eq!(broadcast_strides(&[2, 1], &[2, 4]), vec![1, 0]);
        assert_eq!(broadcast_strides(&[2, 3], &[2, 3]), vec![3, 1]);
    }

    #[test]
    fn odometer_visits_all_positions_in_order() {
        let shape = [2usize, 3];
        let st = strides(&shape);
        let mut od = Odometer::new(&shape);
        let mut seen = Vec::new();
        loop {
            seen.push(od.offset(&st));
            if !od.step() {
                break;
            }
        }
        assert_eq!(seen, (0..6).collect::<Vec<_>>());
    }

    #[test]
    fn for_each_broadcast2_bias_add_pattern() {
        let mut trips = Vec::new();
        for_each_broadcast2(&[2, 3], &[2, 3], &[3], |o, a, b| trips.push((o, a, b)));
        assert_eq!(trips.len(), 6);
        assert_eq!(trips[0], (0, 0, 0));
        assert_eq!(trips[4], (4, 4, 1));
        assert_eq!(trips[5], (5, 5, 2));
    }
}

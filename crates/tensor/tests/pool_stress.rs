//! Persistent-pool stress: nested-dispatch guard, panic recovery, and
//! concurrent dispatchers. Lives in its own test binary so `NT_THREADS`
//! can be set before the pool's `OnceLock` is first read, and shares one
//! `#[test]` body so every sub-check runs after the env var is set.

use nt_tensor::pool;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

#[test]
fn pool_survives_nesting_panics_and_concurrent_dispatch() {
    std::env::set_var("NT_THREADS", "4");
    assert_eq!(pool::num_threads(), 4);

    // 1. The in_worker guard prevents NT_THREADS^2 fan-out: a kernel
    // dispatched from inside a pool task must run inline on that same
    // task's thread.
    pool::run_tasks(4, |_| {
        assert!(pool::in_worker(), "pool tasks must carry the worker flag");
        let me = std::thread::current().id();
        let mut data = vec![0u8; 64];
        pool::for_each_block_mut(&mut data, 4, |_, block| {
            assert_eq!(std::thread::current().id(), me, "nested dispatch escaped its worker");
            block.fill(1);
        });
        assert!(data.iter().all(|&v| v == 1));
    });

    // 2. A panicking task closure propagates to the dispatcher with its
    // payload intact...
    let caught = catch_unwind(AssertUnwindSafe(|| {
        pool::run_tasks(4, |i| {
            if i == 2 {
                panic!("boom in task");
            }
        });
    }));
    let payload = caught.expect_err("task panic must propagate");
    let msg = payload.downcast_ref::<&str>().copied().unwrap_or_default();
    assert_eq!(msg, "boom in task", "panic payload must survive the pool");

    // ...and a panicking band closure in for_each_block_mut does too.
    let caught = catch_unwind(AssertUnwindSafe(|| {
        let mut data = vec![0u32; 1000];
        pool::for_each_block_mut(&mut data, 10, |i, _| {
            if i == 57 {
                panic!("boom in band");
            }
        });
    }));
    assert!(caught.is_err(), "band panic must propagate");

    // 3. The pool is not deadlocked or poisoned by the panics: hundreds
    // of later dispatches still cover every block exactly once.
    for round in 0..200 {
        let mut data = vec![0u32; 403];
        pool::for_each_block_mut(&mut data, 10, |i, block| {
            for v in block.iter_mut() {
                *v += 1 + i as u32;
            }
        });
        for (i, v) in data.iter().enumerate() {
            assert_eq!(*v, 1 + (i / 10) as u32, "round {round}: element {i} wrong");
        }
    }

    // 4. Concurrent top-level dispatchers serialize through the gate
    // instead of corrupting each other's jobs (panics mixed in).
    let total = AtomicUsize::new(0);
    let panics = Mutex::new(0usize);
    std::thread::scope(|sc| {
        for t in 0..4 {
            let total = &total;
            let panics = &panics;
            sc.spawn(move || {
                for round in 0..50 {
                    if t == 0 && round % 10 == 3 {
                        let r = catch_unwind(AssertUnwindSafe(|| {
                            pool::run_tasks(3, |_| panic!("interleaved boom"));
                        }));
                        assert!(r.is_err());
                        *panics.lock().unwrap() += 1;
                    } else {
                        pool::run_tasks(5, |_| {
                            total.fetch_add(1, Ordering::Relaxed);
                        });
                    }
                }
            });
        }
    });
    assert_eq!(*panics.lock().unwrap(), 5);
    assert_eq!(total.load(Ordering::Relaxed), (4 * 50 - 5) * 5, "a dispatch lost tasks");

    // 5. Dispatch counters moved (monotonic totals for the metrics
    // registry / bench6).
    let stats = pool::stats();
    assert!(stats.dispatches > 0, "parallel dispatches must be counted");
    assert!(stats.tasks >= stats.dispatches, "tasks count fan-out, not jobs");
}

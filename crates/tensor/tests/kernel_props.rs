//! Kernel-equivalence property sweep: the register-tile kernel
//! ([`nt_tensor::tensor::matmul_into`] with legacy mode off) must agree
//! with the retained PR 2 kernel (legacy mode on) at 1e-6 — in fact the
//! axpy-family paths are bit-identical, only the shared skinny dot kernel
//! reassociates — across adversarial shapes: every m, n, k in
//! {1..9, 15, 16, 17, 63, 64, 65}, covering quad-row remainders, NR
//! column-tail remainders, KC boundaries and the skinny-RHS switch. A
//! naive triple-loop oracle bounds both kernels at 1e-4.
//!
//! The legacy switch is process-global, so the whole sweep lives in one
//! `#[test]` body (no parallel test interleaving). The `NT_THREADS`
//! {1, 4} axis comes from the CI matrix, which runs every test binary
//! under both values — band splits never change per-element accumulation
//! order, so the sweep must pass identically under either.

use nt_tensor::tensor::{matmul_into, set_legacy_kernels};
use nt_tensor::Rng;

fn naive(a: &[f32], b: &[f32], m: usize, k: usize, n: usize) -> Vec<f32> {
    let mut out = vec![0.0f32; m * n];
    for i in 0..m {
        for kk in 0..k {
            let av = a[i * k + kk];
            for j in 0..n {
                out[i * n + j] += av * b[kk * n + j];
            }
        }
    }
    out
}

#[test]
fn register_tile_kernel_matches_legacy_kernel_across_adversarial_shapes() {
    let dims: &[usize] = &[1, 2, 3, 4, 5, 6, 7, 8, 9, 15, 16, 17, 63, 64, 65];
    let mut rng = Rng::seeded(60);
    for &m in dims {
        for &k in dims {
            for &n in dims {
                let a: Vec<f32> = (0..m * k).map(|_| rng.normal()).collect();
                let b: Vec<f32> = (0..k * n).map(|_| rng.normal()).collect();

                set_legacy_kernels(false);
                let mut new_out = vec![0.0f32; m * n];
                matmul_into(&a, &b, &mut new_out, m, k, n);

                set_legacy_kernels(true);
                let mut legacy_out = vec![0.0f32; m * n];
                matmul_into(&a, &b, &mut legacy_out, m, k, n);
                set_legacy_kernels(false);

                for (i, (x, y)) in new_out.iter().zip(&legacy_out).enumerate() {
                    assert!((x - y).abs() < 1e-6, "{m}x{k}x{n} elem {i}: new {x} vs legacy {y}");
                }
                let want = naive(&a, &b, m, k, n);
                for (i, (x, y)) in new_out.iter().zip(&want).enumerate() {
                    assert!((x - y).abs() < 1e-4, "{m}x{k}x{n} elem {i}: new {x} vs naive {y}");
                }
            }
        }
    }
}

/// The legacy switch must not leak into accumulate semantics: both
/// kernels *add into* `out`, so seeding the output with a bias must give
/// bias + product under either mode.
#[test]
fn both_kernels_accumulate_into_seeded_output() {
    let mut rng = Rng::seeded(61);
    let (m, k, n) = (5, 17, 11);
    let a: Vec<f32> = (0..m * k).map(|_| rng.normal()).collect();
    let b: Vec<f32> = (0..k * n).map(|_| rng.normal()).collect();
    let seed: Vec<f32> = (0..m * n).map(|_| rng.normal()).collect();
    let mut base = vec![0.0f32; m * n];
    matmul_into(&a, &b, &mut base, m, k, n);
    for legacy in [false, true] {
        set_legacy_kernels(legacy);
        let mut out = seed.clone();
        matmul_into(&a, &b, &mut out, m, k, n);
        set_legacy_kernels(false);
        for i in 0..m * n {
            assert!(
                (out[i] - (seed[i] + base[i])).abs() < 1e-5,
                "legacy={legacy} elem {i} lost its seed"
            );
        }
    }
}

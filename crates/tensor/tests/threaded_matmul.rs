//! The `NT_THREADS` parallel path must be bit-identical to serial
//! execution. This lives in its own test binary so the env knob can be
//! set before the pool's `OnceLock` is first read — `cargo test` runs
//! each integration test in a fresh process.

use nt_tensor::{pool, Rng, Tensor};

/// Single test fn: every sub-check must run after the env var is set and
/// before anything else touches the pool, so they share one body.
#[test]
fn threaded_matmul_is_bit_identical_to_serial() {
    std::env::set_var("NT_THREADS", "4");
    assert_eq!(pool::num_threads(), 4);

    let mut rng = Rng::seeded(7);
    // Big enough to clear the parallel work threshold (m*k*n >= 4Mi).
    let (m, k, n) = (256, 192, 128);
    let a = Tensor::randn([m, k], 1.0, &mut rng);
    let b = Tensor::randn([k, n], 1.0, &mut rng);
    assert!(pool::parallel_worthwhile(m * k * n), "test must exercise the parallel branch");
    let par = a.matmul(&b);

    // Serial reference through the same blocked kernel: row-band splits
    // never change the per-element accumulation order, so slicing the
    // product row-by-row through 1-row matmuls must agree bit-for-bit.
    let mut serial = Vec::with_capacity(m * n);
    for i in 0..m {
        let row = a.narrow(0, i, 1).matmul(&b);
        serial.extend_from_slice(row.data());
    }
    assert_eq!(par.data(), &serial[..], "parallel matmul diverged from serial");

    // batch_matmul's per-batch blocks must also be bit-identical.
    let mut g = nt_tensor::Graph::new(false, 0);
    let ba = g.leaf(Tensor::randn([8, 96, 96], 1.0, &mut rng), false);
    let bb = g.leaf(Tensor::randn([8, 96, 96], 1.0, &mut rng), false);
    let prod = g.batch_matmul(ba, bb);
    let got = g.value(prod).clone();
    for i in 0..8 {
        let ai =
            Tensor::from_vec([96, 96], g.value(ba).data()[i * 96 * 96..(i + 1) * 96 * 96].to_vec());
        let bi =
            Tensor::from_vec([96, 96], g.value(bb).data()[i * 96 * 96..(i + 1) * 96 * 96].to_vec());
        let want = ai.matmul(&bi);
        assert_eq!(
            &got.data()[i * 96 * 96..(i + 1) * 96 * 96],
            want.data(),
            "batch entry {i} diverged"
        );
    }
}

//! Rule-based schedulers: FIFO, Fair (paper §A.3) and an SRPT heuristic
//! (used as the behaviour-cloning teacher for Decima's warm start).

use crate::sim::{Candidate, Decision, SchedView, Scheduler};

/// First-in-first-out: serve the earliest-arrived job, give it as many
/// executors as it can use (Spark's default FIFO mode).
pub struct Fifo;

impl Scheduler for Fifo {
    fn name(&self) -> &str {
        "FIFO"
    }

    fn decide(&mut self, view: &SchedView) -> Option<Decision> {
        let idx = view
            .candidates
            .iter()
            .enumerate()
            .min_by(|(_, a), (_, b)| {
                let (ja, jb) = (&view.jobs[a.job], &view.jobs[b.job]);
                ja.arrival
                    .partial_cmp(&jb.arrival)
                    .unwrap()
                    .then(a.job.cmp(&b.job))
                    .then(a.stage.cmp(&b.stage))
            })
            .map(|(i, _)| i)?;
        Some(Decision { candidate: idx, cap: usize::MAX })
    }
}

/// Fair scheduling: each active job is entitled to an equal share of the
/// cluster; serve the job furthest below its share (Spark's fair mode).
pub struct Fair;

impl Scheduler for Fair {
    fn name(&self) -> &str {
        "Fair"
    }

    fn decide(&mut self, view: &SchedView) -> Option<Decision> {
        let active = view.jobs.iter().filter(|j| j.arrived && !j.completed).count().max(1);
        let share = view.total_executors.div_ceil(active);
        // Pick the candidate whose job is furthest below its share.
        let mut best: Option<(usize, i64)> = None;
        for (i, c) in view.candidates.iter().enumerate() {
            let deficit = share as i64 - view.jobs[c.job].running_executors as i64;
            let better = match best {
                None => true,
                Some((_, d)) => deficit > d,
            };
            if better {
                best = Some((i, deficit));
            }
        }
        let (idx, deficit) = best?;
        if deficit <= 0 {
            // Every job is at/over its share; still make progress by giving
            // the least-served job one more slot (work conservation).
            return Some(Decision {
                candidate: idx,
                cap: view.jobs[view.candidates[idx].job].running_executors + 1,
            });
        }
        let job = view.candidates[idx].job;
        Some(Decision {
            candidate: idx,
            cap: view.jobs[job].stages[view.candidates[idx].stage].running + deficit as usize,
        })
    }
}

/// Shortest-remaining-processing-time: serve the job with the least
/// remaining work. Not one of the paper's baselines; used as Decima's
/// behaviour-cloning teacher and in ablation benches.
pub struct Srpt;

impl Scheduler for Srpt {
    fn name(&self) -> &str {
        "SRPT"
    }

    fn decide(&mut self, view: &SchedView) -> Option<Decision> {
        let idx = view
            .candidates
            .iter()
            .enumerate()
            .min_by(|(_, a), (_, b)| {
                let (wa, wb) =
                    (view.jobs[a.job].remaining_work(), view.jobs[b.job].remaining_work());
                wa.partial_cmp(&wb).unwrap().then(a.job.cmp(&b.job)).then(a.stage.cmp(&b.stage))
            })
            .map(|(i, _)| i)?;
        Some(Decision { candidate: idx, cap: usize::MAX })
    }
}

/// Index of a candidate in a view (test helper and shared logic).
pub fn candidate_index(view: &SchedView, c: Candidate) -> Option<usize> {
    view.candidates.iter().position(|&x| x == c)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::job::{generate_workload, WorkloadConfig};
    use crate::sim::run_workload;

    fn workload(n: usize, seed: u64) -> Vec<crate::job::Job> {
        generate_workload(&WorkloadConfig { num_jobs: n, mean_interarrival: 1.5, seed })
    }

    #[test]
    fn all_policies_complete_workloads() {
        let jobs = workload(15, 1);
        for (name, stats) in [
            ("fifo", run_workload(&mut Fifo, &jobs, 12, None)),
            ("fair", run_workload(&mut Fair, &jobs, 12, None)),
            ("srpt", run_workload(&mut Srpt, &jobs, 12, None)),
        ] {
            assert_eq!(stats.jcts.len(), 15, "{name}");
            assert!(stats.mean_jct() > 0.0, "{name}");
        }
    }

    #[test]
    fn srpt_beats_fifo_on_mean_jct() {
        // The classic queueing result; holds on average over workloads.
        let mut srpt_wins = 0;
        for seed in 0..6 {
            let jobs = workload(25, 100 + seed);
            let fifo = run_workload(&mut Fifo, &jobs, 10, None).mean_jct();
            let srpt = run_workload(&mut Srpt, &jobs, 10, None).mean_jct();
            if srpt < fifo {
                srpt_wins += 1;
            }
        }
        assert!(srpt_wins >= 4, "SRPT should usually beat FIFO ({srpt_wins}/6)");
    }

    #[test]
    fn fair_beats_fifo_on_mean_jct_under_contention() {
        let mut fair_wins = 0;
        for seed in 0..12 {
            let jobs = workload(50, 200 + seed);
            let fifo = run_workload(&mut Fifo, &jobs, 8, None).mean_jct();
            let fair = run_workload(&mut Fair, &jobs, 8, None).mean_jct();
            if fair < fifo {
                fair_wins += 1;
            }
        }
        assert!(fair_wins >= 8, "Fair should usually beat FIFO ({fair_wins}/12)");
    }
}

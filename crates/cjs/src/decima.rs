//! Decima-like learning-based scheduler (Mao et al., SIGCOMM'19).
//!
//! Architecture: GNN message passing over the stage DAG, a stage-selection
//! head scored per candidate node, and an executor-parallelism head over a
//! discrete set of cluster fractions — Decima's two-part action.
//!
//! Training: behaviour-cloning warm start from the SRPT heuristic (Decima's
//! learned policies are SRPT-flavoured; warm starting stabilises REINFORCE
//! at this scale), followed by policy-gradient fine-tuning with the exact
//! Decima reward: minus the time-integral of the number of active jobs,
//! credited per decision as work-remaining-after-`t_k` (computed exactly
//! from job arrival/finish times after the episode).

use crate::job::Job;
use crate::policies::Srpt;
use crate::sim::{run_workload, Decision, SchedView, Scheduler};
use crate::snapshot::{snapshot, GraphSnapshot, NODE_FEATS};
use nt_nn::{clip_grad_norm, Adam, Fwd, Gnn, Init, Linear, ParamStore};
use nt_tensor::{NodeId, Rng};

/// Executor-cap menu as fractions of the cluster.
pub const CAP_FRACS: [f64; 5] = [0.1, 0.25, 0.5, 0.75, 1.0];

const EMB: usize = 16;

/// The Decima policy network.
pub struct DecimaNet {
    pub gnn: Gnn,
    pub score: Linear,
    pub cap: Linear,
}

impl DecimaNet {
    pub fn new(store: &mut ParamStore, rng: &mut Rng) -> Self {
        DecimaNet {
            gnn: Gnn::new(store, "decima.gnn", NODE_FEATS, EMB, EMB, 2, rng),
            score: Linear::new(store, "decima.score", 2 * EMB, 1, true, Init::Xavier, rng),
            cap: Linear::new(
                store,
                "decima.cap",
                2 * EMB,
                CAP_FRACS.len(),
                true,
                Init::Xavier,
                rng,
            ),
        }
    }

    /// Build the differentiable decision pipeline for one snapshot.
    /// Returns `(stage_logits [1,c], cap_logits_of_choice [1,K])`.
    pub fn decision_logits(
        &self,
        f: &mut Fwd,
        store: &ParamStore,
        snap: &GraphSnapshot,
        chosen_candidate: usize,
    ) -> (NodeId, NodeId) {
        let c = snap.candidates.len();
        assert!(c > 0, "no candidates");
        let feats = f.input(snap.feats.clone());
        let adj = f.input(snap.adj.clone());
        let emb = self.gnn.forward(f, store, feats, adj); // [n, EMB]
        let global = f.g.mean_axis(emb, 0); // [EMB]
        let global = f.g.reshape(global, [1, EMB]);
        let cand = f.g.rows(emb, &snap.candidates); // [c, EMB]
        let glob_rep = f.g.rows(global, &vec![0usize; c]); // [c, EMB]
        let cat = f.g.concat(&[cand, glob_rep], 1); // [c, 2*EMB]
        let scores = self.score.forward(f, store, cat); // [c, 1]
        let stage_logits = f.g.reshape(scores, [1, c]);
        let chosen_row = f.g.narrow(cat, 0, chosen_candidate.min(c - 1), 1); // [1, 2*EMB]
        let cap_logits = self.cap.forward(f, store, chosen_row); // [1, K]
        (stage_logits, cap_logits)
    }

    /// Inference: stage probabilities, then cap probabilities for `chosen`.
    pub fn probs(
        &self,
        store: &ParamStore,
        snap: &GraphSnapshot,
        chosen: Option<usize>,
    ) -> (Vec<f32>, Vec<f32>) {
        let mut f = Fwd::eval_no_tape();
        let (sl, cl) = self.decision_logits(&mut f, store, snap, chosen.unwrap_or(0));
        let (mut sp, mut cp) = (f.g.value(sl).clone(), f.g.value(cl).clone());
        sp.softmax_last_mut();
        cp.softmax_last_mut();
        (sp.into_data(), cp.into_data())
    }
}

/// Decima as a [`Scheduler`]: greedy at test time, sampling during training.
pub struct DecimaPolicy {
    pub net: DecimaNet,
    pub store: ParamStore,
    pub sample: bool,
    pub rng: Rng,
}

impl Scheduler for DecimaPolicy {
    fn name(&self) -> &str {
        "Decima"
    }

    fn decide(&mut self, view: &SchedView) -> Option<Decision> {
        if view.candidates.is_empty() {
            return None;
        }
        let snap = snapshot(view);
        let (sp, _) = self.net.probs(&self.store, &snap, None);
        let stage = if self.sample { self.rng.categorical(&sp) } else { argmax(&sp) };
        let (_, cp) = self.net.probs(&self.store, &snap, Some(stage));
        let cap_idx = if self.sample { self.rng.categorical(&cp) } else { argmax(&cp) };
        let cap = (CAP_FRACS[cap_idx] * view.total_executors as f64).ceil() as usize;
        Some(Decision { candidate: stage, cap: cap.max(1) })
    }
}

fn argmax(v: &[f32]) -> usize {
    let mut b = 0;
    for (i, &x) in v.iter().enumerate() {
        if x > v[b] {
            b = i;
        }
    }
    b
}

/// One recorded decision during a rollout.
struct Recorded {
    snap: GraphSnapshot,
    stage_choice: usize,
    cap_choice: usize,
    time: f64,
}

/// Training configuration.
#[derive(Clone, Debug)]
pub struct DecimaTrainConfig {
    pub bc_iters: usize,
    pub rl_iters: usize,
    /// Jobs per training episode (kept small; evaluation uses full workloads).
    pub episode_jobs: usize,
    pub executors: usize,
    pub lr: f32,
    pub seed: u64,
    /// Max decisions used per policy-gradient update (subsampled).
    pub max_decisions: usize,
}

impl Default for DecimaTrainConfig {
    fn default() -> Self {
        DecimaTrainConfig {
            bc_iters: 40,
            rl_iters: 80,
            episode_jobs: 10,
            executors: 20,
            lr: 1e-3,
            seed: 17,
            max_decisions: 48,
        }
    }
}

/// Train Decima on freshly sampled workloads drawn like `train_like` (the
/// default Table 4 setting scaled to `episode_jobs`).
pub fn train_decima(mean_interarrival: f64, cfg: &DecimaTrainConfig) -> DecimaPolicy {
    let mut rng = Rng::seeded(cfg.seed);
    let mut store = ParamStore::new();
    let net = DecimaNet::new(&mut store, &mut rng);
    let mut opt = Adam::new(cfg.lr);

    // ---- Phase 1: behaviour cloning from SRPT -------------------------------
    for it in 0..cfg.bc_iters {
        let jobs = episode_jobs(cfg, 1000 + it as u64, mean_interarrival);
        let mut teacher = Srpt;
        let mut recs: Vec<Recorded> = Vec::new();
        {
            let mut hook = |view: &SchedView, d: &Decision| {
                recs.push(Recorded {
                    snap: snapshot(view),
                    stage_choice: d.candidate,
                    // SRPT uses unbounded caps -> clone to the largest option.
                    cap_choice: CAP_FRACS.len() - 1,
                    time: view.now,
                });
            };
            run_workload(&mut teacher, &jobs, cfg.executors, Some(&mut hook));
        }
        subsample(&mut recs, cfg.max_decisions, &mut rng);
        if recs.is_empty() {
            continue;
        }
        let unit = vec![1.0f32];
        let mut f = Fwd::train(cfg.seed ^ it as u64);
        let mut losses = Vec::new();
        for r in &recs {
            let (sl, cl) = net.decision_logits(&mut f, &store, &r.snap, r.stage_choice);
            let ls = f.g.weighted_cross_entropy(sl, &[r.stage_choice], &unit);
            let lc = f.g.weighted_cross_entropy(cl, &[r.cap_choice], &unit);
            let sum = f.g.add(ls, lc);
            losses.push(sum);
        }
        let total = sum_nodes(&mut f, &losses);
        let loss = f.g.scale(total, 1.0 / recs.len() as f32);
        let mut grads = f.backward(loss);
        clip_grad_norm(&mut grads, 1.0);
        opt.step(&mut store, &grads);
    }

    // ---- Phase 2: REINFORCE with the Decima reward ---------------------------
    let mut policy = DecimaPolicy { net, store, sample: true, rng: Rng::seeded(cfg.seed ^ 0xAB) };
    for it in 0..cfg.rl_iters {
        let jobs = episode_jobs(cfg, 5000 + it as u64, mean_interarrival);
        let mut recs: Vec<Recorded> = Vec::new();
        let stats = {
            // Roll out the sampling policy, recording decisions; the same run
            // yields the episode stats used for the reward.
            let mut actor = RecordingDecima { inner: &mut policy, recs: &mut recs };
            run_workload(&mut actor, &jobs, cfg.executors, None)
        };
        if recs.len() < 4 {
            continue;
        }
        let finishes: Vec<f64> =
            jobs.iter().zip(&stats.jcts).map(|(j, &jct)| j.arrival + jct).collect();
        let scale = 1.0 / (cfg.episode_jobs as f64 * 20.0);
        let returns: Vec<f32> = recs
            .iter()
            .map(|r| {
                let mut integral = 0.0;
                for (j, &fin) in jobs.iter().zip(&finishes) {
                    integral += (fin - j.arrival.max(r.time)).max(0.0);
                }
                (-integral * scale) as f32
            })
            .collect();
        let mean_r: f32 = returns.iter().sum::<f32>() / returns.len() as f32;
        let std_r: f32 = (returns.iter().map(|r| (r - mean_r) * (r - mean_r)).sum::<f32>()
            / returns.len() as f32)
            .sqrt()
            .max(1e-6);
        let adv: Vec<f32> =
            returns.iter().map(|r| ((r - mean_r) / std_r).clamp(-3.0, 3.0)).collect();

        let mut keep: Vec<usize> = (0..recs.len()).collect();
        policy.rng.shuffle(&mut keep);
        keep.truncate(cfg.max_decisions);

        let mut f = Fwd::train(cfg.seed ^ (0x900 + it as u64));
        let mut losses = Vec::new();
        for &k in &keep {
            let r = &recs[k];
            let w = vec![adv[k]];
            let (sl, cl) =
                policy.net.decision_logits(&mut f, &policy.store, &r.snap, r.stage_choice);
            let ls = f.g.weighted_cross_entropy(sl, &[r.stage_choice], &w);
            let lc = f.g.weighted_cross_entropy(cl, &[r.cap_choice], &w);
            let sum = f.g.add(ls, lc);
            losses.push(sum);
        }
        let total = sum_nodes(&mut f, &losses);
        let loss = f.g.scale(total, 1.0 / keep.len().max(1) as f32);
        let mut grads = f.backward(loss);
        clip_grad_norm(&mut grads, 1.0);
        opt.step(&mut policy.store, &grads);
    }
    policy.sample = false;
    policy
}

fn episode_jobs(cfg: &DecimaTrainConfig, seed: u64, mean_interarrival: f64) -> Vec<Job> {
    crate::job::generate_workload(&crate::job::WorkloadConfig {
        num_jobs: cfg.episode_jobs,
        mean_interarrival,
        seed,
    })
}

fn subsample(recs: &mut Vec<Recorded>, max: usize, rng: &mut Rng) {
    if recs.len() > max {
        let keep = rng.choose_indices(recs.len(), max);
        let mut keep_sorted = keep;
        keep_sorted.sort_unstable();
        let mut out = Vec::with_capacity(max);
        for &i in &keep_sorted {
            out.push(Recorded {
                snap: recs[i].snap.clone(),
                stage_choice: recs[i].stage_choice,
                cap_choice: recs[i].cap_choice,
                time: recs[i].time,
            });
        }
        *recs = out;
    }
}

fn sum_nodes(f: &mut Fwd, nodes: &[NodeId]) -> NodeId {
    assert!(!nodes.is_empty());
    let mut acc = nodes[0];
    for &n in &nodes[1..] {
        acc = f.g.add(acc, n);
    }
    acc
}

/// Wraps the sampling policy to record (snapshot, choices, time).
struct RecordingDecima<'a> {
    inner: &'a mut DecimaPolicy,
    recs: &'a mut Vec<Recorded>,
}

impl Scheduler for RecordingDecima<'_> {
    fn name(&self) -> &str {
        "decima-recorder"
    }

    fn decide(&mut self, view: &SchedView) -> Option<Decision> {
        if view.candidates.is_empty() {
            return None;
        }
        let snap = snapshot(view);
        let (sp, _) = self.inner.net.probs(&self.inner.store, &snap, None);
        let stage = self.inner.rng.categorical(&sp);
        let (_, cp) = self.inner.net.probs(&self.inner.store, &snap, Some(stage));
        let cap_idx = self.inner.rng.categorical(&cp);
        let cap = (CAP_FRACS[cap_idx] * view.total_executors as f64).ceil() as usize;
        self.recs.push(Recorded { snap, stage_choice: stage, cap_choice: cap_idx, time: view.now });
        Some(Decision { candidate: stage, cap: cap.max(1) })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::job::{generate_workload, WorkloadConfig};
    use crate::policies::Fifo;

    #[test]
    fn untrained_decima_completes_workloads() {
        let mut rng = Rng::seeded(1);
        let mut store = ParamStore::new();
        let net = DecimaNet::new(&mut store, &mut rng);
        let mut pol = DecimaPolicy { net, store, sample: false, rng: Rng::seeded(2) };
        let jobs =
            generate_workload(&WorkloadConfig { num_jobs: 6, mean_interarrival: 1.0, seed: 3 });
        let stats = run_workload(&mut pol, &jobs, 8, None);
        assert_eq!(stats.jcts.len(), 6);
    }

    #[test]
    fn bc_training_moves_toward_srpt_behaviour() {
        // Trained briefly with BC only, Decima should track SRPT more than
        // FIFO does on held-out workloads.
        let cfg = DecimaTrainConfig {
            bc_iters: 12,
            rl_iters: 0,
            episode_jobs: 6,
            executors: 8,
            ..Default::default()
        };
        let mut pol = train_decima(1.0, &cfg);
        let jobs =
            generate_workload(&WorkloadConfig { num_jobs: 10, mean_interarrival: 1.0, seed: 77 });
        let d = run_workload(&mut pol, &jobs, 8, None).mean_jct();
        let f = run_workload(&mut Fifo, &jobs, 8, None).mean_jct();
        // The cloned policy should already be in FIFO's ballpark or better.
        assert!(d < f * 1.5, "BC Decima {d:.1} vs FIFO {f:.1}");
    }

    #[test]
    #[allow(clippy::assertions_on_constants)]
    fn cap_menu_is_ascending_and_positive() {
        for w in CAP_FRACS.windows(2) {
            assert!(w[1] > w[0]);
        }
        assert!(CAP_FRACS[0] > 0.0);
    }
}

//! Event-driven cluster simulator (Spark-like executor model).
//!
//! Executors are fungible slots; a scheduling decision picks a *runnable
//! stage* (all parents complete, tasks waiting) and a parallelism cap, and
//! the simulator assigns up to `cap` free executors to that stage. Each
//! executor runs one task to completion and returns to the pool. The
//! scheduler is re-invoked whenever executors free up or new stages unlock
//! — exactly Decima's interaction model.

use crate::job::Job;
use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// Live state of one stage.
#[derive(Clone, Debug)]
pub struct StageState {
    /// Durations of tasks not yet started (consumed from the back).
    pub waiting: Vec<f64>,
    pub running: usize,
    pub total_tasks: usize,
    pub mean_duration: f64,
    /// All parent stages complete.
    pub unlocked: bool,
    pub completed: bool,
}

impl StageState {
    pub fn remaining_work(&self) -> f64 {
        self.waiting.iter().sum::<f64>() + self.running as f64 * self.mean_duration
    }
}

/// Live state of one job.
#[derive(Clone, Debug)]
pub struct JobState {
    pub arrival: f64,
    pub arrived: bool,
    pub completed: bool,
    pub finish: f64,
    pub stages: Vec<StageState>,
    pub remaining_parents: Vec<usize>,
    pub children: Vec<Vec<usize>>,
    /// Executors currently running this job's tasks.
    pub running_executors: usize,
}

impl JobState {
    fn from_job(job: &Job) -> Self {
        let parents = job.parents();
        let children = job.children();
        let stages = job
            .stages
            .iter()
            .enumerate()
            .map(|(i, s)| StageState {
                waiting: s.durations.clone(),
                running: 0,
                total_tasks: s.num_tasks(),
                mean_duration: s.mean_duration(),
                unlocked: parents[i].is_empty(),
                completed: false,
            })
            .collect();
        JobState {
            arrival: job.arrival,
            arrived: false,
            completed: false,
            finish: 0.0,
            stages,
            remaining_parents: parents.iter().map(Vec::len).collect(),
            children,
            running_executors: 0,
        }
    }

    pub fn remaining_work(&self) -> f64 {
        self.stages.iter().map(StageState::remaining_work).sum()
    }

    pub fn frac_done(&self) -> f64 {
        let total: usize = self.stages.iter().map(|s| s.total_tasks).sum();
        let done: usize =
            self.stages.iter().map(|s| s.total_tasks - s.waiting.len() - s.running).sum();
        done as f64 / total.max(1) as f64
    }
}

/// A schedulable (job, stage) pair.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Candidate {
    pub job: usize,
    pub stage: usize,
}

/// What the scheduler sees at each invocation.
pub struct SchedView<'a> {
    pub now: f64,
    pub free_executors: usize,
    pub total_executors: usize,
    pub jobs: &'a [JobState],
    pub candidates: &'a [Candidate],
}

/// A scheduling decision: which candidate, and the executor cap for this
/// assignment round.
#[derive(Clone, Copy, Debug)]
pub struct Decision {
    pub candidate: usize,
    pub cap: usize,
}

/// Scheduling policy.
pub trait Scheduler {
    fn name(&self) -> &str;
    fn reset(&mut self) {}
    fn decide(&mut self, view: &SchedView) -> Option<Decision>;
}

#[derive(Clone, Debug)]
enum Event {
    Arrival(usize),
    TaskDone { job: usize, stage: usize },
}

struct Timed {
    time: f64,
    seq: u64,
    event: Event,
}

impl PartialEq for Timed {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time && self.seq == other.seq
    }
}
impl Eq for Timed {}
impl PartialOrd for Timed {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for Timed {
    fn cmp(&self, other: &Self) -> Ordering {
        // Reversed: BinaryHeap is a max-heap, we want earliest-first.
        other
            .time
            .partial_cmp(&self.time)
            .unwrap_or(Ordering::Equal)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

/// Result of a workload run.
#[derive(Clone, Debug, Default)]
pub struct CjsStats {
    /// Per-job completion time (finish − arrival), in arrival order.
    pub jcts: Vec<f64>,
    pub makespan: f64,
    /// Time-integral of the number of active jobs (the Decima reward, up to
    /// sign), useful as a scheduling-quality scalar.
    pub active_job_seconds: f64,
}

impl CjsStats {
    pub fn mean_jct(&self) -> f64 {
        if self.jcts.is_empty() {
            0.0
        } else {
            self.jcts.iter().sum::<f64>() / self.jcts.len() as f64
        }
    }

    pub fn percentile_jct(&self, p: f64) -> f64 {
        if self.jcts.is_empty() {
            return 0.0;
        }
        let mut v = self.jcts.clone();
        v.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let idx = ((v.len() as f64 - 1.0) * p).round() as usize;
        v[idx]
    }
}

/// Hook invoked at every scheduling decision (used by RL training and by
/// NetLLM's experience collection). Receives the view and the decision the
/// scheduler made, plus the simulation time of the *previous* decision.
pub type DecisionHook<'h> = &'h mut dyn FnMut(&SchedView, &Decision);

/// Run `jobs` (must be sorted by arrival) on a cluster of `executors` slots.
pub fn run_workload(
    scheduler: &mut dyn Scheduler,
    jobs: &[Job],
    executors: usize,
    mut hook: Option<DecisionHook>,
) -> CjsStats {
    assert!(executors > 0, "cluster with zero executors");
    scheduler.reset();
    let mut states: Vec<JobState> = jobs.iter().map(JobState::from_job).collect();
    let mut heap = BinaryHeap::new();
    let mut seq = 0u64;
    for (i, j) in jobs.iter().enumerate() {
        heap.push(Timed { time: j.arrival, seq, event: Event::Arrival(i) });
        seq += 1;
    }
    let mut free = executors;
    let mut now = 0.0f64;
    let mut last_event_time = 0.0f64;
    let mut active_jobs = 0usize;
    let mut active_integral = 0.0f64;
    let mut completed = 0usize;
    let mut stats = CjsStats { jcts: vec![0.0; jobs.len()], ..CjsStats::default() };

    while let Some(Timed { time, event, .. }) = heap.pop() {
        now = time;
        active_integral += active_jobs as f64 * (now - last_event_time);
        last_event_time = now;
        match event {
            Event::Arrival(j) => {
                states[j].arrived = true;
                active_jobs += 1;
            }
            Event::TaskDone { job, stage } => {
                free += 1;
                let js = &mut states[job];
                js.running_executors -= 1;
                let ss = &mut js.stages[stage];
                ss.running -= 1;
                if ss.waiting.is_empty() && ss.running == 0 && !ss.completed {
                    ss.completed = true;
                    // Unlock children.
                    let children = js.children[stage].clone();
                    for c in children {
                        js.remaining_parents[c] -= 1;
                        if js.remaining_parents[c] == 0 {
                            js.stages[c].unlocked = true;
                        }
                    }
                    if js.stages.iter().all(|s| s.completed) {
                        js.completed = true;
                        js.finish = now;
                        stats.jcts[job] = now - js.arrival;
                        active_jobs -= 1;
                        completed += 1;
                    }
                }
            }
        }

        // Scheduling rounds until no free executors / no work / policy idles.
        loop {
            if free == 0 {
                break;
            }
            let candidates: Vec<Candidate> = collect_candidates(&states);
            if candidates.is_empty() {
                break;
            }
            let view = SchedView {
                now,
                free_executors: free,
                total_executors: executors,
                jobs: &states,
                candidates: &candidates,
            };
            let Some(decision) = scheduler.decide(&view) else { break };
            let d = Decision {
                candidate: decision.candidate.min(candidates.len() - 1),
                cap: decision.cap.max(1),
            };
            if let Some(h) = hook.as_mut() {
                h(&view, &d);
            }
            let c = candidates[d.candidate];
            let js = &mut states[c.job];
            let ss = &mut js.stages[c.stage];
            // Parallelism cap counts tasks running in this stage.
            let headroom = d.cap.saturating_sub(ss.running).max(1);
            let take = free.min(headroom).min(ss.waiting.len());
            debug_assert!(take >= 1);
            for _ in 0..take {
                let dur = ss.waiting.pop().expect("waiting task");
                ss.running += 1;
                js.running_executors += 1;
                free -= 1;
                heap.push(Timed {
                    time: now + dur,
                    seq,
                    event: Event::TaskDone { job: c.job, stage: c.stage },
                });
                seq += 1;
            }
        }
    }

    assert_eq!(completed, jobs.len(), "all jobs must finish");
    stats.makespan = now;
    stats.active_job_seconds = active_integral;
    stats
}

fn collect_candidates(states: &[JobState]) -> Vec<Candidate> {
    let mut out = Vec::new();
    for (j, js) in states.iter().enumerate() {
        if !js.arrived || js.completed {
            continue;
        }
        for (s, ss) in js.stages.iter().enumerate() {
            if ss.unlocked && !ss.completed && !ss.waiting.is_empty() {
                out.push(Candidate { job: j, stage: s });
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::job::{generate_workload, WorkloadConfig};
    use crate::policies::Fifo;

    fn small_workload(n: usize, seed: u64) -> Vec<Job> {
        generate_workload(&WorkloadConfig { num_jobs: n, mean_interarrival: 1.0, seed })
    }

    #[test]
    fn all_jobs_complete_and_jcts_positive() {
        let jobs = small_workload(12, 1);
        let stats = run_workload(&mut Fifo, &jobs, 10, None);
        assert_eq!(stats.jcts.len(), 12);
        assert!(stats.jcts.iter().all(|&j| j > 0.0));
        assert!(stats.makespan > 0.0);
    }

    #[test]
    fn more_executors_never_hurt_fifo_makespan() {
        let jobs = small_workload(10, 2);
        let s_small = run_workload(&mut Fifo, &jobs, 4, None);
        let big = run_workload(&mut Fifo, &jobs, 40, None);
        assert!(big.makespan <= s_small.makespan + 1e-9);
    }

    #[test]
    fn dependencies_are_respected() {
        // A chain job: stage i+1 cannot start before stage i finishes, so
        // the makespan is at least the sum of per-stage critical paths.
        let job = Job {
            id: 0,
            template: 1,
            arrival: 0.0,
            stages: vec![
                crate::job::Stage { durations: vec![1.0, 1.0] },
                crate::job::Stage { durations: vec![2.0] },
            ],
            edges: vec![(0, 1)],
        };
        let stats = run_workload(&mut Fifo, &[job], 8, None);
        // stage0 finishes at 1.0 (parallel), stage1 at 3.0
        assert!((stats.makespan - 3.0).abs() < 1e-9);
    }

    #[test]
    fn single_executor_serialises_everything() {
        let job = Job {
            id: 0,
            template: 0,
            arrival: 0.0,
            stages: vec![crate::job::Stage { durations: vec![1.0, 1.0, 1.0] }],
            edges: vec![],
        };
        let stats = run_workload(&mut Fifo, &[job], 1, None);
        assert!((stats.makespan - 3.0).abs() < 1e-9);
    }

    #[test]
    fn hook_sees_every_decision() {
        let jobs = small_workload(5, 3);
        let mut count = 0usize;
        let mut hook = |_v: &SchedView, _d: &Decision| count += 1;
        run_workload(&mut Fifo, &jobs, 6, Some(&mut hook));
        assert!(count > 0);
    }

    #[test]
    fn active_job_seconds_is_consistent_with_jcts() {
        // For jobs all arriving at t=0, integral of active jobs = sum of JCTs.
        let mut jobs = small_workload(6, 4);
        for j in &mut jobs {
            j.arrival = 0.0;
        }
        let stats = run_workload(&mut Fifo, &jobs, 8, None);
        let sum: f64 = stats.jcts.iter().sum();
        assert!((stats.active_job_seconds - sum).abs() / sum < 1e-6);
    }
}

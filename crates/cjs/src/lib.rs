//! # nt-cjs
//!
//! Cluster-job-scheduling substrate: an event-driven Spark-like cluster
//! simulator, a TPC-H-like DAG workload generator, rule-based schedulers
//! (FIFO, Fair, plus SRPT), and the Decima-like GNN scheduler trained with
//! behaviour cloning + REINFORCE.
//!
//! ## Feature inventory
//!
//! - [`job`] — stage DAGs with pre-sampled task durations, 22 query
//!   templates, Poisson arrivals (Table 4 knobs)
//! - [`sim`] — event-driven executor model, scheduler trait, decision hook
//!   (used for RL training and NetLLM experience collection), JCT stats
//! - [`policies`] — FIFO, Fair, SRPT
//! - [`mod@snapshot`] — graph featurisation shared by Decima and NetLLM's
//!   graph-modality encoder
//! - [`decima`] — GNN + stage/cap heads, BC warm start, exact Decima reward
//!
//! Not implemented (by design): data locality, executor moving cost,
//! preemption, multi-resource packing.

#![forbid(unsafe_code)]

pub mod decima;
pub mod job;
pub mod policies;
pub mod sim;
pub mod snapshot;

pub use decima::{train_decima, DecimaNet, DecimaPolicy, DecimaTrainConfig, CAP_FRACS};
pub use job::{generate_workload, instantiate, Job, Stage, WorkloadConfig, NUM_TEMPLATES};
pub use policies::{Fair, Fifo, Srpt};
pub use sim::{
    run_workload, Candidate, CjsStats, Decision, JobState, SchedView, Scheduler, StageState,
};
pub use snapshot::{snapshot, GraphSnapshot, NODE_FEATS};

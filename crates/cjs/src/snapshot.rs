//! Graph featurisation of scheduler views.
//!
//! Both Decima and NetLLM's graph-modality encoder consume the cluster
//! state as a feature matrix over stage nodes plus DAG adjacency. The
//! snapshot is taken per scheduling decision and is self-contained (owned
//! tensors), so recorded decisions can be replayed during training.

use crate::sim::SchedView;
use nt_nn::normalized_adjacency;
use nt_tensor::Tensor;

/// Features per stage node.
pub const NODE_FEATS: usize = 8;

/// A frozen, self-contained view of the cluster graph at decision time.
#[derive(Clone, Debug)]
pub struct GraphSnapshot {
    /// Number of stage nodes (stages of active jobs).
    pub n: usize,
    /// `[n, NODE_FEATS]` node features.
    pub feats: Tensor,
    /// Row-normalised adjacency `[n, n]` (children aggregate parents).
    pub adj: Tensor,
    /// Node index of each candidate, aligned with `SchedView::candidates`.
    pub candidates: Vec<usize>,
    /// Free-executor fraction at decision time.
    pub free_frac: f32,
}

/// Build a snapshot from a live view.
pub fn snapshot(view: &SchedView) -> GraphSnapshot {
    // Map (job, stage) of active jobs to dense node ids.
    let mut node_of = std::collections::HashMap::new();
    let mut feats: Vec<f32> = Vec::new();
    let mut edges: Vec<(usize, usize)> = Vec::new();
    let mut n = 0usize;
    for (j, js) in view.jobs.iter().enumerate() {
        if !js.arrived || js.completed {
            continue;
        }
        let job_work = js.remaining_work();
        let frac_done = js.frac_done();
        let base = n;
        for (s, ss) in js.stages.iter().enumerate() {
            node_of.insert((j, s), n);
            let runnable = ss.unlocked && !ss.completed && !ss.waiting.is_empty();
            feats.extend_from_slice(&[
                (ss.waiting.len() as f32 / 20.0).min(5.0),
                (ss.running as f32 / 10.0).min(5.0),
                (ss.mean_duration as f32 / 3.0).min(5.0),
                (ss.remaining_work() as f32 / 50.0).min(5.0),
                runnable as u8 as f32,
                frac_done as f32,
                (job_work as f32 / 200.0).min(5.0),
                view.free_executors as f32 / view.total_executors.max(1) as f32,
            ]);
            n += 1;
        }
        for (s, children) in js.children.iter().enumerate() {
            for &c in children {
                edges.push((base + s, base + c));
            }
        }
    }
    let candidates = view
        .candidates
        .iter()
        .map(|c| *node_of.get(&(c.job, c.stage)).expect("candidate must be an active node"))
        .collect();
    GraphSnapshot {
        n,
        feats: Tensor::from_vec([n, NODE_FEATS], feats),
        adj: normalized_adjacency(n, &edges),
        candidates,
        free_frac: view.free_executors as f32 / view.total_executors.max(1) as f32,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::job::{generate_workload, WorkloadConfig};
    use crate::policies::Fifo;
    use crate::sim::{run_workload, Decision, SchedView};

    #[test]
    fn snapshots_are_consistent_during_a_run() {
        let jobs =
            generate_workload(&WorkloadConfig { num_jobs: 8, mean_interarrival: 1.0, seed: 5 });
        let mut checked = 0usize;
        let mut hook = |view: &SchedView, d: &Decision| {
            let snap = snapshot(view);
            assert_eq!(snap.feats.shape(), &[snap.n, NODE_FEATS]);
            assert_eq!(snap.adj.shape(), &[snap.n, snap.n]);
            assert_eq!(snap.candidates.len(), view.candidates.len());
            assert!(d.candidate < snap.candidates.len());
            // Candidate nodes must be flagged runnable in the features.
            for &node in &snap.candidates {
                assert_eq!(snap.feats.at(&[node, 4]), 1.0, "candidate not runnable");
            }
            assert!(snap.free_frac >= 0.0 && snap.free_frac <= 1.0);
            checked += 1;
        };
        run_workload(&mut Fifo, &jobs, 6, Some(&mut hook));
        assert!(checked > 5);
    }
}

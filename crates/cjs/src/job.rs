//! Job model and the TPC-H-like workload generator.
//!
//! A job is a DAG of stages; each stage is a bag of independent tasks with
//! pre-sampled durations (fixed per job instance, so every scheduler sees
//! the *same* work — a fairness requirement for comparisons). The generator
//! mirrors the TPC-H character the paper uses: 22 query templates with
//! distinctive DAG shapes (map/reduce, chains, fan-ins, diamonds), heavy-
//! tailed task counts and durations.

use nt_tensor::Rng;
use serde::{Deserialize, Serialize};

/// One stage: `durations[i]` is task `i`'s service time in seconds.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct Stage {
    pub durations: Vec<f64>,
}

impl Stage {
    pub fn num_tasks(&self) -> usize {
        self.durations.len()
    }

    pub fn total_work(&self) -> f64 {
        self.durations.iter().sum()
    }

    pub fn mean_duration(&self) -> f64 {
        self.total_work() / self.num_tasks().max(1) as f64
    }
}

/// A DAG job.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct Job {
    pub id: usize,
    /// Which TPC-H-like template produced this job (0..22).
    pub template: usize,
    pub arrival: f64,
    pub stages: Vec<Stage>,
    /// `(parent, child)` stage indices; child starts only after all parents.
    pub edges: Vec<(usize, usize)>,
}

impl Job {
    pub fn num_stages(&self) -> usize {
        self.stages.len()
    }

    pub fn total_work(&self) -> f64 {
        self.stages.iter().map(Stage::total_work).sum()
    }

    /// Parents of each stage.
    pub fn parents(&self) -> Vec<Vec<usize>> {
        let mut p = vec![Vec::new(); self.stages.len()];
        for &(a, b) in &self.edges {
            p[b].push(a);
        }
        p
    }

    /// Children of each stage.
    pub fn children(&self) -> Vec<Vec<usize>> {
        let mut c = vec![Vec::new(); self.stages.len()];
        for &(a, b) in &self.edges {
            c[a].push(b);
        }
        c
    }

    /// Verify the edge list is a DAG over valid indices (edges point from a
    /// lower to a strictly higher stage index, our canonical topological
    /// form).
    pub fn validate(&self) -> Result<(), String> {
        for &(a, b) in &self.edges {
            if a >= self.stages.len() || b >= self.stages.len() {
                return Err(format!("edge ({a},{b}) out of range"));
            }
            if a >= b {
                return Err(format!("edge ({a},{b}) not topologically ordered"));
            }
        }
        if self.stages.iter().any(|s| s.durations.is_empty()) {
            return Err("stage with zero tasks".into());
        }
        Ok(())
    }
}

/// Number of distinct query templates (TPC-H has 22).
pub const NUM_TEMPLATES: usize = 22;

/// DAG shape families the templates are drawn from.
#[derive(Clone, Copy, Debug)]
enum Shape {
    MapReduce,
    Chain(usize),
    FanIn(usize),
    Diamond,
    JoinTree,
}

fn template_shape(template: usize) -> Shape {
    match template % 5 {
        0 => Shape::MapReduce,
        1 => Shape::Chain(2 + template % 4),
        2 => Shape::FanIn(2 + template % 3),
        3 => Shape::Diamond,
        _ => Shape::JoinTree,
    }
}

/// Instantiate one job from a template with per-instance jitter.
pub fn instantiate(template: usize, id: usize, arrival: f64, rng: &mut Rng) -> Job {
    assert!(template < NUM_TEMPLATES);
    // Template-intrinsic scale, deterministic per template.
    let mut trng = Rng::seeded(0xDA6 ^ template as u64);
    let base_tasks = (trng.log_normal(2.6, 0.7) as f64).clamp(4.0, 120.0);
    let base_dur = (trng.log_normal(0.2, 0.5) as f64).clamp(0.4, 4.0);

    let shape = template_shape(template);
    let (n, edges): (usize, Vec<(usize, usize)>) = match shape {
        Shape::MapReduce => (2, vec![(0, 1)]),
        Shape::Chain(k) => (k, (0..k - 1).map(|i| (i, i + 1)).collect()),
        Shape::FanIn(k) => {
            // k parallel maps feeding one reduce.
            let mut e: Vec<(usize, usize)> = (0..k).map(|i| (i, k)).collect();
            e.sort_unstable();
            (k + 1, e)
        }
        Shape::Diamond => (4, vec![(0, 1), (0, 2), (1, 3), (2, 3)]),
        Shape::JoinTree => {
            // 4 scans -> 2 joins -> final aggregate.
            (7, vec![(0, 4), (1, 4), (2, 5), (3, 5), (4, 6), (5, 6)])
        }
    };

    let scale = rng.uniform(0.7, 1.4) as f64;
    let mut stages = Vec::with_capacity(n);
    for s in 0..n {
        // Later stages (reduces/joins) have fewer, longer tasks.
        let depth_factor = 1.0 / (1.0 + s as f64 * 0.35);
        let tasks = ((base_tasks * scale * depth_factor).round() as usize).clamp(1, 150);
        let dur_mean = base_dur * (1.0 + s as f64 * 0.25);
        let durations: Vec<f64> = (0..tasks)
            .map(|_| (dur_mean * rng.log_normal(0.0, 0.35) as f64).clamp(0.05, 30.0))
            .collect();
        stages.push(Stage { durations });
    }
    let job = Job { id, template, arrival, stages, edges };
    debug_assert!(job.validate().is_ok(), "{:?}", job.validate());
    job
}

/// Workload configuration (Table 4 knobs).
#[derive(Clone, Copy, Debug, Serialize, Deserialize)]
pub struct WorkloadConfig {
    pub num_jobs: usize,
    /// Mean inter-arrival gap in seconds (Poisson process).
    pub mean_interarrival: f64,
    pub seed: u64,
}

/// Sample a workload: jobs with Poisson arrivals, templates uniform over
/// the 22 TPC-H-like shapes.
pub fn generate_workload(cfg: &WorkloadConfig) -> Vec<Job> {
    let mut rng = Rng::seeded(cfg.seed);
    let mut t = 0.0f64;
    (0..cfg.num_jobs)
        .map(|id| {
            let template = rng.below(NUM_TEMPLATES);
            let job = instantiate(template, id, t, &mut rng);
            t += rng.exponential((1.0 / cfg.mean_interarrival) as f32) as f64;
            job
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_templates_produce_valid_dags() {
        let mut rng = Rng::seeded(1);
        for t in 0..NUM_TEMPLATES {
            let j = instantiate(t, t, 0.0, &mut rng);
            j.validate().unwrap();
            assert!(j.num_stages() >= 2);
            assert!(j.total_work() > 0.0);
        }
    }

    #[test]
    fn join_tree_shape_has_expected_dependencies() {
        let mut rng = Rng::seeded(2);
        // template 4 -> JoinTree per template_shape
        let j = instantiate(4, 0, 0.0, &mut rng);
        assert_eq!(j.num_stages(), 7);
        let parents = j.parents();
        assert_eq!(parents[6], vec![4, 5]);
        assert!(parents[0].is_empty());
    }

    #[test]
    fn workload_arrivals_are_monotone() {
        let jobs =
            generate_workload(&WorkloadConfig { num_jobs: 50, mean_interarrival: 2.0, seed: 3 });
        assert_eq!(jobs.len(), 50);
        for w in jobs.windows(2) {
            assert!(w[1].arrival >= w[0].arrival);
        }
    }

    #[test]
    fn instances_of_same_template_differ_but_share_shape() {
        let mut rng = Rng::seeded(4);
        let a = instantiate(7, 0, 0.0, &mut rng);
        let b = instantiate(7, 1, 0.0, &mut rng);
        assert_eq!(a.edges, b.edges, "same template => same DAG shape");
        assert_ne!(a.stages[0].durations, b.stages[0].durations, "instances must jitter durations");
    }

    #[test]
    fn workload_is_deterministic_under_seed() {
        let cfg = WorkloadConfig { num_jobs: 10, mean_interarrival: 1.0, seed: 11 };
        let a = generate_workload(&cfg);
        let b = generate_workload(&cfg);
        assert_eq!(a.len(), b.len());
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.template, y.template);
            assert_eq!(x.arrival, y.arrival);
            assert_eq!(x.total_work(), y.total_work());
        }
    }
}

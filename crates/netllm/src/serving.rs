//! Adapter-generic batched serving engine.
//!
//! One adapted model, many live network sessions: the [`ServingEngine`]
//! multiplexes concurrent adapter rollouts into batched backbone steps,
//! one per tick. Where B independent [`crate::InferenceSession`]s each
//! push a handful of token rows through every projection and MLP alone,
//! the engine stacks all B sessions' new rows into single `[N, d]` GEMMs
//! (`nt_llm::TinyLm::forward_embeddings_cached_batched`), while each slot
//! keeps its own ragged-length KV cache, episode state and re-anchoring
//! schedule — batching changes the arithmetic shape, never the answers
//! (gated at 1e-5 against each adapter's sequential path, including
//! re-anchor and rollback events).
//!
//! ```text
//!  stream 0 ─ obs ─┐  per-slot tokens    one batched    ┌─ action 0
//!  stream 1 ─ obs ─┤  plan_step(slot)    backbone       ├─ action 1
//!      ...         ├─────[rows]────────► step [N,d] ────┤   ...
//!  stream B ─ obs ─┘   (ragged rows)         │          └─ action B
//!                       slot KV caches ──────┘   settle_step per slot
//!                                                └─ rollback pass (CJS)
//! ```
//!
//! What used to be hard-coded ABR logic is now the [`ServedTask`] trait:
//! an adapter describes how an observation becomes token rows
//! ([`ServedTask::plan_step`] — including its re-anchor policy) and how
//! the new hidden rows become a decision ([`ServedTask::settle_step`] —
//! including an optional candidate rollback, the CJS pattern where
//! per-decision candidate tokens are `truncate`d out of the persistent
//! history and replaced by the chosen action token). ABR serves
//! incremental decision-transformer steps, CJS adds the rollback hook,
//! and VP runs one-shot eval slots that join, answer, and leave. A
//! heterogeneous fleet ([`crate::NetLlmFleet`]) serves all three in the
//! same tick; slots on different backbones never share a stacked GEMM
//! (separate weights), but every same-backbone run in the batch does.
//!
//! Join/leave never disturbs other slots: a slot owns its KV session and
//! episode state, and the batch is just "whichever slots got an
//! observation this tick". [`SessionId`]s are generation-versioned, so a
//! stale handle held across a leave/join recycle can never read another
//! stream's slot. Sharding across engines lives in
//! [`crate::ShardedServer`].

use crate::backbone::{append_batched, InferenceSession};
use nt_llm::{PagePool, SlotMap, TinyLm};
use nt_nn::ParamStore;
use nt_tensor::Tensor;
use std::sync::Mutex;

/// Token rows one slot contributes to a tick (built by
/// [`ServedTask::plan_step`]).
pub struct StepPlan {
    /// Embedded rows `[n, d_model]` to append to the slot's KV session.
    pub tokens: Tensor,
    /// Clear the KV session before appending (episode start or
    /// re-anchor rebuild).
    pub reanchor: bool,
}

/// Candidate rollback requested by [`ServedTask::settle_step`]: the final
/// `drop_rows` rows of the slot's session are not part of the persistent
/// history (e.g. CJS candidate tokens) — the engine truncates them away
/// and appends `post_tokens` (e.g. the chosen action token) in a second
/// batched backbone pass.
pub struct RollbackPlan {
    /// Rows to drop from the end of the slot's KV session.
    pub drop_rows: usize,
    /// Rows `[m, d_model]` appended after the rollback.
    pub post_tokens: Tensor,
}

/// What one slot's tick produced (built by [`ServedTask::settle_step`]).
pub struct StepOutcome<A> {
    /// The decision returned to the caller.
    pub action: A,
    /// Raw head outputs, kept readable via
    /// [`ServingEngine::last_logits`] (the equivalence gates compare
    /// these against the unbatched path).
    pub logits: Vec<f32>,
    /// Optional candidate rollback (see [`RollbackPlan`]).
    pub rollback: Option<RollbackPlan>,
}

/// An adapter that can be served by the [`ServingEngine`]: how an
/// observation becomes token rows, and how the resulting hidden rows
/// become a decision. Implemented by [`crate::NetLlmAbr`] (incremental
/// decision-transformer steps), [`crate::NetLlmCjs`] (adds candidate
/// rollback), [`crate::NetLlmVp`] (one-shot eval) and
/// [`crate::NetLlmFleet`] (all three behind one engine).
pub trait ServedTask {
    /// Per-tick observation a live session consumes.
    type Obs;
    /// The decision handed back to the caller.
    type Action;
    /// Per-session episode state: everything one live session carries
    /// between ticks besides its KV session.
    type Slot;

    /// Number of distinct backbones this task serves (a heterogeneous
    /// fleet has one per member task). Slots of different groups never
    /// share a stacked GEMM — they may run different weights.
    fn groups(&self) -> usize {
        1
    }

    /// Backbone + weights for `group`.
    fn backbone(&self, group: usize) -> (&TinyLm, &ParamStore);

    /// Human-readable adapter tag for `group` — stamps queued arrivals
    /// and the per-label serving counts in
    /// [`crate::sched::TickReport::served_by_label`].
    fn task_label(&self, group: usize) -> &'static str {
        let _ = group;
        "task"
    }

    /// The backbone group `slot` belongs to (stable for its lifetime).
    fn group_of(&self, slot: &Self::Slot) -> usize {
        let _ = slot;
        0
    }

    /// Fresh episode state for a session joining `group`.
    fn new_slot(&self, group: usize) -> Self::Slot;

    /// Phase-1 hook: settle the previous tick's realised outcome into the
    /// episode and build the token rows this tick appends. `session` is
    /// read-only here — ask for a clear via [`StepPlan::reanchor`]; the
    /// engine (or the unbatched caller) owns the append.
    fn plan_step(
        &self,
        slot: &mut Self::Slot,
        obs: &Self::Obs,
        session: &InferenceSession,
    ) -> StepPlan;

    /// Token rows the next [`ServedTask::plan_step`] for `(slot, obs)`
    /// will append, and whether it will clear the session first — computed
    /// *without* running the encoders and without mutating the slot, so
    /// the paged-memory scheduler can reserve pages (and evict or defer)
    /// ahead of the step. An upper bound is acceptable (over-estimates
    /// only cost deferrals); the adapters in this crate return the exact
    /// count (unit-tested against the actual plan). The default is the
    /// conservative worst case: fill the remaining context, no clear.
    fn plan_rows(
        &self,
        slot: &Self::Slot,
        obs: &Self::Obs,
        session: &InferenceSession,
    ) -> (usize, bool) {
        let _ = (slot, obs);
        (session.max_tokens() - session.len(), false)
    }

    /// Token rows the slot's *next* step would replay because its cache
    /// was cleared now — the price of evicting this session, computable
    /// without an observation (eviction candidates are idle; nothing of
    /// theirs is in flight). Exactly `plan_rows(cleared).0 -
    /// plan_rows(intact).0` whenever the intact plan would not re-anchor,
    /// and 0 when it would (grown history or an already-empty cache make
    /// the rebuild inevitable, so eviction costs nothing extra). An
    /// over-estimate is acceptable — it only demotes this session in a
    /// cost-priced victim scan; the adapters in this crate return the
    /// exact count (property-tested in `tests/paged_serving.rs`). The
    /// default mirrors `plan_rows`' conservative default: replay
    /// everything the cache holds.
    fn rebuild_rows(&self, slot: &Self::Slot, session: &InferenceSession) -> usize {
        let _ = slot;
        session.len()
    }

    /// Phase-3 hook: read the task head over this slot's new hidden rows
    /// `[n, d_model]` (exactly the rows planned this tick), commit the
    /// decision to the episode, and optionally request a candidate
    /// rollback.
    fn settle_step(
        &self,
        slot: &mut Self::Slot,
        obs: &Self::Obs,
        hidden: &Tensor,
    ) -> StepOutcome<Self::Action>;
}

/// One live session inside the engine.
struct EngineSlot<T: ServedTask> {
    state: T::Slot,
    session: InferenceSession,
    last_logits: Vec<f32>,
    gen: u32,
}

/// Stable, generation-versioned handle for a session served by a
/// [`ServingEngine`]. Slot indices are recycled after
/// [`ServingEngine::leave`], but each admission bumps the generation, so
/// a stale handle kept across a recycle panics instead of silently
/// reading the new occupant's state (`last_logits`, `step`).
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub struct SessionId {
    idx: u32,
    gen: u32,
}

impl SessionId {
    /// The underlying slot index (recycled across generations).
    pub fn index(self) -> usize {
        self.idx as usize
    }
}

/// A session lifted out of an engine (KV cache + episode state), ready to
/// be re-admitted elsewhere — the migration unit behind
/// [`crate::ShardedServer`]'s steer/rebalance plumbing, and the salvage
/// unit of crash recovery (park off the dead engine, [`ParkedSlot::drop_kv`]
/// the pages the dead process can no longer address, admit on a
/// survivor).
pub struct ParkedSlot<T: ServedTask>(EngineSlot<T>);

impl<T: ServedTask> ParkedSlot<T> {
    /// Cached KV positions the parked session holds (per layer) — the
    /// rows a crash destroys and episode-log replay must rebuild.
    pub fn kv_rows(&self) -> usize {
        self.0.session.len()
    }

    /// Pool pages the parked session holds across layers (0 when
    /// contiguous).
    pub fn pages_held(&self) -> usize {
        self.0.session.pages_held()
    }

    /// Drop the KV cache — pages return to the pool — keeping the episode
    /// state. Crash salvage: the KV died with the shard, only the episode
    /// log survives; after re-admission the session re-anchors from it on
    /// its next step, exactly like an eviction.
    pub fn drop_kv(&mut self) {
        self.0.session.clear();
        self.0.last_logits.clear();
    }
}

/// Multiplexes many concurrent rollouts of a [`ServedTask`] over shared
/// model weights. The engine owns only per-session state; the model
/// (weights, encoders, heads) is borrowed per call, so one adapted
/// checkpoint can back any number of engines.
///
/// With a page pool attached ([`ServingEngine::with_page_pool`]) every
/// admitted session's KV cache is page-backed: total KV across the pool's
/// engines is hard-bounded by the pool budget, and the engine exposes the
/// memory-pressure mechanisms ([`ServingEngine::page_demand`],
/// [`ServingEngine::evict`], [`ServingEngine::pool_stats`]) that
/// `ShardedServer`'s eviction policy drives.
pub struct ServingEngine<T: ServedTask> {
    slots: SlotMap<EngineSlot<T>>,
    next_gen: u32,
    /// KV pages for admitted sessions come from here when set (possibly
    /// shared with other engines — the budget is global to the pool).
    pool: Option<PagePool>,
    /// Cumulative per-phase wall time (plan+backbone / rollback pass /
    /// head+settle), for the profiling bin.
    pub phase_times: [std::time::Duration; 3],
}

impl<T: ServedTask> Default for ServingEngine<T> {
    fn default() -> Self {
        ServingEngine {
            slots: SlotMap::new(),
            next_gen: 0,
            pool: None,
            phase_times: [std::time::Duration::ZERO; 3],
        }
    }
}

impl<T: ServedTask> ServingEngine<T> {
    /// Engine with no live sessions (contiguous, unbounded KV caches).
    pub fn new() -> Self {
        ServingEngine::default()
    }

    /// Engine whose sessions draw KV pages from `pool`. Clones of one
    /// pool handle share one budget — a sharded fleet passes the same
    /// pool to every shard for a fleet-wide bound.
    pub fn with_page_pool(pool: PagePool) -> Self {
        ServingEngine { pool: Some(pool), ..ServingEngine::default() }
    }

    /// The pool this engine's sessions draw pages from, if any.
    pub fn page_pool(&self) -> Option<&PagePool> {
        self.pool.as_ref()
    }

    /// Occupancy of the attached pool (`None` for contiguous engines).
    pub fn pool_stats(&self) -> Option<nt_llm::PoolStats> {
        self.pool.as_ref().map(PagePool::stats)
    }

    /// Pages the batch `requests` could allocate this tick, assuming the
    /// worst case the task declares via [`ServedTask::plan_rows`]. Clears
    /// (re-anchors) are charged their full new size rather than netted
    /// against the pages they free, so the estimate is safe under any
    /// band/thread interleaving of frees and allocations inside the step.
    pub fn page_demand(&self, task: &T, requests: &[(SessionId, &T::Obs)]) -> usize {
        let Some(pool) = &self.pool else { return 0 };
        requests
            .iter()
            .map(|&(id, obs)| {
                self.check(id);
                let slot = self.slots.get(id.index());
                let (rows, clears) = task.plan_rows(&slot.state, obs, &slot.session);
                if clears {
                    // Counted from empty: the freed pages are not assumed
                    // reusable within this tick.
                    task.backbone(task.group_of(&slot.state)).0.cfg.n_layers * pool.pages_for(rows)
                } else {
                    slot.session.pages_needed(rows)
                }
            })
            .sum()
    }

    /// Return the pages of every batch session whose next plan clears
    /// (re-anchors) anyway: the rebuild never reads the old cache, so
    /// clearing it *before* the step is semantically free — the step's
    /// `plan_step` sees an empty session and takes the same rebuild
    /// branch with the same tokens. Doing it up front lets the memory
    /// guard count those pages as available under any thread
    /// interleaving, so a re-anchoring giant session can never wedge the
    /// pool against its own rebuild. Returns the pages freed. Not an
    /// eviction: answers are unchanged, so it is never reported as one.
    pub fn release_reanchor_pages(&mut self, task: &T, requests: &[(SessionId, &T::Obs)]) -> usize {
        if self.pool.is_none() {
            return 0;
        }
        let mut freed = 0usize;
        for &(id, obs) in requests {
            self.check(id);
            let slot = self.slots.get_mut(id.index());
            let (_, clears) = task.plan_rows(&slot.state, obs, &slot.session);
            if clears && slot.session.pages_held() > 0 {
                freed += slot.session.pages_held();
                slot.session.clear();
            }
        }
        freed
    }

    /// Reclaim a session's pages by dropping its KV cache (the episode
    /// state survives). The session re-anchors from its episode log on
    /// its next step — every adapter's `plan_step` rebuilds from an empty
    /// session — so subsequent answers equal a session that re-anchored
    /// at this tick. Returns the pages freed.
    pub fn evict(&mut self, id: SessionId) -> usize {
        self.check(id);
        let slot = self.slots.get_mut(id.index());
        let pages = slot.session.pages_held();
        slot.session.clear();
        pages
    }

    /// Pool pages held by one session (0 for contiguous sessions).
    pub fn pages_of(&self, id: SessionId) -> usize {
        self.check(id);
        self.slots.get(id.index()).session.pages_held()
    }

    /// Pool pages held across every live session (0 for contiguous
    /// engines) — this shard's half of the [`crate::sched::PagePressure`]
    /// snapshot.
    pub fn pages_held(&self) -> usize {
        self.slots.iter().map(|s| s.session.pages_held()).sum()
    }

    /// Token rows `id`'s next step would replay if its cache were
    /// cleared now ([`ServedTask::rebuild_rows`]) — the row half of a
    /// cost-priced eviction scan.
    pub fn rebuild_rows_of(&self, task: &T, id: SessionId) -> usize {
        self.check(id);
        let slot = self.slots.get(id.index());
        task.rebuild_rows(&slot.state, &slot.session)
    }

    /// Re-anchor rebuild price of evicting `id`: replayed rows times the
    /// session's backbone width (`d_model`) — rows through a wider
    /// backbone cost proportionally more GEMM work, so heterogeneous
    /// fleets compare victims in compute, not row counts.
    pub fn rebuild_cost_of(&self, task: &T, id: SessionId) -> usize {
        self.check(id);
        let slot = self.slots.get(id.index());
        let d_model = task.backbone(task.group_of(&slot.state)).0.cfg.d_model;
        task.rebuild_rows(&slot.state, &slot.session) * d_model
    }

    /// Resident sessions per backbone group (`len == task.groups()`) —
    /// the batch-shape signal a placement policy's same-backbone
    /// tie-break reads: slots of one group share stacked GEMMs, so a
    /// shard already hosting a group serves its joiners densest.
    pub fn backbone_histogram(&self, task: &T) -> Vec<usize> {
        let mut hist = vec![0usize; task.groups()];
        for slot in self.slots.iter() {
            hist[task.group_of(&slot.state)] += 1;
        }
        hist
    }

    /// Cached KV positions one session holds (per layer) — what a fault
    /// that drops the cache costs in episode-replay rows.
    pub fn kv_rows_of(&self, id: SessionId) -> usize {
        self.check(id);
        self.slots.get(id.index()).session.len()
    }

    /// Admit a new session on backbone group 0 (the only group of a
    /// homogeneous task); returns its stable [`SessionId`].
    pub fn join(&mut self, task: &T) -> SessionId {
        self.join_group(task, 0)
    }

    /// Admit a new session on backbone `group` (heterogeneous fleets pick
    /// the member task here). The smallest free slot index is recycled,
    /// under a fresh generation.
    pub fn join_group(&mut self, task: &T, group: usize) -> SessionId {
        assert!(group < task.groups(), "group {group} out of range ({})", task.groups());
        let lm = task.backbone(group).0;
        let session = match &self.pool {
            Some(pool) => {
                // Below this floor a single session's re-anchor rebuild can
                // exceed the whole pool with nothing left to evict — the
                // queued front end would defer its arrival forever.
                // `PagePool::for_model` checks one backbone; this covers
                // every backbone actually admitted (heterogeneous fleets).
                let floor = lm.cfg.n_layers * pool.pages_for(lm.cfg.max_seq);
                assert!(
                    pool.capacity_pages() >= floor,
                    "page pool too small for group {group}'s backbone: one full-context \
                     session needs {floor} pages, capacity {} — raise budget_bytes",
                    pool.capacity_pages()
                );
                InferenceSession::paged(lm, pool)
            }
            None => InferenceSession::new(lm),
        };
        self.admit(ParkedSlot(EngineSlot {
            state: task.new_slot(group),
            session,
            last_logits: Vec::new(),
            gen: 0,
        }))
    }

    /// Remove a session, dropping its KV cache. Other slots are
    /// untouched; the freed index is recycled under a new generation.
    pub fn leave(&mut self, id: SessionId) {
        let _ = self.park(id);
    }

    /// Lift a session out of the engine without dropping it (KV cache and
    /// episode state intact) — re-admit it here or in another engine with
    /// [`ServingEngine::admit`].
    pub fn park(&mut self, id: SessionId) -> ParkedSlot<T> {
        self.check(id);
        ParkedSlot(self.slots.remove(id.index()))
    }

    /// Re-admit a parked session; returns its new id (the old one is
    /// dead: admission always bumps the generation). The session's KV
    /// cache is re-homed onto this engine's memory mode (same pool: no-op;
    /// different pool or contiguous: values copied exactly), so a parked
    /// slot moves between engines without changing any answer.
    pub fn admit(&mut self, parked: ParkedSlot<T>) -> SessionId {
        self.next_gen += 1;
        let gen = self.next_gen;
        let mut slot = parked.0;
        slot.session.adopt(self.pool.as_ref());
        slot.gen = gen;
        let idx = self.slots.insert(slot);
        SessionId { idx: idx as u32, gen }
    }

    /// Live session count.
    pub fn active(&self) -> usize {
        self.slots.active()
    }

    /// Head outputs of `id`'s most recent step (equivalence tests compare
    /// these against the unbatched path). Panics on a stale id whose slot
    /// index was recycled — versioning guarantees these are never another
    /// stream's logits.
    pub fn last_logits(&self, id: SessionId) -> &[f32] {
        self.check(id);
        &self.slots.get(id.index()).last_logits
    }

    /// Bytes held by every live session's KV cache.
    pub fn cache_bytes(&self) -> usize {
        self.slots.iter().map(|s| s.session.cache_bytes()).sum()
    }

    /// Bytes held by one session's KV cache (per-victim accounting for a
    /// cache-aware steering/eviction policy).
    pub fn cache_bytes_of(&self, id: SessionId) -> usize {
        self.check(id);
        self.slots.get(id.index()).session.cache_bytes()
    }

    /// Live sessions with their KV bytes — the enumeration an eviction or
    /// steering policy walks to pick a victim.
    pub fn sessions(&self) -> impl Iterator<Item = (SessionId, usize)> + '_ {
        self.slots
            .iter_entries()
            .map(|(idx, s)| (SessionId { idx: idx as u32, gen: s.gen }, s.session.cache_bytes()))
    }

    fn check(&self, id: SessionId) {
        assert_eq!(
            self.slots.get(id.index()).gen,
            id.gen,
            "stale session id: slot {} was recycled since this handle was issued",
            id.index()
        );
    }

    /// Serve one tick: each `(id, observation)` pair advances that
    /// session by one decision, all through batched backbone steps (one
    /// stacked GEMM per contiguous same-backbone run in the batch).
    /// Returns the decisions in request order.
    ///
    /// Per-slot semantics are identical to the adapter's unbatched path
    /// (`AbrPolicy::select`, `NetLlmCjs::decide_obs`, `NetLlmVp`'s
    /// one-shot eval): the trait hooks *are* that path, so the episode
    /// bookkeeping, re-anchor schedule and candidate rollback run the
    /// same code in both worlds.
    pub fn step(&mut self, task: &T, requests: &[(SessionId, &T::Obs)]) -> Vec<T::Action>
    where
        T: Sync,
        T::Obs: Sync,
        T::Slot: Send,
    {
        assert!(!requests.is_empty(), "empty serving batch");
        // Pull a distinct &mut slot per request, in request order, and
        // reject stale generations before touching any state.
        let mut picked = self.slots.get_distinct_mut(requests.iter().map(|&(id, _)| id.index()));
        for (slot, &(id, _)) in picked.iter().zip(requests) {
            assert_eq!(
                slot.gen,
                id.gen,
                "stale session id: slot {} was recycled since this handle was issued",
                id.index()
            );
        }

        // Phases 1+2 (per band): plan each slot's token rows, then run
        // batched backbone steps over the band. Bands are contiguous
        // request ranges; with NT_THREADS > 1 they fan out over the
        // persistent kernel pool ([`nt_tensor::pool::run_tasks`]) — each
        // band is an independent slice of slots (own KV caches, own
        // episode state), and band splits never change any per-element
        // accumulation order, so threaded and serial serving are
        // bit-identical. Band tasks carry the pool's worker flag (no
        // second layer of per-matmul parallelism), and an engine that is
        // *itself* inside a pool worker (a shard task) stays serial.
        let t0 = std::time::Instant::now();
        let threads = if nt_tensor::pool::in_worker() {
            1
        } else {
            // Each spawned band must carry at least two slots so tiny
            // batches never pay a thread spawn per tick.
            nt_tensor::pool::num_threads().min(requests.len() / 2).max(1)
        };
        let band_len = requests.len().div_ceil(threads);
        let run_band =
            |slots: &mut [&mut EngineSlot<T>], reqs: &[(SessionId, &T::Obs)]| -> Vec<Tensor> {
                let mut parts: Vec<Tensor> = Vec::with_capacity(reqs.len());
                let mut rows = Vec::with_capacity(reqs.len());
                for (slot, &(_, obs)) in slots.iter_mut().zip(reqs) {
                    let plan = task.plan_step(&mut slot.state, obs, &slot.session);
                    if plan.reanchor {
                        slot.session.clear();
                    }
                    rows.push(plan.tokens.shape()[0]);
                    parts.push(plan.tokens);
                }
                // One batched backbone step per contiguous same-group
                // run (different groups may run different weights).
                let mut hidden_per_slot: Vec<Tensor> = Vec::with_capacity(reqs.len());
                let mut i = 0usize;
                while i < slots.len() {
                    let g = task.group_of(&slots[i].state);
                    let mut j = i + 1;
                    while j < slots.len() && task.group_of(&slots[j].state) == g {
                        j += 1;
                    }
                    let (lm, store) = task.backbone(g);
                    let refs: Vec<&Tensor> = parts[i..j].iter().collect();
                    let stacked = nt_tensor::concat(&refs, 0);
                    let mut sessions: Vec<&mut InferenceSession> =
                        slots[i..j].iter_mut().map(|s| &mut s.session).collect();
                    let hidden = append_batched(lm, store, &mut sessions, &stacked, &rows[i..j]);
                    let mut row = 0usize;
                    for &n in &rows[i..j] {
                        hidden_per_slot.push(hidden.narrow(0, row, n));
                        row += n;
                    }
                    i = j;
                }
                hidden_per_slot
            };
        let hidden: Vec<Tensor> = if threads <= 1 {
            run_band(&mut picked, requests)
        } else {
            // Each band's borrows travel to its pool task through a
            // take-once Mutex slot; outputs come back the same way.
            #[allow(clippy::type_complexity)]
            let bands: Vec<
                Mutex<Option<(&mut [&mut EngineSlot<T>], &[(SessionId, &T::Obs)])>>,
            > = picked
                .chunks_mut(band_len)
                .zip(requests.chunks(band_len))
                .map(|pair| Mutex::new(Some(pair)))
                .collect();
            let outs: Vec<Mutex<Option<Vec<Tensor>>>> =
                bands.iter().map(|_| Mutex::new(None)).collect();
            nt_tensor::pool::run_tasks(bands.len(), |bi| {
                let (slots, reqs) =
                    bands[bi].lock().unwrap().take().expect("serving band dispatched twice");
                *outs[bi].lock().unwrap() = Some(run_band(slots, reqs));
            });
            outs.into_iter()
                .flat_map(|m| m.into_inner().unwrap().expect("serving band skipped"))
                .collect()
        };
        self.phase_times[0] += t0.elapsed();

        // Phase 3: task heads over each slot's new hidden rows.
        let t2 = std::time::Instant::now();
        let mut actions = Vec::with_capacity(requests.len());
        let mut rollbacks: Vec<Option<RollbackPlan>> = Vec::with_capacity(requests.len());
        for ((slot, &(_, obs)), h) in picked.iter_mut().zip(requests).zip(&hidden) {
            let out = task.settle_step(&mut slot.state, obs, h);
            slot.last_logits = out.logits;
            rollbacks.push(out.rollback);
            actions.push(out.action);
        }
        self.phase_times[2] += t2.elapsed();

        // Rollback pass: slots whose trailing rows are not persistent
        // history (CJS candidates) truncate them away, then their post
        // tokens (the chosen action) go through the backbone as one
        // batched append per same-group run. Per-slot math is identical
        // to the unbatched truncate-then-append — KV state is private to
        // each slot.
        let t1 = std::time::Instant::now();
        let mut rb: Vec<(&mut EngineSlot<T>, Tensor)> = Vec::new();
        for (slot, plan) in picked.iter_mut().zip(rollbacks) {
            if let Some(RollbackPlan { drop_rows, post_tokens }) = plan {
                let keep = slot.session.len() - drop_rows;
                slot.session.truncate(keep);
                rb.push((slot, post_tokens));
            }
        }
        let mut i = 0usize;
        while i < rb.len() {
            let g = task.group_of(&rb[i].0.state);
            let mut j = i + 1;
            while j < rb.len() && task.group_of(&rb[j].0.state) == g {
                j += 1;
            }
            let (lm, store) = task.backbone(g);
            let refs: Vec<&Tensor> = rb[i..j].iter().map(|(_, t)| t).collect();
            let stacked = nt_tensor::concat(&refs, 0);
            let rows: Vec<usize> = rb[i..j].iter().map(|(_, t)| t.shape()[0]).collect();
            let mut sessions: Vec<&mut InferenceSession> =
                rb[i..j].iter_mut().map(|(s, _)| &mut s.session).collect();
            let _ = append_batched(lm, store, &mut sessions, &stacked, &rows);
            i = j;
        }
        self.phase_times[1] += t1.elapsed();
        actions
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::adapt::{AdaptMode, LoraSpec};
    use crate::NetLlmAbr;
    use nt_abr::{AbrObservation, AbrPolicy};
    use nt_llm::{size_spec, Zoo};

    fn model(window: usize, seed: u64) -> NetLlmAbr {
        let loaded = Zoo::new(std::env::temp_dir().join("netllm-serving-test"))
            .build_random(&size_spec("7b-sim"));
        let mut m = NetLlmAbr::new(loaded, AdaptMode::NoDomain, LoraSpec::default(), window, seed);
        m.target_return = 2.0;
        m
    }

    fn obs_stream(seed: u64, len: usize) -> Vec<AbrObservation> {
        AbrObservation::synthetic_stream(seed, len)
    }

    #[test]
    fn batched_serving_matches_sequential_rollouts_through_reanchor() {
        // Three streams served in one engine must produce chunk-for-chunk
        // the same logits and actions as replaying each stream alone
        // through AbrPolicy::select on the same model — across staggered
        // joins (ragged prefixes) and past the 2x-window re-anchor.
        let window = 3;
        let mut m = model(window, 41);
        let streams: Vec<Vec<AbrObservation>> =
            (0..3).map(|s| obs_stream(100 + s as u64, 10)).collect();

        // Staggered joins: stream s starts at tick s.
        let mut engine = ServingEngine::new();
        let mut ids = Vec::new();
        let mut batched: Vec<Vec<(usize, Vec<f32>)>> = vec![Vec::new(); streams.len()];
        for tick in 0..streams[0].len() + streams.len() {
            if tick < streams.len() {
                ids.push(engine.join(&m));
            }
            let mut requests = Vec::new();
            for (s, obs) in streams.iter().enumerate() {
                if tick >= s && tick - s < obs.len() {
                    requests.push((ids[s], &obs[tick - s]));
                }
            }
            if requests.is_empty() {
                break;
            }
            let actions = engine.step(&m, &requests);
            for (req, act) in requests.iter().zip(actions) {
                let s = ids.iter().position(|&i| i == req.0).unwrap();
                batched[s].push((act, engine.last_logits(req.0).to_vec()));
            }
        }

        // Sequential reference: same model, one stream at a time.
        for (s, obs) in streams.iter().enumerate() {
            m.reset();
            let mut reanchored = false;
            for (chunk, o) in obs.iter().enumerate() {
                let act = m.select(o);
                let (bact, blogits) = &batched[s][chunk];
                assert_eq!(act, *bact, "stream {s} chunk {chunk}: action diverged");
                for (x, y) in m.last_logits().iter().zip(blogits) {
                    assert!(
                        (x - y).abs() < 1e-5,
                        "stream {s} chunk {chunk}: batched {y} vs sequential {x}"
                    );
                }
                reanchored |= chunk >= 2 * window;
            }
            assert!(reanchored, "probe must cross a re-anchor event");
        }
    }

    #[test]
    fn join_leave_recycles_ids_without_disturbing_survivors() {
        let mut m = model(4, 42);
        let mut engine = ServingEngine::new();
        let a = engine.join(&m);
        let b = engine.join(&m);
        let c = engine.join(&m);
        assert_eq!((a.index(), b.index(), c.index()), (0, 1, 2));
        let obs = obs_stream(7, 6);

        // Advance all three, then drop a and c mid-flight.
        let _ = engine.step(&m, &[(a, &obs[0]), (b, &obs[0]), (c, &obs[0])]);
        let _ = engine.step(&m, &[(a, &obs[1]), (b, &obs[1]), (c, &obs[1])]);
        engine.leave(a);
        engine.leave(c);
        assert_eq!(engine.active(), 1);
        let d = engine.join(&m);
        assert_eq!(d.index(), 0, "smallest freed index is recycled");
        assert_ne!(d, a, "recycled index carries a fresh generation");

        // The survivor must continue exactly like a sequential rollout.
        let mut expected: Vec<usize> = Vec::new();
        m.reset();
        for o in &obs {
            expected.push(m.select(o));
        }
        for (i, o) in obs.iter().enumerate().skip(2) {
            let got = engine.step(&m, &[(b, o), (d, &obs[i - 2])]);
            assert_eq!(got[0], expected[i], "survivor diverged after leave/join at chunk {i}");
        }
    }

    #[test]
    fn session_enumeration_matches_per_session_cache_accounting() {
        // The eviction/steering hooks: `sessions()` walks live sessions
        // with their KV bytes, consistent with `cache_bytes_of` and the
        // engine total.
        let m = model(4, 45);
        let mut engine = ServingEngine::new();
        let a = engine.join(&m);
        let b = engine.join(&m);
        assert_eq!(engine.cache_bytes_of(a), 0, "fresh sessions hold no KV");
        let obs = obs_stream(13, 2);
        // Advance only `a`: its bytes grow, `b`'s stay zero.
        let _ = engine.step(&m, &[(a, &obs[0])]);
        assert!(engine.cache_bytes_of(a) > 0);
        assert_eq!(engine.cache_bytes_of(b), 0);
        let listed: Vec<(SessionId, usize)> = engine.sessions().collect();
        assert_eq!(listed.len(), 2);
        assert_eq!(listed.iter().map(|&(_, bytes)| bytes).sum::<usize>(), engine.cache_bytes());
        for &(id, bytes) in &listed {
            assert_eq!(bytes, engine.cache_bytes_of(id));
        }
        // Ids from the enumeration carry the live generation (usable
        // handles, not stale ones).
        assert!(listed.iter().any(|&(id, _)| id == a));
        assert!(listed.iter().any(|&(id, _)| id == b));
    }

    #[test]
    #[should_panic(expected = "stale session id")]
    fn stale_id_cannot_read_recycled_slots_logits() {
        // A handle kept across leave/join recycle must not silently read
        // the new occupant's logits — the generation check rejects it.
        let m = model(4, 44);
        let mut engine = ServingEngine::new();
        let a = engine.join(&m);
        let obs = obs_stream(11, 2);
        let _ = engine.step(&m, &[(a, &obs[0])]);
        engine.leave(a);
        let b = engine.join(&m); // recycles index 0 under a new generation
        let _ = engine.step(&m, &[(b, &obs[1])]);
        let _ = engine.last_logits(a); // must panic, not alias b's slot
    }

    #[test]
    #[should_panic]
    fn duplicate_session_in_batch_panics() {
        let m = model(4, 43);
        let mut engine = ServingEngine::new();
        let a = engine.join(&m);
        let obs = obs_stream(9, 1);
        let _ = engine.step(&m, &[(a, &obs[0]), (a, &obs[0])]);
    }
}

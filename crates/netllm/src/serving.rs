//! Batched multi-session serving engine.
//!
//! One adapted model, many live network sessions: the [`ServingEngine`]
//! multiplexes concurrent adapter rollouts into *one* batched backbone
//! step per tick. Where B independent [`crate::InferenceSession`]s each
//! push a handful of token rows through every projection and MLP alone,
//! the engine stacks all B sessions' new rows into single `[N, d]` GEMMs
//! (`nt_llm::TinyLm::forward_embeddings_cached_batched`), while each slot
//! keeps its own ragged-length KV cache, return-to-go prompt and
//! re-anchoring schedule — batching changes the arithmetic shape, never
//! the answers (gated at 1e-5 against the sequential path, including
//! re-anchor events).
//!
//! ```text
//!  stream 0 ─ obs ─┐                                   ┌─ action 0
//!  stream 1 ─ obs ─┤  per-slot tokens    one batched   ├─ action 1
//!      ...         ├──[a_prev | state]──► backbone ────┤   ...
//!  stream B ─ obs ─┘   (ragged rows)     step [N,d]    └─ action B
//!                       slot KV caches ──┘ └── head on B closing rows
//! ```
//!
//! ABR is served first (highest decision rate: every ~4 s chunk per
//! viewer); the same slot/stack/step pattern extends to the CJS and VP
//! adapters. Join/leave never disturbs other slots: a slot owns its KV
//! session and episode state, and the batch is just "whichever slots got
//! an observation this tick".

use crate::adapters::abr::{AbrEpisode, NetLlmAbr, TOK_PER_STEP};
use crate::backbone::{append_batched, InferenceSession};
use nt_abr::AbrObservation;
use nt_llm::SlotMap;
use nt_tensor::Tensor;

/// One live stream inside the engine.
struct AbrSlot {
    ep: AbrEpisode,
    session: InferenceSession,
    last_logits: Vec<f32>,
}

/// Stable handle for a stream served by a [`ServingEngine`].
pub type SessionId = usize;

/// Multiplexes many concurrent ABR rollouts over one shared [`NetLlmAbr`]
/// model. The engine owns only per-stream state; the model (weights,
/// encoders, head) is borrowed per call, so one adapted checkpoint can
/// back any number of engines.
#[derive(Default)]
pub struct ServingEngine {
    slots: SlotMap<AbrSlot>,
    /// Cumulative per-phase wall time (tokenise+backbone / unused / head),
    /// for the profiling bin.
    pub phase_times: [std::time::Duration; 3],
}

impl ServingEngine {
    /// Engine with no live streams.
    pub fn new() -> Self {
        ServingEngine::default()
    }

    /// Admit a new stream; returns its stable [`SessionId`] (smallest
    /// free id, recycled after [`ServingEngine::leave`]).
    pub fn join(&mut self, model: &NetLlmAbr) -> SessionId {
        self.slots.insert(AbrSlot {
            ep: AbrEpisode::fresh(model.target_return),
            session: InferenceSession::new(&model.lm),
            last_logits: Vec::new(),
        })
    }

    /// Remove a stream, dropping its KV cache. Other slots are untouched.
    pub fn leave(&mut self, id: SessionId) {
        let _ = self.slots.remove(id);
    }

    /// Live stream count.
    pub fn active(&self) -> usize {
        self.slots.active()
    }

    /// Action logits of `id`'s most recent step (equivalence tests
    /// compare these against the sequential path).
    pub fn last_logits(&self, id: SessionId) -> &[f32] {
        &self.slots.get(id).last_logits
    }

    /// Bytes held by every live slot's KV cache.
    pub fn cache_bytes(&self) -> usize {
        self.slots.iter().map(|s| s.session.cache_bytes()).sum()
    }

    /// Serve one tick: each `(id, observation)` pair advances that stream
    /// by one chunk decision, all through a single batched backbone step.
    /// Returns the chosen bitrate rung per request, in request order.
    ///
    /// Per-slot semantics are identical to [`nt_abr::AbrPolicy::select`]
    /// on a dedicated `NetLlmAbr`: the previous chunk's QoE is settled
    /// into the return-to-go prompt, the new state is tokenized, and the
    /// slot re-anchors to its training window when its context fills or
    /// its visible history reaches twice the window — each on its own
    /// schedule.
    pub fn step(
        &mut self,
        model: &NetLlmAbr,
        requests: &[(SessionId, &AbrObservation)],
    ) -> Vec<usize> {
        assert!(!requests.is_empty(), "empty serving batch");
        // Pull a distinct &mut slot per request, in request order.
        let mut picked = self.slots.get_distinct_mut(requests.iter().map(|&(id, _)| id));

        // Phases 1+2 (per band): settle rewards, build this tick's token
        // rows, then run one batched backbone step over the band's rows.
        // Bands are contiguous request ranges; with NT_THREADS > 1 they
        // run on scoped worker threads — each band is an independent
        // slice of slots (own KV caches, own episode state), and band
        // splits never change any per-element accumulation order, so
        // threaded and serial serving are bit-identical.
        let t0 = std::time::Instant::now();
        // Band gate: each spawned band must carry at least two slots so
        // tiny batches never pay a thread spawn per tick, and band
        // workers register with the kernel pool so per-matmul
        // parallelism cannot stack a second layer of threads on top.
        let threads = nt_tensor::pool::num_threads().min(requests.len() / 2).max(1);
        let band_len = requests.len().div_ceil(threads);
        let run_band = |slots: &mut [&mut AbrSlot],
                        reqs: &[(SessionId, &AbrObservation)]|
         -> (Tensor, Vec<usize>) {
            let mut parts: Vec<Tensor> = Vec::with_capacity(reqs.len());
            let mut rows = Vec::with_capacity(reqs.len());
            for (slot, &(_, obs)) in slots.iter_mut().zip(reqs) {
                model.settle_and_push(&mut slot.ep, obs);
                let (tokens, reanchored) = model.step_tokens(
                    &mut slot.ep,
                    slot.session.len(),
                    slot.session.fits(TOK_PER_STEP),
                );
                if reanchored {
                    slot.session.clear();
                }
                rows.push(tokens.shape()[0]);
                parts.push(tokens);
            }
            let refs: Vec<&Tensor> = parts.iter().collect();
            let stacked = nt_tensor::concat(&refs, 0);
            let mut sessions: Vec<&mut InferenceSession> =
                slots.iter_mut().map(|s| &mut s.session).collect();
            let hidden = append_batched(&model.lm, &model.store, &mut sessions, &stacked, &rows);
            (hidden, rows)
        };
        let bands: Vec<(Tensor, Vec<usize>)> = if threads <= 1 {
            vec![run_band(&mut picked, requests)]
        } else {
            std::thread::scope(|sc| {
                let handles: Vec<_> = picked
                    .chunks_mut(band_len)
                    .zip(requests.chunks(band_len))
                    .map(|(slots, reqs)| {
                        sc.spawn(move || {
                            let _guard = nt_tensor::pool::enter_worker();
                            run_band(slots, reqs)
                        })
                    })
                    .collect();
                handles.into_iter().map(|h| h.join().expect("serving band panicked")).collect()
            })
        };
        let mut rows_per_slot = Vec::with_capacity(requests.len());
        for (_, rows) in &bands {
            rows_per_slot.extend_from_slice(rows);
        }
        let hidden = if bands.len() == 1 {
            bands.into_iter().next().unwrap().0
        } else {
            let hiddens: Vec<&Tensor> = bands.iter().map(|(h, _)| h).collect();
            nt_tensor::concat(&hiddens, 0)
        };
        self.phase_times[0] += t0.elapsed();

        // Phase 3: every slot's final row is its state-closing token; one
        // head GEMM scores all slots at once.
        let t2 = std::time::Instant::now();
        let mut closing_rows = Vec::with_capacity(requests.len());
        let mut row = 0usize;
        for &n in &rows_per_slot {
            row += n;
            closing_rows.push(row - 1);
        }
        let logits = model.head.eval(&model.store, &hidden.gather_rows(&closing_rows));
        let rungs = logits.shape()[1];
        let mut actions = Vec::with_capacity(requests.len());
        for (b, slot) in picked.iter_mut().enumerate() {
            let lrow = &logits.data()[b * rungs..(b + 1) * rungs];
            let best = lrow
                .iter()
                .enumerate()
                .max_by(|x, y| x.1.partial_cmp(y.1).unwrap())
                .map(|(i, _)| i)
                .unwrap_or(0);
            slot.ep.episode.steps.last_mut().unwrap().action = best;
            slot.last_logits = lrow.to_vec();
            actions.push(best);
        }
        self.phase_times[2] += t2.elapsed();
        actions
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::adapt::{AdaptMode, LoraSpec};
    use nt_abr::AbrPolicy;
    use nt_llm::{size_spec, Zoo};

    fn model(window: usize, seed: u64) -> NetLlmAbr {
        let loaded = Zoo::new(std::env::temp_dir().join("netllm-serving-test"))
            .build_random(&size_spec("7b-sim"));
        let mut m = NetLlmAbr::new(loaded, AdaptMode::NoDomain, LoraSpec::default(), window, seed);
        m.target_return = 2.0;
        m
    }

    fn obs_stream(seed: u64, len: usize) -> Vec<AbrObservation> {
        AbrObservation::synthetic_stream(seed, len)
    }

    #[test]
    fn batched_serving_matches_sequential_rollouts_through_reanchor() {
        // Three streams served in one engine must produce chunk-for-chunk
        // the same logits and actions as replaying each stream alone
        // through AbrPolicy::select on the same model — across staggered
        // joins (ragged prefixes) and past the 2x-window re-anchor.
        let window = 3;
        let mut m = model(window, 41);
        let streams: Vec<Vec<AbrObservation>> =
            (0..3).map(|s| obs_stream(100 + s as u64, 10)).collect();

        // Staggered joins: stream s starts at tick s.
        let mut engine = ServingEngine::new();
        let mut ids = Vec::new();
        let mut batched: Vec<Vec<(usize, Vec<f32>)>> = vec![Vec::new(); streams.len()];
        for tick in 0..streams[0].len() + streams.len() {
            if tick < streams.len() {
                ids.push(engine.join(&m));
            }
            let mut requests = Vec::new();
            for (s, obs) in streams.iter().enumerate() {
                if tick >= s && tick - s < obs.len() {
                    requests.push((ids[s], &obs[tick - s]));
                }
            }
            if requests.is_empty() {
                break;
            }
            let actions = engine.step(&m, &requests);
            for (req, act) in requests.iter().zip(actions) {
                let s = ids.iter().position(|&i| i == req.0).unwrap();
                batched[s].push((act, engine.last_logits(req.0).to_vec()));
            }
        }

        // Sequential reference: same model, one stream at a time.
        for (s, obs) in streams.iter().enumerate() {
            m.reset();
            let mut reanchored = false;
            for (chunk, o) in obs.iter().enumerate() {
                let act = m.select(o);
                let (bact, blogits) = &batched[s][chunk];
                assert_eq!(act, *bact, "stream {s} chunk {chunk}: action diverged");
                for (x, y) in m.last_logits().iter().zip(blogits) {
                    assert!(
                        (x - y).abs() < 1e-5,
                        "stream {s} chunk {chunk}: batched {y} vs sequential {x}"
                    );
                }
                reanchored |= chunk >= 2 * window;
            }
            assert!(reanchored, "probe must cross a re-anchor event");
        }
    }

    #[test]
    fn join_leave_recycles_ids_without_disturbing_survivors() {
        let mut m = model(4, 42);
        let mut engine = ServingEngine::new();
        let a = engine.join(&m);
        let b = engine.join(&m);
        let c = engine.join(&m);
        assert_eq!((a, b, c), (0, 1, 2));
        let obs = obs_stream(7, 6);

        // Advance all three, then drop a and c mid-flight.
        let _ = engine.step(&m, &[(a, &obs[0]), (b, &obs[0]), (c, &obs[0])]);
        let _ = engine.step(&m, &[(a, &obs[1]), (b, &obs[1]), (c, &obs[1])]);
        engine.leave(a);
        engine.leave(c);
        assert_eq!(engine.active(), 1);
        let d = engine.join(&m);
        assert_eq!(d, 0, "smallest freed id is recycled");

        // The survivor must continue exactly like a sequential rollout.
        let mut expected: Vec<usize> = Vec::new();
        m.reset();
        for o in &obs {
            expected.push(m.select(o));
        }
        for (i, o) in obs.iter().enumerate().skip(2) {
            let got = engine.step(&m, &[(b, o), (d, &obs[i - 2])]);
            assert_eq!(got[0], expected[i], "survivor diverged after leave/join at chunk {i}");
        }
    }

    #[test]
    #[should_panic]
    fn duplicate_session_in_batch_panics() {
        let m = model(4, 43);
        let mut engine = ServingEngine::new();
        let a = engine.join(&m);
        let obs = obs_stream(9, 1);
        let _ = engine.step(&m, &[(a, &obs[0]), (a, &obs[0])]);
    }
}

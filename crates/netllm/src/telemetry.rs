//! Event journal: a bounded, overwrite-oldest ring of structured serving
//! events (tick spans, evictions, steers, faults, refusals), each stamped
//! with a monotonic sequence number and the fleet logical clock.
//!
//! The counters in [`crate::metrics`] answer "how much"; this journal
//! answers "what happened, in what order". The writer side is the
//! scheduler thread plus the ingress refusal path: [`TelemetryRing::record`]
//! never waits for space or reader pace and never allocates per event
//! (events are `Copy`, slots are preallocated). Readers are cursors —
//! [`TelemetryRing::drain`] returns everything still resident at or after
//! `since_seq`, the next cursor to pass, and an exact count of events the
//! cursor passed over that were already overwritten. Dropped events are a
//! counted, first-class outcome, not a silent gap.
//!
//! The crate forbids `unsafe`, so the ring is a vector of per-slot mutexes
//! rather than a seqlock: a writer's critical section is one `Option`
//! store (bounded, uncontended unless a reader holds that exact slot), so
//! "never blocks" here means "never waits on anything unbounded" — there
//! is no condition variable, no channel, no backpressure from readers.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Mutex;

/// Why a session was steered between shards.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SteerReason {
    /// Occupancy rebalance (e.g. on leave) moved it off the hottest shard.
    Rebalance = 0,
    /// The budget steering pass (KV-byte or page denominated) moved it
    /// off an over-budget shard.
    OverBudget = 1,
    /// An explicit [`crate::ShardedServer::steer`] call (operator or test).
    Manual = 2,
}

/// Why a submit was refused with `Frame::Busy`.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum RefusalReason {
    /// The session's shard queue was full.
    QueueFull = 0,
    /// The session's shard was health-Suspect and shedding load.
    Suspect = 1,
    /// The connection hit its per-connection open-ticket fairness cap.
    FairnessCap = 2,
}

/// One journal event's payload. Fixed-size and `Copy` so recording one
/// never allocates.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum EventKind {
    /// One shard's slice of a scheduled tick: how many decisions it
    /// served and how long its plan+step phase ran.
    TickSpan {
        /// Shard index.
        shard: u32,
        /// Decisions served by this shard this tick.
        served: u32,
        /// Wall-ns of this shard's plan+step phase.
        span_ns: u64,
    },
    /// A session's KV cache was evicted under memory pressure.
    Eviction {
        /// Shard the cache lived on.
        shard: u32,
        /// The evicted session.
        session: u64,
        /// Replay rows the eviction priced (see
        /// [`crate::metrics::ShardSnapshot::evicted_rebuild_rows`]).
        rebuild_rows: u64,
    },
    /// A session was steered between shards.
    Steer {
        /// Source shard.
        src: u32,
        /// Destination shard.
        dst: u32,
        /// The steered session.
        session: u64,
        /// What triggered the move.
        reason: SteerReason,
    },
    /// The health checker declared a shard Dead.
    ShardDead {
        /// The dead shard.
        shard: u32,
    },
    /// A dead shard's sessions were salvaged onto survivors.
    Recovery {
        /// The recovered (dead) shard.
        shard: u32,
        /// Sessions re-admitted.
        sessions: u32,
        /// KV rows destroyed that episode-log replay must rebuild.
        replay_rows: u64,
    },
    /// A submit was refused with `Frame::Busy`.
    Busy {
        /// The refused session.
        session: u64,
        /// Why it was refused.
        reason: RefusalReason,
    },
}

/// One journal entry: a monotonic sequence number, the fleet logical
/// clock (`ShardedServer` tick count) at record time, and the payload.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct TelemetryEvent {
    /// Monotonic sequence number (dense: every allocated number is
    /// eventually delivered to a cursor or counted dropped).
    pub seq: u64,
    /// Fleet logical clock (tick count) when the event was recorded.
    pub clock: u64,
    /// The event payload.
    pub kind: EventKind,
}

/// One [`TelemetryRing::drain`] result: the resident events at or after
/// the cursor, where the cursor should move next, and how many events the
/// cursor passed over that were already overwritten.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct EventsView {
    /// Resident events, in sequence order.
    pub events: Vec<TelemetryEvent>,
    /// Pass this as the next `since_seq` to continue where this batch
    /// stopped.
    pub next_seq: u64,
    /// Events in `[since_seq, next_seq)` that were overwritten before
    /// this drain saw them.
    pub dropped: u64,
}

/// Bounded, overwrite-oldest event journal. See the module docs for the
/// write/read contract.
#[derive(Debug)]
pub struct TelemetryRing {
    slots: Vec<Mutex<Option<TelemetryEvent>>>,
    /// Next sequence number to allocate (== total events ever recorded).
    head: AtomicU64,
    /// Events lost to overwrite before any reader saw them.
    dropped: AtomicU64,
    enabled: AtomicBool,
}

impl TelemetryRing {
    /// A ring holding at most `capacity` resident events (`capacity > 0`).
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "telemetry ring needs at least one slot");
        TelemetryRing {
            slots: (0..capacity).map(|_| Mutex::new(None)).collect(),
            head: AtomicU64::new(0),
            dropped: AtomicU64::new(0),
            enabled: AtomicBool::new(true),
        }
    }

    /// Resident capacity.
    pub fn capacity(&self) -> usize {
        self.slots.len()
    }

    /// Turn recording on/off. Off, [`record`](Self::record) is one
    /// relaxed load and nothing else — the telemetry-off configuration.
    pub fn set_enabled(&self, on: bool) {
        self.enabled.store(on, Ordering::Relaxed);
    }

    /// Whether recording is on.
    pub fn enabled(&self) -> bool {
        self.enabled.load(Ordering::Relaxed)
    }

    /// Total events ever allocated a sequence number (== the next one).
    pub fn head(&self) -> u64 {
        self.head.load(Ordering::Acquire)
    }

    /// Total events lost to overwrite so far.
    pub fn dropped_total(&self) -> u64 {
        self.dropped.load(Ordering::Relaxed)
    }

    /// Record one event at logical clock `clock`. Returns its sequence
    /// number, or `None` when disabled or when the event lost an
    /// overwrite race to a newer one (which counts it dropped — every
    /// allocated sequence number is accounted for exactly once).
    pub fn record(&self, clock: u64, kind: EventKind) -> Option<u64> {
        if !self.enabled() {
            return None;
        }
        let seq = self.head.fetch_add(1, Ordering::AcqRel);
        let slot = &self.slots[(seq % self.slots.len() as u64) as usize];
        let mut g = slot.lock().unwrap();
        match *g {
            // A full wrap overtook us mid-record: the resident event is
            // newer, so *this* event is the dropped one. Never replace a
            // newer event with an older one — slot sequences only grow,
            // which is what keeps drain's accounting exact.
            Some(old) if old.seq > seq => {
                self.dropped.fetch_add(1, Ordering::Relaxed);
                None
            }
            resident => {
                if resident.is_some() {
                    // Overwrite-oldest: the resident (older) event is
                    // dropped.
                    self.dropped.fetch_add(1, Ordering::Relaxed);
                }
                *g = Some(TelemetryEvent { seq, clock, kind });
                Some(seq)
            }
        }
    }

    /// Drain everything resident at or after `since_seq`. Each sequence
    /// number the cursor passes is classified exactly once — delivered in
    /// [`EventsView::events`] or counted in [`EventsView::dropped`]. A
    /// slot whose writer is still mid-record truncates the batch there
    /// (its sequence number stays ahead of [`EventsView::next_seq`], so
    /// the next drain picks it up — nothing is miscounted as dropped).
    pub fn drain(&self, since_seq: u64) -> EventsView {
        let head = self.head.load(Ordering::Acquire);
        if since_seq >= head {
            return EventsView { events: Vec::new(), next_seq: since_seq, dropped: 0 };
        }
        let cap = self.slots.len() as u64;
        let lo = since_seq.max(head.saturating_sub(cap));
        let mut dropped = lo - since_seq;
        let mut events = Vec::with_capacity((head - lo) as usize);
        let mut next = lo;
        for i in lo..head {
            let g = self.slots[(i % cap) as usize].lock().unwrap();
            match *g {
                Some(ev) if ev.seq == i => {
                    events.push(ev);
                    next = i + 1;
                }
                Some(ev) if ev.seq > i => {
                    dropped += 1;
                    next = i + 1;
                }
                // Empty or older than `i`: the writer for `i` is still in
                // flight — stop here rather than guess.
                _ => break,
            }
        }
        EventsView { events, next_seq: next, dropped }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    fn ev(session: u64) -> EventKind {
        EventKind::Busy { session, reason: RefusalReason::QueueFull }
    }

    #[test]
    fn drain_by_cursor_delivers_in_order_with_clock() {
        let ring = TelemetryRing::new(8);
        for i in 0..5 {
            let seq = ring.record(100 + i, ev(i)).unwrap();
            assert_eq!(seq, i);
        }
        let batch = ring.drain(0);
        assert_eq!(batch.events.len(), 5);
        assert_eq!(batch.next_seq, 5);
        assert_eq!(batch.dropped, 0);
        for (i, e) in batch.events.iter().enumerate() {
            assert_eq!(e.seq, i as u64);
            assert_eq!(e.clock, 100 + i as u64);
            assert_eq!(e.kind, ev(i as u64));
        }
        // Cursor resumes: only the new tail.
        ring.record(200, ev(99)).unwrap();
        let tail = ring.drain(batch.next_seq);
        assert_eq!(tail.events.len(), 1);
        assert_eq!(tail.events[0].seq, 5);
        assert_eq!(tail.next_seq, 6);
        // Past the head: empty, cursor unchanged.
        let empty = ring.drain(100);
        assert_eq!((empty.events.len(), empty.next_seq, empty.dropped), (0, 100, 0));
    }

    #[test]
    fn overwrite_oldest_counts_dropped_exactly() {
        let ring = TelemetryRing::new(4);
        for i in 0..10 {
            ring.record(0, ev(i));
        }
        assert_eq!(ring.dropped_total(), 6);
        // A cursor at 0 passed 6 overwritten events and gets the 4 residents.
        let batch = ring.drain(0);
        assert_eq!(batch.dropped, 6);
        assert_eq!(batch.events.len(), 4);
        assert_eq!(batch.events.first().unwrap().seq, 6);
        assert_eq!(batch.next_seq, 10);
        // A caught-up cursor reports no drops.
        assert_eq!(ring.drain(6).dropped, 0);
    }

    #[test]
    fn disabled_ring_records_nothing() {
        let ring = TelemetryRing::new(4);
        ring.set_enabled(false);
        assert_eq!(ring.record(0, ev(1)), None);
        assert_eq!(ring.head(), 0);
        assert_eq!(ring.drain(0), EventsView::default());
        ring.set_enabled(true);
        assert!(ring.record(0, ev(1)).is_some());
    }

    /// The satellite stress test: concurrent writers and a live reader,
    /// then a final accounting pass — no torn events, dropped count
    /// exact, every allocated sequence number classified exactly once.
    #[test]
    fn concurrent_writers_and_reader_account_every_event() {
        const WRITERS: u64 = 4;
        const PER_WRITER: u64 = 5_000;
        const CAP: usize = 512;
        let ring = Arc::new(TelemetryRing::new(CAP));
        let mut handles = Vec::new();
        for w in 0..WRITERS {
            let ring = Arc::clone(&ring);
            handles.push(std::thread::spawn(move || {
                for i in 0..PER_WRITER {
                    // Redundant encoding: a torn event would break the
                    // rebuild_rows == shard * 1e6 + session invariant.
                    ring.record(
                        w,
                        EventKind::Eviction {
                            shard: w as u32,
                            session: i,
                            rebuild_rows: w * 1_000_000 + i,
                        },
                    );
                }
            }));
        }
        // Live reader: drain by cursor while writers run.
        let mut cursor = 0u64;
        let mut delivered = 0u64;
        let mut dropped = 0u64;
        let check = |batch: &EventsView, cursor: u64| {
            assert!(batch.next_seq >= cursor);
            let mut last: Option<u64> = None;
            for e in &batch.events {
                if let Some(l) = last {
                    assert!(e.seq > l, "out-of-order seq");
                }
                last = Some(e.seq);
                match e.kind {
                    EventKind::Eviction { shard, session, rebuild_rows } => {
                        assert_eq!(rebuild_rows, shard as u64 * 1_000_000 + session, "torn event");
                        assert_eq!(e.clock, shard as u64);
                    }
                    other => panic!("foreign event {other:?}"),
                }
            }
        };
        while handles.iter().any(|h| !h.is_finished()) {
            let batch = ring.drain(cursor);
            check(&batch, cursor);
            delivered += batch.events.len() as u64;
            dropped += batch.dropped;
            cursor = batch.next_seq;
        }
        for h in handles {
            h.join().unwrap();
        }
        // Final drain: writers quiesced, so nothing truncates.
        let batch = ring.drain(cursor);
        check(&batch, cursor);
        delivered += batch.events.len() as u64;
        dropped += batch.dropped;
        cursor = batch.next_seq;
        let total = WRITERS * PER_WRITER;
        assert_eq!(ring.head(), total);
        assert_eq!(cursor, total, "cursor reached the head");
        assert_eq!(delivered + dropped, total, "every event classified exactly once");
        assert_eq!(ring.dropped_total(), total - CAP as u64, "exact overwrite accounting");
        assert!(delivered >= CAP as u64, "at least the residents were delivered");
    }
}

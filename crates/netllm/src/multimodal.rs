//! The multimodal encoder (paper §4.1).
//!
//! Modality-specific feature encoders turn raw task inputs into features;
//! trainable linear projections map each modality into the LLM token space;
//! a shared layer-norm stabilises the projected embeddings. The feature
//! encoders mirror the paper's choices: a ViT-style patch encoder for
//! images, 1-D CNN for time-series/sequence data, a fully connected layer
//! for scalars, and a GNN for DAGs.

use nt_nn::{Conv1d, Fwd, Gnn, Init, LayerNorm, Linear, ParamStore};
use nt_tensor::{NodeId, Rng, Tensor};

/// ViT-lite image encoder: non-overlapping patch embedding over a square
/// grid image, mean-pooled into one feature vector. The projection into
/// token space is separate (and always trainable), matching the paper's
/// "frozen pre-trained encoder + trainable projection" split.
pub struct ImageEncoder {
    patch: Linear,
    pub grid: usize,
    pub patch_size: usize,
    pub feat_dim: usize,
}

impl ImageEncoder {
    pub fn new(
        store: &mut ParamStore,
        name: &str,
        grid: usize,
        patch_size: usize,
        feat_dim: usize,
        rng: &mut Rng,
    ) -> Self {
        assert_eq!(grid % patch_size, 0, "grid must divide into patches");
        let in_dim = patch_size * patch_size;
        let patch =
            Linear::new(store, &format!("{name}.patch"), in_dim, feat_dim, true, Init::Xavier, rng);
        ImageEncoder { patch, grid, patch_size, feat_dim }
    }

    /// Patch tokens one image expands into (`(grid / patch_size)^2`) —
    /// lets the memory scheduler size a query without encoding it.
    pub fn num_patches(&self) -> usize {
        let per_side = self.grid / self.patch_size;
        per_side * per_side
    }

    fn patchify(&self, img: &Tensor) -> Tensor {
        assert_eq!(img.shape(), &[self.grid, self.grid], "image shape");
        let p = self.patch_size;
        let per_side = self.grid / p;
        let mut patches = Vec::with_capacity(per_side * per_side * p * p);
        for pr in 0..per_side {
            for pc in 0..per_side {
                for r in 0..p {
                    for c in 0..p {
                        patches.push(img.at(&[pr * p + r, pc * p + c]));
                    }
                }
            }
        }
        Tensor::from_vec([per_side * per_side, p * p], patches)
    }

    /// Encode `[grid, grid]` image -> `[num_patches, feat_dim]` features.
    pub fn forward(&self, f: &mut Fwd, store: &ParamStore, img: &Tensor) -> NodeId {
        let x = f.input(self.patchify(img));
        let feats = self.patch.forward(f, store, x);
        f.g.gelu(feats)
    }

    /// Graph-free inference forward.
    pub fn eval(&self, store: &ParamStore, img: &Tensor) -> Tensor {
        self.patch.eval(store, &self.patchify(img)).map(nt_tensor::gelu)
    }
}

/// 1-D CNN encoder for time-series and sequence inputs: one token per
/// output channel position, or pooled to a single feature row.
pub struct SeriesEncoder {
    conv: Conv1d,
    pub channels_in: usize,
    pub feat_dim: usize,
}

impl SeriesEncoder {
    pub fn new(
        store: &mut ParamStore,
        name: &str,
        channels_in: usize,
        feat_dim: usize,
        kernel: usize,
        rng: &mut Rng,
    ) -> Self {
        let conv = Conv1d::new(
            store,
            &format!("{name}.conv"),
            channels_in,
            feat_dim,
            kernel,
            1,
            kernel / 2,
            rng,
        );
        SeriesEncoder { conv, channels_in, feat_dim }
    }

    /// Encode `[channels_in, t]` -> `[t, feat_dim]` per-step features.
    pub fn forward_steps(&self, f: &mut Fwd, store: &ParamStore, series: &Tensor) -> NodeId {
        assert_eq!(series.shape().len(), 2);
        assert_eq!(series.shape()[0], self.channels_in);
        let t = series.shape()[1];
        let x = f.input(series.clone().reshape([1, self.channels_in, t]));
        let y = self.conv.forward(f, store, x); // [1, feat, t]
        let y = f.g.gelu(y);
        let y = f.g.reshape(y, [self.feat_dim, t]);
        f.g.transpose_last2(y) // [t, feat]
    }

    /// Encode to a single pooled feature row `[1, feat_dim]`.
    pub fn forward_pooled(&self, f: &mut Fwd, store: &ParamStore, series: &Tensor) -> NodeId {
        let steps = self.forward_steps(f, store, series);
        let pooled = f.g.mean_axis(steps, 0); // [feat]
        f.g.reshape(pooled, [1, self.feat_dim])
    }

    /// Graph-free `[channels_in, t]` -> `[t, feat_dim]`.
    pub fn eval_steps(&self, store: &ParamStore, series: &Tensor) -> Tensor {
        assert_eq!(series.shape().len(), 2);
        assert_eq!(series.shape()[0], self.channels_in);
        let t = series.shape()[1];
        let x = series.clone().reshape([1, self.channels_in, t]);
        let y = self.conv.eval(store, &x).map(nt_tensor::gelu); // [1, feat, t]
        y.reshape([self.feat_dim, t]).t() // [t, feat]
    }

    /// Graph-free pooled feature row `[1, feat_dim]`.
    pub fn eval_pooled(&self, store: &ParamStore, series: &Tensor) -> Tensor {
        let steps = self.eval_steps(store, series);
        mean_rows(&steps)
    }
}

/// Column-wise mean of a `[n, d]` tensor -> `[1, d]` (graph-free pooling).
pub(crate) fn mean_rows(x: &Tensor) -> Tensor {
    let (n, d) = (x.shape()[0], x.shape()[1]);
    let mut out = vec![0.0f32; d];
    for r in 0..n {
        for (o, v) in out.iter_mut().zip(&x.data()[r * d..(r + 1) * d]) {
            *o += v;
        }
    }
    for v in &mut out {
        *v /= n as f32;
    }
    Tensor::from_vec([1, d], out)
}

/// Fully connected encoder for scalar (or small fixed-vector) inputs.
pub struct ScalarEncoder {
    fc: Linear,
    pub in_dim: usize,
    pub feat_dim: usize,
}

impl ScalarEncoder {
    pub fn new(
        store: &mut ParamStore,
        name: &str,
        in_dim: usize,
        feat_dim: usize,
        rng: &mut Rng,
    ) -> Self {
        let fc =
            Linear::new(store, &format!("{name}.fc"), in_dim, feat_dim, true, Init::Xavier, rng);
        ScalarEncoder { fc, in_dim, feat_dim }
    }

    /// Encode `[n, in_dim]` -> `[n, feat_dim]`.
    pub fn forward(&self, f: &mut Fwd, store: &ParamStore, x: &Tensor) -> NodeId {
        let xi = f.input(x.clone());
        let y = self.fc.forward(f, store, xi);
        f.g.gelu(y)
    }

    /// Graph-free inference forward.
    pub fn eval(&self, store: &ParamStore, x: &Tensor) -> Tensor {
        self.fc.eval(store, x).map(nt_tensor::gelu)
    }
}

/// GNN encoder for DAG inputs (stage graphs in CJS).
pub struct GraphEncoder {
    pub gnn: Gnn,
    pub feat_dim: usize,
}

impl GraphEncoder {
    pub fn new(
        store: &mut ParamStore,
        name: &str,
        node_feats: usize,
        feat_dim: usize,
        rng: &mut Rng,
    ) -> Self {
        let gnn = Gnn::new(store, &format!("{name}.gnn"), node_feats, feat_dim, feat_dim, 2, rng);
        GraphEncoder { gnn, feat_dim }
    }

    /// Per-node features `[n, feat_dim]` from `(feats, adj)`.
    pub fn forward(&self, f: &mut Fwd, store: &ParamStore, feats: &Tensor, adj: &Tensor) -> NodeId {
        let x = f.input(feats.clone());
        let a = f.input(adj.clone());
        self.gnn.forward(f, store, x, a)
    }

    /// Graph-free inference forward.
    pub fn eval(&self, store: &ParamStore, feats: &Tensor, adj: &Tensor) -> Tensor {
        self.gnn.eval(store, feats, adj)
    }
}

/// Trainable projection of one modality's features into the LLM token
/// space, plus the shared output layer-norm (paper Fig 6).
pub struct Projection {
    proj: Linear,
    norm: LayerNorm,
}

impl Projection {
    pub fn new(
        store: &mut ParamStore,
        name: &str,
        feat_dim: usize,
        d_model: usize,
        rng: &mut Rng,
    ) -> Self {
        Projection {
            proj: Linear::new(
                store,
                &format!("{name}.proj"),
                feat_dim,
                d_model,
                true,
                Init::Xavier,
                rng,
            ),
            norm: LayerNorm::new(store, &format!("{name}.norm"), d_model),
        }
    }

    /// `[n, feat_dim]` features -> `[n, d_model]` token-like embeddings.
    pub fn forward(&self, f: &mut Fwd, store: &ParamStore, feats: NodeId) -> NodeId {
        let y = self.proj.forward(f, store, feats);
        self.norm.forward(f, store, y)
    }

    /// Graph-free inference forward.
    pub fn eval(&self, store: &ParamStore, feats: &Tensor) -> Tensor {
        let y = self.proj.eval(store, feats);
        self.norm.eval(store, &y)
    }
}

/// Learned query/placeholder tokens (e.g. the VP head's future-step slots
/// and the DT-style return token embedding base).
pub struct LearnedTokens {
    table: nt_nn::Embedding,
}

impl LearnedTokens {
    pub fn new(
        store: &mut ParamStore,
        name: &str,
        count: usize,
        d_model: usize,
        rng: &mut Rng,
    ) -> Self {
        LearnedTokens { table: nt_nn::Embedding::new(store, name, count, d_model, rng) }
    }

    /// Fetch tokens `[k, d_model]` by index.
    pub fn get(&self, f: &mut Fwd, store: &ParamStore, idx: &[usize]) -> NodeId {
        self.table.forward(f, store, idx)
    }

    /// Graph-free lookup.
    pub fn eval(&self, store: &ParamStore, idx: &[usize]) -> Tensor {
        self.table.eval(store, idx)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn image_encoder_patch_count() {
        let mut s = ParamStore::new();
        let mut rng = Rng::seeded(1);
        let enc = ImageEncoder::new(&mut s, "img", 8, 4, 16, &mut rng);
        let mut f = Fwd::eval();
        let img = Tensor::randn([8, 8], 1.0, &mut rng);
        let y = enc.forward(&mut f, &s, &img);
        assert_eq!(f.g.value(y).shape(), &[4, 16]);
    }

    #[test]
    fn series_encoder_shapes() {
        let mut s = ParamStore::new();
        let mut rng = Rng::seeded(2);
        let enc = SeriesEncoder::new(&mut s, "ts", 3, 12, 3, &mut rng);
        let mut f = Fwd::eval();
        let series = Tensor::randn([3, 10], 1.0, &mut rng);
        let steps = enc.forward_steps(&mut f, &s, &series);
        assert_eq!(f.g.value(steps).shape(), &[10, 12]);
        let pooled = enc.forward_pooled(&mut f, &s, &series);
        assert_eq!(f.g.value(pooled).shape(), &[1, 12]);
    }

    #[test]
    fn projection_normalises_output() {
        let mut s = ParamStore::new();
        let mut rng = Rng::seeded(3);
        let proj = Projection::new(&mut s, "p", 8, 16, &mut rng);
        let mut f = Fwd::eval();
        let feats = f.input(Tensor::randn([5, 8], 3.0, &mut rng));
        let y = proj.forward(&mut f, &s, feats);
        let v = f.g.value(y);
        assert_eq!(v.shape(), &[5, 16]);
        for r in 0..5 {
            let row = v.row(r);
            let mean: f32 = row.iter().sum::<f32>() / 16.0;
            assert!(mean.abs() < 1e-3, "layer-norm should centre rows, got {mean}");
        }
    }

    #[test]
    fn scalar_encoder_shapes() {
        let mut s = ParamStore::new();
        let mut rng = Rng::seeded(4);
        let enc = ScalarEncoder::new(&mut s, "sc", 1, 8, &mut rng);
        let mut f = Fwd::eval();
        let y = enc.forward(&mut f, &s, &Tensor::from_vec([2, 1], vec![0.5, -0.5]));
        assert_eq!(f.g.value(y).shape(), &[2, 8]);
    }

    #[test]
    fn graph_encoder_shapes() {
        let mut s = ParamStore::new();
        let mut rng = Rng::seeded(5);
        let enc = GraphEncoder::new(&mut s, "g", 8, 16, &mut rng);
        let mut f = Fwd::eval();
        let feats = Tensor::randn([4, 8], 1.0, &mut rng);
        let adj = nt_nn::normalized_adjacency(4, &[(0, 1), (1, 2), (2, 3)]);
        let y = enc.forward(&mut f, &s, &feats, &adj);
        assert_eq!(f.g.value(y).shape(), &[4, 16]);
    }
}

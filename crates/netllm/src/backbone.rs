//! The shared inference engine behind every adapter (tentpole of the
//! "one backbone inference per answer" claim, §4.2).
//!
//! An [`InferenceSession`] owns the backbone's [`KvCache`] and the running
//! multimodal-token prefix: adapters append only the *new* token embeddings
//! of each environment step and read back hidden states for exactly those
//! rows, instead of re-encoding their entire prompt every step on the
//! gradient tape. Rollout inference therefore costs `O(new x total)`
//! attention per step rather than `O(total^2)`, with zero tape or
//! parameter-clone overhead (the graph-free eval path of `nt-nn`).
//!
//! Sessions grow until the backbone's context is full — or, in the
//! decision-transformer adapters, until the visible history reaches twice
//! the training window — then re-anchor: the caller rebuilds from its most
//! recent window of steps. Between re-anchors a model may therefore
//! condition on up to `2x` the history it was adapted on — a documented,
//! bounded deviation from the fixed-window seed behaviour (the
//! conditioning is unchanged; exact fixed-window semantics would force a
//! full re-encode every step, because sliding the window shifts every
//! token's absolute position).

use nt_llm::{KvCache, PagePool, TinyLm};
use nt_nn::ParamStore;
use nt_tensor::Tensor;

/// A cached inference session over a [`TinyLm`] backbone.
pub struct InferenceSession {
    cache: KvCache,
    max_tokens: usize,
}

impl InferenceSession {
    /// Fresh session shaped for `lm`, capped at the backbone's context.
    pub fn new(lm: &TinyLm) -> Self {
        InferenceSession { cache: KvCache::new(lm), max_tokens: lm.cfg.max_seq }
    }

    /// Fresh session whose KV cache draws fixed-size pages from `pool`:
    /// appends reserve pages, truncate/clear/drop return them, so the
    /// session can never grow past what the pool budget affords.
    pub fn paged(lm: &TinyLm, pool: &PagePool) -> Self {
        InferenceSession { cache: KvCache::new_paged(lm, pool), max_tokens: lm.cfg.max_seq }
    }

    /// Whether this session's KV cache is page-backed.
    pub fn is_paged(&self) -> bool {
        self.cache.is_paged()
    }

    /// Re-home the KV cache onto `pool` (`None` = contiguous) — values are
    /// preserved exactly, so answers stay bit-identical across the move.
    /// No-op when the backing already matches; see `KvCache::adopt`.
    pub fn adopt(&mut self, pool: Option<&PagePool>) {
        self.cache.adopt(pool);
    }

    /// Pool pages held by this session's cache (0 when contiguous).
    pub fn pages_held(&self) -> usize {
        self.cache.pages_held()
    }

    /// Pages this session would have to allocate to append `rows` more
    /// token positions (0 when contiguous).
    pub fn pages_needed(&self, rows: usize) -> usize {
        self.cache.pages_needed(rows)
    }

    /// Number of token positions currently cached.
    pub fn len(&self) -> usize {
        self.cache.len()
    }

    pub fn is_empty(&self) -> bool {
        self.cache.is_empty()
    }

    /// Context capacity in tokens.
    pub fn max_tokens(&self) -> usize {
        self.max_tokens
    }

    /// Whether `n` more tokens fit without re-anchoring.
    pub fn fits(&self, n: usize) -> bool {
        self.len() + n <= self.max_tokens
    }

    /// Forget the whole prefix (episode reset or re-anchor).
    pub fn clear(&mut self) {
        self.cache.clear();
    }

    /// Roll the prefix back to `len` tokens (e.g. discard candidate tokens
    /// that are not part of the persistent history).
    pub fn truncate(&mut self, len: usize) {
        self.cache.truncate(len);
    }

    /// Append token embeddings `[n, d_model]`, returning the backbone's
    /// hidden states `[n, d_model]` for the new rows only.
    pub fn append(&mut self, lm: &TinyLm, store: &ParamStore, emb: &Tensor) -> Tensor {
        lm.forward_embeddings_cached(store, emb, &mut self.cache)
    }

    /// Bytes held by the cached keys/values.
    pub fn cache_bytes(&self) -> usize {
        self.cache.bytes()
    }
}

/// Append token embeddings to many sessions in one batched backbone
/// forward: `emb` stacks each session's new rows (`[N, d_model]`, grouped
/// per `rows_per_slot`, ragged counts allowed), and the result is the
/// hidden states `[N, d_model]` in the same order. Equivalent to calling
/// [`InferenceSession::append`] per session, but the projections and MLPs
/// run as single stacked GEMMs across every session — the serving
/// engine's throughput lever.
pub fn append_batched(
    lm: &TinyLm,
    store: &ParamStore,
    sessions: &mut [&mut InferenceSession],
    emb: &Tensor,
    rows_per_slot: &[usize],
) -> Tensor {
    for (sess, &n) in sessions.iter().zip(rows_per_slot) {
        assert!(sess.fits(n), "session of {} cannot take {} more tokens", sess.len(), n);
    }
    let mut caches: Vec<&mut KvCache> = sessions.iter_mut().map(|s| &mut s.cache).collect();
    lm.forward_embeddings_cached_batched(store, emb, rows_per_slot, &mut caches)
}

#[cfg(test)]
mod tests {
    use super::*;
    use nt_llm::{size_spec, Zoo};
    use nt_nn::Fwd;
    use nt_tensor::Rng;

    #[test]
    fn session_matches_one_shot_embeddings_forward() {
        let loaded = Zoo::new(std::env::temp_dir().join("netllm-session-test"))
            .build_random(&size_spec("0.35b-sim"));
        let mut rng = Rng::seeded(1);
        let d = loaded.lm.cfg.d_model;
        let emb = Tensor::randn([9, d], 0.5, &mut rng);

        let mut f = Fwd::eval();
        let e = f.input(emb.clone());
        let full_node = loaded.lm.forward_embeddings(&mut f, &loaded.store, e);
        let full = f.g.value(full_node).clone();

        let mut sess = InferenceSession::new(&loaded.lm);
        let a = sess.append(&loaded.lm, &loaded.store, &emb.narrow(0, 0, 3));
        let b = sess.append(&loaded.lm, &loaded.store, &emb.narrow(0, 3, 6));
        assert_eq!(sess.len(), 9);
        let cached = nt_tensor::concat(&[&a, &b], 0);
        for (x, y) in full.data().iter().zip(cached.data()) {
            assert!((x - y).abs() < 1e-5, "session forward diverged: {x} vs {y}");
        }
    }

    #[test]
    fn truncate_then_reappend_is_consistent() {
        let loaded = Zoo::new(std::env::temp_dir().join("netllm-session-test2"))
            .build_random(&size_spec("0.35b-sim"));
        let mut rng = Rng::seeded(2);
        let d = loaded.lm.cfg.d_model;
        let prefix = Tensor::randn([4, d], 0.5, &mut rng);
        let cands = Tensor::randn([3, d], 0.5, &mut rng);
        let action = Tensor::randn([1, d], 0.5, &mut rng);

        // prefix + candidates, roll candidates back, then the action token.
        let mut sess = InferenceSession::new(&loaded.lm);
        sess.append(&loaded.lm, &loaded.store, &prefix);
        sess.append(&loaded.lm, &loaded.store, &cands);
        sess.truncate(4);
        let h_inc = sess.append(&loaded.lm, &loaded.store, &action);

        // Reference: prefix + action in one fresh session.
        let mut fresh = InferenceSession::new(&loaded.lm);
        fresh.append(&loaded.lm, &loaded.store, &prefix);
        let h_ref = fresh.append(&loaded.lm, &loaded.store, &action);
        for (x, y) in h_inc.data().iter().zip(h_ref.data()) {
            assert!((x - y).abs() < 1e-5, "rollback diverged: {x} vs {y}");
        }
    }
}

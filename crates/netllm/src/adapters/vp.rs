//! NetLLM adapter for viewport prediction (SL pipeline of DD-LRNA).
//!
//! Token layout per sample:
//! `[saliency patches | history-delta tokens | pw query tokens]`.
//! The multimodal encoder produces the first two groups (ViT-lite patches
//! and 1-D CNN per-step features); the query tokens are learned
//! placeholders, one per future step. The backbone runs once, the VP head
//! maps the hidden states at the query positions to per-step viewport
//! deltas — a complete, always-valid answer in a single inference.

use crate::adapt::{AdaptMode, LoraSpec};
use crate::backbone::InferenceSession;
use crate::heads::VpHead;
use crate::multimodal::{ImageEncoder, LearnedTokens, Projection, SeriesEncoder};
use crate::serving::{ServedTask, StepOutcome, StepPlan};
use nt_llm::zoo::LoadedLm;
use nt_llm::TinyLm;
use nt_nn::{clip_grad_norm, Adam, Fwd, ParamStore};
use nt_tensor::{NodeId, Rng, Tensor};
use nt_vp::{apply_deltas, to_deltas, Viewport, VpPredictor, VpSample, GRID};

/// One served VP request: a sample to answer and the prediction horizon.
/// VP is one-shot — a request is a complete question, so served slots
/// carry no episode state between ticks.
#[derive(Clone, Debug)]
pub struct VpQuery {
    pub sample: VpSample,
    pub pw: usize,
}

/// Served VP sessions are stateless between ticks (one-shot eval slots
/// that join, answer, and leave).
#[derive(Clone, Copy, Debug, Default)]
pub struct VpSlot;

/// Degrees per network unit (same convention as TRACK).
const DELTA_SCALE: f32 = 5.0;
const FEAT: usize = 24;

/// The adapted model.
pub struct NetLlmVp {
    pub lm: TinyLm,
    pub store: ParamStore,
    img_enc: ImageEncoder,
    vp_enc: SeriesEncoder,
    img_proj: Projection,
    vp_proj: Projection,
    queries: LearnedTokens,
    head: VpHead,
    pub max_pw: usize,
    pub mode: AdaptMode,
    /// KV-cached inference session (VP is single-shot per prediction, so the
    /// win here is the graph-free eval path: no tape, no parameter clones).
    session: InferenceSession,
}

impl NetLlmVp {
    /// Build from a backbone. `mode` selects the Fig-13 knowledge ablation;
    /// `lora` is ignored for [`AdaptMode::NoDomain`] (adapters disabled) and
    /// [`AdaptMode::NoPretrain`] (full training, no adapters needed).
    pub fn new(
        loaded: LoadedLm,
        mode: AdaptMode,
        lora: LoraSpec,
        max_pw: usize,
        seed: u64,
    ) -> Self {
        let LoadedLm { mut lm, mut store, .. } = loaded;
        let mut rng = Rng::seeded(seed);
        let d = lm.cfg.d_model;
        let img_enc = ImageEncoder::new(&mut store, "mm.img", GRID, 4, FEAT, &mut rng);
        let vp_enc = SeriesEncoder::new(&mut store, "mm.vp", 3, FEAT, 3, &mut rng);
        let img_proj = Projection::new(&mut store, "mm.img_to_tok", FEAT, d, &mut rng);
        let vp_proj = Projection::new(&mut store, "mm.vp_to_tok", FEAT, d, &mut rng);
        let queries = LearnedTokens::new(&mut store, "mm.vp_queries", max_pw, d, &mut rng);
        let head = VpHead::new(&mut store, d, &mut rng);
        mode.apply(&mut lm, &mut store, lora, &mut rng);
        let session = InferenceSession::new(&lm);
        NetLlmVp {
            lm,
            store,
            img_enc,
            vp_enc,
            img_proj,
            vp_proj,
            queries,
            head,
            max_pw,
            mode,
            session,
        }
    }

    /// History deltas as the `[3, t]` series the CNN encoder expects.
    fn history_series(sample: &VpSample) -> Tensor {
        let hist_deltas = to_deltas(&sample.history);
        let t = hist_deltas.len();
        let mut flat = Vec::with_capacity(3 * t);
        for c in 0..3 {
            for d in &hist_deltas {
                flat.push(d[c] / DELTA_SCALE);
            }
        }
        Tensor::from_vec([3, t], flat)
    }

    /// Build the token sequence and return the delta-prediction node
    /// `[pw, 3]` (network units).
    fn forward(&self, f: &mut Fwd, sample: &VpSample, pw: usize) -> NodeId {
        assert!(pw <= self.max_pw, "pw {pw} exceeds max_pw {}", self.max_pw);
        let series = Self::history_series(sample);
        let img_feats = self.img_enc.forward(f, &self.store, &sample.saliency);
        let img_tokens = self.img_proj.forward(f, &self.store, img_feats);
        let vp_feats = self.vp_enc.forward_steps(f, &self.store, &series);
        let vp_tokens = self.vp_proj.forward(f, &self.store, vp_feats);
        let q_idx: Vec<usize> = (0..pw).collect();
        let q_tokens = self.queries.get(f, &self.store, &q_idx);
        let tokens = f.g.concat(&[img_tokens, vp_tokens, q_tokens], 0);
        let hidden = self.lm.forward_embeddings(f, &self.store, tokens);
        let total = f.g.value(hidden).shape()[0];
        let query_hidden = f.g.narrow(hidden, 0, total - pw, pw);
        self.head.forward(f, &self.store, query_hidden)
    }

    /// Graph-free token build `[n, d]` for one query:
    /// `[saliency patches | history-delta tokens | pw query tokens]`.
    /// Shared by the single-stream eval path and the serving engine.
    fn query_tokens(&self, sample: &VpSample, pw: usize) -> Tensor {
        assert!(pw <= self.max_pw, "pw {pw} exceeds max_pw {}", self.max_pw);
        let st = &self.store;
        let series = Self::history_series(sample);
        let img_tokens = self.img_proj.eval(st, &self.img_enc.eval(st, &sample.saliency));
        let vp_tokens = self.vp_proj.eval(st, &self.vp_enc.eval_steps(st, &series));
        let q_idx: Vec<usize> = (0..pw).collect();
        let q_tokens = self.queries.eval(st, &q_idx);
        nt_tensor::concat(&[&img_tokens, &vp_tokens, &q_tokens], 0)
    }

    /// Graph-free prediction `[pw, 3]` (network-unit deltas) through the
    /// shared inference session. Public so equivalence gates can compare
    /// served answers against the unbatched path at the logits level.
    pub fn forward_eval(&mut self, sample: &VpSample, pw: usize) -> Tensor {
        let tokens = self.query_tokens(sample, pw);
        self.session.clear();
        let hidden = self.session.append(&self.lm, &self.store, &tokens);
        let total = hidden.shape()[0];
        self.head.eval(&self.store, &hidden.narrow(0, total - pw, pw))
    }

    /// Scale predicted deltas `[pw_model, 3]` back to degrees and extend
    /// them to `pw` steps (velocity hold, decayed) from the sample's last
    /// known viewport. Shared by [`VpPredictor::predict`] and the served
    /// path.
    fn deltas_to_viewports(sample: &VpSample, v: &Tensor, pw: usize) -> Vec<Viewport> {
        let pw_model = v.shape()[0];
        let mut deltas: Vec<[f32; 3]> = (0..pw_model)
            .map(|i| {
                [
                    v.at(&[i, 0]) * DELTA_SCALE,
                    v.at(&[i, 1]) * DELTA_SCALE,
                    v.at(&[i, 2]) * DELTA_SCALE,
                ]
            })
            .collect();
        // Horizons beyond max_pw: hold the final predicted velocity, decayed.
        while deltas.len() < pw {
            let mut last = *deltas.last().unwrap();
            for x in &mut last {
                *x *= 0.9;
            }
            deltas.push(last);
        }
        apply_deltas(sample.history.last().unwrap(), &deltas)
    }

    /// Supervised adaptation over extracted samples. Returns the mean loss
    /// of the final 20% of steps.
    pub fn adapt(&mut self, samples: &[VpSample], iters: usize, lr: f32, seed: u64) -> f32 {
        assert!(!samples.is_empty());
        let mut rng = Rng::seeded(seed);
        let mut opt = Adam::new(lr);
        let tail_start = iters - (iters / 5).max(1);
        let mut tail = 0.0f64;
        let mut tail_n = 0usize;
        for it in 0..iters {
            let s = &samples[rng.below(samples.len())];
            let mut full = vec![*s.history.last().unwrap()];
            full.extend_from_slice(&s.future);
            let targets = to_deltas(&full);
            let pw = targets.len().min(self.max_pw);
            let mut f = Fwd::train(seed ^ it as u64);
            let pred = self.forward(&mut f, s, pw);
            let mut tflat = Vec::with_capacity(pw * 3);
            for d in &targets[..pw] {
                tflat.extend(d.iter().map(|x| x / DELTA_SCALE));
            }
            let tgt = f.input(Tensor::from_vec([pw, 3], tflat));
            let loss = f.g.mse(pred, tgt);
            let lv = f.g.value(loss).item();
            if it >= tail_start {
                tail += lv as f64;
                tail_n += 1;
            }
            let mut grads = f.backward(loss);
            clip_grad_norm(&mut grads, 1.0);
            opt.step(&mut self.store, &grads);
        }
        (tail / tail_n.max(1) as f64) as f32
    }

    /// Peak training-step memory in bytes (tape activations + gradients +
    /// parameter training state) — the Fig 4 measurement.
    pub fn training_step_bytes(&self, sample: &VpSample, pw: usize) -> usize {
        let mut f = Fwd::train(0);
        let pred = self.forward(&mut f, sample, pw);
        let tgt = f.input(Tensor::zeros([pw, 3]));
        let loss = f.g.mse(pred, tgt);
        let _ = f.backward(loss);
        f.peak_bytes() + self.store.bytes_params() + self.store.bytes_training_state()
    }
}

/// VP behind the serving engine: one-shot eval slots. Every tick is a
/// complete question — [`StepPlan::reanchor`] always clears the slot's
/// session, the query tokens go through the shared batched backbone
/// step, and the head answers at the query positions. Slots typically
/// join, answer, and leave.
impl ServedTask for NetLlmVp {
    type Obs = VpQuery;
    type Action = Vec<Viewport>;
    type Slot = VpSlot;

    fn backbone(&self, _group: usize) -> (&TinyLm, &ParamStore) {
        (&self.lm, &self.store)
    }

    fn task_label(&self, _group: usize) -> &'static str {
        "vp"
    }

    fn new_slot(&self, _group: usize) -> VpSlot {
        VpSlot
    }

    fn plan_rows(
        &self,
        _slot: &VpSlot,
        obs: &VpQuery,
        _session: &InferenceSession,
    ) -> (usize, bool) {
        // `[saliency patches | history-delta tokens | pw query tokens]`,
        // always on a cleared session — countable without encoding.
        let pw = obs.pw.min(self.max_pw);
        let hist = obs.sample.history.len().saturating_sub(1);
        (self.img_enc.num_patches() + hist + pw, true)
    }

    fn rebuild_rows(&self, _slot: &VpSlot, _session: &InferenceSession) -> usize {
        // One-shot queries clear the session every step: nothing an
        // eviction could destroy is ever re-read, so VP victims are free.
        0
    }

    fn plan_step(
        &self,
        _slot: &mut VpSlot,
        obs: &VpQuery,
        _session: &InferenceSession,
    ) -> StepPlan {
        let pw = obs.pw.min(self.max_pw);
        StepPlan { tokens: self.query_tokens(&obs.sample, pw), reanchor: true }
    }

    fn settle_step(
        &self,
        _slot: &mut VpSlot,
        obs: &VpQuery,
        hidden: &Tensor,
    ) -> StepOutcome<Vec<Viewport>> {
        let pw = obs.pw.min(self.max_pw);
        let n = hidden.shape()[0];
        let v = self.head.eval(&self.store, &hidden.narrow(0, n - pw, pw));
        let action = Self::deltas_to_viewports(&obs.sample, &v, obs.pw);
        StepOutcome { action, logits: v.into_data(), rollback: None }
    }
}

impl VpPredictor for NetLlmVp {
    fn name(&self) -> &str {
        "NetLLM"
    }

    fn predict(&mut self, sample: &VpSample, pw: usize) -> Vec<Viewport> {
        let pw_model = pw.min(self.max_pw);
        let v = self.forward_eval(sample, pw_model);
        Self::deltas_to_viewports(sample, &v, pw)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nt_llm::{size_spec, Zoo};
    use nt_vp::{extract_samples, generate, jin2022_like, DatasetSpec};

    fn tiny_backbone() -> LoadedLm {
        let zoo = Zoo::new(std::env::temp_dir().join("netllm-vp-test"));
        zoo.build_random(&size_spec("0.35b-sim"))
    }

    fn samples() -> Vec<VpSample> {
        let ds = generate(&DatasetSpec { videos: 1, viewers: 2, secs: 20, ..jin2022_like() });
        extract_samples(&ds, &[0], &[0, 1], 10, 20, 5, 30)
    }

    #[test]
    fn predicts_valid_horizons() {
        let mut m = NetLlmVp::new(tiny_backbone(), AdaptMode::NoDomain, LoraSpec::default(), 30, 1);
        let ss = samples();
        let p = m.predict(&ss[0], 20);
        assert_eq!(p.len(), 20);
        for v in &p {
            assert!((-180.0..180.0).contains(&v[2]));
            assert!((-90.0..=90.0).contains(&v[1]));
        }
        // longer-than-max horizons extend gracefully
        assert_eq!(m.predict(&ss[0], 40).len(), 40);
    }

    #[test]
    fn eval_path_matches_taped_forward() {
        // The session-based prediction must equal the taped forward within
        // float tolerance for the same sample.
        let mut m = NetLlmVp::new(tiny_backbone(), AdaptMode::NoDomain, LoraSpec::default(), 20, 9);
        let ss = samples();
        for s in ss.iter().take(3) {
            let pw = 12;
            let mut f = Fwd::eval();
            let node = m.forward(&mut f, s, pw);
            let taped = f.g.value(node).clone();
            let evaled = m.forward_eval(s, pw);
            assert_eq!(taped.shape(), evaled.shape());
            for (a, b) in taped.data().iter().zip(evaled.data()) {
                assert!((a - b).abs() < 1e-5, "VP eval path diverged: {a} vs {b}");
            }
        }
    }

    #[test]
    fn adaptation_reduces_loss() {
        let mut m =
            NetLlmVp::new(tiny_backbone(), AdaptMode::FullKnowledge, LoraSpec::default(), 20, 2);
        let ss = samples();
        let early = m.adapt(&ss, 8, 1e-3, 7);
        let late = m.adapt(&ss, 40, 1e-3, 8);
        assert!(late < early * 1.2, "loss should not increase: {early} -> {late}");
    }

    #[test]
    fn lora_mode_trains_only_adapters_in_backbone() {
        let m =
            NetLlmVp::new(tiny_backbone(), AdaptMode::FullKnowledge, LoraSpec::default(), 20, 3);
        for id in m.store.ids() {
            let name = m.store.name(id);
            if name.starts_with("llm.") && m.store.is_trainable(id) {
                assert!(
                    name.contains("lora"),
                    "only LoRA params may train in the backbone, found {name}"
                );
            }
        }
    }

    #[test]
    fn no_pretrain_mode_trains_backbone_fully() {
        let m = NetLlmVp::new(tiny_backbone(), AdaptMode::NoPretrain, LoraSpec::default(), 20, 4);
        let trainable_backbone = m
            .store
            .ids()
            .filter(|&id| m.store.name(id).starts_with("llm.") && m.store.is_trainable(id))
            .count();
        assert!(trainable_backbone > 5, "NoPretrain must train the backbone");
    }
}

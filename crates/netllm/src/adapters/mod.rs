//! Per-task adapters: the glue between the NetLLM framework modules
//! (multimodal encoder, networking heads, DD-LRNA) and each use case.

pub mod abr;
pub mod cjs;
pub mod vp;

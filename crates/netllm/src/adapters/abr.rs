//! NetLLM adapter for ABR (data-driven RL pipeline of DD-LRNA, §4.3).
//!
//! Experiences are collected **once** with an existing policy (GENET by
//! default, as in the paper) and never refreshed. Each trajectory is the
//! return-conditioned sequence of Eq. (2):
//! `{R_t, s_t^throughput, s_t^delay, s_t^sizes, s_t^buffer, a_t}` — every
//! piece of state is treated as its own modality with its own encoder and
//! projection, exactly the paper's "process them separately".
//!
//! Training samples a context window of `w` steps (Eq. 3) and minimises
//! cross-entropy between the head's bitrate distribution at each state's
//! final token and the recorded action (Eq. 4). At inference the model is
//! prompted with a target return (the best behaviour-policy return in the
//! dataset, slightly stretched) and the return-to-go is decremented by the
//! realised per-chunk QoE.

use crate::adapt::{AdaptMode, LoraSpec};
use crate::backbone::InferenceSession;
use crate::heads::AbrHead;
use crate::multimodal::{LearnedTokens, Projection, ScalarEncoder, SeriesEncoder};
use crate::serving::{ServedTask, StepOutcome, StepPlan};
use nt_abr::{chunk_qoe, AbrObservation, AbrPolicy, QoeWeights};
use nt_llm::zoo::LoadedLm;
use nt_llm::TinyLm;
use nt_nn::{clip_grad_norm, Adam, Fwd, ParamStore};
use nt_tensor::{NodeId, Rng, Tensor};

const FEAT: usize = 24;
/// Tokens per trajectory step: return, throughput, delay, sizes, buffer, action.
pub(crate) const TOK_PER_STEP: usize = 6;
/// Reward scale: per-chunk QoE is divided by this before entering returns.
pub(crate) const R_SCALE: f64 = 5.0;

/// One step of recorded experience.
#[derive(Clone, Debug)]
pub struct AbrStep {
    pub thr_hist: Vec<f64>,
    pub delay_hist: Vec<f64>,
    pub next_sizes: Vec<f64>,
    pub buffer: f64,
    pub action: usize,
    pub reward: f64,
}

/// A full episode of experience.
#[derive(Clone, Debug, Default)]
pub struct AbrTrajectory {
    pub steps: Vec<AbrStep>,
}

impl AbrTrajectory {
    /// Scaled returns-to-go `R_t = sum_{i>=t} r_i / R_SCALE`.
    pub fn returns_to_go(&self) -> Vec<f32> {
        let mut out = vec![0.0f32; self.steps.len()];
        let mut acc = 0.0f64;
        for i in (0..self.steps.len()).rev() {
            acc += self.steps[i].reward / R_SCALE;
            out[i] = acc as f32;
        }
        out
    }

    pub fn total_return(&self) -> f64 {
        self.steps.iter().map(|s| s.reward).sum::<f64>() / R_SCALE
    }
}

/// Record experiences by wrapping any existing policy (the paper's
/// `RL_Collect` API, Fig 9).
pub struct AbrRecorder<'a> {
    pub inner: &'a mut dyn AbrPolicy,
    pub traj: AbrTrajectory,
    weights: QoeWeights,
    prev_bitrate: Option<f64>,
    prev_buffer: f64,
}

impl<'a> AbrRecorder<'a> {
    pub fn new(inner: &'a mut dyn AbrPolicy) -> Self {
        AbrRecorder {
            inner,
            traj: AbrTrajectory::default(),
            weights: QoeWeights::default(),
            prev_bitrate: None,
            prev_buffer: 0.0,
        }
    }
}

impl AbrPolicy for AbrRecorder<'_> {
    fn name(&self) -> &str {
        "recorder"
    }

    fn reset(&mut self) {
        self.inner.reset();
        self.prev_bitrate = None;
        self.prev_buffer = 0.0;
    }

    fn select(&mut self, obs: &AbrObservation) -> usize {
        // Settle the previous step's reward now that its outcome is visible.
        if let Some(prev) = self.traj.steps.last_mut() {
            let download = *obs.delay_hist.last().unwrap_or(&0.0);
            let rebuf =
                if obs.chunk_index <= 1 { 0.0 } else { (download - self.prev_buffer).max(0.0) };
            let br = obs.ladder_mbps[prev.action];
            prev.reward = chunk_qoe(&self.weights, br, rebuf, self.prev_bitrate);
            self.prev_bitrate = Some(br);
        }
        let a = self.inner.select(obs);
        self.prev_buffer = obs.buffer_secs;
        self.traj.steps.push(AbrStep {
            thr_hist: obs.throughput_hist.clone(),
            delay_hist: obs.delay_hist.clone(),
            next_sizes: obs.next_sizes.clone(),
            buffer: obs.buffer_secs,
            action: a,
            reward: 0.0, // settled on the next call (or left 0 for the final chunk)
        });
        a
    }
}

/// Mutable per-stream rollout state: everything one live video session
/// carries between chunks. [`NetLlmAbr`] owns one (its own single-stream
/// rollout); the serving engine owns one per slot so many streams can
/// share one model (`NetLlmAbr` is the [`ServedTask`] whose
/// [`ServedTask::Slot`] this is).
#[derive(Clone, Debug, Default)]
pub struct AbrEpisode {
    pub episode: AbrTrajectory,
    pub rtg_now: f32,
    pub prev_bitrate: Option<f64>,
    pub prev_buffer: f64,
    /// First episode step currently encoded in the KV session.
    pub anchor: usize,
}

impl AbrEpisode {
    /// Fresh episode prompted with `target_return`.
    pub fn fresh(target_return: f32) -> Self {
        AbrEpisode { rtg_now: target_return, ..Default::default() }
    }
}

/// The adapted ABR model.
pub struct NetLlmAbr {
    pub lm: TinyLm,
    pub store: ParamStore,
    rtg_enc: ScalarEncoder,
    thr_enc: SeriesEncoder,
    delay_enc: SeriesEncoder,
    sizes_enc: ScalarEncoder,
    buf_enc: ScalarEncoder,
    rtg_proj: Projection,
    thr_proj: Projection,
    delay_proj: Projection,
    sizes_proj: Projection,
    buf_proj: Projection,
    action_tokens: LearnedTokens,
    pub(crate) head: AbrHead,
    pub window: usize,
    pub mode: AdaptMode,
    /// Target return used to prompt the model at inference.
    pub target_return: f32,
    // ---- single-stream inference state ----
    ep: AbrEpisode,
    weights: QoeWeights,
    /// KV-cached inference session over the backbone; rollout steps append
    /// ~[`TOK_PER_STEP`] new tokens instead of re-encoding the window.
    session: InferenceSession,
    /// Action logits of the most recent [`AbrPolicy::select`] call (the
    /// equivalence tests compare these against the taped reference).
    last_logits: Vec<f32>,
}

impl NetLlmAbr {
    pub fn new(
        loaded: LoadedLm,
        mode: AdaptMode,
        lora: LoraSpec,
        window: usize,
        seed: u64,
    ) -> Self {
        let LoadedLm { mut lm, mut store, .. } = loaded;
        let mut rng = Rng::seeded(seed);
        let d = lm.cfg.d_model;
        assert!(window * TOK_PER_STEP <= lm.cfg.max_seq, "window too large for backbone");
        let rtg_enc = ScalarEncoder::new(&mut store, "mm.rtg", 1, FEAT, &mut rng);
        let thr_enc = SeriesEncoder::new(&mut store, "mm.thr", 1, FEAT, 3, &mut rng);
        let delay_enc = SeriesEncoder::new(&mut store, "mm.delay", 1, FEAT, 3, &mut rng);
        let sizes_enc = ScalarEncoder::new(&mut store, "mm.sizes", 6, FEAT, &mut rng);
        let buf_enc = ScalarEncoder::new(&mut store, "mm.buf", 1, FEAT, &mut rng);
        let rtg_proj = Projection::new(&mut store, "mm.rtg_tok", FEAT, d, &mut rng);
        let thr_proj = Projection::new(&mut store, "mm.thr_tok", FEAT, d, &mut rng);
        let delay_proj = Projection::new(&mut store, "mm.delay_tok", FEAT, d, &mut rng);
        let sizes_proj = Projection::new(&mut store, "mm.sizes_tok", FEAT, d, &mut rng);
        let buf_proj = Projection::new(&mut store, "mm.buf_tok", FEAT, d, &mut rng);
        let action_tokens = LearnedTokens::new(&mut store, "mm.abr_actions", 6, d, &mut rng);
        let head = AbrHead::new(&mut store, d, 6, &mut rng);
        mode.apply(&mut lm, &mut store, lora, &mut rng);
        let session = InferenceSession::new(&lm);
        NetLlmAbr {
            lm,
            store,
            rtg_enc,
            thr_enc,
            delay_enc,
            sizes_enc,
            buf_enc,
            rtg_proj,
            thr_proj,
            delay_proj,
            sizes_proj,
            buf_proj,
            action_tokens,
            head,
            window,
            mode,
            target_return: 0.0,
            ep: AbrEpisode::default(),
            weights: QoeWeights::default(),
            session,
            last_logits: Vec::new(),
        }
    }

    /// Tokenise window steps; the final step may omit its action token (at
    /// inference the action is what we are about to predict). Returns
    /// `(tokens [n, d], state-final token positions per step)`.
    fn tokenize(
        &self,
        f: &mut Fwd,
        steps: &[AbrStep],
        rtgs: &[f32],
        include_last_action: bool,
    ) -> (NodeId, Vec<usize>) {
        assert!(!steps.is_empty());
        let mut groups: Vec<NodeId> = Vec::new();
        let mut read_positions = Vec::with_capacity(steps.len());
        let mut pos = 0usize;
        for (i, s) in steps.iter().enumerate() {
            let rtg_feat =
                self.rtg_enc.forward(f, &self.store, &Tensor::from_vec([1, 1], vec![rtgs[i]]));
            groups.push(self.rtg_proj.forward(f, &self.store, rtg_feat));
            let thr = padded_series(&s.thr_hist, 8, 0.1);
            let thr_feat = self.thr_enc.forward_pooled(f, &self.store, &thr);
            groups.push(self.thr_proj.forward(f, &self.store, thr_feat));
            let dl = padded_series(&s.delay_hist, 8, 0.1);
            let dl_feat = self.delay_enc.forward_pooled(f, &self.store, &dl);
            groups.push(self.delay_proj.forward(f, &self.store, dl_feat));
            let sizes = Tensor::from_vec(
                [1, 6],
                (0..6)
                    .map(|r| s.next_sizes.get(r).map(|&x| (x / 20.0) as f32).unwrap_or(0.0))
                    .collect(),
            );
            let sz_feat = self.sizes_enc.forward(f, &self.store, &sizes);
            groups.push(self.sizes_proj.forward(f, &self.store, sz_feat));
            let buf_feat = self.buf_enc.forward(
                f,
                &self.store,
                &Tensor::from_vec([1, 1], vec![(s.buffer / 30.0) as f32]),
            );
            groups.push(self.buf_proj.forward(f, &self.store, buf_feat));
            pos += 5;
            read_positions.push(pos - 1); // the buffer token closes the state
            if i + 1 < steps.len() || include_last_action {
                groups.push(self.action_tokens.get(f, &self.store, &[s.action.min(5)]));
                pos += 1;
            }
        }
        (f.g.concat(&groups, 0), read_positions)
    }

    /// Action logits for every step in the window: `[w, 6]`.
    fn window_logits(
        &self,
        f: &mut Fwd,
        steps: &[AbrStep],
        rtgs: &[f32],
        include_last_action: bool,
    ) -> NodeId {
        let (tokens, reads) = self.tokenize(f, steps, rtgs, include_last_action);
        let hidden = self.lm.forward_embeddings(f, &self.store, tokens);
        let rows: Vec<NodeId> = reads.iter().map(|&p| f.g.narrow(hidden, 0, p, 1)).collect();
        let gathered = f.g.concat(&rows, 0); // [w, d]
        self.head.forward(f, &self.store, gathered)
    }

    /// Graph-free state tokens `[5, d]` for one step (same encoder math as
    /// [`NetLlmAbr::tokenize`], without the tape).
    pub(crate) fn state_tokens_eval(&self, s: &AbrStep, rtg: f32) -> Tensor {
        let st = &self.store;
        let rtg_feat = self.rtg_enc.eval(st, &Tensor::from_vec([1, 1], vec![rtg]));
        let rtg_tok = self.rtg_proj.eval(st, &rtg_feat);
        let thr_feat = self.thr_enc.eval_pooled(st, &padded_series(&s.thr_hist, 8, 0.1));
        let thr_tok = self.thr_proj.eval(st, &thr_feat);
        let dl_feat = self.delay_enc.eval_pooled(st, &padded_series(&s.delay_hist, 8, 0.1));
        let dl_tok = self.delay_proj.eval(st, &dl_feat);
        let sizes = Tensor::from_vec(
            [1, 6],
            (0..6)
                .map(|r| s.next_sizes.get(r).map(|&x| (x / 20.0) as f32).unwrap_or(0.0))
                .collect(),
        );
        let sz_tok = self.sizes_proj.eval(st, &self.sizes_enc.eval(st, &sizes));
        let buf = Tensor::from_vec([1, 1], vec![(s.buffer / 30.0) as f32]);
        let buf_tok = self.buf_proj.eval(st, &self.buf_enc.eval(st, &buf));
        nt_tensor::concat(&[&rtg_tok, &thr_tok, &dl_tok, &sz_tok, &buf_tok], 0)
    }

    fn action_token_eval(&self, action: usize) -> Tensor {
        self.action_tokens.eval(&self.store, &[action.min(5)])
    }

    /// Action logits of the most recent [`AbrPolicy::select`] call.
    pub fn last_logits(&self) -> &[f32] {
        &self.last_logits
    }

    /// Settle the previous chunk's realised QoE into the episode (the
    /// re-anchor rebuild reconstructs historical rtg prompts from these
    /// rewards), decrement the return-to-go (the DT inference rule), and
    /// push the new observation as a pending step. Shared verbatim by the
    /// single-stream [`AbrPolicy::select`] and the batched serving engine,
    /// so both paths stay step-for-step identical.
    pub(crate) fn settle_and_push(&self, ep: &mut AbrEpisode, obs: &AbrObservation) {
        if let Some(prev) = ep.episode.steps.last_mut() {
            let download = *obs.delay_hist.last().unwrap_or(&0.0);
            let rebuf =
                if obs.chunk_index <= 1 { 0.0 } else { (download - ep.prev_buffer).max(0.0) };
            let br = obs.ladder_mbps[prev.action];
            let r = chunk_qoe(&self.weights, br, rebuf, ep.prev_bitrate);
            prev.reward = r;
            ep.rtg_now -= (r / R_SCALE) as f32;
            ep.prev_bitrate = Some(br);
        }
        ep.prev_buffer = obs.buffer_secs;
        ep.episode.steps.push(AbrStep {
            thr_hist: obs.throughput_hist.clone(),
            delay_hist: obs.delay_hist.clone(),
            next_sizes: obs.next_sizes.clone(),
            buffer: obs.buffer_secs,
            action: 0, // filled once the head has spoken
            reward: 0.0,
        });
    }

    /// Build the token rows this step appends to the KV session, deciding
    /// between the incremental append (settled action token + new state)
    /// and a re-anchor rebuild of the last `window` steps. Returns the
    /// rows and whether the caller must clear its session first (the
    /// re-anchor case). `session_len`/`session_fits` describe the calling
    /// stream's KV session.
    pub(crate) fn step_tokens(
        &self,
        ep: &mut AbrEpisode,
        session_len: usize,
        session_fits: bool,
    ) -> (Tensor, bool) {
        let n = ep.episode.steps.len() - 1; // index of the current step
        let grown = n - ep.anchor >= 2 * self.window;
        if session_len > 0 && session_fits && !grown {
            let prev_action = ep.episode.steps[n - 1].action;
            let state = self.state_tokens_eval(&ep.episode.steps[n], ep.rtg_now);
            (nt_tensor::concat(&[&self.action_token_eval(prev_action), &state], 0), false)
        } else {
            // Fresh episode or full context: rebuild from the last
            // `window` steps, reconstructing their rtg prompts from the
            // realised rewards (identical values to when they were
            // current).
            let w = self.window.min(n + 1);
            ep.anchor = n + 1 - w;
            let mut rtgs = vec![ep.rtg_now; w];
            for k in (0..w - 1).rev() {
                let future_reward = ep.episode.steps[ep.anchor + k].reward / R_SCALE;
                rtgs[k] = rtgs[k + 1] + future_reward as f32;
            }
            let mut groups: Vec<Tensor> = Vec::with_capacity(2 * w);
            for (k, &rtg) in rtgs.iter().enumerate() {
                let step = &ep.episode.steps[ep.anchor + k];
                groups.push(self.state_tokens_eval(step, rtg));
                if k + 1 < w {
                    groups.push(self.action_token_eval(step.action));
                }
            }
            let refs: Vec<&Tensor> = groups.iter().collect();
            (nt_tensor::concat(&refs, 0), true)
        }
    }

    /// Data-driven adaptation over a fixed experience dataset (collected
    /// once — the key cost saving of Fig 3). Returns the tail-mean loss.
    pub fn adapt(&mut self, dataset: &[AbrTrajectory], iters: usize, lr: f32, seed: u64) -> f32 {
        assert!(!dataset.is_empty());
        let usable: Vec<&AbrTrajectory> = dataset.iter().filter(|t| t.steps.len() >= 2).collect();
        assert!(!usable.is_empty(), "trajectories too short");
        // Target return for inference: best behaviour return, stretched 10%.
        let best = usable.iter().map(|t| t.total_return()).fold(f64::MIN, f64::max);
        self.target_return = (best * 1.1) as f32;

        let mut rng = Rng::seeded(seed);
        let mut opt = Adam::new(lr);
        let tail_start = iters - (iters / 5).max(1);
        let (mut tail, mut tail_n) = (0.0f64, 0usize);
        for it in 0..iters {
            let traj = usable[rng.below(usable.len())];
            let rtgs = traj.returns_to_go();
            let w = self.window.min(traj.steps.len());
            let start = rng.below(traj.steps.len() - w + 1);
            let steps = &traj.steps[start..start + w];
            let rtg_slice = &rtgs[start..start + w];
            let actions: Vec<usize> = steps.iter().map(|s| s.action).collect();
            let mut f = Fwd::train(seed ^ it as u64);
            let logits = self.window_logits(&mut f, steps, rtg_slice, true);
            let loss = f.g.cross_entropy(logits, &actions);
            let lv = f.g.value(loss).item();
            if it >= tail_start {
                tail += lv as f64;
                tail_n += 1;
            }
            let mut grads = f.backward(loss);
            clip_grad_norm(&mut grads, 1.0);
            opt.step(&mut self.store, &grads);
        }
        (tail / tail_n.max(1) as f64) as f32
    }
}

fn padded_series(xs: &[f64], len: usize, scale: f64) -> Tensor {
    let mut v = vec![0.0f32; len];
    for (i, slot) in v.iter_mut().enumerate() {
        let idx = xs.len() as isize - len as isize + i as isize;
        if idx >= 0 {
            *slot = (xs[idx as usize] * scale) as f32;
        }
    }
    Tensor::from_vec([1, len], v)
}

/// ABR behind the serving engine: incremental decision-transformer steps.
/// [`ServedTask::plan_step`]/[`ServedTask::settle_step`] *are* the
/// single-stream [`AbrPolicy::select`] path (which routes through them),
/// so batched and unbatched rollouts stay step-for-step identical.
impl ServedTask for NetLlmAbr {
    type Obs = AbrObservation;
    type Action = usize;
    type Slot = AbrEpisode;

    fn backbone(&self, _group: usize) -> (&TinyLm, &ParamStore) {
        (&self.lm, &self.store)
    }

    fn task_label(&self, _group: usize) -> &'static str {
        "abr"
    }

    fn new_slot(&self, _group: usize) -> AbrEpisode {
        AbrEpisode::fresh(self.target_return)
    }

    fn plan_rows(
        &self,
        ep: &AbrEpisode,
        _obs: &AbrObservation,
        session: &InferenceSession,
    ) -> (usize, bool) {
        // Mirrors `settle_and_push` + `step_tokens` without mutating: the
        // incoming observation becomes step index `n = steps.len()`, so
        // the incremental append is a settled action token plus one state
        // (TOK_PER_STEP rows) and the re-anchor rebuild is `w` states with
        // `w - 1` action tokens between them. Exactness is pinned by
        // `plan_rows_matches_actual_plan` below.
        let n = ep.episode.steps.len();
        let grown = n - ep.anchor >= 2 * self.window;
        if !session.is_empty() && session.fits(TOK_PER_STEP) && !grown {
            (TOK_PER_STEP, false)
        } else {
            let w = self.window.min(n + 1);
            (w * TOK_PER_STEP - 1, true)
        }
    }

    fn rebuild_rows(&self, ep: &AbrEpisode, session: &InferenceSession) -> usize {
        // The eviction price, by the same `plan_rows` case split: when
        // the next step would re-anchor anyway (grown history, full or
        // empty context) the cache is dead weight — clearing it costs
        // nothing extra. Otherwise the rebuild replays `w` window states
        // where the intact path appends one (`plan_rows(cleared) -
        // plan_rows(intact)`, pinned exact in `tests/paged_serving.rs`).
        let n = ep.episode.steps.len();
        let grown = n - ep.anchor >= 2 * self.window;
        if session.is_empty() || !session.fits(TOK_PER_STEP) || grown {
            0
        } else {
            let w = self.window.min(n + 1);
            (w * TOK_PER_STEP - 1).saturating_sub(TOK_PER_STEP)
        }
    }

    fn plan_step(
        &self,
        ep: &mut AbrEpisode,
        obs: &AbrObservation,
        session: &InferenceSession,
    ) -> StepPlan {
        // The session holds tokens for steps `anchor..=n-1` (the last one
        // missing its action token, chosen after the fact). Append the
        // settled action plus the new step's state; re-anchor to the
        // training window when the context fills or the visible history
        // reaches twice the training window, so the train/inference
        // prompt-length mismatch stays bounded (see `backbone` docs).
        self.settle_and_push(ep, obs);
        let (tokens, reanchor) = self.step_tokens(ep, session.len(), session.fits(TOK_PER_STEP));
        StepPlan { tokens, reanchor }
    }

    fn settle_step(
        &self,
        ep: &mut AbrEpisode,
        _obs: &AbrObservation,
        hidden: &Tensor,
    ) -> StepOutcome<usize> {
        // The final appended row is the current step's state-closing token.
        let t_new = hidden.shape()[0];
        let logits = self.head.eval(&self.store, &hidden.narrow(0, t_new - 1, 1));
        let best = logits.argmax();
        ep.episode.steps.last_mut().unwrap().action = best;
        StepOutcome { action: best, logits: logits.into_data(), rollback: None }
    }
}

impl AbrPolicy for NetLlmAbr {
    fn name(&self) -> &str {
        "NetLLM"
    }

    fn reset(&mut self) {
        self.ep = AbrEpisode::fresh(self.target_return);
        self.session.clear();
    }

    fn select(&mut self, obs: &AbrObservation) -> usize {
        // KV-cached inference through the same ServedTask hooks the
        // batched engine drives — one slot, one model, zero divergence.
        let mut ep = std::mem::take(&mut self.ep);
        let plan = self.plan_step(&mut ep, obs, &self.session);
        if plan.reanchor {
            self.session.clear();
        }
        let hidden = self.session.append(&self.lm, &self.store, &plan.tokens);
        let out = self.settle_step(&mut ep, obs, &hidden);
        self.last_logits = out.logits;
        self.ep = ep;
        out.action
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nt_abr::{envivio_like, generate_set, run_session, Bba, SimConfig, TraceKind};
    use nt_llm::{size_spec, Zoo};

    fn backbone() -> LoadedLm {
        Zoo::new(std::env::temp_dir().join("netllm-abr-test")).build_random(&size_spec("0.35b-sim"))
    }

    fn collect(n: usize) -> Vec<AbrTrajectory> {
        let video = envivio_like(&mut Rng::seeded(1));
        let traces = generate_set(TraceKind::FccLike, n, 250, &mut Rng::seeded(2));
        let cfg = SimConfig::default();
        let w = QoeWeights::default();
        traces
            .iter()
            .map(|t| {
                let mut bba = Bba::default();
                let mut rec = AbrRecorder::new(&mut bba);
                run_session(&mut rec, &video, t, &cfg, &w);
                rec.traj
            })
            .collect()
    }

    #[test]
    fn recorder_captures_full_sessions_with_rewards() {
        let trajs = collect(2);
        for t in &trajs {
            assert_eq!(t.steps.len(), 48);
            // all but the final step have settled rewards
            let settled = t.steps[..47].iter().filter(|s| s.reward != 0.0).count();
            assert!(settled > 40, "rewards should settle, got {settled}");
        }
    }

    #[test]
    fn returns_to_go_are_decreasing_for_positive_rewards() {
        let mut traj = AbrTrajectory::default();
        for r in [1.0, 2.0, 3.0] {
            traj.steps.push(AbrStep {
                thr_hist: vec![],
                delay_hist: vec![],
                next_sizes: vec![1.0; 6],
                buffer: 10.0,
                action: 0,
                reward: r,
            });
        }
        let rtg = traj.returns_to_go();
        assert!(rtg[0] > rtg[1] && rtg[1] > rtg[2]);
        assert!((rtg[0] as f64 - 6.0 / R_SCALE).abs() < 1e-6);
    }

    #[test]
    fn adapted_model_streams_and_answers_are_valid() {
        let trajs = collect(2);
        let mut m = NetLlmAbr::new(backbone(), AdaptMode::FullKnowledge, LoraSpec::default(), 4, 3);
        m.adapt(&trajs, 6, 1e-3, 4);
        let video = envivio_like(&mut Rng::seeded(5));
        let traces = generate_set(TraceKind::FccLike, 1, 250, &mut Rng::seeded(6));
        let (stats, recs) =
            run_session(&mut m, &video, &traces[0], &SimConfig::default(), &QoeWeights::default());
        assert_eq!(recs.len(), 48);
        assert!(recs.iter().all(|r| r.rung < 6), "every answer must be a valid rung");
        assert!(stats.qoe_per_chunk.is_finite());
    }

    #[test]
    fn cached_rollout_matches_taped_window_forward() {
        // The session-based select() must match the taped reference forward
        // over the same token sequence at every step — including across the
        // 2x-window re-anchors (the replay mirrors select()'s anchor
        // bookkeeping).
        let window = 3;
        let mut m =
            NetLlmAbr::new(backbone(), AdaptMode::FullKnowledge, LoraSpec::default(), window, 11);
        m.target_return = 2.0;
        m.reset();
        let mut rng = Rng::seeded(12);
        let mut anchor = 0usize;
        for chunk in 0..10 {
            let obs = AbrObservation {
                throughput_hist: (0..8).map(|_| rng.uniform(0.5, 6.0) as f64).collect(),
                delay_hist: (0..8).map(|_| rng.uniform(0.5, 3.0) as f64).collect(),
                next_sizes: (0..6).map(|r| 0.5 + r as f64).collect(),
                buffer_secs: rng.uniform(2.0, 25.0) as f64,
                last_rung: (chunk > 0).then_some(0),
                remain_frac: 0.5,
                ladder_mbps: vec![0.3, 0.75, 1.2, 1.85, 2.85, 4.3],
                chunk_index: chunk,
            };
            let picked = m.select(&obs);
            // Mirror select()'s re-anchor rule to know the visible steps.
            let n = m.ep.episode.steps.len() - 1;
            if chunk == 0 || n - anchor >= 2 * window {
                anchor = n + 1 - window.min(n + 1);
            }
            let steps = &m.ep.episode.steps[anchor..];
            let w = steps.len();
            let mut rtgs = vec![m.ep.rtg_now; w];
            for k in (0..w - 1).rev() {
                rtgs[k] = rtgs[k + 1] + (steps[k].reward / R_SCALE) as f32;
            }
            let mut f = Fwd::eval();
            let logits = m.window_logits(&mut f, steps, &rtgs, false);
            let lv = f.g.value(logits);
            let reference = lv.row(lv.shape()[0] - 1);
            // Full logits equivalence, not just the argmax: the cached
            // session must encode the same rtg prompts as the reference.
            assert_eq!(m.last_logits.len(), reference.len());
            for (a, b) in m.last_logits.iter().zip(reference) {
                assert!(
                    (a - b).abs() < 1e-5,
                    "chunk {chunk}: cached logits diverged from taped path: {a} vs {b}"
                );
            }
            let ref_argmax = reference
                .iter()
                .enumerate()
                .max_by(|a, b| a.1.partial_cmp(b.1).unwrap())
                .unwrap()
                .0;
            assert_eq!(picked, ref_argmax, "chunk {chunk}: action diverged from taped path");
        }
        assert!(m.ep.anchor > 0, "probe should have re-anchored at least once");
    }

    #[test]
    fn long_episode_reanchors_within_context() {
        // 48-chunk sessions exceed the backbone context; the session must
        // re-anchor instead of overflowing, and answers stay valid rungs.
        let trajs = collect(1);
        let mut m = NetLlmAbr::new(backbone(), AdaptMode::NoDomain, LoraSpec::default(), 6, 13);
        m.adapt(&trajs, 4, 1e-3, 14);
        let video = envivio_like(&mut Rng::seeded(15));
        let traces = generate_set(TraceKind::FccLike, 1, 250, &mut Rng::seeded(16));
        let (_, recs) =
            run_session(&mut m, &video, &traces[0], &SimConfig::default(), &QoeWeights::default());
        assert_eq!(recs.len(), 48);
        assert!(recs.iter().all(|r| r.rung < 6));
        assert!(m.session.len() <= m.lm.cfg.max_seq);
    }

    #[test]
    fn adaptation_reduces_loss() {
        let trajs = collect(3);
        let mut m = NetLlmAbr::new(backbone(), AdaptMode::FullKnowledge, LoraSpec::default(), 4, 7);
        let early = m.adapt(&trajs, 6, 1e-3, 8);
        let late = m.adapt(&trajs, 80, 1e-3, 9);
        assert!(late < early, "imitation loss should drop: {early} -> {late}");
    }
}

//! NetLLM adapter for cluster job scheduling (data-driven RL, graph
//! modality).
//!
//! Experiences are collected once with an existing scheduler (Decima, as in
//! the paper). Each decision is return-conditioned; the state is the stage
//! DAG encoded by the GNN feature encoder. Token layout:
//!
//! ```text
//! history (w-1 steps):  [rtg_i, graph_i(pooled), action_i(cap)]
//! current step:         [rtg_t, graph_t(pooled), cand_1 .. cand_C]
//! ```
//!
//! The stage head scores the candidate token positions (guaranteeing the
//! chosen stage exists), the cap head reads the current pooled-graph
//! position. History actions are compressed to their cap embedding — the
//! stage choice's effect is already visible in the next graph snapshot.
//! This is the documented simplification of Eq. (2)'s full action
//! factorisation (see DESIGN.md).

use crate::adapt::{AdaptMode, LoraSpec};
use crate::backbone::InferenceSession;
use crate::heads::CjsHeads;
use crate::multimodal::{mean_rows, GraphEncoder, LearnedTokens, Projection, ScalarEncoder};
use crate::serving::{RollbackPlan, ServedTask, StepOutcome, StepPlan};
use nt_cjs::{snapshot, Decision, GraphSnapshot, SchedView, Scheduler, CAP_FRACS, NODE_FEATS};
use nt_llm::zoo::LoadedLm;
use nt_llm::TinyLm;
use nt_nn::{clip_grad_norm, Adam, Fwd, ParamStore};
use nt_tensor::{NodeId, Rng, Tensor};

const FEAT: usize = 24;
/// Cap on candidate tokens per decision (token-budget guard; beyond this
/// the earliest candidates are kept).
pub const MAX_CANDS: usize = 24;
/// Return scale.
const R_SCALE: f64 = 200.0;

/// One recorded scheduling decision.
#[derive(Clone, Debug)]
pub struct CjsStep {
    pub snap: GraphSnapshot,
    pub stage_choice: usize,
    pub cap_choice: usize,
    pub time: f64,
    /// Return-to-go (scaled), filled post-episode.
    pub rtg: f32,
}

/// One episode (workload run) of experience.
#[derive(Clone, Debug, Default)]
pub struct CjsTrajectory {
    pub steps: Vec<CjsStep>,
}

/// Collect one episode of experience with an existing scheduler.
pub fn collect_episode(
    scheduler: &mut dyn Scheduler,
    jobs: &[nt_cjs::Job],
    executors: usize,
) -> CjsTrajectory {
    let mut steps: Vec<CjsStep> = Vec::new();
    let stats = {
        let mut hook = |view: &SchedView, d: &Decision| {
            // Map the decision cap back onto the menu (closest fraction).
            let frac = d.cap as f64 / view.total_executors.max(1) as f64;
            let mut cap_choice = CAP_FRACS.len() - 1;
            for (i, &cf) in CAP_FRACS.iter().enumerate() {
                if frac <= cf {
                    cap_choice = i;
                    break;
                }
            }
            steps.push(CjsStep {
                snap: snapshot(view),
                stage_choice: d.candidate,
                cap_choice,
                time: view.now,
                rtg: 0.0,
            });
        };
        nt_cjs::run_workload(scheduler, jobs, executors, Some(&mut hook))
    };
    // Exact return-to-go of the active-jobs integral from each decision time.
    let finishes: Vec<f64> =
        jobs.iter().zip(&stats.jcts).map(|(j, &jct)| j.arrival + jct).collect();
    for s in &mut steps {
        let mut integral = 0.0f64;
        for (j, &fin) in jobs.iter().zip(&finishes) {
            integral += (fin - j.arrival.max(s.time)).max(0.0);
        }
        s.rtg = (-integral / R_SCALE) as f32;
    }
    CjsTrajectory { steps }
}

/// A self-contained scheduling observation: what [`NetLlmCjs`] needs to
/// make one decision, lifted out of the borrowed [`SchedView`] so served
/// sessions can carry it across ticks. [`CjsObs::from_view`] captures it
/// at decision time.
#[derive(Clone, Debug)]
pub struct CjsObs {
    /// Frozen stage-DAG snapshot (the GNN modality).
    pub snap: GraphSnapshot,
    /// Cluster clock at decision time.
    pub now: f64,
    /// Jobs currently arrived and incomplete (the return-to-go decrement
    /// integrates `active_jobs x elapsed`).
    pub active_jobs: usize,
    /// Executor budget the cap menu scales against.
    pub total_executors: usize,
}

impl CjsObs {
    /// Capture a decision-time observation from a live view.
    pub fn from_view(view: &SchedView) -> Self {
        CjsObs {
            snap: snapshot(view),
            now: view.now,
            active_jobs: view.jobs.iter().filter(|j| j.arrived && !j.completed).count(),
            total_executors: view.total_executors,
        }
    }
}

/// Mutable per-session rollout state: everything one live scheduling
/// session carries between decisions. [`NetLlmCjs`] owns one (its own
/// single-stream rollout); the serving engine owns one per slot
/// (`NetLlmCjs` is the [`ServedTask`] whose [`ServedTask::Slot`] this is).
#[derive(Clone, Debug, Default)]
pub struct CjsEpisode {
    /// Per-decision history: (rtg prompt, graph snapshot, cap choice).
    pub steps: Vec<(f32, GraphSnapshot, usize)>,
    pub rtg_now: f32,
    pub last_decision_time: f64,
    /// First episode entry currently encoded in the KV session.
    pub anchor: usize,
    /// Candidate count of the in-flight decision (set by `plan_step`,
    /// consumed by `settle_step`).
    pending_c: usize,
}

impl CjsEpisode {
    /// Fresh episode prompted with `target_return`.
    pub fn fresh(target_return: f32) -> Self {
        CjsEpisode { rtg_now: target_return, ..Default::default() }
    }
}

/// The adapted CJS model.
pub struct NetLlmCjs {
    pub lm: TinyLm,
    pub store: ParamStore,
    graph_enc: GraphEncoder,
    graph_proj: Projection,
    node_proj: Projection,
    rtg_enc: ScalarEncoder,
    rtg_proj: Projection,
    action_tokens: LearnedTokens,
    heads: CjsHeads,
    pub window: usize,
    pub mode: AdaptMode,
    pub target_return: f32,
    // ---- single-stream inference state ----
    ep: CjsEpisode,
    /// KV-cached inference session; holds `[rtg, graph, action]` triples for
    /// the encoded history. Candidate tokens are appended per decision and
    /// rolled back once the stage is chosen.
    session: InferenceSession,
    /// Stage + cap logits of the most recent decision (stage logits for
    /// the `c` candidates, then the cap-menu logits) — what the
    /// batched-vs-unbatched equivalence gates compare.
    last_logits: Vec<f32>,
}

impl NetLlmCjs {
    pub fn new(
        loaded: LoadedLm,
        mode: AdaptMode,
        lora: LoraSpec,
        window: usize,
        seed: u64,
    ) -> Self {
        let LoadedLm { mut lm, mut store, .. } = loaded;
        let mut rng = Rng::seeded(seed);
        let d = lm.cfg.d_model;
        assert!(
            (window - 1) * 3 + 2 + MAX_CANDS <= lm.cfg.max_seq,
            "window {window} + candidates exceed backbone max_seq"
        );
        let graph_enc = GraphEncoder::new(&mut store, "mm.dag", NODE_FEATS, FEAT, &mut rng);
        let graph_proj = Projection::new(&mut store, "mm.dag_tok", FEAT, d, &mut rng);
        let node_proj = Projection::new(&mut store, "mm.node_tok", FEAT, d, &mut rng);
        let rtg_enc = ScalarEncoder::new(&mut store, "mm.cjs_rtg", 1, FEAT, &mut rng);
        let rtg_proj = Projection::new(&mut store, "mm.cjs_rtg_tok", FEAT, d, &mut rng);
        let action_tokens =
            LearnedTokens::new(&mut store, "mm.cjs_actions", CAP_FRACS.len(), d, &mut rng);
        let heads = CjsHeads::new(&mut store, d, CAP_FRACS.len(), &mut rng);
        mode.apply(&mut lm, &mut store, lora, &mut rng);
        let session = InferenceSession::new(&lm);
        NetLlmCjs {
            lm,
            store,
            graph_enc,
            graph_proj,
            node_proj,
            rtg_enc,
            rtg_proj,
            action_tokens,
            heads,
            window,
            mode,
            target_return: 0.0,
            ep: CjsEpisode::default(),
            session,
            last_logits: Vec::new(),
        }
    }

    /// Stage + cap logits of the most recent decision (see the field
    /// docs for the layout).
    pub fn last_logits(&self) -> &[f32] {
        &self.last_logits
    }

    /// One scheduling decision over a captured observation — the
    /// single-stream path, routed through the same [`ServedTask`] hooks
    /// the batched serving engine drives (including the candidate-token
    /// rollback), so the two worlds are step-for-step identical.
    /// Panics when `obs.snap` has no candidates.
    pub fn decide_obs(&mut self, obs: &CjsObs) -> Decision {
        let mut ep = std::mem::take(&mut self.ep);
        let plan = self.plan_step(&mut ep, obs, &self.session);
        if plan.reanchor {
            self.session.clear();
        }
        let hidden = self.session.append(&self.lm, &self.store, &plan.tokens);
        let out = self.settle_step(&mut ep, obs, &hidden);
        if let Some(RollbackPlan { drop_rows, post_tokens }) = out.rollback {
            // The candidates are not part of the persistent history: roll
            // them back and complete the step's triple with its action
            // token.
            let keep = self.session.len() - drop_rows;
            self.session.truncate(keep);
            self.session.append(&self.lm, &self.store, &post_tokens);
        }
        self.last_logits = out.logits;
        self.ep = ep;
        out.action
    }

    /// Build tokens for a window ending at the current decision. Returns
    /// `(stage_logits [1, c], cap_logits [1, K])` where `c` is the
    /// (possibly truncated) candidate count.
    fn decision_logits(
        &self,
        f: &mut Fwd,
        history: &[(f32, GraphSnapshot, usize)],
        rtg_now: f32,
        snap: &GraphSnapshot,
    ) -> (NodeId, NodeId) {
        let mut groups: Vec<NodeId> = Vec::new();
        let mut pos = 0usize;
        for (rtg, hsnap, cap) in history {
            let rt = self.rtg_token(f, *rtg);
            groups.push(rt);
            let nodes = self.graph_enc.forward(f, &self.store, &hsnap.feats, &hsnap.adj);
            let pooled = f.g.mean_axis(nodes, 0);
            let pooled = f.g.reshape(pooled, [1, FEAT]);
            groups.push(self.graph_proj.forward(f, &self.store, pooled));
            groups.push(self.action_tokens.get(f, &self.store, &[*cap]));
            pos += 3;
        }
        let rt = self.rtg_token(f, rtg_now);
        groups.push(rt);
        let nodes = self.graph_enc.forward(f, &self.store, &snap.feats, &snap.adj);
        let pooled = f.g.mean_axis(nodes, 0);
        let pooled = f.g.reshape(pooled, [1, FEAT]);
        groups.push(self.graph_proj.forward(f, &self.store, pooled));
        let pooled_pos = pos + 1;
        let c = snap.candidates.len().min(MAX_CANDS);
        let cand_feats = f.g.rows(nodes, &snap.candidates[..c]);
        groups.push(self.node_proj.forward(f, &self.store, cand_feats));
        let first_cand = pos + 2;

        let tokens = f.g.concat(&groups, 0);
        let hidden = self.lm.forward_embeddings(f, &self.store, tokens);
        let cand_hidden = f.g.narrow(hidden, 0, first_cand, c);
        let stage_logits = self.heads.stage_logits(f, &self.store, cand_hidden);
        let pooled_hidden = f.g.narrow(hidden, 0, pooled_pos, 1);
        let cap_logits = self.heads.cap_logits(f, &self.store, pooled_hidden);
        (stage_logits, cap_logits)
    }

    fn rtg_token(&self, f: &mut Fwd, rtg: f32) -> NodeId {
        let feat = self.rtg_enc.forward(f, &self.store, &Tensor::from_vec([1, 1], vec![rtg]));
        self.rtg_proj.forward(f, &self.store, feat)
    }

    /// Graph-free `[1, d]` return-to-go token.
    fn rtg_token_eval(&self, rtg: f32) -> Tensor {
        let feat = self.rtg_enc.eval(&self.store, &Tensor::from_vec([1, 1], vec![rtg]));
        self.rtg_proj.eval(&self.store, &feat)
    }

    /// Graph-free per-node GNN features and the pooled graph token.
    /// Returns `(node_feats [n, FEAT], graph_token [1, d])`.
    fn graph_tokens_eval(&self, snap: &GraphSnapshot) -> (Tensor, Tensor) {
        let nodes = self.graph_enc.eval(&self.store, &snap.feats, &snap.adj);
        let pooled = mean_rows(&nodes);
        (nodes, self.graph_proj.eval(&self.store, &pooled))
    }

    /// Data-driven adaptation on collected trajectories.
    pub fn adapt(&mut self, dataset: &[CjsTrajectory], iters: usize, lr: f32, seed: u64) -> f32 {
        let usable: Vec<&CjsTrajectory> = dataset.iter().filter(|t| !t.steps.is_empty()).collect();
        assert!(!usable.is_empty(), "empty experience dataset");
        let best = usable
            .iter()
            .map(|t| t.steps.first().map(|s| s.rtg).unwrap_or(f32::MIN))
            .fold(f32::MIN, f32::max);
        self.target_return = best * 0.95; // returns are negative; 0.95 stretches toward 0

        let mut rng = Rng::seeded(seed);
        let mut opt = Adam::new(lr);
        let tail_start = iters - (iters / 5).max(1);
        let (mut tail, mut tail_n) = (0.0f64, 0usize);
        for it in 0..iters {
            let traj = usable[rng.below(usable.len())];
            let t = rng.below(traj.steps.len());
            let h0 = t.saturating_sub(self.window - 1);
            let history: Vec<(f32, GraphSnapshot, usize)> =
                traj.steps[h0..t].iter().map(|s| (s.rtg, s.snap.clone(), s.cap_choice)).collect();
            let step = &traj.steps[t];
            if step.snap.candidates.is_empty() || step.stage_choice >= MAX_CANDS {
                continue;
            }
            let mut f = Fwd::train(seed ^ it as u64);
            let (sl, cl) = self.decision_logits(&mut f, &history, step.rtg, &step.snap);
            let c = f.g.value(sl).shape()[1];
            if step.stage_choice >= c {
                continue;
            }
            let ls = f.g.cross_entropy(sl, &[step.stage_choice]);
            let lc = f.g.cross_entropy(cl, &[step.cap_choice]);
            let loss = f.g.add(ls, lc);
            let lv = f.g.value(loss).item();
            if it >= tail_start {
                tail += lv as f64;
                tail_n += 1;
            }
            let mut grads = f.backward(loss);
            clip_grad_norm(&mut grads, 1.0);
            opt.step(&mut self.store, &grads);
        }
        (tail / tail_n.max(1) as f64) as f32
    }
}

/// CJS behind the serving engine: decision-transformer steps whose
/// candidate tokens are rolled back out of the persistent history once
/// the stage is chosen — the [`RollbackPlan`] hook inside a batched step.
impl ServedTask for NetLlmCjs {
    type Obs = CjsObs;
    type Action = Decision;
    type Slot = CjsEpisode;

    fn backbone(&self, _group: usize) -> (&TinyLm, &ParamStore) {
        (&self.lm, &self.store)
    }

    fn task_label(&self, _group: usize) -> &'static str {
        "cjs"
    }

    fn new_slot(&self, _group: usize) -> CjsEpisode {
        CjsEpisode::fresh(self.target_return)
    }

    fn plan_rows(
        &self,
        ep: &CjsEpisode,
        obs: &CjsObs,
        session: &InferenceSession,
    ) -> (usize, bool) {
        // Mirrors `plan_step`'s re-anchor rule without mutating: a
        // decision appends `[rtg, graph, cand_1..c]` (2 + c rows), with
        // `3 x` history triples in front on a rebuild. The rollback pass
        // later shrinks the suffix (drops `c`, appends 1), so the plan
        // rows are the step's peak. Exactness is pinned by
        // `plan_rows_matches_actual_plan` below.
        let c = obs.snap.candidates.len().clamp(1, MAX_CANDS);
        let grown = ep.steps.len() - ep.anchor >= 2 * self.window;
        if session.is_empty() || !session.fits(2 + c + 1) || grown {
            let anchor = ep.steps.len().saturating_sub(self.window - 1);
            (3 * (ep.steps.len() - anchor) + 2 + c, true)
        } else {
            (2 + c, false)
        }
    }

    fn rebuild_rows(&self, ep: &CjsEpisode, session: &InferenceSession) -> usize {
        // The eviction price: the current decision's `2 + c` rows are
        // appended either way, so clearing the cache costs exactly the
        // `3 x` history triples a rebuild replays in front of them — and
        // nothing when the next step re-anchors regardless (grown
        // history or an already-empty cache). The context-full trigger
        // (`!fits(2 + c + 1)`) depends on the unknown next observation's
        // candidate count, so a session about to re-anchor on *that*
        // edge is priced at the full history — a conservative
        // over-estimate, which only demotes it in the victim scan.
        let grown = ep.steps.len() - ep.anchor >= 2 * self.window;
        if session.is_empty() || grown {
            0
        } else {
            let anchor = ep.steps.len().saturating_sub(self.window - 1);
            3 * (ep.steps.len() - anchor)
        }
    }

    fn plan_step(&self, ep: &mut CjsEpisode, obs: &CjsObs, session: &InferenceSession) -> StepPlan {
        let c = obs.snap.candidates.len().min(MAX_CANDS);
        assert!(c > 0, "CJS decision needs at least one candidate");
        // Decrement return-to-go by the realised cost since the last
        // decision: active jobs x elapsed time (cost is negative return).
        let dt = (obs.now - ep.last_decision_time).max(0.0);
        ep.rtg_now += (dt * obs.active_jobs as f64 / R_SCALE) as f32;
        ep.last_decision_time = obs.now;
        ep.pending_c = c;

        // The session holds `[rtg, graph, action]` triples for steps
        // `anchor..`. Re-anchor to the training window when the context
        // cannot take this decision's tokens (2 prompt rows + `c`
        // candidates + the action token appended after the rollback) or
        // the visible history reaches twice the training window, bounding
        // the train/inference prompt-length mismatch (see `backbone` docs).
        let grown = ep.steps.len() - ep.anchor >= 2 * self.window;
        let reanchor = session.is_empty() || !session.fits(2 + c + 1) || grown;
        let mut parts: Vec<Tensor> = Vec::new();
        if reanchor {
            ep.anchor = ep.steps.len().saturating_sub(self.window - 1);
            for (rtg, hsnap, cap) in &ep.steps[ep.anchor..] {
                parts.push(self.rtg_token_eval(*rtg));
                parts.push(self.graph_tokens_eval(hsnap).1);
                parts.push(self.action_tokens.eval(&self.store, &[*cap]));
            }
        }
        // Current decision: [rtg_t, graph_t, cand_1..c].
        parts.push(self.rtg_token_eval(ep.rtg_now));
        let (nodes, graph_tok) = self.graph_tokens_eval(&obs.snap);
        parts.push(graph_tok);
        parts.push(self.node_proj.eval(&self.store, &nodes.gather_rows(&obs.snap.candidates[..c])));
        let refs: Vec<&Tensor> = parts.iter().collect();
        StepPlan { tokens: nt_tensor::concat(&refs, 0), reanchor }
    }

    fn settle_step(
        &self,
        ep: &mut CjsEpisode,
        obs: &CjsObs,
        hidden: &Tensor,
    ) -> StepOutcome<Decision> {
        // The candidate rows close the append; the pooled-graph row sits
        // just before them (history rows may precede both after a
        // re-anchor rebuild).
        let c = ep.pending_c;
        let n = hidden.shape()[0];
        let stage_logits = self.heads.stage_logits_eval(&self.store, &hidden.narrow(0, n - c, c));
        let cap_logits = self.heads.cap_logits_eval(&self.store, &hidden.narrow(0, n - c - 1, 1));
        let stage = stage_logits.argmax();
        let cap_idx = cap_logits.argmax();
        let cap = (CAP_FRACS[cap_idx] * obs.total_executors as f64).ceil() as usize;
        ep.steps.push((ep.rtg_now, obs.snap.clone(), cap_idx));
        let mut logits = stage_logits.into_data();
        logits.extend_from_slice(cap_logits.data());
        StepOutcome {
            action: Decision { candidate: stage, cap: cap.max(1) },
            logits,
            rollback: Some(RollbackPlan {
                drop_rows: c,
                post_tokens: self.action_tokens.eval(&self.store, &[cap_idx]),
            }),
        }
    }
}

impl Scheduler for NetLlmCjs {
    fn name(&self) -> &str {
        "NetLLM"
    }

    fn reset(&mut self) {
        self.ep = CjsEpisode::fresh(self.target_return);
        self.session.clear();
    }

    fn decide(&mut self, view: &SchedView) -> Option<Decision> {
        if view.candidates.is_empty() {
            return None;
        }
        Some(self.decide_obs(&CjsObs::from_view(view)))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nt_cjs::{generate_workload, run_workload, Srpt, WorkloadConfig};
    use nt_llm::{size_spec, Zoo};

    fn backbone() -> LoadedLm {
        Zoo::new(std::env::temp_dir().join("netllm-cjs-test")).build_random(&size_spec("0.35b-sim"))
    }

    fn jobs(n: usize, seed: u64) -> Vec<nt_cjs::Job> {
        generate_workload(&WorkloadConfig { num_jobs: n, mean_interarrival: 1.5, seed })
    }

    #[test]
    fn collect_episode_fills_rtg_monotonically() {
        let w = jobs(6, 1);
        let traj = collect_episode(&mut Srpt, &w, 8);
        assert!(!traj.steps.is_empty());
        // Returns-to-go are negative and increase toward 0 over time.
        for win in traj.steps.windows(2) {
            assert!(win[0].rtg <= win[1].rtg + 1e-4);
        }
        assert!(traj.steps[0].rtg < 0.0);
    }

    #[test]
    fn adapted_model_schedules_complete_workloads() {
        let train = vec![
            collect_episode(&mut Srpt, &jobs(5, 2), 8),
            collect_episode(&mut Srpt, &jobs(5, 3), 8),
        ];
        let mut m = NetLlmCjs::new(backbone(), AdaptMode::FullKnowledge, LoraSpec::default(), 4, 4);
        m.adapt(&train, 8, 1e-3, 5);
        let test = jobs(6, 9);
        let stats = run_workload(&mut m, &test, 8, None);
        assert_eq!(stats.jcts.len(), 6);
        assert!(stats.mean_jct() > 0.0);
    }

    #[test]
    fn cached_decisions_match_taped_reference() {
        // Replay every recorded decision through the taped `decision_logits`
        // reference. The replay mirrors the session's re-anchor bookkeeping
        // (anchor index + token count), so the taped path sees the exact
        // token sequence the cached path saw — across re-anchors too.
        let mut m = NetLlmCjs::new(backbone(), AdaptMode::NoDomain, LoraSpec::default(), 8, 21);
        m.target_return = -1.0;
        let w = jobs(2, 22);
        // Record the stage choice of every decision as it is made (the
        // episode log only keeps the cap choice).
        let mut stages: Vec<usize> = Vec::new();
        let stats = {
            let mut hook = |_: &SchedView, d: &Decision| stages.push(d.candidate);
            run_workload(&mut m, &w, 6, Some(&mut hook))
        };
        assert_eq!(stats.jcts.len(), 2);
        let episode = m.ep.steps.clone();
        assert_eq!(stages.len(), episode.len());
        assert!(episode.len() > 2 * m.window, "probe should span at least one re-anchor");
        let max_tokens = m.lm.cfg.max_seq;
        let (mut anchor, mut len) = (0usize, 0usize);
        let mut checked = 0;
        for t in 0..episode.len() {
            let (rtg, snap, recorded_cap) = &episode[t];
            let c = snap.candidates.len().min(MAX_CANDS);
            if len == 0 || len + 2 + c + 1 > max_tokens || t - anchor >= 2 * m.window {
                anchor = t.saturating_sub(m.window - 1);
                len = 3 * (t - anchor);
            }
            len += 3;
            // Spot-check a few decisions (the taped forward is slow).
            if t % 17 == 0 {
                let history: Vec<(f32, GraphSnapshot, usize)> = episode[anchor..t].to_vec();
                let mut f = Fwd::eval();
                let (sl, cl) = m.decision_logits(&mut f, &history, *rtg, snap);
                assert_eq!(
                    f.g.value(sl).argmax(),
                    stages[t],
                    "decision {t} (anchor {anchor}): cached stage diverged from taped reference"
                );
                assert_eq!(
                    f.g.value(cl).argmax(),
                    *recorded_cap,
                    "decision {t} (anchor {anchor}): cached cap diverged from taped reference"
                );
                checked += 1;
            }
        }
        assert!(checked >= 3, "probe too short: only {checked} decisions checked");
    }

    #[test]
    fn adaptation_reduces_imitation_loss() {
        let train = vec![collect_episode(&mut Srpt, &jobs(6, 6), 8)];
        let mut m = NetLlmCjs::new(backbone(), AdaptMode::FullKnowledge, LoraSpec::default(), 4, 7);
        let early = m.adapt(&train, 6, 1e-3, 8);
        let late = m.adapt(&train, 30, 1e-3, 9);
        assert!(late < early, "loss should drop: {early} -> {late}");
    }
}

//! Prompt learning and token-based decoding — the "natural alternatives"
//! NetLLM is measured against in Figure 2 (§3, §A.1).
//!
//! A textual template wraps the time-series viewports (the image modality
//! cannot be expressed in a prompt at all — exactly the paper's first
//! objection). The LLM is fine-tuned with LoRA on next-token prediction of
//! the answer span, and at test time the answer is decoded token by token
//! and parsed back into viewports. Three things are measured:
//!
//! - prediction MAE (Fig 2 left: worse than the multimodal encoder),
//! - fraction of parseable/valid answers (Fig 2 middle: < 100 %),
//! - per-answer wall-clock generation time (Fig 2 right: one backbone
//!   inference *per token* instead of one per answer).
//!
//! Decoding runs through the backbone's shared KV-cached engine
//! ([`TinyLm::generate`]), so each of those per-token inferences appends a
//! single position instead of re-running the prompt — the inference *count*
//! the figure reports is unchanged, only the per-inference cost shrank.

use crate::adapt::LoraSpec;
use nt_llm::zoo::LoadedLm;
use nt_llm::{TinyLm, Tokenizer, EOS};
use nt_nn::{clip_grad_norm, Adam, Fwd, ParamStore};
use nt_tensor::Rng;
use nt_vp::{Viewport, VpSample};
use std::time::{Duration, Instant};

/// Fixed number of history/future samples in the §A.1 template (1 s at 5 Hz).
pub const PROMPT_STEPS: usize = 5;

/// Render the §A.1 prompt for a sample: `h:r,p,y;...;f:`.
pub fn render_prompt(history: &[Viewport]) -> String {
    let tail = &history[history.len().saturating_sub(PROMPT_STEPS)..];
    let mut s = String::from("h:");
    for v in tail {
        s.push_str(&format!(
            "{},{},{};",
            v[0].round() as i32,
            v[1].round() as i32,
            v[2].round() as i32
        ));
    }
    s.push_str("f:");
    s
}

/// Render the expected answer span for the future horizon.
pub fn render_answer(future: &[Viewport]) -> String {
    let mut s = String::new();
    for v in &future[..PROMPT_STEPS.min(future.len())] {
        s.push_str(&format!(
            "{},{},{};",
            v[0].round() as i32,
            v[1].round() as i32,
            v[2].round() as i32
        ));
    }
    s
}

/// Parse a generated answer back into viewports. Returns `None` when the
/// text is not a fully valid answer (wrong arity, unparseable numbers, or
/// out-of-range coordinates) — the hallucination cases of Fig 2 (middle).
pub fn parse_answer(text: &str) -> Option<Vec<Viewport>> {
    let mut out = Vec::new();
    for group in text.split(';') {
        if group.is_empty() {
            continue;
        }
        let parts: Vec<&str> = group.split(',').collect();
        if parts.len() != 3 {
            return None;
        }
        let mut v = [0.0f32; 3];
        for (i, p) in parts.iter().enumerate() {
            v[i] = p.trim().parse::<f32>().ok()?;
        }
        if !(-45.0..=45.0).contains(&v[0])
            || !(-90.0..=90.0).contains(&v[1])
            || !(-180.0..180.0).contains(&v[2])
        {
            return None;
        }
        out.push(v);
        if out.len() == PROMPT_STEPS {
            break;
        }
    }
    (out.len() == PROMPT_STEPS).then_some(out)
}

/// The prompt-learning adapted model.
pub struct PromptVp {
    pub lm: TinyLm,
    pub store: ParamStore,
    pub tok: Tokenizer,
    /// Sampling temperature at decode time.
    pub temperature: f32,
}

impl PromptVp {
    /// Wrap a backbone for prompt learning. The whole model fine-tunes
    /// (following the paper's §A.1 OpenPrompt setup, which tunes the LM on
    /// the templated data); `lora.rank == 0` is reserved/ignored.
    pub fn new(loaded: LoadedLm, _lora: LoraSpec, seed: u64) -> Self {
        let LoadedLm { lm, store, tok, .. } = loaded;
        let _ = Rng::seeded(seed);
        PromptVp { lm, store, tok, temperature: 0.6 }
    }

    /// Fine-tune on (prompt, answer) pairs; the loss covers only the answer
    /// span (standard instruction-tuning masking).
    pub fn adapt(&mut self, samples: &[VpSample], iters: usize, lr: f32, seed: u64) -> f32 {
        assert!(!samples.is_empty());
        let mut rng = Rng::seeded(seed);
        let mut opt = Adam::new(lr);
        let tail_start = iters - (iters / 5).max(1);
        let (mut tail, mut tail_n) = (0.0f64, 0usize);
        for it in 0..iters {
            let s = &samples[rng.below(samples.len())];
            let prompt = render_prompt(&s.history);
            let answer = render_answer(&s.future);
            let mut ids = self.tok.encode(&prompt);
            let prompt_len = ids.len();
            ids.extend(self.tok.encode(&answer));
            ids.push(EOS);
            if ids.len() > self.lm.cfg.max_seq {
                continue;
            }
            let mut f = Fwd::train(seed ^ it as u64);
            let logits = self.lm.forward_logits(&mut f, &self.store, &ids[..ids.len() - 1]);
            // Positions prompt_len-1 .. end predict the answer tokens.
            let span = ids.len() - prompt_len;
            let answer_logits = f.g.narrow(logits, 0, prompt_len - 1, span);
            let targets: Vec<usize> = ids[prompt_len..].to_vec();
            let loss = f.g.cross_entropy(answer_logits, &targets);
            let lv = f.g.value(loss).item();
            if it >= tail_start {
                tail += lv as f64;
                tail_n += 1;
            }
            let mut grads = f.backward(loss);
            clip_grad_norm(&mut grads, 1.0);
            opt.step(&mut self.store, &grads);
        }
        (tail / tail_n.max(1) as f64) as f32
    }

    /// Token-decode one answer. Returns the parsed viewports (if valid), the
    /// number of backbone inferences and the wall-clock time.
    pub fn generate(
        &self,
        sample: &VpSample,
        rng: &mut Rng,
    ) -> (Option<Vec<Viewport>>, usize, Duration) {
        let prompt_ids = self.tok.encode(&render_prompt(&sample.history));
        let budget = self.lm.cfg.max_seq - prompt_ids.len() - 1;
        let start = Instant::now();
        let (out, inferences) =
            self.lm.generate(&self.store, &prompt_ids, budget.min(80), self.temperature, rng);
        let elapsed = start.elapsed();
        let text = self.tok.decode(&out);
        (parse_answer(&text), inferences, elapsed)
    }
}

/// Outcome of a token-pathway evaluation run (Fig 2 middle/right).
#[derive(Clone, Debug)]
pub struct TokenPathStats {
    pub total: usize,
    pub valid: usize,
    pub mean_inferences: f64,
    pub mean_latency: Duration,
    /// MAE over the valid answers only.
    pub mae_valid: f32,
}

/// Evaluate the token pathway over samples.
///
/// Invalid (unparseable/hallucinated) answers fall back to holding the last
/// observed viewport — the post-processing a deployed system would need —
/// so the prompt-learning MAE is finite even when validity is low. The
/// validity fraction itself is reported strictly.
pub fn evaluate_token_path(model: &PromptVp, samples: &[VpSample], seed: u64) -> TokenPathStats {
    let mut rng = Rng::seeded(seed);
    let mut valid = 0usize;
    let mut inf_sum = 0usize;
    let mut lat_sum = Duration::ZERO;
    let mut mae_sum = 0.0f64;
    for s in samples {
        let (parsed, inf, lat) = model.generate(s, &mut rng);
        inf_sum += inf;
        lat_sum += lat;
        let actual = &s.future[..PROMPT_STEPS.min(s.future.len())];
        match parsed {
            Some(vps) => {
                valid += 1;
                mae_sum += nt_vp::mae(&vps[..actual.len()], actual) as f64;
            }
            None => {
                let hold = vec![*s.history.last().unwrap(); actual.len()];
                mae_sum += nt_vp::mae(&hold, actual) as f64;
            }
        }
    }
    TokenPathStats {
        total: samples.len(),
        valid,
        mean_inferences: inf_sum as f64 / samples.len().max(1) as f64,
        mean_latency: lat_sum / samples.len().max(1) as u32,
        mae_valid: (mae_sum / samples.len().max(1) as f64) as f32,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nt_llm::{size_spec, Zoo};
    use nt_tensor::Tensor;
    use nt_vp::{extract_samples, generate, jin2022_like, DatasetSpec};

    #[test]
    fn prompt_roundtrip_parses() {
        let future: Vec<Viewport> =
            (0..5).map(|i| [1.0 + i as f32, -10.0, 150.0 + i as f32]).collect();
        let ans = render_answer(&future);
        let parsed = parse_answer(&ans).expect("well-formed answer must parse");
        assert_eq!(parsed.len(), 5);
        assert!((parsed[0][2] - 150.0).abs() < 0.5);
    }

    #[test]
    fn malformed_answers_are_rejected() {
        assert!(parse_answer("1,2;3,4,5;").is_none(), "wrong arity");
        assert!(parse_answer("a,b,c;1,2,3;1,2,3;1,2,3;1,2,3;").is_none(), "non-numeric");
        assert!(parse_answer("0,0,999;0,0,0;0,0,0;0,0,0;0,0,0;").is_none(), "out of range");
        assert!(parse_answer("1,2,3;").is_none(), "too few groups");
    }

    #[test]
    fn prompt_fits_backbone_context() {
        let tok = Tokenizer::new();
        let history: Vec<Viewport> = (0..5).map(|_| [-45.0, -90.0, -179.0]).collect();
        let p = render_prompt(&history);
        let a = render_answer(&history);
        assert!(tok.encode(&p).len() + tok.encode(&a).len() + 2 <= 160, "template too long");
    }

    #[test]
    fn token_path_counts_inferences_per_token() {
        let zoo = Zoo::new(std::env::temp_dir().join("prompt-test"));
        let model =
            PromptVp::new(zoo.build_random(&size_spec("0.35b-sim")), LoraSpec::default(), 1);
        let s = VpSample {
            history: (0..5).map(|i| [0.0, 0.0, i as f32]).collect(),
            future: (5..10).map(|i| [0.0, 0.0, i as f32]).collect(),
            saliency: Tensor::zeros([8, 8]),
        };
        let mut rng = Rng::seeded(2);
        let (_, inferences, _) = model.generate(&s, &mut rng);
        assert!(inferences > 1, "token decoding must need many inferences, got {inferences}");
    }

    #[test]
    fn short_finetune_reduces_answer_loss() {
        let ds = generate(&DatasetSpec { videos: 1, viewers: 2, secs: 20, ..jin2022_like() });
        let samples = extract_samples(&ds, &[0], &[0, 1], 5, 5, 5, 30);
        let zoo = Zoo::new(std::env::temp_dir().join("prompt-ft-test"));
        let mut model =
            PromptVp::new(zoo.build_random(&size_spec("0.35b-sim")), LoraSpec::default(), 3);
        let early = model.adapt(&samples, 5, 2e-3, 4);
        let late = model.adapt(&samples, 30, 2e-3, 5);
        assert!(late < early, "answer-span loss should drop: {early} -> {late}");
    }
}

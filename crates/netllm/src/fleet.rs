//! One fleet, three workloads: a heterogeneous [`ServedTask`] that puts
//! ABR, CJS and VP sessions behind the *same* serving engine (and, via
//! [`crate::ShardedServer`], the same sharded fleet).
//!
//! This is the paper's serving claim made concrete: one adapted-LLM
//! deployment answers bitrate decisions, scheduling decisions and
//! viewport predictions concurrently, the realistic mix of heterogeneous
//! flows a network actually carries. Each member task keeps its own
//! weights (the repo adapts one backbone per task), so the engine groups
//! a tick's slots by member: every same-member run in the batch shares a
//! stacked backbone GEMM, members never mix weights, and per-slot
//! semantics — ABR re-anchoring, CJS candidate rollback, VP one-shot
//! eval — are exactly the member's own [`ServedTask`] hooks, delegated.

use crate::adapters::abr::AbrEpisode;
use crate::adapters::cjs::{CjsEpisode, CjsObs};
use crate::adapters::vp::{VpQuery, VpSlot};
use crate::backbone::InferenceSession;
use crate::serving::{ServedTask, StepOutcome, StepPlan};
use crate::{NetLlmAbr, NetLlmCjs, NetLlmVp};
use nt_cjs::Decision;
use nt_llm::TinyLm;
use nt_nn::ParamStore;
use nt_tensor::Tensor;
use nt_vp::Viewport;

/// Backbone group of ABR sessions in a fleet.
pub const FLEET_ABR: usize = 0;
/// Backbone group of CJS sessions in a fleet.
pub const FLEET_CJS: usize = 1;
/// Backbone group of VP sessions in a fleet.
pub const FLEET_VP: usize = 2;

/// The three adapted models a fleet serves, borrowed for the serving
/// calls (weights stay owned by the caller, as with every served task).
pub struct NetLlmFleet<'m> {
    pub abr: &'m NetLlmAbr,
    pub cjs: &'m NetLlmCjs,
    pub vp: &'m NetLlmVp,
}

/// A tick observation for one fleet session (must match the slot's task).
#[derive(Clone, Debug)]
pub enum FleetObs {
    Abr(nt_abr::AbrObservation),
    Cjs(CjsObs),
    Vp(VpQuery),
}

impl From<nt_abr::AbrObservation> for FleetObs {
    fn from(o: nt_abr::AbrObservation) -> Self {
        FleetObs::Abr(o)
    }
}

impl From<CjsObs> for FleetObs {
    fn from(o: CjsObs) -> Self {
        FleetObs::Cjs(o)
    }
}

impl From<VpQuery> for FleetObs {
    fn from(o: VpQuery) -> Self {
        FleetObs::Vp(o)
    }
}

/// Per-session state of one fleet member.
pub enum FleetSlot {
    Abr(AbrEpisode),
    Cjs(CjsEpisode),
    Vp(VpSlot),
}

/// A fleet decision, tagged by member task.
#[derive(Clone, Debug)]
pub enum FleetAction {
    Abr(usize),
    Cjs(Decision),
    Vp(Vec<Viewport>),
}

impl FleetAction {
    /// The ABR bitrate rung (panics for other members).
    pub fn abr(self) -> usize {
        match self {
            FleetAction::Abr(a) => a,
            other => panic!("expected an ABR action, got {other:?}"),
        }
    }

    /// The CJS scheduling decision (panics for other members).
    pub fn cjs(self) -> Decision {
        match self {
            FleetAction::Cjs(d) => d,
            other => panic!("expected a CJS action, got {other:?}"),
        }
    }

    /// The VP viewport prediction (panics for other members).
    pub fn vp(self) -> Vec<Viewport> {
        match self {
            FleetAction::Vp(v) => v,
            other => panic!("expected a VP action, got {other:?}"),
        }
    }
}

impl ServedTask for NetLlmFleet<'_> {
    type Obs = FleetObs;
    type Action = FleetAction;
    type Slot = FleetSlot;

    fn groups(&self) -> usize {
        3
    }

    fn backbone(&self, group: usize) -> (&TinyLm, &ParamStore) {
        match group {
            FLEET_ABR => ServedTask::backbone(self.abr, 0),
            FLEET_CJS => ServedTask::backbone(self.cjs, 0),
            FLEET_VP => ServedTask::backbone(self.vp, 0),
            other => panic!("fleet has no group {other}"),
        }
    }

    fn task_label(&self, group: usize) -> &'static str {
        match group {
            FLEET_ABR => self.abr.task_label(0),
            FLEET_CJS => self.cjs.task_label(0),
            FLEET_VP => self.vp.task_label(0),
            other => panic!("fleet has no group {other}"),
        }
    }

    fn group_of(&self, slot: &FleetSlot) -> usize {
        match slot {
            FleetSlot::Abr(_) => FLEET_ABR,
            FleetSlot::Cjs(_) => FLEET_CJS,
            FleetSlot::Vp(_) => FLEET_VP,
        }
    }

    fn new_slot(&self, group: usize) -> FleetSlot {
        match group {
            FLEET_ABR => FleetSlot::Abr(self.abr.new_slot(0)),
            FLEET_CJS => FleetSlot::Cjs(self.cjs.new_slot(0)),
            FLEET_VP => FleetSlot::Vp(self.vp.new_slot(0)),
            other => panic!("fleet has no group {other}"),
        }
    }

    fn plan_rows(
        &self,
        slot: &FleetSlot,
        obs: &FleetObs,
        session: &InferenceSession,
    ) -> (usize, bool) {
        match (slot, obs) {
            (FleetSlot::Abr(ep), FleetObs::Abr(o)) => self.abr.plan_rows(ep, o, session),
            (FleetSlot::Cjs(ep), FleetObs::Cjs(o)) => self.cjs.plan_rows(ep, o, session),
            (FleetSlot::Vp(sl), FleetObs::Vp(o)) => self.vp.plan_rows(sl, o, session),
            _ => panic!("fleet observation does not match the session's task"),
        }
    }

    fn rebuild_rows(&self, slot: &FleetSlot, session: &InferenceSession) -> usize {
        match slot {
            FleetSlot::Abr(ep) => self.abr.rebuild_rows(ep, session),
            FleetSlot::Cjs(ep) => self.cjs.rebuild_rows(ep, session),
            FleetSlot::Vp(sl) => self.vp.rebuild_rows(sl, session),
        }
    }

    fn plan_step(
        &self,
        slot: &mut FleetSlot,
        obs: &FleetObs,
        session: &InferenceSession,
    ) -> StepPlan {
        match (slot, obs) {
            (FleetSlot::Abr(ep), FleetObs::Abr(o)) => self.abr.plan_step(ep, o, session),
            (FleetSlot::Cjs(ep), FleetObs::Cjs(o)) => self.cjs.plan_step(ep, o, session),
            (FleetSlot::Vp(sl), FleetObs::Vp(o)) => self.vp.plan_step(sl, o, session),
            _ => panic!("fleet observation does not match the session's task"),
        }
    }

    fn settle_step(
        &self,
        slot: &mut FleetSlot,
        obs: &FleetObs,
        hidden: &Tensor,
    ) -> StepOutcome<FleetAction> {
        match (slot, obs) {
            (FleetSlot::Abr(ep), FleetObs::Abr(o)) => {
                let out = self.abr.settle_step(ep, o, hidden);
                StepOutcome {
                    action: FleetAction::Abr(out.action),
                    logits: out.logits,
                    rollback: out.rollback,
                }
            }
            (FleetSlot::Cjs(ep), FleetObs::Cjs(o)) => {
                let out = self.cjs.settle_step(ep, o, hidden);
                StepOutcome {
                    action: FleetAction::Cjs(out.action),
                    logits: out.logits,
                    rollback: out.rollback,
                }
            }
            (FleetSlot::Vp(sl), FleetObs::Vp(o)) => {
                let out = self.vp.settle_step(sl, o, hidden);
                StepOutcome {
                    action: FleetAction::Vp(out.action),
                    logits: out.logits,
                    rollback: out.rollback,
                }
            }
            _ => panic!("fleet observation does not match the session's task"),
        }
    }
}

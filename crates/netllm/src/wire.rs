//! Versioned, length-prefixed wire protocol for the network ingress.
//!
//! This module is the byte layer of [`crate::ingress`]: every message a
//! client or server sends is one [`Frame`], encoded as
//!
//! ```text
//!   [ len: u32 LE ][ tag: u8 ][ payload: len-1 bytes ]
//!   └──────────────┴─────────────────────────────────┘
//!     length prefix   the frame body `len` covers
//! ```
//!
//! with every integer little-endian, floats as IEEE-754 bit patterns,
//! `Vec`s as a `u32` element count followed by the elements, and tensors
//! as a `u8` rank + `u32` dims + row-major `f32` data. The full layout
//! table lives in `docs/PROTOCOL.md`; the encoder and decoder here are
//! the normative implementation (round-tripped over every message type
//! in `tests/wire_proto.rs`).
//!
//! **Version negotiation.** The first frame on a connection must be
//! [`Frame::Hello`] carrying the client's speakable range; the server
//! answers [`Frame::HelloAck`] with the version the connection will use
//! (the highest both sides speak) or [`Frame::HelloReject`] with its own
//! range and closes. Nothing else may be sent before the ack — framing is
//! stable across versions, so even a rejected client can always parse the
//! reject.
//!
//! **Forward compatibility.** Frame tags split in two: tags `< 0x80` are
//! *core* — a receiver that does not know one must treat the connection
//! as broken ([`WireError::UnknownFrame`]); tags `>= 0x80` are
//! *extension* — a receiver that does not know one must skip the frame
//! silently ([`decode_frame`] returns `Ok(None)`). The telemetry scrape
//! frames ([`Frame::MetricsRequest`] / [`Frame::MetricsReport`] /
//! [`Frame::EventsRequest`] / [`Frame::EventsBatch`]) are the first real
//! users of the extension range: a build that predates them skips them
//! unharmed, which is exactly why they need no version bump. New core
//! frames still require a negotiated version bump.
//!
//! **Backpressure on the wire.** [`Frame::Busy`] is
//! [`crate::SubmitError`] made caller-visible: it returns the refusal
//! class and a `retry_after_ms` hint derived from the server's recent
//! tick duration, so remote load generators can pace themselves exactly
//! like in-process callers do with [`crate::SubmitRetry`].
//!
//! The payload types are the fleet's own ([`FleetObs`], [`FleetAction`]):
//! the wire serves the same heterogeneous ABR + CJS + VP mix as the
//! in-process front end, and multi-step ABR/CJS episodes stream as a
//! sequence of [`Frame::Submit`] → [`Frame::Completion`] exchanges over
//! one session (the `step` field orders the pushed completions).

use crate::adapters::cjs::CjsObs;
use crate::adapters::vp::VpQuery;
use crate::fleet::{FleetAction, FleetObs};
use crate::metrics::{
    FaultSnapshot, IngressSnapshot, LatencySnapshot, MetricsSnapshot, PoolDispatchSnapshot,
    ShardSnapshot,
};
use crate::telemetry::{EventKind, RefusalReason, SteerReason, TelemetryEvent};
use nt_abr::AbrObservation;
use nt_cjs::{Decision, GraphSnapshot};
use nt_tensor::Tensor;
use nt_vp::{Viewport, VpSample};
use std::io::{Read, Write};

/// Highest protocol version this build speaks.
pub const WIRE_VERSION: u16 = 1;
/// Lowest protocol version this build still accepts.
pub const MIN_WIRE_VERSION: u16 = 1;

/// Hard ceiling on one frame's length prefix: a malformed or hostile
/// length cannot make the receiver allocate unboundedly.
pub const MAX_FRAME_LEN: u32 = 64 << 20;

/// First tag of the extension (must-skip) range; tags below are core
/// (must-understand).
pub const EXTENSION_TAG_BASE: u8 = 0x80;

/// Why a frame could not be read or decoded.
#[derive(Debug)]
pub enum WireError {
    /// The stream ended inside a frame (or inside the length prefix).
    Truncated,
    /// A length prefix exceeded [`MAX_FRAME_LEN`] (or was zero).
    BadLength(u32),
    /// A core-range tag this build does not know.
    UnknownFrame(u8),
    /// The payload did not parse as its tag's layout.
    Malformed(&'static str),
    /// The peer's version range does not intersect ours.
    VersionUnsupported {
        /// Lowest version the peer offered.
        min: u16,
        /// Highest version the peer offered.
        max: u16,
    },
    /// Transport error underneath the framing.
    Io(std::io::Error),
}

impl std::fmt::Display for WireError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            WireError::Truncated => write!(f, "frame truncated"),
            WireError::BadLength(n) => write!(f, "bad frame length {n} (max {MAX_FRAME_LEN})"),
            WireError::UnknownFrame(t) => write!(f, "unknown core frame tag 0x{t:02x}"),
            WireError::Malformed(what) => write!(f, "malformed frame: {what}"),
            WireError::VersionUnsupported { min, max } => {
                write!(f, "no common protocol version (peer speaks {min}..={max}, we speak {MIN_WIRE_VERSION}..={WIRE_VERSION})")
            }
            WireError::Io(e) => write!(f, "transport error: {e}"),
        }
    }
}

impl std::error::Error for WireError {}

impl From<std::io::Error> for WireError {
    fn from(e: std::io::Error) -> Self {
        // An EOF mid-frame is a truncation, not a generic IO failure —
        // the distinction matters to the malformed-input tests.
        if e.kind() == std::io::ErrorKind::UnexpectedEof {
            WireError::Truncated
        } else {
            WireError::Io(e)
        }
    }
}

/// Why the server refused a [`Frame::Submit`] (the wire form of
/// [`crate::SubmitError`]).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum BusyReason {
    /// The session's shard queue is at its backpressure cap; a tick's
    /// drain frees space.
    QueueFull,
    /// The session's shard is Suspect; the health checker will revive it
    /// or re-admit the session on a survivor.
    ShardSuspect,
}

/// One protocol message. Client→server: `Hello`, `Join`, `Submit`,
/// `Leave`, `Bye`. Server→client: `HelloAck`, `HelloReject`, `Joined`,
/// `TicketGrant`, `Busy`, `Completion`, `Failed`, `LeaveAck`. The
/// direction split is convention, not enforcement — both sides share one
/// codec:
///
/// ```
/// use netllm::wire::{read_frame, write_frame, Frame};
///
/// let mut buf = Vec::new();
/// write_frame(&mut buf, &Frame::Join { group: 2 }).unwrap();
/// let Frame::Join { group } = read_frame(&mut buf.as_slice()).unwrap() else {
///     panic!("codec must roundtrip");
/// };
/// assert_eq!(group, 2);
/// ```
#[derive(Debug)]
pub enum Frame {
    /// Connection opener: the version range the client speaks.
    Hello {
        /// Highest version the client speaks.
        version: u16,
        /// Lowest version the client still accepts.
        min_version: u16,
    },
    /// Handshake accept: the version this connection will use.
    HelloAck {
        /// Negotiated version (highest both sides speak).
        version: u16,
    },
    /// Handshake refusal: the server's range, so the client can log a
    /// precise mismatch. The server closes after sending it.
    HelloReject {
        /// Lowest version the server accepts.
        min: u16,
        /// Highest version the server speaks.
        max: u16,
    },
    /// Open a session on one fleet backbone group
    /// ([`crate::FLEET_ABR`] / [`crate::FLEET_CJS`] / [`crate::FLEET_VP`]).
    Join {
        /// Backbone group to join.
        group: u32,
    },
    /// Session granted: the id every later frame references.
    Joined {
        /// Fleet-wide session id.
        session: u64,
        /// Shard the admission policy placed the session on (telemetry).
        shard: u32,
    },
    /// One observation for `session`'s next decision.
    Submit {
        /// Session to advance.
        session: u64,
        /// The observation (must match the session's group).
        obs: FleetObs,
    },
    /// Submission accepted: the ticket a [`Frame::Completion`] or
    /// [`Frame::Failed`] will later resolve. Grants are pushed in
    /// submission order per connection, so clients may pipeline submits.
    TicketGrant {
        /// Session the grant belongs to.
        session: u64,
        /// Ticket number ([`crate::Ticket`]).
        ticket: u64,
    },
    /// Submission refused — backpressure made caller-visible. Nothing
    /// was enqueued; re-submit the observation after the hinted delay.
    Busy {
        /// Session whose submit was refused.
        session: u64,
        /// Refusal class.
        reason: BusyReason,
        /// Pacing hint derived from the server's recent tick duration.
        retry_after_ms: u32,
    },
    /// A served decision, pushed to the submitting connection as soon as
    /// the tick that computed it completes (never polled).
    Completion {
        /// Resolved ticket.
        ticket: u64,
        /// Session the decision belongs to.
        session: u64,
        /// 0-based serve index within the session — orders the streamed
        /// steps of a multi-step (ABR/CJS) episode.
        step: u64,
        /// The decision.
        action: FleetAction,
        /// Head outputs of the step (the same floats the in-process
        /// caller reads via [`crate::ShardedServer::last_logits`]).
        logits: Vec<f32>,
    },
    /// A ticket resolved `Failed`: its observation was lost to a fault or
    /// a departing session and will never produce a completion. Terminal
    /// — the client re-submits if it still wants an answer.
    Failed {
        /// The failed ticket.
        ticket: u64,
        /// Session the ticket belonged to.
        session: u64,
    },
    /// Close `session`. Outstanding tickets resolve before the ack:
    /// already-served ones as [`Frame::Completion`], still-queued ones as
    /// [`Frame::Failed`] (the ingress leave contract — nothing vanishes).
    Leave {
        /// Session to close.
        session: u64,
    },
    /// `session` is closed; counts what the leave displaced.
    LeaveAck {
        /// The closed session.
        session: u64,
        /// Served-but-undelivered actions flushed before this ack.
        unpolled: u32,
        /// Queued arrivals whose tickets were failed by the leave.
        dropped: u32,
    },
    /// Graceful connection close (equivalent to a disconnect: every
    /// session of the connection is left, queued tickets fail).
    Bye,
    /// Telemetry scrape request (extension range): ask the server for one
    /// [`Frame::MetricsReport`]. Empty payload. A pre-telemetry server
    /// skips it (and the client times out) instead of erroring.
    MetricsRequest,
    /// Telemetry scrape answer (extension range): the full
    /// [`MetricsSnapshot`] — per-shard counters, phase histograms,
    /// latency histograms, fault totals, ingress counters.
    MetricsReport {
        /// The snapshot at scrape time.
        snapshot: MetricsSnapshot,
    },
    /// Event-journal drain request (extension range): everything resident
    /// at or after `since_seq` (see [`crate::telemetry::TelemetryRing::drain`]).
    EventsRequest {
        /// The reader's cursor (0 on the first drain).
        since_seq: u64,
    },
    /// Event-journal drain answer (extension range).
    EventsBatch {
        /// Pass as the next `since_seq` to continue where this stopped.
        next_seq: u64,
        /// Events in the requested range overwritten before the drain.
        dropped: u64,
        /// The resident events, in sequence order.
        events: Vec<TelemetryEvent>,
    },
}

// Core frame tags (stable; `docs/PROTOCOL.md` is the registry).
const TAG_HELLO: u8 = 0x01;
const TAG_HELLO_ACK: u8 = 0x02;
const TAG_HELLO_REJECT: u8 = 0x03;
const TAG_JOIN: u8 = 0x10;
const TAG_JOINED: u8 = 0x11;
const TAG_SUBMIT: u8 = 0x12;
const TAG_TICKET: u8 = 0x13;
const TAG_BUSY: u8 = 0x14;
const TAG_COMPLETION: u8 = 0x15;
const TAG_FAILED: u8 = 0x16;
const TAG_LEAVE: u8 = 0x17;
const TAG_LEAVE_ACK: u8 = 0x18;
const TAG_BYE: u8 = 0x1f;

// Extension frame tags (must-skip for builds that predate them).
const TAG_METRICS_REQUEST: u8 = 0x80;
const TAG_METRICS_REPORT: u8 = 0x81;
const TAG_EVENTS_REQUEST: u8 = 0x82;
const TAG_EVENTS_BATCH: u8 = 0x83;

// Payload sub-tags.
const OBS_ABR: u8 = 0;
const OBS_CJS: u8 = 1;
const OBS_VP: u8 = 2;
const ACT_ABR: u8 = 0;
const ACT_CJS: u8 = 1;
const ACT_VP: u8 = 2;
const BUSY_QUEUE_FULL: u8 = 0;
const BUSY_SUSPECT: u8 = 1;
const EV_TICK_SPAN: u8 = 0;
const EV_EVICTION: u8 = 1;
const EV_STEER: u8 = 2;
const EV_SHARD_DEAD: u8 = 3;
const EV_RECOVERY: u8 = 4;
const EV_BUSY: u8 = 5;

// ---- primitive writers --------------------------------------------------

fn put_u8(out: &mut Vec<u8>, v: u8) {
    out.push(v);
}

fn put_u16(out: &mut Vec<u8>, v: u16) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_u32(out: &mut Vec<u8>, v: u32) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_u64(out: &mut Vec<u8>, v: u64) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_usize(out: &mut Vec<u8>, v: usize) {
    put_u64(out, v as u64);
}

fn put_f32(out: &mut Vec<u8>, v: f32) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_f64(out: &mut Vec<u8>, v: f64) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_len(out: &mut Vec<u8>, n: usize) {
    assert!(n <= u32::MAX as usize, "sequence too long for the wire");
    put_u32(out, n as u32);
}

fn put_f64s(out: &mut Vec<u8>, xs: &[f64]) {
    put_len(out, xs.len());
    for &x in xs {
        put_f64(out, x);
    }
}

fn put_f32s(out: &mut Vec<u8>, xs: &[f32]) {
    put_len(out, xs.len());
    for &x in xs {
        put_f32(out, x);
    }
}

fn put_usizes(out: &mut Vec<u8>, xs: &[usize]) {
    put_len(out, xs.len());
    for &x in xs {
        put_usize(out, x);
    }
}

/// Tensor layout: rank (u8), dims (u32 each), then row-major `f32` data —
/// the element count is implied by the dims, so it cannot disagree.
fn put_tensor(out: &mut Vec<u8>, t: &Tensor) {
    let shape = t.shape();
    assert!(shape.len() <= u8::MAX as usize, "tensor rank too high for the wire");
    put_u8(out, shape.len() as u8);
    for &d in shape {
        assert!(d <= u32::MAX as usize, "tensor dim too large for the wire");
        put_u32(out, d as u32);
    }
    for &x in t.data() {
        put_f32(out, x);
    }
}

fn put_viewports(out: &mut Vec<u8>, vs: &[Viewport]) {
    put_len(out, vs.len());
    for v in vs {
        for &c in v {
            put_f32(out, c);
        }
    }
}

// ---- primitive readers --------------------------------------------------

/// Cursor over one frame's payload. Every read checks the remaining
/// length first, so a truncated or hostile payload fails cleanly instead
/// of panicking or over-allocating.
struct Reader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    fn new(buf: &'a [u8]) -> Self {
        Reader { buf, pos: 0 }
    }

    fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], WireError> {
        if self.remaining() < n {
            return Err(WireError::Truncated);
        }
        let s = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    fn u8(&mut self) -> Result<u8, WireError> {
        Ok(self.take(1)?[0])
    }

    fn u16(&mut self) -> Result<u16, WireError> {
        Ok(u16::from_le_bytes(self.take(2)?.try_into().unwrap()))
    }

    fn u32(&mut self) -> Result<u32, WireError> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }

    fn u64(&mut self) -> Result<u64, WireError> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }

    fn usize(&mut self) -> Result<usize, WireError> {
        let v = self.u64()?;
        usize::try_from(v).map_err(|_| WireError::Malformed("usize overflows this platform"))
    }

    fn f32(&mut self) -> Result<f32, WireError> {
        Ok(f32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }

    fn f64(&mut self) -> Result<f64, WireError> {
        Ok(f64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }

    /// Element count whose encoded body must still fit in the payload
    /// (`elem_bytes` per element) — a hostile count cannot force a huge
    /// allocation.
    fn seq_len(&mut self, elem_bytes: usize) -> Result<usize, WireError> {
        let n = self.u32()? as usize;
        if n.saturating_mul(elem_bytes) > self.remaining() {
            return Err(WireError::Malformed("sequence length exceeds payload"));
        }
        Ok(n)
    }

    fn f64s(&mut self) -> Result<Vec<f64>, WireError> {
        let n = self.seq_len(8)?;
        (0..n).map(|_| self.f64()).collect()
    }

    fn f32s(&mut self) -> Result<Vec<f32>, WireError> {
        let n = self.seq_len(4)?;
        (0..n).map(|_| self.f32()).collect()
    }

    fn usizes(&mut self) -> Result<Vec<usize>, WireError> {
        let n = self.seq_len(8)?;
        (0..n).map(|_| self.usize()).collect()
    }

    fn tensor(&mut self) -> Result<Tensor, WireError> {
        let rank = self.u8()? as usize;
        let mut shape = Vec::with_capacity(rank);
        let mut numel = 1usize;
        for _ in 0..rank {
            let d = self.u32()? as usize;
            numel = numel
                .checked_mul(d)
                .ok_or(WireError::Malformed("tensor element count overflows"))?;
            shape.push(d);
        }
        if numel.saturating_mul(4) > self.remaining() {
            return Err(WireError::Malformed("tensor data exceeds payload"));
        }
        let data = (0..numel).map(|_| self.f32()).collect::<Result<Vec<f32>, _>>()?;
        Ok(Tensor::from_vec(shape, data))
    }

    fn viewports(&mut self) -> Result<Vec<Viewport>, WireError> {
        let n = self.seq_len(12)?;
        (0..n)
            .map(|_| Ok([self.f32()?, self.f32()?, self.f32()?]))
            .collect::<Result<Vec<Viewport>, WireError>>()
    }

    /// Decoding must consume the payload exactly: trailing bytes mean the
    /// sender and receiver disagree about the layout.
    fn finish(self) -> Result<(), WireError> {
        if self.remaining() != 0 {
            return Err(WireError::Malformed("trailing bytes after payload"));
        }
        Ok(())
    }
}

// ---- observation / action codecs ---------------------------------------

fn put_obs(out: &mut Vec<u8>, obs: &FleetObs) {
    match obs {
        FleetObs::Abr(o) => {
            put_u8(out, OBS_ABR);
            put_f64s(out, &o.throughput_hist);
            put_f64s(out, &o.delay_hist);
            put_f64s(out, &o.next_sizes);
            put_f64(out, o.buffer_secs);
            match o.last_rung {
                Some(r) => {
                    put_u8(out, 1);
                    put_usize(out, r);
                }
                None => put_u8(out, 0),
            }
            put_f64(out, o.remain_frac);
            put_f64s(out, &o.ladder_mbps);
            put_usize(out, o.chunk_index);
        }
        FleetObs::Cjs(o) => {
            put_u8(out, OBS_CJS);
            put_usize(out, o.snap.n);
            put_tensor(out, &o.snap.feats);
            put_tensor(out, &o.snap.adj);
            put_usizes(out, &o.snap.candidates);
            put_f32(out, o.snap.free_frac);
            put_f64(out, o.now);
            put_usize(out, o.active_jobs);
            put_usize(out, o.total_executors);
        }
        FleetObs::Vp(o) => {
            put_u8(out, OBS_VP);
            put_viewports(out, &o.sample.history);
            put_viewports(out, &o.sample.future);
            put_tensor(out, &o.sample.saliency);
            put_usize(out, o.pw);
        }
    }
}

fn read_obs(r: &mut Reader) -> Result<FleetObs, WireError> {
    match r.u8()? {
        OBS_ABR => {
            let throughput_hist = r.f64s()?;
            let delay_hist = r.f64s()?;
            let next_sizes = r.f64s()?;
            let buffer_secs = r.f64()?;
            let last_rung = match r.u8()? {
                0 => None,
                1 => Some(r.usize()?),
                _ => return Err(WireError::Malformed("bad Option tag")),
            };
            let remain_frac = r.f64()?;
            let ladder_mbps = r.f64s()?;
            let chunk_index = r.usize()?;
            Ok(FleetObs::Abr(AbrObservation {
                throughput_hist,
                delay_hist,
                next_sizes,
                buffer_secs,
                last_rung,
                remain_frac,
                ladder_mbps,
                chunk_index,
            }))
        }
        OBS_CJS => {
            let n = r.usize()?;
            let feats = r.tensor()?;
            let adj = r.tensor()?;
            let candidates = r.usizes()?;
            let free_frac = r.f32()?;
            let snap = GraphSnapshot { n, feats, adj, candidates, free_frac };
            let now = r.f64()?;
            let active_jobs = r.usize()?;
            let total_executors = r.usize()?;
            Ok(FleetObs::Cjs(CjsObs { snap, now, active_jobs, total_executors }))
        }
        OBS_VP => {
            let history = r.viewports()?;
            let future = r.viewports()?;
            let saliency = r.tensor()?;
            let pw = r.usize()?;
            Ok(FleetObs::Vp(VpQuery { sample: VpSample { history, future, saliency }, pw }))
        }
        _ => Err(WireError::Malformed("unknown observation tag")),
    }
}

fn put_action(out: &mut Vec<u8>, action: &FleetAction) {
    match action {
        FleetAction::Abr(rung) => {
            put_u8(out, ACT_ABR);
            put_usize(out, *rung);
        }
        FleetAction::Cjs(d) => {
            put_u8(out, ACT_CJS);
            put_usize(out, d.candidate);
            put_usize(out, d.cap);
        }
        FleetAction::Vp(vs) => {
            put_u8(out, ACT_VP);
            put_viewports(out, vs);
        }
    }
}

fn read_action(r: &mut Reader) -> Result<FleetAction, WireError> {
    match r.u8()? {
        ACT_ABR => Ok(FleetAction::Abr(r.usize()?)),
        ACT_CJS => {
            let candidate = r.usize()?;
            let cap = r.usize()?;
            Ok(FleetAction::Cjs(Decision { candidate, cap }))
        }
        ACT_VP => Ok(FleetAction::Vp(r.viewports()?)),
        _ => Err(WireError::Malformed("unknown action tag")),
    }
}

// ---- telemetry codecs ---------------------------------------------------

fn put_str(out: &mut Vec<u8>, s: &str) {
    put_len(out, s.len());
    out.extend_from_slice(s.as_bytes());
}

fn put_latency(out: &mut Vec<u8>, l: &LatencySnapshot) {
    put_u64(out, l.count);
    put_u64(out, l.total_ns);
    put_u64(out, l.max_ns);
    put_len(out, l.buckets.len());
    for &b in &l.buckets {
        put_u64(out, b);
    }
}

fn put_snapshot(out: &mut Vec<u8>, m: &MetricsSnapshot) {
    put_len(out, m.shards.len());
    for s in &m.shards {
        put_u64(out, s.served);
        put_u64(out, s.steered);
        put_u64(out, s.steered_in);
        put_u64(out, s.evicted);
        put_u64(out, s.evicted_rebuild_rows);
        put_u64(out, s.queue_depth);
        put_u64(out, s.held_pages);
    }
    put_u64(out, m.pool.workers);
    put_u64(out, m.pool.dispatches);
    put_u64(out, m.pool.tasks);
    put_u64(out, m.faults.shard_kills);
    put_u64(out, m.faults.sessions_recovered);
    put_u64(out, m.faults.tickets_failed);
    put_u64(out, m.faults.arrivals_requeued);
    put_u64(out, m.faults.recovery_replay_rows);
    put_latency(out, &m.ingress_latency);
    put_len(out, m.shard_phases.len());
    for phases in &m.shard_phases {
        put_len(out, phases.len());
        for p in phases {
            put_latency(out, p);
        }
    }
    put_len(out, m.shard_latency.len());
    for l in &m.shard_latency {
        put_latency(out, l);
    }
    put_len(out, m.served_by_label.len());
    for (label, n) in &m.served_by_label {
        put_str(out, label);
        put_u64(out, *n);
    }
    put_u64(out, m.ingress.connections);
    put_u64(out, m.ingress.sessions_joined);
    put_u64(out, m.ingress.submits);
    put_u64(out, m.ingress.busy);
    put_u64(out, m.ingress.completions);
    put_u64(out, m.ingress.failed);
    put_u64(out, m.ingress.failed_on_disconnect);
    put_u64(out, m.ingress.protocol_errors);
    put_u64(out, m.ingress.ticks);
    put_u64(out, m.pool_free_pages);
}

fn put_event(out: &mut Vec<u8>, e: &TelemetryEvent) {
    put_u64(out, e.seq);
    put_u64(out, e.clock);
    match e.kind {
        EventKind::TickSpan { shard, served, span_ns } => {
            put_u8(out, EV_TICK_SPAN);
            put_u32(out, shard);
            put_u32(out, served);
            put_u64(out, span_ns);
        }
        EventKind::Eviction { shard, session, rebuild_rows } => {
            put_u8(out, EV_EVICTION);
            put_u32(out, shard);
            put_u64(out, session);
            put_u64(out, rebuild_rows);
        }
        EventKind::Steer { src, dst, session, reason } => {
            put_u8(out, EV_STEER);
            put_u32(out, src);
            put_u32(out, dst);
            put_u64(out, session);
            put_u8(out, reason as u8);
        }
        EventKind::ShardDead { shard } => {
            put_u8(out, EV_SHARD_DEAD);
            put_u32(out, shard);
        }
        EventKind::Recovery { shard, sessions, replay_rows } => {
            put_u8(out, EV_RECOVERY);
            put_u32(out, shard);
            put_u32(out, sessions);
            put_u64(out, replay_rows);
        }
        EventKind::Busy { session, reason } => {
            put_u8(out, EV_BUSY);
            put_u64(out, session);
            put_u8(out, reason as u8);
        }
    }
}

impl<'a> Reader<'a> {
    fn string(&mut self) -> Result<String, WireError> {
        let n = self.seq_len(1)?;
        String::from_utf8(self.take(n)?.to_vec())
            .map_err(|_| WireError::Malformed("label is not UTF-8"))
    }

    fn latency(&mut self) -> Result<LatencySnapshot, WireError> {
        let count = self.u64()?;
        let total_ns = self.u64()?;
        let max_ns = self.u64()?;
        let n = self.seq_len(8)?;
        let buckets = (0..n).map(|_| self.u64()).collect::<Result<Vec<u64>, _>>()?;
        Ok(LatencySnapshot { count, total_ns, max_ns, buckets })
    }

    fn snapshot(&mut self) -> Result<MetricsSnapshot, WireError> {
        // Minimum encoded sizes bound every count the payload claims, so
        // a hostile length cannot force a huge allocation.
        let n = self.seq_len(56)?;
        let shards = (0..n)
            .map(|_| {
                Ok(ShardSnapshot {
                    served: self.u64()?,
                    steered: self.u64()?,
                    steered_in: self.u64()?,
                    evicted: self.u64()?,
                    evicted_rebuild_rows: self.u64()?,
                    queue_depth: self.u64()?,
                    held_pages: self.u64()?,
                })
            })
            .collect::<Result<Vec<ShardSnapshot>, WireError>>()?;
        let pool = PoolDispatchSnapshot {
            workers: self.u64()?,
            dispatches: self.u64()?,
            tasks: self.u64()?,
        };
        let faults = FaultSnapshot {
            shard_kills: self.u64()?,
            sessions_recovered: self.u64()?,
            tickets_failed: self.u64()?,
            arrivals_requeued: self.u64()?,
            recovery_replay_rows: self.u64()?,
        };
        let ingress_latency = self.latency()?;
        let n = self.seq_len(4)?;
        let shard_phases = (0..n)
            .map(|_| {
                let k = self.seq_len(28)?;
                (0..k).map(|_| self.latency()).collect::<Result<Vec<LatencySnapshot>, _>>()
            })
            .collect::<Result<Vec<Vec<LatencySnapshot>>, WireError>>()?;
        let n = self.seq_len(28)?;
        let shard_latency =
            (0..n).map(|_| self.latency()).collect::<Result<Vec<LatencySnapshot>, _>>()?;
        let n = self.seq_len(12)?;
        let served_by_label = (0..n)
            .map(|_| Ok((self.string()?, self.u64()?)))
            .collect::<Result<Vec<(String, u64)>, WireError>>()?;
        let ingress = IngressSnapshot {
            connections: self.u64()?,
            sessions_joined: self.u64()?,
            submits: self.u64()?,
            busy: self.u64()?,
            completions: self.u64()?,
            failed: self.u64()?,
            failed_on_disconnect: self.u64()?,
            protocol_errors: self.u64()?,
            ticks: self.u64()?,
        };
        let pool_free_pages = self.u64()?;
        Ok(MetricsSnapshot {
            shards,
            pool,
            faults,
            ingress_latency,
            shard_phases,
            shard_latency,
            served_by_label,
            ingress,
            pool_free_pages,
        })
    }

    fn event(&mut self) -> Result<TelemetryEvent, WireError> {
        let seq = self.u64()?;
        let clock = self.u64()?;
        let kind = match self.u8()? {
            EV_TICK_SPAN => EventKind::TickSpan {
                shard: self.u32()?,
                served: self.u32()?,
                span_ns: self.u64()?,
            },
            EV_EVICTION => EventKind::Eviction {
                shard: self.u32()?,
                session: self.u64()?,
                rebuild_rows: self.u64()?,
            },
            EV_STEER => EventKind::Steer {
                src: self.u32()?,
                dst: self.u32()?,
                session: self.u64()?,
                reason: match self.u8()? {
                    0 => SteerReason::Rebalance,
                    1 => SteerReason::OverBudget,
                    2 => SteerReason::Manual,
                    _ => return Err(WireError::Malformed("unknown steer reason")),
                },
            },
            EV_SHARD_DEAD => EventKind::ShardDead { shard: self.u32()? },
            EV_RECOVERY => EventKind::Recovery {
                shard: self.u32()?,
                sessions: self.u32()?,
                replay_rows: self.u64()?,
            },
            EV_BUSY => EventKind::Busy {
                session: self.u64()?,
                reason: match self.u8()? {
                    0 => RefusalReason::QueueFull,
                    1 => RefusalReason::Suspect,
                    2 => RefusalReason::FairnessCap,
                    _ => return Err(WireError::Malformed("unknown refusal reason")),
                },
            },
            _ => return Err(WireError::Malformed("unknown event kind")),
        };
        Ok(TelemetryEvent { seq, clock, kind })
    }
}

// ---- frame codec --------------------------------------------------------

/// Encode one frame as its full wire image (length prefix included).
pub fn encode_frame(frame: &Frame) -> Vec<u8> {
    let mut body = Vec::with_capacity(64);
    match frame {
        Frame::Hello { version, min_version } => {
            put_u8(&mut body, TAG_HELLO);
            put_u16(&mut body, *version);
            put_u16(&mut body, *min_version);
        }
        Frame::HelloAck { version } => {
            put_u8(&mut body, TAG_HELLO_ACK);
            put_u16(&mut body, *version);
        }
        Frame::HelloReject { min, max } => {
            put_u8(&mut body, TAG_HELLO_REJECT);
            put_u16(&mut body, *min);
            put_u16(&mut body, *max);
        }
        Frame::Join { group } => {
            put_u8(&mut body, TAG_JOIN);
            put_u32(&mut body, *group);
        }
        Frame::Joined { session, shard } => {
            put_u8(&mut body, TAG_JOINED);
            put_u64(&mut body, *session);
            put_u32(&mut body, *shard);
        }
        Frame::Submit { session, obs } => {
            put_u8(&mut body, TAG_SUBMIT);
            put_u64(&mut body, *session);
            put_obs(&mut body, obs);
        }
        Frame::TicketGrant { session, ticket } => {
            put_u8(&mut body, TAG_TICKET);
            put_u64(&mut body, *session);
            put_u64(&mut body, *ticket);
        }
        Frame::Busy { session, reason, retry_after_ms } => {
            put_u8(&mut body, TAG_BUSY);
            put_u64(&mut body, *session);
            put_u8(
                &mut body,
                match reason {
                    BusyReason::QueueFull => BUSY_QUEUE_FULL,
                    BusyReason::ShardSuspect => BUSY_SUSPECT,
                },
            );
            put_u32(&mut body, *retry_after_ms);
        }
        Frame::Completion { ticket, session, step, action, logits } => {
            put_u8(&mut body, TAG_COMPLETION);
            put_u64(&mut body, *ticket);
            put_u64(&mut body, *session);
            put_u64(&mut body, *step);
            put_action(&mut body, action);
            put_f32s(&mut body, logits);
        }
        Frame::Failed { ticket, session } => {
            put_u8(&mut body, TAG_FAILED);
            put_u64(&mut body, *ticket);
            put_u64(&mut body, *session);
        }
        Frame::Leave { session } => {
            put_u8(&mut body, TAG_LEAVE);
            put_u64(&mut body, *session);
        }
        Frame::LeaveAck { session, unpolled, dropped } => {
            put_u8(&mut body, TAG_LEAVE_ACK);
            put_u64(&mut body, *session);
            put_u32(&mut body, *unpolled);
            put_u32(&mut body, *dropped);
        }
        Frame::Bye => put_u8(&mut body, TAG_BYE),
        Frame::MetricsRequest => put_u8(&mut body, TAG_METRICS_REQUEST),
        Frame::MetricsReport { snapshot } => {
            put_u8(&mut body, TAG_METRICS_REPORT);
            put_snapshot(&mut body, snapshot);
        }
        Frame::EventsRequest { since_seq } => {
            put_u8(&mut body, TAG_EVENTS_REQUEST);
            put_u64(&mut body, *since_seq);
        }
        Frame::EventsBatch { next_seq, dropped, events } => {
            put_u8(&mut body, TAG_EVENTS_BATCH);
            put_u64(&mut body, *next_seq);
            put_u64(&mut body, *dropped);
            put_len(&mut body, events.len());
            for e in events {
                put_event(&mut body, e);
            }
        }
    }
    assert!(body.len() as u64 <= MAX_FRAME_LEN as u64, "frame exceeds MAX_FRAME_LEN");
    let mut out = Vec::with_capacity(4 + body.len());
    put_u32(&mut out, body.len() as u32);
    out.extend_from_slice(&body);
    out
}

/// Decode one frame body (the bytes the length prefix covers: tag +
/// payload). `Ok(None)` means an extension-range frame this build must
/// skip (the forward-compatibility rule — *known* extension frames like
/// the telemetry scrapes decode normally); core-range unknowns are
/// [`WireError::UnknownFrame`].
pub fn decode_frame(body: &[u8]) -> Result<Option<Frame>, WireError> {
    let mut r = Reader::new(body);
    let tag = r.u8()?;
    let frame = match tag {
        TAG_HELLO => {
            let version = r.u16()?;
            let min_version = r.u16()?;
            if min_version > version {
                return Err(WireError::Malformed("hello range inverted"));
            }
            Frame::Hello { version, min_version }
        }
        TAG_HELLO_ACK => Frame::HelloAck { version: r.u16()? },
        TAG_HELLO_REJECT => {
            let min = r.u16()?;
            let max = r.u16()?;
            Frame::HelloReject { min, max }
        }
        TAG_JOIN => Frame::Join { group: r.u32()? },
        TAG_JOINED => {
            let session = r.u64()?;
            let shard = r.u32()?;
            Frame::Joined { session, shard }
        }
        TAG_SUBMIT => {
            let session = r.u64()?;
            let obs = read_obs(&mut r)?;
            Frame::Submit { session, obs }
        }
        TAG_TICKET => {
            let session = r.u64()?;
            let ticket = r.u64()?;
            Frame::TicketGrant { session, ticket }
        }
        TAG_BUSY => {
            let session = r.u64()?;
            let reason = match r.u8()? {
                BUSY_QUEUE_FULL => BusyReason::QueueFull,
                BUSY_SUSPECT => BusyReason::ShardSuspect,
                _ => return Err(WireError::Malformed("unknown busy reason")),
            };
            let retry_after_ms = r.u32()?;
            Frame::Busy { session, reason, retry_after_ms }
        }
        TAG_COMPLETION => {
            let ticket = r.u64()?;
            let session = r.u64()?;
            let step = r.u64()?;
            let action = read_action(&mut r)?;
            let logits = r.f32s()?;
            Frame::Completion { ticket, session, step, action, logits }
        }
        TAG_FAILED => {
            let ticket = r.u64()?;
            let session = r.u64()?;
            Frame::Failed { ticket, session }
        }
        TAG_LEAVE => Frame::Leave { session: r.u64()? },
        TAG_LEAVE_ACK => {
            let session = r.u64()?;
            let unpolled = r.u32()?;
            let dropped = r.u32()?;
            Frame::LeaveAck { session, unpolled, dropped }
        }
        TAG_BYE => Frame::Bye,
        TAG_METRICS_REQUEST => Frame::MetricsRequest,
        TAG_METRICS_REPORT => Frame::MetricsReport { snapshot: r.snapshot()? },
        TAG_EVENTS_REQUEST => Frame::EventsRequest { since_seq: r.u64()? },
        TAG_EVENTS_BATCH => {
            let next_seq = r.u64()?;
            let dropped = r.u64()?;
            let n = r.seq_len(21)?; // smallest event: 8+8+1+4 bytes
            let events = (0..n).map(|_| r.event()).collect::<Result<Vec<TelemetryEvent>, _>>()?;
            Frame::EventsBatch { next_seq, dropped, events }
        }
        t if t >= EXTENSION_TAG_BASE => return Ok(None),
        other => return Err(WireError::UnknownFrame(other)),
    };
    r.finish()?;
    Ok(Some(frame))
}

/// Write one frame to a stream (length prefix + body, single `write_all`).
pub fn write_frame<W: Write>(w: &mut W, frame: &Frame) -> Result<(), WireError> {
    w.write_all(&encode_frame(frame))?;
    Ok(())
}

/// Read the next *known* frame from a stream, skipping extension-range
/// frames per the forward-compatibility rule. Blocks until a frame
/// arrives; a clean EOF before any byte of a frame surfaces as
/// [`WireError::Truncated`] (the connection is gone either way).
pub fn read_frame<R: Read>(r: &mut R) -> Result<Frame, WireError> {
    loop {
        let mut len_buf = [0u8; 4];
        r.read_exact(&mut len_buf)?;
        let len = u32::from_le_bytes(len_buf);
        if len == 0 || len > MAX_FRAME_LEN {
            return Err(WireError::BadLength(len));
        }
        let mut body = vec![0u8; len as usize];
        r.read_exact(&mut body)?;
        if let Some(frame) = decode_frame(&body)? {
            return Ok(frame);
        }
        // Extension frame: skipped, read the next one.
    }
}

/// The version a server answering `Hello { version, min_version }` should
/// ack, or the error a reject must carry: the highest version both ranges
/// contain.
pub fn negotiate(client_version: u16, client_min: u16) -> Result<u16, WireError> {
    let high = client_version.min(WIRE_VERSION);
    if high >= client_min && high >= MIN_WIRE_VERSION {
        Ok(high)
    } else {
        Err(WireError::VersionUnsupported { min: client_min, max: client_version })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn negotiation_picks_the_highest_common_version() {
        assert_eq!(negotiate(WIRE_VERSION, MIN_WIRE_VERSION).unwrap(), WIRE_VERSION);
        // A newer client that still speaks ours lands on ours.
        assert_eq!(negotiate(WIRE_VERSION + 5, MIN_WIRE_VERSION).unwrap(), WIRE_VERSION);
        // A future-only client is refused with our range.
        assert!(matches!(
            negotiate(WIRE_VERSION + 5, WIRE_VERSION + 3),
            Err(WireError::VersionUnsupported { .. })
        ));
    }

    #[test]
    fn extension_frames_are_skipped_core_unknowns_reject() {
        // 0x90 is an extension tag this build does not know — skip. (0x80
        // through 0x83 are the telemetry frames now, no longer unknown.)
        assert!(matches!(decode_frame(&[0x90, 1, 2, 3]), Ok(None)));
        assert!(matches!(decode_frame(&[0x7f]), Err(WireError::UnknownFrame(0x7f))));
    }

    #[test]
    fn known_extension_frames_decode_instead_of_skipping() {
        assert!(matches!(decode_frame(&[TAG_METRICS_REQUEST]), Ok(Some(Frame::MetricsRequest))));
        let mut body = vec![TAG_EVENTS_REQUEST];
        body.extend_from_slice(&7u64.to_le_bytes());
        assert!(matches!(decode_frame(&body), Ok(Some(Frame::EventsRequest { since_seq: 7 }))));
        // Trailing bytes after a known extension frame are malformed, not
        // skipped — only *unknown* extension tags get the skip treatment.
        assert!(matches!(decode_frame(&[TAG_METRICS_REQUEST, 0xaa]), Err(WireError::Malformed(_))));
    }

    #[test]
    fn stream_roundtrip_skips_interleaved_extension_frames() {
        let mut buf = Vec::new();
        write_frame(&mut buf, &Frame::Hello { version: 1, min_version: 1 }).unwrap();
        // An extension frame a future peer might emit: length 3, tag 0x90.
        buf.extend_from_slice(&3u32.to_le_bytes());
        buf.extend_from_slice(&[0x90, 0xaa, 0xbb]);
        write_frame(&mut buf, &Frame::Bye).unwrap();
        let mut cur = std::io::Cursor::new(buf);
        assert!(matches!(read_frame(&mut cur).unwrap(), Frame::Hello { version: 1, .. }));
        assert!(matches!(read_frame(&mut cur).unwrap(), Frame::Bye));
    }

    #[test]
    fn zero_and_oversize_lengths_are_rejected() {
        let mut cur = std::io::Cursor::new(0u32.to_le_bytes().to_vec());
        assert!(matches!(read_frame(&mut cur), Err(WireError::BadLength(0))));
        let mut cur = std::io::Cursor::new((MAX_FRAME_LEN + 1).to_le_bytes().to_vec());
        assert!(matches!(read_frame(&mut cur), Err(WireError::BadLength(_))));
    }
}

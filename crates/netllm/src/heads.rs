//! Networking heads (paper §4.2).
//!
//! Each head is a lightweight trainable linear projector from LLM output
//! features directly to a task answer. By construction the answer is drawn
//! from the valid range (a real rung index, physical viewport coordinates,
//! an existing candidate stage), and one backbone inference yields one
//! complete answer — the two properties token-based decoding lacks.

use nt_nn::{Fwd, Init, Linear, ParamStore};
use nt_tensor::{NodeId, Rng, Tensor};

/// VP head: hidden states at the `pw` query positions -> per-step viewport
/// deltas `(roll, pitch, yaw)`.
pub struct VpHead {
    lin: Linear,
}

impl VpHead {
    pub fn new(store: &mut ParamStore, d_model: usize, rng: &mut Rng) -> Self {
        VpHead { lin: Linear::new(store, "head.vp", d_model, 3, true, Init::Xavier, rng) }
    }

    /// `[pw, d_model]` -> `[pw, 3]` deltas (network units).
    pub fn forward(&self, f: &mut Fwd, store: &ParamStore, hidden: NodeId) -> NodeId {
        self.lin.forward(f, store, hidden)
    }

    /// Graph-free inference forward.
    pub fn eval(&self, store: &ParamStore, hidden: &Tensor) -> Tensor {
        self.lin.eval(store, hidden)
    }
}

/// ABR head: hidden state -> probability logits over the bitrate ladder.
pub struct AbrHead {
    lin: Linear,
    pub rungs: usize,
}

impl AbrHead {
    pub fn new(store: &mut ParamStore, d_model: usize, rungs: usize, rng: &mut Rng) -> Self {
        AbrHead {
            lin: Linear::new(store, "head.abr", d_model, rungs, true, Init::Xavier, rng),
            rungs,
        }
    }

    /// `[n, d_model]` -> `[n, rungs]` logits.
    pub fn forward(&self, f: &mut Fwd, store: &ParamStore, hidden: NodeId) -> NodeId {
        self.lin.forward(f, store, hidden)
    }

    /// Graph-free inference forward.
    pub fn eval(&self, store: &ParamStore, hidden: &Tensor) -> Tensor {
        self.lin.eval(store, hidden)
    }
}

/// CJS heads: a stage scorer applied per candidate token position, and an
/// executor-cap head over the discrete parallelism menu.
pub struct CjsHeads {
    stage: Linear,
    cap: Linear,
    pub num_caps: usize,
}

impl CjsHeads {
    pub fn new(store: &mut ParamStore, d_model: usize, num_caps: usize, rng: &mut Rng) -> Self {
        CjsHeads {
            stage: Linear::new(store, "head.cjs_stage", d_model, 1, true, Init::Xavier, rng),
            cap: Linear::new(store, "head.cjs_cap", d_model, num_caps, true, Init::Xavier, rng),
            num_caps,
        }
    }

    /// Candidate hiddens `[c, d_model]` -> stage logits `[1, c]`.
    pub fn stage_logits(&self, f: &mut Fwd, store: &ParamStore, cand_hidden: NodeId) -> NodeId {
        let c = f.g.value(cand_hidden).shape()[0];
        let scores = self.stage.forward(f, store, cand_hidden); // [c,1]
        f.g.reshape(scores, [1, c])
    }

    /// One hidden `[1, d_model]` -> cap logits `[1, num_caps]`.
    pub fn cap_logits(&self, f: &mut Fwd, store: &ParamStore, hidden: NodeId) -> NodeId {
        self.cap.forward(f, store, hidden)
    }

    /// Graph-free candidate scores `[c, d_model]` -> `[1, c]`.
    pub fn stage_logits_eval(&self, store: &ParamStore, cand_hidden: &Tensor) -> Tensor {
        let c = cand_hidden.shape()[0];
        self.stage.eval(store, cand_hidden).reshape([1, c])
    }

    /// Graph-free cap logits `[1, d_model]` -> `[1, num_caps]`.
    pub fn cap_logits_eval(&self, store: &ParamStore, hidden: &Tensor) -> Tensor {
        self.cap.eval(store, hidden)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nt_tensor::Tensor;

    #[test]
    fn abr_head_answers_are_always_valid() {
        // Whatever the hidden state, argmax over head logits is a real rung.
        let mut s = ParamStore::new();
        let mut rng = Rng::seeded(1);
        let head = AbrHead::new(&mut s, 16, 6, &mut rng);
        for i in 0..50 {
            let mut f = Fwd::eval();
            let h = f.input(Tensor::randn([1, 16], 10.0, &mut Rng::seeded(i)));
            let logits = head.forward(&mut f, &s, h);
            let a = f.g.value(logits).argmax();
            assert!(a < 6);
        }
    }

    #[test]
    fn vp_head_shape() {
        let mut s = ParamStore::new();
        let mut rng = Rng::seeded(2);
        let head = VpHead::new(&mut s, 16, &mut rng);
        let mut f = Fwd::eval();
        let h = f.input(Tensor::randn([20, 16], 1.0, &mut rng));
        let y = head.forward(&mut f, &s, h);
        assert_eq!(f.g.value(y).shape(), &[20, 3]);
    }

    #[test]
    fn cjs_stage_logits_match_candidate_count() {
        let mut s = ParamStore::new();
        let mut rng = Rng::seeded(3);
        let heads = CjsHeads::new(&mut s, 16, 5, &mut rng);
        let mut f = Fwd::eval();
        let cands = f.input(Tensor::randn([7, 16], 1.0, &mut rng));
        let logits = heads.stage_logits(&mut f, &s, cands);
        assert_eq!(f.g.value(logits).shape(), &[1, 7]);
        let h = f.input(Tensor::randn([1, 16], 1.0, &mut rng));
        let cap = heads.cap_logits(&mut f, &s, h);
        assert_eq!(f.g.value(cap).shape(), &[1, 5]);
    }
}

//! Deterministic fault injection for the sharded server.
//!
//! A [`FaultPlan`] is a seed- or hand-built schedule of [`Fault`]s pinned
//! to logical-clock ticks. [`crate::ShardedServer::inject`] arms the plan
//! and [`crate::ShardedServer::tick`] fires due events at two exact
//! points in the tick cycle:
//!
//! - **pre-drain** ([`Fault::Kill`] with `mid_tick: false`,
//!   [`Fault::Stall`]): the shard goes dark before this tick's queues
//!   drain, so its heartbeat is already missing when the health checker
//!   observes the tick;
//! - **mid-tick** ([`Fault::Kill`] with `mid_tick: true`,
//!   [`Fault::Poison`], [`Fault::DropBatch`]): the shard (or one
//!   session's step, or one drained batch) dies *after* the drain and
//!   before the engine step — the hardest window, because already-drained
//!   arrivals are in flight and must be re-queued or failed, never lost.
//!
//! Crash semantics are the repo's recovery-equals-eviction contract: a
//! killed shard loses its KV pages (reclaimed to the pool — the pages
//! were host memory the dead process can no longer address, so the pool
//! re-mints their budget share away via `retire_pages`), but every
//! session's **episode log survives** (it is decision-granular durable
//! state, the WAL of this system). Recovery replays it through the
//! existing evicted-session re-anchor path on a surviving shard, which is
//! why the soak gate can demand 1e-5 equivalence with a no-fault replay.
//!
//! Everything here is deterministic: [`FaultPlan::random_kills`] derives
//! its schedule from an explicit seed through [`nt_tensor::Rng`], so a
//! failing soak trace replays exactly from the seed echoed in the log.

use nt_tensor::Rng;

/// One injected failure.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Fault {
    /// Kill `shard` permanently (process crash). `mid_tick: false` fires
    /// before the tick's drain; `mid_tick: true` fires after the shard
    /// drained its batch, orphaning the in-flight arrivals (they are
    /// pushed back to the head of the queue and recovered with the
    /// shard's sessions once the health checker declares it dead).
    Kill {
        /// Shard index to crash.
        shard: usize,
        /// Fire after the drain instead of before it.
        mid_tick: bool,
    },
    /// Stall `shard` for `ticks` ticks: heartbeats stop (the health
    /// checker walks it to Suspect and probes with backoff), then the
    /// shard comes back with all state intact — the *transient* failure
    /// class, which must cost retries, never recovery.
    Stall {
        /// Shard index to stall.
        shard: usize,
        /// Heartbeats missed before the shard revives.
        ticks: u64,
    },
    /// Tear one session's step this tick: if the session has a drained
    /// arrival it is failed (ticket resolves `Failed`), and the session's
    /// KV is dropped as untrusted — it re-anchors from the episode log on
    /// its next step, exactly like an eviction. This is the
    /// mid-candidate / mid-episode corruption probe: un-rolled-back CJS
    /// candidate tokens die with the KV, never with the episode log.
    Poison {
        /// Global session id (`GlobalSessionId.0`) to poison.
        session: u64,
    },
    /// Drop `shard`'s entire drained batch this tick (ingress loss between
    /// queue and engine): every orphaned ticket resolves `Failed` — the
    /// explicit-loss path, as opposed to `Kill`'s requeue path.
    DropBatch {
        /// Shard index whose drained batch is dropped.
        shard: usize,
    },
}

impl Fault {
    /// Whether this fault fires before the tick's drain (`false` = fires
    /// mid-tick, between drain and engine step).
    pub fn pre_drain(&self) -> bool {
        match self {
            Fault::Kill { mid_tick, .. } => !mid_tick,
            Fault::Stall { .. } => true,
            Fault::Poison { .. } | Fault::DropBatch { .. } => false,
        }
    }
}

/// A [`Fault`] pinned to a logical-clock tick.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct FaultEvent {
    /// Tick (1-based, the value `TickReport::tick` will carry) at which
    /// the fault fires. Events whose tick has already passed fire on the
    /// next tick — a plan armed late still runs in full.
    pub at_tick: u64,
    /// The failure to inject.
    pub fault: Fault,
}

/// A deterministic schedule of faults. Build one with the chained
/// constructors (or [`FaultPlan::random_kills`] for a seeded schedule) and
/// arm it with [`crate::ShardedServer::inject`].
#[derive(Clone, Debug, Default)]
pub struct FaultPlan {
    events: Vec<FaultEvent>,
}

impl FaultPlan {
    /// Empty plan (injects nothing).
    pub fn new() -> Self {
        FaultPlan::default()
    }

    /// Kill `shard` mid-tick at `at_tick` — the hardest crash point, with
    /// its drained batch in flight.
    pub fn kill(mut self, at_tick: u64, shard: usize) -> Self {
        self.events.push(FaultEvent { at_tick, fault: Fault::Kill { shard, mid_tick: true } });
        self
    }

    /// Kill `shard` before the drain at `at_tick`.
    pub fn kill_before_drain(mut self, at_tick: u64, shard: usize) -> Self {
        self.events.push(FaultEvent { at_tick, fault: Fault::Kill { shard, mid_tick: false } });
        self
    }

    /// Stall `shard` for `ticks` heartbeats starting at `at_tick`.
    pub fn stall(mut self, at_tick: u64, shard: usize, ticks: u64) -> Self {
        self.events.push(FaultEvent { at_tick, fault: Fault::Stall { shard, ticks } });
        self
    }

    /// Tear `session`'s step at `at_tick`.
    pub fn poison(mut self, at_tick: u64, session: u64) -> Self {
        self.events.push(FaultEvent { at_tick, fault: Fault::Poison { session } });
        self
    }

    /// Drop `shard`'s drained batch at `at_tick`.
    pub fn drop_batch(mut self, at_tick: u64, shard: usize) -> Self {
        self.events.push(FaultEvent { at_tick, fault: Fault::DropBatch { shard } });
        self
    }

    /// Append an explicit event.
    pub fn push(&mut self, event: FaultEvent) {
        self.events.push(event);
    }

    /// Seeded random kill schedule over a `shards`-wide fleet: kills
    /// `shards - survivors` distinct shards at distinct random ticks in
    /// `[first_tick, last_tick]`, each randomly pre-drain or mid-tick,
    /// always leaving at least `survivors >= 1` shards alive.
    pub fn random_kills(
        seed: u64,
        shards: usize,
        survivors: usize,
        first_tick: u64,
        last_tick: u64,
    ) -> Self {
        assert!(survivors >= 1, "a kill schedule must leave at least one survivor");
        assert!(shards > survivors, "nothing to kill");
        assert!(first_tick >= 1 && last_tick >= first_tick, "bad tick range");
        let mut rng = Rng::seeded(seed ^ 0xfa17_0000_0000_0000);
        let mut victims: Vec<usize> = (0..shards).collect();
        rng.shuffle(&mut victims);
        victims.truncate(shards - survivors);
        let mut plan = FaultPlan::new();
        for shard in victims {
            let at_tick = first_tick + rng.below((last_tick - first_tick + 1) as usize) as u64;
            let mid_tick = rng.chance(0.5);
            plan.events.push(FaultEvent { at_tick, fault: Fault::Kill { shard, mid_tick } });
        }
        plan.events.sort_by_key(|e| e.at_tick);
        plan
    }

    /// Scheduled events (in insertion order; `take_due` does not require
    /// sorting).
    pub fn events(&self) -> &[FaultEvent] {
        &self.events
    }

    /// Events not yet fired.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Merge another plan's remaining events into this one.
    pub fn extend(&mut self, other: FaultPlan) {
        self.events.extend(other.events);
    }

    /// Remove and return the faults due at `tick` for the given phase
    /// (`pre_drain` selects which injection point is firing). `at_tick`
    /// values in the past count as due, so late-armed plans still fire.
    pub(crate) fn take_due(&mut self, tick: u64, pre_drain: bool) -> Vec<Fault> {
        let mut due = Vec::new();
        self.events.retain(|e| {
            if e.at_tick <= tick && e.fault.pre_drain() == pre_drain {
                due.push(e.fault);
                false
            } else {
                true
            }
        });
        due
    }
}

/// What the fault layer did during one [`crate::ShardedServer::tick`] —
/// carried on `TickReport::faults`. All-default on fault-free ticks.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct FaultReport {
    /// Shards that crashed this tick (a `Kill` fired).
    pub killed: Vec<usize>,
    /// Shards that began a stall this tick.
    pub stalled: Vec<usize>,
    /// Shards the health checker declared Dead this tick (recovery ran).
    pub declared_dead: Vec<usize>,
    /// Shards in the Suspect state at the end of this tick.
    pub suspect: Vec<usize>,
    /// Sessions salvaged off dead shards and re-admitted to survivors.
    pub sessions_recovered: u64,
    /// Already-ticketed arrivals re-queued (orphaned drained batches plus
    /// dead shards' queue backlogs redistributed to survivors).
    pub arrivals_requeued: u64,
    /// Tickets resolved `Failed` this tick (poisoned steps, dropped
    /// batches).
    pub tickets_failed: u64,
    /// KV rows dropped by crashes/poisons that episode-log replay must
    /// rebuild — the work the recovery path deferred to future ticks.
    pub replay_rows: u64,
    /// Pool pages permanently retired this tick (the dead shard's budget
    /// share, clamped so one full-context session always still fits).
    pub retired_pages: u64,
}

impl FaultReport {
    /// Whether anything fault-related happened this tick.
    pub fn is_quiet(&self) -> bool {
        *self == FaultReport::default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn take_due_fires_by_phase_and_keeps_future_events() {
        let mut plan = FaultPlan::new()
            .kill_before_drain(3, 0)
            .kill(3, 1)
            .poison(3, 42)
            .stall(5, 2, 2)
            .drop_batch(7, 0);
        assert_eq!(plan.len(), 5);
        assert!(plan.take_due(2, true).is_empty());
        assert_eq!(plan.take_due(3, true), vec![Fault::Kill { shard: 0, mid_tick: false }]);
        let mid = plan.take_due(3, false);
        assert_eq!(
            mid,
            vec![Fault::Kill { shard: 1, mid_tick: true }, Fault::Poison { session: 42 }]
        );
        assert_eq!(plan.len(), 2);
        // Late-armed / skipped ticks still fire (<=, not ==).
        assert_eq!(plan.take_due(9, true), vec![Fault::Stall { shard: 2, ticks: 2 }]);
        assert_eq!(plan.take_due(9, false), vec![Fault::DropBatch { shard: 0 }]);
        assert!(plan.is_empty());
    }

    #[test]
    fn random_kills_is_seed_deterministic_and_leaves_survivors() {
        let a = FaultPlan::random_kills(7, 4, 1, 2, 9);
        let b = FaultPlan::random_kills(7, 4, 1, 2, 9);
        assert_eq!(a.events(), b.events(), "same seed, same schedule");
        assert_eq!(a.len(), 3, "4 shards - 1 survivor = 3 kills");
        let mut shards: Vec<usize> = a
            .events()
            .iter()
            .map(|e| match e.fault {
                Fault::Kill { shard, .. } => shard,
                f => panic!("random_kills produced {f:?}"),
            })
            .collect();
        shards.sort_unstable();
        shards.dedup();
        assert_eq!(shards.len(), 3, "kills hit distinct shards");
        assert!(a.events().iter().all(|e| (2..=9).contains(&e.at_tick)));
        let c = FaultPlan::random_kills(8, 4, 1, 2, 9);
        assert_ne!(a.events(), c.events(), "different seed, different schedule");
    }

    #[test]
    fn fault_report_default_is_quiet() {
        let mut r = FaultReport::default();
        assert!(r.is_quiet());
        r.sessions_recovered = 1;
        assert!(!r.is_quiet());
    }
}

//! Event-loop network ingress: socket connections feeding the sharded
//! server's admission queues, with completions pushed back to waiters.
//!
//! This is the serving stack's front door. [`serve`] binds a loopback
//! TCP listener and spins up:
//!
//! - an **acceptor** thread handing each connection to a reader;
//! - one **reader** thread per connection: performs the
//!   [`crate::wire`] version handshake, then parses frames into a
//!   bounded event channel (the backpressure boundary — readers block
//!   when the scheduler falls behind);
//! - one **writer** thread per connection, so a slow client never
//!   blocks the tick loop;
//! - a single **scheduler** thread that owns the
//!   [`ShardedServer<NetLlmFleet>`] and is the only place `tick` runs.
//!   It drains events, coalesces briefly so concurrent submits land in
//!   the same batch, ticks while arrivals are pending, and sweeps every
//!   outstanding ticket with [`ShardedServer::poll_status`] — resolved
//!   tickets are *pushed* to the owning connection as
//!   [`Frame::Completion`] / [`Frame::Failed`]; no client ever polls.
//!
//! Backpressure composes across the layers: a full
//! [`crate::AdmissionQueue`] refuses the submit, and the refusal goes
//! back on the wire as [`Frame::Busy`] with a `retry_after_ms` hint
//! derived from an EWMA of recent tick durations — the remote analogue
//! of [`crate::SubmitRetry`].
//!
//! **The leave contract.** A departing session's in-flight work must
//! resolve, not vanish: tickets still queued when [`Frame::Leave`]
//! arrives (or the connection drops) resolve as `Failed` — pushed as
//! [`Frame::Failed`] before the [`Frame::LeaveAck`] for an explicit
//! leave, or counted in [`IngressSnapshot::failed_on_disconnect`] when
//! there is no one left to tell. `tests/ingress.rs` locks this in.
//!
//! # Example
//!
//! A loopback round trip over the socket — serve a tiny fleet, join an
//! ABR session, submit one observation, and receive the pushed
//! completion:
//!
//! ```
//! use netllm::{serve, Frame, FleetModels, FleetObs, IngressConfig, WireClient, FLEET_ABR};
//! use nt_abr::AbrObservation;
//!
//! let dir = std::env::temp_dir().join("netllm-ingress-doc");
//! let handle = serve(FleetModels::tiny(&dir, 4), IngressConfig::default()).unwrap();
//!
//! let mut client = WireClient::connect(handle.addr()).unwrap();
//! let (session, _shard) = client.join(FLEET_ABR as u32).unwrap();
//! let obs = AbrObservation::synthetic_stream(7, 1).remove(0);
//! client.submit(session, &FleetObs::Abr(obs)).unwrap();
//!
//! let Frame::TicketGrant { ticket, .. } = client.recv().unwrap() else { panic!() };
//! let Frame::Completion { ticket: done, logits, .. } = client.recv().unwrap() else { panic!() };
//! assert_eq!(done, ticket);
//! assert!(!logits.is_empty());
//! handle.shutdown();
//! ```

use crate::adapt::{AdaptMode, LoraSpec};
use crate::adapters::abr::NetLlmAbr;
use crate::adapters::cjs::NetLlmCjs;
use crate::adapters::vp::NetLlmVp;
use crate::fleet::{FleetObs, NetLlmFleet, FLEET_ABR, FLEET_CJS, FLEET_VP};
use crate::metrics::MetricsSnapshot;
use crate::sched::{AdmissionPolicy, EvictionPolicy, SubmitError, Ticket, TicketStatus};
use crate::shard::ShardedServer;
use crate::telemetry::{EventKind, EventsView, RefusalReason};
use crate::wire::{
    negotiate, read_frame, write_frame, BusyReason, Frame, WireError, MIN_WIRE_VERSION,
    WIRE_VERSION,
};
use nt_llm::zoo::{size_spec, Zoo};
use nt_llm::PagePool;
use std::collections::{BTreeMap, BTreeSet};
use std::io::{BufReader, BufWriter, Write};
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream};
use std::path::Path;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{mpsc, Arc};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// The three adapted models an ingress serves, owned (unlike
/// [`NetLlmFleet`], which borrows) so they can move into the scheduler
/// thread that outlives the caller's stack frame.
pub struct FleetModels {
    /// Adaptive-bitrate model (group [`FLEET_ABR`]).
    pub abr: NetLlmAbr,
    /// Cluster-job-scheduling model (group [`FLEET_CJS`]).
    pub cjs: NetLlmCjs,
    /// Viewport-prediction model (group [`FLEET_VP`]).
    pub vp: NetLlmVp,
}

impl FleetModels {
    /// Randomly initialised `0.35b-sim` models with RL window `window` —
    /// the fixture every ingress test, doctest, and bench uses. Builds
    /// (or reuses) the model zoo under `dir`.
    pub fn tiny(dir: &Path, window: usize) -> Self {
        Self::sized(dir, "0.35b-sim", window)
    }

    /// Randomly initialised models at any zoo size label (e.g.
    /// `"7b-sim"` for the release benches). Deterministic in
    /// `(label, window)` — the zoo seeds by spec and the adapters by
    /// fixed constants, so two calls build identical fleets.
    pub fn sized(dir: &Path, label: &str, window: usize) -> Self {
        let zoo = Zoo::new(dir.to_path_buf());
        let mut abr = NetLlmAbr::new(
            zoo.build_random(&size_spec(label)),
            AdaptMode::NoDomain,
            LoraSpec::default(),
            window,
            51,
        );
        abr.target_return = 2.0;
        let mut cjs = NetLlmCjs::new(
            zoo.build_random(&size_spec(label)),
            AdaptMode::NoDomain,
            LoraSpec::default(),
            window,
            52,
        );
        cjs.target_return = -1.0;
        let vp = NetLlmVp::new(
            zoo.build_random(&size_spec(label)),
            AdaptMode::NoDomain,
            LoraSpec::default(),
            8,
            53,
        );
        FleetModels { abr, cjs, vp }
    }
}

/// Ingress server knobs. `Default` is the unit-test shape: 2 shards,
/// hash routing, no page pool, 200µs coalesce window.
pub struct IngressConfig {
    /// Shard count for the [`ShardedServer`].
    pub shards: usize,
    /// Admission (placement) policy.
    pub policy: AdmissionPolicy,
    /// Optional KV page pool (enables the memory guard).
    pub pool: Option<PagePool>,
    /// Eviction policy under memory pressure.
    pub eviction: EvictionPolicy,
    /// Per-shard admission-queue cap — the backpressure bound that
    /// becomes [`Frame::Busy`] on the wire.
    pub queue_cap: usize,
    /// Bound of the reader→scheduler event channel; readers block when
    /// it fills, pushing backpressure into the kernel socket buffers.
    pub channel_cap: usize,
    /// How long the scheduler waits for the event channel to go quiet
    /// before ticking — short enough to be invisible next to a tick,
    /// long enough that a burst of concurrent submits lands in one batch.
    pub quiesce: Duration,
    /// Hard bound on pre-tick coalescing, so a steady trickle of events
    /// cannot postpone a tick indefinitely.
    pub max_coalesce: Duration,
    /// Fairness bound: granted-but-unresolved tickets one connection may
    /// hold. The shard admission queues are shared, so without this cap
    /// one greedy pipelining client can fill them wall to wall and every
    /// other client's submits bounce [`Frame::Busy`] until the whole
    /// backlog drains — the cap refuses the *greedy* client instead
    /// (same `Busy`/retry contract), keeping a slow client's
    /// submit→completion latency bounded by its own queue depth, not its
    /// neighbour's. `tests/ingress.rs` pins the two-client p90. The
    /// default (half of `queue_cap`/`channel_cap`) leaves a legitimate
    /// dense client's pipelining untouched — B=64 sessions at a window
    /// of 4 holds 256 open tickets — while capping any one connection
    /// at half the shared backlog.
    pub max_open_per_conn: usize,
    /// Whether tick-phase timing and the event journal are enabled
    /// (see [`ShardedServer::set_telemetry`]). On by default — BENCH_10
    /// prices the overhead at under 3% of dense throughput. Scrape
    /// frames still answer when off; histograms and the journal just
    /// stop accumulating.
    pub telemetry: bool,
}

impl Default for IngressConfig {
    fn default() -> Self {
        IngressConfig {
            shards: 2,
            policy: AdmissionPolicy::HashRoute,
            pool: None,
            eviction: EvictionPolicy::None,
            queue_cap: 1024,
            channel_cap: 1024,
            quiesce: Duration::from_micros(200),
            max_coalesce: Duration::from_millis(2),
            max_open_per_conn: 512,
            telemetry: true,
        }
    }
}

/// Monotonic ingress counters, shared between the serving threads and
/// [`IngressHandle::stats`] readers.
#[derive(Debug, Default)]
pub struct IngressStats {
    connections: AtomicU64,
    sessions_joined: AtomicU64,
    submits: AtomicU64,
    busy: AtomicU64,
    completions: AtomicU64,
    failed: AtomicU64,
    failed_on_disconnect: AtomicU64,
    protocol_errors: AtomicU64,
    ticks: AtomicU64,
}

/// Plain-value copy of [`IngressStats`] at a point in time. Lives in
/// [`crate::metrics`] (as a [`crate::MetricsSnapshot`] field) so one
/// scrape returns the whole read path; re-exported here for the
/// ingress-facing name.
pub use crate::metrics::IngressSnapshot;

impl IngressStats {
    /// The counters as plain values (also composed into scrape replies as
    /// [`crate::MetricsSnapshot::ingress`]).
    pub fn snapshot(&self) -> IngressSnapshot {
        IngressSnapshot {
            connections: self.connections.load(Ordering::Relaxed),
            sessions_joined: self.sessions_joined.load(Ordering::Relaxed),
            submits: self.submits.load(Ordering::Relaxed),
            busy: self.busy.load(Ordering::Relaxed),
            completions: self.completions.load(Ordering::Relaxed),
            failed: self.failed.load(Ordering::Relaxed),
            failed_on_disconnect: self.failed_on_disconnect.load(Ordering::Relaxed),
            protocol_errors: self.protocol_errors.load(Ordering::Relaxed),
            ticks: self.ticks.load(Ordering::Relaxed),
        }
    }
}

/// Running ingress server: address to dial, counters to read, and the
/// switch that shuts the whole thread family down.
pub struct IngressHandle {
    addr: SocketAddr,
    stats: Arc<IngressStats>,
    stop: Arc<AtomicBool>,
    events: mpsc::SyncSender<Event>,
    acceptor: JoinHandle<()>,
    scheduler: JoinHandle<()>,
}

impl IngressHandle {
    /// The loopback address the listener bound (port was OS-assigned).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Current counters.
    pub fn stats(&self) -> IngressSnapshot {
        self.stats.snapshot()
    }

    /// Stop accepting, wind down the scheduler, and join both long-lived
    /// threads. Open connections are cut; their sessions' queued tickets
    /// fail per the disconnect contract.
    pub fn shutdown(self) {
        self.stop.store(true, Ordering::SeqCst);
        // Unblock the scheduler's recv...
        let _ = self.events.try_send(Event::Wake);
        // ...and the acceptor's accept (the dial is the wake-up; the
        // acceptor sees `stop` before handling it).
        let _ = TcpStream::connect(self.addr);
        let _ = self.acceptor.join();
        let _ = self.scheduler.join();
    }
}

/// Reader→scheduler events. `conn` ids are acceptor-assigned and never
/// reused.
enum Event {
    /// Handshake done; `tx` feeds the connection's writer thread.
    Connect { conn: u64, tx: mpsc::Sender<Frame> },
    /// One parsed frame from the connection. Boxed: `MetricsReport`
    /// embeds a whole snapshot, and this channel carries mostly small
    /// frames.
    Incoming { conn: u64, frame: Box<Frame> },
    /// Reader exited (EOF, error, or post-`Bye`); clean the session up.
    Gone { conn: u64 },
    /// No-op: unblock the scheduler so it rechecks the stop flag.
    Wake,
}

/// Scheduler-side state for one live connection.
struct ConnState {
    tx: mpsc::Sender<Frame>,
    sessions: BTreeSet<u64>,
    /// Granted-but-unresolved tickets this connection holds, bounded by
    /// [`IngressConfig::max_open_per_conn`].
    open: usize,
}

/// Scheduler-side state for one live session.
struct SessState {
    conn: u64,
    group: usize,
    /// Serve count — the `step` field ordering streamed completions.
    steps: u64,
}

/// One granted-but-unresolved ticket.
struct OpenTicket {
    conn: u64,
    session: u64,
    submitted: Instant,
}

/// Serve `models` on a fresh loopback listener. Returns once the
/// listener is bound and the scheduler is running.
pub fn serve(models: FleetModels, cfg: IngressConfig) -> std::io::Result<IngressHandle> {
    let listener = TcpListener::bind("127.0.0.1:0")?;
    let addr = listener.local_addr()?;
    let stats = Arc::new(IngressStats::default());
    let stop = Arc::new(AtomicBool::new(false));
    let (tx, rx) = mpsc::sync_channel::<Event>(cfg.channel_cap);

    let acceptor = {
        let tx = tx.clone();
        let stats = Arc::clone(&stats);
        let stop = Arc::clone(&stop);
        std::thread::Builder::new().name("nt-ingress-accept".into()).spawn(move || {
            let mut next_conn = 0u64;
            for stream in listener.incoming() {
                if stop.load(Ordering::SeqCst) {
                    break;
                }
                let Ok(stream) = stream else { continue };
                let conn = next_conn;
                next_conn += 1;
                let tx = tx.clone();
                let stats = Arc::clone(&stats);
                // Readers are detached: they exit when their socket does,
                // and shutdown cuts every socket.
                let _ = std::thread::Builder::new()
                    .name(format!("nt-ingress-conn-{conn}"))
                    .spawn(move || run_connection(stream, conn, tx, stats));
            }
        })?
    };

    let scheduler = {
        let stats = Arc::clone(&stats);
        let stop = Arc::clone(&stop);
        std::thread::Builder::new()
            .name("nt-ingress-sched".into())
            .spawn(move || run_scheduler(models, cfg, rx, stats, stop))?
    };

    Ok(IngressHandle { addr, stats, stop, events: tx, acceptor, scheduler })
}

/// Per-connection reader: handshake on the raw stream, then frames into
/// the event channel until the peer goes away.
fn run_connection(
    stream: TcpStream,
    conn: u64,
    events: mpsc::SyncSender<Event>,
    stats: Arc<IngressStats>,
) {
    let _ = stream.set_nodelay(true);
    let Ok(read_half) = stream.try_clone() else { return };
    let mut reader = BufReader::new(read_half);

    // Handshake: first frame must be Hello; reply directly on the raw
    // stream (the writer thread only exists for accepted connections).
    let hello = read_frame(&mut reader);
    let (version, min_version) = match hello {
        Ok(Frame::Hello { version, min_version }) => (version, min_version),
        _ => {
            stats.protocol_errors.fetch_add(1, Ordering::Relaxed);
            return;
        }
    };
    let mut hs = &stream;
    match negotiate(version, min_version) {
        Ok(v) => {
            if write_frame(&mut hs, &Frame::HelloAck { version: v }).is_err() {
                return;
            }
        }
        Err(_) => {
            stats.protocol_errors.fetch_add(1, Ordering::Relaxed);
            let _ = write_frame(
                &mut hs,
                &Frame::HelloReject { min: MIN_WIRE_VERSION, max: WIRE_VERSION },
            );
            return;
        }
    }
    stats.connections.fetch_add(1, Ordering::Relaxed);

    // Writer thread: frames out, coalesced — after each frame, drain
    // whatever the scheduler has already queued so a completion sweep
    // costs one flush, not one syscall per frame. When the scheduler
    // drops the sender, shut the socket down both ways so this reader
    // unblocks too.
    let (wtx, wrx) = mpsc::channel::<Frame>();
    let Ok(write_half) = stream.try_clone() else { return };
    let _ = std::thread::Builder::new().name(format!("nt-ingress-out-{conn}")).spawn(move || {
        let mut w = BufWriter::new(&write_half);
        'conn: while let Ok(frame) = wrx.recv() {
            if write_frame(&mut w, &frame).is_err() {
                break;
            }
            while let Ok(next) = wrx.try_recv() {
                if write_frame(&mut w, &next).is_err() {
                    break 'conn;
                }
            }
            if w.flush().is_err() {
                break;
            }
        }
        let _ = write_half.shutdown(Shutdown::Both);
    });

    if events.send(Event::Connect { conn, tx: wtx }).is_err() {
        return;
    }
    loop {
        match read_frame(&mut reader) {
            Ok(frame) => {
                let bye = matches!(frame, Frame::Bye);
                if events.send(Event::Incoming { conn, frame: Box::new(frame) }).is_err() || bye {
                    break;
                }
            }
            Err(WireError::Truncated | WireError::Io(_)) => break,
            Err(_) => {
                stats.protocol_errors.fetch_add(1, Ordering::Relaxed);
                break;
            }
        }
    }
    let _ = events.send(Event::Gone { conn });
}

/// The scheduler: sole owner of the [`ShardedServer`], the fleet, and
/// the tick loop.
fn run_scheduler(
    models: FleetModels,
    cfg: IngressConfig,
    rx: mpsc::Receiver<Event>,
    stats: Arc<IngressStats>,
    stop: Arc<AtomicBool>,
) {
    let fleet = NetLlmFleet { abr: &models.abr, cjs: &models.cjs, vp: &models.vp };
    let mut server: ShardedServer<NetLlmFleet> = match cfg.pool {
        Some(pool) => ShardedServer::with_memory(cfg.shards, cfg.policy, pool, cfg.eviction),
        None => ShardedServer::with_policy(cfg.shards, cfg.policy),
    };
    server.set_queue_capacity(cfg.queue_cap);
    server.set_telemetry(cfg.telemetry);

    let mut conns: BTreeMap<u64, ConnState> = BTreeMap::new();
    let mut sessions: BTreeMap<u64, SessState> = BTreeMap::new();
    let mut open: BTreeMap<Ticket, OpenTicket> = BTreeMap::new();
    // EWMA of tick duration, the Busy retry hint. Seeded at 5ms — any
    // positive value works, the first real tick corrects it.
    let mut ewma_tick_ns: f64 = 5e6;

    let mut ctx = SchedCtx {
        server: &mut server,
        fleet: &fleet,
        conns: &mut conns,
        sessions: &mut sessions,
        open: &mut open,
        stats: &stats,
        max_open_per_conn: cfg.max_open_per_conn,
    };

    let idle = Duration::from_millis(25);
    loop {
        if stop.load(Ordering::SeqCst) {
            break;
        }
        // Block for work, then coalesce: keep absorbing events until the
        // channel stays quiet for `quiesce` (or `max_coalesce` elapses),
        // so a burst of concurrent submits becomes one dense batch.
        match rx.recv_timeout(idle) {
            Ok(ev) => {
                ctx.handle(ev, ewma_tick_ns);
                let coalesce_start = Instant::now();
                while coalesce_start.elapsed() < cfg.max_coalesce {
                    match rx.recv_timeout(cfg.quiesce) {
                        Ok(ev) => ctx.handle(ev, ewma_tick_ns),
                        Err(mpsc::RecvTimeoutError::Timeout) => break,
                        Err(mpsc::RecvTimeoutError::Disconnected) => return,
                    }
                }
            }
            Err(mpsc::RecvTimeoutError::Timeout) => {}
            Err(mpsc::RecvTimeoutError::Disconnected) => break,
        }
        if stop.load(Ordering::SeqCst) {
            break;
        }
        while ctx.server.pending() > 0 && !stop.load(Ordering::SeqCst) {
            let t0 = Instant::now();
            ctx.server.tick(ctx.fleet);
            let dt = t0.elapsed().as_nanos() as f64;
            ewma_tick_ns = 0.8 * ewma_tick_ns + 0.2 * dt;
            ctx.stats.ticks.fetch_add(1, Ordering::Relaxed);
            ctx.sweep();
            // Absorb whatever arrived while the tick ran — submits
            // refill the next batch, and leaves/joins must not starve
            // behind a long backlog.
            while let Ok(ev) = rx.try_recv() {
                ctx.handle(ev, ewma_tick_ns);
            }
        }
    }
    // Dropping `conns` drops every writer sender: writers flush, shut
    // their sockets, readers unblock and exit.
}

/// The scheduler's mutable world, factored out so event handling and the
/// post-tick sweep can share it.
struct SchedCtx<'a> {
    server: &'a mut ShardedServer<NetLlmFleet<'a>>,
    fleet: &'a NetLlmFleet<'a>,
    conns: &'a mut BTreeMap<u64, ConnState>,
    sessions: &'a mut BTreeMap<u64, SessState>,
    open: &'a mut BTreeMap<Ticket, OpenTicket>,
    stats: &'a IngressStats,
    max_open_per_conn: usize,
}

impl SchedCtx<'_> {
    fn handle(&mut self, ev: Event, ewma_tick_ns: f64) {
        match ev {
            Event::Wake => {}
            Event::Connect { conn, tx } => {
                self.conns.insert(conn, ConnState { tx, sessions: BTreeSet::new(), open: 0 });
            }
            Event::Gone { conn } => self.drop_conn(conn),
            Event::Incoming { conn, frame } => self.handle_frame(conn, *frame, ewma_tick_ns),
        }
    }

    fn handle_frame(&mut self, conn: u64, frame: Frame, ewma_tick_ns: f64) {
        if !self.conns.contains_key(&conn) {
            return; // already dropped for a violation; ignore the tail
        }
        match frame {
            Frame::Join { group } => {
                let group = group as usize;
                if group > FLEET_VP {
                    return self.violation(conn);
                }
                let session = self.server.join_group(self.fleet, group);
                let shard = self.server.shard_of(session) as u32;
                self.conns.get_mut(&conn).expect("checked above").sessions.insert(session);
                self.sessions.insert(session, SessState { conn, group, steps: 0 });
                self.stats.sessions_joined.fetch_add(1, Ordering::Relaxed);
                self.send(conn, Frame::Joined { session, shard });
            }
            Frame::Submit { session, obs } => {
                // Guard before touching the server: a foreign or unknown
                // session id, or an observation of the wrong modality,
                // is a protocol violation (the server would panic).
                let Some(sess) = self.sessions.get(&session) else {
                    return self.violation(conn);
                };
                if sess.conn != conn || !obs_matches_group(&obs, sess.group) {
                    return self.violation(conn);
                }
                // Fairness cap before the shared queues: a connection at
                // its in-flight bound is refused exactly like a full
                // shard queue — Busy, retry after a tick — so one greedy
                // pipeline can never crowd every other connection out of
                // the admission queues.
                if self.conns.get(&conn).expect("checked above").open >= self.max_open_per_conn {
                    let retry_after_ms = ((ewma_tick_ns / 1e6).ceil() as u32).max(1);
                    self.stats.busy.fetch_add(1, Ordering::Relaxed);
                    self.server.journal().record(
                        self.server.tick_count(),
                        EventKind::Busy { session, reason: RefusalReason::FairnessCap },
                    );
                    let reason = BusyReason::QueueFull;
                    return self.send(conn, Frame::Busy { session, reason, retry_after_ms });
                }
                match self.server.submit(session, obs) {
                    Ok(ticket) => {
                        self.open.insert(
                            ticket,
                            OpenTicket { conn, session, submitted: Instant::now() },
                        );
                        self.conns.get_mut(&conn).expect("checked above").open += 1;
                        self.stats.submits.fetch_add(1, Ordering::Relaxed);
                        self.send(conn, Frame::TicketGrant { session, ticket: ticket.0 });
                    }
                    Err(err) => {
                        let (reason, refusal) = match err {
                            SubmitError::QueueFull { .. } => {
                                (BusyReason::QueueFull, RefusalReason::QueueFull)
                            }
                            SubmitError::RetryAfterTick { .. } => {
                                (BusyReason::ShardSuspect, RefusalReason::Suspect)
                            }
                        };
                        let retry_after_ms = ((ewma_tick_ns / 1e6).ceil() as u32).max(1);
                        self.stats.busy.fetch_add(1, Ordering::Relaxed);
                        self.server.journal().record(
                            self.server.tick_count(),
                            EventKind::Busy { session, reason: refusal },
                        );
                        self.send(conn, Frame::Busy { session, reason, retry_after_ms });
                    }
                }
            }
            Frame::Leave { session } => {
                let Some(sess) = self.sessions.get(&session) else {
                    return self.violation(conn);
                };
                if sess.conn != conn {
                    return self.violation(conn);
                }
                let (unpolled, dropped) = self.leave_session(session, true);
                self.conns.get_mut(&conn).expect("checked above").sessions.remove(&session);
                self.send(conn, Frame::LeaveAck { session, unpolled, dropped });
            }
            Frame::Bye => self.drop_conn(conn),
            // Telemetry scrape: answered between ticks, from the same
            // thread that owns the server, so a report is always a
            // consistent point-in-time view. Any connection may scrape —
            // the counters hold no session payloads.
            Frame::MetricsRequest => {
                let mut snapshot = self.server.metrics().snapshot();
                snapshot.ingress = self.stats.snapshot();
                self.send(conn, Frame::MetricsReport { snapshot });
            }
            Frame::EventsRequest { since_seq } => {
                let view = self.server.journal().drain(since_seq);
                self.send(
                    conn,
                    Frame::EventsBatch {
                        next_seq: view.next_seq,
                        dropped: view.dropped,
                        events: view.events,
                    },
                );
            }
            // Client-bound (or handshake) frames arriving here are a
            // violation — the codec is shared, the direction is not.
            Frame::Hello { .. }
            | Frame::HelloAck { .. }
            | Frame::HelloReject { .. }
            | Frame::Joined { .. }
            | Frame::TicketGrant { .. }
            | Frame::Busy { .. }
            | Frame::Completion { .. }
            | Frame::Failed { .. }
            | Frame::LeaveAck { .. }
            | Frame::MetricsReport { .. }
            | Frame::EventsBatch { .. } => self.violation(conn),
        }
    }

    /// Resolve every swept-able ticket: Served → Completion push (with
    /// the step's logits), Failed → Failed push, Pending/Requeued → keep
    /// waiting. Runs after every tick, which is what makes completion
    /// delivery push-based and keeps `unpolled` empty at leave time.
    fn sweep(&mut self) {
        let tickets: Vec<Ticket> = self.open.keys().copied().collect();
        for ticket in tickets {
            match self.server.poll_status(ticket) {
                TicketStatus::Pending | TicketStatus::Requeued => {}
                TicketStatus::Served(action) => {
                    let ot = self.open.remove(&ticket).expect("ticket is open");
                    self.release_open(ot.conn);
                    // Valid because the queue drains ≤1 arrival per
                    // session per tick and we sweep after *every* tick:
                    // a Served ticket's logits are from the tick that
                    // just ran.
                    let logits = self.server.last_logits(ot.session).to_vec();
                    let step = {
                        let sess = self.sessions.get_mut(&ot.session).expect("session is live");
                        let s = sess.steps;
                        sess.steps += 1;
                        s
                    };
                    let ns = ot.submitted.elapsed().as_nanos() as u64;
                    self.server.metrics().record_ingress_latency(ns);
                    let shard = self.server.shard_of(ot.session);
                    self.server.metrics().record_shard_latency(shard, ns);
                    self.stats.completions.fetch_add(1, Ordering::Relaxed);
                    self.send(
                        ot.conn,
                        Frame::Completion {
                            ticket: ticket.0,
                            session: ot.session,
                            step,
                            action,
                            logits,
                        },
                    );
                }
                TicketStatus::Failed => {
                    let ot = self.open.remove(&ticket).expect("ticket is open");
                    self.release_open(ot.conn);
                    self.stats.failed.fetch_add(1, Ordering::Relaxed);
                    self.send(ot.conn, Frame::Failed { ticket: ticket.0, session: ot.session });
                }
            }
        }
    }

    /// Close one session and resolve what it leaves behind. With
    /// `notify`, dropped tickets go out as [`Frame::Failed`] (the
    /// explicit-leave path); without, they are tallied as
    /// `failed_on_disconnect`. Returns `(unpolled, dropped)` counts for
    /// the ack.
    fn leave_session(&mut self, session: u64, notify: bool) -> (u32, u32) {
        let sess = self.sessions.remove(&session).expect("session is live");
        let report = self.server.leave(session);
        // The eager sweep polls every completion the tick it lands, so
        // `unpolled` is empty in steady state; any stragglers still get
        // their action (logits are gone with the session's slot).
        let mut steps = sess.steps;
        for (ticket, action) in report.unpolled {
            if self.open.remove(&ticket).is_some() {
                self.release_open(sess.conn);
            }
            self.stats.completions.fetch_add(1, Ordering::Relaxed);
            if notify {
                let step = steps;
                steps += 1;
                self.send(
                    sess.conn,
                    Frame::Completion {
                        ticket: ticket.0,
                        session,
                        step,
                        action,
                        logits: Vec::new(),
                    },
                );
            }
        }
        let mut dropped = 0u32;
        for (ticket, _obs) in report.dropped_arrivals {
            if self.open.remove(&ticket).is_some() {
                self.release_open(sess.conn);
            }
            dropped += 1;
            if notify {
                self.stats.failed.fetch_add(1, Ordering::Relaxed);
                self.send(sess.conn, Frame::Failed { ticket: ticket.0, session });
            } else {
                self.stats.failed_on_disconnect.fetch_add(1, Ordering::Relaxed);
            }
        }
        let unpolled = (steps - sess.steps) as u32;
        (unpolled, dropped)
    }

    /// Disconnect path (reader gone, `Bye`, or violation): every session
    /// of the connection leaves; queued tickets fail silently into the
    /// `failed_on_disconnect` counter — resolved, not vanished.
    fn drop_conn(&mut self, conn: u64) {
        let Some(state) = self.conns.remove(&conn) else { return };
        for session in state.sessions {
            let _ = self.leave_session(session, false);
        }
        // Dropping `state.tx` ends the writer, which shuts the socket.
    }

    /// One in-flight ticket of `conn` resolved — free its fairness-cap
    /// slot. A no-op for connections already dropped (their state, cap
    /// counter included, went with them).
    fn release_open(&mut self, conn: u64) {
        if let Some(state) = self.conns.get_mut(&conn) {
            state.open = state.open.saturating_sub(1);
        }
    }

    fn violation(&mut self, conn: u64) {
        self.stats.protocol_errors.fetch_add(1, Ordering::Relaxed);
        self.drop_conn(conn);
    }

    fn send(&mut self, conn: u64, frame: Frame) {
        if let Some(state) = self.conns.get(&conn) {
            // A send error means the writer died (peer gone); the
            // reader's Gone event will clean up.
            let _ = state.tx.send(frame);
        }
    }
}

/// Does this observation's modality match the session's backbone group?
fn obs_matches_group(obs: &FleetObs, group: usize) -> bool {
    matches!(
        (obs, group),
        (FleetObs::Abr(_), FLEET_ABR) | (FleetObs::Cjs(_), FLEET_CJS) | (FleetObs::Vp(_), FLEET_VP)
    )
}

// ---- client -------------------------------------------------------------

/// Blocking loopback client for the ingress protocol: dial, handshake,
/// then exchange [`Frame`]s. Submits may be pipelined — grants and
/// busy replies come back in submit order, completions in serve order;
/// [`WireClient::recv`] surfaces whichever frame is next.
pub struct WireClient {
    writer: BufWriter<TcpStream>,
    reader: BufReader<TcpStream>,
    version: u16,
}

impl WireClient {
    /// Dial `addr` and run the version handshake. Errors with
    /// [`WireError::VersionUnsupported`] if the server rejects our range.
    pub fn connect(addr: SocketAddr) -> Result<Self, WireError> {
        let stream = TcpStream::connect(addr)?;
        let _ = stream.set_nodelay(true);
        // Generous guard against a hung server: tests should fail, not
        // wedge.
        let _ = stream.set_read_timeout(Some(Duration::from_secs(120)));
        let mut writer = BufWriter::new(stream.try_clone()?);
        let mut reader = BufReader::new(stream);
        write_frame(
            &mut writer,
            &Frame::Hello { version: WIRE_VERSION, min_version: MIN_WIRE_VERSION },
        )?;
        writer.flush()?;
        match read_frame(&mut reader)? {
            Frame::HelloAck { version } => Ok(WireClient { writer, reader, version }),
            Frame::HelloReject { min, max } => Err(WireError::VersionUnsupported { min, max }),
            _ => Err(WireError::Malformed("expected a handshake reply")),
        }
    }

    /// The version the handshake negotiated.
    pub fn version(&self) -> u16 {
        self.version
    }

    /// Send any frame (write + flush).
    pub fn send(&mut self, frame: &Frame) -> Result<(), WireError> {
        write_frame(&mut self.writer, frame)?;
        self.writer.flush()?;
        Ok(())
    }

    /// Block for the next frame from the server.
    pub fn recv(&mut self) -> Result<Frame, WireError> {
        read_frame(&mut self.reader)
    }

    /// Open a session on backbone `group`; blocks for the grant.
    /// Returns `(session, shard)`. Call before pipelining submits —
    /// any other frame arriving instead of the `Joined` is an error.
    pub fn join(&mut self, group: u32) -> Result<(u64, u32), WireError> {
        self.send(&Frame::Join { group })?;
        match self.recv()? {
            Frame::Joined { session, shard } => Ok((session, shard)),
            _ => Err(WireError::Malformed("expected Joined")),
        }
    }

    /// Submit one observation (pipelined: the grant or busy reply comes
    /// back via [`WireClient::recv`] in submit order).
    pub fn submit(&mut self, session: u64, obs: &FleetObs) -> Result<(), WireError> {
        self.send(&Frame::Submit { session, obs: obs.clone() })
    }

    /// Ask to close `session`; the ack (and any final completions or
    /// failures for its tickets) comes back via [`WireClient::recv`].
    pub fn leave(&mut self, session: u64) -> Result<(), WireError> {
        self.send(&Frame::Leave { session })
    }

    /// Graceful close: `Bye` then drop. Server-side, every session of
    /// this connection leaves and its queued tickets fail.
    pub fn bye(mut self) -> Result<(), WireError> {
        self.send(&Frame::Bye)
    }

    /// Scrape the fleet's full [`MetricsSnapshot`] (per-shard counters,
    /// phase and latency histograms, ingress counters); blocks for the
    /// report. Use a dedicated connection for scraping — on a connection
    /// with submits in flight, a pushed `Completion` can arrive where
    /// the report is expected.
    pub fn scrape_metrics(&mut self) -> Result<MetricsSnapshot, WireError> {
        self.send(&Frame::MetricsRequest)?;
        match self.recv()? {
            Frame::MetricsReport { snapshot } => Ok(snapshot),
            _ => Err(WireError::Malformed("expected MetricsReport")),
        }
    }

    /// Drain the fleet's event journal from cursor `since_seq`; blocks
    /// for the batch. Pass the returned [`EventsView::next_seq`] as the
    /// next call's cursor. Same dedicated-connection contract as
    /// [`WireClient::scrape_metrics`].
    pub fn scrape_events(&mut self, since_seq: u64) -> Result<EventsView, WireError> {
        self.send(&Frame::EventsRequest { since_seq })?;
        match self.recv()? {
            Frame::EventsBatch { next_seq, dropped, events } => {
                Ok(EventsView { events, next_seq, dropped })
            }
            _ => Err(WireError::Malformed("expected EventsBatch")),
        }
    }

    /// Split into independent send and receive halves, so a load
    /// generator can pump completions from one thread while another
    /// keeps submitting.
    pub fn split(self) -> (WireSender, WireReceiver) {
        (WireSender { writer: self.writer }, WireReceiver { reader: self.reader })
    }
}

/// Write half of a split [`WireClient`].
pub struct WireSender {
    writer: BufWriter<TcpStream>,
}

impl WireSender {
    /// Send any frame (write + flush).
    pub fn send(&mut self, frame: &Frame) -> Result<(), WireError> {
        write_frame(&mut self.writer, frame)?;
        self.writer.flush()?;
        Ok(())
    }

    /// Submit one observation (the grant arrives on the receive half).
    pub fn submit(&mut self, session: u64, obs: &FleetObs) -> Result<(), WireError> {
        self.send(&Frame::Submit { session, obs: obs.clone() })
    }

    /// Ask to close `session` (the ack arrives on the receive half).
    pub fn leave(&mut self, session: u64) -> Result<(), WireError> {
        self.send(&Frame::Leave { session })
    }

    /// Graceful close of the whole connection.
    pub fn bye(mut self) -> Result<(), WireError> {
        self.send(&Frame::Bye)
    }
}

/// Read half of a split [`WireClient`].
pub struct WireReceiver {
    reader: BufReader<TcpStream>,
}

impl WireReceiver {
    /// Block for the next frame from the server. Errors once the
    /// connection closes.
    pub fn recv(&mut self) -> Result<Frame, WireError> {
        read_frame(&mut self.reader)
    }
}

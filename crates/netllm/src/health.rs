//! Heartbeat-driven shard health checking.
//!
//! Every [`crate::ShardedServer::tick`] snapshots a [`Heartbeat`] per live
//! shard (occupancy, queue depth, KV bytes — the same numbers the
//! `metrics` registry exports) and feeds the vector to
//! [`HealthChecker::observe`]. The checker runs one miss-threshold state
//! machine per shard:
//!
//! ```text
//!            beat                    beat (revived)
//!        ┌─────────┐            ┌──────────────────────┐
//!        ▼         │            │                      │
//!   ┌─────────┐    │   miss ┌───┴─────┐  misses >= T   │──► (recover:
//!   │ Healthy ├────┴───────►│ Suspect ├───────────────►│Dead│ salvage +
//!   └─────────┘             └─────────┘ (probes with   └────┘ re-admit)
//!                            retry/backoff: next probe
//!                            after 1, 2, 4 … ≤ max ticks)
//! ```
//!
//! The split mirrors the DCCP wired-cum-wireless insight the ISSUE cites:
//! a *transient* fault (stalled shard, [`crate::Fault::Stall`]) must cost
//! only retries — the first returning beat snaps Suspect back to Healthy
//! with all state intact — while a *persistent* fault (crash,
//! [`crate::Fault::Kill`]) must be declared Dead in bounded time so the
//! server can recover sessions instead of hanging tickets. Misses are
//! counted only on probe ticks, and probes back off exponentially
//! (`backoff_base`, doubling to `backoff_max`), so the declaration
//! latency is a deterministic function of [`HealthConfig`]:
//! with `miss_threshold = 2, backoff_base = 1`, a shard killed at tick T
//! is Dead at T+2. Dead is terminal — a beat from a shard already
//! declared Dead is ignored (its sessions have been re-admitted
//! elsewhere; a zombie process must not split the fleet's state).

/// Tunables of the per-shard failure state machine.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct HealthConfig {
    /// Missed probes before a Suspect shard is declared Dead (>= 1).
    /// Higher values tolerate longer stalls; lower values recover faster.
    pub miss_threshold: u32,
    /// Ticks until the first retry probe after a miss (>= 1).
    pub backoff_base: u64,
    /// Cap on the exponential probe backoff, in ticks.
    pub backoff_max: u64,
}

impl Default for HealthConfig {
    /// `miss_threshold = 3`, `backoff_base = 1`, `backoff_max = 4`:
    /// a crash is declared in 4 ticks (misses at T+1, T+2, T+4), while
    /// stalls up to 3 ticks revive without recovery.
    fn default() -> Self {
        HealthConfig { miss_threshold: 3, backoff_base: 1, backoff_max: 4 }
    }
}

impl HealthConfig {
    /// Fast-failover profile for tests and benches: `miss_threshold = 2`,
    /// `backoff_base = 1` — a kill at tick T is declared Dead at T+2.
    pub fn fast() -> Self {
        HealthConfig { miss_threshold: 2, backoff_base: 1, backoff_max: 2 }
    }

    fn validate(&self) {
        assert!(self.miss_threshold >= 1, "miss_threshold must be >= 1");
        assert!(self.backoff_base >= 1, "backoff_base must be >= 1");
        assert!(self.backoff_max >= self.backoff_base, "backoff_max below backoff_base");
    }
}

/// Liveness/occupancy snapshot one shard reports each tick. Fed from the
/// same per-shard numbers the `metrics` registry exports; the checker
/// only consumes presence/absence, but the payload rides along so the
/// last-known load of a dead shard is visible to recovery and reports.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct Heartbeat {
    /// Tick the beat was emitted.
    pub tick: u64,
    /// Live sessions on the shard.
    pub occupancy: usize,
    /// Arrivals pending in the shard's admission queue.
    pub queue_depth: usize,
    /// KV bytes the shard's sessions hold.
    pub kv_bytes: usize,
}

/// Health of one shard.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum HealthState {
    /// Beating normally; drained and stepped every tick.
    Healthy,
    /// Missed at least one beat; not drained or stepped (its work waits),
    /// probed again with exponential backoff.
    Suspect {
        /// Probes missed so far.
        misses: u32,
        /// Tick of the next probe.
        next_probe: u64,
        /// Current backoff interval in ticks.
        backoff: u64,
    },
    /// Declared dead; sessions salvaged and re-admitted elsewhere.
    /// Terminal.
    Dead,
}

impl HealthState {
    pub fn is_healthy(&self) -> bool {
        matches!(self, HealthState::Healthy)
    }

    pub fn is_suspect(&self) -> bool {
        matches!(self, HealthState::Suspect { .. })
    }

    pub fn is_dead(&self) -> bool {
        matches!(self, HealthState::Dead)
    }
}

/// Per-shard miss-threshold state machines over the heartbeat stream.
#[derive(Clone, Debug)]
pub struct HealthChecker {
    cfg: HealthConfig,
    states: Vec<HealthState>,
    last_beat: Vec<Option<Heartbeat>>,
}

impl HealthChecker {
    /// Checker for `shards` shards, all Healthy.
    pub fn new(shards: usize, cfg: HealthConfig) -> Self {
        cfg.validate();
        HealthChecker {
            cfg,
            states: vec![HealthState::Healthy; shards],
            last_beat: vec![None; shards],
        }
    }

    /// The configured thresholds.
    pub fn config(&self) -> HealthConfig {
        self.cfg
    }

    /// Current state of `shard`.
    pub fn state(&self, shard: usize) -> HealthState {
        self.states[shard]
    }

    /// All shard states.
    pub fn states(&self) -> &[HealthState] {
        &self.states
    }

    /// Last beat received from `shard` (survives its death — the
    /// last-known occupancy recovery reports against).
    pub fn last_heartbeat(&self, shard: usize) -> Option<Heartbeat> {
        self.last_beat[shard]
    }

    /// Shards currently Healthy.
    pub fn healthy_shards(&self) -> Vec<usize> {
        (0..self.states.len()).filter(|&s| self.states[s].is_healthy()).collect()
    }

    /// Shards not yet declared Dead (Healthy or Suspect).
    pub fn live_shards(&self) -> Vec<usize> {
        (0..self.states.len()).filter(|&s| !self.states[s].is_dead()).collect()
    }

    /// Feed one tick's heartbeat vector (`None` = the shard did not beat).
    /// Returns the shards **newly declared Dead** this tick, in index
    /// order — the caller runs recovery for exactly these.
    pub fn observe(&mut self, tick: u64, beats: &[Option<Heartbeat>]) -> Vec<usize> {
        assert_eq!(beats.len(), self.states.len(), "heartbeat vector width != fleet width");
        let mut newly_dead = Vec::new();
        for (s, beat) in beats.iter().enumerate() {
            match (self.states[s], beat) {
                (HealthState::Dead, _) => {} // terminal; zombie beats ignored
                (_, Some(b)) => {
                    self.last_beat[s] = Some(*b);
                    self.states[s] = HealthState::Healthy;
                }
                (HealthState::Healthy, None) => {
                    if self.cfg.miss_threshold <= 1 {
                        self.states[s] = HealthState::Dead;
                        newly_dead.push(s);
                    } else {
                        self.states[s] = HealthState::Suspect {
                            misses: 1,
                            next_probe: tick + self.cfg.backoff_base,
                            backoff: self.cfg.backoff_base,
                        };
                    }
                }
                (HealthState::Suspect { misses, next_probe, backoff }, None) => {
                    if tick < next_probe {
                        continue; // not a probe tick; miss not counted
                    }
                    let misses = misses + 1;
                    if misses >= self.cfg.miss_threshold {
                        self.states[s] = HealthState::Dead;
                        newly_dead.push(s);
                    } else {
                        let backoff = (backoff * 2).min(self.cfg.backoff_max);
                        self.states[s] =
                            HealthState::Suspect { misses, next_probe: tick + backoff, backoff };
                    }
                }
            }
        }
        newly_dead
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn beat(tick: u64) -> Option<Heartbeat> {
        Some(Heartbeat { tick, occupancy: 1, queue_depth: 0, kv_bytes: 0 })
    }

    #[test]
    fn transient_stall_revives_without_declaration() {
        let mut hc = HealthChecker::new(2, HealthConfig::default());
        assert!(hc.observe(1, &[beat(1), beat(1)]).is_empty());
        // Shard 1 stalls for two ticks — under the 3-miss threshold.
        assert!(hc.observe(2, &[beat(2), None]).is_empty());
        assert!(hc.state(1).is_suspect());
        assert!(hc.observe(3, &[beat(3), None]).is_empty());
        assert!(hc.state(1).is_suspect());
        // It revives: first beat snaps straight back to Healthy.
        assert!(hc.observe(4, &[beat(4), beat(4)]).is_empty());
        assert!(hc.state(1).is_healthy());
        assert_eq!(hc.healthy_shards(), vec![0, 1]);
    }

    #[test]
    fn persistent_crash_is_declared_dead_on_the_backoff_schedule() {
        // miss_threshold 3, base 1, max 4: misses count at T+1 (first
        // miss), T+2 (probe after backoff 1), T+4 (probe after backoff 2)
        // — declared Dead at T+4, with T+3 explicitly not a probe tick.
        let mut hc = HealthChecker::new(1, HealthConfig::default());
        assert!(hc.observe(1, &[None]).is_empty());
        assert_eq!(hc.state(0), HealthState::Suspect { misses: 1, next_probe: 2, backoff: 1 });
        assert!(hc.observe(2, &[None]).is_empty());
        assert_eq!(hc.state(0), HealthState::Suspect { misses: 2, next_probe: 4, backoff: 2 });
        assert!(hc.observe(3, &[None]).is_empty(), "tick 3 is inside the backoff window");
        assert_eq!(hc.state(0), HealthState::Suspect { misses: 2, next_probe: 4, backoff: 2 });
        assert_eq!(hc.observe(4, &[None]), vec![0], "third missed probe declares Dead");
        assert!(hc.state(0).is_dead());
        assert!(hc.live_shards().is_empty());
    }

    #[test]
    fn fast_profile_declares_in_two_ticks_and_dead_is_terminal() {
        let mut hc = HealthChecker::new(2, HealthConfig::fast());
        assert!(hc.observe(1, &[beat(1), beat(1)]).is_empty());
        assert!(hc.observe(2, &[beat(2), None]).is_empty());
        assert_eq!(hc.observe(3, &[beat(3), None]), vec![1]);
        // A zombie beat after the declaration must not resurrect it.
        assert!(hc.observe(4, &[beat(4), beat(4)]).is_empty());
        assert!(hc.state(1).is_dead());
        assert_eq!(hc.healthy_shards(), vec![0]);
        assert_eq!(hc.last_heartbeat(1).unwrap().tick, 1, "last beat survives the death");
    }

    #[test]
    fn threshold_one_declares_on_the_first_miss() {
        let mut hc = HealthChecker::new(
            1,
            HealthConfig { miss_threshold: 1, backoff_base: 1, backoff_max: 1 },
        );
        assert_eq!(hc.observe(1, &[None]), vec![0]);
    }
}

//! The integration API of Figure 9: `RL_Collect`, `Adapt`, `Test`.
//!
//! These functions wrap the per-task adapters behind the three entry points
//! the paper defines for plugging NetLLM into an existing SL/RL codebase,
//! plus the environment builders (datasets, traces, workloads) the
//! evaluation settings of Tables 2–4 describe.

use crate::adapt::{AdaptMode, LoraSpec};
use crate::adapters::abr::{AbrRecorder, AbrTrajectory, NetLlmAbr};
use crate::adapters::cjs::{collect_episode, CjsTrajectory, NetLlmCjs};
use crate::adapters::vp::NetLlmVp;
use crate::settings::{AbrSetting, CjsSetting, Fidelity, VpSetting};
use nt_abr::{
    envivio_like, generate_set, run_session, synth_video, AbrPolicy, BandwidthTrace, QoeWeights,
    SessionStats, SimConfig, Video,
};
use nt_cjs::{generate_workload, run_workload, CjsStats, Job, Scheduler, WorkloadConfig};
use nt_llm::zoo::LoadedLm;
use nt_tensor::Rng;
use nt_vp::{extract_samples, generate as generate_vp, VpSample};

/// Default LoRA budget per task. The paper's 32/128/128 rank split scales
/// down to a single rank at these backbone sizes, so every task currently
/// shares one spec; the `Task` parameter stays so per-task budgets can
/// diverge again when the backbones grow.
pub fn default_lora(_task: Task) -> LoraSpec {
    LoraSpec { rank: 4, alpha: 8.0 }
}

/// The three use cases.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Task {
    Vp,
    Abr,
    Cjs,
}

// ---------------------------------------------------------------------------
// Environment builders
// ---------------------------------------------------------------------------

/// VP: build train/test sample sets for a Table 2 setting. Train samples
/// always come from the *default* training split (jin2022-like, default
/// windows); test samples come from the requested setting.
pub struct VpData {
    pub train: Vec<VpSample>,
    pub test: Vec<VpSample>,
}

pub fn build_vp_data(setting: &VpSetting, fidelity: Fidelity) -> VpData {
    let train_setting = crate::settings::VP_DEFAULT;
    let train_spec = {
        let mut s = train_setting.dataset_spec();
        // Scale dataset volume with fidelity (videos/viewers subsetting
        // happens below; generating the full paper-scale dataset is cheap
        // only at Default+).
        if fidelity == Fidelity::Smoke {
            s.videos = 3;
            s.viewers = 6;
            s.secs = 20;
        }
        s
    };
    let train_ds = generate_vp(&train_spec);
    let n_v = train_ds.spec.videos;
    let n_u = train_ds.spec.viewers;
    // Paper split: 15/6/6 videos, 42/21/21 viewers — proportional split
    // with disjoint train/test videos and viewers.
    let train_vids: Vec<usize> = (0..(n_v * 5 / 9).max(1)).collect();
    let test_vids: Vec<usize> = ((n_v * 7 / 9).max(1).min(n_v - 1)..n_v).collect();
    let train_viewers: Vec<usize> = (0..(n_u / 2).max(1)).collect();
    let test_viewers: Vec<usize> = ((n_u * 3 / 4).max(1).min(n_u - 1)..n_u).collect();

    let train = extract_samples(
        &train_ds,
        &train_vids,
        &train_viewers,
        train_setting.hw(),
        train_setting.pw(),
        7,
        fidelity.count(600),
    );
    // Test set: from the requested setting (possibly a different dataset
    // and windows).
    let test = if setting.dataset == train_setting.dataset && setting.name == "default" {
        extract_samples(
            &train_ds,
            &test_vids,
            &test_viewers,
            setting.hw(),
            setting.pw(),
            11,
            fidelity.count(200),
        )
    } else {
        let mut spec = setting.dataset_spec();
        if fidelity == Fidelity::Smoke {
            spec.videos = 2;
            spec.viewers = 4;
            spec.secs = 25;
        } else {
            // Keep generation affordable: the Wu2017-like profile's full 9
            // videos are used, subset of viewers.
            spec.viewers = spec.viewers.min(16);
        }
        let ds = generate_vp(&spec);
        let all_v: Vec<usize> = (0..ds.spec.videos).collect();
        let all_u: Vec<usize> = (0..ds.spec.viewers).collect();
        extract_samples(&ds, &all_v, &all_u, setting.hw(), setting.pw(), 11, fidelity.count(200))
    };
    VpData { train, test }
}

/// ABR: `(video, traces)` for a Table 3 setting. `train` selects the
/// training pool (more traces) vs the held-out test pool.
pub fn build_abr_env(
    setting: &AbrSetting,
    fidelity: Fidelity,
    train: bool,
    seed: u64,
) -> (Video, Vec<BandwidthTrace>) {
    let mut vrng = Rng::seeded(0x56AD);
    let video = if setting.synth_video { synth_video(&mut vrng) } else { envivio_like(&mut vrng) };
    let n = if train { fidelity.count(40) } else { fidelity.count(30) };
    let mut trng = Rng::seeded(seed ^ if train { 0xAAAA } else { 0xBBBB });
    let traces = generate_set(setting.traces, n, 350, &mut trng);
    (video, traces)
}

/// CJS: test workloads for a Table 4 setting (several seeds).
pub fn build_cjs_workloads(
    setting: &CjsSetting,
    fidelity: Fidelity,
    seeds: &[u64],
) -> Vec<Vec<Job>> {
    seeds
        .iter()
        .map(|&s| {
            generate_workload(&WorkloadConfig {
                num_jobs: setting.scaled_jobs(fidelity),
                mean_interarrival: setting.mean_interarrival,
                seed: 0xC15 ^ s,
            })
        })
        .collect()
}

// ---------------------------------------------------------------------------
// RL_Collect (Fig 9)
// ---------------------------------------------------------------------------

/// Default simulator configuration + QoE weights shared by the ABR collect
/// and test entry points (one place to change both).
fn abr_defaults() -> (SimConfig, QoeWeights) {
    (SimConfig::default(), QoeWeights::default())
}

/// Collect an ABR experience dataset by running an existing policy over the
/// training environments (the paper uses GENET).
pub fn rl_collect_abr(
    policy: &mut dyn AbrPolicy,
    video: &Video,
    traces: &[BandwidthTrace],
) -> Vec<AbrTrajectory> {
    let (cfg, w) = abr_defaults();
    traces
        .iter()
        .map(|t| {
            let mut rec = AbrRecorder::new(policy);
            run_session(&mut rec, video, t, &cfg, &w);
            rec.traj
        })
        .collect()
}

/// Collect a CJS experience dataset with an existing scheduler (the paper
/// uses Decima).
pub fn rl_collect_cjs(
    scheduler: &mut dyn Scheduler,
    workloads: &[Vec<Job>],
    executors: usize,
) -> Vec<CjsTrajectory> {
    workloads.iter().map(|jobs| collect_episode(scheduler, jobs, executors)).collect()
}

// ---------------------------------------------------------------------------
// Adapt (Fig 9)
// ---------------------------------------------------------------------------

/// Adapt a backbone for VP (supervised DD-LRNA).
pub fn adapt_vp(
    backbone: LoadedLm,
    mode: AdaptMode,
    train: &[VpSample],
    iters: usize,
    seed: u64,
) -> NetLlmVp {
    let max_pw = crate::settings::VP_DEFAULT.pw();
    let mut m = NetLlmVp::new(backbone, mode, default_lora(Task::Vp), max_pw, seed);
    m.adapt(train, iters, 1e-3, seed ^ 0xAD);
    m
}

/// Adapt a backbone for ABR (data-driven RL DD-LRNA). Paper context window
/// w = 10.
pub fn adapt_abr(
    backbone: LoadedLm,
    mode: AdaptMode,
    dataset: &[AbrTrajectory],
    iters: usize,
    seed: u64,
) -> NetLlmAbr {
    let mut m = NetLlmAbr::new(backbone, mode, default_lora(Task::Abr), 10, seed);
    m.adapt(dataset, iters, 1e-3, seed ^ 0xAD);
    m
}

/// Adapt a backbone for CJS (data-driven RL DD-LRNA). The paper's w = 20
/// history is compressed to 8 pooled-graph steps here (token budget of the
/// small backbone; see module docs of `adapters::cjs`).
pub fn adapt_cjs(
    backbone: LoadedLm,
    mode: AdaptMode,
    dataset: &[CjsTrajectory],
    iters: usize,
    seed: u64,
) -> NetLlmCjs {
    let mut m = NetLlmCjs::new(backbone, mode, default_lora(Task::Cjs), 8, seed);
    m.adapt(dataset, iters, 1e-3, seed ^ 0xAD);
    m
}

// ---------------------------------------------------------------------------
// Test (Fig 9)
// ---------------------------------------------------------------------------

/// Evaluate any ABR policy over an environment; returns per-trace stats.
pub fn test_abr(
    policy: &mut dyn AbrPolicy,
    video: &Video,
    traces: &[BandwidthTrace],
) -> Vec<SessionStats> {
    let (cfg, w) = abr_defaults();
    traces.iter().map(|t| run_session(policy, video, t, &cfg, &w).0).collect()
}

/// Evaluate any scheduler over workloads; returns per-workload stats.
pub fn test_cjs(
    scheduler: &mut dyn Scheduler,
    workloads: &[Vec<Job>],
    executors: usize,
) -> Vec<CjsStats> {
    workloads.iter().map(|jobs| run_workload(scheduler, jobs, executors, None)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use nt_abr::Bba;
    use nt_cjs::Srpt;

    #[test]
    fn vp_data_builder_respects_fidelity() {
        let d = build_vp_data(&crate::settings::VP_DEFAULT, Fidelity::Smoke);
        assert!(!d.train.is_empty());
        assert!(!d.test.is_empty());
        assert_eq!(d.train[0].history.len(), 10);
        assert_eq!(d.train[0].future.len(), 20);
    }

    #[test]
    fn vp_unseen_settings_change_windows_and_dataset() {
        let d = build_vp_data(&crate::settings::VP_UNSEEN1, Fidelity::Smoke);
        assert_eq!(d.test[0].history.len(), 20);
        assert_eq!(d.test[0].future.len(), 30);
        // train remains the default split
        assert_eq!(d.train[0].history.len(), 10);
    }

    #[test]
    fn abr_env_builder_switches_video_and_traces() {
        let (v1, t1) = build_abr_env(&crate::settings::ABR_DEFAULT, Fidelity::Smoke, false, 1);
        let (v2, _) = build_abr_env(&crate::settings::ABR_UNSEEN2, Fidelity::Smoke, false, 1);
        assert_eq!(v1.name, "envivio-like");
        assert_eq!(v2.name, "synth-video");
        assert!(!t1.is_empty());
    }

    #[test]
    fn rl_collect_and_test_roundtrip() {
        let (video, traces) =
            build_abr_env(&crate::settings::ABR_DEFAULT, Fidelity::Smoke, true, 2);
        let mut bba = Bba::default();
        let data = rl_collect_abr(&mut bba, &video, &traces[..2]);
        assert_eq!(data.len(), 2);
        assert_eq!(data[0].steps.len(), 48);
        let stats = test_abr(&mut bba, &video, &traces[..2]);
        assert_eq!(stats.len(), 2);
    }

    #[test]
    fn cjs_collect_and_test_roundtrip() {
        let wl = build_cjs_workloads(&crate::settings::CJS_DEFAULT, Fidelity::Smoke, &[1, 2]);
        let data = rl_collect_cjs(&mut Srpt, &wl, 10);
        assert_eq!(data.len(), 2);
        assert!(!data[0].steps.is_empty());
        let stats = test_cjs(&mut Srpt, &wl, 10);
        assert_eq!(stats.len(), 2);
    }
}

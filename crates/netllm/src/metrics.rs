//! Process metrics: atomic per-shard serving counters plus the kernel
//! pool's dispatch counters, behind one registry so the benches
//! (`figures --fig bench6`) and the future control plane read the same
//! numbers instead of each keeping private tallies.
//!
//! The registry is owned by [`crate::ShardedServer`] (one
//! [`ShardCounters`] row per shard) and updated from the serving paths
//! with relaxed atomics — counters are monotonic totals, `queue_depth` is
//! a gauge overwritten at every tick boundary. Readers take [`MetricsRegistry::snapshot`]s
//! and diff them for per-phase rates; nothing here locks or blocks the
//! serving hot path.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

/// Number of tick phases [`ShardedServer::tick`](crate::ShardedServer::tick)
/// attributes wall time to — see [`TickPhase`].
pub const TICK_PHASES: usize = 5;

/// One phase of a scheduled tick, the index into a shard's per-phase
/// latency histograms. `Drain`, `PlanStep` and `Settle` are measured per
/// shard; `MemoryGuard` and `Steer` are fleet-wide tick-boundary passes,
/// so their recorded duration is the whole pass, identical on every
/// shard's row (attributing a global rebalance to one shard would be
/// fiction).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TickPhase {
    /// Queue drain at the tick boundary (per shard).
    Drain = 0,
    /// Request planning + the batched engine step (per shard; dominated
    /// by the step).
    PlanStep = 1,
    /// Banking served actions under their tickets (per shard).
    Settle = 2,
    /// The paged-memory guard (fleet-wide pass).
    MemoryGuard = 3,
    /// The cache/page steering pass (fleet-wide pass).
    Steer = 4,
}

impl TickPhase {
    /// Every phase, in recording order.
    pub const ALL: [TickPhase; TICK_PHASES] =
        [Self::Drain, Self::PlanStep, Self::Settle, Self::MemoryGuard, Self::Steer];

    /// Stable short name (report keys, `nt-top` column headers).
    pub fn label(self) -> &'static str {
        match self {
            TickPhase::Drain => "drain",
            TickPhase::PlanStep => "plan+step",
            TickPhase::Settle => "settle",
            TickPhase::MemoryGuard => "memory-guard",
            TickPhase::Steer => "steer",
        }
    }
}

/// One shard's counters. All monotonic totals except `queue_depth` and
/// `held_pages` (gauges overwritten at every tick boundary).
#[derive(Debug, Default)]
pub struct ShardCounters {
    served: AtomicU64,
    steered: AtomicU64,
    steered_in: AtomicU64,
    evicted: AtomicU64,
    evicted_rebuild_rows: AtomicU64,
    queue_depth: AtomicU64,
    held_pages: AtomicU64,
    /// Wall-ns per tick phase ([`TickPhase`] order).
    phases: [LatencyCounters; TICK_PHASES],
    /// Submit→completion latency of tickets served by this shard.
    latency: LatencyCounters,
}

/// Plain-value copy of one shard's counters at a point in time.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ShardSnapshot {
    /// Decisions served by this shard.
    pub served: u64,
    /// Sessions steered *off* this shard (rebalance + cache-aware).
    pub steered: u64,
    /// Sessions steered *onto* this shard — the destination side of the
    /// same moves, so one row shows a shard's churn in both directions.
    pub steered_in: u64,
    /// Sessions whose KV cache this shard evicted under memory pressure.
    pub evicted: u64,
    /// Token rows those evictions priced for replay
    /// ([`crate::ServedTask::rebuild_rows`] at the moment of eviction,
    /// summed) — the eviction-*cost* counter the policy comparison in
    /// `figures --fig bench9` scrapes; recorded identically under every
    /// eviction policy so the totals compare apples-to-apples.
    pub evicted_rebuild_rows: u64,
    /// Pending arrivals in this shard's queue at the last tick boundary.
    pub queue_depth: u64,
    /// Pool pages the shard's sessions held at the last tick boundary
    /// (gauge; 0 for pool-less fleets) — the page-pressure read path.
    pub held_pages: u64,
}

/// Plain-value copy of the kernel pool's cumulative dispatch counters
/// (re-exported from `nt_tensor::pool` so metrics consumers need one
/// import, not two).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct PoolDispatchSnapshot {
    /// Configured pool width (`NT_THREADS` resolution).
    pub workers: u64,
    /// Parallel jobs published to the persistent pool since process start.
    pub dispatches: u64,
    /// Tasks fanned out across those jobs.
    pub tasks: u64,
}

/// Fleet-wide fault/recovery counters (monotonic totals). Per-event
/// detail lives on `TickReport::faults`; these are the cumulative numbers
/// the control-plane read path and `figures --fig bench7` scrape.
#[derive(Debug, Default)]
pub struct FaultCounters {
    shard_kills: AtomicU64,
    sessions_recovered: AtomicU64,
    tickets_failed: AtomicU64,
    arrivals_requeued: AtomicU64,
    recovery_replay_rows: AtomicU64,
}

/// Plain-value copy of [`FaultCounters`] at a point in time.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct FaultSnapshot {
    /// Shards declared Dead by the health checker (kills and fatal
    /// stalls both land here — the declaration is what counts).
    pub shard_kills: u64,
    /// Sessions salvaged off dead shards and re-admitted to survivors.
    pub sessions_recovered: u64,
    /// Tickets resolved `Failed` (poisoned steps, dropped batches).
    pub tickets_failed: u64,
    /// Already-ticketed arrivals re-queued by the fault layer.
    pub arrivals_requeued: u64,
    /// KV rows crashes destroyed that episode-log replay must rebuild.
    pub recovery_replay_rows: u64,
}

/// Number of power-of-two latency buckets: bucket `i` counts samples with
/// `floor(log2(ns)) == i`, so the range spans 1 ns to ~1.2 s and beyond
/// (the last bucket is open-ended).
pub const LATENCY_BUCKETS: usize = 31;

/// Submit→completion latency totals for the network ingress (monotonic,
/// like every other counter here). Exact sums plus a log2 histogram:
/// enough for mean/max and bucket-resolution percentiles without the
/// serving path ever allocating. Precise percentiles for reports are
/// measured client-side (`figures --fig bench8`).
#[derive(Debug, Default)]
pub struct LatencyCounters {
    count: AtomicU64,
    total_ns: AtomicU64,
    max_ns: AtomicU64,
    buckets: [AtomicU64; LATENCY_BUCKETS],
}

impl LatencyCounters {
    /// Record one sample of `ns` nanoseconds: four relaxed atomic ops, no
    /// allocation, no branch beyond the bucket clamp.
    pub fn record(&self, ns: u64) {
        self.count.fetch_add(1, Ordering::Relaxed);
        self.total_ns.fetch_add(ns, Ordering::Relaxed);
        self.max_ns.fetch_max(ns, Ordering::Relaxed);
        let bucket = (63 - ns.max(1).leading_zeros() as usize).min(LATENCY_BUCKETS - 1);
        self.buckets[bucket].fetch_add(1, Ordering::Relaxed);
    }

    /// The counters as plain values.
    pub fn snapshot(&self) -> LatencySnapshot {
        LatencySnapshot {
            count: self.count.load(Ordering::Relaxed),
            total_ns: self.total_ns.load(Ordering::Relaxed),
            max_ns: self.max_ns.load(Ordering::Relaxed),
            buckets: self.buckets.iter().map(|b| b.load(Ordering::Relaxed)).collect(),
        }
    }
}

/// Plain-value copy of [`LatencyCounters`] at a point in time.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct LatencySnapshot {
    /// Samples recorded.
    pub count: u64,
    /// Sum of all samples (ns).
    pub total_ns: u64,
    /// Largest single sample (ns).
    pub max_ns: u64,
    /// Log2 histogram: `buckets[i]` counts samples in `[2^i, 2^(i+1))` ns
    /// (last bucket open-ended).
    pub buckets: Vec<u64>,
}

impl LatencySnapshot {
    /// Mean latency in milliseconds (0 when empty).
    pub fn mean_ms(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.total_ns as f64 / self.count as f64 / 1e6
        }
    }

    /// Approximate `q`-quantile (`q` in `0.0..=1.0`) in milliseconds from
    /// the log2 histogram: the geometric mean of the edges of the bucket
    /// holding the nearest-rank sample (`2^i * sqrt(2)` ns for bucket
    /// `i`), still accurate to within a factor of two of the true value
    /// but centered instead of systematically high like the upper edge.
    pub fn approx_quantile_ms(&self, q: f64) -> f64 {
        if self.count == 0 {
            return 0.0;
        }
        let rank = ((q * self.count as f64).ceil() as u64).clamp(1, self.count);
        let mut seen = 0u64;
        for (i, &n) in self.buckets.iter().enumerate() {
            seen += n;
            if seen >= rank {
                return (1u64 << i) as f64 * std::f64::consts::SQRT_2 / 1e6;
            }
        }
        self.max_ns as f64 / 1e6
    }
}

/// Plain-value copy of the ingress front end's counters at a point in
/// time (the `IngressStats` tally in `crate::ingress`, folded into
/// [`MetricsSnapshot`] so one scrape returns the whole read path).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct IngressSnapshot {
    /// Connections that completed the version handshake.
    pub connections: u64,
    /// Sessions granted via `Frame::Join`.
    pub sessions_joined: u64,
    /// `Frame::Submit`s accepted (ticket granted).
    pub submits: u64,
    /// `Frame::Submit`s refused with `Frame::Busy`.
    pub busy: u64,
    /// `Frame::Completion`s pushed.
    pub completions: u64,
    /// `Frame::Failed`s pushed (fault-resolved or leave-dropped).
    pub failed: u64,
    /// Tickets that resolved `Failed` after their connection vanished —
    /// the leave contract's "nothing vanishes" tally for departures that
    /// left no one to notify.
    pub failed_on_disconnect: u64,
    /// Connections dropped for protocol violations (bad handshake,
    /// foreign session id, observation/group mismatch, unparseable
    /// frame).
    pub protocol_errors: u64,
    /// Scheduler ticks run.
    pub ticks: u64,
}

/// Everything the registry knows, copied out at once.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct MetricsSnapshot {
    pub shards: Vec<ShardSnapshot>,
    pub pool: PoolDispatchSnapshot,
    pub faults: FaultSnapshot,
    /// Ingress submit→completion latency (zeroed unless an ingress front
    /// end is feeding this registry).
    pub ingress_latency: LatencySnapshot,
    /// Per-shard tick-phase wall-time histograms, indexed
    /// `[shard][TickPhase as usize]` (empty until a tick runs with
    /// telemetry on; see [`TickPhase`] for which phases are per-shard
    /// measurements vs fleet-wide passes).
    pub shard_phases: Vec<Vec<LatencySnapshot>>,
    /// Per-shard submit→completion latency, so tail latency is
    /// attributable to a shard instead of fleet-global.
    pub shard_latency: Vec<LatencySnapshot>,
    /// Decisions served per adapter label (sorted by label).
    pub served_by_label: Vec<(String, u64)>,
    /// Ingress front-end counters (zeroed unless an ingress scheduler
    /// composed this snapshot — the registry itself never sees them).
    pub ingress: IngressSnapshot,
    /// Fleet-pool free pages at the last tick boundary (gauge; 0 for
    /// pool-less fleets).
    pub pool_free_pages: u64,
}

impl MetricsSnapshot {
    /// Fleet-wide served total.
    pub fn served(&self) -> u64 {
        self.shards.iter().map(|s| s.served).sum()
    }

    /// Fleet-wide steer total.
    pub fn steered(&self) -> u64 {
        self.shards.iter().map(|s| s.steered).sum()
    }

    /// Fleet-wide eviction total.
    pub fn evicted(&self) -> u64 {
        self.shards.iter().map(|s| s.evicted).sum()
    }

    /// Fleet-wide replay rows priced at eviction time.
    pub fn evicted_rebuild_rows(&self) -> u64 {
        self.shards.iter().map(|s| s.evicted_rebuild_rows).sum()
    }

    /// Fleet-wide queued arrivals at the last tick boundary.
    pub fn queue_depth(&self) -> u64 {
        self.shards.iter().map(|s| s.queue_depth).sum()
    }

    /// Fleet-wide held pages at the last tick boundary.
    pub fn held_pages(&self) -> u64 {
        self.shards.iter().map(|s| s.held_pages).sum()
    }
}

/// Per-shard atomic counters for one serving fleet.
#[derive(Debug)]
pub struct MetricsRegistry {
    shards: Vec<ShardCounters>,
    faults: FaultCounters,
    ingress: LatencyCounters,
    /// Served totals per adapter label. Touched once per tick (not per
    /// decision), so a mutex is fine; the serving hot path never sees it.
    labels: Mutex<std::collections::BTreeMap<&'static str, u64>>,
    /// Fleet-pool free pages at the last tick boundary (gauge; 0 for
    /// pool-less fleets).
    pool_free_pages: AtomicU64,
}

impl MetricsRegistry {
    /// A zeroed registry with one counter row per shard.
    pub fn new(num_shards: usize) -> Self {
        MetricsRegistry {
            shards: (0..num_shards).map(|_| ShardCounters::default()).collect(),
            faults: FaultCounters::default(),
            ingress: LatencyCounters::default(),
            labels: Mutex::new(std::collections::BTreeMap::new()),
            pool_free_pages: AtomicU64::new(0),
        }
    }

    pub fn num_shards(&self) -> usize {
        self.shards.len()
    }

    /// `n` decisions served by `shard`.
    pub fn record_served(&self, shard: usize, n: u64) {
        self.shards[shard].served.fetch_add(n, Ordering::Relaxed);
    }

    /// `n` decisions served under adapter `label` (called once per label
    /// per tick from the banking loop, never per decision).
    pub fn record_label_served(&self, label: &'static str, n: u64) {
        *self.labels.lock().unwrap().entry(label).or_insert(0) += n;
    }

    /// One session steered off `shard` (counted at the source).
    pub fn record_steered(&self, shard: usize) {
        self.shards[shard].steered.fetch_add(1, Ordering::Relaxed);
    }

    /// One session steered *onto* `shard` (the destination side of the
    /// same move [`record_steered`](Self::record_steered) counts at the
    /// source).
    pub fn record_steered_in(&self, shard: usize) {
        self.shards[shard].steered_in.fetch_add(1, Ordering::Relaxed);
    }

    /// `ns` wall-nanoseconds spent in `phase` on behalf of `shard` this
    /// tick (fleet-wide passes record the same span on every shard row —
    /// see [`TickPhase`]).
    pub fn record_phase_ns(&self, shard: usize, phase: TickPhase, ns: u64) {
        self.shards[shard].phases[phase as usize].record(ns);
    }

    /// One submit→completion latency sample of `ns` nanoseconds for a
    /// ticket served by `shard`.
    pub fn record_shard_latency(&self, shard: usize, ns: u64) {
        self.shards[shard].latency.record(ns);
    }

    /// One session's KV cache evicted from `shard`, priced at
    /// `rebuild_rows` replay rows ([`crate::ServedTask::rebuild_rows`] at
    /// the moment of eviction — 0 when its next step re-anchors anyway).
    pub fn record_evicted(&self, shard: usize, rebuild_rows: u64) {
        self.shards[shard].evicted.fetch_add(1, Ordering::Relaxed);
        self.shards[shard].evicted_rebuild_rows.fetch_add(rebuild_rows, Ordering::Relaxed);
    }

    /// Overwrite `shard`'s queue-depth gauge (tick boundary).
    pub fn set_queue_depth(&self, shard: usize, depth: u64) {
        self.shards[shard].queue_depth.store(depth, Ordering::Relaxed);
    }

    /// Overwrite `shard`'s held-pages gauge (tick boundary).
    pub fn set_held_pages(&self, shard: usize, pages: u64) {
        self.shards[shard].held_pages.store(pages, Ordering::Relaxed);
    }

    /// Overwrite the fleet pool's free-pages gauge (tick boundary).
    pub fn set_free_pages(&self, pages: u64) {
        self.pool_free_pages.store(pages, Ordering::Relaxed);
    }

    /// One shard declared Dead.
    pub fn record_shard_kill(&self) {
        self.faults.shard_kills.fetch_add(1, Ordering::Relaxed);
    }

    /// `n` sessions salvaged and re-admitted, destroying `replay_rows` KV
    /// rows the episode-log replay must rebuild.
    pub fn record_sessions_recovered(&self, n: u64, replay_rows: u64) {
        self.faults.sessions_recovered.fetch_add(n, Ordering::Relaxed);
        self.faults.recovery_replay_rows.fetch_add(replay_rows, Ordering::Relaxed);
    }

    /// `n` tickets resolved `Failed` by a fault.
    pub fn record_tickets_failed(&self, n: u64) {
        self.faults.tickets_failed.fetch_add(n, Ordering::Relaxed);
    }

    /// `n` already-ticketed arrivals re-queued by the fault layer.
    pub fn record_arrivals_requeued(&self, n: u64) {
        self.faults.arrivals_requeued.fetch_add(n, Ordering::Relaxed);
    }

    /// One ingress submit→completion latency sample of `ns` nanoseconds.
    pub fn record_ingress_latency(&self, ns: u64) {
        self.ingress.record(ns);
    }

    /// The ingress latency counters as plain values.
    pub fn ingress_latency_snapshot(&self) -> LatencySnapshot {
        self.ingress.snapshot()
    }

    /// `shard`'s per-phase wall-time histograms as plain values
    /// ([`TickPhase`] order).
    pub fn shard_phase_snapshot(&self, shard: usize) -> Vec<LatencySnapshot> {
        self.shards[shard].phases.iter().map(|p| p.snapshot()).collect()
    }

    /// `shard`'s submit→completion latency histogram as plain values.
    pub fn shard_latency_snapshot(&self, shard: usize) -> LatencySnapshot {
        self.shards[shard].latency.snapshot()
    }

    /// The fleet-wide fault counters as plain values.
    pub fn fault_snapshot(&self) -> FaultSnapshot {
        FaultSnapshot {
            shard_kills: self.faults.shard_kills.load(Ordering::Relaxed),
            sessions_recovered: self.faults.sessions_recovered.load(Ordering::Relaxed),
            tickets_failed: self.faults.tickets_failed.load(Ordering::Relaxed),
            arrivals_requeued: self.faults.arrivals_requeued.load(Ordering::Relaxed),
            recovery_replay_rows: self.faults.recovery_replay_rows.load(Ordering::Relaxed),
        }
    }

    /// One shard's counters as plain values.
    pub fn shard(&self, shard: usize) -> ShardSnapshot {
        let s = &self.shards[shard];
        ShardSnapshot {
            served: s.served.load(Ordering::Relaxed),
            steered: s.steered.load(Ordering::Relaxed),
            steered_in: s.steered_in.load(Ordering::Relaxed),
            evicted: s.evicted.load(Ordering::Relaxed),
            evicted_rebuild_rows: s.evicted_rebuild_rows.load(Ordering::Relaxed),
            queue_depth: s.queue_depth.load(Ordering::Relaxed),
            held_pages: s.held_pages.load(Ordering::Relaxed),
        }
    }

    /// Every shard's counters plus the kernel pool's dispatch counters.
    /// The [`MetricsSnapshot::ingress`] field stays zeroed here — only an
    /// ingress scheduler (which owns those counters) fills it in.
    pub fn snapshot(&self) -> MetricsSnapshot {
        MetricsSnapshot {
            shards: (0..self.shards.len()).map(|s| self.shard(s)).collect(),
            pool: pool_dispatch_snapshot(),
            faults: self.fault_snapshot(),
            ingress_latency: self.ingress_latency_snapshot(),
            shard_phases: (0..self.shards.len()).map(|s| self.shard_phase_snapshot(s)).collect(),
            shard_latency: (0..self.shards.len()).map(|s| self.shard_latency_snapshot(s)).collect(),
            served_by_label: self
                .labels
                .lock()
                .unwrap()
                .iter()
                .map(|(k, v)| (k.to_string(), *v))
                .collect(),
            ingress: IngressSnapshot::default(),
            pool_free_pages: self.pool_free_pages.load(Ordering::Relaxed),
        }
    }
}

/// The kernel pool's cumulative dispatch counters (see
/// `nt_tensor::pool::stats`), packaged for metrics consumers.
pub fn pool_dispatch_snapshot() -> PoolDispatchSnapshot {
    let s = nt_tensor::pool::stats();
    PoolDispatchSnapshot {
        workers: nt_tensor::pool::num_threads() as u64,
        dispatches: s.dispatches,
        tasks: s.tasks,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate_per_shard_and_total() {
        let m = MetricsRegistry::new(3);
        m.record_served(0, 5);
        m.record_served(2, 7);
        m.record_steered(1);
        m.record_steered_in(2);
        m.record_label_served("abr", 5);
        m.record_label_served("abr", 2);
        m.record_label_served("vp", 1);
        m.record_evicted(2, 17);
        m.record_evicted(2, 0); // a free victim still counts as an eviction
        m.set_queue_depth(1, 4);
        m.set_queue_depth(1, 2); // gauge overwrites, never accumulates
        m.set_held_pages(0, 9);
        m.set_held_pages(0, 6); // gauge overwrites
        m.set_free_pages(40);
        let snap = m.snapshot();
        assert_eq!(snap.shards[0].served, 5);
        assert_eq!(snap.shards[2].served, 7);
        assert_eq!(snap.served(), 12);
        assert_eq!(snap.steered(), 1);
        assert_eq!(snap.shards[1].steered, 1);
        assert_eq!(snap.shards[2].steered_in, 1);
        assert_eq!(snap.shards[1].steered_in, 0);
        assert_eq!(snap.served_by_label, vec![("abr".to_string(), 7), ("vp".to_string(), 1)]);
        assert_eq!(snap.evicted(), 2);
        assert_eq!(snap.evicted_rebuild_rows(), 17);
        assert_eq!(snap.shards[1].queue_depth, 2);
        assert_eq!(snap.queue_depth(), 2);
        assert_eq!((snap.shards[0].held_pages, snap.held_pages()), (6, 6));
        assert_eq!(snap.pool_free_pages, 40);
        assert_eq!(snap.pool.workers, nt_tensor::pool::num_threads() as u64);
    }

    #[test]
    fn latency_histogram_buckets_by_log2_and_quantiles_bound() {
        let m = MetricsRegistry::new(1);
        // 1µs x 9 samples, 1s x 1 sample: p50 lands in the microsecond
        // bucket, p99+ in the second-scale one.
        for _ in 0..9 {
            m.record_ingress_latency(1_000);
        }
        m.record_ingress_latency(1_000_000_000);
        let lat = m.ingress_latency_snapshot();
        assert_eq!(lat.count, 10);
        assert_eq!(lat.max_ns, 1_000_000_000);
        assert_eq!(lat.buckets.iter().sum::<u64>(), 10);
        let p50 = lat.approx_quantile_ms(0.5);
        assert!(p50 > 0.0005 && p50 < 0.005, "p50 ~1us, got {p50}ms");
        let p99 = lat.approx_quantile_ms(0.99);
        assert!(p99 > 500.0, "p99 ~1s, got {p99}ms");
        assert!((lat.mean_ms() - 100.0).abs() < 1.0);
    }

    #[test]
    fn quantile_uses_geometric_mean_of_bucket_edges() {
        let m = MetricsRegistry::new(1);
        // All samples in bucket 10 ([1024, 2048) ns): every quantile is
        // the bucket's geometric mean, 1024*sqrt(2) ns ≈ 1448 ns — inside
        // the bucket, not its upper edge.
        for _ in 0..100 {
            m.record_ingress_latency(1_500);
        }
        let lat = m.ingress_latency_snapshot();
        let p50 = lat.approx_quantile_ms(0.5);
        let expect = 1024.0 * std::f64::consts::SQRT_2 / 1e6;
        assert!((p50 - expect).abs() < 1e-9, "p50 {p50} != {expect}");
        // Within-2x bound against the true value (1500 ns).
        let truth = 1_500.0 / 1e6;
        assert!(p50 > truth / 2.0 && p50 < truth * 2.0);
        assert_eq!(p50, lat.approx_quantile_ms(0.01));
        assert_eq!(p50, lat.approx_quantile_ms(1.0));
    }

    #[test]
    fn phase_and_shard_latency_histograms_record_per_shard() {
        let m = MetricsRegistry::new(2);
        m.record_phase_ns(0, TickPhase::Drain, 1_000);
        m.record_phase_ns(0, TickPhase::PlanStep, 2_000);
        m.record_phase_ns(1, TickPhase::PlanStep, 4_000);
        m.record_shard_latency(1, 8_000);
        let snap = m.snapshot();
        assert_eq!(snap.shard_phases.len(), 2);
        assert_eq!(snap.shard_phases[0].len(), TICK_PHASES);
        assert_eq!(snap.shard_phases[0][TickPhase::Drain as usize].count, 1);
        assert_eq!(snap.shard_phases[0][TickPhase::PlanStep as usize].total_ns, 2_000);
        assert_eq!(snap.shard_phases[1][TickPhase::PlanStep as usize].total_ns, 4_000);
        assert_eq!(snap.shard_phases[1][TickPhase::Drain as usize].count, 0);
        assert_eq!(snap.shard_latency[1].count, 1);
        assert_eq!(snap.shard_latency[1].max_ns, 8_000);
        assert_eq!(snap.shard_latency[0].count, 0);
    }

    #[test]
    fn fault_counters_accumulate() {
        let m = MetricsRegistry::new(2);
        m.record_shard_kill();
        m.record_sessions_recovered(3, 40);
        m.record_tickets_failed(2);
        m.record_arrivals_requeued(5);
        m.record_sessions_recovered(1, 8);
        let f = m.snapshot().faults;
        assert_eq!(f.shard_kills, 1);
        assert_eq!(f.sessions_recovered, 4);
        assert_eq!(f.tickets_failed, 2);
        assert_eq!(f.arrivals_requeued, 5);
        assert_eq!(f.recovery_replay_rows, 48);
    }
}

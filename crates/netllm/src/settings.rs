//! Experiment settings: Tables 2–4 presets and the fidelity ladder.
//!
//! `Fidelity` scales the *budgets* (dataset sizes, training iterations,
//! numbers of evaluation traces), never the mechanics: `Smoke` keeps unit
//! and integration tests fast, `Default` is what the figures binary uses,
//! `Paper` is the highest-budget setting for final runs.

use nt_abr::TraceKind;
use nt_vp::{jin2022_like, wu2017_like, DatasetSpec};
use serde::{Deserialize, Serialize};

/// Budget scaling for experiments.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum Fidelity {
    /// Tiny budgets for tests (seconds).
    Smoke,
    /// Figure-regeneration budgets (minutes).
    Default,
    /// Largest budgets (tens of minutes).
    Paper,
}

impl Fidelity {
    /// Generic iteration scaler: `base` at Default.
    pub fn iters(self, base: usize) -> usize {
        match self {
            Fidelity::Smoke => (base / 20).max(2),
            Fidelity::Default => base,
            Fidelity::Paper => base * 3,
        }
    }

    /// Generic count scaler for datasets/traces.
    pub fn count(self, base: usize) -> usize {
        match self {
            Fidelity::Smoke => (base / 10).max(2),
            Fidelity::Default => base,
            Fidelity::Paper => base * 2,
        }
    }
}

/// VP prediction setup (Table 2): windows in seconds at 5 Hz.
#[derive(Clone, Copy, Debug, Serialize, Deserialize)]
pub struct VpSetting {
    pub name: &'static str,
    /// Which dataset profile ("jin2022-like" or "wu2017-like").
    pub dataset: &'static str,
    pub hw_secs: usize,
    pub pw_secs: usize,
}

/// Table 2 rows.
pub const VP_DEFAULT: VpSetting =
    VpSetting { name: "default", dataset: "jin2022-like", hw_secs: 2, pw_secs: 4 };
pub const VP_UNSEEN1: VpSetting =
    VpSetting { name: "unseen1", dataset: "jin2022-like", hw_secs: 4, pw_secs: 6 };
pub const VP_UNSEEN2: VpSetting =
    VpSetting { name: "unseen2", dataset: "wu2017-like", hw_secs: 2, pw_secs: 4 };
pub const VP_UNSEEN3: VpSetting =
    VpSetting { name: "unseen3", dataset: "wu2017-like", hw_secs: 4, pw_secs: 6 };

impl VpSetting {
    pub fn dataset_spec(&self) -> DatasetSpec {
        match self.dataset {
            "jin2022-like" => jin2022_like(),
            "wu2017-like" => wu2017_like(),
            other => panic!("unknown VP dataset {other}"),
        }
    }

    pub fn hw(&self) -> usize {
        self.hw_secs * nt_vp::HZ
    }

    pub fn pw(&self) -> usize {
        self.pw_secs * nt_vp::HZ
    }
}

/// ABR setup (Table 3).
#[derive(Clone, Copy, Debug, Serialize, Deserialize)]
pub struct AbrSetting {
    pub name: &'static str,
    /// `false` = EnvivioDash3-like, `true` = SynthVideo.
    pub synth_video: bool,
    pub traces: TraceKind,
}

/// Table 3 rows.
pub const ABR_DEFAULT: AbrSetting =
    AbrSetting { name: "default", synth_video: false, traces: TraceKind::FccLike };
pub const ABR_UNSEEN1: AbrSetting =
    AbrSetting { name: "unseen1", synth_video: false, traces: TraceKind::SynthWide };
pub const ABR_UNSEEN2: AbrSetting =
    AbrSetting { name: "unseen2", synth_video: true, traces: TraceKind::FccLike };
pub const ABR_UNSEEN3: AbrSetting =
    AbrSetting { name: "unseen3", synth_video: true, traces: TraceKind::SynthWide };

/// CJS setup (Table 4). The paper's 200 jobs / 50k executor units scale to
/// 200 jobs / 50 executors here (executor units are fungible slots).
#[derive(Clone, Copy, Debug, Serialize, Deserialize)]
pub struct CjsSetting {
    pub name: &'static str,
    pub num_jobs: usize,
    pub executors: usize,
    pub mean_interarrival: f64,
}

/// Table 4 rows.
pub const CJS_DEFAULT: CjsSetting =
    CjsSetting { name: "default", num_jobs: 200, executors: 50, mean_interarrival: 1.5 };
pub const CJS_UNSEEN1: CjsSetting =
    CjsSetting { name: "unseen1", num_jobs: 200, executors: 30, mean_interarrival: 1.5 };
pub const CJS_UNSEEN2: CjsSetting =
    CjsSetting { name: "unseen2", num_jobs: 450, executors: 50, mean_interarrival: 1.5 };
pub const CJS_UNSEEN3: CjsSetting =
    CjsSetting { name: "unseen3", num_jobs: 450, executors: 30, mean_interarrival: 1.5 };

impl CjsSetting {
    /// Scale the job count by fidelity (evaluating 450-job workloads through
    /// an LLM per decision is a Paper-budget affair).
    pub fn scaled_jobs(&self, fidelity: Fidelity) -> usize {
        match fidelity {
            Fidelity::Smoke => (self.num_jobs / 20).max(5),
            Fidelity::Default => (self.num_jobs / 5).max(10),
            Fidelity::Paper => self.num_jobs,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table2_matches_paper() {
        assert_eq!(VP_DEFAULT.hw(), 10);
        assert_eq!(VP_DEFAULT.pw(), 20);
        assert_eq!(VP_UNSEEN1.hw(), 20);
        assert_eq!(VP_UNSEEN1.pw(), 30);
        assert_eq!(VP_UNSEEN2.dataset, "wu2017-like");
        assert_eq!(VP_UNSEEN3.dataset, "wu2017-like");
    }

    #[test]
    #[allow(clippy::assertions_on_constants)]
    fn table3_matches_paper() {
        assert!(matches!(ABR_UNSEEN1.traces, TraceKind::SynthWide));
        assert!(!ABR_UNSEEN1.synth_video);
        assert!(ABR_UNSEEN2.synth_video);
        assert!(matches!(ABR_UNSEEN2.traces, TraceKind::FccLike));
    }

    #[test]
    fn table4_matches_paper_ratios() {
        assert_eq!(CJS_DEFAULT.num_jobs, 200);
        assert_eq!(CJS_DEFAULT.executors, 50);
        assert_eq!(CJS_UNSEEN1.executors, 30);
        assert_eq!(CJS_UNSEEN2.num_jobs, 450);
        assert_eq!(CJS_UNSEEN3.num_jobs, 450);
        assert_eq!(CJS_UNSEEN3.executors, 30);
    }

    #[test]
    fn fidelity_scales_monotonically() {
        assert!(Fidelity::Smoke.iters(100) < Fidelity::Default.iters(100));
        assert!(Fidelity::Default.iters(100) < Fidelity::Paper.iters(100));
        assert!(Fidelity::Smoke.count(100) < Fidelity::Paper.count(100));
    }
}

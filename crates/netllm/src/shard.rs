//! Sharded serving: one logical fleet over K independent engines.
//!
//! A [`ShardedServer`] fronts K [`ServingEngine`] shards behind a route
//! table. Each shard is a complete engine — own slots, own KV caches, own
//! batched steps — so the shard boundary is clean: nothing is shared
//! between shards but the (read-only) model weights.
//!
//! Two front ends drive the fleet:
//!
//! - **Lockstep** ([`ShardedServer::step`], PR 3): the caller hands over a
//!   fully-formed `(session, obs)` batch and receives the actions in
//!   request order — the reference path the equivalence gates replay.
//! - **Continuous** ([`ShardedServer::submit`] → [`ShardedServer::tick`] →
//!   [`ShardedServer::poll`]): observation arrivals enqueue asynchronously
//!   into per-shard [`AdmissionQueue`]s (stamped by a logical arrival
//!   clock, tagged with their adapter group) and come back as [`Ticket`]s;
//!   each `tick` drains every shard's queue at the tick boundary — at most
//!   one arrival per session, FIFO within a session — steps the busy
//!   shards, and banks the actions for `poll`. Sessions join, answer and
//!   leave mid-stream; nobody orchestrates a lockstep batch.
//!
//! ```text
//!  submit(id,obs) ─► Ticket     ┌ q0 ─ drain ─► shard 0: ServingEngine ┐
//!    (arrival clock, adapter ──►│ q1 ─ drain ─► shard 1: ServingEngine ├─ tick ─► poll(Ticket)
//!     tag, backpressure cap)    └ qK ─ drain ─► shard K: ServingEngine ┘      ─► actions
//!                join ─► AdmissionPolicy: HashRoute | LeastLoaded |
//!                                         CacheAware | PageAware
//!                                 (NT_THREADS: one worker per busy shard)
//! ```
//!
//! Placement is pluggable ([`AdmissionPolicy`]): `HashRoute` keeps PR 3's
//! FNV-1a session-hash router, `LeastLoaded` admits to the shard with the
//! fewest live slots, `CacheAware` admits to the lightest shard by KV
//! bytes and *steers*: at every tick boundary, while a shard's KV bytes
//! exceed the policy's budget, the coldest (least-recently-served) session
//! is migrated to the lightest shard. `PageAware` runs the same pass
//! denominated in pool pages instead of bytes, placing by page pressure
//! with a same-backbone tie-break (see [`crate::sched`]); every steer —
//! byte- or page-denominated — is gated by [`steer_improves`], so a move
//! never lands on a shard whose pool lacks the victim's pages. Steering
//! and rebalance-on-leave ([`ShardedServer::leave`]) share one guard: a
//! session is steered at most once per tick cycle, so the two mechanisms
//! can both fire in a tick without double-migrating anyone
//! (regression-tested in `tests/admission.rs`).
//!
//! Migration ([`ShardedServer::steer`]) parks a session (KV cache +
//! episode state travel wholesale, queued arrivals follow) and re-admits
//! it on another shard — per-session math is untouched, so served answers
//! stay bit-identical across migrations. Today shards are per-core
//! (`NT_THREADS`-capped scoped workers, pool-registered so per-matmul and
//! band parallelism never stack a second thread layer underneath); the
//! same route-table design extends to per-process and per-host shards
//! later — a shard is just an index.
//!
//! **Fault tolerance** (continuous front end only): each shard is a
//! recoverable failure domain. A [`FaultPlan`] armed via
//! [`ShardedServer::inject`] crashes/stalls shards, poisons single steps
//! or drops drained batches at exact tick points; the per-tick
//! [`HealthChecker`] walks silent shards Healthy → Suspect (retry with
//! backoff — a stalled shard revives with all state intact) → Dead. On
//! death the shard's sessions are salvaged — KV pages died with the
//! process and are reclaimed, episode logs survive — re-placed on
//! surviving shards by the admission policy and re-anchored by the same
//! replay eviction uses, its queue backlog is redistributed, every
//! displaced ticket resolves `Requeued`/`Failed` via
//! [`ShardedServer::poll_status`] instead of hanging, and the dead
//! shard's pool budget share is permanently retired (degraded capacity →
//! deferral, never loss). Gated end to end by
//! `nt-bench/tests/fault_soak.rs`.

use crate::fault::{Fault, FaultPlan, FaultReport};
use crate::health::{HealthChecker, HealthConfig, Heartbeat};
use crate::metrics::{MetricsRegistry, TickPhase, TICK_PHASES};
use crate::sched::{
    fnv1a, steer_improves, AdmissionPolicy, AdmissionQueue, Arrival, EvictionPolicy, MemoryReport,
    PagePressure, PlacementView, SubmitError, TickReport, Ticket, TicketStatus,
};
use crate::serving::{ServedTask, ServingEngine, SessionId};
use crate::telemetry::{EventKind, SteerReason, TelemetryRing};
use nt_llm::{PagePool, PoolStats};
use std::collections::{BTreeMap, BTreeSet};
use std::sync::Mutex;
use std::time::Instant;

/// Resident capacity of the fleet's event journal (see
/// [`crate::telemetry::TelemetryRing`]): enough to hold several dense
/// ticks' worth of events between scrapes without the journal growing
/// with load.
const JOURNAL_CAPACITY: usize = 4096;

/// Fleet-wide session handle issued by [`ShardedServer::join`].
pub type GlobalSessionId = u64;

/// Pending arrivals a shard's queue accepts before `submit` pushes back.
const DEFAULT_QUEUE_CAP: usize = 1024;

/// What [`ShardedServer::leave`] hands back: nothing of a departing
/// session is silently dropped — served-but-unpolled actions and
/// still-queued arrivals (whose tickets will now never resolve) come back
/// to the caller, oldest first.
#[must_use = "a departing session's unpolled actions and queued arrivals are returned, not dropped"]
#[derive(Debug)]
pub struct LeaveReport<A, O> {
    /// Served actions the session never polled, by ticket, oldest first.
    pub unpolled: Vec<(Ticket, A)>,
    /// Arrivals still queued at departure, by ticket, oldest first.
    pub dropped_arrivals: Vec<(Ticket, O)>,
}

impl<A, O> LeaveReport<A, O> {
    /// True when the session left nothing behind.
    pub fn is_clean(&self) -> bool {
        self.unpolled.is_empty() && self.dropped_arrivals.is_empty()
    }
}

/// K independent [`ServingEngine`] shards behind a route table, with a
/// lockstep and a continuous (queue/tick/poll) front end.
///
/// The continuous front end in one breath — join, submit, tick until
/// served, poll, leave:
///
/// ```
/// use netllm::{AdaptMode, LoraSpec, NetLlmAbr, ShardedServer, TicketStatus};
/// use nt_abr::AbrObservation;
/// use nt_llm::{size_spec, Zoo};
///
/// let zoo = Zoo::new(std::env::temp_dir().join("netllm-shard-doctest"));
/// let abr = NetLlmAbr::new(
///     zoo.build_random(&size_spec("0.35b-sim")),
///     AdaptMode::NoDomain,
///     LoraSpec::default(),
///     4,  // observation window
///     7,  // adapter seed
/// );
/// let mut server: ShardedServer<NetLlmAbr> = ShardedServer::new(2);
/// let id = server.join(&abr);
/// let obs = AbrObservation::synthetic_stream(7, 1).remove(0);
/// let ticket = server.submit(id, obs).unwrap();
/// server.tick(&abr);
/// let TicketStatus::Served(rung) = server.poll_status(ticket) else {
///     panic!("one tick serves a lone arrival");
/// };
/// assert!(!server.last_logits(id).is_empty());
/// assert!(server.leave(id).is_clean());
/// # let _ = rung;
/// ```
pub struct ShardedServer<T: ServedTask> {
    shards: Vec<ServingEngine<T>>,
    /// Global id -> (shard, local id). A `BTreeMap` keeps every fleet
    /// walk (rebalance victim selection, steering) deterministic.
    routes: BTreeMap<GlobalSessionId, (usize, SessionId)>,
    /// Backbone group per session — the adapter tag queued arrivals carry.
    groups: BTreeMap<GlobalSessionId, usize>,
    next_id: GlobalSessionId,
    /// Placement (and, for `CacheAware`, steering) policy.
    policy: AdmissionPolicy,
    /// One pending-arrival queue per shard.
    queues: Vec<AdmissionQueue<T::Obs>>,
    /// Served-but-unpolled actions, by ticket (tagged with their
    /// session so `leave` can reclaim a departing session's answers).
    completed: BTreeMap<Ticket, (GlobalSessionId, T::Action)>,
    /// Tickets are issued in submission order, so the next ticket number
    /// doubles as the logical arrival clock stamped onto queued
    /// observations.
    next_ticket: u64,
    /// Tick counter (drives the coldest-session bookkeeping).
    tick_no: u64,
    /// Tick each session last produced an answer (coldest = smallest).
    last_served: BTreeMap<GlobalSessionId, u64>,
    /// Sessions already steered in the current tick cycle — rebalance and
    /// cache-aware steering both consult and feed this, so no session is
    /// migrated twice between consecutive tick boundaries.
    steered_this_tick: BTreeSet<GlobalSessionId>,
    /// Fleet-wide KV page pool (every shard's sessions draw from it); the
    /// global hard bound on KV memory when set.
    pool: Option<PagePool>,
    /// How the memory guard reclaims pages when a tick's demand exceeds
    /// the pool's free list.
    eviction: EvictionPolicy,
    /// Per-shard serving counters (served / steered / evicted / queue
    /// depth), shared with the benches via [`ShardedServer::metrics`].
    metrics: MetricsRegistry,
    /// Armed fault schedule ([`ShardedServer::inject`]); drained as ticks
    /// pass its events' fire points.
    faults: FaultPlan,
    /// Per-shard Healthy → Suspect → Dead state machines over the
    /// heartbeats each tick snapshots.
    health: HealthChecker,
    /// Ground truth of the simulated shard processes (what the health
    /// checker can only infer from missing beats).
    crashed: Vec<CrashState>,
    /// Tickets resolved `Failed` by a fault, not yet polled.
    failed: BTreeSet<Ticket>,
    /// Tickets whose arrivals a fault displaced back into a queue; the
    /// mark clears when the arrival is finally served.
    requeued: BTreeSet<Ticket>,
    /// Fleet width at construction — a dead shard keeps its index (routes
    /// stay dense), so this is the divisor for a shard's pool share.
    initial_shards: usize,
    /// Pool pages minted at construction (capacity shrinks as shards die).
    pool_minted: usize,
    /// Largest one-full-context-session page count over every backbone
    /// admitted so far — retirement never shrinks capacity below this, or
    /// a recovered giant session could defer forever.
    floor_pages: usize,
    /// Bounded event journal (tick spans, evictions, steers, faults) —
    /// the ordered companion to `metrics`' totals, drained by cursor via
    /// [`ShardedServer::journal`].
    journal: TelemetryRing,
    /// Whether tick-phase timing runs ([`ShardedServer::set_telemetry`]).
    /// Off, ticks take no clock readings and the journal drops writes —
    /// the baseline the BENCH_10 overhead gate compares against.
    telemetry: bool,
}

/// Simulated process state of one shard (the fault layer's ground truth).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum CrashState {
    Up,
    Stalled { until: u64 },
    Down,
}

impl<T: ServedTask> ShardedServer<T> {
    /// A fleet of `num_shards` empty engines with PR 3's hash router.
    pub fn new(num_shards: usize) -> Self {
        Self::with_policy(num_shards, AdmissionPolicy::HashRoute)
    }

    /// A fleet of `num_shards` empty engines admitting under `policy`.
    pub fn with_policy(num_shards: usize, policy: AdmissionPolicy) -> Self {
        Self::build(num_shards, policy, None, EvictionPolicy::None)
    }

    /// A fleet whose sessions draw KV pages from one fleet-wide `pool`:
    /// total KV bytes are hard-bounded by the pool budget at every
    /// instant. Each tick boundary runs the memory guard — reserve pages
    /// for the tick's exact demand ([`ServedTask::plan_rows`]), reclaim
    /// under pressure per `eviction`, and defer drained arrivals back to
    /// their admission queues when even eviction cannot cover the tick
    /// (backpressure instead of OOM growth).
    pub fn with_memory(
        num_shards: usize,
        policy: AdmissionPolicy,
        pool: PagePool,
        eviction: EvictionPolicy,
    ) -> Self {
        Self::build(num_shards, policy, Some(pool), eviction)
    }

    fn build(
        num_shards: usize,
        policy: AdmissionPolicy,
        pool: Option<PagePool>,
        eviction: EvictionPolicy,
    ) -> Self {
        assert!(num_shards >= 1, "a fleet needs at least one shard");
        let pool_minted = pool.as_ref().map(PagePool::capacity_pages).unwrap_or(0);
        ShardedServer {
            shards: (0..num_shards)
                .map(|_| match &pool {
                    Some(p) => ServingEngine::with_page_pool(p.clone()),
                    None => ServingEngine::new(),
                })
                .collect(),
            routes: BTreeMap::new(),
            groups: BTreeMap::new(),
            next_id: 0,
            policy,
            queues: (0..num_shards)
                .map(|_| AdmissionQueue::with_capacity(DEFAULT_QUEUE_CAP))
                .collect(),
            completed: BTreeMap::new(),
            next_ticket: 0,
            tick_no: 0,
            last_served: BTreeMap::new(),
            steered_this_tick: BTreeSet::new(),
            pool,
            eviction,
            metrics: MetricsRegistry::new(num_shards),
            faults: FaultPlan::new(),
            health: HealthChecker::new(num_shards, HealthConfig::default()),
            crashed: vec![CrashState::Up; num_shards],
            failed: BTreeSet::new(),
            requeued: BTreeSet::new(),
            initial_shards: num_shards,
            pool_minted,
            floor_pages: 0,
            journal: TelemetryRing::new(JOURNAL_CAPACITY),
            telemetry: true,
        }
    }

    /// The fleet's per-shard metrics registry (see [`crate::metrics`]).
    pub fn metrics(&self) -> &MetricsRegistry {
        &self.metrics
    }

    /// The fleet's event journal (see [`crate::telemetry`]). Readers
    /// drain it by cursor; the scrape endpoint serves it as
    /// `Frame::EventsBatch`.
    pub fn journal(&self) -> &TelemetryRing {
        &self.journal
    }

    /// Turn tick-phase timing and journal recording on/off (on by
    /// default). Off, [`ShardedServer::tick`] takes no clock readings,
    /// records no phase histograms and journals nothing — the counters in
    /// [`ShardedServer::metrics`] keep running either way.
    pub fn set_telemetry(&mut self, on: bool) {
        self.telemetry = on;
        self.journal.set_enabled(on);
    }

    /// Whether tick-phase timing and journal recording are on.
    pub fn telemetry(&self) -> bool {
        self.telemetry
    }

    /// The fleet logical clock: ticks run so far (the `clock` stamped on
    /// journal events).
    pub fn tick_count(&self) -> u64 {
        self.tick_no
    }

    /// Arm (or extend) the fault schedule. Events fire inside future
    /// [`ShardedServer::tick`]s at their exact logical-clock points;
    /// events whose tick already passed fire on the next tick.
    pub fn inject(&mut self, plan: FaultPlan) {
        self.faults.extend(plan);
    }

    /// The per-shard health state machines (read side: states, last
    /// heartbeats, configured thresholds).
    pub fn health(&self) -> &HealthChecker {
        &self.health
    }

    /// Replace the health thresholds. Only before any failure: retuning a
    /// checker with Suspect/Dead shards would rewrite history.
    pub fn set_health_config(&mut self, cfg: HealthConfig) {
        assert!(
            self.health.states().iter().all(|s| s.is_healthy())
                && self.crashed.iter().all(|c| *c == CrashState::Up),
            "cannot retune health thresholds after failures began"
        );
        self.health = HealthChecker::new(self.shards.len(), cfg);
    }

    /// Shards currently Healthy (placement, steering and rebalance only
    /// ever target these).
    pub fn healthy_shards(&self) -> Vec<usize> {
        self.health.healthy_shards()
    }

    /// Shards that are believed Healthy *and* whose process is actually
    /// up. The health checker only learns of a crash after
    /// `miss_threshold` silent probes, but a join or migration RPC
    /// against a dead process fails immediately (connection refused) and
    /// one against a stalled process hangs — so placement and steering
    /// skip dark shards without waiting for the declaration. The checker
    /// stays the sole authority for declaring death and salvaging.
    fn reachable_shards(&self) -> Vec<usize> {
        self.health
            .healthy_shards()
            .into_iter()
            .filter(|&s| self.crashed[s] == CrashState::Up)
            .collect()
    }

    /// Place `id` on a Healthy shard via the admission policy, evaluated
    /// over the surviving fleet view (`HashRoute` hashes into the healthy
    /// subset, so placement stays deterministic as the fleet degrades).
    /// Crashed-but-undeclared shards are skipped (fail-fast RPC); if
    /// *every* Healthy shard is dark — the undetected-total-loss window —
    /// fall back to the checker's view: the session lands on a doomed
    /// shard and the next declaration salvages it, exactly as if the RPC
    /// layer had raced the crash.
    /// `group` is the session's backbone group — the batch-shape signal
    /// `PageAware` ties break on (same-backbone slots share stacked
    /// GEMMs). Placement always charges `need_pages: 0`: a fresh join's
    /// cache starts empty, and a salvaged session's pages died with its
    /// shard — its rebuild allocates on the next step, where the memory
    /// guard arbitrates.
    fn place_on_healthy(&self, id: GlobalSessionId, group: usize) -> usize {
        let up = self.reachable_shards();
        let healthy = if up.is_empty() { self.health.healthy_shards() } else { up };
        assert!(
            !healthy.is_empty(),
            "no healthy shard left to place session {id} on — total fleet loss"
        );
        let active: Vec<usize> = healthy.iter().map(|&s| self.shards[s].active()).collect();
        let bytes: Vec<usize> = healthy.iter().map(|&s| self.shards[s].cache_bytes()).collect();
        // The page economy travels with the backbone histogram (the view
        // asserts they arrive together); both stay empty for pool-less
        // fleets, where PageAware degenerates to LeastLoaded.
        let (pressure, same_backbone) = match self.pool_stats() {
            Some(st) => {
                // One in-process pool serves every shard, so each shard
                // reports the same (global) free list.
                let pressure: Vec<PagePressure> = healthy
                    .iter()
                    .map(|&s| PagePressure {
                        free_pages: st.free_pages,
                        held_pages: self.shards[s].pages_held(),
                    })
                    .collect();
                let mut hist = vec![0usize; healthy.len()];
                for (sid, &(s, _)) in &self.routes {
                    if self.groups.get(sid) == Some(&group) {
                        if let Some(i) = healthy.iter().position(|&h| h == s) {
                            hist[i] += 1;
                        }
                    }
                }
                (pressure, hist)
            }
            None => (Vec::new(), Vec::new()),
        };
        let view = PlacementView {
            active: &active,
            cache_bytes: &bytes,
            pressure: &pressure,
            same_backbone: &same_backbone,
            need_pages: 0,
        };
        healthy[self.policy.place(id, &view)]
    }

    /// The fleet-wide page pool, if the fleet is memory-bounded.
    pub fn page_pool(&self) -> Option<&PagePool> {
        self.pool.as_ref()
    }

    /// Occupancy of the fleet-wide pool (`None` for unbounded fleets).
    pub fn pool_stats(&self) -> Option<PoolStats> {
        self.pool.as_ref().map(PagePool::stats)
    }

    /// The active eviction policy.
    pub fn eviction_policy(&self) -> EvictionPolicy {
        self.eviction
    }

    /// Swap the eviction policy (applies from the next memory guard run).
    pub fn set_eviction_policy(&mut self, eviction: EvictionPolicy) {
        self.eviction = eviction;
    }

    /// Replace the per-shard backpressure cap (only while no arrival is
    /// pending, so no ticket can be dropped by the swap).
    pub fn set_queue_capacity(&mut self, cap: usize) {
        assert!(self.pending() == 0, "cannot resize queues with arrivals pending");
        self.queues = (0..self.shards.len()).map(|_| AdmissionQueue::with_capacity(cap)).collect();
    }

    /// The active admission policy.
    pub fn policy(&self) -> AdmissionPolicy {
        self.policy
    }

    /// Swap the admission policy at runtime (placement applies to future
    /// joins; a new `CacheAware` budget applies from the next tick's
    /// steering pass). Live sessions and queues are untouched.
    pub fn set_policy(&mut self, policy: AdmissionPolicy) {
        self.policy = policy;
    }

    /// The shard currently serving `id`.
    pub fn shard_of(&self, id: GlobalSessionId) -> usize {
        self.routes.get(&id).expect("unknown session id").0
    }

    /// Shard count.
    pub fn num_shards(&self) -> usize {
        self.shards.len()
    }

    /// The shard the FNV-1a hash router would assign to `id` (the
    /// [`AdmissionPolicy::HashRoute`] placement).
    pub fn home_shard(&self, id: GlobalSessionId) -> usize {
        (fnv1a(id) % self.shards.len() as u64) as usize
    }

    /// Admit a session on backbone group 0 (homogeneous tasks).
    pub fn join(&mut self, task: &T) -> GlobalSessionId {
        self.join_group(task, 0)
    }

    /// Admit a session on backbone `group`; the admission policy places it
    /// from the current fleet view (live slots + KV bytes per Healthy
    /// shard — dead and suspect shards take no new sessions).
    pub fn join_group(&mut self, task: &T, group: usize) -> GlobalSessionId {
        let id = self.next_id;
        self.next_id += 1;
        let shard = self.place_on_healthy(id, group);
        if let Some(pool) = &self.pool {
            let lm = task.backbone(group).0;
            let floor = lm.cfg.n_layers * pool.pages_for(lm.cfg.max_seq);
            self.floor_pages = self.floor_pages.max(floor);
        }
        let local = self.shards[shard].join_group(task, group);
        self.routes.insert(id, (shard, local));
        self.groups.insert(id, group);
        id
    }

    /// Remove a session, dropping its KV cache (a paged cache returns
    /// every page to the pool). Nothing of the session lingers in the
    /// server — and nothing is silently dropped either: its
    /// served-but-unpolled actions and still-queued arrivals (whose
    /// tickets will now never resolve) come back in the [`LeaveReport`].
    /// Then rebalance: while departures leave the fullest shard ≥ 2
    /// sessions above the emptiest, steer the fullest shard's lowest-id
    /// session over (at most once per session per tick cycle).
    pub fn leave(&mut self, id: GlobalSessionId) -> LeaveReport<T::Action, T::Obs> {
        let (shard, local) = self.routes.remove(&id).expect("unknown session id");
        let dropped_arrivals: Vec<(Ticket, T::Obs)> =
            self.queues[shard].remove_session(id).into_iter().map(|a| (a.ticket, a.obs)).collect();
        // BTreeMap order: tickets ascending, i.e. oldest first.
        let banked: Vec<Ticket> = self
            .completed
            .iter()
            .filter(|(_, &(session, _))| session == id)
            .map(|(&t, _)| t)
            .collect();
        let unpolled: Vec<(Ticket, T::Action)> = banked
            .into_iter()
            .map(|t| {
                let (_, action) = self.completed.remove(&t).expect("ticket collected above");
                (t, action)
            })
            .collect();
        self.groups.remove(&id);
        self.last_served.remove(&id);
        self.steered_this_tick.remove(&id);
        for &(t, _) in &dropped_arrivals {
            // A dropped arrival's `Requeued` mark must not outlive it —
            // poll_status would otherwise promise an answer forever.
            self.requeued.remove(&t);
        }
        self.shards[shard].leave(local);
        while self.rebalance_once() {}
        LeaveReport { unpolled, dropped_arrivals }
    }

    /// One rebalance move, if the fleet is skewed. Returns whether a
    /// session moved. Sessions already steered this tick cycle are not
    /// eligible victims (no double-migration); only Healthy *and up*
    /// shards are balanced — a dead shard's permanent 0-occupancy must
    /// not attract the whole fleet, and during the undetected-crash
    /// window (killed, not yet declared) a dark shard can neither send
    /// nor receive a migration: a departure emptying it must not pull a
    /// live session's KV onto a process that will take it to the grave.
    fn rebalance_once(&mut self) -> bool {
        let healthy = self.reachable_shards();
        if healthy.len() < 2 {
            return false;
        }
        let (mut min_s, mut min_a) = (healthy[0], usize::MAX);
        let (mut max_s, mut max_a) = (healthy[0], 0usize);
        for &s in &healthy {
            let a = self.shards[s].active();
            if a < min_a {
                (min_s, min_a) = (s, a);
            }
            if a > max_a {
                (max_s, max_a) = (s, a);
            }
        }
        if max_a < min_a + 2 {
            return false;
        }
        let victim = self
            .routes
            .iter()
            .find(|(id, &(s, _))| s == max_s && !self.steered_this_tick.contains(id))
            .map(|(&id, _)| id);
        match victim {
            Some(v) => {
                self.steer_with(v, min_s, SteerReason::Rebalance);
                true
            }
            // Every candidate was already steered this tick cycle; leave
            // the skew for the next tick rather than double-migrate.
            None => false,
        }
    }

    /// Migrate a session to `dest` shard: its KV cache, episode state and
    /// queued arrivals move wholesale, so subsequent answers are
    /// bit-identical to never having moved. No-op when already home —
    /// and no-op when either endpoint's process is down: the transfer
    /// RPC fails fast against a crashed shard (even one the health
    /// checker has not yet declared), so the session stays where it is
    /// instead of marooning its KV on a dead process.
    pub fn steer(&mut self, id: GlobalSessionId, dest: usize) {
        self.steer_with(id, dest, SteerReason::Manual);
    }

    /// [`ShardedServer::steer`] with the trigger recorded: internal
    /// callers (rebalance, budget steering) tag their moves so the
    /// journal can say *why* a session moved, not just where.
    fn steer_with(&mut self, id: GlobalSessionId, dest: usize, reason: SteerReason) {
        assert!(dest < self.shards.len(), "shard {dest} out of range");
        let &(src, local) = self.routes.get(&id).expect("unknown session id");
        if src == dest
            || self.crashed[src] == CrashState::Down
            || self.crashed[dest] == CrashState::Down
        {
            return;
        }
        let parked = self.shards[src].park(local);
        let new_local = self.shards[dest].admit(parked);
        self.routes.insert(id, (dest, new_local));
        // Pending arrivals follow their session (bypassing the cap: a
        // move must never drop a ticket).
        for a in self.queues[src].remove_session(id) {
            self.queues[dest].requeue(a);
        }
        self.steered_this_tick.insert(id);
        self.metrics.record_steered(src);
        self.metrics.record_steered_in(dest);
        self.journal.record(
            self.tick_no,
            EventKind::Steer { src: src as u32, dst: dest as u32, session: id, reason },
        );
    }

    /// Live sessions across the fleet.
    pub fn active(&self) -> usize {
        self.shards.iter().map(ServingEngine::active).sum()
    }

    /// Live sessions per shard (the rebalance policy's balance view).
    pub fn active_per_shard(&self) -> Vec<usize> {
        self.shards.iter().map(ServingEngine::active).collect()
    }

    /// KV bytes held across the fleet.
    pub fn cache_bytes(&self) -> usize {
        self.shards.iter().map(ServingEngine::cache_bytes).sum()
    }

    /// KV bytes per shard — the accounting `CacheAware` admission and
    /// steering run on.
    pub fn cache_bytes_per_shard(&self) -> Vec<usize> {
        self.shards.iter().map(ServingEngine::cache_bytes).collect()
    }

    /// Pool pages held per shard — the accounting `PageAware` placement
    /// and steering run on (all zero for pool-less fleets).
    pub fn pages_held_per_shard(&self) -> Vec<usize> {
        self.shards.iter().map(ServingEngine::pages_held).collect()
    }

    /// Resident sessions per backbone group, per shard — the fleet-wide
    /// batch-shape view (`histograms[shard][group]`). `PageAware`
    /// placement ties break toward the shard hosting the most
    /// same-backbone residents, because same-group slots share one
    /// stacked backbone GEMM per step.
    pub fn backbone_histograms(&self, task: &T) -> Vec<Vec<usize>> {
        self.shards.iter().map(|e| e.backbone_histogram(task)).collect()
    }

    /// Head outputs of `id`'s most recent step.
    pub fn last_logits(&self, id: GlobalSessionId) -> &[f32] {
        let &(shard, local) = self.routes.get(&id).expect("unknown session id");
        self.shards[shard].last_logits(local)
    }

    // ---- continuous front end ------------------------------------------

    /// Enqueue an observation for `id`'s next decision. Returns the
    /// [`Ticket`] to redeem via [`ShardedServer::poll`] after a future
    /// [`ShardedServer::tick`] serves it — or a [`SubmitError`] carrying
    /// the observation back: [`SubmitError::QueueFull`] when the
    /// session's shard queue is at its backpressure cap (a tick's drain
    /// frees space), [`SubmitError::RetryAfterTick`] when its shard is
    /// Suspect (the health checker will revive it or re-admit the session
    /// on a survivor). Nothing is silently lost at either refusal;
    /// [`crate::SubmitRetry`] is the deterministic backoff loop callers
    /// use. Arrivals are stamped with a fleet-wide logical arrival clock
    /// (the ticket sequence — tickets are issued in submission order) and
    /// the session's adapter group; a session may hold any number of
    /// queued arrivals, served one per tick in FIFO order.
    pub fn submit(
        &mut self,
        id: GlobalSessionId,
        obs: T::Obs,
    ) -> Result<Ticket, SubmitError<T::Obs>> {
        let &(shard, _) = self.routes.get(&id).expect("unknown session id");
        if !self.health.state(shard).is_healthy() {
            // Suspect: the shard may revive (stall) or be declared dead
            // and its sessions re-admitted elsewhere — either way a tick
            // resolves it. Routes never point to Dead shards (recovery
            // re-routes at declaration).
            return Err(SubmitError::RetryAfterTick { obs });
        }
        let group = self.groups[&id];
        let seq = self.next_ticket;
        let arrival = Arrival { ticket: Ticket(seq), session: id, group, obs };
        match self.queues[shard].push(arrival) {
            Ok(()) => {
                self.next_ticket += 1;
                Ok(Ticket(seq))
            }
            Err(refused) => Err(SubmitError::QueueFull { obs: refused.obs }),
        }
    }

    /// Arrivals queued across the fleet.
    pub fn pending(&self) -> usize {
        self.queues.iter().map(AdmissionQueue::len).sum()
    }

    /// Arrivals queued for one session.
    pub fn pending_of(&self, id: GlobalSessionId) -> usize {
        let &(shard, _) = self.routes.get(&id).expect("unknown session id");
        self.queues[shard].pending_of(id)
    }

    /// Served-but-unpolled actions.
    pub fn ready(&self) -> usize {
        self.completed.len()
    }

    /// Redeem a ticket: `Some(action)` exactly once after the tick that
    /// served it, `None` while it is still queued (or after it was
    /// already polled, or after its session left).
    pub fn poll(&mut self, ticket: Ticket) -> Option<T::Action> {
        self.completed.remove(&ticket).map(|(_, action)| action)
    }

    /// Redeem a ticket with its fault-aware resolution: `Served(action)`
    /// or `Failed` exactly once (terminal — like [`ShardedServer::poll`],
    /// a resolved ticket is consumed), `Requeued` while a fault has
    /// displaced the arrival back into a queue (it will serve on a later
    /// tick), `Pending` otherwise. Under any injected fault schedule
    /// every ticket reaches `Served` or `Failed` once the queues drain —
    /// no ticket hangs (the fault-soak gate's first invariant).
    pub fn poll_status(&mut self, ticket: Ticket) -> TicketStatus<T::Action> {
        if let Some((_, action)) = self.completed.remove(&ticket) {
            self.requeued.remove(&ticket);
            return TicketStatus::Served(action);
        }
        if self.failed.remove(&ticket) {
            return TicketStatus::Failed;
        }
        if self.requeued.contains(&ticket) {
            return TicketStatus::Requeued;
        }
        TicketStatus::Pending
    }

    /// Coldest idle session holding pool pages — the
    /// [`EvictionPolicy::ColdestReanchor`] victim order: least recently
    /// served first, ties to the most pages held (biggest reclaim), then
    /// the lowest id. Sessions in `protected` (their arrival is in this
    /// tick's batch — drained or deferred) are never victims.
    fn coldest_idle_victim(
        &self,
        protected: &BTreeSet<GlobalSessionId>,
    ) -> Option<GlobalSessionId> {
        self.routes
            .iter()
            .filter(|(id, &(s, l))| {
                !protected.contains(id)
                    && self.health.state(s).is_healthy()
                    && self.shards[s].pages_of(l) > 0
            })
            .min_by_key(|(&id, &(s, l))| {
                (
                    self.last_served.get(&id).copied().unwrap_or(0),
                    usize::MAX - self.shards[s].pages_of(l),
                    id,
                )
            })
            .map(|(&id, _)| id)
    }

    /// Idle session whose re-anchor rebuild is cheapest — the
    /// [`EvictionPolicy::CheapestRebuild`] victim order: fewest priced
    /// rebuild rows × backbone width first
    /// ([`ServingEngine::rebuild_cost_of`], 0 whenever the session's next
    /// step re-anchors regardless), ties to the most pages held (biggest
    /// reclaim per re-anchor), then coldest, then the lowest id.
    /// Age-blind by design: a hot session due a free re-anchor beats a
    /// cold one carrying a full window.
    fn cheapest_rebuild_victim(
        &self,
        task: &T,
        protected: &BTreeSet<GlobalSessionId>,
    ) -> Option<GlobalSessionId> {
        self.routes
            .iter()
            .filter(|(id, &(s, l))| {
                !protected.contains(id)
                    && self.health.state(s).is_healthy()
                    && self.shards[s].pages_of(l) > 0
            })
            .min_by_key(|(&id, &(s, l))| {
                (
                    self.shards[s].rebuild_cost_of(task, l),
                    usize::MAX - self.shards[s].pages_of(l),
                    self.last_served.get(&id).copied().unwrap_or(0),
                    id,
                )
            })
            .map(|(&id, _)| id)
    }

    /// The active eviction policy's next victim, or `None` (under
    /// [`EvictionPolicy::None`], or when every page-holding session is
    /// protected). Shared by both memory guards so the scheduled and
    /// lockstep front ends reclaim identically.
    fn eviction_victim(
        &self,
        task: &T,
        protected: &BTreeSet<GlobalSessionId>,
    ) -> Option<GlobalSessionId> {
        match self.eviction {
            EvictionPolicy::None => None,
            EvictionPolicy::ColdestReanchor => self.coldest_idle_victim(protected),
            EvictionPolicy::CheapestRebuild => self.cheapest_rebuild_victim(task, protected),
        }
    }

    /// Reclaim `victim`'s pages, recording the eviction under the rebuild
    /// rows its next step will now replay (priced *before* the clear —
    /// an empty cache prices 0). Both policies account identically, so
    /// the BENCH_9 rebuild-row comparison is apples to apples.
    fn evict_session(&mut self, victim: GlobalSessionId, task: &T) {
        let &(s, l) = self.routes.get(&victim).expect("victim is routed");
        let rows = self.shards[s].rebuild_rows_of(task, l) as u64;
        let _ = self.shards[s].evict(l);
        self.metrics.record_evicted(s, rows);
        self.journal.record(
            self.tick_no,
            EventKind::Eviction { shard: s as u32, session: victim, rebuild_rows: rows },
        );
    }

    /// One shard's drained batch as `(local id, obs)` requests.
    fn requests_of<'a>(
        routes: &BTreeMap<GlobalSessionId, (usize, SessionId)>,
        shard: usize,
        batch: &'a [Arrival<T::Obs>],
    ) -> Vec<(SessionId, &'a T::Obs)> {
        batch
            .iter()
            .map(|a| {
                let &(s, local) = routes.get(&a.session).expect("queued session left the fleet");
                debug_assert_eq!(s, shard, "queued arrival on the wrong shard");
                (local, &a.obs)
            })
            .collect()
    }

    /// Pages the drained batches could allocate this tick (exact
    /// [`ServedTask::plan_rows`] counts; clears charged from empty so no
    /// band interleaving can starve a reservation).
    fn batch_demand(&self, task: &T, drained: &[Vec<Arrival<T::Obs>>]) -> usize {
        drained
            .iter()
            .enumerate()
            .map(|(s, batch)| {
                self.shards[s].page_demand(task, &Self::requests_of(&self.routes, s, batch))
            })
            .sum()
    }

    /// Pre-release the pages of every drained session whose plan clears
    /// (re-anchors) anyway — semantically free (the rebuild never reads
    /// them; see [`ServingEngine::release_reanchor_pages`]) and the
    /// reason a re-anchoring giant session can never wedge the pool
    /// against its own rebuild.
    fn release_reanchor_pages(&mut self, task: &T, drained: &[Vec<Arrival<T::Obs>>]) {
        for (s, batch) in drained.iter().enumerate() {
            let reqs = Self::requests_of(&self.routes, s, batch);
            let _ = self.shards[s].release_reanchor_pages(task, &reqs);
        }
    }

    /// Pop every arrival of `victim` out of the drained batch and requeue
    /// it at the *front* of its shard queue (FIFO preserved, ticket stays
    /// pending — the same mechanics as a backpressure deferral). Returns
    /// how many arrivals were deferred.
    fn defer_session(
        &mut self,
        victim: GlobalSessionId,
        drained: &mut [Vec<Arrival<T::Obs>>],
    ) -> usize {
        let mut deferred = 0usize;
        for (s, batch) in drained.iter_mut().enumerate() {
            let mut kept = Vec::with_capacity(batch.len());
            let mut back = Vec::new();
            for a in batch.drain(..) {
                if a.session == victim {
                    back.push(a);
                } else {
                    kept.push(a);
                }
            }
            *batch = kept;
            deferred += back.len();
            if !back.is_empty() {
                self.queues[s].requeue_front(back);
            }
        }
        deferred
    }

    /// The scheduled front end's memory guard, run between the drain and
    /// the step: re-anchoring sessions return their pages up front, then
    /// while the tick's page demand exceeds the pool's free list, reclaim
    /// the [`EvictionPolicy`]'s chosen victim's pages (it re-anchors on
    /// its next step). Victims are never sessions whose arrivals are in
    /// the drained batch — evicting work we are about to serve forces an
    /// immediate re-anchor of that very work (the pre-fix bug: the scan
    /// recomputed its exclusion set per iteration, so a just-deferred
    /// session — which serves next tick — was evicted by accident,
    /// undoing the deferral's whole point; regression-pinned in
    /// tests/paged_serving.rs).
    ///
    /// When pressure persists and every page-holding session is in the
    /// batch, one of them must yield or the pool freezes (nothing served
    /// → nothing grows or re-anchors → the same tick repeats forever).
    /// The guard then *sacrifices* one batch member — chosen by the
    /// eviction policy's own order, never the oldest arrival's session,
    /// so the tick always serves someone — deferring its arrival and
    /// reclaiming its pages as a single decision.
    ///
    /// When no victim remains at all, defer the globally youngest drained
    /// arrivals back to the front of their queues — admission
    /// backpressure instead of OOM growth, and their tickets stay
    /// pending, so nothing is lost. After this guard every reservation
    /// inside the step succeeds under any thread interleaving.
    /// (Evictions only grow the free list, so demand is recomputed only
    /// when a deferral shrinks the batch.)
    fn memory_guard(&mut self, task: &T, drained: &mut [Vec<Arrival<T::Obs>>]) -> MemoryReport {
        let mut report = MemoryReport::default();
        let Some(pool) = self.pool.clone() else { return report };
        self.release_reanchor_pages(task, drained);
        // Computed ONCE from the batch as drained: a session deferred for
        // backpressure stays protected for the rest of the tick.
        let protected: BTreeSet<GlobalSessionId> =
            drained.iter().flatten().map(|a| a.session).collect();
        let mut demand = self.batch_demand(task, drained);
        loop {
            if demand <= pool.free_pages() {
                break;
            }
            if let Some(victim) = self.eviction_victim(task, &protected) {
                self.evict_session(victim, task);
                report.evicted.push(victim);
                continue;
            }
            // Every page holder is in the batch. Sacrifice by policy
            // order, sparing the oldest arrival's session (progress
            // guarantee); defer-and-evict is one decision, so the victim
            // is never served in the tick that cleared its cache.
            let oldest = drained
                .iter()
                .flatten()
                .min_by_key(|a| a.ticket)
                .map(|a| a.session)
                .expect("demand > 0 implies a non-empty batch");
            if self.eviction != EvictionPolicy::None {
                let spare: BTreeSet<GlobalSessionId> = [oldest].into_iter().collect();
                if let Some(victim) = self.eviction_victim(task, &spare) {
                    report.deferred += self.defer_session(victim, drained);
                    self.evict_session(victim, task);
                    report.evicted.push(victim);
                    demand = self.batch_demand(task, drained);
                    continue;
                }
            }
            // No reclaimable victim anywhere: defer the globally youngest
            // drained arrival. The loop converges — every deferral
            // strictly shrinks the batch, and a batch of one always fits:
            // its session either grows incrementally (held + delta ≤ one
            // full-context session ≤ capacity) or re-anchors (pages
            // pre-released above, rebuild ≤ one full-context session ≤
            // capacity — the `for_model` floor; regression-tested in
            // tests/paged_serving.rs).
            let youngest = drained
                .iter()
                .enumerate()
                .filter_map(|(s, b)| b.last().map(|a| (a.ticket, s)))
                .max_by_key(|&(ticket, _)| ticket);
            let Some((_, s)) = youngest else { break };
            let arrival = drained[s].pop().expect("shard batch has a last element");
            self.queues[s].requeue_front(vec![arrival]);
            report.deferred += 1;
            demand = self.batch_demand(task, drained);
        }
        report
    }

    /// The lockstep front end's memory guard: same pre-release + eviction
    /// pass, but a lockstep batch cannot be deferred — when even eviction
    /// cannot cover the batch the server panics with the sizing instead
    /// of letting a mid-step reservation fail opaquely.
    fn memory_guard_lockstep(
        &mut self,
        task: &T,
        per: &[Vec<(SessionId, &T::Obs)>],
        busy: &BTreeSet<GlobalSessionId>,
    ) {
        let Some(pool) = self.pool.clone() else { return };
        for (s, reqs) in per.iter().enumerate() {
            let _ = self.shards[s].release_reanchor_pages(task, reqs);
        }
        let demand: usize =
            self.shards.iter().zip(per).map(|(e, reqs)| e.page_demand(task, reqs)).sum();
        while demand > pool.free_pages() {
            match self.eviction_victim(task, busy) {
                Some(v) => {
                    self.evict_session(v, task);
                }
                None => panic!(
                    "page pool cannot cover this lockstep batch: demand {demand} pages, \
                     {} free of {} — use the queued front end (submit/tick/poll) for \
                     deferral, raise the budget, or shrink the batch",
                    pool.free_pages(),
                    pool.capacity_pages()
                ),
            }
        }
    }

    /// Serve one scheduled tick: every shard drains its queue at this
    /// tick boundary (at most one arrival per session, FIFO within a
    /// session), the memory guard reserves the tick's page demand
    /// (evicting / deferring under pressure — see
    /// [`ShardedServer::with_memory`]), busy shards run one batched
    /// [`ServingEngine::step`] each (on `NT_THREADS` scoped workers, as in
    /// lockstep serving), served actions are banked for
    /// [`ShardedServer::poll`], and — under
    /// [`AdmissionPolicy::CacheAware`] — the steering pass migrates the
    /// coldest sessions off any shard whose KV bytes crossed the budget.
    /// Per-slot math is identical to the lockstep path, so scheduled and
    /// lockstep serving produce identical logits (gated at 1e-5 in
    /// `nt-bench/tests/continuous_batching.rs`).
    pub fn tick(&mut self, task: &T) -> TickReport
    where
        T: Sync,
        T::Obs: Sync,
        T::Slot: Send,
        T::Action: Send,
    {
        self.tick_no += 1;
        let tick = self.tick_no;
        let k = self.shards.len();
        let mut faults = FaultReport::default();

        // Revive expired stalls (the transient class: state intact, the
        // next heartbeat snaps the shard back to Healthy).
        for s in 0..k {
            if let CrashState::Stalled { until } = self.crashed[s] {
                if tick >= until {
                    self.crashed[s] = CrashState::Up;
                }
            }
        }

        // Fire pre-drain faults: the shard is already dark when this
        // tick's heartbeats are snapshotted below.
        let mut plan = std::mem::take(&mut self.faults);
        for f in plan.take_due(tick, true) {
            match f {
                Fault::Kill { shard, .. } => {
                    if self.crashed[shard] != CrashState::Down {
                        self.crashed[shard] = CrashState::Down;
                        faults.killed.push(shard);
                    }
                }
                Fault::Stall { shard, ticks } => {
                    if self.crashed[shard] == CrashState::Up {
                        self.crashed[shard] = CrashState::Stalled { until: tick + ticks };
                        faults.stalled.push(shard);
                    }
                }
                f => unreachable!("{f:?} is not a pre-drain fault"),
            }
        }

        // Heartbeats + health observation. Recovery for newly-declared
        // deaths runs *before* the drain, so salvaged sessions' arrivals
        // (redistributed to survivors' queues) serve this same tick.
        let beats: Vec<Option<Heartbeat>> = (0..k)
            .map(|s| match self.crashed[s] {
                CrashState::Up => Some(Heartbeat {
                    tick,
                    occupancy: self.shards[s].active(),
                    queue_depth: self.queues[s].len(),
                    kv_bytes: self.shards[s].cache_bytes(),
                }),
                _ => None,
            })
            .collect();
        for s in self.health.observe(tick, &beats) {
            faults.declared_dead.push(s);
            self.metrics.record_shard_kill();
            self.journal.record(tick, EventKind::ShardDead { shard: s as u32 });
            self.recover_shard(s, &mut faults);
        }

        // Tick-phase attribution: wall-ns per phase, recorded into the
        // per-shard histograms when telemetry is on. `timing` gates every
        // clock reading so the off configuration takes none.
        let timing = self.telemetry;
        let mut phase_ns = [0u64; TICK_PHASES];

        // Drain the Healthy shards' queues at the boundary (a Suspect
        // shard's work waits — retry/backoff, not recovery), then reserve
        // the tick's page demand (evicting / deferring under pressure).
        let mut drained: Vec<Vec<Arrival<T::Obs>>> = Vec::with_capacity(k);
        for s in 0..k {
            let t0 = if timing { Some(Instant::now()) } else { None };
            let batch = if self.health.state(s).is_healthy() {
                self.queues[s].drain_tick()
            } else {
                Vec::new()
            };
            if let Some(t0) = t0 {
                let ns = t0.elapsed().as_nanos() as u64;
                self.metrics.record_phase_ns(s, TickPhase::Drain, ns);
                phase_ns[TickPhase::Drain as usize] += ns;
            }
            drained.push(batch);
        }

        // Fire mid-tick faults: after the drain, before the engine step —
        // drained arrivals are in flight and must be requeued or failed,
        // never lost.
        for f in plan.take_due(tick, false) {
            match f {
                Fault::Kill { shard, .. } => {
                    if self.crashed[shard] == CrashState::Down || self.health.state(shard).is_dead()
                    {
                        continue;
                    }
                    self.crashed[shard] = CrashState::Down;
                    faults.killed.push(shard);
                    // The drained batch is orphaned in the dead process:
                    // back to the head of its queue (FIFO preserved),
                    // redistributed with the backlog at declaration.
                    let orphans = std::mem::take(&mut drained[shard]);
                    let n = orphans.len() as u64;
                    for a in &orphans {
                        self.requeued.insert(a.ticket);
                    }
                    self.queues[shard].requeue_front(orphans);
                    faults.arrivals_requeued += n;
                    self.metrics.record_arrivals_requeued(n);
                }
                Fault::Poison { session } => {
                    let Some(&(s, local)) = self.routes.get(&session) else { continue };
                    if !self.health.state(s).is_healthy() {
                        continue;
                    }
                    // Torn step: the in-flight arrival fails, and the
                    // session's KV is untrusted (a CJS candidate may sit
                    // half-applied) — drop it; the episode log was never
                    // touched mid-step, so the next step re-anchors to
                    // exactly the pre-poison stream.
                    if let Some(pos) = drained[s].iter().position(|a| a.session == session) {
                        let a = drained[s].remove(pos);
                        self.failed.insert(a.ticket);
                        faults.tickets_failed += 1;
                        self.metrics.record_tickets_failed(1);
                    }
                    let rows = self.shards[s].kv_rows_of(local) as u64;
                    let _ = self.shards[s].evict(local);
                    faults.replay_rows += rows;
                    self.metrics.record_sessions_recovered(0, rows);
                }
                Fault::DropBatch { shard } => {
                    if !self.health.state(shard).is_healthy() {
                        continue;
                    }
                    let batch = std::mem::take(&mut drained[shard]);
                    let n = batch.len() as u64;
                    for a in batch {
                        self.failed.insert(a.ticket);
                    }
                    faults.tickets_failed += n;
                    self.metrics.record_tickets_failed(n);
                }
                f => unreachable!("{f:?} is not a mid-tick fault"),
            }
        }
        self.faults = plan;

        // The memory guard is a fleet-wide pass (one pool, one
        // reservation), so its span lands identically on every shard's
        // row — see [`TickPhase::MemoryGuard`].
        let t0 = if timing { Some(Instant::now()) } else { None };
        let mut memory = self.memory_guard(task, &mut drained);
        if let Some(t0) = t0 {
            let ns = t0.elapsed().as_nanos() as u64;
            for s in 0..k {
                self.metrics.record_phase_ns(s, TickPhase::MemoryGuard, ns);
            }
            phase_ns[TickPhase::MemoryGuard as usize] = ns;
        }
        let per: Vec<Vec<(SessionId, &T::Obs)>> = drained
            .iter()
            .enumerate()
            .map(|(s, batch)| Self::requests_of(&self.routes, s, batch))
            .collect();

        // Step the busy shards (same fan-out as lockstep `step`).
        let (results, step_ns) = self.step_partitioned(task, &per);
        phase_ns[TickPhase::PlanStep as usize] = step_ns.iter().sum();

        // Bank the actions under their tickets.
        let mut served = 0usize;
        let mut by_label: BTreeMap<&'static str, usize> = BTreeMap::new();
        for (s, (batch, actions)) in drained.into_iter().zip(results).enumerate() {
            debug_assert_eq!(batch.len(), actions.len(), "shard returned a ragged tick");
            let t0 = if timing && !batch.is_empty() { Some(Instant::now()) } else { None };
            let shard_served = batch.len();
            for (a, action) in batch.into_iter().zip(actions) {
                self.requeued.remove(&a.ticket); // displaced, now served
                self.completed.insert(a.ticket, (a.session, action));
                self.last_served.insert(a.session, tick);
                *by_label.entry(task.task_label(a.group)).or_default() += 1;
                served += 1;
            }
            if let Some(t0) = t0 {
                let ns = t0.elapsed().as_nanos() as u64;
                self.metrics.record_phase_ns(s, TickPhase::Settle, ns);
                phase_ns[TickPhase::Settle as usize] += ns;
                self.journal.record(
                    tick,
                    EventKind::TickSpan {
                        shard: s as u32,
                        served: shard_served as u32,
                        span_ns: step_ns[s],
                    },
                );
            }
        }
        for (&label, &n) in &by_label {
            self.metrics.record_label_served(label, n as u64);
        }

        // Cache-aware steering at the tick boundary (fleet-wide pass,
        // recorded like the memory guard above).
        let t0 = if timing { Some(Instant::now()) } else { None };
        self.cache_steer_pass();
        if let Some(t0) = t0 {
            let ns = t0.elapsed().as_nanos() as u64;
            for s in 0..k {
                self.metrics.record_phase_ns(s, TickPhase::Steer, ns);
            }
            phase_ns[TickPhase::Steer as usize] = ns;
        }

        // Close the tick cycle: report every steer since the previous
        // boundary (rebalance-on-leave + the pass above) and reset the
        // double-migration guard.
        let steered: Vec<GlobalSessionId> =
            std::mem::take(&mut self.steered_this_tick).into_iter().collect();
        if let Some(pool) = &self.pool {
            memory.used_bytes = pool.used_bytes();
        }
        for (s, q) in self.queues.iter().enumerate() {
            self.metrics.set_queue_depth(s, q.len() as u64);
            self.metrics.set_held_pages(s, self.shards[s].pages_held() as u64);
        }
        self.metrics.set_free_pages(self.pool_stats().map(|st| st.free_pages as u64).unwrap_or(0));
        faults.suspect = (0..k).filter(|&s| self.health.state(s).is_suspect()).collect();
        TickReport {
            tick,
            served,
            steered,
            pending: self.pending(),
            served_by_label: by_label.into_iter().collect(),
            memory,
            faults,
            phase_ns,
        }
    }

    /// Recover a shard the health checker just declared Dead: salvage
    /// every routed session (KV pages died with the process and are
    /// reclaimed to the pool; the episode log survives and re-anchors the
    /// session on its next step, exactly like an eviction), re-place each
    /// on a Healthy shard via the admission policy, redistribute the dead
    /// shard's queue backlog to the sessions' new homes (FIFO per session
    /// preserved — `requeue` appends in order and a session's arrivals
    /// only ever lived in this one queue), and permanently retire the
    /// shard's share of the pool budget, clamped so one full-context
    /// session still fits (degraded capacity defers, never wedges).
    fn recover_shard(&mut self, dead: usize, report: &mut FaultReport) {
        self.crashed[dead] = CrashState::Down; // a fatal stall ends here too
        let victims: Vec<GlobalSessionId> =
            self.routes.iter().filter(|(_, &(s, _))| s == dead).map(|(&id, _)| id).collect();
        let mut rows = 0u64;
        for &id in &victims {
            let &(_, local) = self.routes.get(&id).expect("victim is routed");
            let mut parked = self.shards[dead].park(local);
            rows += parked.kv_rows() as u64;
            parked.drop_kv();
            let dest = self.place_on_healthy(id, self.groups[&id]);
            let new_local = self.shards[dest].admit(parked);
            self.routes.insert(id, (dest, new_local));
        }
        report.sessions_recovered += victims.len() as u64;
        report.replay_rows += rows;
        self.metrics.record_sessions_recovered(victims.len() as u64, rows);
        self.journal.record(
            self.tick_no,
            EventKind::Recovery {
                shard: dead as u32,
                sessions: victims.len() as u32,
                replay_rows: rows,
            },
        );
        let backlog = self.queues[dead].take_all();
        let n = backlog.len() as u64;
        for a in backlog {
            let dest = self.routes.get(&a.session).expect("session recovered above").0;
            self.requeued.insert(a.ticket);
            self.queues[dest].requeue(a);
        }
        report.arrivals_requeued += n;
        self.metrics.record_arrivals_requeued(n);
        if let Some(pool) = &self.pool {
            let share = self.pool_minted / self.initial_shards;
            let ceiling = pool.capacity_pages().saturating_sub(self.floor_pages);
            let retired = pool.retire_pages(share.min(ceiling));
            report.retired_pages += retired as u64;
        }
    }

    /// The tick boundary's budget-enforcement pass: `CacheAware` steers
    /// by KV bytes, `PageAware` by held pool pages — same discipline,
    /// different denomination.
    fn cache_steer_pass(&mut self) {
        if let Some(budget) = self.policy.kv_budget() {
            self.steer_over_budget(budget, ServingEngine::cache_bytes, |e, l| e.cache_bytes_of(l));
        }
        if let Some(budget) = self.policy.page_budget() {
            self.steer_over_budget(budget, ServingEngine::pages_held, |e, l| e.pages_of(l));
        }
    }

    /// While any shard's load (per `shard_load`) exceeds `budget`, steer
    /// its coldest not-yet-steered session to the lightest shard —
    /// provided the move passes [`steer_improves`]: the destination plus
    /// the victim stays strictly below the source (no ping-pong between
    /// equal-height shards, no bouncing a session whose cache alone
    /// exceeds the budget) *and* the destination pool's free list covers
    /// the victim's pages, so a steer never converts into an eviction on
    /// arrival. (In-process fleets share one pool, making the page check
    /// conservative — the move itself is a no-op on the free list — but
    /// it is exactly the contract a per-process destination pool
    /// enforces.) Bounded by the once-per-tick guard (each session moves
    /// at most once), so the pass terminates even when the budget is
    /// infeasible fleet-wide.
    fn steer_over_budget(
        &mut self,
        budget: usize,
        shard_load: impl Fn(&ServingEngine<T>) -> usize,
        victim_load: impl Fn(&ServingEngine<T>, SessionId) -> usize,
    ) {
        // Only Healthy, up shards steer or receive — a dead shard's
        // permanent 0 load must never make it the designated
        // destination, including one whose crash no probe has missed yet
        // (`steer` would refuse the transfer and the pass would spin on
        // the same victim).
        let healthy = self.reachable_shards();
        if healthy.len() < 2 {
            return;
        }
        loop {
            let loads: Vec<usize> = self.shards.iter().map(&shard_load).collect();
            let free = self.pool_stats().map(|st| st.free_pages);
            let dest_for = |src: usize| {
                *healthy.iter().filter(|&&s| s != src).min_by_key(|&&s| (loads[s], s)).unwrap()
            };
            let eligible = |server: &Self, id: &GlobalSessionId, shard: usize, local: SessionId| {
                !server.steered_this_tick.contains(id)
                    && steer_improves(
                        loads[shard],
                        loads[dest_for(shard)],
                        victim_load(&server.shards[shard], local),
                        server.shards[shard].pages_of(local),
                        free,
                    )
            };
            // Hottest over-budget shard that still holds an eligible
            // victim — shards whose sessions were all steered already (or
            // whose moves would not improve anything) are passed over, not
            // a reason to abandon cooler over-budget shards that can
            // still be fixed.
            let src = healthy
                .iter()
                .copied()
                .filter(|&s| loads[s] > budget)
                .filter(|&s| {
                    self.routes.iter().any(|(id, &(ss, l))| ss == s && eligible(self, id, ss, l))
                })
                .max_by_key(|&s| (loads[s], s));
            let Some(src) = src else { break };
            // Coldest eligible session on the hot shard (ties: lowest id —
            // deterministic).
            let victim = self
                .routes
                .iter()
                .filter(|(id, &(s, l))| s == src && eligible(self, id, s, l))
                .min_by_key(|(&id, _)| (self.last_served.get(&id).copied().unwrap_or(0), id))
                .map(|(&id, _)| id)
                .expect("src was filtered on having an eligible victim");
            self.steer_with(victim, dest_for(src), SteerReason::OverBudget);
        }
    }

    /// Serve one lockstep tick across the fleet: requests are routed to
    /// their home shards, each busy shard runs one batched
    /// [`ServingEngine::step`], and the answers come back in request
    /// order. With `NT_THREADS > 1` the shards step on scoped worker
    /// threads — shard state is fully disjoint and per-slot math is
    /// independent of the fan-out, so sharded and single-shard serving
    /// produce identical logits. Each call is a tick boundary: it closes
    /// the steering cycle (see [`ShardedServer::tick`]).
    pub fn step(&mut self, task: &T, requests: &[(GlobalSessionId, &T::Obs)]) -> Vec<T::Action>
    where
        T: Sync,
        T::Obs: Sync,
        T::Slot: Send,
        T::Action: Send,
    {
        if requests.is_empty() {
            return Vec::new();
        }
        // Fault injection drives the continuous front end only: lockstep
        // callers orchestrate their own batches and have no queue to park
        // work in while a shard is dark.
        debug_assert!(
            requests.iter().all(|&(id, _)| self.health.state(self.routes[&id].0).is_healthy()),
            "lockstep step cannot serve sessions on a crashed/suspect shard — \
             use submit/tick/poll under fault injection"
        );
        // Partition into per-shard batches, remembering each request's
        // (shard, position) so answers reassemble in request order.
        let k = self.shards.len();
        let mut per: Vec<Vec<(SessionId, &T::Obs)>> = (0..k).map(|_| Vec::new()).collect();
        let mut placement = Vec::with_capacity(requests.len());
        for &(id, obs) in requests {
            let &(shard, local) = self.routes.get(&id).expect("unknown session id");
            placement.push(shard);
            per[shard].push((local, obs));
        }
        let busy: BTreeSet<GlobalSessionId> = requests.iter().map(|&(id, _)| id).collect();
        self.memory_guard_lockstep(task, &per, &busy);
        let (results, _step_ns) = self.step_partitioned(task, &per);
        self.tick_no += 1;
        for &(id, _) in requests {
            self.last_served.insert(id, self.tick_no);
        }
        // A lockstep step is a full tick boundary: the CacheAware
        // steering pass runs here too (no-op under other policies), and
        // the once-per-cycle steering guard resets.
        self.cache_steer_pass();
        self.steered_this_tick.clear();

        // Reassemble: within a shard, answers are in that shard's request
        // order, which preserves the caller's relative order.
        let mut cursors: Vec<std::vec::IntoIter<T::Action>> =
            results.into_iter().map(Vec::into_iter).collect();
        placement
            .into_iter()
            .map(|shard| cursors[shard].next().expect("shard returned too few actions"))
            .collect()
    }

    /// Step every shard with a non-empty batch, fanning the busy shards
    /// out over `NT_THREADS` scoped workers (contiguous bands of shards
    /// per worker). Returns one action vector per shard, in that shard's
    /// batch order (empty for idle shards), plus each shard's step
    /// wall-ns (all zero when telemetry is off — no clock readings are
    /// taken). Shared by the lockstep and the scheduled front ends; the
    /// per-shard spans feed the [`TickPhase::PlanStep`] histograms.
    #[allow(clippy::type_complexity)]
    fn step_partitioned(
        &mut self,
        task: &T,
        per: &[Vec<(SessionId, &T::Obs)>],
    ) -> (Vec<Vec<T::Action>>, Vec<u64>)
    where
        T: Sync,
        T::Obs: Sync,
        T::Slot: Send,
        T::Action: Send,
    {
        let k = self.shards.len();
        let timing = self.telemetry;
        #[allow(clippy::type_complexity)]
        let mut busy: Vec<(usize, &mut ServingEngine<T>, &[(SessionId, &T::Obs)])> = self
            .shards
            .iter_mut()
            .zip(per)
            .enumerate()
            .filter(|(_, (_, b))| !b.is_empty())
            .map(|(s, (e, b))| (s, e, b.as_slice()))
            .collect();
        let threads = if nt_tensor::pool::in_worker() {
            1
        } else {
            nt_tensor::pool::num_threads().min(busy.len())
        };
        let mut results: Vec<Option<Vec<T::Action>>> = (0..k).map(|_| None).collect();
        let mut step_ns = vec![0u64; k];
        let timed_step = |e: &mut ServingEngine<T>, b: &[(SessionId, &T::Obs)]| {
            if timing {
                let t0 = Instant::now();
                let r = e.step(task, b);
                (r, t0.elapsed().as_nanos() as u64)
            } else {
                (e.step(task, b), 0)
            }
        };
        if threads <= 1 {
            for (s, e, b) in busy {
                let (r, ns) = timed_step(e, b);
                results[s] = Some(r);
                step_ns[s] = ns;
            }
        } else {
            // Shard bands fan out over the persistent kernel pool; each
            // band's mutable borrows travel to its task through a
            // take-once Mutex slot and the answers come back the same way.
            let band_len = busy.len().div_ceil(threads);
            #[allow(clippy::type_complexity)]
            let bands: Vec<
                Mutex<Option<&mut [(usize, &mut ServingEngine<T>, &[(SessionId, &T::Obs)])]>>,
            > = busy.chunks_mut(band_len).map(|band| Mutex::new(Some(band))).collect();
            #[allow(clippy::type_complexity)]
            let outs: Vec<Mutex<Vec<(usize, Vec<T::Action>, u64)>>> =
                bands.iter().map(|_| Mutex::new(Vec::new())).collect();
            nt_tensor::pool::run_tasks(bands.len(), |bi| {
                let band = bands[bi].lock().unwrap().take().expect("shard band dispatched twice");
                let out: Vec<_> = band
                    .iter_mut()
                    .map(|(s, e, b)| {
                        let (r, ns) = timed_step(e, b);
                        (*s, r, ns)
                    })
                    .collect();
                *outs[bi].lock().unwrap() = out;
            });
            for m in outs {
                for (s, r, ns) in m.into_inner().unwrap() {
                    results[s] = Some(r);
                    step_ns[s] = ns;
                }
            }
        }
        let results: Vec<Vec<T::Action>> =
            results.into_iter().map(Option::unwrap_or_default).collect();
        for (s, r) in results.iter().enumerate() {
            if !r.is_empty() {
                self.metrics.record_served(s, r.len() as u64);
                if timing {
                    self.metrics.record_phase_ns(s, TickPhase::PlanStep, step_ns[s]);
                }
            }
        }
        (results, step_ns)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::adapt::{AdaptMode, LoraSpec};
    use crate::NetLlmAbr;
    use nt_abr::{AbrObservation, AbrPolicy};
    use nt_llm::{size_spec, Zoo};

    fn model(window: usize, seed: u64) -> NetLlmAbr {
        let loaded = Zoo::new(std::env::temp_dir().join("netllm-shard-test"))
            .build_random(&size_spec("0.35b-sim"));
        let mut m = NetLlmAbr::new(loaded, AdaptMode::NoDomain, LoraSpec::default(), window, seed);
        m.target_return = 2.0;
        m
    }

    #[test]
    fn router_spreads_sessions_and_accounts_per_shard() {
        let m = model(4, 1);
        let mut server = ShardedServer::new(3);
        let ids: Vec<_> = (0..9).map(|_| server.join(&m)).collect();
        assert_eq!(server.active(), 9);
        // The hash router must touch every shard with 9 sequential ids.
        let per = server.active_per_shard();
        assert_eq!(per.iter().sum::<usize>(), 9);
        assert!(per.iter().all(|&a| a > 0), "router left a shard empty: {per:?}");
        // Sessions land where the hash says they do.
        for &id in &ids {
            assert_eq!(server.routes[&id].0, server.home_shard(id));
        }
        // Cache accounting is per shard and starts empty.
        assert_eq!(server.cache_bytes(), 0);
        let obs = AbrObservation::synthetic_stream(3, 1);
        let reqs: Vec<_> = ids.iter().map(|&id| (id, &obs[0])).collect();
        let _ = server.step(&m, &reqs);
        let bytes = server.cache_bytes_per_shard();
        assert_eq!(bytes.iter().sum::<usize>(), server.cache_bytes());
        assert!(bytes.iter().all(|&b| b > 0), "every busy shard holds KV bytes: {bytes:?}");
    }

    #[test]
    fn ticks_with_idle_shards_only_step_busy_engines() {
        // A fleet larger than the request set must serve correctly (and
        // answer in request order) when most shards have nothing to do.
        let mut m = model(3, 7);
        let mut server = ShardedServer::new(8);
        let a = server.join(&m);
        let b = server.join(&m);
        let obs = AbrObservation::synthetic_stream(5, 4);

        let mut expected: Vec<Vec<usize>> = Vec::new();
        for _ in 0..2 {
            m.reset();
            expected.push(obs.iter().map(|o| m.select(o)).collect());
        }
        for (t, o) in obs.iter().enumerate() {
            let got = server.step(&m, &[(a, o), (b, o)]);
            assert_eq!(got, vec![expected[0][t], expected[1][t]], "tick {t} diverged");
        }
    }

    #[test]
    fn steer_and_rebalance_preserve_session_answers() {
        // A session's decisions must be identical whether it stays home,
        // is steered mid-stream, or is dragged along by rebalance-on-leave.
        let mut m = model(3, 2);
        let streams: Vec<Vec<AbrObservation>> =
            (0..5).map(|s| AbrObservation::synthetic_stream(40 + s as u64, 8)).collect();

        // Reference: each stream alone through the unbatched path.
        let mut expected: Vec<Vec<(usize, Vec<f32>)>> = Vec::new();
        for obs in &streams {
            m.reset();
            expected.push(obs.iter().map(|o| (m.select(o), m.last_logits().to_vec())).collect());
        }

        let mut server = ShardedServer::new(2);
        let ids: Vec<_> = (0..streams.len()).map(|_| server.join(&m)).collect();
        for chunk in 0..streams[0].len() {
            // Mid-stream churn: steer stream 0 back and forth, and drop
            // stream 4 so rebalance-on-leave has something to fix.
            if chunk == 2 {
                server.steer(ids[0], 1 - server.home_shard(ids[0]));
            }
            if chunk == 4 {
                let report = server.leave(ids[4]);
                assert!(report.is_clean(), "lockstep sessions leave nothing behind");
                let per = server.active_per_shard();
                assert!(
                    per.iter().max().unwrap() - per.iter().min().unwrap() <= 1,
                    "rebalance-on-leave left the fleet skewed: {per:?}"
                );
            }
            let live = if chunk >= 4 { &ids[..4] } else { &ids[..] };
            let reqs: Vec<_> =
                live.iter().enumerate().map(|(s, &id)| (id, &streams[s][chunk])).collect();
            let actions = server.step(&m, &reqs);
            for (s, (&id, act)) in live.iter().zip(actions).enumerate() {
                let (eact, elogits) = &expected[s][chunk];
                assert_eq!(act, *eact, "stream {s} chunk {chunk}: sharded action diverged");
                for (x, y) in server.last_logits(id).iter().zip(elogits) {
                    assert!(
                        (x - y).abs() < 1e-5,
                        "stream {s} chunk {chunk}: sharded {x} vs unbatched {y}"
                    );
                }
            }
        }
    }

    #[test]
    fn scheduled_ticks_serve_queued_arrivals_in_session_order() {
        // The continuous front end must serve a backlogged session one
        // decision per tick, FIFO, with logits equal to the unbatched
        // path — and tickets must resolve exactly once.
        let mut m = model(3, 11);
        let obs = AbrObservation::synthetic_stream(21, 4);
        let mut expected: Vec<(usize, Vec<f32>)> = Vec::new();
        m.reset();
        for o in &obs {
            expected.push((m.select(o), m.last_logits().to_vec()));
        }

        let mut server = ShardedServer::with_policy(2, AdmissionPolicy::LeastLoaded);
        let id = server.join(&m);
        // Backlog all four observations before any tick fires.
        let tickets: Vec<Ticket> =
            obs.iter().map(|o| server.submit(id, o.clone()).unwrap()).collect();
        assert_eq!(server.pending(), 4);
        for (t, ticket) in tickets.iter().enumerate() {
            assert_eq!(server.poll(*ticket), None, "ticket {t} must not resolve before its tick");
            let report = server.tick(&m);
            assert_eq!(report.served, 1, "one decision per session per tick");
            assert_eq!(report.pending, obs.len() - t - 1);
            let action = server.poll(*ticket).expect("served ticket must resolve");
            assert_eq!(action, expected[t].0, "tick {t}: scheduled action diverged");
            for (x, y) in server.last_logits(id).iter().zip(&expected[t].1) {
                assert!((x - y).abs() < 1e-5, "tick {t}: scheduled {x} vs unbatched {y}");
            }
            assert_eq!(server.poll(*ticket), None, "a ticket resolves exactly once");
        }
        // An empty tick is a no-op, not a panic.
        let report = server.tick(&m);
        assert_eq!((report.served, report.pending), (0, 0));
    }

    #[test]
    fn leave_reclaims_unpolled_actions_and_queued_arrivals() {
        // A session that departs without polling must leave no residue:
        // its queued arrivals are dropped and its served-but-unpolled
        // actions are reclaimed (long-running fleets otherwise leak one
        // banked action per crashed client).
        let m = model(3, 13);
        let obs = AbrObservation::synthetic_stream(23, 3);
        let mut server = ShardedServer::with_policy(1, AdmissionPolicy::LeastLoaded);
        let id = server.join(&m);
        let t0 = server.submit(id, obs[0].clone()).unwrap();
        let t1 = server.submit(id, obs[1].clone()).unwrap();
        let _ = server.tick(&m); // serves obs[0]; obs[1] stays queued
        assert_eq!((server.ready(), server.pending()), (1, 1));
        let report = server.leave(id);
        assert_eq!((server.ready(), server.pending()), (0, 0), "no residue after leave");
        assert_eq!(server.poll(t0), None, "a departed session's banked action is reclaimed");
        assert_eq!(server.poll(t1), None, "a dropped arrival's ticket never resolves");
        // ...but nothing was silently dropped: the report hands both back.
        assert!(!report.is_clean());
        let unpolled: Vec<Ticket> = report.unpolled.iter().map(|&(t, _)| t).collect();
        assert_eq!(unpolled, vec![t0], "the banked action comes back to the caller");
        let dropped: Vec<Ticket> = report.dropped_arrivals.iter().map(|&(t, _)| t).collect();
        assert_eq!(dropped, vec![t1], "the queued arrival comes back to the caller");
    }

    #[test]
    fn submit_pushes_back_at_the_queue_cap() {
        let m = model(3, 12);
        let mut server = ShardedServer::with_policy(1, AdmissionPolicy::LeastLoaded);
        let id = server.join(&m);
        server.set_queue_capacity(2);
        let obs = AbrObservation::synthetic_stream(22, 3);
        assert!(server.submit(id, obs[0].clone()).is_ok());
        assert!(server.submit(id, obs[1].clone()).is_ok());
        let refused = server.submit(id, obs[2].clone());
        let err = refused.expect_err("third submit must hit the backpressure cap");
        assert!(err.is_queue_full(), "a healthy shard at the cap refuses with QueueFull");
        let _ = server.tick(&m);
        assert!(server.submit(id, err.into_obs()).is_ok(), "a tick frees queue space");
    }

    #[test]
    fn killed_shard_recovers_sessions_and_resolves_every_ticket() {
        // Unit-scale recovery check (the full adversarial soak lives in
        // nt-bench/tests/fault_soak.rs): kill one of two shards mid-tick
        // with an arrival in flight; the health checker must declare it,
        // salvage its session onto the survivor, and resolve the orphaned
        // ticket as Requeued-then-Served — with logits equal to the
        // unbatched no-fault replay.
        let mut m = model(3, 17);
        let obs = AbrObservation::synthetic_stream(29, 6);
        let mut expected: Vec<(usize, Vec<f32>)> = Vec::new();
        m.reset();
        for o in &obs {
            expected.push((m.select(o), m.last_logits().to_vec()));
        }

        let mut server = ShardedServer::with_policy(2, AdmissionPolicy::LeastLoaded);
        server.set_health_config(crate::HealthConfig::fast());
        let id = server.join(&m);
        let home = server.shard_of(id);
        server.inject(FaultPlan::new().kill(3, home));
        let mut served = Vec::new();
        let mut tickets: std::collections::VecDeque<(usize, Ticket)> = Default::default();
        let mut next = 0usize;
        let mut retry = crate::SubmitRetry::new();
        for t in 1..=14u64 {
            if next < obs.len() && retry.ready(t) {
                match server.submit(id, obs[next].clone()) {
                    Ok(ticket) => {
                        tickets.push_back((next, ticket));
                        retry.succeeded();
                        next += 1;
                    }
                    Err(e) => {
                        assert!(e.is_retry_after_tick(), "suspect shard refuses with retry");
                        retry.refused(t, &e);
                    }
                }
            }
            let report = server.tick(&m);
            if report.tick == 3 {
                assert_eq!(report.faults.killed, vec![home], "kill fires at its tick");
            }
            if !report.faults.declared_dead.is_empty() {
                assert_eq!(report.faults.declared_dead, vec![home]);
                assert_eq!(report.faults.sessions_recovered, 1);
                assert_eq!(server.shard_of(id), 1 - home, "salvaged onto the survivor");
            }
            while let Some(&(i, ticket)) = tickets.front() {
                match server.poll_status(ticket) {
                    TicketStatus::Served(a) => {
                        assert_eq!(a, expected[i].0, "decision {i} diverged after recovery");
                        served.push(i);
                        tickets.pop_front();
                    }
                    TicketStatus::Failed => panic!("no fault here fails tickets"),
                    TicketStatus::Requeued | TicketStatus::Pending => break,
                }
            }
        }
        assert!(tickets.is_empty(), "every ticket must resolve — none may hang");
        assert_eq!(served, (0..obs.len()).collect::<Vec<_>>(), "all decisions served in order");
        for (x, y) in server.last_logits(id).iter().zip(&expected[obs.len() - 1].1) {
            assert!((x - y).abs() < 1e-5, "post-recovery logits diverged: {x} vs {y}");
        }
        let f = server.metrics().snapshot().faults;
        assert_eq!(f.shard_kills, 1);
        assert_eq!(f.sessions_recovered, 1);
        assert!(server.health().state(home).is_dead());
    }

    #[test]
    fn stalled_shard_revives_without_recovery() {
        // A transient stall shorter than the miss threshold must cost
        // only latency: no declaration, no salvage, answers identical.
        let mut m = model(3, 19);
        let obs = AbrObservation::synthetic_stream(31, 4);
        let mut expected: Vec<usize> = Vec::new();
        m.reset();
        for o in &obs {
            expected.push(m.select(o));
        }
        let mut server = ShardedServer::with_policy(2, AdmissionPolicy::LeastLoaded);
        let id = server.join(&m);
        let home = server.shard_of(id);
        server.inject(FaultPlan::new().stall(2, home, 2));
        let tickets: Vec<Ticket> =
            obs.iter().map(|o| server.submit(id, o.clone()).unwrap()).collect();
        for _ in 0..12 {
            let report = server.tick(&m);
            assert!(report.faults.declared_dead.is_empty(), "a short stall must not declare");
            assert_eq!(report.faults.sessions_recovered, 0);
        }
        assert_eq!(server.shard_of(id), home, "no migration for a transient fault");
        for (i, t) in tickets.iter().enumerate() {
            match server.poll_status(*t) {
                TicketStatus::Served(a) => assert_eq!(a, expected[i], "decision {i} diverged"),
                s => panic!("ticket {i} unresolved after revival: {s:?}"),
            }
        }
        assert_eq!(server.metrics().snapshot().faults.shard_kills, 0);
    }
}

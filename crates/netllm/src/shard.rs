//! Sharded serving: one logical fleet over K independent engines.
//!
//! A [`ShardedServer`] fronts K [`ServingEngine`] shards with a
//! session-hash router: every admission draws a global session id, whose
//! FNV-1a hash picks the home shard, so the fleet spreads uniformly
//! without coordination and a session's shard is computable from its id
//! alone. Each shard is a complete engine — own slots, own KV caches, own
//! batched steps — so the shard boundary is clean: nothing is shared
//! between shards but the (read-only) model weights.
//!
//! ```text
//!              ┌─ hash(id) ─► shard 0: ServingEngine ── slots ──┐
//!  requests ──►│             shard 1: ServingEngine ── slots ──┼─► actions
//!   (id, obs)  └─ router  ─► shard K: ServingEngine ── slots ──┘
//!                             (NT_THREADS: one worker per shard)
//! ```
//!
//! Today shards are per-core: [`ShardedServer::step`] fans each tick's
//! requests out to their home shards on scoped worker threads
//! (`NT_THREADS`-capped, pool-registered so per-matmul and band
//! parallelism never stack a second thread layer underneath). The same
//! router/route-table design extends to per-process and per-host shards
//! later — the route table already treats a shard as just an index.
//!
//! Sessions can be *steered*: [`ShardedServer::steer`] parks a session
//! (KV cache + episode state travel wholesale) and re-admits it on
//! another shard, updating the route table — per-session math is
//! untouched, so served answers stay bit-identical across migrations.
//! [`ShardedServer::leave`] applies a rebalance-on-leave policy: when
//! departures skew the fleet (max−min active sessions ≥ 2), the
//! lowest-id session of the fullest shard is steered to the emptiest, so
//! long-lived fleets stay balanced without a background rebalancer.

use crate::serving::{ServedTask, ServingEngine, SessionId};
use std::collections::BTreeMap;

/// Fleet-wide session handle issued by [`ShardedServer::join`].
pub type GlobalSessionId = u64;

/// FNV-1a over the id bytes: cheap, deterministic, and uncorrelated with
/// sequential id assignment (so consecutive joins spread across shards).
fn fnv1a(id: u64) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for b in id.to_le_bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x100_0000_01b3);
    }
    h
}

/// K independent [`ServingEngine`] shards behind a session-hash router.
pub struct ShardedServer<T: ServedTask> {
    shards: Vec<ServingEngine<T>>,
    /// Global id -> (shard, local id). A `BTreeMap` keeps every fleet
    /// walk (rebalance victim selection, accounting) deterministic.
    routes: BTreeMap<GlobalSessionId, (usize, SessionId)>,
    next_id: GlobalSessionId,
}

impl<T: ServedTask> ShardedServer<T> {
    /// A fleet of `num_shards` empty engines.
    pub fn new(num_shards: usize) -> Self {
        assert!(num_shards >= 1, "a fleet needs at least one shard");
        ShardedServer {
            shards: (0..num_shards).map(|_| ServingEngine::new()).collect(),
            routes: BTreeMap::new(),
            next_id: 0,
        }
    }

    /// Shard count.
    pub fn num_shards(&self) -> usize {
        self.shards.len()
    }

    /// The home shard the router assigns to `id`.
    pub fn home_shard(&self, id: GlobalSessionId) -> usize {
        (fnv1a(id) % self.shards.len() as u64) as usize
    }

    /// Admit a session on backbone group 0 (homogeneous tasks).
    pub fn join(&mut self, task: &T) -> GlobalSessionId {
        self.join_group(task, 0)
    }

    /// Admit a session on backbone `group`; the router hashes the new
    /// global id to pick its shard.
    pub fn join_group(&mut self, task: &T, group: usize) -> GlobalSessionId {
        let id = self.next_id;
        self.next_id += 1;
        let shard = self.home_shard(id);
        let local = self.shards[shard].join_group(task, group);
        self.routes.insert(id, (shard, local));
        id
    }

    /// Remove a session, then rebalance: while departures leave the
    /// fullest shard ≥ 2 sessions above the emptiest, steer the fullest
    /// shard's lowest-id session over.
    pub fn leave(&mut self, id: GlobalSessionId) {
        let (shard, local) = self.routes.remove(&id).expect("unknown session id");
        self.shards[shard].leave(local);
        while self.rebalance_once() {}
    }

    /// One rebalance move, if the fleet is skewed. Returns whether a
    /// session moved.
    fn rebalance_once(&mut self) -> bool {
        let (mut min_s, mut min_a) = (0usize, usize::MAX);
        let (mut max_s, mut max_a) = (0usize, 0usize);
        for (s, e) in self.shards.iter().enumerate() {
            let a = e.active();
            if a < min_a {
                (min_s, min_a) = (s, a);
            }
            if a > max_a {
                (max_s, max_a) = (s, a);
            }
        }
        if max_a < min_a + 2 {
            return false;
        }
        let victim = self
            .routes
            .iter()
            .find(|(_, &(s, _))| s == max_s)
            .map(|(&id, _)| id)
            .expect("fullest shard has routed sessions");
        self.steer(victim, min_s);
        true
    }

    /// Migrate a session to `dest` shard: its KV cache and episode state
    /// move wholesale, so subsequent answers are bit-identical to never
    /// having moved. No-op when already home.
    pub fn steer(&mut self, id: GlobalSessionId, dest: usize) {
        assert!(dest < self.shards.len(), "shard {dest} out of range");
        let &(src, local) = self.routes.get(&id).expect("unknown session id");
        if src == dest {
            return;
        }
        let parked = self.shards[src].park(local);
        let new_local = self.shards[dest].admit(parked);
        self.routes.insert(id, (dest, new_local));
    }

    /// Live sessions across the fleet.
    pub fn active(&self) -> usize {
        self.shards.iter().map(ServingEngine::active).sum()
    }

    /// Live sessions per shard (the rebalance policy's balance view).
    pub fn active_per_shard(&self) -> Vec<usize> {
        self.shards.iter().map(ServingEngine::active).collect()
    }

    /// KV bytes held across the fleet.
    pub fn cache_bytes(&self) -> usize {
        self.shards.iter().map(ServingEngine::cache_bytes).sum()
    }

    /// KV bytes per shard — the accounting a cache-aware admission policy
    /// (ROADMAP) will steer on.
    pub fn cache_bytes_per_shard(&self) -> Vec<usize> {
        self.shards.iter().map(ServingEngine::cache_bytes).collect()
    }

    /// Head outputs of `id`'s most recent step.
    pub fn last_logits(&self, id: GlobalSessionId) -> &[f32] {
        let &(shard, local) = self.routes.get(&id).expect("unknown session id");
        self.shards[shard].last_logits(local)
    }

    /// Serve one tick across the fleet: requests are routed to their home
    /// shards, each shard runs one batched [`ServingEngine::step`], and
    /// the answers come back in request order. With `NT_THREADS > 1` the
    /// shards step on scoped worker threads — shard state is fully
    /// disjoint and per-slot math is independent of the fan-out, so
    /// sharded and single-shard serving produce identical logits.
    pub fn step(&mut self, task: &T, requests: &[(GlobalSessionId, &T::Obs)]) -> Vec<T::Action>
    where
        T: Sync,
        T::Obs: Sync,
        T::Slot: Send,
        T::Action: Send,
    {
        if requests.is_empty() {
            return Vec::new();
        }
        // Partition into per-shard batches, remembering each request's
        // (shard, position) so answers reassemble in request order.
        let k = self.shards.len();
        let mut per: Vec<Vec<(SessionId, &T::Obs)>> = (0..k).map(|_| Vec::new()).collect();
        let mut placement = Vec::with_capacity(requests.len());
        for &(id, obs) in requests {
            let &(shard, local) = self.routes.get(&id).expect("unknown session id");
            placement.push(shard);
            per[shard].push((local, obs));
        }

        // Only shards with requests do work this tick; NT_THREADS caps the
        // spawned workers, with contiguous bands of shards per worker (a
        // fleet of 16 shards on 2 workers spawns 2 threads, not 16).
        #[allow(clippy::type_complexity)]
        let mut busy: Vec<(usize, &mut ServingEngine<T>, &[(SessionId, &T::Obs)])> = self
            .shards
            .iter_mut()
            .zip(&per)
            .enumerate()
            .filter(|(_, (_, b))| !b.is_empty())
            .map(|(s, (e, b))| (s, e, b.as_slice()))
            .collect();
        let threads = if nt_tensor::pool::in_worker() {
            1
        } else {
            nt_tensor::pool::num_threads().min(busy.len())
        };
        let mut results: Vec<Option<Vec<T::Action>>> = (0..k).map(|_| None).collect();
        if threads <= 1 {
            for (s, e, b) in busy {
                results[s] = Some(e.step(task, b));
            }
        } else {
            let band_len = busy.len().div_ceil(threads);
            std::thread::scope(|sc| {
                let handles: Vec<_> = busy
                    .chunks_mut(band_len)
                    .map(|band| {
                        sc.spawn(move || {
                            let _guard = nt_tensor::pool::enter_worker();
                            band.iter_mut()
                                .map(|(s, e, b)| (*s, e.step(task, b)))
                                .collect::<Vec<_>>()
                        })
                    })
                    .collect();
                for h in handles {
                    for (s, r) in h.join().expect("shard step panicked") {
                        results[s] = Some(r);
                    }
                }
            });
        }

        // Reassemble: within a shard, answers are in that shard's request
        // order, which preserves the caller's relative order.
        let mut cursors: Vec<std::vec::IntoIter<T::Action>> =
            results.into_iter().map(|r| r.unwrap_or_default().into_iter()).collect();
        placement
            .into_iter()
            .map(|shard| cursors[shard].next().expect("shard returned too few actions"))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::adapt::{AdaptMode, LoraSpec};
    use crate::NetLlmAbr;
    use nt_abr::{AbrObservation, AbrPolicy};
    use nt_llm::{size_spec, Zoo};

    fn model(window: usize, seed: u64) -> NetLlmAbr {
        let loaded = Zoo::new(std::env::temp_dir().join("netllm-shard-test"))
            .build_random(&size_spec("0.35b-sim"));
        let mut m = NetLlmAbr::new(loaded, AdaptMode::NoDomain, LoraSpec::default(), window, seed);
        m.target_return = 2.0;
        m
    }

    #[test]
    fn router_spreads_sessions_and_accounts_per_shard() {
        let m = model(4, 1);
        let mut server = ShardedServer::new(3);
        let ids: Vec<_> = (0..9).map(|_| server.join(&m)).collect();
        assert_eq!(server.active(), 9);
        // The hash router must touch every shard with 9 sequential ids.
        let per = server.active_per_shard();
        assert_eq!(per.iter().sum::<usize>(), 9);
        assert!(per.iter().all(|&a| a > 0), "router left a shard empty: {per:?}");
        // Sessions land where the hash says they do.
        for &id in &ids {
            assert_eq!(server.routes[&id].0, server.home_shard(id));
        }
        // Cache accounting is per shard and starts empty.
        assert_eq!(server.cache_bytes(), 0);
        let obs = AbrObservation::synthetic_stream(3, 1);
        let reqs: Vec<_> = ids.iter().map(|&id| (id, &obs[0])).collect();
        let _ = server.step(&m, &reqs);
        let bytes = server.cache_bytes_per_shard();
        assert_eq!(bytes.iter().sum::<usize>(), server.cache_bytes());
        assert!(bytes.iter().all(|&b| b > 0), "every busy shard holds KV bytes: {bytes:?}");
    }

    #[test]
    fn ticks_with_idle_shards_only_step_busy_engines() {
        // A fleet larger than the request set must serve correctly (and
        // answer in request order) when most shards have nothing to do.
        let mut m = model(3, 7);
        let mut server = ShardedServer::new(8);
        let a = server.join(&m);
        let b = server.join(&m);
        let obs = AbrObservation::synthetic_stream(5, 4);

        let mut expected: Vec<Vec<usize>> = Vec::new();
        for _ in 0..2 {
            m.reset();
            expected.push(obs.iter().map(|o| m.select(o)).collect());
        }
        for (t, o) in obs.iter().enumerate() {
            let got = server.step(&m, &[(a, o), (b, o)]);
            assert_eq!(got, vec![expected[0][t], expected[1][t]], "tick {t} diverged");
        }
    }

    #[test]
    fn steer_and_rebalance_preserve_session_answers() {
        // A session's decisions must be identical whether it stays home,
        // is steered mid-stream, or is dragged along by rebalance-on-leave.
        let mut m = model(3, 2);
        let streams: Vec<Vec<AbrObservation>> =
            (0..5).map(|s| AbrObservation::synthetic_stream(40 + s as u64, 8)).collect();

        // Reference: each stream alone through the unbatched path.
        let mut expected: Vec<Vec<(usize, Vec<f32>)>> = Vec::new();
        for obs in &streams {
            m.reset();
            expected.push(obs.iter().map(|o| (m.select(o), m.last_logits().to_vec())).collect());
        }

        let mut server = ShardedServer::new(2);
        let ids: Vec<_> = (0..streams.len()).map(|_| server.join(&m)).collect();
        for chunk in 0..streams[0].len() {
            // Mid-stream churn: steer stream 0 back and forth, and drop
            // stream 4 so rebalance-on-leave has something to fix.
            if chunk == 2 {
                server.steer(ids[0], 1 - server.home_shard(ids[0]));
            }
            if chunk == 4 {
                server.leave(ids[4]);
                let per = server.active_per_shard();
                assert!(
                    per.iter().max().unwrap() - per.iter().min().unwrap() <= 1,
                    "rebalance-on-leave left the fleet skewed: {per:?}"
                );
            }
            let live = if chunk >= 4 { &ids[..4] } else { &ids[..] };
            let reqs: Vec<_> =
                live.iter().enumerate().map(|(s, &id)| (id, &streams[s][chunk])).collect();
            let actions = server.step(&m, &reqs);
            for (s, (&id, act)) in live.iter().zip(actions).enumerate() {
                let (eact, elogits) = &expected[s][chunk];
                assert_eq!(act, *eact, "stream {s} chunk {chunk}: sharded action diverged");
                for (x, y) in server.last_logits(id).iter().zip(elogits) {
                    assert!(
                        (x - y).abs() < 1e-5,
                        "stream {s} chunk {chunk}: sharded {x} vs unbatched {y}"
                    );
                }
            }
        }
    }
}

//! Adaptation modes and the LoRA budget (paper §4.3 + Fig 13 ablations).

use nt_llm::TinyLm;
use nt_nn::ParamStore;
use nt_tensor::Rng;

/// Low-rank adaptation budget. The paper uses rank 32 (VP) / 128 (ABR/CJS)
/// on a 7B model; ranks here are scaled with the backbone.
#[derive(Clone, Copy, Debug)]
pub struct LoraSpec {
    pub rank: usize,
    pub alpha: f32,
}

impl Default for LoraSpec {
    fn default() -> Self {
        LoraSpec { rank: 4, alpha: 8.0 }
    }
}

/// Which knowledge the adapted model keeps (Fig 13):
///
/// - `FullKnowledge`: frozen pre-trained backbone + trainable LoRA —
///   the NetLLM configuration;
/// - `NoPretrain`: randomly initialised backbone trained end-to-end
///   (destroys pre-trained knowledge, keeps domain adaptation);
/// - `NoDomain`: frozen pre-trained backbone, *no* LoRA (encoder and head
///   still train — they are task plumbing, not backbone knowledge).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum AdaptMode {
    FullKnowledge,
    NoPretrain,
    NoDomain,
}

impl AdaptMode {
    /// Configure the backbone's trainability for this mode.
    pub fn apply(self, lm: &mut TinyLm, store: &mut ParamStore, lora: LoraSpec, rng: &mut Rng) {
        match self {
            AdaptMode::FullKnowledge => {
                lm.attach_lora(store, lora.rank, lora.alpha, rng);
            }
            AdaptMode::NoPretrain => {
                // Backbone stays fully trainable; caller supplies a
                // randomly-initialised backbone (Zoo::build_random).
            }
            AdaptMode::NoDomain => {
                store.freeze_prefix("llm.");
                lm.detach_lora();
            }
        }
    }

    pub fn name(self) -> &'static str {
        match self {
            AdaptMode::FullKnowledge => "full-knowledge",
            AdaptMode::NoPretrain => "no-pretrained-knowledge",
            AdaptMode::NoDomain => "no-domain-knowledge",
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nt_llm::{size_spec, Zoo};

    #[test]
    fn modes_configure_trainability_correctly() {
        let zoo = Zoo::new(std::env::temp_dir().join("adapt-mode-test"));
        for mode in [AdaptMode::FullKnowledge, AdaptMode::NoPretrain, AdaptMode::NoDomain] {
            let mut loaded = zoo.build_random(&size_spec("0.35b-sim"));
            let mut rng = Rng::seeded(1);
            mode.apply(&mut loaded.lm, &mut loaded.store, LoraSpec::default(), &mut rng);
            let backbone_trainable: Vec<String> = loaded
                .store
                .ids()
                .filter(|&id| {
                    loaded.store.name(id).starts_with("llm.") && loaded.store.is_trainable(id)
                })
                .map(|id| loaded.store.name(id).to_string())
                .collect();
            match mode {
                AdaptMode::FullKnowledge => {
                    assert!(!backbone_trainable.is_empty());
                    assert!(
                        backbone_trainable.iter().all(|n| n.contains("lora")),
                        "{backbone_trainable:?}"
                    );
                }
                AdaptMode::NoPretrain => {
                    assert!(backbone_trainable.iter().any(|n| !n.contains("lora")));
                }
                AdaptMode::NoDomain => {
                    assert!(backbone_trainable.is_empty(), "{backbone_trainable:?}");
                }
            }
        }
    }
}

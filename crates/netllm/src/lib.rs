//! # netllm
//!
//! Reproduction of **NetLLM: Adapting Large Language Models for Networking**
//! (Wu et al., ACM SIGCOMM 2024) — the framework itself. The three design
//! modules map to:
//!
//! - [`multimodal`] — the multimodal encoder (§4.1): modality-specific
//!   feature encoders (ViT-lite / 1D-CNN / FC / GNN) + trainable
//!   projections into token space + layer-norm;
//! - [`heads`] — networking heads (§4.2): one linear head per task,
//!   answers always valid, one backbone inference per answer;
//! - [`adapt`] + the `adapt()` methods in [`adapters`] — DD-LRNA (§4.3):
//!   data-driven SL/RL pipelines with all backbone change constrained to
//!   LoRA matrices.
//!
//! [`prompt`] implements the *alternatives* the paper measures against
//! (prompt learning + token decoding, Fig 2). [`api`] exposes the Fig 9
//! `RL_Collect`/`Adapt`/`Test` integration surface. [`settings`] encodes
//! Tables 2–4 and the fidelity ladder. [`serving`], [`sched`], [`shard`]
//! and [`fleet`] are the serving stack: an adapter-generic batched engine
//! ([`ServedTask`]), an async admission queue with pluggable placement
//! policies ([`AdmissionQueue`], [`AdmissionPolicy`]), a sharded fleet
//! with lockstep and continuous (submit/tick/poll) front ends
//! ([`ShardedServer`]), and the heterogeneous ABR+CJS+VP mix
//! ([`NetLlmFleet`]).
//!
//! The backbone is the in-repo pre-trained [`nt_llm::TinyLm`] — see
//! `DESIGN.md` for the substitution argument (repro band: candle/burn are
//! not viable for LoRA-style LLM adaptation pipelines, so the stack is
//! built from scratch at simulator scale).
//!
//! [`wire`] and [`ingress`] put the fleet behind a socket: a
//! length-prefixed, version-negotiated wire protocol and an event-loop
//! front end where connections feed per-shard admission queues and a
//! dedicated scheduler thread owns `tick`. See `docs/PROTOCOL.md` for
//! the frame format and `docs/ARCHITECTURE.md` for the request
//! lifecycle.

#![forbid(unsafe_code)]

pub mod adapt;
pub mod adapters;
pub mod api;
pub mod backbone;
pub mod fault;
pub mod fleet;
pub mod heads;
pub mod health;
pub mod ingress;
pub mod metrics;
pub mod multimodal;
pub mod prompt;
pub mod sched;
pub mod serving;
pub mod settings;
pub mod shard;
pub mod telemetry;
pub mod wire;

pub use adapt::{AdaptMode, LoraSpec};
pub use adapters::abr::{AbrEpisode, AbrRecorder, AbrStep, AbrTrajectory, NetLlmAbr};
pub use adapters::cjs::{collect_episode, CjsEpisode, CjsObs, CjsStep, CjsTrajectory, NetLlmCjs};
pub use adapters::vp::{NetLlmVp, VpQuery, VpSlot};
pub use api::{
    adapt_abr, adapt_cjs, adapt_vp, build_abr_env, build_cjs_workloads, build_vp_data,
    default_lora, rl_collect_abr, rl_collect_cjs, test_abr, test_cjs, Task, VpData,
};
pub use backbone::{append_batched, InferenceSession};
pub use fault::{Fault, FaultEvent, FaultPlan, FaultReport};
pub use fleet::{FleetAction, FleetObs, FleetSlot, NetLlmFleet, FLEET_ABR, FLEET_CJS, FLEET_VP};
pub use heads::{AbrHead, CjsHeads, VpHead};
pub use health::{HealthChecker, HealthConfig, HealthState, Heartbeat};
pub use ingress::{
    serve, FleetModels, IngressConfig, IngressHandle, IngressSnapshot, IngressStats, WireClient,
    WireReceiver, WireSender,
};
pub use metrics::{
    pool_dispatch_snapshot, FaultSnapshot, LatencySnapshot, MetricsRegistry, MetricsSnapshot,
    PoolDispatchSnapshot, ShardSnapshot, TickPhase, TICK_PHASES,
};
pub use prompt::{
    evaluate_token_path, parse_answer, render_answer, render_prompt, PromptVp, TokenPathStats,
};
pub use sched::{
    steer_improves, AdmissionPolicy, AdmissionQueue, Arrival, EvictionPolicy, MemoryReport,
    PagePressure, PlacementView, SubmitError, SubmitRetry, TickReport, Ticket, TicketStatus,
};
pub use serving::{
    ParkedSlot, RollbackPlan, ServedTask, ServingEngine, SessionId, StepOutcome, StepPlan,
};
pub use settings::{
    AbrSetting, CjsSetting, Fidelity, VpSetting, ABR_DEFAULT, ABR_UNSEEN1, ABR_UNSEEN2,
    ABR_UNSEEN3, CJS_DEFAULT, CJS_UNSEEN1, CJS_UNSEEN2, CJS_UNSEEN3, VP_DEFAULT, VP_UNSEEN1,
    VP_UNSEEN2, VP_UNSEEN3,
};
pub use shard::{GlobalSessionId, LeaveReport, ShardedServer};
pub use telemetry::{
    EventKind, EventsView, RefusalReason, SteerReason, TelemetryEvent, TelemetryRing,
};
pub use wire::{
    negotiate, read_frame, write_frame, BusyReason, Frame, WireError, MAX_FRAME_LEN,
    MIN_WIRE_VERSION, WIRE_VERSION,
};

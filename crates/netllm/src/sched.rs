//! Async admission queue + tick scheduling policies for continuous
//! batching.
//!
//! PR 3's fleet was lockstep: callers orchestrated every tick, handing
//! [`crate::ShardedServer::step`] a fully-formed batch, so an observation
//! arriving mid-tick waited a whole batch cycle and every session had to
//! be joined before stepping. This module is the queuing discipline that
//! removes the lockstep: arrivals enqueue *asynchronously* into per-shard
//! [`AdmissionQueue`]s (stamped with a logical arrival clock and tagged
//! with their adapter group), and each shard drains its queue at tick
//! boundaries — at most one arrival per session per tick, FIFO within a
//! session — so sessions join, answer and leave mid-stream while the
//! engine still gets dense batched steps.
//!
//! ```text
//!  submit(obs) ──► Ticket ─┐   per-shard queues     tick boundary
//!  submit(obs) ──► Ticket ─┤  ┌────────────────┐  drain ≤1/session
//!      ...                 ├─►│ q0 │ q1 │ … │qK ├──────► ServingEngine::step
//!  poll(Ticket) ◄─ actions ┘  └────────────────┘        per busy shard
//! ```
//!
//! Placement is pluggable via [`AdmissionPolicy`]: `HashRoute` keeps the
//! PR 3 FNV-1a session-hash behaviour, `LeastLoaded` admits to the shard
//! with the fewest live slots, and `CacheAware` admits to the shard
//! holding the fewest KV bytes *and* steers load off any shard whose KV
//! bytes cross a configurable budget (the tick scheduler migrates the
//! coldest — least-recently-served — session to the lightest shard).
//! Every policy is a pure function of the fleet view, so placement is
//! deterministic and unit-testable without a model.
//!
//! The scheduler lives in [`crate::ShardedServer`] (`submit`/`tick`/
//! `poll`); this module owns the data structures and the placement math.

use std::collections::VecDeque;

/// Fleet-wide session handle (mirrors `shard::GlobalSessionId`; duplicated
/// here as a plain alias so the queue stays free of engine types).
pub type SessionKey = u64;

/// Handle for one submitted observation: redeem it with
/// [`crate::ShardedServer::poll`] once the scheduler has served the tick
/// that answered it. Tickets are issued in submission order and are never
/// reused.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct Ticket(pub u64);

/// One queued observation: who asked, when it arrived (logical clock),
/// which backbone group (adapter tag) will serve it, and the observation
/// itself.
#[derive(Debug)]
pub struct Arrival<O> {
    /// The ticket the submitter holds.
    pub ticket: Ticket,
    /// The session this observation advances.
    pub session: SessionKey,
    /// Backbone group of the session — the adapter tag
    /// ([`crate::ServedTask::task_label`] renders it for reports).
    pub group: usize,
    /// The observation to serve.
    pub obs: O,
}

impl<O> Arrival<O> {
    /// Logical arrival stamp: tickets are issued in submission order, so
    /// the ticket sequence *is* the fleet-wide monotonic arrival clock.
    pub fn stamp(&self) -> u64 {
        self.ticket.0
    }
}

/// Bounded FIFO of pending observations for one shard.
///
/// Invariants (property-tested in `tests/admission_queue.rs`):
/// - no ticket is lost or double-served: every pushed arrival leaves the
///   queue exactly once, via [`AdmissionQueue::drain_tick`] or
///   [`AdmissionQueue::remove_session`];
/// - FIFO within a session: a session's arrivals drain in push order
///   (drains take at most one arrival per session, so a backlogged
///   session advances one decision per tick, in order);
/// - backpressure on admission: [`AdmissionQueue::push`] refuses
///   (returning the arrival to the caller) instead of growing past the
///   cap, so submissions never push `len()` beyond `capacity()`. The one
///   sanctioned exception is [`AdmissionQueue::requeue`] — a steering
///   migration must never drop an already-ticketed arrival, so a move
///   onto a full queue may transiently exceed the cap (drained back down
///   at the following ticks; new `push`es stay refused meanwhile).
pub struct AdmissionQueue<O> {
    entries: VecDeque<Arrival<O>>,
    cap: usize,
}

impl<O> AdmissionQueue<O> {
    /// Empty queue refusing pushes beyond `cap` pending arrivals.
    pub fn with_capacity(cap: usize) -> Self {
        assert!(cap >= 1, "a queue needs capacity for at least one arrival");
        AdmissionQueue { entries: VecDeque::new(), cap }
    }

    /// Pending arrivals.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Backpressure cap.
    pub fn capacity(&self) -> usize {
        self.cap
    }

    /// Enqueue an arrival; at the cap the arrival comes back as `Err` so
    /// the caller can retry after a tick (backpressure, not silent drop).
    pub fn push(&mut self, arrival: Arrival<O>) -> Result<(), Arrival<O>> {
        if self.entries.len() >= self.cap {
            return Err(arrival);
        }
        self.entries.push_back(arrival);
        Ok(())
    }

    /// Re-enqueue an arrival that already holds a ticket (steering moves
    /// queued arrivals between shards; a move must never drop a ticket,
    /// so it bypasses the cap).
    pub fn requeue(&mut self, arrival: Arrival<O>) {
        self.entries.push_back(arrival);
    }

    /// Put already-drained arrivals back at the *head* of the queue, in
    /// the given order — the memory scheduler's deferral path: when the
    /// page pool cannot cover a tick's demand even after eviction, the
    /// youngest drained arrivals go back here so the next drain serves
    /// them first and FIFO-per-session is preserved. Bypasses the cap
    /// (the arrivals hold tickets already).
    pub fn requeue_front(&mut self, arrivals: Vec<Arrival<O>>) {
        for a in arrivals.into_iter().rev() {
            self.entries.push_front(a);
        }
    }

    /// Drain one tick's batch: arrivals in FIFO order, skipping (keeping
    /// queued) any session already taken this drain — a session advances
    /// at most one decision per tick, so within-session order is
    /// preserved and a batched engine step never sees a duplicate slot.
    pub fn drain_tick(&mut self) -> Vec<Arrival<O>> {
        let mut taken: std::collections::BTreeSet<SessionKey> = std::collections::BTreeSet::new();
        let mut batch = Vec::new();
        let mut kept = VecDeque::with_capacity(self.entries.len());
        for a in self.entries.drain(..) {
            if taken.insert(a.session) {
                batch.push(a);
            } else {
                kept.push_back(a);
            }
        }
        self.entries = kept;
        batch
    }

    /// Remove (and return) every pending arrival of `session`, in FIFO
    /// order — steering moves them to the destination shard's queue;
    /// leave drops them (their tickets never resolve).
    pub fn remove_session(&mut self, session: SessionKey) -> Vec<Arrival<O>> {
        let mut removed = Vec::new();
        let mut kept = VecDeque::with_capacity(self.entries.len());
        for a in self.entries.drain(..) {
            if a.session == session {
                removed.push(a);
            } else {
                kept.push_back(a);
            }
        }
        self.entries = kept;
        removed
    }

    /// Pending arrivals of one session (FIFO-depth view for tests and
    /// backpressure diagnostics).
    pub fn pending_of(&self, session: SessionKey) -> usize {
        self.entries.iter().filter(|a| a.session == session).count()
    }

    /// Drain the whole queue in FIFO order — the recovery path: when a
    /// shard is declared dead its backlog is redistributed to the
    /// surviving shards' queues (via [`AdmissionQueue::requeue`], so the
    /// move never drops a ticket).
    pub fn take_all(&mut self) -> Vec<Arrival<O>> {
        self.entries.drain(..).collect()
    }
}

/// Why [`crate::ShardedServer::submit`] refused an observation. Both
/// variants return the observation so nothing is silently lost — the
/// caller retries after the indicated condition clears (see
/// [`SubmitRetry`] for the deterministic backoff the harnesses use).
#[derive(PartialEq, Eq)]
pub enum SubmitError<O> {
    /// The session's shard queue is at its backpressure cap; a tick's
    /// drain frees space, so retry after the next tick.
    QueueFull {
        /// The refused observation, returned intact.
        obs: O,
    },
    /// The session's shard is Suspect (missed heartbeats) or mid-recovery;
    /// retry after a tick — the health checker will either revive the
    /// shard or re-admit the session on a survivor.
    RetryAfterTick {
        /// The refused observation, returned intact.
        obs: O,
    },
}

impl<O> SubmitError<O> {
    /// Recover the refused observation for a retry.
    pub fn into_obs(self) -> O {
        match self {
            SubmitError::QueueFull { obs } | SubmitError::RetryAfterTick { obs } => obs,
        }
    }

    pub fn is_queue_full(&self) -> bool {
        matches!(self, SubmitError::QueueFull { .. })
    }

    pub fn is_retry_after_tick(&self) -> bool {
        matches!(self, SubmitError::RetryAfterTick { .. })
    }
}

// Manual impl so `submit(..).unwrap()` works without `O: Debug` and the
// (arbitrarily large) observation never lands in a panic message.
impl<O> std::fmt::Debug for SubmitError<O> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SubmitError::QueueFull { .. } => f.write_str("SubmitError::QueueFull"),
            SubmitError::RetryAfterTick { .. } => f.write_str("SubmitError::RetryAfterTick"),
        }
    }
}

/// Deterministic retry/backoff for refused submissions. `QueueFull` waits
/// exactly one tick (the next drain frees space); `RetryAfterTick` backs
/// off exponentially (1, 2, 4, … up to `max_backoff` ticks) while a shard
/// stays Suspect, and any success resets the backoff. Pure tick
/// arithmetic — no wall clock, no randomness — so a soak trace that uses
/// it replays identically from its seed.
#[derive(Clone, Copy, Debug)]
pub struct SubmitRetry {
    next_try: u64,
    backoff: u64,
    max_backoff: u64,
}

impl Default for SubmitRetry {
    fn default() -> Self {
        SubmitRetry::new()
    }
}

impl SubmitRetry {
    /// Helper with an 8-tick backoff cap.
    pub fn new() -> Self {
        SubmitRetry { next_try: 0, backoff: 1, max_backoff: 8 }
    }

    /// Helper with a custom backoff cap (>= 1).
    pub fn with_max_backoff(max_backoff: u64) -> Self {
        assert!(max_backoff >= 1, "backoff cap must be >= 1");
        SubmitRetry { next_try: 0, backoff: 1, max_backoff }
    }

    /// Whether a submission should be attempted at `tick`.
    pub fn ready(&self, tick: u64) -> bool {
        tick >= self.next_try
    }

    /// Record a refusal at `tick`; schedules the next attempt.
    pub fn refused<O>(&mut self, tick: u64, err: &SubmitError<O>) {
        match err {
            SubmitError::QueueFull { .. } => {
                self.next_try = tick + 1;
            }
            SubmitError::RetryAfterTick { .. } => {
                self.next_try = tick + self.backoff;
                self.backoff = (self.backoff * 2).min(self.max_backoff);
            }
        }
    }

    /// Record a success; resets the backoff.
    pub fn succeeded(&mut self) {
        self.next_try = 0;
        self.backoff = 1;
    }
}

/// Resolution state of a [`Ticket`] under faults, from
/// [`crate::ShardedServer::poll_status`]. `Served` and `Failed` are
/// terminal; `Requeued` means the arrival was displaced by a fault and is
/// queued again (it will resolve `Served` on a later tick); `Pending`
/// covers queued-and-undisturbed tickets.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum TicketStatus<A> {
    /// Queued or in flight; poll again after a tick.
    Pending,
    /// Served — the action, exactly once (terminal).
    Served(A),
    /// Displaced by a fault and re-queued; still owed an answer.
    Requeued,
    /// Lost to a fault (poisoned step or dropped batch); the submitter
    /// re-submits the observation if it still wants an answer (terminal).
    Failed,
}

impl<A> TicketStatus<A> {
    /// Whether this status is final (`Served` or `Failed`).
    pub fn is_terminal(&self) -> bool {
        matches!(self, TicketStatus::Served(_) | TicketStatus::Failed)
    }
}

/// FNV-1a over the id bytes: cheap, deterministic, and uncorrelated with
/// sequential id assignment (so consecutive joins spread across shards).
pub(crate) fn fnv1a(id: u64) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for b in id.to_le_bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x100_0000_01b3);
    }
    h
}

/// One shard's page-economy snapshot, the unit of the placement view a
/// [`AdmissionPolicy::PageAware`] policy steers by. In-process fleets
/// share one [`nt_llm::PagePool`], so every shard reports the same
/// `free_pages` (the global free list); per-process shards report their
/// own pool's. All-zero for fleets without a pool.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct PagePressure {
    /// Pages the shard's pool can still lend without eviction.
    pub free_pages: usize,
    /// Pages the shard's resident sessions hold.
    pub held_pages: usize,
}

/// Pure per-shard fleet view one placement decision reads. Built by the
/// server at the join/recovery boundary; `place` never touches an engine,
/// so every policy is unit-testable from plain slices.
#[derive(Clone, Copy, Debug)]
pub struct PlacementView<'a> {
    /// Live slots per shard.
    pub active: &'a [usize],
    /// KV bytes held per shard.
    pub cache_bytes: &'a [usize],
    /// Page economy per shard (all-default without a pool).
    pub pressure: &'a [PagePressure],
    /// Resident sessions per shard on the joiner's backbone group — the
    /// batch-shape signal: same-backbone slots share stacked GEMMs, so
    /// co-locating them keeps the batched steps dense.
    pub same_backbone: &'a [usize],
    /// Pages the placed session needs immediately: 0 for a fresh join
    /// (its cache starts empty); a migrating or salvaged session's
    /// rebuild demand otherwise.
    pub need_pages: usize,
}

impl<'a> PlacementView<'a> {
    /// A view with no page economy and no backbone histogram — what the
    /// byte-denominated policies (`HashRoute`/`LeastLoaded`/`CacheAware`)
    /// read; `PageAware` placement over it degenerates to `LeastLoaded`.
    pub fn bytes_only(active: &'a [usize], cache_bytes: &'a [usize]) -> Self {
        PlacementView { active, cache_bytes, pressure: &[], same_backbone: &[], need_pages: 0 }
    }
}

/// The strictly-improving steer contract, extended to the page economy:
/// moving a victim carrying `victim_load` units (KV bytes for
/// `CacheAware`, pages for `PageAware`) from a shard at `src_load` to one
/// at `dest_load` is worthwhile only when the destination ends strictly
/// below where the source started (no ping-pong between equal-height
/// shards, no bouncing a session whose cache alone exceeds the budget)
/// *and* the destination pool's free list covers the victim's pages
/// (`None` for pool-less fleets) — a steer that lands on a shard with too
/// few free pages just converts into an eviction on arrival, re-anchoring
/// someone to move nobody's bytes. Pure; the steer passes and the
/// `sched.rs` unit tests share it.
pub fn steer_improves(
    src_load: usize,
    dest_load: usize,
    victim_load: usize,
    victim_pages: usize,
    dest_free_pages: Option<usize>,
) -> bool {
    victim_load > 0
        && dest_load + victim_load < src_load
        && dest_free_pages.is_none_or(|free| free >= victim_pages)
}

/// Where a joining session lands, and whether the tick scheduler steers
/// load between shards.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum AdmissionPolicy {
    /// PR 3 behaviour: the session id's FNV-1a hash picks the shard —
    /// stateless, uniform in expectation, but blind to load and KV bytes.
    HashRoute,
    /// Admit to the shard with the fewest live slots; ties break to the
    /// lowest shard index (deterministic).
    LeastLoaded,
    /// Admit to the shard holding the fewest KV bytes (ties to the lowest
    /// index), and steer: whenever a shard's KV bytes cross
    /// `budget_bytes` at a tick boundary, the scheduler migrates the
    /// coldest session off it to the lightest shard, one session per tick
    /// per victim, until every shard fits or no eligible victim remains.
    /// A per-shard budget is only maintainable while fleet-wide bytes
    /// stay under `shards * budget_bytes`; past that the pass is
    /// best-effort (it still levels the skew).
    CacheAware {
        /// Per-shard KV-byte budget the steering pass enforces.
        budget_bytes: usize,
    },
    /// Admit by page pressure instead of raw bytes: prefer shards whose
    /// free pages cover the session's immediate need
    /// ([`PlacementView::need_pages`]) without triggering eviction, then
    /// the shard holding the fewest pages; ties break to the shard with
    /// the *most* resident same-backbone sessions (co-located
    /// same-backbone slots share stacked GEMMs, so the batch-shape
    /// tie-break keeps the batched steps dense), then the fewest live
    /// slots, then the lowest index. Steers like `CacheAware`, but
    /// denominated in pages: while a shard holds more than `budget_pages`,
    /// its coldest session migrates to the lightest shard — every move
    /// gated by [`steer_improves`], so a destination without the free
    /// pages to absorb the victim is never picked.
    PageAware {
        /// Per-shard held-pages budget the steering pass enforces.
        budget_pages: usize,
    },
}

impl AdmissionPolicy {
    /// Pick the shard a new session joins. Pure in the
    /// [`PlacementView`]: `id` is the new global session id; the view
    /// carries one entry per shard (the page/backbone slices may be
    /// empty for pool-less fleets — `PageAware` then places by live
    /// slots alone).
    pub fn place(&self, id: u64, view: &PlacementView) -> usize {
        let k = view.active.len();
        assert!(k >= 1 && view.cache_bytes.len() == k, "malformed fleet view");
        match self {
            AdmissionPolicy::HashRoute => (fnv1a(id) % k as u64) as usize,
            AdmissionPolicy::LeastLoaded => {
                (0..k).min_by_key(|&s| (view.active[s], s)).expect("non-empty fleet")
            }
            // KV-byte ties (e.g. a fleet that has not served yet) fall
            // back to live-slot count, then index — so cold joins still
            // spread instead of piling onto shard 0.
            AdmissionPolicy::CacheAware { .. } => (0..k)
                .min_by_key(|&s| (view.cache_bytes[s], view.active[s], s))
                .expect("non-empty fleet"),
            AdmissionPolicy::PageAware { .. } => {
                assert!(
                    view.pressure.is_empty() == view.same_backbone.is_empty(),
                    "malformed fleet view: page pressure and backbone histogram travel together"
                );
                if view.pressure.is_empty() {
                    // No page economy to read: fall back to live slots.
                    return (0..k).min_by_key(|&s| (view.active[s], s)).expect("non-empty fleet");
                }
                assert!(
                    view.pressure.len() == k && view.same_backbone.len() == k,
                    "malformed fleet view"
                );
                let key = |s: usize| {
                    (
                        view.pressure[s].held_pages,
                        // Most same-backbone residents first (denser
                        // stacked GEMMs) — inverted for min_by_key.
                        usize::MAX - view.same_backbone[s],
                        view.active[s],
                        s,
                    )
                };
                // Feasible shards (free pages cover the need, no eviction
                // on arrival) are preferred outright; when none is — the
                // whole fleet is under pressure — pick by pressure alone
                // and let the memory guard arbitrate.
                (0..k)
                    .filter(|&s| view.pressure[s].free_pages >= view.need_pages)
                    .min_by_key(|&s| key(s))
                    .unwrap_or_else(|| (0..k).min_by_key(|&s| key(s)).expect("non-empty fleet"))
            }
        }
    }

    /// The per-shard KV-byte budget this policy enforces, if any.
    pub fn kv_budget(&self) -> Option<usize> {
        match self {
            AdmissionPolicy::CacheAware { budget_bytes } => Some(*budget_bytes),
            _ => None,
        }
    }

    /// The per-shard held-pages budget this policy enforces, if any.
    pub fn page_budget(&self) -> Option<usize> {
        match self {
            AdmissionPolicy::PageAware { budget_pages } => Some(*budget_pages),
            _ => None,
        }
    }
}

/// How a memory-backed fleet reclaims KV pages when a tick's page demand
/// exceeds the pool's free list. Orthogonal to [`AdmissionPolicy`]: the
/// admission policy decides *where* sessions live, the eviction policy
/// decides *whose cache dies* under pressure.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub enum EvictionPolicy {
    /// Never reclaim: under pressure the scheduler only defers drained
    /// arrivals back to the queues (and a lockstep `step` over demand
    /// panics). For operators who size the pool for the worst case and
    /// want deferral-only backpressure.
    None,
    /// Clear the coldest (least-recently-served) idle session's pages; it
    /// re-anchors from its episode log on its next step, exactly like a
    /// context-full re-anchor. Ties break to the session holding the most
    /// pages (biggest reclaim), then the lowest id (determinism) — the
    /// `last_served` + `heaviest` ordering.
    #[default]
    ColdestReanchor,
    /// Clear the idle session whose re-anchor rebuild is *cheapest*:
    /// each candidate is priced by [`crate::ServedTask::rebuild_rows`]
    /// (the extra token rows its next step replays because the cache is
    /// gone — 0 when that step re-anchors regardless) times its backbone
    /// width, so the victim is the one whose eviction costs the fleet
    /// the least recomputation. Ties break to the most pages held
    /// (biggest reclaim per re-anchor), then coldest, then lowest id.
    /// Age-blind by design: a hot session due a free re-anchor is a
    /// better victim than a cold one carrying a full window.
    CheapestRebuild,
}

/// What the memory guard did at one tick boundary (pool occupancy,
/// reclaims, deferrals) — `None`-pool fleets report an empty guard.
#[derive(Debug, Default, Clone)]
pub struct MemoryReport {
    /// Sessions whose KV pages were reclaimed this tick (they re-anchor
    /// on their next step).
    pub evicted: Vec<u64>,
    /// Drained arrivals pushed back to their queues because the pool
    /// could not cover them even after eviction (served on later ticks —
    /// their tickets stay pending, nothing is lost).
    pub deferred: usize,
    /// Pool bytes lent out at the end of the tick, after the step's
    /// allocations (≤ the pool budget, by construction — the pool never
    /// mints past it).
    pub used_bytes: usize,
}

/// What one [`crate::ShardedServer::tick`] did — the observable record of
/// a tick cycle (the leaves since the previous tick plus this tick's
/// drain, step and steering pass).
#[derive(Debug, Default)]
pub struct TickReport {
    /// Tick number (monotonic, starts at 1).
    pub tick: u64,
    /// Arrivals served (tickets now redeemable via `poll`).
    pub served: usize,
    /// Sessions steered during this tick cycle — by rebalance-on-leave
    /// since the previous tick or by the cache-aware pass of this one.
    /// Never contains duplicates: a session is steered at most once per
    /// tick cycle (double-migration is the regression `tests/admission.rs`
    /// pins down).
    pub steered: Vec<u64>,
    /// Arrivals still queued after the drain (backlogged sessions).
    pub pending: usize,
    /// Served counts per adapter tag ([`crate::ServedTask::task_label`]).
    pub served_by_label: Vec<(&'static str, usize)>,
    /// What the paged-memory guard did this tick (empty without a pool).
    pub memory: MemoryReport,
    /// What the fault layer did this tick (kills fired, deaths declared,
    /// sessions recovered, tickets failed/requeued — all-default on
    /// fault-free ticks).
    pub faults: crate::fault::FaultReport,
    /// Fleet-total wall-ns per tick phase, indexed by
    /// [`crate::metrics::TickPhase`] (per-shard spans summed for the
    /// per-shard phases; the whole pass for the fleet-wide ones). All
    /// zero when telemetry is off.
    pub phase_ns: [u64; crate::metrics::TICK_PHASES],
}

#[cfg(test)]
mod tests {
    use super::*;

    fn arrival(ticket: u64, session: u64) -> Arrival<u32> {
        Arrival { ticket: Ticket(ticket), session, group: 0, obs: ticket as u32 }
    }

    #[test]
    fn drain_takes_at_most_one_arrival_per_session_in_fifo_order() {
        let mut q = AdmissionQueue::with_capacity(16);
        for (t, s) in [(0u64, 7u64), (1, 7), (2, 3), (3, 7), (4, 3)] {
            q.push(arrival(t, s)).unwrap();
        }
        let batch: Vec<u64> = q.drain_tick().iter().map(|a| a.ticket.0).collect();
        assert_eq!(batch, vec![0, 2], "first arrival of each session, arrival order");
        let batch: Vec<u64> = q.drain_tick().iter().map(|a| a.ticket.0).collect();
        assert_eq!(batch, vec![1, 4]);
        let batch: Vec<u64> = q.drain_tick().iter().map(|a| a.ticket.0).collect();
        assert_eq!(batch, vec![3]);
        assert!(q.is_empty());
    }

    #[test]
    fn push_refuses_at_capacity_and_returns_the_arrival() {
        let mut q = AdmissionQueue::with_capacity(2);
        q.push(arrival(0, 1)).unwrap();
        q.push(arrival(1, 2)).unwrap();
        let back = q.push(arrival(2, 3)).unwrap_err();
        assert_eq!(back.ticket, Ticket(2), "refused arrival comes back intact");
        assert_eq!(q.len(), 2);
        // Draining frees capacity again.
        let _ = q.drain_tick();
        q.push(arrival(3, 4)).unwrap();
    }

    #[test]
    fn requeue_bypasses_the_cap_without_unblocking_push() {
        // A steering migration must never drop a ticketed arrival, so
        // `requeue` may transiently exceed the cap — while fresh `push`es
        // stay refused until drains bring the queue back down.
        let mut q = AdmissionQueue::with_capacity(2);
        q.push(arrival(0, 1)).unwrap();
        q.push(arrival(1, 2)).unwrap();
        q.requeue(arrival(2, 3)); // migrated in from another shard
        assert_eq!(q.len(), 3, "requeue lands above the cap");
        assert!(q.push(arrival(3, 4)).is_err(), "push stays refused while over the cap");
        assert_eq!(q.drain_tick().len(), 3, "distinct sessions all drain");
        assert!(q.is_empty());
        q.push(arrival(4, 5)).unwrap();
    }

    #[test]
    fn requeue_front_preserves_fifo_for_the_next_drain() {
        // Deferral pushes drained arrivals back to the head: the next
        // drain must serve them before anything that queued behind them,
        // in their original order.
        let mut q = AdmissionQueue::with_capacity(2);
        q.push(arrival(0, 1)).unwrap();
        q.push(arrival(1, 2)).unwrap();
        let drained = q.drain_tick();
        assert_eq!(drained.len(), 2);
        q.push(arrival(2, 3)).unwrap();
        q.requeue_front(drained); // both deferred, original order
        assert_eq!(q.len(), 3, "requeue_front bypasses the cap");
        let next: Vec<u64> = q.drain_tick().iter().map(|a| a.ticket.0).collect();
        assert_eq!(next, vec![0, 1, 2], "deferred arrivals drain first, FIFO preserved");
    }

    #[test]
    fn remove_session_extracts_only_that_sessions_arrivals() {
        let mut q = AdmissionQueue::with_capacity(8);
        for (t, s) in [(0u64, 1u64), (1, 2), (2, 1), (3, 2)] {
            q.push(arrival(t, s)).unwrap();
        }
        let moved: Vec<u64> = q.remove_session(2).iter().map(|a| a.ticket.0).collect();
        assert_eq!(moved, vec![1, 3], "session 2's arrivals, FIFO");
        assert_eq!(q.len(), 2);
        assert_eq!(q.pending_of(1), 2);
        assert_eq!(q.pending_of(2), 0);
    }

    #[test]
    fn hash_route_matches_fnv_and_spreads() {
        let p = AdmissionPolicy::HashRoute;
        let active = [0usize; 3];
        let bytes = [0usize; 3];
        let mut seen = [false; 3];
        for id in 0..16u64 {
            let s = p.place(id, &PlacementView::bytes_only(&active, &bytes));
            assert_eq!(s, (fnv1a(id) % 3) as usize);
            seen[s] = true;
        }
        assert!(seen.iter().all(|&x| x), "16 sequential ids must touch every shard");
    }

    #[test]
    fn least_loaded_picks_fewest_slots_with_deterministic_ties() {
        let p = AdmissionPolicy::LeastLoaded;
        let v = |active: &'static [usize]| PlacementView::bytes_only(active, &[0, 0, 0]);
        assert_eq!(p.place(9, &v(&[3, 1, 2])), 1);
        // Ties break to the lowest shard index, independent of the id.
        assert_eq!(p.place(0, &v(&[2, 2, 2])), 0);
        assert_eq!(p.place(77, &v(&[2, 2, 2])), 0);
        assert_eq!(p.place(5, &v(&[2, 1, 1])), 1);
    }

    #[test]
    fn take_all_drains_fifo_and_empties_the_queue() {
        let mut q = AdmissionQueue::with_capacity(8);
        for (t, s) in [(0u64, 1u64), (1, 2), (2, 1)] {
            q.push(arrival(t, s)).unwrap();
        }
        let all: Vec<u64> = q.take_all().iter().map(|a| a.ticket.0).collect();
        assert_eq!(all, vec![0, 1, 2], "whole backlog, FIFO order");
        assert!(q.is_empty());
    }

    #[test]
    fn submit_retry_backs_off_on_suspect_and_resets_on_success() {
        let mut r = SubmitRetry::with_max_backoff(4);
        assert!(r.ready(0));
        // QueueFull: exactly one tick.
        r.refused(3, &SubmitError::QueueFull { obs: () });
        assert!(!r.ready(3));
        assert!(r.ready(4));
        // RetryAfterTick: 1, 2, 4, 4 … (capped) ticks between attempts.
        r.refused(4, &SubmitError::RetryAfterTick { obs: () });
        assert!(r.ready(5));
        r.refused(5, &SubmitError::RetryAfterTick { obs: () });
        assert!(!r.ready(6));
        assert!(r.ready(7));
        r.refused(7, &SubmitError::RetryAfterTick { obs: () });
        assert!(!r.ready(10));
        assert!(r.ready(11));
        r.refused(11, &SubmitError::RetryAfterTick { obs: () });
        assert!(r.ready(15), "backoff capped at 4 ticks");
        r.succeeded();
        assert!(r.ready(0), "success resets the schedule");
        assert_eq!(SubmitError::QueueFull { obs: 7u32 }.into_obs(), 7);
        assert!(TicketStatus::<u32>::Failed.is_terminal());
        assert!(!TicketStatus::<u32>::Requeued.is_terminal());
    }

    #[test]
    fn cache_aware_places_on_lightest_shard() {
        let p = AdmissionPolicy::CacheAware { budget_bytes: 1 << 20 };
        let v = |active: &'static [usize], bytes: &'static [usize]| {
            PlacementView::bytes_only(active, bytes)
        };
        assert_eq!(p.place(3, &v(&[1, 1, 1], &[500, 100, 300])), 1);
        // Byte ties fall back to live-slot count (cold joins spread),
        // then to the lowest index.
        assert_eq!(p.place(3, &v(&[9, 0, 0], &[200, 200, 400])), 1);
        assert_eq!(p.place(3, &v(&[2, 2, 9], &[200, 200, 400])), 0);
        assert_eq!(p.kv_budget(), Some(1 << 20));
        assert_eq!(AdmissionPolicy::LeastLoaded.kv_budget(), None);
        assert_eq!(p.page_budget(), None);
        assert_eq!(AdmissionPolicy::PageAware { budget_pages: 40 }.page_budget(), Some(40));
    }

    fn paged_view<'a>(
        active: &'a [usize],
        cache_bytes: &'a [usize],
        pressure: &'a [PagePressure],
        same_backbone: &'a [usize],
        need_pages: usize,
    ) -> PlacementView<'a> {
        PlacementView { active, cache_bytes, pressure, same_backbone, need_pages }
    }

    #[test]
    fn page_aware_places_on_least_page_pressure() {
        let p = AdmissionPolicy::PageAware { budget_pages: 100 };
        let pressure = [
            PagePressure { free_pages: 10, held_pages: 40 },
            PagePressure { free_pages: 10, held_pages: 12 },
            PagePressure { free_pages: 10, held_pages: 25 },
        ];
        // Fewest held pages wins regardless of KV bytes or slot count.
        let v = paged_view(&[1, 9, 1], &[100, 900, 100], &pressure, &[0, 0, 0], 0);
        assert_eq!(p.place(3, &v), 1);
        // Without a page economy the policy degenerates to LeastLoaded.
        assert_eq!(p.place(3, &PlacementView::bytes_only(&[2, 1, 2], &[0, 0, 0])), 1);
    }

    #[test]
    fn page_aware_prefers_destinations_whose_free_pages_cover_the_need() {
        let p = AdmissionPolicy::PageAware { budget_pages: 100 };
        // Shard 1 has the least pressure but cannot absorb 8 pages
        // without eviction; shard 2 can — feasibility beats pressure.
        let pressure = [
            PagePressure { free_pages: 2, held_pages: 40 },
            PagePressure { free_pages: 4, held_pages: 10 },
            PagePressure { free_pages: 9, held_pages: 25 },
        ];
        let v = paged_view(&[1, 1, 1], &[0, 0, 0], &pressure, &[0, 0, 0], 8);
        assert_eq!(p.place(3, &v), 2);
        // When no shard covers the need, fall back to pure pressure
        // (the memory guard arbitrates on arrival).
        let v = paged_view(&[1, 1, 1], &[0, 0, 0], &pressure, &[0, 0, 0], 64);
        assert_eq!(p.place(3, &v), 1);
        // Zero need (a fresh join): every shard is feasible.
        let v = paged_view(&[1, 1, 1], &[0, 0, 0], &pressure, &[0, 0, 0], 0);
        assert_eq!(p.place(3, &v), 1);
    }

    #[test]
    fn page_aware_ties_break_toward_same_backbone_residents() {
        let p = AdmissionPolicy::PageAware { budget_pages: 100 };
        // Equal pressure everywhere: the shard already hosting the most
        // same-backbone sessions wins (denser stacked GEMMs), then fewest
        // live slots, then index.
        let pressure = [PagePressure { free_pages: 10, held_pages: 20 }; 3];
        let v = paged_view(&[4, 4, 4], &[0, 0, 0], &pressure, &[1, 3, 0], 0);
        assert_eq!(p.place(3, &v), 1);
        let v = paged_view(&[4, 2, 4], &[0, 0, 0], &pressure, &[2, 2, 2], 0);
        assert_eq!(p.place(3, &v), 1);
        let v = paged_view(&[4, 4, 4], &[0, 0, 0], &pressure, &[2, 2, 2], 0);
        assert_eq!(p.place(3, &v), 0);
    }

    #[test]
    fn steer_improves_requires_strict_improvement_and_free_pages() {
        // The strictly-improving half (regression: CacheAware ping-pong).
        assert!(steer_improves(100, 10, 20, 0, None));
        assert!(!steer_improves(100, 90, 20, 0, None), "dest would end above src's start");
        assert!(!steer_improves(100, 80, 20, 0, None), "equal height is not an improvement");
        assert!(!steer_improves(100, 10, 0, 0, None), "an empty victim moves nothing");
        // The page-economy half (the satellite bugfix): a destination
        // whose pool lacks the victim's pages would evict on arrival —
        // the move is refused even though the byte math improves.
        assert!(steer_improves(100, 10, 20, 5, Some(5)));
        assert!(!steer_improves(100, 10, 20, 5, Some(4)), "too few free pages at the destination");
        assert!(steer_improves(100, 10, 20, 5, None), "pool-less fleets skip the page check");
    }
}

//! Async admission queue + tick scheduling policies for continuous
//! batching.
//!
//! PR 3's fleet was lockstep: callers orchestrated every tick, handing
//! [`crate::ShardedServer::step`] a fully-formed batch, so an observation
//! arriving mid-tick waited a whole batch cycle and every session had to
//! be joined before stepping. This module is the queuing discipline that
//! removes the lockstep: arrivals enqueue *asynchronously* into per-shard
//! [`AdmissionQueue`]s (stamped with a logical arrival clock and tagged
//! with their adapter group), and each shard drains its queue at tick
//! boundaries — at most one arrival per session per tick, FIFO within a
//! session — so sessions join, answer and leave mid-stream while the
//! engine still gets dense batched steps.
//!
//! ```text
//!  submit(obs) ──► Ticket ─┐   per-shard queues     tick boundary
//!  submit(obs) ──► Ticket ─┤  ┌────────────────┐  drain ≤1/session
//!      ...                 ├─►│ q0 │ q1 │ … │qK ├──────► ServingEngine::step
//!  poll(Ticket) ◄─ actions ┘  └────────────────┘        per busy shard
//! ```
//!
//! Placement is pluggable via [`AdmissionPolicy`]: `HashRoute` keeps the
//! PR 3 FNV-1a session-hash behaviour, `LeastLoaded` admits to the shard
//! with the fewest live slots, and `CacheAware` admits to the shard
//! holding the fewest KV bytes *and* steers load off any shard whose KV
//! bytes cross a configurable budget (the tick scheduler migrates the
//! coldest — least-recently-served — session to the lightest shard).
//! Every policy is a pure function of the fleet view, so placement is
//! deterministic and unit-testable without a model.
//!
//! The scheduler lives in [`crate::ShardedServer`] (`submit`/`tick`/
//! `poll`); this module owns the data structures and the placement math.

use std::collections::VecDeque;

/// Fleet-wide session handle (mirrors `shard::GlobalSessionId`; duplicated
/// here as a plain alias so the queue stays free of engine types).
pub type SessionKey = u64;

/// Handle for one submitted observation: redeem it with
/// [`crate::ShardedServer::poll`] once the scheduler has served the tick
/// that answered it. Tickets are issued in submission order and are never
/// reused.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct Ticket(pub u64);

/// One queued observation: who asked, when it arrived (logical clock),
/// which backbone group (adapter tag) will serve it, and the observation
/// itself.
#[derive(Debug)]
pub struct Arrival<O> {
    /// The ticket the submitter holds.
    pub ticket: Ticket,
    /// The session this observation advances.
    pub session: SessionKey,
    /// Backbone group of the session — the adapter tag
    /// ([`crate::ServedTask::task_label`] renders it for reports).
    pub group: usize,
    /// The observation to serve.
    pub obs: O,
}

impl<O> Arrival<O> {
    /// Logical arrival stamp: tickets are issued in submission order, so
    /// the ticket sequence *is* the fleet-wide monotonic arrival clock.
    pub fn stamp(&self) -> u64 {
        self.ticket.0
    }
}

/// Bounded FIFO of pending observations for one shard.
///
/// Invariants (property-tested in `tests/admission_queue.rs`):
/// - no ticket is lost or double-served: every pushed arrival leaves the
///   queue exactly once, via [`AdmissionQueue::drain_tick`] or
///   [`AdmissionQueue::remove_session`];
/// - FIFO within a session: a session's arrivals drain in push order
///   (drains take at most one arrival per session, so a backlogged
///   session advances one decision per tick, in order);
/// - backpressure on admission: [`AdmissionQueue::push`] refuses
///   (returning the arrival to the caller) instead of growing past the
///   cap, so submissions never push `len()` beyond `capacity()`. The one
///   sanctioned exception is [`AdmissionQueue::requeue`] — a steering
///   migration must never drop an already-ticketed arrival, so a move
///   onto a full queue may transiently exceed the cap (drained back down
///   at the following ticks; new `push`es stay refused meanwhile).
pub struct AdmissionQueue<O> {
    entries: VecDeque<Arrival<O>>,
    cap: usize,
}

impl<O> AdmissionQueue<O> {
    /// Empty queue refusing pushes beyond `cap` pending arrivals.
    pub fn with_capacity(cap: usize) -> Self {
        assert!(cap >= 1, "a queue needs capacity for at least one arrival");
        AdmissionQueue { entries: VecDeque::new(), cap }
    }

    /// Pending arrivals.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Backpressure cap.
    pub fn capacity(&self) -> usize {
        self.cap
    }

    /// Enqueue an arrival; at the cap the arrival comes back as `Err` so
    /// the caller can retry after a tick (backpressure, not silent drop).
    pub fn push(&mut self, arrival: Arrival<O>) -> Result<(), Arrival<O>> {
        if self.entries.len() >= self.cap {
            return Err(arrival);
        }
        self.entries.push_back(arrival);
        Ok(())
    }

    /// Re-enqueue an arrival that already holds a ticket (steering moves
    /// queued arrivals between shards; a move must never drop a ticket,
    /// so it bypasses the cap).
    pub fn requeue(&mut self, arrival: Arrival<O>) {
        self.entries.push_back(arrival);
    }

    /// Put already-drained arrivals back at the *head* of the queue, in
    /// the given order — the memory scheduler's deferral path: when the
    /// page pool cannot cover a tick's demand even after eviction, the
    /// youngest drained arrivals go back here so the next drain serves
    /// them first and FIFO-per-session is preserved. Bypasses the cap
    /// (the arrivals hold tickets already).
    pub fn requeue_front(&mut self, arrivals: Vec<Arrival<O>>) {
        for a in arrivals.into_iter().rev() {
            self.entries.push_front(a);
        }
    }

    /// Drain one tick's batch: arrivals in FIFO order, skipping (keeping
    /// queued) any session already taken this drain — a session advances
    /// at most one decision per tick, so within-session order is
    /// preserved and a batched engine step never sees a duplicate slot.
    pub fn drain_tick(&mut self) -> Vec<Arrival<O>> {
        let mut taken: std::collections::BTreeSet<SessionKey> = std::collections::BTreeSet::new();
        let mut batch = Vec::new();
        let mut kept = VecDeque::with_capacity(self.entries.len());
        for a in self.entries.drain(..) {
            if taken.insert(a.session) {
                batch.push(a);
            } else {
                kept.push_back(a);
            }
        }
        self.entries = kept;
        batch
    }

    /// Remove (and return) every pending arrival of `session`, in FIFO
    /// order — steering moves them to the destination shard's queue;
    /// leave drops them (their tickets never resolve).
    pub fn remove_session(&mut self, session: SessionKey) -> Vec<Arrival<O>> {
        let mut removed = Vec::new();
        let mut kept = VecDeque::with_capacity(self.entries.len());
        for a in self.entries.drain(..) {
            if a.session == session {
                removed.push(a);
            } else {
                kept.push_back(a);
            }
        }
        self.entries = kept;
        removed
    }

    /// Pending arrivals of one session (FIFO-depth view for tests and
    /// backpressure diagnostics).
    pub fn pending_of(&self, session: SessionKey) -> usize {
        self.entries.iter().filter(|a| a.session == session).count()
    }
}

/// FNV-1a over the id bytes: cheap, deterministic, and uncorrelated with
/// sequential id assignment (so consecutive joins spread across shards).
pub(crate) fn fnv1a(id: u64) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for b in id.to_le_bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x100_0000_01b3);
    }
    h
}

/// Where a joining session lands, and whether the tick scheduler steers
/// load between shards.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum AdmissionPolicy {
    /// PR 3 behaviour: the session id's FNV-1a hash picks the shard —
    /// stateless, uniform in expectation, but blind to load and KV bytes.
    HashRoute,
    /// Admit to the shard with the fewest live slots; ties break to the
    /// lowest shard index (deterministic).
    LeastLoaded,
    /// Admit to the shard holding the fewest KV bytes (ties to the lowest
    /// index), and steer: whenever a shard's KV bytes cross
    /// `budget_bytes` at a tick boundary, the scheduler migrates the
    /// coldest session off it to the lightest shard, one session per tick
    /// per victim, until every shard fits or no eligible victim remains.
    /// A per-shard budget is only maintainable while fleet-wide bytes
    /// stay under `shards * budget_bytes`; past that the pass is
    /// best-effort (it still levels the skew).
    CacheAware {
        /// Per-shard KV-byte budget the steering pass enforces.
        budget_bytes: usize,
    },
}

impl AdmissionPolicy {
    /// Pick the shard a new session joins. Pure in the fleet view:
    /// `id` is the new global session id, `active` the live-slot count
    /// per shard, `cache_bytes` the KV bytes per shard. `active` and
    /// `cache_bytes` must have one entry per shard.
    pub fn place(&self, id: u64, active: &[usize], cache_bytes: &[usize]) -> usize {
        let k = active.len();
        assert!(k >= 1 && cache_bytes.len() == k, "malformed fleet view");
        match self {
            AdmissionPolicy::HashRoute => (fnv1a(id) % k as u64) as usize,
            AdmissionPolicy::LeastLoaded => {
                (0..k).min_by_key(|&s| (active[s], s)).expect("non-empty fleet")
            }
            // KV-byte ties (e.g. a fleet that has not served yet) fall
            // back to live-slot count, then index — so cold joins still
            // spread instead of piling onto shard 0.
            AdmissionPolicy::CacheAware { .. } => {
                (0..k).min_by_key(|&s| (cache_bytes[s], active[s], s)).expect("non-empty fleet")
            }
        }
    }

    /// The per-shard KV budget this policy enforces, if any.
    pub fn kv_budget(&self) -> Option<usize> {
        match self {
            AdmissionPolicy::CacheAware { budget_bytes } => Some(*budget_bytes),
            _ => None,
        }
    }
}

/// How a memory-backed fleet reclaims KV pages when a tick's page demand
/// exceeds the pool's free list. Orthogonal to [`AdmissionPolicy`]: the
/// admission policy decides *where* sessions live, the eviction policy
/// decides *whose cache dies* under pressure.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub enum EvictionPolicy {
    /// Never reclaim: under pressure the scheduler only defers drained
    /// arrivals back to the queues (and a lockstep `step` over demand
    /// panics). For operators who size the pool for the worst case and
    /// want deferral-only backpressure.
    None,
    /// Clear the coldest (least-recently-served) idle session's pages; it
    /// re-anchors from its episode log on its next step, exactly like a
    /// context-full re-anchor. Ties break to the session holding the most
    /// pages (biggest reclaim), then the lowest id (determinism) — the
    /// `last_served` + `heaviest` ordering.
    #[default]
    ColdestReanchor,
}

/// What the memory guard did at one tick boundary (pool occupancy,
/// reclaims, deferrals) — `None`-pool fleets report an empty guard.
#[derive(Debug, Default, Clone)]
pub struct MemoryReport {
    /// Sessions whose KV pages were reclaimed this tick (they re-anchor
    /// on their next step).
    pub evicted: Vec<u64>,
    /// Drained arrivals pushed back to their queues because the pool
    /// could not cover them even after eviction (served on later ticks —
    /// their tickets stay pending, nothing is lost).
    pub deferred: usize,
    /// Pool bytes lent out at the end of the tick, after the step's
    /// allocations (≤ the pool budget, by construction — the pool never
    /// mints past it).
    pub used_bytes: usize,
}

/// What one [`crate::ShardedServer::tick`] did — the observable record of
/// a tick cycle (the leaves since the previous tick plus this tick's
/// drain, step and steering pass).
#[derive(Debug, Default)]
pub struct TickReport {
    /// Tick number (monotonic, starts at 1).
    pub tick: u64,
    /// Arrivals served (tickets now redeemable via `poll`).
    pub served: usize,
    /// Sessions steered during this tick cycle — by rebalance-on-leave
    /// since the previous tick or by the cache-aware pass of this one.
    /// Never contains duplicates: a session is steered at most once per
    /// tick cycle (double-migration is the regression `tests/admission.rs`
    /// pins down).
    pub steered: Vec<u64>,
    /// Arrivals still queued after the drain (backlogged sessions).
    pub pending: usize,
    /// Served counts per adapter tag ([`crate::ServedTask::task_label`]).
    pub served_by_label: Vec<(&'static str, usize)>,
    /// What the paged-memory guard did this tick (empty without a pool).
    pub memory: MemoryReport,
}

#[cfg(test)]
mod tests {
    use super::*;

    fn arrival(ticket: u64, session: u64) -> Arrival<u32> {
        Arrival { ticket: Ticket(ticket), session, group: 0, obs: ticket as u32 }
    }

    #[test]
    fn drain_takes_at_most_one_arrival_per_session_in_fifo_order() {
        let mut q = AdmissionQueue::with_capacity(16);
        for (t, s) in [(0u64, 7u64), (1, 7), (2, 3), (3, 7), (4, 3)] {
            q.push(arrival(t, s)).unwrap();
        }
        let batch: Vec<u64> = q.drain_tick().iter().map(|a| a.ticket.0).collect();
        assert_eq!(batch, vec![0, 2], "first arrival of each session, arrival order");
        let batch: Vec<u64> = q.drain_tick().iter().map(|a| a.ticket.0).collect();
        assert_eq!(batch, vec![1, 4]);
        let batch: Vec<u64> = q.drain_tick().iter().map(|a| a.ticket.0).collect();
        assert_eq!(batch, vec![3]);
        assert!(q.is_empty());
    }

    #[test]
    fn push_refuses_at_capacity_and_returns_the_arrival() {
        let mut q = AdmissionQueue::with_capacity(2);
        q.push(arrival(0, 1)).unwrap();
        q.push(arrival(1, 2)).unwrap();
        let back = q.push(arrival(2, 3)).unwrap_err();
        assert_eq!(back.ticket, Ticket(2), "refused arrival comes back intact");
        assert_eq!(q.len(), 2);
        // Draining frees capacity again.
        let _ = q.drain_tick();
        q.push(arrival(3, 4)).unwrap();
    }

    #[test]
    fn requeue_bypasses_the_cap_without_unblocking_push() {
        // A steering migration must never drop a ticketed arrival, so
        // `requeue` may transiently exceed the cap — while fresh `push`es
        // stay refused until drains bring the queue back down.
        let mut q = AdmissionQueue::with_capacity(2);
        q.push(arrival(0, 1)).unwrap();
        q.push(arrival(1, 2)).unwrap();
        q.requeue(arrival(2, 3)); // migrated in from another shard
        assert_eq!(q.len(), 3, "requeue lands above the cap");
        assert!(q.push(arrival(3, 4)).is_err(), "push stays refused while over the cap");
        assert_eq!(q.drain_tick().len(), 3, "distinct sessions all drain");
        assert!(q.is_empty());
        q.push(arrival(4, 5)).unwrap();
    }

    #[test]
    fn requeue_front_preserves_fifo_for_the_next_drain() {
        // Deferral pushes drained arrivals back to the head: the next
        // drain must serve them before anything that queued behind them,
        // in their original order.
        let mut q = AdmissionQueue::with_capacity(2);
        q.push(arrival(0, 1)).unwrap();
        q.push(arrival(1, 2)).unwrap();
        let drained = q.drain_tick();
        assert_eq!(drained.len(), 2);
        q.push(arrival(2, 3)).unwrap();
        q.requeue_front(drained); // both deferred, original order
        assert_eq!(q.len(), 3, "requeue_front bypasses the cap");
        let next: Vec<u64> = q.drain_tick().iter().map(|a| a.ticket.0).collect();
        assert_eq!(next, vec![0, 1, 2], "deferred arrivals drain first, FIFO preserved");
    }

    #[test]
    fn remove_session_extracts_only_that_sessions_arrivals() {
        let mut q = AdmissionQueue::with_capacity(8);
        for (t, s) in [(0u64, 1u64), (1, 2), (2, 1), (3, 2)] {
            q.push(arrival(t, s)).unwrap();
        }
        let moved: Vec<u64> = q.remove_session(2).iter().map(|a| a.ticket.0).collect();
        assert_eq!(moved, vec![1, 3], "session 2's arrivals, FIFO");
        assert_eq!(q.len(), 2);
        assert_eq!(q.pending_of(1), 2);
        assert_eq!(q.pending_of(2), 0);
    }

    #[test]
    fn hash_route_matches_fnv_and_spreads() {
        let p = AdmissionPolicy::HashRoute;
        let active = [0usize; 3];
        let bytes = [0usize; 3];
        let mut seen = [false; 3];
        for id in 0..16u64 {
            let s = p.place(id, &active, &bytes);
            assert_eq!(s, (fnv1a(id) % 3) as usize);
            seen[s] = true;
        }
        assert!(seen.iter().all(|&x| x), "16 sequential ids must touch every shard");
    }

    #[test]
    fn least_loaded_picks_fewest_slots_with_deterministic_ties() {
        let p = AdmissionPolicy::LeastLoaded;
        assert_eq!(p.place(9, &[3, 1, 2], &[0, 0, 0]), 1);
        // Ties break to the lowest shard index, independent of the id.
        assert_eq!(p.place(0, &[2, 2, 2], &[0, 0, 0]), 0);
        assert_eq!(p.place(77, &[2, 2, 2], &[0, 0, 0]), 0);
        assert_eq!(p.place(5, &[2, 1, 1], &[0, 0, 0]), 1);
    }

    #[test]
    fn cache_aware_places_on_lightest_shard() {
        let p = AdmissionPolicy::CacheAware { budget_bytes: 1 << 20 };
        assert_eq!(p.place(3, &[1, 1, 1], &[500, 100, 300]), 1);
        // Byte ties fall back to live-slot count (cold joins spread),
        // then to the lowest index.
        assert_eq!(p.place(3, &[9, 0, 0], &[200, 200, 400]), 1);
        assert_eq!(p.place(3, &[2, 2, 9], &[200, 200, 400]), 0);
        assert_eq!(p.kv_budget(), Some(1 << 20));
        assert_eq!(AdmissionPolicy::LeastLoaded.kv_budget(), None);
    }
}

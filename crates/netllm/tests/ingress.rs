//! Ingress event-loop invariants, all over a real loopback socket:
//!
//! - the socket path is *the same server* semantically — every session's
//!   actions and logits match the in-process submit/tick/poll path at
//!   1e-5;
//! - version mismatch is refused at handshake with the server's range;
//! - the leave contract: a leaving session's queued tickets resolve as
//!   `Failed` on the wire (and silently into the disconnect counter when
//!   the connection just vanishes) — nothing vanishes unresolved;
//! - admission backpressure surfaces as `Busy{retry_after}` and clears
//!   after a tick, mirroring `SubmitRetry`;
//! - fairness: one greedy pipelining connection cannot monopolize the
//!   shared admission queues — the per-connection in-flight cap refuses
//!   *it*, and a slow client's submit→completion latency stays bounded.

use netllm::wire::{read_frame, write_frame};
use netllm::{
    serve, CjsObs, FleetModels, FleetObs, Frame, IngressConfig, NetLlmFleet, ShardedServer, Ticket,
    TicketStatus, VpQuery, WireClient, WireError, FLEET_ABR, FLEET_CJS, FLEET_VP,
};
use nt_abr::AbrObservation;
use nt_cjs::{generate_workload, run_workload, Srpt, WorkloadConfig};
use nt_vp::{extract_samples, generate, jin2022_like, DatasetSpec, VpSample};
use std::collections::BTreeMap;
use std::time::{Duration, Instant};

fn record_cjs_obs(seed: u64) -> Vec<CjsObs> {
    let jobs = generate_workload(&WorkloadConfig { num_jobs: 4, mean_interarrival: 1.5, seed });
    let mut obs = Vec::new();
    let mut hook =
        |view: &nt_cjs::SchedView, _d: &nt_cjs::Decision| obs.push(CjsObs::from_view(view));
    run_workload(&mut Srpt, &jobs, 6, Some(&mut hook));
    obs
}

fn vp_samples() -> Vec<VpSample> {
    let ds = generate(&DatasetSpec { videos: 1, viewers: 2, secs: 20, ..jin2022_like() });
    extract_samples(&ds, &[0], &[0, 1], 10, 20, 5, 30)
}

fn tiny(name: &str) -> FleetModels {
    FleetModels::tiny(&std::env::temp_dir().join(name), 2)
}

/// Mixed ABR+CJS+VP sessions over the socket produce the same actions
/// and logits (1e-5) as the identical submit/tick/poll sequence run
/// in-process — the socket is a transport, not a different server.
#[test]
fn socket_path_matches_in_process_fleet() {
    const ROUNDS: usize = 3;
    let models = tiny("netllm-ingress-eq");
    let reference = tiny("netllm-ingress-eq"); // same zoo dir -> same weights
    let cjs_obs = record_cjs_obs(9);
    let samples = vp_samples();
    let abr_stream = AbrObservation::synthetic_stream(70, ROUNDS);
    assert!(cjs_obs.len() >= ROUNDS && samples.len() >= ROUNDS);
    let obs_for = |group: usize, round: usize| -> FleetObs {
        match group {
            FLEET_ABR => FleetObs::Abr(abr_stream[round].clone()),
            FLEET_CJS => FleetObs::Cjs(cjs_obs[round].clone()),
            _ => FleetObs::Vp(VpQuery { sample: samples[round].clone(), pw: 6 }),
        }
    };
    let groups = [FLEET_ABR, FLEET_CJS, FLEET_VP, FLEET_ABR];

    // ---- in-process reference: same joins, same observations ----------
    let fleet = NetLlmFleet { abr: &reference.abr, cjs: &reference.cjs, vp: &reference.vp };
    let mut server: ShardedServer<NetLlmFleet> = ShardedServer::new(2);
    let ref_ids: Vec<u64> = groups.iter().map(|&g| server.join_group(&fleet, g)).collect();
    // expected[session][round] = (action debug, logits)
    let mut expected: BTreeMap<u64, Vec<(String, Vec<f32>)>> =
        ref_ids.iter().map(|&id| (id, Vec::new())).collect();
    for round in 0..ROUNDS {
        let mut open: Vec<(u64, Ticket)> = ref_ids
            .iter()
            .zip(&groups)
            .map(|(&id, &g)| (id, server.submit(id, obs_for(g, round)).unwrap()))
            .collect();
        while !open.is_empty() {
            server.tick(&fleet);
            open.retain(|&(id, t)| match server.poll_status(t) {
                TicketStatus::Served(a) => {
                    let logits = server.last_logits(id).to_vec();
                    expected.get_mut(&id).unwrap().push((format!("{a:?}"), logits));
                    false
                }
                TicketStatus::Failed => panic!("reference ticket failed"),
                _ => true,
            });
        }
    }

    // ---- the same workload over the socket ----------------------------
    let handle = serve(models, IngressConfig::default()).unwrap();
    let mut client = WireClient::connect(handle.addr()).unwrap();
    let ids: Vec<u64> = groups.iter().map(|&g| client.join(g as u32).unwrap().0).collect();
    assert_eq!(ids, ref_ids, "join order must yield the same session ids");
    let session_group: BTreeMap<u64, usize> = ids.iter().copied().zip(groups).collect();

    let mut got: BTreeMap<u64, Vec<(String, Vec<f32>)>> =
        ids.iter().map(|&id| (id, Vec::new())).collect();
    for round in 0..ROUNDS {
        // Pipelined submits; grants and completions stream back.
        for &id in &ids {
            client.submit(id, &obs_for(session_group[&id], round)).unwrap();
        }
        let mut done = 0usize;
        while done < ids.len() {
            match client.recv().unwrap() {
                Frame::TicketGrant { .. } => {}
                Frame::Completion { session, step, action, logits, .. } => {
                    assert_eq!(step as usize, round, "steps order the session's stream");
                    got.get_mut(&session).unwrap().push((action_debug(&action), logits));
                    done += 1;
                }
                Frame::Busy { session, retry_after_ms, .. } => {
                    // Transient (tick raced the submit): pace and retry,
                    // exactly what SubmitRetry does in-process.
                    std::thread::sleep(Duration::from_millis(retry_after_ms as u64));
                    client.submit(session, &obs_for(session_group[&session], round)).unwrap();
                }
                other => panic!("unexpected frame {other:?}"),
            }
        }
    }
    client.bye().unwrap();

    // ---- equivalence ---------------------------------------------------
    for (&id, exp) in &expected {
        let got = &got[&id];
        assert_eq!(got.len(), exp.len(), "session {id} served count");
        for (round, ((ea, el), (ga, gl))) in exp.iter().zip(got).enumerate() {
            assert_eq!(ga, ea, "session {id} round {round} action");
            assert_eq!(gl.len(), el.len(), "session {id} round {round} logit width");
            for (i, (e, g)) in el.iter().zip(gl).enumerate() {
                assert!((e - g).abs() <= 1e-5, "session {id} round {round} logit {i}: {e} vs {g}");
            }
        }
    }
    let stats = handle.stats();
    assert_eq!(stats.completions, (ROUNDS * groups.len()) as u64);
    assert_eq!(stats.protocol_errors, 0);
    handle.shutdown();
}

fn action_debug(action: &netllm::FleetAction) -> String {
    format!("{action:?}")
}

/// A client speaking only a future version is refused with the server's
/// range, per the negotiation rule; a current client on the same server
/// still connects.
#[test]
fn version_mismatch_refused_on_the_socket() {
    let handle = serve(tiny("netllm-ingress-ver"), IngressConfig::default()).unwrap();

    let stream = std::net::TcpStream::connect(handle.addr()).unwrap();
    stream.set_read_timeout(Some(Duration::from_secs(30))).unwrap();
    let mut w = &stream;
    write_frame(&mut w, &Frame::Hello { version: 99, min_version: 99 }).unwrap();
    let mut r = std::io::BufReader::new(&stream);
    match read_frame(&mut r).unwrap() {
        Frame::HelloReject { min, max } => {
            assert_eq!(min, netllm::MIN_WIRE_VERSION);
            assert_eq!(max, netllm::WIRE_VERSION);
        }
        other => panic!("expected HelloReject, got {other:?}"),
    }
    // The server hangs up after the reject.
    assert!(matches!(read_frame(&mut r), Err(WireError::Truncated)));

    // WireClient maps the same refusal to VersionUnsupported — and a
    // well-versioned client is still fine.
    let ok = WireClient::connect(handle.addr()).unwrap();
    assert_eq!(ok.version(), netllm::WIRE_VERSION);
    handle.shutdown();
}

/// The leave contract on the wire: tickets still queued when `Leave`
/// arrives resolve as `Failed` frames before the ack — they do not
/// vanish.
#[test]
fn leave_fails_queued_tickets_then_acks() {
    // A huge quiesce window keeps the scheduler coalescing, so the
    // submits are still queued (not ticked) when the leave lands.
    let cfg = IngressConfig {
        quiesce: Duration::from_millis(250),
        max_coalesce: Duration::from_secs(2),
        ..IngressConfig::default()
    };
    let handle = serve(tiny("netllm-ingress-leave"), cfg).unwrap();
    let mut client = WireClient::connect(handle.addr()).unwrap();
    let (session, _) = client.join(FLEET_ABR as u32).unwrap();

    let obs = AbrObservation::synthetic_stream(5, 2);
    client.submit(session, &FleetObs::Abr(obs[0].clone())).unwrap();
    client.submit(session, &FleetObs::Abr(obs[1].clone())).unwrap();
    client.leave(session).unwrap();

    let mut granted = Vec::new();
    let mut failed = Vec::new();
    loop {
        match client.recv().unwrap() {
            Frame::TicketGrant { ticket, .. } => granted.push(ticket),
            Frame::Failed { ticket, session: s } => {
                assert_eq!(s, session);
                failed.push(ticket);
            }
            Frame::LeaveAck { session: s, unpolled, dropped } => {
                assert_eq!(s, session);
                assert_eq!(unpolled, 0, "eager sweep leaves no unpolled actions");
                assert_eq!(dropped, 2, "both queued arrivals dropped by the leave");
                break;
            }
            other => panic!("unexpected frame {other:?}"),
        }
    }
    assert_eq!(granted.len(), 2);
    let mut failed_sorted = failed.clone();
    failed_sorted.sort_unstable();
    let mut granted_sorted = granted.clone();
    granted_sorted.sort_unstable();
    assert_eq!(failed_sorted, granted_sorted, "every granted ticket resolved");
    assert_eq!(handle.stats().failed, 2);
    handle.shutdown();
}

/// The same contract when the client just disappears: no one is left to
/// notify, so the queued tickets fail into the disconnect counter —
/// resolved server-side, not leaked.
#[test]
fn disconnect_fails_queued_tickets_into_the_counter() {
    let cfg = IngressConfig {
        quiesce: Duration::from_millis(250),
        max_coalesce: Duration::from_secs(2),
        ..IngressConfig::default()
    };
    let handle = serve(tiny("netllm-ingress-gone"), cfg).unwrap();
    let mut client = WireClient::connect(handle.addr()).unwrap();
    let (session, _) = client.join(FLEET_ABR as u32).unwrap();
    let obs = AbrObservation::synthetic_stream(6, 1).remove(0);
    client.submit(session, &FleetObs::Abr(obs)).unwrap();
    match client.recv().unwrap() {
        Frame::TicketGrant { .. } => {}
        other => panic!("expected grant, got {other:?}"),
    }
    drop(client); // vanish without Bye

    let deadline = Instant::now() + Duration::from_secs(30);
    loop {
        let stats = handle.stats();
        if stats.failed_on_disconnect == 1 {
            break;
        }
        assert!(Instant::now() < deadline, "disconnect never failed the ticket: {stats:?}");
        std::thread::sleep(Duration::from_millis(20));
    }
    handle.shutdown();
}

/// Admission backpressure surfaces on the wire: with a single 1-deep
/// queue, the second concurrent submit gets `Busy{QueueFull}` with a
/// positive retry hint, and succeeds once a tick drains the queue.
#[test]
fn busy_backpressure_clears_after_a_tick() {
    let cfg = IngressConfig {
        shards: 1,
        queue_cap: 1,
        quiesce: Duration::from_millis(150),
        max_coalesce: Duration::from_millis(400),
        ..IngressConfig::default()
    };
    let handle = serve(tiny("netllm-ingress-busy"), cfg).unwrap();
    let mut client = WireClient::connect(handle.addr()).unwrap();
    let (a, _) = client.join(FLEET_ABR as u32).unwrap();
    let (b, _) = client.join(FLEET_ABR as u32).unwrap();

    let obs = AbrObservation::synthetic_stream(8, 2);
    client.submit(a, &FleetObs::Abr(obs[0].clone())).unwrap();
    client.submit(b, &FleetObs::Abr(obs[1].clone())).unwrap();

    match client.recv().unwrap() {
        Frame::TicketGrant { session, .. } => assert_eq!(session, a),
        other => panic!("expected grant for a, got {other:?}"),
    }
    match client.recv().unwrap() {
        Frame::Busy { session, retry_after_ms, .. } => {
            assert_eq!(session, b);
            assert!(retry_after_ms >= 1, "retry hint must be positive");
        }
        other => panic!("expected Busy for b, got {other:?}"),
    }
    // After the tick drains the queue, the retry goes through and both
    // sessions complete.
    let mut completions = 0;
    let mut resubmitted = false;
    while completions < 2 {
        match client.recv().unwrap() {
            Frame::Completion { .. } => completions += 1,
            Frame::TicketGrant { .. } => {}
            Frame::Busy { session, retry_after_ms, .. } => {
                std::thread::sleep(Duration::from_millis(retry_after_ms as u64));
                client.submit(session, &FleetObs::Abr(obs[1].clone())).unwrap();
            }
            other => panic!("unexpected frame {other:?}"),
        }
        if completions == 1 && !resubmitted {
            resubmitted = true;
            client.submit(b, &FleetObs::Abr(obs[1].clone())).unwrap();
        }
    }
    let stats = handle.stats();
    assert!(stats.busy >= 1, "backpressure must have fired: {stats:?}");
    assert_eq!(stats.completions, 2);
    handle.shutdown();
}

/// Two clients on one shard: a greedy pipeline flooding submits on its
/// session, and a slow client submitting one observation at a time. The
/// per-connection in-flight cap (`max_open_per_conn`) must absorb the
/// flood — greedy gets the `Busy` refusals, the slow client gets *none*
/// (the shared queue always has room for it), and the slow client's
/// submit→completion p90 stays bounded while the flood runs.
#[test]
fn greedy_connection_cannot_starve_a_slow_client() {
    use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
    use std::sync::Arc;

    const SLOW_ROUNDS: usize = 12;
    let cfg = IngressConfig {
        shards: 1,
        queue_cap: 16,
        max_open_per_conn: 4,
        ..IngressConfig::default()
    };
    let handle = serve(tiny("netllm-ingress-fair"), cfg).unwrap();

    // Greedy: split client, sender floods one session as fast as the
    // socket takes frames, receiver drains grants/busy/completions.
    let greedy_busy = Arc::new(AtomicU64::new(0));
    let greedy_granted = Arc::new(AtomicU64::new(0));
    let stop = Arc::new(AtomicBool::new(false));
    let mut greedy = WireClient::connect(handle.addr()).unwrap();
    let (gsession, _) = greedy.join(FLEET_ABR as u32).unwrap();
    let (mut gtx, mut grx) = greedy.split();
    let flood_obs = AbrObservation::synthetic_stream(41, 1).remove(0);
    let flooder = {
        let stop = Arc::clone(&stop);
        std::thread::spawn(move || {
            while !stop.load(Ordering::SeqCst) {
                if gtx.submit(gsession, &FleetObs::Abr(flood_obs.clone())).is_err() {
                    break;
                }
                std::thread::sleep(Duration::from_micros(200));
            }
            let _ = gtx.bye();
        })
    };
    let drainer = {
        let (busy, granted) = (Arc::clone(&greedy_busy), Arc::clone(&greedy_granted));
        std::thread::spawn(move || {
            while let Ok(frame) = grx.recv() {
                match frame {
                    Frame::Busy { .. } => {
                        busy.fetch_add(1, Ordering::Relaxed);
                    }
                    Frame::TicketGrant { .. } => {
                        granted.fetch_add(1, Ordering::Relaxed);
                    }
                    _ => {}
                }
            }
        })
    };

    // Slow client: one in-flight submit at a time, latency measured from
    // the first submit attempt to the completion (retries included).
    let mut slow = WireClient::connect(handle.addr()).unwrap();
    let (session, _) = slow.join(FLEET_ABR as u32).unwrap();
    let obs = AbrObservation::synthetic_stream(43, SLOW_ROUNDS);
    let mut latencies = Vec::with_capacity(SLOW_ROUNDS);
    for o in &obs {
        let t0 = Instant::now();
        slow.submit(session, &FleetObs::Abr(o.clone())).unwrap();
        loop {
            match slow.recv().unwrap() {
                Frame::TicketGrant { .. } => {}
                Frame::Completion { session: s, .. } => {
                    assert_eq!(s, session);
                    latencies.push(t0.elapsed());
                    break;
                }
                Frame::Busy { retry_after_ms, .. } => {
                    panic!(
                        "slow client refused while greedy held the queue \
                         (retry_after_ms={retry_after_ms}) — the fairness cap failed"
                    );
                }
                other => panic!("unexpected frame {other:?}"),
            }
        }
    }
    stop.store(true, Ordering::SeqCst);
    flooder.join().unwrap();
    drainer.join().unwrap();

    assert_eq!(latencies.len(), SLOW_ROUNDS);
    latencies.sort_unstable();
    let p90 = latencies[(SLOW_ROUNDS * 9) / 10];
    // Generous wall bound: with the cap, a slow submit waits for at most
    // a few ticks behind ≤ max_open_per_conn greedy arrivals; without
    // it, the 16-deep queue is wall-to-wall greedy and the slow client
    // spins on Busy retries for the whole flood.
    assert!(p90 < Duration::from_secs(5), "slow client's p90 blew up: {p90:?}");
    assert!(
        greedy_busy.load(Ordering::Relaxed) > 0,
        "the flood never hit the in-flight cap — the test did not exercise fairness"
    );
    assert!(greedy_granted.load(Ordering::Relaxed) > 0, "the flood never got a single grant");
    handle.shutdown();
}

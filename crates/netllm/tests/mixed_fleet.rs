//! Mixed-fleet equivalence: one sharded fleet serving interleaved
//! ABR + CJS + VP sessions must produce, for every session, logits
//! within 1e-5 of that adapter's unbatched `InferenceSession` path —
//! with a CJS candidate rollback and a VP join/leave inside the same
//! tick, and the ABR streams crossing their 2x-window re-anchor.

use netllm::{
    AdaptMode, CjsObs, FleetObs, LoraSpec, NetLlmAbr, NetLlmCjs, NetLlmFleet, NetLlmVp,
    ShardedServer, VpQuery, FLEET_ABR, FLEET_CJS, FLEET_VP,
};
use nt_abr::{AbrObservation, AbrPolicy};
use nt_cjs::{generate_workload, run_workload, Scheduler, Srpt, WorkloadConfig};
use nt_llm::{size_spec, Zoo};
use nt_vp::{extract_samples, generate, jin2022_like, DatasetSpec, VpSample};

fn record_cjs_obs(seed: u64) -> Vec<CjsObs> {
    let jobs = generate_workload(&WorkloadConfig { num_jobs: 4, mean_interarrival: 1.5, seed });
    let mut obs = Vec::new();
    let mut hook =
        |view: &nt_cjs::SchedView, _d: &nt_cjs::Decision| obs.push(CjsObs::from_view(view));
    run_workload(&mut Srpt, &jobs, 6, Some(&mut hook));
    obs
}

fn vp_samples() -> Vec<VpSample> {
    let ds = generate(&DatasetSpec { videos: 1, viewers: 2, secs: 20, ..jin2022_like() });
    extract_samples(&ds, &[0], &[0, 1], 10, 20, 5, 30)
}

#[test]
fn mixed_fleet_matches_each_adapters_unbatched_path() {
    let zoo = Zoo::new(std::env::temp_dir().join("netllm-mixed-fleet"));
    let window = 3usize;
    let ticks = 8usize;

    let mut m_abr = NetLlmAbr::new(
        zoo.build_random(&size_spec("0.35b-sim")),
        AdaptMode::NoDomain,
        LoraSpec::default(),
        window,
        21,
    );
    m_abr.target_return = 2.0;
    let mut m_cjs = NetLlmCjs::new(
        zoo.build_random(&size_spec("0.35b-sim")),
        AdaptMode::NoDomain,
        LoraSpec::default(),
        window,
        22,
    );
    m_cjs.target_return = -1.0;
    let mut m_vp = NetLlmVp::new(
        zoo.build_random(&size_spec("0.35b-sim")),
        AdaptMode::NoDomain,
        LoraSpec::default(),
        8,
        23,
    );

    let abr_streams: Vec<Vec<AbrObservation>> =
        (0..2).map(|s| AbrObservation::synthetic_stream(70 + s as u64, ticks)).collect();
    let cjs_obs = record_cjs_obs(9);
    assert!(cjs_obs.len() >= ticks, "CJS probe too short: {}", cjs_obs.len());
    let samples = vp_samples();
    let pw = 6usize;

    // ---- the fleet: 2 ABR + 1 CJS persistent, VP one-shots per tick ----
    let fleet = NetLlmFleet { abr: &m_abr, cjs: &m_cjs, vp: &m_vp };
    let mut server = ShardedServer::new(2);
    let abr_ids: Vec<_> = (0..2).map(|_| server.join_group(&fleet, FLEET_ABR)).collect();
    let cjs_id = server.join_group(&fleet, FLEET_CJS);

    let mut abr_served: Vec<Vec<(usize, Vec<f32>)>> = vec![Vec::new(); 2];
    let mut cjs_served: Vec<(usize, usize, Vec<f32>)> = Vec::new();
    let mut vp_served: Vec<Vec<f32>> = Vec::new();
    for tick in 0..ticks {
        // A VP session joins, answers once, and leaves — inside the same
        // tick that advances the ABR streams and triggers the CJS
        // candidate rollback.
        let vp_id = server.join_group(&fleet, FLEET_VP);
        let sample = &samples[tick % samples.len()];
        let requests = [
            (abr_ids[0], FleetObs::Abr(abr_streams[0][tick].clone())),
            (vp_id, FleetObs::Vp(VpQuery { sample: sample.clone(), pw })),
            (cjs_id, FleetObs::Cjs(cjs_obs[tick].clone())),
            (abr_ids[1], FleetObs::Abr(abr_streams[1][tick].clone())),
        ];
        let refs: Vec<_> = requests.iter().map(|&(id, ref o)| (id, o)).collect();
        let actions = server.step(&fleet, &refs);
        assert_eq!(actions.len(), 4);
        let mut it = actions.into_iter();
        abr_served[0].push((it.next().unwrap().abr(), server.last_logits(abr_ids[0]).to_vec()));
        vp_served.push(server.last_logits(vp_id).to_vec());
        let _ = it.next().unwrap().vp();
        let d = it.next().unwrap().cjs();
        cjs_served.push((d.candidate, d.cap, server.last_logits(cjs_id).to_vec()));
        abr_served[1].push((it.next().unwrap().abr(), server.last_logits(abr_ids[1]).to_vec()));
        assert!(server.leave(vp_id).is_clean(), "a polled one-shot leaves nothing behind");
        assert_eq!(server.active(), 3, "one-shot VP slot must be gone after the tick");
    }
    // Release the fleet's borrows (the server's type carries the model
    // lifetimes) so the reference replays can drive the models directly;
    // `fleet` itself has no drop glue, so its borrows end with its last use.
    drop(server);

    // ---- ABR reference: each stream alone through select() -------------
    for (s, obs) in abr_streams.iter().enumerate() {
        m_abr.reset();
        for (tick, o) in obs.iter().enumerate() {
            let act = m_abr.select(o);
            let (bact, blogits) = &abr_served[s][tick];
            assert_eq!(act, *bact, "ABR stream {s} tick {tick}: action diverged");
            for (x, y) in m_abr.last_logits().iter().zip(blogits) {
                assert!(
                    (x - y).abs() < 1e-5,
                    "ABR stream {s} tick {tick}: fleet {y} vs unbatched {x}"
                );
            }
        }
        assert!(ticks > 2 * window, "ABR probe must cross a re-anchor");
    }

    // ---- CJS reference: the same obs through decide_obs() --------------
    m_cjs.reset();
    for (tick, o) in cjs_obs[..ticks].iter().enumerate() {
        let d = m_cjs.decide_obs(o);
        let (cand, cap, blogits) = &cjs_served[tick];
        assert_eq!(d.candidate, *cand, "CJS tick {tick}: stage diverged");
        assert_eq!(d.cap, *cap, "CJS tick {tick}: cap diverged");
        for (x, y) in m_cjs.last_logits().iter().zip(blogits) {
            assert!((x - y).abs() < 1e-5, "CJS tick {tick}: fleet {y} vs unbatched {x}");
        }
    }

    // ---- VP reference: one-shot eval per sample -------------------------
    for (tick, blogits) in vp_served.iter().enumerate() {
        let v = m_vp.forward_eval(&samples[tick % samples.len()], pw);
        assert_eq!(v.data().len(), blogits.len());
        for (x, y) in v.data().iter().zip(blogits) {
            assert!((x - y).abs() < 1e-5, "VP tick {tick}: fleet {y} vs unbatched {x}");
        }
    }
}

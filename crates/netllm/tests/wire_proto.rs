//! Wire-protocol framing invariants: every message type round-trips
//! bit-exactly, truncated or malformed frames are rejected (never
//! panicked on, never silently misread), and version negotiation refuses
//! disjoint ranges.

use netllm::wire::{
    decode_frame, encode_frame, negotiate, read_frame, write_frame, BusyReason, Frame, WireError,
    EXTENSION_TAG_BASE, MAX_FRAME_LEN, MIN_WIRE_VERSION, WIRE_VERSION,
};
use netllm::{CjsObs, FleetAction, FleetObs, VpQuery};
use nt_abr::AbrObservation;
use nt_cjs::{Decision, GraphSnapshot};
use nt_tensor::Tensor;
use nt_vp::VpSample;
use proptest::prelude::*;

/// Deterministic pseudo-random values from a seed — enough variety to
/// exercise every field without needing a full Arbitrary impl.
struct Gen(u64);

impl Gen {
    fn next(&mut self) -> u64 {
        // SplitMix64 step.
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    fn f32(&mut self) -> f32 {
        (self.next() % 2_000_000) as f32 / 1000.0 - 1000.0
    }

    fn f64(&mut self) -> f64 {
        (self.next() % 2_000_000) as f64 / 1000.0 - 1000.0
    }

    fn f64s(&mut self, n: usize) -> Vec<f64> {
        (0..n).map(|_| self.f64()).collect()
    }

    fn f32s(&mut self, n: usize) -> Vec<f32> {
        (0..n).map(|_| self.f32()).collect()
    }

    fn tensor(&mut self, rows: usize, cols: usize) -> Tensor {
        let data = self.f32s(rows * cols);
        Tensor::from_vec(vec![rows, cols], data)
    }

    fn viewports(&mut self, n: usize) -> Vec<[f32; 3]> {
        (0..n).map(|_| [self.f32(), self.f32(), self.f32()]).collect()
    }
}

fn obs_for(kind: u8, g: &mut Gen) -> FleetObs {
    match kind % 3 {
        0 => {
            let th = (g.next() % 9) as usize;
            let dh = (g.next() % 9) as usize;
            FleetObs::Abr(AbrObservation {
                throughput_hist: g.f64s(th),
                delay_hist: g.f64s(dh),
                next_sizes: g.f64s(6),
                buffer_secs: g.f64(),
                last_rung: if g.next().is_multiple_of(2) {
                    None
                } else {
                    Some((g.next() % 6) as usize)
                },
                remain_frac: g.f64(),
                ladder_mbps: g.f64s(6),
                chunk_index: (g.next() % 100) as usize,
            })
        }
        1 => {
            let n = 1 + (g.next() % 5) as usize;
            FleetObs::Cjs(CjsObs {
                snap: GraphSnapshot {
                    n,
                    feats: g.tensor(n, 4),
                    adj: g.tensor(n, n),
                    candidates: (0..n).filter(|_| g.next().is_multiple_of(2)).collect(),
                    free_frac: g.f32(),
                },
                now: g.f64(),
                active_jobs: (g.next() % 20) as usize,
                total_executors: (g.next() % 50) as usize,
            })
        }
        _ => {
            let h = (g.next() % 8) as usize;
            let f = (g.next() % 8) as usize;
            FleetObs::Vp(VpQuery {
                sample: VpSample {
                    history: g.viewports(h),
                    future: g.viewports(f),
                    saliency: g.tensor(2, 3),
                },
                pw: (g.next() % 30) as usize,
            })
        }
    }
}

fn action_for(kind: u8, g: &mut Gen) -> FleetAction {
    match kind % 3 {
        0 => FleetAction::Abr((g.next() % 6) as usize),
        1 => FleetAction::Cjs(Decision {
            candidate: (g.next() % 10) as usize,
            cap: (g.next() % 8) as usize,
        }),
        _ => {
            let n = 1 + (g.next() % 5) as usize;
            FleetAction::Vp(g.viewports(n))
        }
    }
}

/// One frame of each variant, fields driven by the seed. `kind` covers
/// all 14 message types (sub-kinds picked off the seed).
fn frame_for(kind: u8, seed: u64) -> Frame {
    let mut g = Gen(seed);
    match kind % 14 {
        0 => {
            Frame::Hello { min_version: (g.next() % 4) as u16, version: 4 + (g.next() % 8) as u16 }
        }
        1 => Frame::HelloAck { version: g.next() as u16 },
        2 => Frame::HelloReject { min: g.next() as u16, max: g.next() as u16 },
        3 => Frame::Join { group: (g.next() % 3) as u32 },
        4 => Frame::Joined { session: g.next(), shard: g.next() as u32 },
        5 => {
            let session = g.next();
            let kind = g.next() as u8;
            Frame::Submit { session, obs: obs_for(kind, &mut g) }
        }
        6 => Frame::TicketGrant { session: g.next(), ticket: g.next() },
        7 => Frame::Busy {
            session: g.next(),
            reason: if g.next().is_multiple_of(2) {
                BusyReason::QueueFull
            } else {
                BusyReason::ShardSuspect
            },
            retry_after_ms: g.next() as u32,
        },
        8 => {
            let (ticket, session, step) = (g.next(), g.next(), g.next());
            let kind = g.next() as u8;
            let action = action_for(kind, &mut g);
            let n = (g.next() % 20) as usize;
            Frame::Completion { ticket, session, step, action, logits: g.f32s(n) }
        }
        9 => Frame::Failed { ticket: g.next(), session: g.next() },
        10 => Frame::Leave { session: g.next() },
        11 => Frame::LeaveAck {
            session: g.next(),
            unpolled: (g.next() % 5) as u32,
            dropped: (g.next() % 5) as u32,
        },
        12 => Frame::Bye,
        _ => {
            let session = g.next();
            let kind = g.next() as u8;
            Frame::Submit { session, obs: obs_for(kind, &mut g) }
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// encode → decode → encode is the identity on bytes, for every
    /// message type. (Byte equality implies value equality: the encoding
    /// is injective, so comparing re-encodings sidesteps the missing
    /// `PartialEq` on tensors.)
    #[test]
    fn every_frame_roundtrips_bit_exactly(kind in 0u8..14, seed in 0u64..u64::MAX) {
        let frame = frame_for(kind, seed);
        let bytes = encode_frame(&frame);
        // Length prefix covers exactly the body.
        let len = u32::from_le_bytes(bytes[..4].try_into().unwrap()) as usize;
        prop_assert_eq!(len, bytes.len() - 4);
        let decoded = decode_frame(&bytes[4..])
            .expect("well-formed frame decodes")
            .expect("core frame is not skipped");
        prop_assert_eq!(encode_frame(&decoded), bytes);
    }

    /// Every strict prefix of a frame body is rejected — a cut anywhere
    /// never panics and never yields a bogus frame.
    #[test]
    fn truncated_bodies_are_rejected(kind in 0u8..14, seed in 0u64..u64::MAX) {
        let frame = frame_for(kind, seed);
        let bytes = encode_frame(&frame);
        let body = &bytes[4..];
        // Dense scan near the front (where tags and counts live), sparse
        // beyond, so huge Submit frames don't make the case quadratic.
        let mut cut = 0usize;
        while cut < body.len() {
            prop_assert!(
                decode_frame(&body[..cut]).is_err(),
                "prefix of {} bytes decoded", cut
            );
            cut += 1 + cut / 8;
        }
    }

    /// A stream cut anywhere mid-frame surfaces `Truncated`, not a hang
    /// or a panic.
    #[test]
    fn truncated_streams_are_rejected(kind in 0u8..14, seed in 0u64..u64::MAX, frac in 0u32..1000) {
        let frame = frame_for(kind, seed);
        let bytes = encode_frame(&frame);
        let cut = (bytes.len() - 1) * frac as usize / 1000;
        let mut cur = std::io::Cursor::new(bytes[..cut].to_vec());
        prop_assert!(matches!(read_frame(&mut cur), Err(WireError::Truncated)));
    }

    /// Appending garbage to any frame body breaks the exact-consumption
    /// rule.
    #[test]
    fn trailing_bytes_are_rejected(kind in 0u8..14, seed in 0u64..u64::MAX) {
        let frame = frame_for(kind, seed);
        let bytes = encode_frame(&frame);
        let mut body = bytes[4..].to_vec();
        body.push(0x5a);
        prop_assert!(matches!(decode_frame(&body), Err(WireError::Malformed(_))));
    }
}

#[test]
fn version_mismatch_is_refused_with_the_servers_range() {
    // Entirely-above and entirely-below ranges both fail...
    assert!(matches!(
        negotiate(WIRE_VERSION + 7, WIRE_VERSION + 2),
        Err(WireError::VersionUnsupported { min, max })
            if min == WIRE_VERSION + 2 && max == WIRE_VERSION + 7
    ));
    if MIN_WIRE_VERSION > 0 {
        assert!(negotiate(MIN_WIRE_VERSION - 1, 0).is_err());
    }
    // ...overlapping ranges land on the highest common version.
    assert_eq!(negotiate(WIRE_VERSION + 3, WIRE_VERSION).unwrap(), WIRE_VERSION);
    assert_eq!(negotiate(WIRE_VERSION, MIN_WIRE_VERSION).unwrap(), WIRE_VERSION);
}

#[test]
fn malformed_payloads_are_rejected_not_panicked_on() {
    // An inverted Hello range.
    let hello = encode_frame(&Frame::Hello { version: 1, min_version: 1 });
    let mut body = hello[4..].to_vec();
    body[1..3].copy_from_slice(&5u16.to_le_bytes()); // version = 5
    body[3..5].copy_from_slice(&9u16.to_le_bytes()); // min = 9 > version
    assert!(matches!(decode_frame(&body), Err(WireError::Malformed(_))));

    // A Busy frame with an unknown reason byte.
    let busy =
        encode_frame(&Frame::Busy { session: 1, reason: BusyReason::QueueFull, retry_after_ms: 5 });
    let mut body = busy[4..].to_vec();
    body[9] = 0xee; // reason byte (tag + 8-byte session)
    assert!(matches!(decode_frame(&body), Err(WireError::Malformed(_))));

    // A Submit whose observation tag is unknown.
    let mut g = Gen(7);
    let submit = encode_frame(&Frame::Submit { session: 3, obs: obs_for(0, &mut g) });
    let mut body = submit[4..].to_vec();
    body[9] = 0xee; // obs tag
    assert!(matches!(decode_frame(&body), Err(WireError::Malformed(_))));

    // A hostile sequence count (u32::MAX elements) must be caught by the
    // bounded-allocation check, not attempted.
    let completion = encode_frame(&Frame::Completion {
        ticket: 1,
        session: 2,
        step: 0,
        action: FleetAction::Abr(3),
        logits: vec![1.0],
    });
    let mut body = completion[4..].to_vec();
    let logits_count_at = body.len() - 4 - 4; // count then one f32
    body[logits_count_at..logits_count_at + 4].copy_from_slice(&u32::MAX.to_le_bytes());
    assert!(decode_frame(&body).is_err());
}

#[test]
fn unknown_core_tags_reject_extension_tags_skip() {
    assert!(matches!(decode_frame(&[0x7e, 0, 0]), Err(WireError::UnknownFrame(0x7e))));
    assert!(matches!(decode_frame(&[EXTENSION_TAG_BASE, 0, 0]), Ok(None)));
    assert!(matches!(decode_frame(&[0xff]), Ok(None)));
}

#[test]
fn oversize_length_prefix_is_rejected_before_allocating() {
    let mut bytes = Vec::new();
    bytes.extend_from_slice(&(MAX_FRAME_LEN + 1).to_le_bytes());
    bytes.extend_from_slice(&[0u8; 16]);
    let mut cur = std::io::Cursor::new(bytes);
    assert!(matches!(read_frame(&mut cur), Err(WireError::BadLength(_))));
}

#[test]
fn frames_concatenate_on_a_stream() {
    let mut buf = Vec::new();
    for kind in 0..14u8 {
        write_frame(&mut buf, &frame_for(kind, 42)).unwrap();
    }
    let mut cur = std::io::Cursor::new(buf);
    for kind in 0..14u8 {
        let expect = encode_frame(&frame_for(kind, 42));
        let got = encode_frame(&read_frame(&mut cur).unwrap());
        assert_eq!(got, expect, "frame kind {kind} did not survive the stream");
    }
    assert!(matches!(read_frame(&mut cur), Err(WireError::Truncated)));
}

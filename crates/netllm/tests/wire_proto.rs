//! Wire-protocol framing invariants: every message type round-trips
//! bit-exactly, truncated or malformed frames are rejected (never
//! panicked on, never silently misread), and version negotiation refuses
//! disjoint ranges.

use netllm::metrics::{
    FaultSnapshot, IngressSnapshot, LatencySnapshot, MetricsSnapshot, PoolDispatchSnapshot,
    ShardSnapshot,
};
use netllm::wire::{
    decode_frame, encode_frame, negotiate, read_frame, write_frame, BusyReason, Frame, WireError,
    EXTENSION_TAG_BASE, MAX_FRAME_LEN, MIN_WIRE_VERSION, WIRE_VERSION,
};
use netllm::{
    CjsObs, EventKind, FleetAction, FleetObs, RefusalReason, SteerReason, TelemetryEvent, VpQuery,
};
use nt_abr::AbrObservation;
use nt_cjs::{Decision, GraphSnapshot};
use nt_tensor::Tensor;
use nt_vp::VpSample;
use proptest::prelude::*;

/// Deterministic pseudo-random values from a seed — enough variety to
/// exercise every field without needing a full Arbitrary impl.
struct Gen(u64);

impl Gen {
    fn next(&mut self) -> u64 {
        // SplitMix64 step.
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    fn f32(&mut self) -> f32 {
        (self.next() % 2_000_000) as f32 / 1000.0 - 1000.0
    }

    fn f64(&mut self) -> f64 {
        (self.next() % 2_000_000) as f64 / 1000.0 - 1000.0
    }

    fn f64s(&mut self, n: usize) -> Vec<f64> {
        (0..n).map(|_| self.f64()).collect()
    }

    fn f32s(&mut self, n: usize) -> Vec<f32> {
        (0..n).map(|_| self.f32()).collect()
    }

    fn tensor(&mut self, rows: usize, cols: usize) -> Tensor {
        let data = self.f32s(rows * cols);
        Tensor::from_vec(vec![rows, cols], data)
    }

    fn viewports(&mut self, n: usize) -> Vec<[f32; 3]> {
        (0..n).map(|_| [self.f32(), self.f32(), self.f32()]).collect()
    }

    fn latency(&mut self) -> LatencySnapshot {
        let n = (self.next() % 6) as usize;
        LatencySnapshot {
            count: self.next(),
            total_ns: self.next(),
            max_ns: self.next(),
            buckets: (0..n).map(|_| self.next()).collect(),
        }
    }

    fn metrics_snapshot(&mut self) -> MetricsSnapshot {
        let shards = (self.next() % 4) as usize;
        MetricsSnapshot {
            shards: (0..shards)
                .map(|_| ShardSnapshot {
                    served: self.next(),
                    steered: self.next(),
                    steered_in: self.next(),
                    evicted: self.next(),
                    evicted_rebuild_rows: self.next(),
                    queue_depth: self.next(),
                    held_pages: self.next(),
                })
                .collect(),
            pool: PoolDispatchSnapshot {
                workers: self.next(),
                dispatches: self.next(),
                tasks: self.next(),
            },
            faults: FaultSnapshot {
                shard_kills: self.next(),
                sessions_recovered: self.next(),
                tickets_failed: self.next(),
                arrivals_requeued: self.next(),
                recovery_replay_rows: self.next(),
            },
            ingress_latency: self.latency(),
            shard_phases: (0..shards)
                .map(|_| (0..netllm::TICK_PHASES).map(|_| self.latency()).collect())
                .collect(),
            shard_latency: (0..shards).map(|_| self.latency()).collect(),
            served_by_label: vec![
                ("abr".to_string(), self.next()),
                ("cjs".to_string(), self.next()),
            ],
            ingress: IngressSnapshot {
                connections: self.next(),
                sessions_joined: self.next(),
                submits: self.next(),
                busy: self.next(),
                completions: self.next(),
                failed: self.next(),
                failed_on_disconnect: self.next(),
                protocol_errors: self.next(),
                ticks: self.next(),
            },
            pool_free_pages: self.next(),
        }
    }

    fn event(&mut self) -> TelemetryEvent {
        let kind = match self.next() % 6 {
            0 => EventKind::TickSpan {
                shard: self.next() as u32,
                served: self.next() as u32,
                span_ns: self.next(),
            },
            1 => EventKind::Eviction {
                shard: self.next() as u32,
                session: self.next(),
                rebuild_rows: self.next(),
            },
            2 => EventKind::Steer {
                src: self.next() as u32,
                dst: self.next() as u32,
                session: self.next(),
                reason: match self.next() % 3 {
                    0 => SteerReason::Rebalance,
                    1 => SteerReason::OverBudget,
                    _ => SteerReason::Manual,
                },
            },
            3 => EventKind::ShardDead { shard: self.next() as u32 },
            4 => EventKind::Recovery {
                shard: self.next() as u32,
                sessions: self.next() as u32,
                replay_rows: self.next(),
            },
            _ => EventKind::Busy {
                session: self.next(),
                reason: match self.next() % 3 {
                    0 => RefusalReason::QueueFull,
                    1 => RefusalReason::Suspect,
                    _ => RefusalReason::FairnessCap,
                },
            },
        };
        TelemetryEvent { seq: self.next(), clock: self.next(), kind }
    }
}

fn obs_for(kind: u8, g: &mut Gen) -> FleetObs {
    match kind % 3 {
        0 => {
            let th = (g.next() % 9) as usize;
            let dh = (g.next() % 9) as usize;
            FleetObs::Abr(AbrObservation {
                throughput_hist: g.f64s(th),
                delay_hist: g.f64s(dh),
                next_sizes: g.f64s(6),
                buffer_secs: g.f64(),
                last_rung: if g.next().is_multiple_of(2) {
                    None
                } else {
                    Some((g.next() % 6) as usize)
                },
                remain_frac: g.f64(),
                ladder_mbps: g.f64s(6),
                chunk_index: (g.next() % 100) as usize,
            })
        }
        1 => {
            let n = 1 + (g.next() % 5) as usize;
            FleetObs::Cjs(CjsObs {
                snap: GraphSnapshot {
                    n,
                    feats: g.tensor(n, 4),
                    adj: g.tensor(n, n),
                    candidates: (0..n).filter(|_| g.next().is_multiple_of(2)).collect(),
                    free_frac: g.f32(),
                },
                now: g.f64(),
                active_jobs: (g.next() % 20) as usize,
                total_executors: (g.next() % 50) as usize,
            })
        }
        _ => {
            let h = (g.next() % 8) as usize;
            let f = (g.next() % 8) as usize;
            FleetObs::Vp(VpQuery {
                sample: VpSample {
                    history: g.viewports(h),
                    future: g.viewports(f),
                    saliency: g.tensor(2, 3),
                },
                pw: (g.next() % 30) as usize,
            })
        }
    }
}

fn action_for(kind: u8, g: &mut Gen) -> FleetAction {
    match kind % 3 {
        0 => FleetAction::Abr((g.next() % 6) as usize),
        1 => FleetAction::Cjs(Decision {
            candidate: (g.next() % 10) as usize,
            cap: (g.next() % 8) as usize,
        }),
        _ => {
            let n = 1 + (g.next() % 5) as usize;
            FleetAction::Vp(g.viewports(n))
        }
    }
}

/// One frame of each variant, fields driven by the seed. `kind` covers
/// all 18 message types (sub-kinds picked off the seed).
fn frame_for(kind: u8, seed: u64) -> Frame {
    let mut g = Gen(seed);
    match kind % 18 {
        0 => {
            Frame::Hello { min_version: (g.next() % 4) as u16, version: 4 + (g.next() % 8) as u16 }
        }
        1 => Frame::HelloAck { version: g.next() as u16 },
        2 => Frame::HelloReject { min: g.next() as u16, max: g.next() as u16 },
        3 => Frame::Join { group: (g.next() % 3) as u32 },
        4 => Frame::Joined { session: g.next(), shard: g.next() as u32 },
        5 => {
            let session = g.next();
            let kind = g.next() as u8;
            Frame::Submit { session, obs: obs_for(kind, &mut g) }
        }
        6 => Frame::TicketGrant { session: g.next(), ticket: g.next() },
        7 => Frame::Busy {
            session: g.next(),
            reason: if g.next().is_multiple_of(2) {
                BusyReason::QueueFull
            } else {
                BusyReason::ShardSuspect
            },
            retry_after_ms: g.next() as u32,
        },
        8 => {
            let (ticket, session, step) = (g.next(), g.next(), g.next());
            let kind = g.next() as u8;
            let action = action_for(kind, &mut g);
            let n = (g.next() % 20) as usize;
            Frame::Completion { ticket, session, step, action, logits: g.f32s(n) }
        }
        9 => Frame::Failed { ticket: g.next(), session: g.next() },
        10 => Frame::Leave { session: g.next() },
        11 => Frame::LeaveAck {
            session: g.next(),
            unpolled: (g.next() % 5) as u32,
            dropped: (g.next() % 5) as u32,
        },
        12 => Frame::Bye,
        13 => {
            let session = g.next();
            let kind = g.next() as u8;
            Frame::Submit { session, obs: obs_for(kind, &mut g) }
        }
        14 => Frame::MetricsRequest,
        15 => Frame::MetricsReport { snapshot: g.metrics_snapshot() },
        16 => Frame::EventsRequest { since_seq: g.next() },
        _ => {
            let n = (g.next() % 8) as usize;
            Frame::EventsBatch {
                next_seq: g.next(),
                dropped: g.next(),
                events: (0..n).map(|_| g.event()).collect(),
            }
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// encode → decode → encode is the identity on bytes, for every
    /// message type. (Byte equality implies value equality: the encoding
    /// is injective, so comparing re-encodings sidesteps the missing
    /// `PartialEq` on tensors.)
    #[test]
    fn every_frame_roundtrips_bit_exactly(kind in 0u8..18, seed in 0u64..u64::MAX) {
        let frame = frame_for(kind, seed);
        let bytes = encode_frame(&frame);
        // Length prefix covers exactly the body.
        let len = u32::from_le_bytes(bytes[..4].try_into().unwrap()) as usize;
        prop_assert_eq!(len, bytes.len() - 4);
        let decoded = decode_frame(&bytes[4..])
            .expect("well-formed frame decodes")
            .expect("core frame is not skipped");
        prop_assert_eq!(encode_frame(&decoded), bytes);
    }

    /// Every strict prefix of a frame body is rejected — a cut anywhere
    /// never panics and never yields a bogus frame.
    #[test]
    fn truncated_bodies_are_rejected(kind in 0u8..18, seed in 0u64..u64::MAX) {
        let frame = frame_for(kind, seed);
        let bytes = encode_frame(&frame);
        let body = &bytes[4..];
        // Dense scan near the front (where tags and counts live), sparse
        // beyond, so huge Submit frames don't make the case quadratic.
        let mut cut = 0usize;
        while cut < body.len() {
            prop_assert!(
                decode_frame(&body[..cut]).is_err(),
                "prefix of {} bytes decoded", cut
            );
            cut += 1 + cut / 8;
        }
    }

    /// A stream cut anywhere mid-frame surfaces `Truncated`, not a hang
    /// or a panic.
    #[test]
    fn truncated_streams_are_rejected(kind in 0u8..18, seed in 0u64..u64::MAX, frac in 0u32..1000) {
        let frame = frame_for(kind, seed);
        let bytes = encode_frame(&frame);
        let cut = (bytes.len() - 1) * frac as usize / 1000;
        let mut cur = std::io::Cursor::new(bytes[..cut].to_vec());
        prop_assert!(matches!(read_frame(&mut cur), Err(WireError::Truncated)));
    }

    /// Appending garbage to any frame body breaks the exact-consumption
    /// rule.
    #[test]
    fn trailing_bytes_are_rejected(kind in 0u8..18, seed in 0u64..u64::MAX) {
        let frame = frame_for(kind, seed);
        let bytes = encode_frame(&frame);
        let mut body = bytes[4..].to_vec();
        body.push(0x5a);
        prop_assert!(matches!(decode_frame(&body), Err(WireError::Malformed(_))));
    }
}

#[test]
fn version_mismatch_is_refused_with_the_servers_range() {
    // Entirely-above and entirely-below ranges both fail...
    assert!(matches!(
        negotiate(WIRE_VERSION + 7, WIRE_VERSION + 2),
        Err(WireError::VersionUnsupported { min, max })
            if min == WIRE_VERSION + 2 && max == WIRE_VERSION + 7
    ));
    if MIN_WIRE_VERSION > 0 {
        assert!(negotiate(MIN_WIRE_VERSION - 1, 0).is_err());
    }
    // ...overlapping ranges land on the highest common version.
    assert_eq!(negotiate(WIRE_VERSION + 3, WIRE_VERSION).unwrap(), WIRE_VERSION);
    assert_eq!(negotiate(WIRE_VERSION, MIN_WIRE_VERSION).unwrap(), WIRE_VERSION);
}

#[test]
fn malformed_payloads_are_rejected_not_panicked_on() {
    // An inverted Hello range.
    let hello = encode_frame(&Frame::Hello { version: 1, min_version: 1 });
    let mut body = hello[4..].to_vec();
    body[1..3].copy_from_slice(&5u16.to_le_bytes()); // version = 5
    body[3..5].copy_from_slice(&9u16.to_le_bytes()); // min = 9 > version
    assert!(matches!(decode_frame(&body), Err(WireError::Malformed(_))));

    // A Busy frame with an unknown reason byte.
    let busy =
        encode_frame(&Frame::Busy { session: 1, reason: BusyReason::QueueFull, retry_after_ms: 5 });
    let mut body = busy[4..].to_vec();
    body[9] = 0xee; // reason byte (tag + 8-byte session)
    assert!(matches!(decode_frame(&body), Err(WireError::Malformed(_))));

    // A Submit whose observation tag is unknown.
    let mut g = Gen(7);
    let submit = encode_frame(&Frame::Submit { session: 3, obs: obs_for(0, &mut g) });
    let mut body = submit[4..].to_vec();
    body[9] = 0xee; // obs tag
    assert!(matches!(decode_frame(&body), Err(WireError::Malformed(_))));

    // A hostile sequence count (u32::MAX elements) must be caught by the
    // bounded-allocation check, not attempted.
    let completion = encode_frame(&Frame::Completion {
        ticket: 1,
        session: 2,
        step: 0,
        action: FleetAction::Abr(3),
        logits: vec![1.0],
    });
    let mut body = completion[4..].to_vec();
    let logits_count_at = body.len() - 4 - 4; // count then one f32
    body[logits_count_at..logits_count_at + 4].copy_from_slice(&u32::MAX.to_le_bytes());
    assert!(decode_frame(&body).is_err());
}

#[test]
fn unknown_core_tags_reject_extension_tags_skip() {
    assert!(matches!(decode_frame(&[0x7e, 0, 0]), Err(WireError::UnknownFrame(0x7e))));
    // 0x80–0x83 are now the telemetry frames; an *unknown* extension tag
    // still skips, payload unread.
    assert!(matches!(decode_frame(&[0x90, 0, 0]), Ok(None)));
    assert!(matches!(decode_frame(&[0xff]), Ok(None)));
}

#[test]
fn telemetry_frames_reject_hostile_counts_and_trailers() {
    // MetricsReport with its shard count rewritten to u32::MAX: the
    // bounded-allocation check must refuse before allocating.
    let mut g = Gen(0xB10C);
    let report = encode_frame(&Frame::MetricsReport { snapshot: g.metrics_snapshot() });
    let mut body = report[4..].to_vec();
    body[1..5].copy_from_slice(&u32::MAX.to_le_bytes()); // shards count after tag
    assert!(decode_frame(&body).is_err());

    // EventsBatch with a hostile event count.
    let batch =
        encode_frame(&Frame::EventsBatch { next_seq: 9, dropped: 2, events: vec![g.event()] });
    let mut body = batch[4..].to_vec();
    body[17..21].copy_from_slice(&u32::MAX.to_le_bytes()); // count after tag+2×u64
    assert!(decode_frame(&body).is_err());

    // An event with an unknown kind byte is Malformed, not skipped.
    let batch = encode_frame(&Frame::EventsBatch {
        next_seq: 1,
        dropped: 0,
        events: vec![TelemetryEvent { seq: 0, clock: 0, kind: EventKind::ShardDead { shard: 1 } }],
    });
    let mut body = batch[4..].to_vec();
    body[21 + 16] = 0xee; // first event's kind byte (tag+2×u64+count, then seq+clock)
    assert!(matches!(decode_frame(&body), Err(WireError::Malformed(_))));

    // A *known* extension frame with trailing bytes is Malformed — the
    // must-skip rule is only for tags we do not implement.
    let request = encode_frame(&Frame::MetricsRequest);
    let mut body = request[4..].to_vec();
    body.push(0xaa);
    assert!(matches!(decode_frame(&body), Err(WireError::Malformed(_))));
}

/// A PR 8-era reader: every extension-range tag is unknown to it, so the
/// forward-compat rule says skip the frame wholesale and keep reading.
/// (This reproduces the old `decode_frame`'s early `tag >=
/// EXTENSION_TAG_BASE → Ok(None)` exactly, delegating core tags to the
/// current decoder, which did not change for them.)
fn old_peer_read_frame<R: std::io::Read>(r: &mut R) -> Result<Frame, WireError> {
    loop {
        let mut len_buf = [0u8; 4];
        r.read_exact(&mut len_buf).map_err(|_| WireError::Truncated)?;
        let len = u32::from_le_bytes(len_buf);
        assert!(len > 0 && len <= MAX_FRAME_LEN);
        let mut body = vec![0u8; len as usize];
        r.read_exact(&mut body).map_err(|_| WireError::Truncated)?;
        if body[0] >= EXTENSION_TAG_BASE {
            continue; // unknown extension frame: skip, never parse
        }
        if let Some(frame) = decode_frame(&body)? {
            return Ok(frame);
        }
    }
}

#[test]
fn old_peer_skips_telemetry_frames_unharmed() {
    // A stream a telemetry-aware server might emit: a metrics report and
    // an events batch interleaved with core frames. The old reader must
    // deliver exactly the core frames, in order.
    let mut g = Gen(0x01D);
    let mut buf = Vec::new();
    write_frame(&mut buf, &Frame::Joined { session: 7, shard: 1 }).unwrap();
    write_frame(&mut buf, &Frame::MetricsReport { snapshot: g.metrics_snapshot() }).unwrap();
    write_frame(
        &mut buf,
        &Frame::EventsBatch {
            next_seq: 40,
            dropped: 3,
            events: (0..5).map(|_| g.event()).collect(),
        },
    )
    .unwrap();
    write_frame(&mut buf, &Frame::TicketGrant { session: 7, ticket: 99 }).unwrap();
    write_frame(&mut buf, &Frame::MetricsRequest).unwrap();
    write_frame(&mut buf, &Frame::Bye).unwrap();

    let mut cur = std::io::Cursor::new(buf);
    assert!(matches!(
        old_peer_read_frame(&mut cur).unwrap(),
        Frame::Joined { session: 7, shard: 1 }
    ));
    assert!(matches!(
        old_peer_read_frame(&mut cur).unwrap(),
        Frame::TicketGrant { session: 7, ticket: 99 }
    ));
    assert!(matches!(old_peer_read_frame(&mut cur).unwrap(), Frame::Bye));
    assert!(matches!(old_peer_read_frame(&mut cur), Err(WireError::Truncated)));
}

#[test]
fn oversize_length_prefix_is_rejected_before_allocating() {
    let mut bytes = Vec::new();
    bytes.extend_from_slice(&(MAX_FRAME_LEN + 1).to_le_bytes());
    bytes.extend_from_slice(&[0u8; 16]);
    let mut cur = std::io::Cursor::new(bytes);
    assert!(matches!(read_frame(&mut cur), Err(WireError::BadLength(_))));
}

#[test]
fn frames_concatenate_on_a_stream() {
    let mut buf = Vec::new();
    for kind in 0..18u8 {
        write_frame(&mut buf, &frame_for(kind, 42)).unwrap();
    }
    let mut cur = std::io::Cursor::new(buf);
    for kind in 0..18u8 {
        let expect = encode_frame(&frame_for(kind, 42));
        let got = encode_frame(&read_frame(&mut cur).unwrap());
        assert_eq!(got, expect, "frame kind {kind} did not survive the stream");
    }
    assert!(matches!(read_frame(&mut cur), Err(WireError::Truncated)));
}

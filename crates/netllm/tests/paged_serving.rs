//! Paged KV-cache serving: the memory subsystem end to end.
//!
//! - **Bit-compatibility:** a mixed ABR+CJS+VP fleet served from a page
//!   pool (ample budget) must reproduce the contiguous fleet's logits
//!   exactly — across CJS candidate rollbacks, ABR 2x-window re-anchors,
//!   a mid-stream migration and VP join/answer/leave churn.
//! - **Eviction:** under a deliberately tight budget the scheduled front
//!   end must hold pool bytes ≤ budget at every tick (hard, by
//!   construction), evict coldest-first, and every evicted session must
//!   re-anchor to exactly the logits of an unbatched replay that clears
//!   its session at the same points.
//! - **Deferral:** when eviction is disabled and a tick's demand exceeds
//!   the pool, drained arrivals are deferred (tickets stay pending) and
//!   resolve on later ticks — nothing is lost, nothing grows past the
//!   budget.
//! - **`plan_rows` exactness:** every adapter's declared row demand must
//!   equal what `plan_step` actually appends, including the
//!   evicted-session branch (that is what the memory guard reserves by).
//! - **`rebuild_rows` exactness:** the eviction price every adapter
//!   quotes must equal the extra rows the re-anchor replay actually
//!   appends (`plan_rows(cleared) − plan_rows(intact)`), and 0 when the
//!   next step re-anchors regardless — `CheapestRebuild` is only as
//!   honest as these quotes.
//! - **Victim protection:** the guard never evicts a session whose
//!   arrival is in the current drained batch; when every page holder is
//!   in the batch, the sacrifice is chosen by eviction-policy order
//!   (sparing the oldest arrival), never the just-deferred youngest.

use netllm::{
    AdaptMode, AdmissionPolicy, CjsObs, EvictionPolicy, FleetObs, FleetSlot, InferenceSession,
    LoraSpec, NetLlmAbr, NetLlmCjs, NetLlmFleet, NetLlmVp, RollbackPlan, ServedTask, ShardedServer,
    Ticket, VpQuery, FLEET_ABR, FLEET_CJS, FLEET_VP,
};
use nt_abr::AbrObservation;
use nt_cjs::{generate_workload, run_workload, Srpt, WorkloadConfig};
use nt_llm::{size_spec, PageConfig, PagePool, Zoo};
use nt_vp::{extract_samples, generate, jin2022_like, DatasetSpec, VpSample};
use std::collections::VecDeque;

fn record_cjs_obs(seed: u64) -> Vec<CjsObs> {
    let jobs = generate_workload(&WorkloadConfig { num_jobs: 4, mean_interarrival: 1.5, seed });
    let mut obs = Vec::new();
    let mut hook =
        |view: &nt_cjs::SchedView, _d: &nt_cjs::Decision| obs.push(CjsObs::from_view(view));
    run_workload(&mut Srpt, &jobs, 6, Some(&mut hook));
    obs
}

fn vp_samples() -> Vec<VpSample> {
    let ds = generate(&DatasetSpec { videos: 1, viewers: 2, secs: 20, ..jin2022_like() });
    extract_samples(&ds, &[0], &[0, 1], 10, 20, 5, 30)
}

struct Models {
    abr: NetLlmAbr,
    cjs: NetLlmCjs,
    vp: NetLlmVp,
}

fn build_models(window: usize) -> Models {
    let zoo = Zoo::new(std::env::temp_dir().join("netllm-paged-serving"));
    let mut abr = NetLlmAbr::new(
        zoo.build_random(&size_spec("0.35b-sim")),
        AdaptMode::NoDomain,
        LoraSpec::default(),
        window,
        31,
    );
    abr.target_return = 2.0;
    let mut cjs = NetLlmCjs::new(
        zoo.build_random(&size_spec("0.35b-sim")),
        AdaptMode::NoDomain,
        LoraSpec::default(),
        window,
        32,
    );
    cjs.target_return = -1.0;
    let vp = NetLlmVp::new(
        zoo.build_random(&size_spec("0.35b-sim")),
        AdaptMode::NoDomain,
        LoraSpec::default(),
        8,
        33,
    );
    Models { abr, cjs, vp }
}

/// Paged (ample budget) vs contiguous mixed fleet, same trace, same
/// mid-stream migration: logits must agree at 1e-5 tick for tick, and
/// every page must be home once the fleet drops.
#[test]
fn paged_mixed_fleet_matches_contiguous_including_migration() {
    let window = 3usize;
    let ticks = 8usize;
    let m = build_models(window);
    let fleet = NetLlmFleet { abr: &m.abr, cjs: &m.cjs, vp: &m.vp };

    let abr_streams: Vec<Vec<AbrObservation>> =
        (0..2).map(|s| AbrObservation::synthetic_stream(170 + s as u64, ticks)).collect();
    let cjs_obs = record_cjs_obs(19);
    assert!(cjs_obs.len() >= ticks, "CJS probe too short: {}", cjs_obs.len());
    let samples = vp_samples();
    let pw = 6usize;

    let pool = PagePool::for_model(&m.abr.lm, PageConfig { page_tokens: 8, budget_bytes: 1 << 20 });
    let mut all_logits: Vec<Vec<Vec<f32>>> = Vec::new(); // [run][tick*stream]
    for paged in [false, true] {
        let mut server = if paged {
            ShardedServer::with_memory(
                2,
                AdmissionPolicy::HashRoute,
                pool.clone(),
                EvictionPolicy::ColdestReanchor,
            )
        } else {
            ShardedServer::new(2)
        };
        let abr_ids: Vec<_> = (0..2).map(|_| server.join_group(&fleet, FLEET_ABR)).collect();
        let cjs_id = server.join_group(&fleet, FLEET_CJS);
        let mut logits: Vec<Vec<f32>> = Vec::new();
        for tick in 0..ticks {
            if tick == 3 {
                // Migration mid-stream: park/admit must stay bit-identical
                // in both memory modes (same-pool adopt is a no-op).
                let dest = 1 - server.shard_of(abr_ids[0]);
                server.steer(abr_ids[0], dest);
            }
            let vp_id = server.join_group(&fleet, FLEET_VP);
            let requests = [
                (abr_ids[0], FleetObs::Abr(abr_streams[0][tick].clone())),
                (
                    vp_id,
                    FleetObs::Vp(VpQuery { sample: samples[tick % samples.len()].clone(), pw }),
                ),
                (cjs_id, FleetObs::Cjs(cjs_obs[tick].clone())),
                (abr_ids[1], FleetObs::Abr(abr_streams[1][tick].clone())),
            ];
            let refs: Vec<_> = requests.iter().map(|&(id, ref o)| (id, o)).collect();
            let _ = server.step(&fleet, &refs);
            for &(id, _) in &requests {
                logits.push(server.last_logits(id).to_vec());
            }
            let _ = server.leave(vp_id);
            if paged {
                let stats = server.pool_stats().expect("memory fleet exposes its pool");
                assert!(stats.used_pages > 0, "tick {tick}: paged fleet holds pages");
                assert_eq!(
                    stats.used_pages + stats.free_pages,
                    stats.capacity_pages,
                    "pool accounting must balance"
                );
            }
        }
        drop(server);
        all_logits.push(logits);
    }
    assert!(ticks > 2 * window, "trace must cross the ABR re-anchor");
    for (i, (a, b)) in all_logits[0].iter().zip(&all_logits[1]).enumerate() {
        assert_eq!(a.len(), b.len());
        for (x, y) in a.iter().zip(b) {
            assert!((x - y).abs() < 1e-5, "answer {i}: contiguous {x} vs paged {y}");
        }
    }
    assert_eq!(pool.used_pages(), 0, "every page must be home after the fleet drops");
}

/// Tight budget, scheduled front end: pool bytes ≤ budget every tick,
/// evictions fire coldest-first, and every session — evicted or not —
/// matches an unbatched replay that clears its session exactly where the
/// scheduler did.
#[test]
fn eviction_under_pressure_reanchors_to_the_forced_clear_reference() {
    let window = 3usize;
    let steps = 10usize;
    const B: usize = 6;
    let m = build_models(window);

    let streams: Vec<Vec<AbrObservation>> =
        (0..B).map(|s| AbrObservation::synthetic_stream(900 + s as u64, steps)).collect();

    // One full-context session exactly (the `for_model` floor): 1 layer x
    // ceil(160/8) = 20 pages. Six growing sessions want ~24-36, so the
    // guard must evict to fit — the pressure this test is about.
    let pool =
        PagePool::for_model(&m.abr.lm, PageConfig { page_tokens: 8, budget_bytes: 20 * 768 });
    let budget = 20 * 768;
    let mut server = ShardedServer::with_memory(
        2,
        AdmissionPolicy::LeastLoaded,
        pool.clone(),
        EvictionPolicy::ColdestReanchor,
    );
    let ids: Vec<_> = (0..B).map(|_| server.join(&m.abr)).collect();

    let mut pending: Vec<VecDeque<Ticket>> = vec![VecDeque::new(); B];
    let mut served: Vec<Vec<(u64, Vec<f32>)>> = vec![Vec::new(); B]; // (tick, logits)
    let mut evictions: Vec<(u64, u64)> = Vec::new(); // (tick, session)
    let mut deferrals = 0usize;
    let harvest = |server: &mut ShardedServer<NetLlmAbr>,
                   pending: &mut Vec<VecDeque<Ticket>>,
                   served: &mut Vec<Vec<(u64, Vec<f32>)>>,
                   tick: u64| {
        for (s, q) in pending.iter_mut().enumerate() {
            if let Some(&front) = q.front() {
                if let Some(_action) = server.poll(front) {
                    q.pop_front();
                    served[s].push((tick, server.last_logits(ids[s]).to_vec()));
                }
            }
        }
    };
    #[allow(clippy::needless_range_loop)]
    for step in 0..steps {
        for (s, &id) in ids.iter().enumerate() {
            let t = server.submit(id, streams[s][step].clone()).expect("submit under the cap");
            pending[s].push_back(t);
        }
        let report = server.tick(&m.abr);
        assert!(
            report.memory.used_bytes <= budget,
            "tick {}: pool {}B over budget {budget}B",
            report.tick,
            report.memory.used_bytes
        );
        assert!(
            pool.used_bytes() <= budget,
            "the pool itself can never exceed its budget (hard bound)"
        );
        for &v in &report.memory.evicted {
            evictions.push((report.tick, v));
        }
        deferrals += report.memory.deferred;
        harvest(&mut server, &mut pending, &mut served, report.tick);
    }
    // Drain the deferral backlog: every ticket must resolve.
    for _ in 0..40 {
        if pending.iter().all(VecDeque::is_empty) {
            break;
        }
        let report = server.tick(&m.abr);
        assert!(report.memory.used_bytes <= budget);
        for &v in &report.memory.evicted {
            evictions.push((report.tick, v));
        }
        harvest(&mut server, &mut pending, &mut served, report.tick);
    }
    for (s, q) in pending.iter().enumerate() {
        assert!(q.is_empty(), "session {s} has unresolved tickets (admission lost)");
        assert_eq!(served[s].len(), steps, "session {s} lost decisions");
    }
    assert!(!evictions.is_empty(), "the tight budget must actually force evictions");
    println!(
        "eviction gate (debug scale): {} evictions, {deferrals} deferrals across {B} sessions",
        evictions.len()
    );
    drop(server);
    assert_eq!(pool.used_pages(), 0);

    // ---- unbatched replay, clearing exactly where the scheduler evicted:
    // the evicted sessions must re-anchor to the same logits at 1e-5.
    for (s, &id) in ids.iter().enumerate() {
        let mut ep = m.abr.new_slot(0);
        let mut sess = InferenceSession::new(&m.abr.lm);
        let mut prev_tick = 0u64;
        for (i, o) in streams[s].iter().enumerate() {
            let (tick, want) = &served[s][i];
            if evictions.iter().any(|&(u, v)| v == id && u > prev_tick && u < *tick) {
                sess.clear(); // mirror the eviction: re-anchor from scratch
            }
            let plan = m.abr.plan_step(&mut ep, o, &sess);
            if plan.reanchor {
                sess.clear();
            }
            let hidden = sess.append(&m.abr.lm, &m.abr.store, &plan.tokens);
            let out = m.abr.settle_step(&mut ep, o, &hidden);
            assert_eq!(out.logits.len(), want.len());
            for (x, y) in out.logits.iter().zip(want) {
                assert!(
                    (x - y).abs() < 1e-5,
                    "session {s} step {i}: served {y} vs forced-clear replay {x}"
                );
            }
            prev_tick = *tick;
        }
    }
}

/// Eviction disabled: a burst whose page demand exceeds the pool defers
/// the youngest arrivals (admission backpressure), serves them on later
/// ticks, and never loses a ticket or exceeds the budget.
#[test]
fn full_pool_defers_admission_instead_of_growing() {
    let m = build_models(3);
    let samples = vp_samples();
    let pw = 6usize;
    // 20 pages (the one-full-session floor); each VP query wants 3
    // (4 saliency patches + 9 history deltas + 6 query tokens = 19 rows
    // at 8/page), so 8 one-shot queries (24 pages) cannot all fit in one
    // tick — the youngest must defer.
    let budget = 20 * 768;
    let pool = PagePool::for_model(&m.vp.lm, PageConfig { page_tokens: 8, budget_bytes: budget });
    let mut server = ShardedServer::with_memory(
        2,
        AdmissionPolicy::LeastLoaded,
        pool.clone(),
        EvictionPolicy::None,
    );

    let mut open: Vec<(u64, Ticket)> = Vec::new();
    for q in 0..8 {
        let id = server.join(&m.vp);
        let ticket = server
            .submit(id, VpQuery { sample: samples[q % samples.len()].clone(), pw })
            .expect("submit under the queue cap");
        open.push((id, ticket));
    }
    let first = server.tick(&m.vp);
    assert!(first.memory.deferred > 0, "the burst must overflow the pool and defer");
    assert!(first.served > 0, "deferral must not starve the whole tick");
    assert_eq!(first.served + first.pending, 8, "deferred arrivals stay queued");
    assert!(first.memory.used_bytes <= budget);

    let mut answered = 0usize;
    for _ in 0..10 {
        open.retain(|&(id, ticket)| {
            // One-shot sessions leave as soon as they answer, freeing
            // their pages for the deferred arrivals behind them.
            if server.poll(ticket).is_some() {
                let report = server.leave(id);
                assert!(report.is_clean());
                answered += 1;
                false
            } else {
                true
            }
        });
        if open.is_empty() {
            break;
        }
        let report = server.tick(&m.vp);
        assert!(report.memory.used_bytes <= budget, "budget must hold while draining");
    }
    assert_eq!(answered, 8, "every deferred ticket must eventually resolve");
    assert_eq!(pool.used_pages(), 0, "one-shots left; every page is home");
}

/// A pool below the one-full-context-session floor is rejected at join
/// time with sizing guidance — below it, a session's re-anchor rebuild
/// could exceed the whole pool with nothing to evict, and the queued
/// front end would defer its arrival forever. `PagePool::for_model`
/// checks one backbone; the join-time assert covers pools built with
/// `PagePool::new` and heterogeneous fleets whose other backbones were
/// never validated.
#[test]
#[should_panic(expected = "page pool too small")]
fn joining_a_pool_below_the_session_floor_panics() {
    let m = build_models(3);
    // 5 pages; one full-context 0.35b-sim session needs 20.
    let pool =
        PagePool::new(m.abr.lm.cfg.d_model, PageConfig { page_tokens: 8, budget_bytes: 5 * 768 });
    let mut server = ShardedServer::with_memory(
        1,
        AdmissionPolicy::LeastLoaded,
        pool,
        EvictionPolicy::ColdestReanchor,
    );
    let _ = server.join(&m.abr);
}

/// Regression: a lone session that grows until its next plan must
/// re-anchor, while holding essentially the whole pool, must not wedge
/// admission. The guard pre-releases a re-anchoring session's pages (the
/// rebuild never reads them), so the rebuild always fits — without that,
/// demand (charged from empty) exceeds the free list forever, the
/// arrival defers every tick, and its ticket never resolves.
#[test]
fn reanchoring_giant_session_cannot_wedge_the_pool() {
    // Window 13: the context fills (`fits` fails near step 25) before the
    // 2x-window re-anchor would trigger (step 26), so the session holds
    // 19 of 20 pool pages at the exact tick its plan needs a 10-page
    // rebuild.
    let zoo = Zoo::new(std::env::temp_dir().join("netllm-paged-serving"));
    let mut m = NetLlmAbr::new(
        zoo.build_random(&size_spec("0.35b-sim")),
        AdaptMode::NoDomain,
        LoraSpec::default(),
        13,
        34,
    );
    m.target_return = 2.0;
    let pool = PagePool::for_model(&m.lm, PageConfig { page_tokens: 8, budget_bytes: 20 * 768 });
    let mut server = ShardedServer::with_memory(
        1,
        AdmissionPolicy::LeastLoaded,
        pool.clone(),
        EvictionPolicy::ColdestReanchor,
    );
    let id = server.join(&m);
    let stream = AbrObservation::synthetic_stream(601, 27);
    let mut max_held = 0usize;
    for (i, o) in stream.iter().enumerate() {
        let ticket = server.submit(id, o.clone()).expect("submit under the cap");
        let mut resolved = false;
        for _ in 0..6 {
            let report = server.tick(&m);
            assert!(report.memory.used_bytes <= 20 * 768);
            if server.poll(ticket).is_some() {
                resolved = true;
                break;
            }
        }
        assert!(resolved, "step {i}: ticket wedged — re-anchor rebuild never admitted");
        max_held = max_held.max(pool.used_pages());
    }
    assert!(max_held >= 19, "probe must actually fill the pool (held {max_held}/20)");
}

/// The adapters' `plan_rows` must predict `plan_step` exactly — rows and
/// clear flag — including the evicted-session (empty cache) branch. The
/// memory guard's reservations are only as sound as these counts.
#[test]
fn plan_rows_matches_actual_plan_for_every_adapter() {
    let window = 3usize;
    let m = build_models(window);

    // ---- ABR: incremental, natural re-anchor, and post-eviction steps --
    let stream = AbrObservation::synthetic_stream(501, 14);
    let mut ep = m.abr.new_slot(0);
    let mut sess = InferenceSession::new(&m.abr.lm);
    let mut reanchors = 0usize;
    for (i, o) in stream.iter().enumerate() {
        if i == 9 {
            sess.clear(); // simulated eviction mid-stream
        }
        let (rows, clears) = m.abr.plan_rows(&ep, o, &sess);
        let plan = m.abr.plan_step(&mut ep, o, &sess);
        assert_eq!(clears, plan.reanchor, "ABR step {i}: clear flag diverged");
        assert_eq!(rows, plan.tokens.shape()[0], "ABR step {i}: row count diverged");
        if plan.reanchor {
            sess.clear();
            reanchors += 1;
        }
        let hidden = sess.append(&m.abr.lm, &m.abr.store, &plan.tokens);
        let _ = m.abr.settle_step(&mut ep, o, &hidden);
    }
    assert!(reanchors >= 3, "probe must cover fresh, natural and evicted re-anchors");

    // ---- CJS: history rebuilds + candidate rollback --------------------
    let obs = record_cjs_obs(29);
    assert!(obs.len() > 2 * window + 2);
    let mut ep = m.cjs.new_slot(0);
    let mut sess = InferenceSession::new(&m.cjs.lm);
    for (i, o) in obs.iter().enumerate() {
        if i == 7 {
            sess.clear(); // simulated eviction
        }
        let (rows, clears) = m.cjs.plan_rows(&ep, o, &sess);
        let plan = m.cjs.plan_step(&mut ep, o, &sess);
        assert_eq!(clears, plan.reanchor, "CJS step {i}: clear flag diverged");
        assert_eq!(rows, plan.tokens.shape()[0], "CJS step {i}: row count diverged");
        if plan.reanchor {
            sess.clear();
        }
        let hidden = sess.append(&m.cjs.lm, &m.cjs.store, &plan.tokens);
        let out = m.cjs.settle_step(&mut ep, o, &hidden);
        if let Some(RollbackPlan { drop_rows, post_tokens }) = out.rollback {
            sess.truncate(sess.len() - drop_rows);
            let _ = sess.append(&m.cjs.lm, &m.cjs.store, &post_tokens);
        }
    }

    // ---- VP: one-shot query, always a clear ----------------------------
    let sample = &vp_samples()[0];
    let slot = m.vp.new_slot(0);
    let sess = InferenceSession::new(&m.vp.lm);
    let q = VpQuery { sample: sample.clone(), pw: 5 };
    let (rows, clears) = m.vp.plan_rows(&slot, &q, &sess);
    let mut slot = slot;
    let plan = m.vp.plan_step(&mut slot, &q, &sess);
    assert!(clears && plan.reanchor, "VP always rebuilds");
    assert_eq!(rows, plan.tokens.shape()[0], "VP row count diverged");
}

/// Property: `CheapestRebuild`'s price ([`ServedTask::rebuild_rows`])
/// equals the extra rows the re-anchor replay actually appends —
/// `plan_rows(cleared).0 − plan_rows(intact).0` whenever the intact plan
/// would not re-anchor, and 0 whenever it would (grown history or an
/// already-empty cache make the rebuild inevitable, so eviction costs
/// nothing extra). Checked at every step of live ABR and CJS streams
/// (incremental, natural re-anchor, post-eviction, candidate rollback), a
/// VP one-shot, and through the fleet's per-variant delegation. The
/// streams stay far below the context limit, so CJS's documented
/// conservative edge (`!fits` depends on the next observation) never
/// fires and the price must be exact.
#[test]
fn rebuild_rows_price_equals_the_reanchor_replay_delta() {
    let window = 3usize;
    let m = build_models(window);
    let fleet = NetLlmFleet { abr: &m.abr, cjs: &m.cjs, vp: &m.vp };

    // ---- ABR: incremental, natural re-anchor, post-eviction ------------
    let stream = AbrObservation::synthetic_stream(701, 14);
    let mut ep = m.abr.new_slot(0);
    let mut sess = InferenceSession::new(&m.abr.lm);
    let mut priced_steps = 0usize;
    for (i, o) in stream.iter().enumerate() {
        if i == 9 {
            sess.clear(); // simulated eviction mid-stream
        }
        let priced = m.abr.rebuild_rows(&ep, &sess);
        assert_eq!(
            fleet.rebuild_rows(&FleetSlot::Abr(ep.clone()), &sess),
            priced,
            "ABR step {i}: fleet delegation diverged from the adapter's price"
        );
        let (intact_rows, clears) = m.abr.plan_rows(&ep, o, &sess);
        if clears {
            assert_eq!(priced, 0, "ABR step {i}: an inevitable re-anchor must price 0");
        } else {
            let (cleared_rows, cleared_clears) =
                m.abr.plan_rows(&ep, o, &InferenceSession::new(&m.abr.lm));
            assert!(cleared_clears, "ABR step {i}: a cleared session must re-anchor");
            assert_eq!(
                priced,
                cleared_rows - intact_rows,
                "ABR step {i}: price != re-anchor replay delta"
            );
            priced_steps += 1;
        }
        let plan = m.abr.plan_step(&mut ep, o, &sess);
        if plan.reanchor {
            sess.clear();
        }
        let hidden = sess.append(&m.abr.lm, &m.abr.store, &plan.tokens);
        let _ = m.abr.settle_step(&mut ep, o, &hidden);
    }
    assert!(priced_steps >= 5, "ABR probe must exercise non-zero prices ({priced_steps})");

    // ---- CJS: history rebuilds + candidate rollback ---------------------
    let obs = record_cjs_obs(39);
    assert!(obs.len() > 2 * window + 2);
    let mut ep = m.cjs.new_slot(0);
    let mut sess = InferenceSession::new(&m.cjs.lm);
    priced_steps = 0;
    for (i, o) in obs.iter().enumerate() {
        if i == 7 {
            sess.clear(); // simulated eviction
        }
        let priced = m.cjs.rebuild_rows(&ep, &sess);
        assert_eq!(
            fleet.rebuild_rows(&FleetSlot::Cjs(ep.clone()), &sess),
            priced,
            "CJS step {i}: fleet delegation diverged from the adapter's price"
        );
        let (intact_rows, clears) = m.cjs.plan_rows(&ep, o, &sess);
        if clears {
            assert_eq!(priced, 0, "CJS step {i}: an inevitable re-anchor must price 0");
        } else {
            let (cleared_rows, cleared_clears) =
                m.cjs.plan_rows(&ep, o, &InferenceSession::new(&m.cjs.lm));
            assert!(cleared_clears, "CJS step {i}: a cleared session must re-anchor");
            assert_eq!(
                priced,
                cleared_rows - intact_rows,
                "CJS step {i}: price != re-anchor replay delta"
            );
            if priced > 0 {
                priced_steps += 1;
            }
        }
        let plan = m.cjs.plan_step(&mut ep, o, &sess);
        if plan.reanchor {
            sess.clear();
        }
        let hidden = sess.append(&m.cjs.lm, &m.cjs.store, &plan.tokens);
        let out = m.cjs.settle_step(&mut ep, o, &hidden);
        if let Some(RollbackPlan { drop_rows, post_tokens }) = out.rollback {
            sess.truncate(sess.len() - drop_rows);
            let _ = sess.append(&m.cjs.lm, &m.cjs.store, &post_tokens);
        }
    }
    assert!(priced_steps >= 3, "CJS probe must exercise non-zero prices ({priced_steps})");

    // ---- VP: one-shot, the rebuild is always inevitable -----------------
    let sample = &vp_samples()[0];
    let mut slot = m.vp.new_slot(0);
    let mut sess = InferenceSession::new(&m.vp.lm);
    let q = VpQuery { sample: sample.clone(), pw: 5 };
    assert_eq!(m.vp.rebuild_rows(&slot, &sess), 0, "VP prices 0 on an empty cache");
    let plan = m.vp.plan_step(&mut slot, &q, &sess);
    let _ = sess.append(&m.vp.lm, &m.vp.store, &plan.tokens);
    assert_eq!(m.vp.rebuild_rows(&slot, &sess), 0, "VP re-anchors every query: price 0");
    assert_eq!(fleet.rebuild_rows(&FleetSlot::Vp(slot), &sess), 0);
    let (_, clears) = m.vp.plan_rows(&slot, &q, &sess);
    assert!(clears, "a 0 price must coincide with an inevitable re-anchor");
}

/// Regression (defer-then-evict): when pool pressure hits a tick where
/// *every* page-holding session has an arrival in the drained batch, the
/// guard must sacrifice by eviction-policy order — here the coldest
/// session — sparing the oldest arrival, and the sacrifice's own arrival
/// is deferred so it is never served in the tick that cleared its cache.
/// Before the fix the victim-exclusion set was recomputed per loop
/// iteration: the guard deferred the *youngest* arrival for backpressure
/// and then evicted exactly that session on the next scan (it had left
/// the batch), undoing the deferral's whole point and picking the victim
/// by arrival-clock accident instead of policy order.
#[test]
fn memory_guard_sacrifices_by_policy_order_never_the_just_deferred_youngest() {
    let window = 3usize;
    const B: usize = 6;
    const COLD: usize = 3; // sits out ticks 1..=3: coldest, smallest cache
    const TICKS: usize = 5;
    let m = build_models(window);
    let streams: Vec<Vec<AbrObservation>> =
        (0..B).map(|s| AbrObservation::synthetic_stream(1100 + s as u64, TICKS)).collect();

    // 20 pages (the one-full-session floor). Five always-on sessions grow
    // 5→11→17→23→29 rows (1,2,3,3,4 pages at 8 rows/page), the cold one
    // holds 1 page, so tick 4 opens at 16 pages held / 4 free with a
    // 6-page demand — pressure with every page holder in the batch.
    let pool =
        PagePool::for_model(&m.abr.lm, PageConfig { page_tokens: 8, budget_bytes: 20 * 768 });
    let budget = 20 * 768;
    let mut server = ShardedServer::with_memory(
        2,
        AdmissionPolicy::LeastLoaded,
        pool.clone(),
        EvictionPolicy::ColdestReanchor,
    );
    let ids: Vec<_> = (0..B).map(|_| server.join(&m.abr)).collect();

    let mut pending: Vec<VecDeque<Ticket>> = vec![VecDeque::new(); B];
    let mut subs: Vec<Vec<AbrObservation>> = vec![Vec::new(); B]; // obs actually submitted
    let mut served: Vec<Vec<(u64, Vec<f32>)>> = vec![Vec::new(); B];
    let mut evictions: Vec<(u64, u64)> = Vec::new();
    let harvest = |server: &mut ShardedServer<NetLlmAbr>,
                   pending: &mut Vec<VecDeque<Ticket>>,
                   served: &mut Vec<Vec<(u64, Vec<f32>)>>,
                   tick: u64| {
        for (s, q) in pending.iter_mut().enumerate() {
            if let Some(&front) = q.front() {
                if server.poll(front).is_some() {
                    q.pop_front();
                    served[s].push((tick, server.last_logits(ids[s]).to_vec()));
                }
            }
        }
    };
    // `tick` is the schedule clock, not an index (the COLD skip window
    // and the pressure-tick assertions below read it directly).
    #[allow(clippy::needless_range_loop)]
    for tick in 0..TICKS {
        for (s, &id) in ids.iter().enumerate() {
            if s == COLD && (1..=3).contains(&tick) {
                continue;
            }
            let o = streams[s][tick].clone();
            let t = server.submit(id, o.clone()).expect("submit under the cap");
            pending[s].push_back(t);
            subs[s].push(o);
        }
        let report = server.tick(&m.abr);
        assert!(report.memory.used_bytes <= budget);
        for &v in &report.memory.evicted {
            evictions.push((report.tick, v));
        }
        if tick < TICKS - 1 {
            assert_eq!(
                (report.memory.evicted.len(), report.memory.deferred),
                (0, 0),
                "tick {tick}: warmup must stay pressure-free"
            );
        } else {
            // The pressure tick. Everyone is in the batch, so the old
            // code would defer the youngest arrival (session 5) and then
            // evict it; the fix sacrifices the policy's pick — the cold
            // session — and defers (not drops) its arrival.
            assert_eq!(
                report.memory.evicted,
                vec![ids[COLD]],
                "the sacrifice must be the coldest session, by policy order"
            );
            assert_eq!(report.memory.deferred, 1, "the sacrifice's arrival is deferred");
        }
        harvest(&mut server, &mut pending, &mut served, report.tick);
        if tick == TICKS - 1 {
            // Every spared session was served this tick; only the
            // sacrifice waits for the next one.
            for (s, q) in pending.iter().enumerate() {
                assert_eq!(q.len(), usize::from(s == COLD), "session {s} pending after pressure");
            }
        }
    }
    for _ in 0..20 {
        if pending.iter().all(VecDeque::is_empty) {
            break;
        }
        let report = server.tick(&m.abr);
        assert!(report.memory.used_bytes <= budget);
        for &v in &report.memory.evicted {
            evictions.push((report.tick, v));
        }
        harvest(&mut server, &mut pending, &mut served, report.tick);
    }
    for (s, q) in pending.iter().enumerate() {
        assert!(q.is_empty(), "session {s} has unresolved tickets (sacrifice lost its arrival)");
        assert_eq!(served[s].len(), subs[s].len(), "session {s} lost decisions");
    }
    drop(server);
    assert_eq!(pool.used_pages(), 0);

    // The evicted-then-rebuilt sessions must still match the unbatched
    // forced-clear replay exactly.
    for (s, &id) in ids.iter().enumerate() {
        let mut ep = m.abr.new_slot(0);
        let mut sess = InferenceSession::new(&m.abr.lm);
        let mut prev_tick = 0u64;
        for (i, o) in subs[s].iter().enumerate() {
            let (tick, want) = &served[s][i];
            if evictions.iter().any(|&(u, v)| v == id && u > prev_tick && u < *tick) {
                sess.clear();
            }
            let plan = m.abr.plan_step(&mut ep, o, &sess);
            if plan.reanchor {
                sess.clear();
            }
            let hidden = sess.append(&m.abr.lm, &m.abr.store, &plan.tokens);
            let out = m.abr.settle_step(&mut ep, o, &hidden);
            for (x, y) in out.logits.iter().zip(want) {
                assert!(
                    (x - y).abs() < 1e-5,
                    "session {s} step {i}: served {y} vs forced-clear replay {x}"
                );
            }
            prev_tick = *tick;
        }
    }
}

//! Property tests for the evict-vs-crash seam: a shard crash destroys KV
//! mid-flight (a CJS candidate may be half-applied, an ABR session
//! mid-window), and recovery re-anchors the salvaged sessions from their
//! episode logs on a survivor — the same path eviction takes, so the same
//! invariants must hold under *randomized* kill schedules:
//!
//! - **replay fidelity** — every recovered session's logits match the
//!   unbatched no-fault replay at 1e-5, whether the kill lands before the
//!   drain (the shard goes dark between ticks) or mid-tick (its drained
//!   batch is orphaned in the dead process), and whether the victim is
//!   the CJS session (candidate rollback state) or the ABR sessions
//!   (re-anchor window state);
//! - **no ticket hangs** — under kills, poisons and dropped batches every
//!   ticket resolves `Served` or `Failed` once the queues drain;
//! - **no page leaks** — `used + free == capacity` holds at every tick
//!   boundary across salvage, re-admission and capacity retirement, and
//!   every page is home once the server drops.
//!
//! Models are built once (the backbone is the expensive part); each
//! proptest case is one randomized fault schedule against them.

use netllm::{
    AdaptMode, AdmissionPolicy, CjsObs, EvictionPolicy, FaultPlan, FleetObs, HealthConfig,
    InferenceSession, LoraSpec, NetLlmAbr, NetLlmCjs, NetLlmFleet, NetLlmVp, RollbackPlan,
    ServedTask, ShardedServer, SubmitRetry, Ticket, TicketStatus, FLEET_ABR, FLEET_CJS,
};
use nt_abr::AbrObservation;
use nt_cjs::{generate_workload, run_workload, Srpt, WorkloadConfig};
use nt_llm::{size_spec, PageConfig, PagePool, Zoo};
use proptest::prelude::*;
use std::collections::VecDeque;
use std::sync::OnceLock;

const WINDOW: usize = 3;
const STEPS: usize = 6;

struct Models {
    abr: NetLlmAbr,
    cjs: NetLlmCjs,
    vp: NetLlmVp,
}

fn models() -> &'static Models {
    static M: OnceLock<Models> = OnceLock::new();
    M.get_or_init(|| {
        let zoo = Zoo::new(std::env::temp_dir().join("netllm-fault-recovery"));
        let mut abr = NetLlmAbr::new(
            zoo.build_random(&size_spec("0.35b-sim")),
            AdaptMode::NoDomain,
            LoraSpec::default(),
            WINDOW,
            41,
        );
        abr.target_return = 2.0;
        let mut cjs = NetLlmCjs::new(
            zoo.build_random(&size_spec("0.35b-sim")),
            AdaptMode::NoDomain,
            LoraSpec::default(),
            WINDOW,
            42,
        );
        cjs.target_return = -1.0;
        let vp = NetLlmVp::new(
            zoo.build_random(&size_spec("0.35b-sim")),
            AdaptMode::NoDomain,
            LoraSpec::default(),
            8,
            43,
        );
        Models { abr, cjs, vp }
    })
}

fn record_cjs_obs(seed: u64) -> Vec<CjsObs> {
    let jobs = generate_workload(&WorkloadConfig { num_jobs: 4, mean_interarrival: 1.5, seed });
    let mut obs = Vec::new();
    let mut hook =
        |view: &nt_cjs::SchedView, _d: &nt_cjs::Decision| obs.push(CjsObs::from_view(view));
    run_workload(&mut Srpt, &jobs, 6, Some(&mut hook));
    obs
}

/// Unbatched no-fault ABR replay: the logits every served/recovered step
/// must reproduce at 1e-5.
fn abr_reference(m: &NetLlmAbr, obs: &[AbrObservation]) -> Vec<Vec<f32>> {
    let mut ep = m.new_slot(0);
    let mut sess = InferenceSession::new(&m.lm);
    obs.iter()
        .map(|o| {
            let plan = m.plan_step(&mut ep, o, &sess);
            if plan.reanchor {
                sess.clear();
            }
            let hidden = sess.append(&m.lm, &m.store, &plan.tokens);
            m.settle_step(&mut ep, o, &hidden).logits
        })
        .collect()
}

/// Unbatched no-fault CJS replay, candidate rollbacks applied.
fn cjs_reference(m: &NetLlmCjs, obs: &[CjsObs]) -> Vec<Vec<f32>> {
    let mut ep = m.new_slot(0);
    let mut sess = InferenceSession::new(&m.lm);
    obs.iter()
        .map(|o| {
            let plan = m.plan_step(&mut ep, o, &sess);
            if plan.reanchor {
                sess.clear();
            }
            let hidden = sess.append(&m.lm, &m.store, &plan.tokens);
            let out = m.settle_step(&mut ep, o, &hidden);
            if let Some(RollbackPlan { drop_rows, post_tokens }) = out.rollback {
                sess.truncate(sess.len() - drop_rows);
                let _ = sess.append(&m.lm, &m.store, &post_tokens);
            }
            out.logits
        })
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// K=2 mixed fleet, one randomized kill: the CJS session (candidate
    /// rollback state) or the ABR session (re-anchor window state) loses
    /// its home shard before the drain or mid-tick. Every ticket must
    /// resolve Served in FIFO order with logits equal to the unbatched
    /// no-fault replay — crash recovery is eviction plus re-admission,
    /// nothing more.
    #[test]
    fn killed_fleet_shard_reanchors_cjs_and_abr_on_the_survivor(
        kill_tick in 2u64..6,
        mid_tick_bit in 0u8..2,
        kill_cjs_bit in 0u8..2,
    ) {
        let (mid_tick, kill_cjs_home) = (mid_tick_bit == 1, kill_cjs_bit == 1);
        let m = models();
        let fleet = NetLlmFleet { abr: &m.abr, cjs: &m.cjs, vp: &m.vp };
        let abr_obs = AbrObservation::synthetic_stream(71, STEPS);
        let cjs_obs = record_cjs_obs(73);
        prop_assert!(cjs_obs.len() >= STEPS, "CJS probe too short: {}", cjs_obs.len());
        let cjs_obs = &cjs_obs[..STEPS];
        let expected = [abr_reference(&m.abr, &abr_obs), cjs_reference(&m.cjs, cjs_obs)];

        let mut server = ShardedServer::with_policy(2, AdmissionPolicy::LeastLoaded);
        server.set_health_config(HealthConfig::fast());
        let ids = [server.join_group(&fleet, FLEET_ABR), server.join_group(&fleet, FLEET_CJS)];
        let victim = server.shard_of(ids[usize::from(kill_cjs_home)]);
        server.inject(if mid_tick {
            FaultPlan::new().kill(kill_tick, victim)
        } else {
            FaultPlan::new().kill_before_drain(kill_tick, victim)
        });

        let obs_of = |s: usize, i: usize| -> FleetObs {
            match s {
                0 => FleetObs::Abr(abr_obs[i].clone()),
                _ => FleetObs::Cjs(cjs_obs[i].clone()),
            }
        };
        let mut next = [0usize; 2];
        let mut retry = [SubmitRetry::new(), SubmitRetry::new()];
        let mut open: [VecDeque<(usize, Ticket)>; 2] = Default::default();
        let mut served = [0usize; 2];
        for t in 1..=24u64 {
            for s in 0..2 {
                if next[s] < STEPS && retry[s].ready(t) {
                    match server.submit(ids[s], obs_of(s, next[s])) {
                        Ok(ticket) => {
                            open[s].push_back((next[s], ticket));
                            retry[s].succeeded();
                            next[s] += 1;
                        }
                        Err(e) => {
                            prop_assert!(
                                e.is_retry_after_tick(),
                                "only a suspect shard refuses here"
                            );
                            retry[s].refused(t, &e);
                        }
                    }
                }
            }
            let _ = server.tick(&fleet);
            for s in 0..2 {
                while let Some(&(i, ticket)) = open[s].front() {
                    match server.poll_status(ticket) {
                        TicketStatus::Served(_) => {
                            let got = server.last_logits(ids[s]);
                            prop_assert_eq!(got.len(), expected[s][i].len());
                            for (x, y) in got.iter().zip(&expected[s][i]) {
                                prop_assert!(
                                    (x - y).abs() < 1e-5,
                                    "session {} step {}: served {} vs no-fault replay {}",
                                    s, i, x, y
                                );
                            }
                            served[s] += 1;
                            open[s].pop_front();
                        }
                        TicketStatus::Failed => {
                            return Err(format!(
                                "session {s} step {i}: a kill must requeue, never fail"
                            ));
                        }
                        TicketStatus::Requeued | TicketStatus::Pending => break,
                    }
                }
            }
        }
        prop_assert_eq!(served, [STEPS; 2]); // every submitted step must serve
        prop_assert!(open.iter().all(VecDeque::is_empty), "no ticket may hang");
        prop_assert!(server.health().state(victim).is_dead());
        // The victim's session lands on the survivor.
        prop_assert_eq!(server.shard_of(ids[usize::from(kill_cjs_home)]), 1 - victim);
        let f = server.metrics().snapshot().faults;
        prop_assert_eq!(f.shard_kills, 1);
        prop_assert!(f.sessions_recovered >= 1);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// K=3 paged server under randomized kill schedules (down to one
    /// survivor) plus a poison and a dropped batch: the page pool must
    /// balance `used + free == capacity` at every tick boundary through
    /// salvage, re-admission and capacity retirement; every ticket must
    /// reach Served or Failed; and every page must be home once the
    /// server drops.
    #[test]
    fn pool_pages_balance_under_arbitrary_kill_schedules(
        seed in 0u64..1_000_000,
        survivors in 1usize..3,
    ) {
        const SESSIONS: usize = 4;
        const PAGES: usize = 60;
        let m = &models().abr;
        let streams: Vec<Vec<AbrObservation>> =
            (0..SESSIONS).map(|s| AbrObservation::synthetic_stream(800 + s as u64, 4)).collect();
        let pool = PagePool::for_model(
            &m.lm,
            PageConfig { page_tokens: 8, budget_bytes: PAGES * 768 },
        );
        let mut server = ShardedServer::with_memory(
            3,
            AdmissionPolicy::LeastLoaded,
            pool.clone(),
            EvictionPolicy::ColdestReanchor,
        );
        server.set_health_config(HealthConfig::fast());
        let ids: Vec<_> = (0..SESSIONS).map(|_| server.join(m)).collect();

        let kills = 3 - survivors;
        let mut plan = FaultPlan::random_kills(seed, 3, survivors, 2, 8);
        plan = plan
            .poison(3 + seed % 4, ids[(seed % SESSIONS as u64) as usize])
            .drop_batch(4 + seed % 3, (seed % 3) as usize);
        server.inject(plan);

        let mut next = [0usize; SESSIONS];
        let mut retry: Vec<SubmitRetry> = (0..SESSIONS).map(|_| SubmitRetry::new()).collect();
        let mut open: Vec<(usize, Ticket)> = Vec::new();
        let mut terminal = 0usize;
        let mut last_retired = 0usize;
        for t in 1..=30u64 {
            for s in 0..SESSIONS {
                if next[s] < streams[s].len() && retry[s].ready(t) {
                    match server.submit(ids[s], streams[s][next[s]].clone()) {
                        Ok(ticket) => {
                            open.push((s, ticket));
                            retry[s].succeeded();
                            next[s] += 1;
                        }
                        Err(e) => retry[s].refused(t, &e),
                    }
                }
            }
            let _ = server.tick(m);
            let stats = server.pool_stats().expect("memory fleet exposes its pool");
            // Pool accounting must balance across recovery at every tick.
            prop_assert_eq!(stats.used_pages + stats.free_pages, stats.capacity_pages);
            prop_assert!(
                stats.retired_pages >= last_retired,
                "retirement is one-way"
            );
            last_retired = stats.retired_pages;
            open.retain(|&(_, ticket)| {
                match server.poll_status(ticket) {
                    TicketStatus::Served(_) | TicketStatus::Failed => {
                        terminal += 1;
                        false
                    }
                    TicketStatus::Requeued | TicketStatus::Pending => true,
                }
            });
        }
        prop_assert!(open.is_empty(), "every ticket must reach Served or Failed");
        prop_assert_eq!(terminal, next.iter().sum::<usize>()); // resolutions consumed once
        let f = server.metrics().snapshot().faults;
        prop_assert_eq!(f.shard_kills, kills as u64); // every scheduled kill is declared
        let stats = server.pool_stats().unwrap();
        prop_assert!(stats.retired_pages > 0, "a dead shard surrenders pool capacity");
        prop_assert!(
            stats.capacity_pages >= 20,
            "retirement is clamped above the one-session floor"
        );
        drop(server);
        prop_assert_eq!(pool.used_pages(), 0); // every page is home after the server drops
        let stats = pool.stats();
        prop_assert_eq!(stats.used_pages + stats.free_pages, stats.capacity_pages);
    }
}

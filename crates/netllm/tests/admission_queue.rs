//! Property tests for the [`AdmissionQueue`] invariants behind continuous
//! batching: under arbitrary interleavings of submits, tick drains and
//! session removals,
//!
//! - **no ticket is lost or double-served** — every accepted arrival
//!   leaves the queue exactly once;
//! - **FIFO within a session** — a session's arrivals leave in push order
//!   (drains take at most one arrival per session per tick);
//! - **backpressure** — a push fails exactly when the queue is full
//!   (returning the arrival intact), so admissions never grow the queue
//!   past its cap. (`requeue` — steering's move-don't-drop path — is the
//!   documented exception and has its own unit test in `sched.rs`.)

use netllm::sched::SessionKey;
use netllm::{AdmissionQueue, Arrival, Ticket};
use proptest::prelude::*;

fn arrival(ticket: u64, session: SessionKey) -> Arrival<u64> {
    Arrival { ticket: Ticket(ticket), session, group: 0, obs: ticket }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    #[test]
    fn no_ticket_lost_or_double_served_under_any_interleaving(
        ops in proptest::collection::vec((0u8..6, 0u64..4), 1..160),
        cap in 1usize..9,
    ) {
        let mut q: AdmissionQueue<u64> = AdmissionQueue::with_capacity(cap);
        let mut next_ticket = 0u64;
        // (ticket, session) accepted into the queue / having left it, in
        // temporal order.
        let mut accepted: Vec<(u64, SessionKey)> = Vec::new();
        let mut left: Vec<(u64, SessionKey)> = Vec::new();
        for (op, session) in ops {
            match op {
                // Weight pushes heavier than drains so backpressure binds.
                0..=3 => {
                    let a = arrival(next_ticket, session);
                    match q.push(a) {
                        Ok(()) => {
                            accepted.push((next_ticket, session));
                            next_ticket += 1;
                        }
                        Err(back) => {
                            // Push fails exactly at the cap, and the
                            // refused arrival comes back intact.
                            prop_assert_eq!(q.len(), cap);
                            prop_assert_eq!(back.ticket, Ticket(next_ticket));
                            prop_assert_eq!(back.obs, next_ticket);
                        }
                    }
                }
                4 => {
                    let batch = q.drain_tick();
                    // At most one arrival per session per tick.
                    let mut sessions: Vec<SessionKey> =
                        batch.iter().map(|a| a.session).collect();
                    let n = sessions.len();
                    sessions.sort_unstable();
                    sessions.dedup();
                    prop_assert!(sessions.len() == n, "tick drained a session twice");
                    left.extend(batch.iter().map(|a| (a.ticket.0, a.session)));
                }
                _ => {
                    let removed = q.remove_session(session);
                    prop_assert!(removed.iter().all(|a| a.session == session));
                    left.extend(removed.iter().map(|a| (a.ticket.0, a.session)));
                }
            }
            prop_assert!(q.len() <= cap, "queue grew past its backpressure cap");
        }
        // Flush whatever is still queued.
        loop {
            let batch = q.drain_tick();
            if batch.is_empty() {
                break;
            }
            left.extend(batch.iter().map(|a| (a.ticket.0, a.session)));
        }
        prop_assert!(q.is_empty());

        // Conservation: the multiset of arrivals that left the queue is
        // exactly the multiset accepted — nothing lost, nothing served
        // twice.
        let mut a_sorted = accepted.clone();
        let mut l_sorted = left.clone();
        a_sorted.sort_unstable();
        l_sorted.sort_unstable();
        prop_assert!(a_sorted == l_sorted, "tickets lost or double-served");

        // FIFO within a session: each session's tickets leave in the
        // order they were pushed (tickets are issued monotonically).
        for s in 0..4u64 {
            let seq: Vec<u64> =
                left.iter().filter(|&&(_, ss)| ss == s).map(|&(t, _)| t).collect();
            prop_assert!(
                seq.windows(2).all(|w| w[0] < w[1]),
                "session {} served out of order: {:?}", s, seq
            );
        }
    }
}

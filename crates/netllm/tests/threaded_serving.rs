//! Banded (threaded) serving must be bit-compatible with the sequential
//! single-stream path. Lives in its own test binary so `NT_THREADS` can
//! be pinned before the pool's `OnceLock` is first read.

use netllm::{AdaptMode, LoraSpec, NetLlmAbr, ServingEngine};
use nt_abr::{AbrObservation, AbrPolicy};
use nt_llm::{size_spec, Zoo};

fn obs_stream(seed: u64, len: usize) -> Vec<AbrObservation> {
    AbrObservation::synthetic_stream(seed, len)
}

#[test]
#[allow(clippy::needless_range_loop)]
fn threaded_bands_match_sequential_rollouts() {
    std::env::set_var("NT_THREADS", "4");
    assert_eq!(nt_tensor::pool::num_threads(), 4);

    let loaded = Zoo::new(std::env::temp_dir().join("netllm-threaded-serving"))
        .build_random(&size_spec("7b-sim"));
    let mut m = NetLlmAbr::new(loaded, AdaptMode::NoDomain, LoraSpec::default(), 4, 3);
    m.target_return = 2.0;
    let batch = 10usize; // not a multiple of the band count: ragged last band
    let chunks = 10usize;
    let streams: Vec<Vec<AbrObservation>> =
        (0..batch).map(|s| obs_stream(50 + s as u64, chunks)).collect();

    let mut engine = ServingEngine::new();
    let ids: Vec<_> = (0..batch).map(|_| engine.join(&m)).collect();
    let mut batched: Vec<Vec<(usize, Vec<f32>)>> = vec![Vec::new(); batch];
    for c in 0..chunks {
        let reqs: Vec<_> = ids.iter().enumerate().map(|(s, &id)| (id, &streams[s][c])).collect();
        let actions = engine.step(&m, &reqs);
        for (s, act) in actions.into_iter().enumerate() {
            batched[s].push((act, engine.last_logits(ids[s]).to_vec()));
        }
    }

    for (s, obs) in streams.iter().enumerate() {
        m.reset();
        for (c, o) in obs.iter().enumerate() {
            let act = m.select(o);
            let (bact, blogits) = &batched[s][c];
            assert_eq!(act, *bact, "stream {s} chunk {c}: threaded action diverged");
            for (x, y) in m.last_logits().iter().zip(blogits) {
                assert!(
                    (x - y).abs() < 1e-5,
                    "stream {s} chunk {c}: threaded {y} vs sequential {x}"
                );
            }
        }
    }
}

use netllm::*;
use nt_llm::{profile_spec, Profile, Zoo};
use nt_tensor::Rng;

#[test]
#[ignore]
fn prompt_generation_dump() {
    let zoo = Zoo::new(std::env::temp_dir().join("prompt-probe-zoo"));
    let backbone = zoo.load_or_pretrain(&profile_spec(Profile::LlamaSim), 300);
    let data = build_vp_data(&VP_DEFAULT, Fidelity::Smoke);
    let mut model = PromptVp::new(backbone, LoraSpec::default(), 1);
    for round in 0..4 {
        let loss = model.adapt(&data.train, 600, 1e-3, 2 + round);
        let mut rng = Rng::seeded(9);
        let mut valid = 0;
        for s in &data.test[..10] {
            let (p, _, _) = model.generate(s, &mut rng);
            if p.is_some() {
                valid += 1;
            }
        }
        println!("round {round}: answer-loss {loss:.3} valid {valid}/10");
    }
    for temp in [0.0f32, 0.2, 0.4] {
        let m2 = &mut model;
        m2.temperature = temp;
        let mut rng = Rng::seeded(9);
        let mut valid = 0;
        for s in &data.test[..14] {
            let (p, _, _) = m2.generate(s, &mut rng);
            if p.is_some() {
                valid += 1;
            }
        }
        println!("temp {temp}: valid {valid}/14");
    }
    let mut rng = Rng::seeded(9);
    for s in &data.test[..3] {
        let prompt_ids = model.tok.encode(&render_prompt(&s.history));
        let (out, _) =
            model.lm.generate(&model.store, &prompt_ids, 80, model.temperature, &mut rng);
        println!("PROMPT: {}", render_prompt(&s.history));
        println!("WANT  : {}", render_answer(&s.future));
        println!("GOT   : {:?}", model.tok.decode(&out));
    }
}

#[test]
#[ignore]
fn teacher_forced_accuracy() {
    use nt_nn::Fwd;
    let zoo = Zoo::new(std::env::temp_dir().join("prompt-probe-zoo"));
    let backbone = zoo.load_or_pretrain(&profile_spec(Profile::LlamaSim), 300);
    let data = build_vp_data(&VP_DEFAULT, Fidelity::Smoke);
    let mut model = PromptVp::new(backbone, LoraSpec::default(), 1);
    model.adapt(&data.train, 2400, 1e-3, 2);
    // teacher-forced argmax accuracy per answer position on TEST samples
    let mut per_pos: Vec<(usize, usize)> = vec![(0, 0); 60];
    for s in &data.test {
        let prompt = render_prompt(&s.history);
        let answer = render_answer(&s.future);
        let mut ids = model.tok.encode(&prompt);
        let p = ids.len();
        ids.extend(model.tok.encode(&answer));
        ids.push(nt_llm::EOS);
        let mut f = Fwd::eval();
        let logits = model.lm.forward_logits(&mut f, &model.store, &ids[..ids.len() - 1]);
        let lv = f.g.value(logits);
        for (k, &target) in ids[p..].iter().enumerate() {
            let row = lv.row(p - 1 + k);
            let mut best = 0;
            for (j, &x) in row.iter().enumerate() {
                if x > row[best] {
                    best = j;
                }
            }
            if k < 60 {
                per_pos[k].1 += 1;
                if best == target {
                    per_pos[k].0 += 1;
                }
            }
        }
    }
    for (k, (c, t)) in per_pos.iter().enumerate().take(20) {
        if *t > 0 {
            println!("pos {k}: {:.0}%", 100.0 * *c as f64 / *t as f64);
        }
    }
    let tot: (usize, usize) = per_pos.iter().fold((0, 0), |a, b| (a.0 + b.0, a.1 + b.1));
    println!("overall teacher-forced argmax accuracy: {:.1}%", 100.0 * tot.0 as f64 / tot.1 as f64);
}

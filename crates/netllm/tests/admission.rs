//! Admission-policy behaviour through a real served fleet: `LeastLoaded`
//! placement, `CacheAware` budget steering (no-op below the budget, steers
//! above it), and the double-migration regression — rebalance-on-leave and
//! cache-aware steering both firing in one tick cycle must never steer the
//! same session twice.

use netllm::{AdmissionPolicy, NetLlmAbr, ShardedServer, Ticket};
use nt_abr::{AbrObservation, AbrPolicy};
use nt_llm::{size_spec, Zoo};

fn model(window: usize, seed: u64) -> NetLlmAbr {
    let loaded = Zoo::new(std::env::temp_dir().join("netllm-admission-test"))
        .build_random(&size_spec("0.35b-sim"));
    let mut m = NetLlmAbr::new(
        loaded,
        netllm::AdaptMode::NoDomain,
        netllm::LoraSpec::default(),
        window,
        seed,
    );
    m.target_return = 2.0;
    m
}

/// Submit one observation per session, tick once, poll every ticket.
fn serve_round(
    server: &mut ShardedServer<NetLlmAbr>,
    m: &NetLlmAbr,
    ids: &[u64],
    obs: &[AbrObservation],
) -> netllm::TickReport {
    let tickets: Vec<Ticket> =
        ids.iter().map(|&id| server.submit(id, obs[0].clone()).unwrap()).collect();
    let report = server.tick(m);
    for t in tickets {
        server.poll(t).expect("submitted ticket must resolve after the tick");
    }
    report
}

#[test]
fn least_loaded_placement_spreads_joins_evenly() {
    let m = model(4, 31);
    let mut server = ShardedServer::with_policy(2, AdmissionPolicy::LeastLoaded);
    let ids: Vec<u64> = (0..4).map(|_| server.join(&m)).collect();
    // Deterministic alternation: ties break to the lowest shard index.
    let shards: Vec<usize> = ids.iter().map(|&id| server.shard_of(id)).collect();
    assert_eq!(shards, vec![0, 1, 0, 1]);
    assert_eq!(server.active_per_shard(), vec![2, 2]);
}

#[test]
fn cache_aware_noop_below_budget_steers_above_and_respects_it() {
    let m = model(3, 32);
    let obs = AbrObservation::synthetic_stream(77, 12);

    // Start under LeastLoaded so four sessions spread 2/2, and grow some
    // KV state.
    let mut server = ShardedServer::with_policy(2, AdmissionPolicy::LeastLoaded);
    let ids: Vec<u64> = (0..4).map(|_| server.join(&m)).collect();
    for round in 0..3 {
        let report = serve_round(&mut server, &m, &ids, &obs[round..]);
        assert!(report.steered.is_empty(), "LeastLoaded must not steer: {report:?}");
        assert_eq!(report.served_by_label, vec![("abr", 4)]);
    }
    let total = server.cache_bytes();
    let per_session = total / 4;
    assert!(per_session > 0, "sessions must hold KV bytes by now");

    // Generous budget: the steering pass must be a no-op even with the
    // fleet imbalanced 3/1.
    server.set_policy(AdmissionPolicy::CacheAware { budget_bytes: 2 * total });
    let on1 = ids.iter().copied().find(|&id| server.shard_of(id) == 1).unwrap();
    server.steer(on1, 0);
    assert_eq!(server.active_per_shard(), vec![3, 1]);
    let report = server.tick(&m); // empty tick: steering pass only
                                  // The manual steer above is part of this tick cycle's report…
    assert_eq!(report.steered, vec![on1]);
    // …but the cache pass itself must not have moved anyone else.
    assert_eq!(server.active_per_shard(), vec![3, 1], "below budget the pass is a no-op");

    // Budget between 2 and 3 sessions' bytes: exactly one steer fixes the
    // 3/1 skew, and every shard lands under the budget.
    let budget = per_session * 5 / 2;
    server.set_policy(AdmissionPolicy::CacheAware { budget_bytes: budget });
    let report = server.tick(&m);
    assert_eq!(report.steered.len(), 1, "one migration must fix the skew: {report:?}");
    let bytes = server.cache_bytes_per_shard();
    assert!(
        bytes.iter().all(|&b| b <= budget),
        "every shard must fit the budget {budget}: {bytes:?}"
    );
    assert_eq!(server.active_per_shard(), vec![2, 2]);
    // Stable below the budget: a further tick steers nobody.
    let report = server.tick(&m);
    assert!(report.steered.is_empty(), "under-budget fleet must be stable: {report:?}");

    // Steering preserved every session's stream: continue serving and
    // compare against the unbatched path.
    let mut m_ref = model(3, 32);
    for &id in &ids {
        let t = server.submit(id, obs[3].clone()).unwrap();
        let _ = server.tick(&m);
        let _ = server.poll(t).unwrap();
        m_ref.reset();
        let mut expected = Vec::new();
        for o in &obs[..4] {
            let _ = m_ref.select(o);
            expected = m_ref.last_logits().to_vec();
        }
        for (x, y) in server.last_logits(id).iter().zip(&expected) {
            assert!((x - y).abs() < 1e-5, "steered session {id} diverged: {x} vs {y}");
        }
    }
}

#[test]
fn victimless_hot_shard_does_not_block_steering_cooler_shards() {
    // Regression for the steering pass giving up on the *hottest*
    // over-budget shard: when every session there was already steered
    // this tick cycle, the pass must move on to cooler over-budget shards
    // that still hold eligible, improving victims instead of breaking
    // out. The post-condition of a finished pass: any shard still over
    // budget either had all its sessions steered this cycle or has no
    // strictly-improving move left.
    let m = model(3, 34);
    let obs = AbrObservation::synthetic_stream(99, 6);

    let mut server = ShardedServer::with_policy(3, AdmissionPolicy::LeastLoaded);
    let ids: Vec<u64> = (0..7).map(|_| server.join(&m)).collect();
    assert_eq!(server.active_per_shard(), vec![3, 2, 2]);
    for round in 0..2 {
        let _ = serve_round(&mut server, &m, &ids, &obs[round..]);
    }
    let per_session = server.cache_bytes() / 7;
    assert!(per_session > 0);

    // Build: shard 2 = four sessions, all steered this cycle (hottest,
    // victimless); shard 0 = three unsteered sessions (over budget,
    // fixable); shard 1 = empty (headroom).
    server.steer(ids[2], 1); // bounce shard 2's residents to mark them
    server.steer(ids[2], 2);
    server.steer(ids[5], 1);
    server.steer(ids[5], 2);
    server.steer(ids[1], 2); // shard 1 donates both sessions
    server.steer(ids[4], 2);
    assert_eq!(server.active_per_shard(), vec![3, 0, 4]);

    let budget = per_session * 5 / 2;
    server.set_policy(AdmissionPolicy::CacheAware { budget_bytes: budget });
    let report = server.tick(&m);
    // Shard 0 (3 sessions, over budget, free victims, empty shard 1 to
    // move to) must have been fixed even though the hotter shard 2 had no
    // eligible victim left.
    let bytes = server.cache_bytes_per_shard();
    assert!(bytes[0] <= budget, "cooler over-budget shard was not fixed: {bytes:?} vs {budget}");
    assert!(report.steered.contains(&ids[0]), "lowest-id coldest victim moves: {report:?}");
    assert_eq!(server.shard_of(ids[0]), 1, "victim lands on the empty shard");
    // Whatever is still over budget is exactly the all-steered shard.
    for (shard, &shard_bytes) in bytes.iter().enumerate() {
        if shard_bytes <= budget {
            continue;
        }
        for &id in ids.iter().filter(|&&id| server.shard_of(id) == shard) {
            assert!(
                report.steered.contains(&id),
                "shard {shard} is over budget ({shard_bytes} > {budget}) yet session {id} \
                 was never steered this cycle: {report:?}"
            );
        }
    }
}

#[test]
fn rebalance_and_cache_steering_never_double_migrate_in_one_tick() {
    let m = model(3, 33);
    let obs = AbrObservation::synthetic_stream(88, 8);

    let mut server = ShardedServer::with_policy(3, AdmissionPolicy::LeastLoaded);
    let ids: Vec<u64> = (0..7).map(|_| server.join(&m)).collect();
    assert_eq!(server.active_per_shard(), vec![3, 2, 2]);
    for round in 0..2 {
        let _ = serve_round(&mut server, &m, &ids, &obs[round..]);
    }
    let logits_before: Vec<Vec<f32>> =
        ids.iter().map(|&id| server.last_logits(id).to_vec()).collect();

    // Drop a shard-1 session: the 3/1/2 skew triggers rebalance-on-leave,
    // which steers the lowest-id shard-0 session (the victim) to shard 1.
    let victim = ids[0];
    let _ = server.leave(ids[1]);
    assert_eq!(server.active_per_shard(), vec![2, 2, 2], "rebalance-on-leave must level");
    assert_eq!(server.shard_of(victim), 1, "rebalance steers the lowest-id victim");

    // Pile a third session onto the victim's shard: shard 1 is now the
    // only over-budget shard, and the victim is its lowest-id, coldest
    // session — exactly what the cache pass would pick were it not
    // already steered this cycle.
    server.steer(ids[6], 1);
    assert_eq!(server.active_per_shard(), vec![1, 3, 2]);
    let per_session = server.cache_bytes() / 6;
    server.set_policy(AdmissionPolicy::CacheAware { budget_bytes: per_session * 5 / 2 });

    let report = server.tick(&m);
    assert!(
        report.steered.contains(&victim),
        "the rebalance steer belongs to this tick cycle: {report:?}"
    );
    assert!(
        report.steered.len() > 2,
        "the cache pass must have fired in the same cycle: {report:?}"
    );
    assert_eq!(
        server.shard_of(victim),
        1,
        "a session steered by rebalance must not be steered again by the cache pass"
    );
    // The pass moved shard 1's one unguarded session instead (ids[4]),
    // bringing every shard under budget without a double migration.
    assert_eq!(server.active_per_shard(), vec![2, 2, 2]);
    // Double-migration would also have to preserve the victim's logits —
    // the single sanctioned steer certainly must.
    assert_eq!(server.last_logits(victim), &logits_before[0][..]);

    // The cycle closed: a further tick is stable and steers nobody.
    let report = server.tick(&m);
    assert!(report.steered.is_empty(), "under-budget fleet must be stable: {report:?}");
}

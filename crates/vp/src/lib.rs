//! # nt-vp
//!
//! Viewport-prediction substrate: synthetic head-motion datasets with
//! saliency frames, wrap-aware angular metrics, and the paper's baselines
//! (LR, Velocity, TRACK).
//!
//! ## Feature inventory
//!
//! - [`metrics`] — yaw-wrapping angle math, the paper's MAE, delta
//!   encode/decode helpers
//! - [`motion`] — POI-driven head-motion generator, Jin2022-like and
//!   Wu2017-like dataset profiles (Table 2), 8x8 saliency frames rendered
//!   from the same POIs (so the image modality is informative)
//! - [`baselines`] — LR (Flare-style), Velocity (LiveObj-style), Static
//! - [`track`] — LSTM encoder-decoder with saliency fusion, variable
//!   prediction horizon (needed by the unseen settings)
//!
//! Not implemented (by design): real video decoding; saliency is generated,
//! not extracted from pixels.

#![forbid(unsafe_code)]

pub mod baselines;
pub mod metrics;
pub mod motion;
pub mod track;

pub use baselines::{evaluate, evaluate_each, LinearRegression, Static, Velocity, VpPredictor};
pub use metrics::{ang_diff, apply_deltas, mae, to_deltas, viewport_error, wrap_deg, Viewport};
pub use motion::{
    cell_center, extract_samples, generate, jin2022_like, render_saliency, wu2017_like,
    DatasetSpec, MotionProfile, VideoMotion, ViewportTrace, VpDataset, VpSample, GRID, HZ,
};
pub use track::Track;

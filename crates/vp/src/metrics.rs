//! Angular utilities and the VP error metric (paper §A.6).
//!
//! Viewports are `(roll, pitch, yaw)` in degrees. Yaw lives on the circle
//! `[-180, 180)` and all differences are computed wrap-aware; pitch and roll
//! are bounded and treated linearly. The paper's MAE averages the three
//! coordinates' absolute errors over the prediction horizon.

/// A viewport orientation in degrees.
pub type Viewport = [f32; 3];

/// Wrap an angle to `[-180, 180)`.
pub fn wrap_deg(mut d: f32) -> f32 {
    while d >= 180.0 {
        d -= 360.0;
    }
    while d < -180.0 {
        d += 360.0;
    }
    d
}

/// Smallest signed angular difference `a - b`, in `[-180, 180)`.
pub fn ang_diff(a: f32, b: f32) -> f32 {
    wrap_deg(a - b)
}

/// Per-sample error: mean of the three coordinates' absolute (wrap-aware for
/// yaw) differences.
pub fn viewport_error(pred: &Viewport, actual: &Viewport) -> f32 {
    let roll = (pred[0] - actual[0]).abs();
    let pitch = (pred[1] - actual[1]).abs();
    let yaw = ang_diff(pred[2], actual[2]).abs();
    (roll + pitch + yaw) / 3.0
}

/// MAE over a predicted horizon.
pub fn mae(pred: &[Viewport], actual: &[Viewport]) -> f32 {
    assert_eq!(pred.len(), actual.len(), "horizon mismatch");
    assert!(!pred.is_empty());
    pred.iter().zip(actual).map(|(p, a)| viewport_error(p, a)).sum::<f32>() / pred.len() as f32
}

/// Apply a sequence of per-step deltas to a starting viewport, wrapping yaw
/// and clamping pitch/roll to their physical ranges.
pub fn apply_deltas(start: &Viewport, deltas: &[[f32; 3]]) -> Vec<Viewport> {
    let mut cur = *start;
    deltas
        .iter()
        .map(|d| {
            cur[0] = (cur[0] + d[0]).clamp(-45.0, 45.0);
            cur[1] = (cur[1] + d[1]).clamp(-90.0, 90.0);
            cur[2] = wrap_deg(cur[2] + d[2]);
            cur
        })
        .collect()
}

/// Per-step deltas between consecutive viewports (wrap-aware yaw).
pub fn to_deltas(vps: &[Viewport]) -> Vec<[f32; 3]> {
    vps.windows(2)
        .map(|w| [w[1][0] - w[0][0], w[1][1] - w[0][1], ang_diff(w[1][2], w[0][2])])
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn wrap_is_idempotent_and_in_range() {
        for d in [-720.0, -180.0, -179.9, 0.0, 179.9, 180.0, 540.0] {
            let w = wrap_deg(d);
            assert!((-180.0..180.0).contains(&w), "{d} -> {w}");
            assert_eq!(wrap_deg(w), w);
        }
    }

    #[test]
    fn yaw_error_takes_short_way_around() {
        let p: Viewport = [0.0, 0.0, 179.0];
        let a: Viewport = [0.0, 0.0, -179.0];
        assert!((viewport_error(&p, &a) - 2.0 / 3.0).abs() < 1e-5);
    }

    #[test]
    fn mae_of_identical_sequences_is_zero() {
        let seq = vec![[1.0, 2.0, 3.0], [4.0, 5.0, 6.0]];
        assert_eq!(mae(&seq, &seq), 0.0);
    }

    #[test]
    fn deltas_roundtrip_through_apply() {
        let vps = vec![
            [0.0, 0.0, 170.0],
            [1.0, -2.0, 178.0],
            [2.0, -4.0, -174.0], // wrapped past 180
        ];
        let deltas = to_deltas(&vps);
        let rebuilt = apply_deltas(&vps[0], &deltas);
        for (r, v) in rebuilt.iter().zip(&vps[1..]) {
            assert!(viewport_error(r, v) < 1e-4, "{r:?} vs {v:?}");
        }
    }

    #[test]
    fn apply_deltas_clamps_pitch() {
        let out = apply_deltas(&[0.0, 85.0, 0.0], &[[0.0, 20.0, 0.0]]);
        assert_eq!(out[0][1], 90.0);
    }
}

//! TRACK-like learning-based VP baseline (Rondón et al., TPAMI'22).
//!
//! TRACK is the paper's state-of-the-art VP comparator: an LSTM
//! encoder-decoder over head motion fused with video saliency. This
//! reproduction keeps the architecture family: an LSTM encodes history
//! *deltas*, a linear projection of the saliency frame is fused into the
//! encoder state, and an LSTM decoder rolls the horizon out step by step
//! (so a model trained at one horizon can be evaluated at longer ones, as
//! the paper's unseen settings require). Outputs are per-step deltas applied
//! to the last observed viewport — wrap-safe by construction.

use crate::baselines::VpPredictor;
use crate::metrics::{apply_deltas, to_deltas, Viewport};
use crate::motion::{VpSample, GRID};
use nt_nn::{clip_grad_norm, Adam, Fwd, Init, Linear, Lstm, ParamStore};
use nt_tensor::{NodeId, Rng, Tensor};

/// Scale between degrees and network units.
const DELTA_SCALE: f32 = 5.0;
const HIDDEN: usize = 24;

/// The TRACK model.
pub struct Track {
    pub store: ParamStore,
    enc: Lstm,
    sal_proj: Linear,
    dec: Lstm,
    head: Linear,
}

impl Track {
    pub fn new(seed: u64) -> Self {
        let mut store = ParamStore::new();
        let mut rng = Rng::seeded(seed);
        let enc = Lstm::new(&mut store, "track.enc", 3, HIDDEN, &mut rng);
        let sal_proj =
            Linear::new(&mut store, "track.sal", GRID * GRID, HIDDEN, true, Init::Xavier, &mut rng);
        let dec = Lstm::new(&mut store, "track.dec", 3, HIDDEN, &mut rng);
        let head = Linear::new(&mut store, "track.head", HIDDEN, 3, true, Init::Xavier, &mut rng);
        Track { store, enc, sal_proj, dec, head }
    }

    /// Encode history+saliency, then decode `pw` delta predictions.
    /// `teacher` (training only) supplies ground-truth deltas as decoder
    /// inputs; at evaluation the decoder feeds back its own outputs.
    fn rollout(
        &self,
        f: &mut Fwd,
        sample: &VpSample,
        pw: usize,
        teacher: Option<&[[f32; 3]]>,
    ) -> Vec<NodeId> {
        let hist_deltas = to_deltas(&sample.history);
        let t = hist_deltas.len();
        let mut flat = Vec::with_capacity(t * 3);
        for d in &hist_deltas {
            flat.extend(d.iter().map(|x| x / DELTA_SCALE));
        }
        let x = f.input(Tensor::from_vec([t, 3], flat));
        let (_, h_enc, _) = self.enc.forward(f, &self.store, x);
        let sal = f.input(sample.saliency.clone().reshape([1, GRID * GRID]));
        let sal_h = self.sal_proj.forward(f, &self.store, sal);
        let sal_h = f.g.tanh(sal_h);
        let fused = f.g.add(h_enc, sal_h); // [1, HIDDEN]

        // Decoder: single-layer LSTM stepped manually, state seeded by the
        // fused encoding.
        let mut h = fused;
        let mut c = f.input(Tensor::zeros([1, HIDDEN]));
        let mut prev_delta: NodeId = {
            let last = hist_deltas.last().copied().unwrap_or([0.0; 3]);
            f.input(Tensor::from_vec([1, 3], last.iter().map(|x| x / DELTA_SCALE).collect()))
        };
        let mut outs = Vec::with_capacity(pw);
        for k in 0..pw {
            let gi = self.dec.w_ih.forward(f, &self.store, prev_delta);
            let gh = self.dec.w_hh.forward(f, &self.store, h);
            let gates = f.g.add(gi, gh);
            let i = f.g.narrow(gates, 1, 0, HIDDEN);
            let fg = f.g.narrow(gates, 1, HIDDEN, HIDDEN);
            let gc = f.g.narrow(gates, 1, 2 * HIDDEN, HIDDEN);
            let o = f.g.narrow(gates, 1, 3 * HIDDEN, HIDDEN);
            let i = f.g.sigmoid(i);
            let fg = f.g.sigmoid(fg);
            let gc = f.g.tanh(gc);
            let o = f.g.sigmoid(o);
            let fc = f.g.mul(fg, c);
            let ig = f.g.mul(i, gc);
            c = f.g.add(fc, ig);
            let tc = f.g.tanh(c);
            h = f.g.mul(o, tc);
            let delta = self.head.forward(f, &self.store, h); // [1,3]
            outs.push(delta);
            prev_delta = match teacher {
                Some(t_deltas) if k < t_deltas.len() => f.input(Tensor::from_vec(
                    [1, 3],
                    t_deltas[k].iter().map(|x| x / DELTA_SCALE).collect(),
                )),
                _ => delta,
            };
        }
        outs
    }

    /// Supervised training on extracted samples.
    pub fn train(&mut self, samples: &[VpSample], epochs: usize, lr: f32, seed: u64) -> f32 {
        assert!(!samples.is_empty());
        let mut opt = Adam::new(lr);
        let mut rng = Rng::seeded(seed);
        let mut order: Vec<usize> = (0..samples.len()).collect();
        let mut last_loss = f32::MAX;
        for ep in 0..epochs {
            rng.shuffle(&mut order);
            let mut total = 0.0f64;
            for (step, &i) in order.iter().enumerate() {
                let s = &samples[i];
                let mut full = vec![*s.history.last().unwrap()];
                full.extend_from_slice(&s.future);
                let target_deltas = to_deltas(&full);
                let pw = target_deltas.len();
                let mut f = Fwd::train(seed ^ (ep * 10_000 + step) as u64);
                // Model-feedback rollout (no teacher forcing): the decoder
                // trains on the same input distribution it sees at test time.
                let outs = self.rollout(&mut f, s, pw, None);
                let pred = f.g.concat(&outs, 0); // [pw, 3]
                let mut tflat = Vec::with_capacity(pw * 3);
                for d in &target_deltas {
                    tflat.extend(d.iter().map(|x| x / DELTA_SCALE));
                }
                let tgt = f.input(Tensor::from_vec([pw, 3], tflat));
                let loss = f.g.mse(pred, tgt);
                total += f.g.value(loss).item() as f64;
                let mut grads = f.backward(loss);
                clip_grad_norm(&mut grads, 1.0);
                opt.step(&mut self.store, &grads);
            }
            last_loss = (total / samples.len() as f64) as f32;
        }
        last_loss
    }
}

impl VpPredictor for Track {
    fn name(&self) -> &str {
        "TRACK"
    }

    fn predict(&mut self, sample: &VpSample, pw: usize) -> Vec<Viewport> {
        let mut f = Fwd::eval_no_tape();
        let outs = self.rollout(&mut f, sample, pw, None);
        let deltas: Vec<[f32; 3]> = outs
            .iter()
            .map(|&n| {
                let v = f.g.value(n).data();
                [v[0] * DELTA_SCALE, v[1] * DELTA_SCALE, v[2] * DELTA_SCALE]
            })
            .collect();
        apply_deltas(sample.history.last().unwrap(), &deltas)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::baselines::{evaluate, Static};
    use crate::motion::{extract_samples, generate, jin2022_like, DatasetSpec};

    #[test]
    fn untrained_track_produces_valid_horizon() {
        let ds = generate(&DatasetSpec { videos: 1, viewers: 1, secs: 15, ..jin2022_like() });
        let samples = extract_samples(&ds, &[0], &[0], 10, 20, 10, 5);
        let mut track = Track::new(1);
        let p = track.predict(&samples[0], 20);
        assert_eq!(p.len(), 20);
        for v in &p {
            assert!((-180.0..180.0).contains(&v[2]));
        }
    }

    #[test]
    fn variable_horizon_is_supported() {
        let ds = generate(&DatasetSpec { videos: 1, viewers: 1, secs: 15, ..jin2022_like() });
        let samples = extract_samples(&ds, &[0], &[0], 10, 30, 10, 5);
        let mut track = Track::new(2);
        assert_eq!(track.predict(&samples[0], 30).len(), 30);
        assert_eq!(track.predict(&samples[0], 7).len(), 7);
    }

    #[test]
    fn training_reduces_loss_and_tracks_static_or_better() {
        // Full-budget training (used by the figure benches) beats all the
        // rule baselines; this unit test uses a tiny budget and only checks
        // the direction of travel: loss drops and the model lands in the
        // Static ballpark rather than diverging.
        let ds = generate(&DatasetSpec { videos: 2, viewers: 4, secs: 30, ..jin2022_like() });
        let train = extract_samples(&ds, &[0], &[0, 1, 2], 10, 20, 5, 100);
        let test = extract_samples(&ds, &[1], &[3], 10, 20, 7, 40);
        let mut track = Track::new(3);
        let l1 = track.train(&train, 1, 2e-3, 42);
        let l2 = track.train(&train, 3, 2e-3, 43);
        assert!(l2 < l1, "loss should drop: {l1} -> {l2}");
        let track_mae = evaluate(&mut track, &test, 20);
        let static_mae = evaluate(&mut Static, &test, 20);
        assert!(
            track_mae < static_mae * 1.25,
            "tiny-budget TRACK ({track_mae:.2}) should be near Static ({static_mae:.2})"
        );
    }
}

//! Rule-based VP baselines: linear regression and velocity extrapolation
//! (paper §A.3).

use crate::metrics::{ang_diff, apply_deltas, Viewport};
use crate::motion::VpSample;

/// A viewport predictor: history (+optional saliency) -> future horizon.
pub trait VpPredictor {
    fn name(&self) -> &str;
    fn predict(&mut self, sample: &VpSample, pw: usize) -> Vec<Viewport>;
}

/// Linear regression per coordinate over the history window (Flare-style),
/// extrapolated over the horizon. Yaw is unwrapped before fitting.
pub struct LinearRegression;

impl VpPredictor for LinearRegression {
    fn name(&self) -> &str {
        "LR"
    }

    fn predict(&mut self, sample: &VpSample, pw: usize) -> Vec<Viewport> {
        let h = &sample.history;
        let n = h.len();
        assert!(n >= 2);
        // Unwrap yaw into a continuous series.
        let mut series = vec![[0.0f32; 3]; n];
        series[0] = h[0];
        for i in 1..n {
            series[i][0] = h[i][0];
            series[i][1] = h[i][1];
            series[i][2] = series[i - 1][2] + ang_diff(h[i][2], h[i - 1][2]);
        }
        // Least squares slope/intercept per coordinate (x = 0..n-1).
        let xbar = (n as f32 - 1.0) / 2.0;
        let denom: f32 = (0..n).map(|i| (i as f32 - xbar) * (i as f32 - xbar)).sum();
        let mut out = Vec::with_capacity(pw);
        let mut coeffs = [[0.0f32; 2]; 3];
        for c in 0..3 {
            let ybar: f32 = series.iter().map(|s| s[c]).sum::<f32>() / n as f32;
            let num: f32 = (0..n).map(|i| (i as f32 - xbar) * (series[i][c] - ybar)).sum();
            let slope = if denom > 0.0 { num / denom } else { 0.0 };
            coeffs[c] = [slope, ybar - slope * xbar];
        }
        let mut deltas = Vec::with_capacity(pw);
        let last_fit: Vec<f32> =
            (0..3).map(|c| coeffs[c][0] * (n as f32 - 1.0) + coeffs[c][1]).collect();
        let mut prev = [last_fit[0], last_fit[1], last_fit[2]];
        for k in 0..pw {
            let x = (n + k) as f32;
            let cur = [
                coeffs[0][0] * x + coeffs[0][1],
                coeffs[1][0] * x + coeffs[1][1],
                coeffs[2][0] * x + coeffs[2][1],
            ];
            deltas.push([cur[0] - prev[0], cur[1] - prev[1], cur[2] - prev[2]]);
            prev = cur;
        }
        out.extend(apply_deltas(h.last().unwrap(), &deltas));
        out
    }
}

/// Velocity-based prediction (LiveObj-style): the mean velocity of the last
/// few samples, decayed over the horizon (raw constant-velocity diverges on
/// long horizons; a mild decay is the standard practical variant).
pub struct Velocity {
    pub window: usize,
    pub decay: f32,
}

impl Default for Velocity {
    fn default() -> Self {
        Velocity { window: 4, decay: 0.88 }
    }
}

impl VpPredictor for Velocity {
    fn name(&self) -> &str {
        "Velocity"
    }

    fn predict(&mut self, sample: &VpSample, pw: usize) -> Vec<Viewport> {
        let h = &sample.history;
        let n = h.len();
        let w = self.window.min(n - 1).max(1);
        let mut vel = [0.0f32; 3];
        for i in n - w..n {
            vel[0] += h[i][0] - h[i - 1][0];
            vel[1] += h[i][1] - h[i - 1][1];
            vel[2] += ang_diff(h[i][2], h[i - 1][2]);
        }
        for v in &mut vel {
            *v /= w as f32;
        }
        let mut deltas = Vec::with_capacity(pw);
        let mut cur = vel;
        for _ in 0..pw {
            deltas.push(cur);
            for v in &mut cur {
                *v *= self.decay;
            }
        }
        apply_deltas(h.last().unwrap(), &deltas)
    }
}

/// Static baseline: repeat the last viewport (occasionally used as a floor).
pub struct Static;

impl VpPredictor for Static {
    fn name(&self) -> &str {
        "Static"
    }

    fn predict(&mut self, sample: &VpSample, pw: usize) -> Vec<Viewport> {
        vec![*sample.history.last().unwrap(); pw]
    }
}

/// Evaluate a predictor's MAE over a sample set at horizon `pw`.
pub fn evaluate(pred: &mut dyn VpPredictor, samples: &[VpSample], pw: usize) -> f32 {
    assert!(!samples.is_empty());
    let mut total = 0.0f64;
    for s in samples {
        let p = pred.predict(s, pw);
        let actual = &s.future[..pw.min(s.future.len())];
        total += crate::metrics::mae(&p[..actual.len()], actual) as f64;
    }
    (total / samples.len() as f64) as f32
}

/// Per-sample MAEs (for CDF plots).
pub fn evaluate_each(pred: &mut dyn VpPredictor, samples: &[VpSample], pw: usize) -> Vec<f32> {
    samples
        .iter()
        .map(|s| {
            let p = pred.predict(s, pw);
            let actual = &s.future[..pw.min(s.future.len())];
            crate::metrics::mae(&p[..actual.len()], actual)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::motion::{extract_samples, generate, jin2022_like, DatasetSpec};

    fn samples() -> Vec<crate::motion::VpSample> {
        // Large enough a pool that the baseline ranking (momentum helps at
        // 1 s) is not an artifact of one small draw.
        let ds = generate(&DatasetSpec { videos: 3, viewers: 6, secs: 40, ..jin2022_like() });
        extract_samples(&ds, &[0, 1, 2], &[0, 1, 2, 3, 4, 5], 10, 20, 7, 300)
    }

    #[test]
    fn lr_fits_a_perfect_line() {
        let history: Vec<Viewport> = (0..10).map(|i| [0.0, i as f32, 2.0 * i as f32]).collect();
        let future: Vec<Viewport> = (10..15).map(|i| [0.0, i as f32, 2.0 * i as f32]).collect();
        let s = VpSample {
            history,
            future: future.clone(),
            saliency: nt_tensor::Tensor::zeros([8, 8]),
        };
        let p = LinearRegression.predict(&s, 5);
        assert!(crate::metrics::mae(&p, &future) < 0.1);
    }

    #[test]
    fn velocity_tracks_constant_motion_initially() {
        let history: Vec<Viewport> = (0..10).map(|i| [0.0, 0.0, 3.0 * i as f32]).collect();
        let s = VpSample { history, future: vec![], saliency: nt_tensor::Tensor::zeros([8, 8]) };
        let p = Velocity::default().predict(&s, 3);
        assert!((ang_diff(p[0][2], 30.0)).abs() < 1.0, "first step ~30deg, got {}", p[0][2]);
    }

    #[test]
    fn predictors_beat_static_at_short_horizon() {
        // Extrapolation helps where momentum dominates (1 s); at long
        // horizons saccades make naive extrapolation risky, so we only
        // require it not to blow up there.
        let ss = samples();
        let stat_short = evaluate(&mut Static, &ss, 5);
        let lr_short = evaluate(&mut LinearRegression, &ss, 5);
        let vel_short = evaluate(&mut Velocity::default(), &ss, 5);
        assert!(lr_short < stat_short, "LR {lr_short} vs static {stat_short}");
        assert!(vel_short < stat_short, "Velocity {vel_short} vs static {stat_short}");
        let stat_long = evaluate(&mut Static, &ss, 20);
        let lr_long = evaluate(&mut LinearRegression, &ss, 20);
        assert!(lr_long < 2.5 * stat_long, "LR must not diverge: {lr_long} vs {stat_long}");
    }

    #[test]
    fn evaluate_each_matches_mean() {
        let ss = samples();
        let per = evaluate_each(&mut Velocity::default(), &ss, 10);
        let mean = per.iter().sum::<f32>() / per.len() as f32;
        let agg = evaluate(&mut Velocity::default(), &ss, 10);
        assert!((mean - agg).abs() < 1e-3);
    }
}

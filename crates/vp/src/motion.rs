//! Synthetic head-motion datasets and saliency frames.
//!
//! The generator models a viewer watching an immersive video: a handful of
//! moving points of interest (POIs) on the sphere attract the viewer's gaze;
//! the head follows with momentum, occasionally saccading to a different
//! POI. This yields traces that are short-term predictable (momentum) but
//! long-term multimodal (saccades) — the regime real head-motion datasets
//! exhibit — and makes the *video content* genuinely informative, because
//! the saliency frames are rendered from the same POIs that drive motion.
//!
//! Two dataset profiles mirror the paper's (Table 2): `Jin2022`-like (27
//! videos x 84 viewers x 60 s) and `Wu2017`-like (9 longer videos x 48
//! viewers with more exploratory motion).

use crate::metrics::{wrap_deg, Viewport};
use nt_tensor::{Rng, Tensor};

/// Samples per second of viewport traces (the paper uses 5 Hz).
pub const HZ: usize = 5;

/// Saliency grid edge (frames are `GRID x GRID`).
pub const GRID: usize = 8;

/// Motion-dynamics parameters of a dataset profile.
#[derive(Clone, Copy, Debug)]
pub struct MotionProfile {
    pub num_pois: usize,
    /// Attraction gain toward the active POI (deg/s² per deg of error).
    pub attract: f32,
    /// Velocity damping per step.
    pub damping: f32,
    /// White acceleration noise (deg/s²).
    pub noise: f32,
    /// Per-step probability of saccading to another POI.
    pub saccade_prob: f32,
    /// POI drift speed (deg/s).
    pub poi_speed: f32,
    /// Maximum head velocity (deg per sample) — human heads do not teleport.
    pub vel_cap: f32,
}

/// Dataset specification.
#[derive(Clone, Copy, Debug)]
pub struct DatasetSpec {
    pub name: &'static str,
    pub videos: usize,
    pub viewers: usize,
    pub secs: usize,
    pub profile: MotionProfile,
    pub seed: u64,
}

/// The default dataset (Jin2022-like).
pub fn jin2022_like() -> DatasetSpec {
    DatasetSpec {
        name: "jin2022-like",
        videos: 27,
        viewers: 84,
        secs: 60,
        profile: MotionProfile {
            num_pois: 3,
            attract: 3.5,
            damping: 0.85,
            noise: 0.8,
            saccade_prob: 0.008,
            poi_speed: 2.0,
            vel_cap: 5.0,
        },
        seed: 0x314,
    }
}

/// The unseen dataset (Wu2017-like): longer videos, fewer of them, more
/// exploratory viewers (faster drift, more frequent saccades).
pub fn wu2017_like() -> DatasetSpec {
    DatasetSpec {
        name: "wu2017-like",
        videos: 9,
        viewers: 48,
        secs: 120,
        profile: MotionProfile {
            num_pois: 4,
            attract: 3.0,
            damping: 0.90,
            noise: 1.8,
            saccade_prob: 0.025,
            poi_speed: 5.0,
            vel_cap: 8.0,
        },
        seed: 0x2017,
    }
}

/// One video: POI tracks plus per-sample saliency frames.
#[derive(Clone, Debug)]
pub struct VideoMotion {
    /// `pois[t][k] = (pitch, yaw)` of POI `k` at sample `t`.
    pub pois: Vec<Vec<(f32, f32)>>,
    /// Per-sample `GRID x GRID` saliency frames.
    pub saliency: Vec<Tensor>,
}

/// A viewer's trace over one video.
#[derive(Clone, Debug)]
pub struct ViewportTrace {
    pub samples: Vec<Viewport>,
    pub video: usize,
    pub viewer: usize,
}

/// A generated dataset: all videos and all traces.
pub struct VpDataset {
    pub spec: DatasetSpec,
    pub videos: Vec<VideoMotion>,
    pub traces: Vec<ViewportTrace>,
}

/// Generate the full dataset for a spec.
pub fn generate(spec: &DatasetSpec) -> VpDataset {
    let mut rng = Rng::seeded(spec.seed);
    let steps = spec.secs * HZ;
    let videos: Vec<VideoMotion> =
        (0..spec.videos).map(|_| gen_video(&spec.profile, steps, &mut rng)).collect();
    let mut traces = Vec::with_capacity(spec.videos * spec.viewers);
    for (v, video) in videos.iter().enumerate() {
        for viewer in 0..spec.viewers {
            traces.push(gen_trace(&spec.profile, video, v, viewer, &mut rng));
        }
    }
    VpDataset { spec: *spec, videos, traces }
}

fn gen_video(p: &MotionProfile, steps: usize, rng: &mut Rng) -> VideoMotion {
    let dt = 1.0 / HZ as f32;
    // POI tracks: smooth random walks on the sphere.
    let mut pos: Vec<(f32, f32)> =
        (0..p.num_pois).map(|_| (rng.uniform(-40.0, 40.0), rng.uniform(-180.0, 180.0))).collect();
    let mut vel: Vec<(f32, f32)> = (0..p.num_pois).map(|_| (0.0, 0.0)).collect();
    let mut pois = Vec::with_capacity(steps);
    let mut saliency = Vec::with_capacity(steps);
    for _ in 0..steps {
        for k in 0..p.num_pois {
            vel[k].0 = 0.9 * vel[k].0 + rng.normal() * p.poi_speed * dt;
            vel[k].1 = 0.9 * vel[k].1 + rng.normal() * p.poi_speed * dt * 2.0;
            pos[k].0 = (pos[k].0 + vel[k].0 * dt * HZ as f32 * dt).clamp(-60.0, 60.0);
            pos[k].1 = wrap_deg(pos[k].1 + vel[k].1 * dt * HZ as f32 * dt);
        }
        pois.push(pos.clone());
        saliency.push(render_saliency(&pos));
    }
    VideoMotion { pois, saliency }
}

/// Render POIs as Gaussian blobs on the equirectangular grid.
pub fn render_saliency(pois: &[(f32, f32)]) -> Tensor {
    let mut img = Tensor::zeros([GRID, GRID]);
    for (r, c, w) in grid_iter() {
        let (pitch, yaw) = cell_center(r, c);
        let mut v = 0.0f32;
        for &(pp, py) in pois {
            let dp = (pitch - pp) / 30.0;
            let dy = wrap_deg(yaw - py) / 45.0;
            v += (-0.5 * (dp * dp + dy * dy)).exp();
        }
        img.data_mut()[w] = v.min(2.0);
    }
    img
}

fn grid_iter() -> impl Iterator<Item = (usize, usize, usize)> {
    (0..GRID).flat_map(move |r| (0..GRID).map(move |c| (r, c, r * GRID + c)))
}

/// Centre (pitch, yaw) of a saliency cell.
pub fn cell_center(row: usize, col: usize) -> (f32, f32) {
    let pitch = 90.0 - (row as f32 + 0.5) * (180.0 / GRID as f32);
    let yaw = -180.0 + (col as f32 + 0.5) * (360.0 / GRID as f32);
    (pitch, yaw)
}

fn gen_trace(
    p: &MotionProfile,
    video: &VideoMotion,
    vid: usize,
    viewer: usize,
    rng: &mut Rng,
) -> ViewportTrace {
    let dt = 1.0 / HZ as f32;
    let steps = video.pois.len();
    let mut pitch = rng.uniform(-20.0, 20.0);
    let mut yaw = rng.uniform(-180.0, 180.0);
    let mut roll = 0.0f32;
    let (mut vp, mut vy) = (0.0f32, 0.0f32);
    let mut target = rng.below(p.num_pois);
    let mut samples = Vec::with_capacity(steps);
    for t in 0..steps {
        if rng.chance(p.saccade_prob) {
            target = rng.below(p.num_pois);
        }
        let (tp, ty) = video.pois[t][target];
        let ep = (tp - pitch).clamp(-60.0, 60.0);
        let ey = wrap_deg(ty - yaw).clamp(-90.0, 90.0);
        vp = (p.damping * vp + (p.attract * ep + rng.normal() * p.noise) * dt * dt * HZ as f32)
            .clamp(-p.vel_cap, p.vel_cap);
        vy = (p.damping * vy
            + (p.attract * ey + rng.normal() * p.noise * 1.5) * dt * dt * HZ as f32)
            .clamp(-p.vel_cap, p.vel_cap);
        // per-step velocity is in deg/sample
        pitch = (pitch + vp).clamp(-90.0, 90.0);
        yaw = wrap_deg(yaw + vy);
        roll = 0.95 * roll + rng.normal() * 0.3;
        samples.push([roll.clamp(-45.0, 45.0), pitch, yaw]);
    }
    ViewportTrace { samples, video: vid, viewer }
}

/// One supervised sample: history + saliency -> future.
#[derive(Clone, Debug)]
pub struct VpSample {
    pub history: Vec<Viewport>,
    pub future: Vec<Viewport>,
    /// Saliency frame at prediction time.
    pub saliency: Tensor,
}

/// Extract sliding-window samples from a dataset subset.
///
/// `video_sel`/`viewer_sel` filter traces; `hw`/`pw` are in *samples*;
/// `stride` subsamples windows; `limit` caps the number of samples (windows
/// are taken round-robin across traces so no single trace dominates).
pub fn extract_samples(
    ds: &VpDataset,
    video_sel: &[usize],
    viewer_sel: &[usize],
    hw: usize,
    pw: usize,
    stride: usize,
    limit: usize,
) -> Vec<VpSample> {
    assert!(hw >= 2 && pw >= 1 && stride >= 1);
    let mut per_trace: Vec<Vec<VpSample>> = Vec::new();
    for tr in &ds.traces {
        if !video_sel.contains(&tr.video) || !viewer_sel.contains(&tr.viewer) {
            continue;
        }
        let video = &ds.videos[tr.video];
        let mut windows = Vec::new();
        let mut t = hw;
        while t + pw <= tr.samples.len() {
            windows.push(VpSample {
                history: tr.samples[t - hw..t].to_vec(),
                future: tr.samples[t..t + pw].to_vec(),
                saliency: video.saliency[t - 1].clone(),
            });
            t += stride;
        }
        per_trace.push(windows);
    }
    // Round-robin merge.
    let mut out = Vec::new();
    let mut i = 0;
    loop {
        let mut any = false;
        for tw in &per_trace {
            if let Some(s) = tw.get(i) {
                out.push(s.clone());
                any = true;
                if out.len() >= limit {
                    return out;
                }
            }
        }
        if !any {
            break;
        }
        i += 1;
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::to_deltas;

    fn small_spec() -> DatasetSpec {
        DatasetSpec { videos: 2, viewers: 3, secs: 12, ..jin2022_like() }
    }

    #[test]
    fn dataset_dimensions() {
        let ds = generate(&small_spec());
        assert_eq!(ds.videos.len(), 2);
        assert_eq!(ds.traces.len(), 6);
        assert_eq!(ds.traces[0].samples.len(), 12 * HZ);
        assert_eq!(ds.videos[0].saliency.len(), 12 * HZ);
        assert_eq!(ds.videos[0].saliency[0].shape(), &[GRID, GRID]);
    }

    #[test]
    fn viewports_stay_in_physical_ranges() {
        let ds = generate(&small_spec());
        for tr in &ds.traces {
            for s in &tr.samples {
                assert!((-45.0..=45.0).contains(&s[0]), "roll {}", s[0]);
                assert!((-90.0..=90.0).contains(&s[1]), "pitch {}", s[1]);
                assert!((-180.0..180.0).contains(&s[2]), "yaw {}", s[2]);
            }
        }
    }

    #[test]
    fn motion_is_smooth_short_term() {
        // Per-sample deltas at 5 Hz should be small most of the time.
        let ds = generate(&small_spec());
        let deltas = to_deltas(&ds.traces[0].samples);
        let big = deltas.iter().filter(|d| d[2].abs() > 30.0).count();
        assert!(
            (big as f32) < 0.05 * deltas.len() as f32,
            "too many large yaw jumps: {big}/{}",
            deltas.len()
        );
    }

    #[test]
    fn saliency_peaks_near_pois() {
        let img = render_saliency(&[(0.0, 0.0)]);
        // centre cells should be brightest
        let mut best = (0, 0);
        let mut bv = f32::MIN;
        for r in 0..GRID {
            for c in 0..GRID {
                if img.at(&[r, c]) > bv {
                    bv = img.at(&[r, c]);
                    best = (r, c);
                }
            }
        }
        let (p, y) = cell_center(best.0, best.1);
        assert!(p.abs() <= 25.0 && y.abs() <= 25.0, "peak at ({p},{y})");
    }

    #[test]
    fn extract_respects_windows_and_limit() {
        let ds = generate(&small_spec());
        let samples = extract_samples(&ds, &[0, 1], &[0, 1, 2], 10, 20, 5, 40);
        assert_eq!(samples.len(), 40);
        for s in &samples {
            assert_eq!(s.history.len(), 10);
            assert_eq!(s.future.len(), 20);
        }
    }

    #[test]
    fn wu2017_profile_is_more_dynamic() {
        let jin = generate(&DatasetSpec { videos: 2, viewers: 4, secs: 20, ..jin2022_like() });
        let wu = generate(&DatasetSpec { videos: 2, viewers: 4, secs: 20, ..wu2017_like() });
        let mean_speed = |ds: &VpDataset| {
            let mut total = 0.0f32;
            let mut n = 0usize;
            for tr in &ds.traces {
                for d in to_deltas(&tr.samples) {
                    total += d[2].abs();
                    n += 1;
                }
            }
            total / n as f32
        };
        assert!(mean_speed(&wu) > mean_speed(&jin), "wu2017-like must move faster");
    }
}

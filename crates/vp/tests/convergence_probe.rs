//! Long-budget convergence probe (run explicitly with --ignored).
use nt_vp::*;

/// Oracle: noise-free mean dynamics toward the POI best aligned with the
/// current velocity (proxy upper bound for saliency-aware prediction).
struct Oracle<'a> {
    ds: &'a VpDataset,
}
impl VpPredictor for Oracle<'_> {
    fn name(&self) -> &str {
        "oracle"
    }
    fn predict(&mut self, s: &VpSample, pw: usize) -> Vec<Viewport> {
        let p = &self.ds.spec.profile;
        let last = *s.history.last().unwrap();
        let d = to_deltas(&s.history);
        let (vp0, vy0) = d.last().map(|d| (d[1], d[2])).unwrap_or((0.0, 0.0));
        // candidate POIs = bright cells; pick the one most aligned with velocity,
        // tie-broken by distance
        let mut cands: Vec<(f32, f32, f32)> = vec![]; // (pitch, yaw, weight)
        for r in 0..GRID {
            for c in 0..GRID {
                let v = s.saliency.at(&[r, c]);
                if v > 0.5 {
                    let (pp, yy) = cell_center(r, c);
                    cands.push((pp, yy, v));
                }
            }
        }
        if cands.is_empty() {
            cands.push((0.0, 0.0, 1.0));
        }
        let mut best = cands[0];
        let mut bs = f32::MIN;
        for &(pp, yy, w) in &cands {
            let ep = pp - last[1];
            let ey = ang_diff(yy, last[2]);
            let align = (ep * vp0 + ey * vy0) / ((ep * ep + ey * ey).sqrt().max(1.0));
            let dist = (ep * ep + ey * ey).sqrt();
            let score = w + 0.5 * align - 0.005 * dist;
            if score > bs {
                bs = score;
                best = (pp, yy, w);
            }
        }
        let (tp, ty) = (best.0, best.1);
        let (mut vp, mut vy) = (vp0, vy0);
        let (mut pitch, mut yaw) = (last[1], last[2]);
        let dt = 0.2f32;
        let mut out = Vec::new();
        for _ in 0..pw {
            let ep = (tp - pitch).clamp(-60.0, 60.0);
            let ey = ang_diff(ty, yaw).clamp(-90.0, 90.0);
            vp = (p.damping * vp + p.attract * ep * dt * dt * 5.0).clamp(-p.vel_cap, p.vel_cap);
            vy = (p.damping * vy + p.attract * ey * dt * dt * 5.0).clamp(-p.vel_cap, p.vel_cap);
            pitch = (pitch + vp).clamp(-90.0, 90.0);
            yaw = wrap_deg(yaw + vy);
            out.push([last[0], pitch, yaw]);
        }
        out
    }
}

#[test]
#[ignore]
fn track_long_budget() {
    let ds = generate(&DatasetSpec { videos: 4, viewers: 6, secs: 40, ..jin2022_like() });
    let train = extract_samples(&ds, &[0, 1, 2], &[0, 1, 2, 3], 10, 20, 3, 400);
    let test = extract_samples(&ds, &[3], &[4, 5], 10, 20, 7, 80);
    let stat = evaluate(&mut Static, &test, 20);
    let lr = evaluate(&mut LinearRegression, &test, 20);
    let vel = evaluate(&mut Velocity::default(), &test, 20);
    let orc = evaluate(&mut Oracle { ds: &ds }, &test, 20);
    println!("static {stat:.2} lr {lr:.2} vel {vel:.2} oracle {orc:.2}");
    let mut track = Track::new(3);
    for round in 0..6 {
        let loss = track.train(&train, 1, 2e-3, 42 + round);
        let mae = evaluate(&mut track, &test, 20);
        println!("round {round}: loss {loss:.4} track {mae:.2}");
    }
}

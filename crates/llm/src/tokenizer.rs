//! Character-level tokenizer over a fixed charset.
//!
//! The paper's LLMs use sub-word BPE; what the reproduction needs from the
//! token pathway is (a) a vocabulary that can express numeric answers (for
//! the prompt-learning / token-decoding alternatives of Figure 2), and (b) a
//! deterministic mapping both ways. A character vocabulary gives both with
//! zero training, and makes "a single number spans several tokens" — the
//! paper's latency argument — literally true.

/// Special token ids.
pub const PAD: usize = 0;
pub const BOS: usize = 1;
pub const EOS: usize = 2;
pub const UNK: usize = 3;

/// Offset where charset tokens begin.
const CHAR_BASE: usize = 4;

/// Character set: digits, letters, arithmetic/punctuation used by prompt
/// templates and the synthetic pre-training corpus.
const CHARSET: &str = "0123456789abcdefghijklmnopqrstuvwxyz .,:;()[]{}<>+-*/=_|#!?\n'\"%";

/// Deterministic char-level tokenizer.
#[derive(Clone, Debug)]
pub struct Tokenizer {
    to_id: [usize; 256],
    to_char: Vec<char>,
}

impl Default for Tokenizer {
    fn default() -> Self {
        Self::new()
    }
}

impl Tokenizer {
    pub fn new() -> Self {
        let mut to_id = [UNK; 256];
        let mut to_char = Vec::new();
        for (i, c) in CHARSET.chars().enumerate() {
            to_id[c as usize] = CHAR_BASE + i;
            to_char.push(c);
        }
        Tokenizer { to_id, to_char }
    }

    /// Vocabulary size including specials.
    pub fn vocab_size(&self) -> usize {
        CHAR_BASE + self.to_char.len()
    }

    /// Encode text (lossy: unknown chars become `UNK`, uppercase is folded).
    pub fn encode(&self, text: &str) -> Vec<usize> {
        text.chars()
            .map(|c| {
                let c = c.to_ascii_lowercase();
                if (c as usize) < 256 {
                    self.to_id[c as usize]
                } else {
                    UNK
                }
            })
            .collect()
    }

    /// Encode with BOS/EOS wrapping.
    pub fn encode_wrapped(&self, text: &str) -> Vec<usize> {
        let mut ids = vec![BOS];
        ids.extend(self.encode(text));
        ids.push(EOS);
        ids
    }

    /// Decode ids back to text; specials render as markers, `UNK` as `\u{fffd}`.
    pub fn decode(&self, ids: &[usize]) -> String {
        let mut out = String::new();
        for &id in ids {
            match id {
                PAD => {}
                BOS => {}
                EOS => break,
                UNK => out.push('\u{fffd}'),
                _ => {
                    if let Some(&c) = self.to_char.get(id - CHAR_BASE) {
                        out.push(c);
                    } else {
                        out.push('\u{fffd}');
                    }
                }
            }
        }
        out
    }

    /// Token id of a single char (must be in the charset).
    pub fn id_of(&self, c: char) -> usize {
        let id = self.to_id[c.to_ascii_lowercase() as usize];
        assert_ne!(id, UNK, "char {c:?} not in tokenizer charset");
        id
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_plain_text() {
        let t = Tokenizer::new();
        let s = "next bitrate: 1850 kbps (buffer 12.4s)";
        assert_eq!(t.decode(&t.encode(s)), s);
    }

    #[test]
    fn eos_terminates_decoding() {
        let t = Tokenizer::new();
        let mut ids = t.encode("abc");
        ids.push(EOS);
        ids.extend(t.encode("junk"));
        assert_eq!(t.decode(&ids), "abc");
    }

    #[test]
    fn unknown_chars_become_unk() {
        let t = Tokenizer::new();
        let ids = t.encode("a€b");
        assert_eq!(ids[1], UNK);
        assert_eq!(t.decode(&ids), "a\u{fffd}b");
    }

    #[test]
    fn uppercase_folds() {
        let t = Tokenizer::new();
        assert_eq!(t.encode("ABR"), t.encode("abr"));
    }

    #[test]
    fn wrapped_has_bos_eos() {
        let t = Tokenizer::new();
        let ids = t.encode_wrapped("x");
        assert_eq!(ids[0], BOS);
        assert_eq!(*ids.last().unwrap(), EOS);
    }

    #[test]
    fn vocab_ids_are_dense_and_distinct() {
        let t = Tokenizer::new();
        let mut seen = std::collections::HashSet::new();
        for c in CHARSET.chars() {
            assert!(seen.insert(t.id_of(c)), "duplicate id for {c:?}");
            assert!(t.id_of(c) < t.vocab_size());
        }
    }
}

//! The decoder-only Transformer backbone ("TinyLM").
//!
//! This is the stand-in for Llama2/OPT/Mistral in the reproduction: a causal
//! Transformer with learned positional embeddings, an LM head for the token
//! pathway, and two extra entry points NetLLM needs:
//!
//! - [`TinyLm::forward_embeddings`] — run the backbone over *pre-embedded*
//!   inputs (the multimodal encoder's token-like embeddings), returning
//!   hidden states for the networking head;
//! - [`TinyLm::attach_lora`] — freeze the backbone and attach low-rank
//!   adapters to every projection, the DD-LRNA parameter budget.
//!
//! Generation decodes incrementally against a [`KvCache`]: each emitted
//! token appends one position per layer instead of re-running the whole
//! sequence, and [`DecodeSession`] reuses the longest shared prefix across
//! calls. The per-answer *inference count* of the Figure 2 latency account
//! is unchanged — token decoding still costs one backbone inference per
//! token, each inference is just no longer quadratic in the prompt. The
//! uncached [`TinyLm::next_token_logits`] is kept as the reference path;
//! `nt-bench`'s `latency` bench and the logits-equivalence tests compare
//! the two.

use crate::paged::PagePool;
use crate::tokenizer::EOS;
use nt_nn::{
    AttnKv, Embedding, Fwd, Init, KvStorage, LayerNorm, Linear, PagedAttnKv, ParamStore,
    TransformerBlock,
};
use nt_tensor::{NodeId, Rng, Tensor};
use serde::{Deserialize, Serialize};

/// Architecture hyper-parameters.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct LmConfig {
    pub vocab: usize,
    pub d_model: usize,
    pub n_layers: usize,
    pub n_heads: usize,
    pub mlp_mult: usize,
    pub max_seq: usize,
    pub dropout: f32,
}

impl LmConfig {
    /// The default backbone used when none is specified (the "Llama2-7B" of
    /// the reproduction). `max_seq` leaves room for the prompt-learning
    /// templates of the Figure 2 comparison (position table only; attention
    /// cost scales with actual sequence length).
    pub fn base(vocab: usize) -> Self {
        LmConfig {
            vocab,
            d_model: 48,
            n_layers: 2,
            n_heads: 4,
            mlp_mult: 4,
            max_seq: 160,
            dropout: 0.0,
        }
    }
}

/// Decoder-only causal Transformer with LM head.
pub struct TinyLm {
    pub cfg: LmConfig,
    pub tok_emb: Embedding,
    pub pos_emb: Embedding,
    pub blocks: Vec<TransformerBlock>,
    pub ln_f: LayerNorm,
    pub lm_head: Linear,
}

/// Where a [`KvCache`]'s rows live: one contiguous buffer per layer (the
/// reference layout) or page tables over a shared [`PagePool`] (the
/// memory-bounded layout). The attention kernels are generic over
/// [`KvStorage`], so the two backings are bit-identical — only allocation
/// granularity differs.
enum KvBacking {
    Contig(Vec<AttnKv>),
    Paged { layers: Vec<PagedAttnKv>, pool: PagePool },
}

/// Per-layer key/value cache for incremental decoding. Filling position `t`
/// costs `O(t)` attention instead of the `O(t^2)` of a full re-forward, and
/// the cache is the *only* state the incremental path carries — weights stay
/// in the [`ParamStore`] untouched.
///
/// Two backings share every code path: the default contiguous buffers grow
/// unboundedly (until a re-anchor clears them), while [`KvCache::new_paged`]
/// draws fixed-size pages from a [`PagePool`] — appends reserve pages,
/// truncate/clear/drop return them, so total KV across every paged session
/// is hard-bounded by the pool budget.
pub struct KvCache {
    backing: KvBacking,
    dim: usize,
}

impl KvCache {
    /// Empty cache shaped for `lm` (contiguous per-layer buffers).
    pub fn new(lm: &TinyLm) -> Self {
        KvCache {
            backing: KvBacking::Contig(
                (0..lm.cfg.n_layers).map(|_| AttnKv::empty(lm.cfg.d_model)).collect(),
            ),
            dim: lm.cfg.d_model,
        }
    }

    /// Empty cache shaped for `lm`, backed by pages from `pool`. Appends
    /// allocate pages ([`KvCache::reserve`] runs inside the forward
    /// paths); truncate, clear and drop return them.
    pub fn new_paged(lm: &TinyLm, pool: &PagePool) -> Self {
        assert_eq!(
            pool.dim(),
            lm.cfg.d_model,
            "page pool sized for dim {} cannot back a dim-{} model",
            pool.dim(),
            lm.cfg.d_model
        );
        KvCache {
            backing: KvBacking::Paged {
                layers: (0..lm.cfg.n_layers)
                    .map(|_| PagedAttnKv::new(pool.page_tokens(), lm.cfg.d_model))
                    .collect(),
                pool: pool.clone(),
            },
            dim: lm.cfg.d_model,
        }
    }

    /// Whether this cache draws from a [`PagePool`].
    pub fn is_paged(&self) -> bool {
        matches!(self.backing, KvBacking::Paged { .. })
    }

    /// The pool a paged cache draws from.
    pub fn pool(&self) -> Option<&PagePool> {
        match &self.backing {
            KvBacking::Paged { pool, .. } => Some(pool),
            KvBacking::Contig(_) => None,
        }
    }

    /// Number of cached positions.
    pub fn len(&self) -> usize {
        match &self.backing {
            KvBacking::Contig(layers) => layers.first().map_or(0, AttnKv::len),
            KvBacking::Paged { layers, .. } => layers.first().map_or(0, KvStorage::len),
        }
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Forget everything (a paged cache returns every page to the pool).
    pub fn clear(&mut self) {
        self.truncate(0);
    }

    /// Roll back to the first `len` positions (prefix reuse after a
    /// divergence or a speculative suffix). Pages the shorter prefix no
    /// longer touches go straight back to the pool.
    pub fn truncate(&mut self, len: usize) {
        match &mut self.backing {
            KvBacking::Contig(layers) => {
                for kv in layers {
                    kv.truncate(len);
                }
            }
            KvBacking::Paged { layers, pool } => {
                for kv in layers {
                    kv.truncate(len);
                    pool.release_pages(kv.release_unused());
                }
            }
        }
    }

    /// Bytes held by cached keys/values across all layers. Paged caches
    /// charge whole pages (including a partially-filled tail page) — the
    /// honest number a memory budget accounts for.
    pub fn bytes(&self) -> usize {
        match &self.backing {
            KvBacking::Contig(layers) => layers.iter().map(AttnKv::bytes).sum(),
            KvBacking::Paged { layers, .. } => layers.iter().map(PagedAttnKv::bytes).sum(),
        }
    }

    /// Pages held across all layers (0 for a contiguous cache).
    pub fn pages_held(&self) -> usize {
        match &self.backing {
            KvBacking::Contig(_) => 0,
            KvBacking::Paged { layers, .. } => layers.iter().map(PagedAttnKv::pages_held).sum(),
        }
    }

    /// Pages a paged cache would have to allocate to append `rows` more
    /// positions (0 for contiguous caches).
    pub fn pages_needed(&self, rows: usize) -> usize {
        match &self.backing {
            KvBacking::Contig(_) => 0,
            KvBacking::Paged { layers, pool } => {
                let want = pool.pages_for(self.len() + rows);
                layers.iter().map(|l| want.saturating_sub(l.pages_held())).sum()
            }
        }
    }

    /// Ensure capacity for `rows` more positions, allocating pages from
    /// the pool for a paged cache (all layers, all-or-nothing). Returns
    /// `false` — taking nothing — when the pool cannot supply them; the
    /// caller must evict, defer, or fail. Contiguous caches always
    /// succeed (they grow their buffers lazily).
    pub fn try_reserve(&mut self, rows: usize) -> bool {
        let need = self.pages_needed(rows);
        if need == 0 {
            return true;
        }
        let KvBacking::Paged { layers, pool } = &mut self.backing else { return true };
        let want = pool.pages_for(KvStorage::len(&layers[0]) + rows);
        let Some(mut pages) = pool.alloc_pages(need) else { return false };
        for layer in layers {
            while layer.pages_held() < want {
                layer.push_page(pages.pop().expect("allocation covered every layer"));
            }
        }
        true
    }

    /// [`KvCache::try_reserve`] that panics when the pool is exhausted —
    /// the forward paths call this; serving layers keep it from firing by
    /// evicting or deferring ahead of the step.
    pub fn reserve(&mut self, rows: usize) {
        if !self.try_reserve(rows) {
            let pool = self.pool().expect("only paged caches can exhaust");
            panic!(
                "KV page pool exhausted: need {} pages for {rows} more rows, {} free of {} \
                 (raise the budget, evict sessions, or defer admission)",
                self.pages_needed(rows),
                pool.free_pages(),
                pool.capacity_pages()
            );
        }
    }

    /// Re-home this cache onto `target` (`None` = contiguous): a no-op
    /// when the backing already matches, otherwise the filled rows are
    /// copied into the new layout and the old pages (if any) go back to
    /// their pool. Values are preserved exactly, so a migrated session's
    /// subsequent answers are bit-identical — this is what lets a
    /// parked serving slot move between engines regardless of their
    /// memory mode. Panics when `target` cannot supply the pages.
    pub fn adopt(&mut self, target: Option<&PagePool>) {
        match (&self.backing, target) {
            (KvBacking::Contig(_), None) => return,
            (KvBacking::Paged { pool, .. }, Some(p)) if pool.same_pool(p) => return,
            _ => {}
        }
        let len = self.len();
        fn snapshot<S: KvStorage>(kv: &S, len: usize) -> (Vec<f32>, Vec<f32>) {
            let mut k = Vec::new();
            let mut v = Vec::new();
            for j in 0..len {
                k.extend_from_slice(kv.k_row(j));
                v.extend_from_slice(kv.v_row(j));
            }
            (k, v)
        }
        let rows: Vec<(Vec<f32>, Vec<f32>)> = match &self.backing {
            KvBacking::Contig(layers) => layers.iter().map(|l| snapshot(l, len)).collect(),
            KvBacking::Paged { layers, .. } => layers.iter().map(|l| snapshot(l, len)).collect(),
        };
        let new_backing = match target {
            None => KvBacking::Contig(
                rows.iter()
                    .map(|(k, v)| {
                        let mut kv = AttnKv::empty(self.dim);
                        kv.extend_rows(k, v);
                        kv
                    })
                    .collect(),
            ),
            Some(pool) => {
                assert_eq!(pool.dim(), self.dim, "adopting pool sized for another model width");
                let per_layer = pool.pages_for(len);
                let mut pages = pool.alloc_pages(per_layer * rows.len()).unwrap_or_else(|| {
                    panic!(
                        "cannot adopt session of {len} positions: needs {} pages, {} free",
                        per_layer * rows.len(),
                        pool.free_pages()
                    )
                });
                KvBacking::Paged {
                    layers: rows
                        .iter()
                        .map(|(k, v)| {
                            let mut kv = PagedAttnKv::new(pool.page_tokens(), self.dim);
                            for _ in 0..per_layer {
                                kv.push_page(pages.pop().expect("allocation covered every layer"));
                            }
                            kv.extend_rows(k, v);
                            kv
                        })
                        .collect(),
                    pool: pool.clone(),
                }
            }
        };
        let old = std::mem::replace(&mut self.backing, new_backing);
        if let KvBacking::Paged { mut layers, pool } = old {
            for l in &mut layers {
                l.truncate(0);
                pool.release_pages(l.release_unused());
            }
        }
    }
}

impl Drop for KvCache {
    /// A dropped paged cache returns every page — leave/recycle can never
    /// leak pool capacity.
    fn drop(&mut self) {
        if let KvBacking::Paged { layers, pool } = &mut self.backing {
            for l in layers {
                l.truncate(0);
                pool.release_pages(l.release_unused());
            }
        }
    }
}

/// A token-pathway decode session: the cache plus the ids it was built
/// from, so repeated [`TinyLm::next_token_logits_cached`] calls reuse the
/// longest shared prefix automatically.
pub struct DecodeSession {
    cache: KvCache,
    ids: Vec<usize>,
}

impl DecodeSession {
    /// Ids currently materialised in the cache.
    pub fn ids(&self) -> &[usize] {
        &self.ids
    }
}

/// A slot registry with stable ids: the bookkeeping every batched server
/// needs — smallest-free-id admission, removal that never disturbs other
/// slots, and distinct `&mut` extraction for a batch of ids. Shared by
/// [`BatchedDecodeSession`] (token pathway) and `nt-netllm`'s
/// `ServingEngine` (adapter rollouts).
pub struct SlotMap<T> {
    slots: Vec<Option<T>>,
}

impl<T> Default for SlotMap<T> {
    fn default() -> Self {
        SlotMap { slots: Vec::new() }
    }
}

impl<T> SlotMap<T> {
    /// Empty registry.
    pub fn new() -> Self {
        SlotMap { slots: Vec::new() }
    }

    /// Insert, returning the stable id (smallest free, recycled after
    /// [`SlotMap::remove`]).
    pub fn insert(&mut self, value: T) -> usize {
        match self.slots.iter().position(Option::is_none) {
            Some(i) => {
                self.slots[i] = Some(value);
                i
            }
            None => {
                self.slots.push(Some(value));
                self.slots.len() - 1
            }
        }
    }

    /// Remove a slot, freeing its id. Panics when the id is not live.
    pub fn remove(&mut self, id: usize) -> T {
        self.slots[id].take().unwrap_or_else(|| panic!("slot {id} is not live"))
    }

    /// Live slot count.
    pub fn active(&self) -> usize {
        self.slots.iter().filter(|s| s.is_some()).count()
    }

    /// Shared access to a live slot (panics otherwise).
    pub fn get(&self, id: usize) -> &T {
        self.slots.get(id).and_then(Option::as_ref).expect("slot not live")
    }

    /// Exclusive access to a live slot (panics otherwise).
    pub fn get_mut(&mut self, id: usize) -> &mut T {
        self.slots.get_mut(id).and_then(Option::as_mut).expect("slot not live")
    }

    /// Iterate over live slots.
    pub fn iter(&self) -> impl Iterator<Item = &T> {
        self.slots.iter().flatten()
    }

    /// Iterate over live slots with their stable ids — the enumeration an
    /// eviction policy walks to pick a victim (coldest, heaviest, …).
    pub fn iter_entries(&self) -> impl Iterator<Item = (usize, &T)> {
        self.slots.iter().enumerate().filter_map(|(i, s)| s.as_ref().map(|v| (i, v)))
    }

    /// Distinct `&mut` per requested id, in request order. Panics when an
    /// id is not live or appears twice — the invariant a batched step
    /// relies on.
    pub fn get_distinct_mut(&mut self, ids: impl Iterator<Item = usize>) -> Vec<&mut T> {
        let mut by_id: Vec<Option<&mut T>> = self.slots.iter_mut().map(|o| o.as_mut()).collect();
        ids.map(|id| {
            by_id
                .get_mut(id)
                .and_then(Option::take)
                .unwrap_or_else(|| panic!("slot {id} not live (or duplicated in batch)"))
        })
        .collect()
    }
}

/// One sequence inside a [`BatchedDecodeSession`].
struct BatchSlot {
    cache: KvCache,
    ids: Vec<usize>,
}

/// Many independent decode sessions that advance through the backbone
/// *together*: each batched call runs the projections and MLPs as single
/// stacked GEMMs over every sequence's new tokens, while each slot keeps
/// its own ragged-length KV cache and prefix-reuse bookkeeping.
///
/// Slots join and leave at any time without disturbing the others — a
/// slot id stays stable for the slot's lifetime and is recycled only
/// after `leave`.
#[derive(Default)]
pub struct BatchedDecodeSession {
    slots: SlotMap<BatchSlot>,
}

impl BatchedDecodeSession {
    /// Empty session (slots join later).
    pub fn new() -> Self {
        BatchedDecodeSession { slots: SlotMap::new() }
    }

    /// Add a fresh sequence; returns its stable slot id (smallest free).
    pub fn join(&mut self, lm: &TinyLm) -> usize {
        self.slots.insert(BatchSlot { cache: KvCache::new(lm), ids: Vec::new() })
    }

    /// Add a fresh sequence whose KV cache draws pages from `pool`;
    /// appends reserve pages, truncate and leave return them. Paged and
    /// contiguous slots cannot share one batched call (the whole batch
    /// must use one backing).
    pub fn join_paged(&mut self, lm: &TinyLm, pool: &PagePool) -> usize {
        self.slots.insert(BatchSlot { cache: KvCache::new_paged(lm, pool), ids: Vec::new() })
    }

    /// Drop a sequence, freeing its cache and recycling its id. Other
    /// slots are untouched.
    pub fn leave(&mut self, slot: usize) {
        let _ = self.slots.remove(slot);
    }

    /// Number of active sequences.
    pub fn active(&self) -> usize {
        self.slots.active()
    }

    /// Ids currently materialised in `slot`'s cache.
    pub fn ids(&self, slot: usize) -> &[usize] {
        &self.slots.get(slot).ids
    }

    /// Cached positions in `slot`.
    pub fn len(&self, slot: usize) -> usize {
        self.slots.get(slot).cache.len()
    }

    /// Roll `slot` back to its first `len` tokens, dropping the cached
    /// suffix (candidate or speculative tokens that must not become part
    /// of the persistent history). The next batched call re-decodes from
    /// the kept prefix; other slots are untouched.
    pub fn truncate(&mut self, slot: usize, len: usize) {
        let s = self.slots.get_mut(slot);
        assert!(len <= s.ids.len(), "cannot truncate slot {slot} of {} to {len}", s.ids.len());
        s.cache.truncate(len);
        s.ids.truncate(len);
    }

    /// True when no slot is active.
    pub fn is_empty(&self) -> bool {
        self.active() == 0
    }

    /// Bytes held by every active slot's KV cache.
    pub fn bytes(&self) -> usize {
        self.slots.iter().map(|s| s.cache.bytes()).sum()
    }

    /// Bytes held by one slot's KV cache — the per-slot accounting a
    /// cache-aware admission/eviction policy steers on.
    pub fn bytes_of(&self, slot: usize) -> usize {
        self.slots.get(slot).cache.bytes()
    }

    /// The slot holding the most KV bytes, `(slot, bytes)` — the victim a
    /// memory-pressure eviction hook picks when a budget is crossed.
    pub fn heaviest(&self) -> Option<(usize, usize)> {
        self.slots
            .iter_entries()
            .map(|(i, s)| (i, s.cache.bytes()))
            .max_by_key(|&(i, b)| (b, usize::MAX - i))
    }

    /// Pool pages held across every active slot (0 when the session is
    /// contiguous) — the allocator-invariant view the paging proptests
    /// reconcile against the pool's own accounting.
    pub fn pages_held(&self) -> usize {
        self.slots.iter().map(|s| s.cache.pages_held()).sum()
    }

    /// Pages held by one slot's cache.
    pub fn pages_of(&self, slot: usize) -> usize {
        self.slots.get(slot).cache.pages_held()
    }
}

impl TinyLm {
    /// Build with fresh random weights. All parameters are prefixed `llm.`
    /// so they can be frozen as a group.
    pub fn new(store: &mut ParamStore, cfg: LmConfig, rng: &mut Rng) -> Self {
        let tok_emb = Embedding::new(store, "llm.tok", cfg.vocab, cfg.d_model, rng);
        let pos_emb = Embedding::new(store, "llm.pos", cfg.max_seq, cfg.d_model, rng);
        let blocks = (0..cfg.n_layers)
            .map(|l| {
                TransformerBlock::new(
                    store,
                    &format!("llm.block{l}"),
                    cfg.d_model,
                    cfg.n_heads,
                    cfg.mlp_mult,
                    cfg.dropout,
                    rng,
                )
            })
            .collect();
        let ln_f = LayerNorm::new(store, "llm.ln_f", cfg.d_model);
        let lm_head =
            Linear::new(store, "llm.lm_head", cfg.d_model, cfg.vocab, false, Init::Xavier, rng);
        TinyLm { cfg, tok_emb, pos_emb, blocks, ln_f, lm_head }
    }

    /// Freeze the whole backbone (pre-trained knowledge is preserved) and
    /// attach rank-`r` LoRA adapters to every attention and MLP projection.
    /// Returns the number of trainable adapter parameters added.
    pub fn attach_lora(
        &mut self,
        store: &mut ParamStore,
        r: usize,
        alpha: f32,
        rng: &mut Rng,
    ) -> usize {
        store.freeze_prefix("llm.");
        let before = store.num_trainable();
        for blk in &mut self.blocks {
            for lin in blk.attn.projections_mut() {
                lin.attach_lora(store, r, alpha, rng);
            }
            blk.mlp.up.attach_lora(store, r, alpha, rng);
            blk.mlp.down.attach_lora(store, r, alpha, rng);
        }
        store.num_trainable() - before
    }

    /// Remove all adapters (the "no domain knowledge" ablation of Fig 13).
    pub fn detach_lora(&mut self) {
        for blk in &mut self.blocks {
            for lin in blk.attn.projections_mut() {
                lin.detach_lora();
            }
            blk.mlp.up.detach_lora();
            blk.mlp.down.detach_lora();
        }
    }

    /// Backbone over token ids -> hidden states `[t, d_model]`.
    pub fn forward_hidden(&self, f: &mut Fwd, store: &ParamStore, ids: &[usize]) -> NodeId {
        assert!(!ids.is_empty(), "empty input sequence");
        assert!(
            ids.len() <= self.cfg.max_seq,
            "sequence {} exceeds max_seq {}",
            ids.len(),
            self.cfg.max_seq
        );
        let emb = self.tok_emb.forward(f, store, ids);
        self.backbone(f, store, emb, ids.len())
    }

    /// Backbone over already-embedded inputs `[t, d_model]` (the NetLLM
    /// multimodal pathway).
    pub fn forward_embeddings(&self, f: &mut Fwd, store: &ParamStore, emb: NodeId) -> NodeId {
        let t = f.g.value(emb).shape()[0];
        assert!(t <= self.cfg.max_seq, "sequence {t} exceeds max_seq {}", self.cfg.max_seq);
        self.backbone(f, store, emb, t)
    }

    fn backbone(&self, f: &mut Fwd, store: &ParamStore, emb: NodeId, t: usize) -> NodeId {
        let pos: Vec<usize> = (0..t).collect();
        let p = self.pos_emb.forward(f, store, &pos);
        let mut x = f.g.add(emb, p);
        for blk in &self.blocks {
            x = blk.forward(f, store, x, true);
        }
        self.ln_f.forward(f, store, x)
    }

    /// Token logits `[t, vocab]`.
    pub fn forward_logits(&self, f: &mut Fwd, store: &ParamStore, ids: &[usize]) -> NodeId {
        let h = self.forward_hidden(f, store, ids);
        self.lm_head.forward(f, store, h)
    }

    /// Next-token logits for the last position only, by full re-forward on
    /// a no-tape graph. This is the uncached reference path; production
    /// decoding goes through [`TinyLm::next_token_logits_cached`]. Running
    /// it no-tape keeps the cached-vs-uncached benches an apples-to-apples
    /// comparison of incremental decode, not of tape bookkeeping.
    pub fn next_token_logits(&self, store: &ParamStore, ids: &[usize]) -> Tensor {
        let mut f = Fwd::eval_no_tape();
        let h = self.forward_hidden(&mut f, store, ids);
        let t = f.g.value(h).shape()[0];
        let last = f.g.narrow(h, 0, t - 1, 1);
        let logits = self.lm_head.forward(&mut f, store, last);
        f.g.value(logits).clone()
    }

    /// Incremental backbone forward over *pre-embedded* new rows, extending
    /// `cache`. The first new row occupies absolute position `cache.len()`.
    /// Returns hidden states `[t_new, d_model]` for the new rows only.
    pub fn forward_embeddings_cached(
        &self,
        store: &ParamStore,
        emb_new: &Tensor,
        cache: &mut KvCache,
    ) -> Tensor {
        let t_new = emb_new.shape()[0];
        assert!(t_new > 0, "empty incremental input");
        let start = cache.len();
        assert!(
            start + t_new <= self.cfg.max_seq,
            "cache {} + new {} exceeds max_seq {}",
            start,
            t_new,
            self.cfg.max_seq
        );
        let pos: Vec<usize> = (start..start + t_new).collect();
        let p = self.pos_emb.eval(store, &pos);
        let mut x = emb_new.add(&p);
        cache.reserve(t_new);
        match &mut cache.backing {
            KvBacking::Contig(layers) => {
                for (blk, kv) in self.blocks.iter().zip(layers) {
                    x = blk.eval_cached(store, &x, kv);
                }
            }
            KvBacking::Paged { layers, .. } => {
                for (blk, kv) in self.blocks.iter().zip(layers) {
                    x = blk.eval_cached(store, &x, kv);
                }
            }
        }
        self.ln_f.eval(store, &x)
    }

    /// Batched incremental backbone forward over pre-embedded new rows of
    /// many independent sequences. `emb_new` stacks every slot's new rows
    /// (`[N, d_model]`, grouped per `rows_per_slot`); `caches[s]` holds
    /// slot `s`'s KV state and may sit at any prefix length (ragged).
    /// Returns hidden states `[N, d_model]` for the new rows only, in the
    /// same slot order.
    ///
    /// The projections, MLPs and layer-norms run as single stacked passes
    /// over all `N` rows — one GEMM instead of one per sequence — which is
    /// where batched serving earns its throughput.
    pub fn forward_embeddings_cached_batched(
        &self,
        store: &ParamStore,
        emb_new: &Tensor,
        rows_per_slot: &[usize],
        caches: &mut [&mut KvCache],
    ) -> Tensor {
        let total = emb_new.shape()[0];
        assert_eq!(rows_per_slot.len(), caches.len(), "one row count per cache");
        assert_eq!(rows_per_slot.iter().sum::<usize>(), total, "row counts must cover emb_new");
        assert!(total > 0, "empty batched input");
        // Ragged positions: each slot's rows continue from its own prefix.
        let mut pos = Vec::with_capacity(total);
        for (cache, &n) in caches.iter().zip(rows_per_slot) {
            let start = cache.len();
            assert!(
                start + n <= self.cfg.max_seq,
                "slot cache {} + new {} exceeds max_seq {}",
                start,
                n,
                self.cfg.max_seq
            );
            pos.extend(start..start + n);
        }
        let p = self.pos_emb.eval(store, &pos);
        let mut x = emb_new.add(&p);
        for (cache, &n) in caches.iter_mut().zip(rows_per_slot) {
            cache.reserve(n);
        }
        // The backing must be uniform across the batch: the stacked
        // attention pass runs one monomorphized kernel per layer.
        let paged = caches.first().is_some_and(|c| c.is_paged());
        assert!(
            caches.iter().all(|c| c.is_paged() == paged),
            "a batched step cannot mix paged and contiguous KV caches"
        );
        for (l, blk) in self.blocks.iter().enumerate() {
            x = if paged {
                let mut kvs: Vec<&mut PagedAttnKv> = caches
                    .iter_mut()
                    .map(|c| match &mut c.backing {
                        KvBacking::Paged { layers, .. } => &mut layers[l],
                        KvBacking::Contig(_) => unreachable!("uniform backing asserted above"),
                    })
                    .collect();
                blk.eval_cached_batched(store, &x, rows_per_slot, &mut kvs)
            } else {
                let mut kvs: Vec<&mut AttnKv> = caches
                    .iter_mut()
                    .map(|c| match &mut c.backing {
                        KvBacking::Contig(layers) => &mut layers[l],
                        KvBacking::Paged { .. } => unreachable!("uniform backing asserted above"),
                    })
                    .collect();
                blk.eval_cached_batched(store, &x, rows_per_slot, &mut kvs)
            };
        }
        self.ln_f.eval(store, &x)
    }

    /// Start an empty batched decode session (sequences join later).
    pub fn start_batched_session(&self) -> BatchedDecodeSession {
        BatchedDecodeSession::new()
    }

    /// Batched analogue of [`TinyLm::next_token_logits_cached`]: one
    /// `(slot, ids)` request per sequence (slots must be distinct and
    /// active). Each slot reuses its longest shared prefix independently,
    /// then every slot's unseen tokens go through the backbone in one
    /// batched forward. Returns `[B, vocab]` next-token logits in request
    /// order; equivalent to B separate cached calls within 1e-5 (tested,
    /// including ragged prefixes and divergence rollbacks).
    pub fn next_token_logits_batched(
        &self,
        store: &ParamStore,
        requests: &[(usize, &[usize])],
        session: &mut BatchedDecodeSession,
    ) -> Tensor {
        assert!(!requests.is_empty(), "empty request batch");
        for &(sid, ids) in requests {
            assert!(!ids.is_empty(), "empty input sequence for slot {sid}");
        }
        // Pull a distinct &mut slot per request, in request order.
        let mut picked = session.slots.get_distinct_mut(requests.iter().map(|&(sid, _)| sid));
        // Per-slot prefix reuse, identical to the single-session path.
        let mut rows_per_slot = Vec::with_capacity(requests.len());
        let mut new_ids = Vec::new();
        for (slot, &(_, ids)) in picked.iter_mut().zip(requests) {
            let mut shared = slot.ids.iter().zip(ids).take_while(|(a, b)| a == b).count();
            shared = shared.min(ids.len() - 1);
            slot.cache.truncate(shared);
            slot.ids.truncate(shared);
            rows_per_slot.push(ids.len() - shared);
            new_ids.extend_from_slice(&ids[shared..]);
            slot.ids.extend_from_slice(&ids[shared..]);
        }
        let emb = self.tok_emb.eval(store, &new_ids);
        let mut caches: Vec<&mut KvCache> = picked.iter_mut().map(|s| &mut s.cache).collect();
        let hidden =
            self.forward_embeddings_cached_batched(store, &emb, &rows_per_slot, &mut caches);
        // Last new row of each slot carries its next-token hidden state.
        let mut last_rows = Vec::with_capacity(requests.len());
        let mut row = 0usize;
        for &n in &rows_per_slot {
            row += n;
            last_rows.push(row - 1);
        }
        let gathered = hidden.gather_rows(&last_rows); // [B, d]
        self.lm_head.eval(store, &gathered)
    }

    /// Incremental forward over new token ids (embeds then defers to
    /// [`TinyLm::forward_embeddings_cached`]).
    pub fn forward_hidden_cached(
        &self,
        store: &ParamStore,
        new_ids: &[usize],
        cache: &mut KvCache,
    ) -> Tensor {
        let emb = self.tok_emb.eval(store, new_ids);
        self.forward_embeddings_cached(store, &emb, cache)
    }

    /// Start an empty decode session.
    pub fn start_session(&self) -> DecodeSession {
        DecodeSession { cache: KvCache::new(self), ids: Vec::new() }
    }

    /// Next-token logits for `ids`, reusing the session's cached prefix:
    /// only the tokens past the longest prefix shared with the previous call
    /// are pushed through the backbone. Equivalent to
    /// [`TinyLm::next_token_logits`] within float tolerance (tested), but
    /// `O(new x total)` instead of `O(total^2)` per call.
    pub fn next_token_logits_cached(
        &self,
        store: &ParamStore,
        ids: &[usize],
        session: &mut DecodeSession,
    ) -> Tensor {
        assert!(!ids.is_empty(), "empty input sequence");
        let mut shared = session.ids.iter().zip(ids).take_while(|(a, b)| a == b).count();
        // The hidden state of the last shared position is not cached as an
        // output, so always recompute at least the final token.
        shared = shared.min(ids.len() - 1);
        session.cache.truncate(shared);
        session.ids.truncate(shared);
        let hidden = self.forward_hidden_cached(store, &ids[shared..], &mut session.cache);
        session.ids.extend_from_slice(&ids[shared..]);
        let t_new = hidden.shape()[0];
        let last = hidden.narrow(0, t_new - 1, 1);
        self.lm_head.eval(store, &last)
    }

    /// Autoregressive sampling with KV-cached incremental decoding. Stops at
    /// EOS or `max_new` tokens. Returns the generated ids (prompt excluded)
    /// and the number of backbone inferences performed (= tokens generated;
    /// the Fig 2 latency account counts inferences, not their cost).
    pub fn generate(
        &self,
        store: &ParamStore,
        prompt: &[usize],
        max_new: usize,
        temperature: f32,
        rng: &mut Rng,
    ) -> (Vec<usize>, usize) {
        let mut session = self.start_session();
        let mut ids = prompt.to_vec();
        let mut out = Vec::new();
        let mut inferences = 0;
        for _ in 0..max_new {
            if ids.len() >= self.cfg.max_seq {
                break;
            }
            let logits = self.next_token_logits_cached(store, &ids, &mut session);
            inferences += 1;
            let next = sample_logits(logits.row(0), temperature, rng);
            if next == EOS {
                break;
            }
            ids.push(next);
            out.push(next);
        }
        (out, inferences)
    }

    /// Mean next-token cross-entropy of the model on a sequence (teacher
    /// forcing): predicts `ids[1..]` from `ids[..len-1]`.
    pub fn sequence_loss(&self, f: &mut Fwd, store: &ParamStore, ids: &[usize]) -> NodeId {
        assert!(ids.len() >= 2, "need at least 2 tokens");
        let inputs = &ids[..ids.len() - 1];
        let targets = &ids[1..];
        let logits = self.forward_logits(f, store, inputs);
        f.g.cross_entropy(logits, targets)
    }

    /// Total parameter count of the backbone + LM head.
    pub fn num_params(&self, store: &ParamStore) -> usize {
        store
            .ids()
            .filter(|&id| store.name(id).starts_with("llm."))
            .map(|id| store.data(id).numel())
            .sum()
    }
}

/// Temperature sampling over a logits row; temperature 0 is argmax.
pub fn sample_logits(logits: &[f32], temperature: f32, rng: &mut Rng) -> usize {
    if temperature <= 0.0 {
        let mut best = 0;
        for (i, &v) in logits.iter().enumerate() {
            if v > logits[best] {
                best = i;
            }
        }
        return best;
    }
    let mut scaled: Vec<f32> = logits.iter().map(|&x| x / temperature).collect();
    nt_tensor::tensor::softmax_in_place(&mut scaled);
    rng.categorical(&scaled)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tokenizer::Tokenizer;

    fn tiny(store: &mut ParamStore) -> TinyLm {
        let mut rng = Rng::seeded(1);
        let cfg = LmConfig {
            vocab: 16,
            d_model: 16,
            n_layers: 1,
            n_heads: 2,
            mlp_mult: 2,
            max_seq: 16,
            dropout: 0.0,
        };
        TinyLm::new(store, cfg, &mut rng)
    }

    #[test]
    fn hidden_and_logit_shapes() {
        let mut s = ParamStore::new();
        let lm = tiny(&mut s);
        let mut f = Fwd::eval();
        let h = lm.forward_hidden(&mut f, &s, &[1, 2, 3]);
        assert_eq!(f.g.value(h).shape(), &[3, 16]);
        let mut f2 = Fwd::eval();
        let l = lm.forward_logits(&mut f2, &s, &[1, 2, 3]);
        assert_eq!(f2.g.value(l).shape(), &[3, 16]);
    }

    #[test]
    fn embeddings_pathway_matches_token_pathway() {
        // forward_embeddings(tok_emb(ids)) == forward_hidden(ids)
        let mut s = ParamStore::new();
        let lm = tiny(&mut s);
        let ids = [4usize, 5, 6, 7];
        let mut f1 = Fwd::eval();
        let h1 = lm.forward_hidden(&mut f1, &s, &ids);
        let v1 = f1.g.value(h1).clone();
        let mut f2 = Fwd::eval();
        let emb = lm.tok_emb.forward(&mut f2, &s, &ids);
        let h2 = lm.forward_embeddings(&mut f2, &s, emb);
        let v2 = f2.g.value(h2).clone();
        for (a, b) in v1.data().iter().zip(v2.data()) {
            assert!((a - b).abs() < 1e-5);
        }
    }

    #[test]
    fn eviction_hooks_enumerate_slots_and_pick_the_heaviest() {
        let mut s = ParamStore::new();
        let lm = tiny(&mut s);
        let mut batched = BatchedDecodeSession::new();
        let a = batched.join(&lm);
        let b = batched.join(&lm);
        let c = batched.join(&lm);
        assert_eq!(batched.heaviest(), Some((0, 0)), "byte ties resolve to the lowest slot id");
        // Grow b's cache past a's; leave c empty.
        let _ = lm.next_token_logits_batched(
            &s,
            &[(a, &[1usize, 2][..]), (b, &[3, 4, 5, 6][..])],
            &mut batched,
        );
        assert_eq!(batched.bytes_of(c), 0);
        assert!(batched.bytes_of(b) > batched.bytes_of(a));
        let (slot, bytes) = batched.heaviest().expect("three live slots");
        assert_eq!((slot, bytes), (b, batched.bytes_of(b)));
        assert_eq!(
            batched.bytes_of(a) + batched.bytes_of(b) + batched.bytes_of(c),
            batched.bytes()
        );
        // iter_entries walks live slots with their stable ids.
        batched.leave(a);
        let ids: Vec<usize> = batched.slots.iter_entries().map(|(i, _)| i).collect();
        assert_eq!(ids, vec![b, c]);
    }

    #[test]
    fn paged_batched_decode_is_bit_identical_to_contiguous() {
        // The same ragged batched decode through pool-backed slots must be
        // byte-for-byte the contiguous result, across appends, divergence
        // rollbacks and page-boundary crossings — and every page must be
        // back in the pool once the slots leave.
        use crate::paged::{PageConfig, PagePool};
        let mut s = ParamStore::new();
        let lm = tiny(&mut s);
        let pool = PagePool::for_model(&lm, PageConfig { page_tokens: 4, budget_bytes: 1 << 16 });
        let mut rng = Rng::seeded(41);
        let prompts: Vec<Vec<usize>> = [3usize, 7, 1, 5]
            .iter()
            .map(|&len| (0..len).map(|_| rng.below(16)).collect())
            .collect();

        let mut flat = lm.start_batched_session();
        let mut paged = lm.start_batched_session();
        let flat_slots: Vec<usize> = prompts.iter().map(|_| flat.join(&lm)).collect();
        let paged_slots: Vec<usize> =
            prompts.iter().map(|_| paged.join_paged(&lm, &pool)).collect();
        let mut seqs = prompts.clone();
        for step in 0..5 {
            let freqs: Vec<(usize, &[usize])> =
                flat_slots.iter().zip(&seqs).map(|(&sid, ids)| (sid, ids.as_slice())).collect();
            let preqs: Vec<(usize, &[usize])> =
                paged_slots.iter().zip(&seqs).map(|(&sid, ids)| (sid, ids.as_slice())).collect();
            let want = lm.next_token_logits_batched(&s, &freqs, &mut flat);
            let got = lm.next_token_logits_batched(&s, &preqs, &mut paged);
            assert_eq!(want.data(), got.data(), "step {step}: paged decode diverged");
            for (b, seq) in seqs.iter_mut().enumerate() {
                let next = want
                    .row(b)
                    .iter()
                    .enumerate()
                    .max_by(|a, c| a.1.partial_cmp(c.1).unwrap())
                    .unwrap()
                    .0;
                seq.push((next + b) % 16);
                if step == 2 && b == 1 {
                    // Divergence: rewrite the suffix so prefix-reuse
                    // truncates mid-page next step.
                    let keep = seq.len() / 2;
                    seq.truncate(keep.max(1));
                    seq.push((next + 7) % 16);
                }
            }
            // Pool accounting matches the slots' page tables at each step.
            assert_eq!(pool.used_pages(), paged.pages_held());
            assert!(pool.used_pages() + pool.free_pages() == pool.capacity_pages());
        }
        // Truncate releases whole pages; leave releases everything.
        paged.truncate(paged_slots[0], 1);
        assert_eq!(pool.used_pages(), paged.pages_held());
        for &slot in &paged_slots {
            paged.leave(slot);
        }
        assert_eq!(pool.used_pages(), 0, "leave must return every page");
    }

    #[test]
    fn adopt_rehomes_kv_between_layouts_without_changing_values() {
        use crate::paged::{PageConfig, PagePool};
        let mut s = ParamStore::new();
        let lm = tiny(&mut s);
        let pool_a = PagePool::for_model(&lm, PageConfig { page_tokens: 4, budget_bytes: 1 << 15 });
        let pool_b = PagePool::for_model(&lm, PageConfig { page_tokens: 8, budget_bytes: 1 << 15 });
        let ids = [1usize, 4, 9, 2, 7];

        let mut cache = KvCache::new_paged(&lm, &pool_a);
        let _ = lm.forward_hidden_cached(&s, &ids, &mut cache);
        let held_a = pool_a.used_pages();
        assert!(held_a > 0);

        // paged(A) -> paged(B) -> contiguous -> paged(A): the decode must
        // continue bit-identically to a session that never moved.
        cache.adopt(Some(&pool_b));
        assert_eq!(pool_a.used_pages(), 0, "re-homing returns the old pool's pages");
        assert!(pool_b.used_pages() > 0);
        cache.adopt(None);
        assert_eq!(pool_b.used_pages(), 0);
        cache.adopt(Some(&pool_a));
        let hidden = lm.forward_hidden_cached(&s, &[5, 3], &mut cache);

        let mut fresh = KvCache::new(&lm);
        let _ = lm.forward_hidden_cached(&s, &ids, &mut fresh);
        let want = lm.forward_hidden_cached(&s, &[5, 3], &mut fresh);
        assert_eq!(hidden.data(), want.data(), "adopt changed the cached values");
        drop(cache);
        assert_eq!(pool_a.used_pages(), 0, "drop must return every page");
    }

    #[test]
    fn cached_logits_match_full_forward_for_random_prompts() {
        // The KV-cached incremental path must reproduce the full re-forward
        // logits within 1e-5 at every prefix of random prompts.
        let mut s = ParamStore::new();
        let lm = tiny(&mut s);
        let mut rng = Rng::seeded(11);
        for trial in 0..5 {
            let len = 3 + rng.below(12);
            let ids: Vec<usize> = (0..len).map(|_| rng.below(16)).collect();
            let mut session = lm.start_session();
            for t in 1..=len {
                let cached = lm.next_token_logits_cached(&s, &ids[..t], &mut session);
                let full = lm.next_token_logits(&s, &ids[..t]);
                assert_eq!(cached.shape(), full.shape());
                for (a, b) in cached.data().iter().zip(full.data()) {
                    assert!(
                        (a - b).abs() < 1e-5,
                        "trial {trial}, prefix {t}: cached {a} vs full {b}"
                    );
                }
            }
        }
    }

    #[test]
    fn cached_logits_match_full_forward_with_lora() {
        let mut s = ParamStore::new();
        let mut lm = tiny(&mut s);
        let mut rng = Rng::seeded(12);
        lm.attach_lora(&mut s, 2, 4.0, &mut rng);
        // Give the zero-initialised B matrices real values so the LoRA
        // branch contributes.
        let ids_all: Vec<usize> = s.ids().collect();
        for id in ids_all {
            if s.name(id).contains("lora_b") {
                let shape = s.data(id).shape().to_vec();
                *s.data_mut(id) = Tensor::randn(shape, 0.3, &mut rng);
            }
        }
        let ids = [1usize, 4, 9, 2, 7, 5];
        let mut session = lm.start_session();
        for t in 1..=ids.len() {
            let cached = lm.next_token_logits_cached(&s, &ids[..t], &mut session);
            let full = lm.next_token_logits(&s, &ids[..t]);
            for (a, b) in cached.data().iter().zip(full.data()) {
                assert!((a - b).abs() < 1e-5, "LoRA cached {a} vs full {b}");
            }
        }
    }

    #[test]
    fn session_reuses_prefix_and_recovers_from_divergence() {
        let mut s = ParamStore::new();
        let lm = tiny(&mut s);
        let a = [1usize, 4, 5, 6, 7, 8];
        let b = [1usize, 4, 5, 9, 3, 2]; // shares 3-token prefix with `a`
        let mut session = lm.start_session();
        let _ = lm.next_token_logits_cached(&s, &a, &mut session);
        assert_eq!(session.ids(), &a);
        let cached = lm.next_token_logits_cached(&s, &b, &mut session);
        assert_eq!(session.ids(), &b);
        let full = lm.next_token_logits(&s, &b);
        for (x, y) in cached.data().iter().zip(full.data()) {
            assert!((x - y).abs() < 1e-5, "post-divergence cached {x} vs full {y}");
        }
    }

    #[test]
    fn cached_embeddings_pathway_matches_one_shot() {
        let mut s = ParamStore::new();
        let lm = tiny(&mut s);
        let mut rng = Rng::seeded(13);
        let emb = Tensor::randn([6, 16], 0.5, &mut rng);
        let mut f = Fwd::eval();
        let e = f.input(emb.clone());
        let full_node = lm.forward_embeddings(&mut f, &s, e);
        let full = f.g.value(full_node).clone();

        let mut cache = KvCache::new(&lm);
        let first = lm.forward_embeddings_cached(&s, &emb.narrow(0, 0, 4), &mut cache);
        let second = lm.forward_embeddings_cached(&s, &emb.narrow(0, 4, 2), &mut cache);
        assert_eq!(cache.len(), 6);
        let cached = nt_tensor::concat(&[&first, &second], 0);
        for (a, b) in full.data().iter().zip(cached.data()) {
            assert!((a - b).abs() < 1e-5, "cached embeddings pathway diverged: {a} vs {b}");
        }
    }

    #[test]
    fn batched_decode_matches_independent_sessions_with_ragged_prefixes() {
        // Four sequences of different lengths decode together; every
        // batched step must match four single-session cached calls.
        let mut s = ParamStore::new();
        let lm = tiny(&mut s);
        let mut rng = Rng::seeded(31);
        let prompts: Vec<Vec<usize>> = [3usize, 7, 1, 5]
            .iter()
            .map(|&len| (0..len).map(|_| rng.below(16)).collect())
            .collect();

        let mut batched = lm.start_batched_session();
        let slots: Vec<usize> = prompts.iter().map(|_| batched.join(&lm)).collect();
        let mut singles: Vec<DecodeSession> = prompts.iter().map(|_| lm.start_session()).collect();
        let mut seqs = prompts.clone();

        for step in 0..6 {
            let requests: Vec<(usize, &[usize])> =
                slots.iter().zip(&seqs).map(|(&sid, ids)| (sid, ids.as_slice())).collect();
            let logits = lm.next_token_logits_batched(&s, &requests, &mut batched);
            assert_eq!(logits.shape(), &[4, 16]);
            for (b, (seq, single)) in seqs.iter_mut().zip(singles.iter_mut()).enumerate() {
                let want = lm.next_token_logits_cached(&s, seq, single);
                for (x, y) in logits.row(b).iter().zip(want.data()) {
                    assert!(
                        (x - y).abs() < 1e-5,
                        "step {step} slot {b}: batched {x} vs single {y}"
                    );
                }
                // Greedy-extend each sequence so prefixes stay ragged.
                let next = logits
                    .row(b)
                    .iter()
                    .enumerate()
                    .max_by(|a, c| a.1.partial_cmp(c.1).unwrap())
                    .unwrap()
                    .0;
                seq.push((next + b) % 16); // per-slot divergence
            }
        }
    }

    #[test]
    fn batched_session_join_leave_recycles_without_disturbing_others() {
        let mut s = ParamStore::new();
        let lm = tiny(&mut s);
        let mut batched = lm.start_batched_session();
        let a = batched.join(&lm);
        let b = batched.join(&lm);
        let c = batched.join(&lm);
        assert_eq!((a, b, c), (0, 1, 2));

        let ids_b = [1usize, 2, 3, 4];
        let _ = lm.next_token_logits_batched(&s, &[(b, &ids_b)], &mut batched);
        assert_eq!(batched.ids(b), &ids_b);

        // Leaving a and c must not touch b; the freed ids are recycled.
        batched.leave(a);
        batched.leave(c);
        assert_eq!(batched.active(), 1);
        let d = batched.join(&lm);
        assert_eq!(d, 0, "smallest freed id is reused");
        assert_eq!(batched.ids(b), &ids_b, "surviving slot untouched by leave/join");

        // b's cached prefix still matches a fresh single-session result.
        let grown = [1usize, 2, 3, 4, 9];
        let got = lm.next_token_logits_batched(&s, &[(b, &grown)], &mut batched);
        let mut fresh = lm.start_session();
        let want = lm.next_token_logits_cached(&s, &grown, &mut fresh);
        for (x, y) in got.row(0).iter().zip(want.data()) {
            assert!((x - y).abs() < 1e-5, "post-leave decode diverged: {x} vs {y}");
        }
    }

    #[test]
    fn batched_truncate_rolls_back_candidate_suffix() {
        // Speculative/candidate rollback inside a batched session: decode
        // a suffix, truncate it away, and the slot must continue exactly
        // like a session that never saw the suffix — while a co-resident
        // slot is unaffected.
        let mut s = ParamStore::new();
        let lm = tiny(&mut s);
        let mut batched = lm.start_batched_session();
        let a = batched.join(&lm);
        let b = batched.join(&lm);

        let base = [1usize, 4, 5];
        let spec = [1usize, 4, 5, 9, 3]; // candidate suffix [9, 3]
        let other = [2usize, 7];
        let _ = lm.next_token_logits_batched(&s, &[(a, &spec), (b, &other)], &mut batched);
        assert_eq!(batched.len(a), 5);
        batched.truncate(a, base.len());
        assert_eq!(batched.len(a), 3);
        assert_eq!(batched.ids(a), &base);
        assert_eq!(batched.ids(b), &other, "co-resident slot untouched by rollback");

        // Continue with a different suffix; must match a fresh session.
        let cont = [1usize, 4, 5, 2];
        let got = lm.next_token_logits_batched(&s, &[(a, &cont)], &mut batched);
        let mut fresh = lm.start_session();
        let want = lm.next_token_logits_cached(&s, &cont, &mut fresh);
        for (x, y) in got.row(0).iter().zip(want.data()) {
            assert!((x - y).abs() < 1e-5, "post-rollback decode diverged: {x} vs {y}");
        }
    }

    #[test]
    #[should_panic]
    fn batched_decode_rejects_duplicate_slots() {
        let mut s = ParamStore::new();
        let lm = tiny(&mut s);
        let mut batched = lm.start_batched_session();
        let a = batched.join(&lm);
        let ids = [1usize, 2];
        let _ = lm.next_token_logits_batched(&s, &[(a, &ids), (a, &ids)], &mut batched);
    }

    #[test]
    fn generate_counts_one_inference_per_token() {
        let mut s = ParamStore::new();
        let lm = tiny(&mut s);
        let mut rng = Rng::seeded(2);
        let (out, inf) = lm.generate(&s, &[1, 4, 5], 6, 0.0, &mut rng);
        assert!(inf >= out.len());
        assert!(inf <= 6);
    }

    #[test]
    fn generate_respects_max_seq() {
        let mut s = ParamStore::new();
        let lm = tiny(&mut s);
        let mut rng = Rng::seeded(3);
        let prompt: Vec<usize> = (0..14).map(|i| 4 + (i % 8)).collect();
        let (out, _) = lm.generate(&s, &prompt, 100, 1.0, &mut rng);
        assert!(prompt.len() + out.len() <= 16);
    }

    #[test]
    fn lora_freezes_backbone_and_adds_small_fraction() {
        let mut s = ParamStore::new();
        let mut lm = tiny(&mut s);
        let total = s.num_params();
        let mut rng = Rng::seeded(4);
        let added = lm.attach_lora(&mut s, 2, 4.0, &mut rng);
        assert!(added > 0);
        assert_eq!(s.num_trainable(), added, "only adapters trainable");
        assert!((added as f32) / (total as f32) < 0.5, "adapters must be a small fraction");
    }

    #[test]
    fn sequence_loss_is_finite_and_differentiable() {
        let mut s = ParamStore::new();
        let lm = tiny(&mut s);
        let mut f = Fwd::eval();
        let l = lm.sequence_loss(&mut f, &s, &[1, 4, 5, 6, 2]);
        let v = f.g.value(l).item();
        assert!(v.is_finite() && v > 0.0);
        let grads = f.backward(l);
        assert!(grads.len() > 5);
    }

    #[test]
    fn sample_logits_temperature_zero_is_argmax() {
        let mut rng = Rng::seeded(5);
        assert_eq!(sample_logits(&[0.0, 5.0, 1.0], 0.0, &mut rng), 1);
    }

    #[test]
    fn vocab_matches_tokenizer() {
        let t = Tokenizer::new();
        let mut s = ParamStore::new();
        let mut rng = Rng::seeded(6);
        let lm = TinyLm::new(&mut s, LmConfig::base(t.vocab_size()), &mut rng);
        assert_eq!(lm.cfg.vocab, t.vocab_size());
    }
}

//! # nt-llm
//!
//! The foundation-model substrate of the NetLLM reproduction: a from-scratch
//! decoder-only Transformer ("TinyLM") with a character tokenizer, an LM
//! head for the token pathway, autoregressive generation, LoRA attachment,
//! and an actually-executed synthetic pre-training stage that stands in for
//! "pre-trained on massive corpora" (see `DESIGN.md` for why the
//! substitution preserves the paper's claims).
//!
//! ## Feature inventory
//!
//! - [`tokenizer::Tokenizer`] — char-level vocabulary (digits + letters +
//!   punctuation), BOS/EOS/PAD/UNK
//! - [`model::TinyLm`] — causal Transformer backbone; token pathway
//!   ([`model::TinyLm::forward_logits`], [`model::TinyLm::generate`]) and
//!   embedding pathway ([`model::TinyLm::forward_embeddings`]) for NetLLM
//! - [`mod@pretrain`] — multi-skill synthetic corpus + pre-training loop
//! - [`zoo`] — named profiles (llama/opt/mistral/llava-sim, Fig 15), the
//!   size ladder (0.35b–13b-sim, Fig 16), disk-cached checkpoints
//!
//! Generation runs through [`model::KvCache`] incremental decoding (one
//! appended position per emitted token, with cross-call prefix reuse via
//! [`model::DecodeSession`]); the uncached full re-forward is kept as the
//! reference path for the equivalence tests and the latency benches. Still
//! not implemented (by design): beam search, BPE.

#![forbid(unsafe_code)]

pub mod model;
pub mod paged;
pub mod pretrain;
pub mod tokenizer;
pub mod zoo;

pub use model::{
    sample_logits, BatchedDecodeSession, DecodeSession, KvCache, LmConfig, SlotMap, TinyLm,
};
pub use paged::{session_floor_bytes, PageConfig, PagePool, PoolStats};
pub use pretrain::{eval_loss, pretrain, Corpus, CorpusMix, PretrainReport};
pub use tokenizer::{Tokenizer, BOS, EOS, PAD, UNK};
pub use zoo::{profile_spec, size_spec, LoadedLm, ModelSpec, Profile, Zoo, SIZE_LADDER};

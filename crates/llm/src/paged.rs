//! Paged KV-cache memory: the [`PagePool`] allocator.
//!
//! A contiguous per-session KV cache makes worst-case memory the product
//! of *every* live session's longest prefix — unbounded at batch 64+
//! until each session happens to re-anchor. Paging turns that into a hard
//! configurable bound: KV storage is carved into fixed-size
//! [`nt_nn::KvPage`]s drawn from one fleet-wide pool whose capacity is a
//! **global byte budget**. Sessions hold page *tables*
//! ([`nt_nn::PagedAttnKv`], one per layer); the pool owns every page that
//! is not currently lent out, on a free list.
//!
//! ```text
//!            PagePool (budget_bytes -> capacity pages, pre-minted)
//!            ┌────────────────────────────────────────────┐
//!   alloc ──►│ free: [page][page][page][page] ...         │◄── release
//!            └────────────────────────────────────────────┘
//!      session A: layer0 [p7][p2]       layer1 [p9][p0]      (page tables)
//!      session B: layer0 [p4]           layer1 [p5]
//! ```
//!
//! Properties the rest of the stack builds on:
//!
//! - **Hard bound.** Every page is minted at construction, so
//!   `used + free == capacity` at all times and no interleaving of
//!   allocations can exceed the budget — the worst case is an
//!   [`PagePool::alloc_pages`] returning `None`, never an OOM-growing buffer.
//!   (Property-tested in `tests/paged_pool.rs`.)
//! - **All-or-nothing.** `alloc(n)` hands out `n` pages or none, so a
//!   multi-layer reservation can never strand a session half-grown.
//! - **Uniform pages.** Pages are interchangeable buffers for one model
//!   width (`dim`); which buffer a session gets never affects the math
//!   (the attention kernels are bit-identical across layouts).
//! - **Cheap handles.** [`PagePool`] is a clone-able `Arc` handle; every
//!   session's `KvCache` carries one so truncate/drop can return pages
//!   without threading the pool through every call site. Allocation and
//!   release take a `Mutex` — they happen a handful of times per serving
//!   tick, never inside the attention inner loops.

use crate::model::TinyLm;
use nt_nn::KvPage;
use std::sync::{Arc, Mutex};

/// Bytes one full-context session of `lm` occupies at `page_tokens`-sized
/// pages (`n_layers x pages_for(max_seq) x page_bytes`) — the minimum
/// viable pool budget, i.e. the floor [`PagePool::for_model`] asserts and
/// the serving engines re-check per admitted backbone. Budget sizing code
/// should derive its floor from here instead of hardcoding the product.
pub fn session_floor_bytes(lm: &TinyLm, page_tokens: usize) -> usize {
    let page_bytes = 2 * page_tokens * lm.cfg.d_model * 4;
    lm.cfg.n_layers * lm.cfg.max_seq.div_ceil(page_tokens) * page_bytes
}

/// Geometry + budget of a [`PagePool`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct PageConfig {
    /// Cached positions per page. Must be a power of two (the attention
    /// row lookup is shift + mask).
    pub page_tokens: usize,
    /// Global KV byte budget. Capacity is `budget_bytes / page_bytes`
    /// whole pages; KV held by sessions of this pool can never exceed it.
    pub budget_bytes: usize,
}

impl PageConfig {
    /// `page_tokens = 16` with the given budget — a page spans a couple of
    /// decision-transformer steps at the repo's token-per-step scales.
    pub fn with_budget(budget_bytes: usize) -> Self {
        PageConfig { page_tokens: 16, budget_bytes }
    }
}

/// Point-in-time occupancy of a [`PagePool`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct PoolStats {
    /// Positions per page.
    pub page_tokens: usize,
    /// Bytes per page (keys + values).
    pub page_bytes: usize,
    /// Live capacity: pages minted minus pages retired (the hard bound).
    pub capacity_pages: usize,
    /// Pages currently lent to sessions.
    pub used_pages: usize,
    /// Pages on the free list.
    pub free_pages: usize,
    /// Pages permanently retired ([`PagePool::retire_pages`]) — capacity
    /// surrendered when a fault domain dies.
    pub retired_pages: usize,
    /// The configured byte budget.
    pub budget_bytes: usize,
}

impl PoolStats {
    /// Bytes currently lent out (`used_pages * page_bytes`) — the number a
    /// memory gate compares against the budget.
    pub fn used_bytes(&self) -> usize {
        self.used_pages * self.page_bytes
    }
}

struct PoolInner {
    free: Vec<KvPage>,
    /// Pages dropped for good via [`PagePool::retire_pages`]. Capacity is
    /// `minted - retired`, so `used + free == capacity` stays an identity
    /// even while a fleet sheds the budget share of a dead shard.
    retired: usize,
}

struct PoolShared {
    page_tokens: usize,
    dim: usize,
    page_bytes: usize,
    minted: usize,
    budget_bytes: usize,
    inner: Mutex<PoolInner>,
}

/// Free-list allocator of fixed-size KV pages under a global byte budget.
/// Clone-able handle; all clones share one pool.
#[derive(Clone)]
pub struct PagePool {
    shared: Arc<PoolShared>,
}

impl PagePool {
    /// Pool of pages for a `dim`-wide model under `cfg`. Every page the
    /// budget affords is minted here, so the budget is a hard bound from
    /// the first allocation on.
    pub fn new(dim: usize, cfg: PageConfig) -> Self {
        assert!(dim > 0, "page pool needs a positive model dim");
        assert!(
            cfg.page_tokens.is_power_of_two(),
            "page_tokens {} must be a power of two",
            cfg.page_tokens
        );
        let page_bytes = 2 * cfg.page_tokens * dim * 4; // K + V rows, f32
        let capacity = cfg.budget_bytes / page_bytes;
        assert!(
            capacity >= 1,
            "budget {}B below one page ({page_bytes}B at page_tokens {} x dim {dim})",
            cfg.budget_bytes,
            cfg.page_tokens
        );
        let free = (0..capacity).map(|_| KvPage::new(cfg.page_tokens, dim)).collect();
        PagePool {
            shared: Arc::new(PoolShared {
                page_tokens: cfg.page_tokens,
                dim,
                page_bytes,
                minted: capacity,
                budget_bytes: cfg.budget_bytes,
                inner: Mutex::new(PoolInner { free, retired: 0 }),
            }),
        }
    }

    /// Pool sized for `lm`, asserting the budget can hold at least one
    /// full-context session (`n_layers x pages_for(max_seq)`) — below
    /// that, a single session could wedge admission forever.
    pub fn for_model(lm: &TinyLm, cfg: PageConfig) -> Self {
        let pool = PagePool::new(lm.cfg.d_model, cfg);
        let one_session = lm.cfg.n_layers * pool.pages_for(lm.cfg.max_seq);
        assert!(
            pool.capacity_pages() >= one_session,
            "budget {}B holds {} pages but one full-context session needs {one_session}",
            cfg.budget_bytes,
            pool.capacity_pages()
        );
        pool
    }

    /// Whether two handles refer to the same pool.
    pub fn same_pool(&self, other: &PagePool) -> bool {
        Arc::ptr_eq(&self.shared, &other.shared)
    }

    /// Positions per page.
    pub fn page_tokens(&self) -> usize {
        self.shared.page_tokens
    }

    /// Model width the pages are sized for.
    pub fn dim(&self) -> usize {
        self.shared.dim
    }

    /// Bytes per page (keys + values).
    pub fn page_bytes(&self) -> usize {
        self.shared.page_bytes
    }

    /// Live capacity — pages minted minus pages retired. The hard bound:
    /// `used + free == capacity` at all times.
    pub fn capacity_pages(&self) -> usize {
        let inner = self.shared.inner.lock().expect("page pool poisoned");
        self.shared.minted - inner.retired
    }

    /// Pages permanently retired via [`PagePool::retire_pages`].
    pub fn retired_pages(&self) -> usize {
        self.shared.inner.lock().expect("page pool poisoned").retired
    }

    /// Pages on the free list right now.
    pub fn free_pages(&self) -> usize {
        self.shared.inner.lock().expect("page pool poisoned").free.len()
    }

    /// Pages currently lent to sessions.
    pub fn used_pages(&self) -> usize {
        let inner = self.shared.inner.lock().expect("page pool poisoned");
        self.shared.minted - inner.retired - inner.free.len()
    }

    /// Bytes currently lent to sessions.
    pub fn used_bytes(&self) -> usize {
        self.used_pages() * self.page_bytes()
    }

    /// Pages needed to hold `positions` cached positions in **one** layer.
    pub fn pages_for(&self, positions: usize) -> usize {
        positions.div_ceil(self.page_tokens())
    }

    /// Occupancy snapshot.
    pub fn stats(&self) -> PoolStats {
        let inner = self.shared.inner.lock().expect("page pool poisoned");
        let capacity = self.shared.minted - inner.retired;
        PoolStats {
            page_tokens: self.page_tokens(),
            page_bytes: self.page_bytes(),
            capacity_pages: capacity,
            used_pages: capacity - inner.free.len(),
            free_pages: inner.free.len(),
            retired_pages: inner.retired,
            budget_bytes: self.shared.budget_bytes,
        }
    }

    /// Take `n` pages off the free list — all or nothing. `None` means the
    /// caller must evict, defer, or shrink; the pool never grows.
    /// (`KvCache` drives this internally; it is public so external cache
    /// implementations and the allocator property tests can too.)
    pub fn alloc_pages(&self, n: usize) -> Option<Vec<KvPage>> {
        let mut inner = self.shared.inner.lock().expect("page pool poisoned");
        if inner.free.len() < n {
            return None;
        }
        let at = inner.free.len() - n;
        Some(inner.free.split_off(at))
    }

    /// Return pages to the free list.
    pub fn release_pages(&self, pages: impl IntoIterator<Item = KvPage>) {
        let mut inner = self.shared.inner.lock().expect("page pool poisoned");
        inner.free.extend(pages);
        debug_assert!(
            inner.free.len() + inner.retired <= self.shared.minted,
            "released more pages than minted"
        );
    }

    /// Permanently shrink the pool by dropping up to `n` **free** pages;
    /// returns how many were retired. Capacity drops by the same amount,
    /// so `used + free == capacity` holds through the shrink. Best-effort
    /// by design: pages lent to live sessions are never clawed back, so
    /// callers retiring a dead fault domain's budget share should reclaim
    /// its sessions' pages first, then retire. Retirement is one-way — the
    /// pool never re-mints.
    pub fn retire_pages(&self, n: usize) -> usize {
        let mut inner = self.shared.inner.lock().expect("page pool poisoned");
        let take = n.min(inner.free.len());
        let at = inner.free.len() - take;
        inner.free.truncate(at);
        inner.retired += take;
        take
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pool_pre_mints_the_whole_budget() {
        let pool = PagePool::new(8, PageConfig { page_tokens: 4, budget_bytes: 3 * 256 + 100 });
        // page_bytes = 2 * 4 * 8 * 4 = 256; 3 whole pages fit.
        assert_eq!(pool.page_bytes(), 256);
        assert_eq!(pool.capacity_pages(), 3);
        assert_eq!((pool.used_pages(), pool.free_pages()), (0, 3));
        assert_eq!(pool.stats().used_bytes(), 0);
    }

    #[test]
    fn alloc_is_all_or_nothing_and_release_restores() {
        let pool = PagePool::new(8, PageConfig { page_tokens: 4, budget_bytes: 4 * 256 });
        let a = pool.alloc_pages(3).expect("3 of 4 fit");
        assert_eq!((pool.used_pages(), pool.free_pages()), (3, 1));
        assert!(pool.alloc_pages(2).is_none(), "over-ask must not partially allocate");
        assert_eq!(pool.free_pages(), 1, "failed alloc takes nothing");
        pool.release_pages(a);
        assert_eq!((pool.used_pages(), pool.free_pages()), (0, 4));
    }

    #[test]
    fn pages_for_rounds_up_to_whole_pages() {
        let pool = PagePool::new(8, PageConfig { page_tokens: 4, budget_bytes: 1 << 16 });
        assert_eq!(pool.pages_for(0), 0);
        assert_eq!(pool.pages_for(1), 1);
        assert_eq!(pool.pages_for(4), 1);
        assert_eq!(pool.pages_for(5), 2);
    }

    #[test]
    #[should_panic(expected = "below one page")]
    fn budget_below_one_page_is_rejected() {
        let _ = PagePool::new(64, PageConfig { page_tokens: 16, budget_bytes: 100 });
    }

    #[test]
    fn retire_shrinks_capacity_and_keeps_the_occupancy_identity() {
        let pool = PagePool::new(8, PageConfig { page_tokens: 4, budget_bytes: 6 * 256 });
        let lent = pool.alloc_pages(2).expect("2 of 6 fit");
        // Only free pages retire: asking for 5 with 4 free retires 4.
        assert_eq!(pool.retire_pages(5), 4);
        assert_eq!(pool.retired_pages(), 4);
        assert_eq!(pool.capacity_pages(), 2);
        assert_eq!((pool.used_pages(), pool.free_pages()), (2, 0));
        assert_eq!(pool.used_pages() + pool.free_pages(), pool.capacity_pages());
        // Lent pages still come home to the shrunken pool.
        pool.release_pages(lent);
        assert_eq!((pool.used_pages(), pool.free_pages()), (0, 2));
        assert_eq!(pool.used_pages() + pool.free_pages(), pool.capacity_pages());
        let s = pool.stats();
        assert_eq!((s.capacity_pages, s.retired_pages), (2, 4));
    }

    #[test]
    fn retire_zero_and_retire_on_empty_free_list_are_noops() {
        let pool = PagePool::new(8, PageConfig { page_tokens: 4, budget_bytes: 2 * 256 });
        assert_eq!(pool.retire_pages(0), 0);
        let lent = pool.alloc_pages(2).unwrap();
        assert_eq!(pool.retire_pages(3), 0, "no free pages, nothing to retire");
        assert_eq!(pool.capacity_pages(), 2);
        pool.release_pages(lent);
    }
}

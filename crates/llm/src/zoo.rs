//! Model zoo: named backbone profiles and the size ladder.
//!
//! The paper evaluates four LLM families (Llama2, OPT, Mistral, LLaVa; Fig
//! 15) and five OPT sizes (0.35B–13B; Fig 16). The zoo mirrors both axes at
//! simulator scale: profiles differ in head count, MLP width, pre-training
//! mixture and seed; the size ladder scales width/depth. Pre-trained
//! checkpoints are cached on disk so figure regeneration does not re-train
//! backbones.

use crate::model::{LmConfig, TinyLm};
use crate::pretrain::{pretrain, Corpus, CorpusMix, PretrainReport};
use crate::tokenizer::Tokenizer;
use nt_nn::{checkpoint, ParamStore};
use nt_tensor::Rng;
use std::path::PathBuf;

/// The four backbone families of Figure 15.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Profile {
    /// Default foundation model (the paper's Llama2-7B role).
    LlamaSim,
    /// OPT-style: fewer attention heads.
    OptSim,
    /// Mistral-style: more heads, slimmer MLP.
    MistralSim,
    /// LLaVa-style: multimodal pre-training mixture.
    LlavaSim,
}

impl Profile {
    pub const ALL: [Profile; 4] =
        [Profile::LlamaSim, Profile::OptSim, Profile::MistralSim, Profile::LlavaSim];

    pub fn name(self) -> &'static str {
        match self {
            Profile::LlamaSim => "llama-sim",
            Profile::OptSim => "opt-sim",
            Profile::MistralSim => "mistral-sim",
            Profile::LlavaSim => "llava-sim",
        }
    }
}

/// Full specification of a backbone to build/pre-train.
#[derive(Clone, Debug)]
pub struct ModelSpec {
    pub name: String,
    pub cfg: LmConfig,
    pub mix: CorpusMix,
    pub seed: u64,
}

/// Spec for a named profile at the default ("7B-sim") scale.
pub fn profile_spec(p: Profile) -> ModelSpec {
    let tok = Tokenizer::new();
    let vocab = tok.vocab_size();
    let (cfg, mix, seed) = match p {
        Profile::LlamaSim => (LmConfig::base(vocab), CorpusMix::text(), 101),
        Profile::OptSim => {
            (LmConfig { n_heads: 2, ..LmConfig::base(vocab) }, CorpusMix::text(), 202)
        }
        Profile::MistralSim => {
            (LmConfig { n_heads: 8, mlp_mult: 3, ..LmConfig::base(vocab) }, CorpusMix::text(), 303)
        }
        Profile::LlavaSim => (LmConfig::base(vocab), CorpusMix::multimodal(), 404),
    };
    ModelSpec { name: p.name().to_string(), cfg, mix, seed }
}

/// The OPT size ladder of Figure 16. `label` mirrors the paper's parameter
/// counts; the architectures are the scaled-down stand-ins.
pub const SIZE_LADDER: [&str; 5] = ["0.35b-sim", "1.3b-sim", "2.7b-sim", "7b-sim", "13b-sim"];

/// Spec for a ladder entry.
pub fn size_spec(label: &str) -> ModelSpec {
    let tok = Tokenizer::new();
    let vocab = tok.vocab_size();
    let (d, l, h) = match label {
        "0.35b-sim" => (12, 1, 2),
        "1.3b-sim" => (24, 1, 2),
        "2.7b-sim" => (32, 2, 4),
        "7b-sim" => (48, 2, 4),
        "13b-sim" => (64, 3, 4),
        other => panic!("unknown size label {other:?} (see SIZE_LADDER)"),
    };
    ModelSpec {
        name: format!("opt-{label}"),
        cfg: LmConfig {
            vocab,
            d_model: d,
            n_layers: l,
            n_heads: h,
            mlp_mult: 4,
            max_seq: 160,
            dropout: 0.0,
        },
        mix: CorpusMix::text(),
        seed: 7000 + d as u64,
    }
}

/// A ready-to-use backbone: model + its parameter store + tokenizer.
pub struct LoadedLm {
    pub lm: TinyLm,
    pub store: ParamStore,
    pub tok: Tokenizer,
    /// `None` when restored from cache.
    pub report: Option<PretrainReport>,
}

/// Zoo with an on-disk checkpoint cache.
pub struct Zoo {
    cache_dir: PathBuf,
}

impl Zoo {
    pub fn new(cache_dir: impl Into<PathBuf>) -> Self {
        Zoo { cache_dir: cache_dir.into() }
    }

    /// Default cache location: `$NETLLM_ZOO_DIR` or `artifacts/zoo` under the
    /// current directory.
    pub fn default_cache() -> Self {
        let dir = std::env::var("NETLLM_ZOO_DIR")
            .map(PathBuf::from)
            .unwrap_or_else(|_| PathBuf::from("artifacts/zoo"));
        Zoo::new(dir)
    }

    fn path_for(&self, spec: &ModelSpec, steps: usize) -> PathBuf {
        self.cache_dir.join(format!("{}-s{}.ntck", spec.name, steps))
    }

    /// Build the backbone with random weights (the "no pre-trained
    /// knowledge" ablation) — never touches the cache.
    pub fn build_random(&self, spec: &ModelSpec) -> LoadedLm {
        let mut rng = Rng::seeded(spec.seed);
        let mut store = ParamStore::new();
        let lm = TinyLm::new(&mut store, spec.cfg.clone(), &mut rng);
        LoadedLm { lm, store, tok: Tokenizer::new(), report: None }
    }

    /// Load the pre-trained backbone from cache, or pre-train it for
    /// `steps` steps and cache the result.
    pub fn load_or_pretrain(&self, spec: &ModelSpec, steps: usize) -> LoadedLm {
        let mut loaded = self.build_random(spec);
        let path = self.path_for(spec, steps);
        if path.exists() && checkpoint::load(&mut loaded.store, &path).is_ok() {
            return loaded;
        }
        // Corrupt/stale cache: fall through and re-train.
        let mut rng = Rng::seeded(spec.seed ^ 0xC0FFEE);
        let corpus = Corpus::new(spec.mix.clone(), 32, &mut rng);
        let report = pretrain(&loaded.lm, &mut loaded.store, &corpus, steps, 3e-3, spec.seed);
        let _ = checkpoint::save(&loaded.store, &path);
        loaded.report = Some(report);
        loaded
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ladder_specs_are_monotone_in_params() {
        let mut last = 0usize;
        for label in SIZE_LADDER {
            let spec = size_spec(label);
            let zoo = Zoo::new(std::env::temp_dir().join("zoo-param-test"));
            let loaded = zoo.build_random(&spec);
            let n = loaded.lm.num_params(&loaded.store);
            assert!(n > last, "{label} should be larger than previous ({n} <= {last})");
            last = n;
        }
    }

    #[test]
    fn all_profiles_construct() {
        for p in Profile::ALL {
            let spec = profile_spec(p);
            let zoo = Zoo::new(std::env::temp_dir().join("zoo-profile-test"));
            let loaded = zoo.build_random(&spec);
            assert!(loaded.lm.num_params(&loaded.store) > 0);
            assert_eq!(loaded.lm.cfg.vocab, loaded.tok.vocab_size());
        }
    }

    #[test]
    fn cache_roundtrip_restores_weights() {
        let dir = std::env::temp_dir().join(format!("zoo-cache-test-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let zoo = Zoo::new(&dir);
        let mut spec = size_spec("0.35b-sim");
        spec.name = "cache-test".into();
        let a = zoo.load_or_pretrain(&spec, 5);
        assert!(a.report.is_some(), "first load must pre-train");
        let b = zoo.load_or_pretrain(&spec, 5);
        assert!(b.report.is_none(), "second load must hit cache");
        for id in a.store.ids() {
            assert_eq!(a.store.data(id), b.store.data(id), "weights must match after cache");
        }
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    #[should_panic]
    fn unknown_size_label_panics() {
        size_spec("70b-sim");
    }
}
